// Package cache implements the memory-hierarchy substrate of the
// simulated machine: set-associative write-back caches with LRU
// replacement, translation lookaside buffers, and a composed
// L1/L2/DRAM hierarchy with the Table 1 parameters.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	// Name appears in statistics.
	Name string
	// Size is the capacity in bytes.
	Size int
	// Ways is the set associativity.
	Ways int
	// LineSize is the block size in bytes.
	LineSize int
	// Latency is the hit latency in cycles.
	Latency int
}

// Cache is a set-associative cache model. It tracks tags only (the
// simulator carries data values in the instruction stream), which is
// sufficient for timing and activity modelling.
type Cache struct {
	cfg     Config
	sets    [][]line
	setMask uint64
	lineLg  uint

	accesses   uint64
	misses     uint64
	writebacks uint64
	clock      uint64
}

type line struct {
	valid bool
	dirty bool
	tag   uint64
	lru   uint64
}

// New builds a cache from cfg. Size must be Ways × power-of-two sets ×
// LineSize.
func New(cfg Config) *Cache {
	if cfg.Size <= 0 || cfg.Ways <= 0 || cfg.LineSize <= 0 {
		panic(fmt.Sprintf("cache %s: non-positive geometry", cfg.Name))
	}
	if cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic(fmt.Sprintf("cache %s: line size must be a power of two", cfg.Name))
	}
	nsets := cfg.Size / (cfg.Ways * cfg.LineSize)
	if nsets <= 0 || nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d must be a positive power of two", cfg.Name, nsets))
	}
	c := &Cache{cfg: cfg, sets: make([][]line, nsets), setMask: uint64(nsets - 1)}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	for l := cfg.LineSize; l > 1; l >>= 1 {
		c.lineLg++
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) index(addr uint64) (set, tag uint64) {
	blk := addr >> c.lineLg
	return blk & c.setMask, blk >> popcount(c.setMask)
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// Access looks up addr, allocating on miss (write-allocate). It returns
// whether the access hit and whether a dirty line was written back.
func (c *Cache) Access(addr uint64, write bool) (hit, writeback bool) {
	c.clock++
	c.accesses++
	set, tag := c.index(addr)
	lines := c.sets[set]
	for w := range lines {
		l := &lines[w]
		if l.valid && l.tag == tag {
			l.lru = c.clock
			if write {
				l.dirty = true
			}
			return true, false
		}
	}
	c.misses++
	// Allocate: choose invalid first, else LRU.
	victim := 0
	var oldest uint64 = ^uint64(0)
	for w := range lines {
		if !lines[w].valid {
			victim = w
			oldest = 0
			break
		}
		if lines[w].lru < oldest {
			victim = w
			oldest = lines[w].lru
		}
	}
	writeback = lines[victim].valid && lines[victim].dirty
	if writeback {
		c.writebacks++
	}
	lines[victim] = line{valid: true, dirty: write, tag: tag, lru: c.clock}
	return false, writeback
}

// Probe reports whether addr is resident without updating state.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	for w := range c.sets[set] {
		if c.sets[set][w].valid && c.sets[set][w].tag == tag {
			return true
		}
	}
	return false
}

// Stats returns (accesses, misses, writebacks).
func (c *Cache) Stats() (accesses, misses, writebacks uint64) {
	return c.accesses, c.misses, c.writebacks
}

// ResetStats zeroes the access statistics while preserving cache
// contents — used to discard warm-up effects before measurement.
func (c *Cache) ResetStats() {
	c.accesses, c.misses, c.writebacks = 0, 0, 0
}

// MissRate returns misses/accesses, or 0 when idle.
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// TLB is a set-associative translation lookaside buffer over 4KB pages.
type TLB struct {
	cache *Cache
}

// NewTLB builds a TLB with the given entries and associativity.
func NewTLB(name string, entries, ways int) *TLB {
	// Model the TLB as a cache of 4KB "lines" indexed by page number:
	// one entry per page.
	return &TLB{cache: New(Config{
		Name:     name,
		Size:     entries * 4096,
		Ways:     ways,
		LineSize: 4096,
	})}
}

// Access translates addr's page; returns whether it hit.
func (t *TLB) Access(addr uint64) bool {
	hit, _ := t.cache.Access(addr, false)
	return hit
}

// MissRate returns the TLB miss rate.
func (t *TLB) MissRate() float64 { return t.cache.MissRate() }

// ResetStats zeroes statistics, preserving TLB contents.
func (t *TLB) ResetStats() { t.cache.ResetStats() }

// Stats returns (accesses, misses).
func (t *TLB) Stats() (accesses, misses uint64) {
	a, m, _ := t.cache.Stats()
	return a, m
}

// Level identifies where in the hierarchy an access was satisfied.
type Level uint8

// Hierarchy levels.
const (
	LevelL1 Level = iota
	LevelL2
	LevelMem
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelMem:
		return "mem"
	}
	return "?"
}

// Hierarchy composes an L1, the shared L2, and DRAM into a timing model.
type Hierarchy struct {
	L1 *Cache
	L2 *Cache
	// L1Latency, L2Latency are hit latencies in cycles; MemCycles is
	// the DRAM access latency in cycles (frequency-dependent: the
	// paper's Fast/3D configurations see more cycles for the same
	// DRAM nanoseconds).
	L1Latency, L2Latency, MemCycles int

	served [3]uint64
}

// NewHierarchy wires an L1 in front of l2 with the given latencies.
func NewHierarchy(l1, l2 *Cache, l1Lat, l2Lat, memCycles int) *Hierarchy {
	return &Hierarchy{L1: l1, L2: l2, L1Latency: l1Lat, L2Latency: l2Lat, MemCycles: memCycles}
}

// Access performs a load or store at addr and returns the total latency
// in cycles and the level that satisfied it.
func (h *Hierarchy) Access(addr uint64, write bool) (latency int, level Level) {
	hit, _ := h.L1.Access(addr, write)
	if hit {
		h.served[LevelL1]++
		return h.L1Latency, LevelL1
	}
	// L1 miss: the fill is read from L2 regardless of write-ness
	// (write-allocate).
	l2hit, _ := h.L2.Access(addr, false)
	if l2hit {
		h.served[LevelL2]++
		return h.L1Latency + h.L2Latency, LevelL2
	}
	h.served[LevelMem]++
	return h.L1Latency + h.L2Latency + h.MemCycles, LevelMem
}

// ResetStats zeroes the hierarchy and cache statistics, preserving
// contents.
func (h *Hierarchy) ResetStats() {
	h.served = [3]uint64{}
	h.L1.ResetStats()
	h.L2.ResetStats()
}

// Served returns how many accesses each level satisfied.
func (h *Hierarchy) Served(l Level) uint64 { return h.served[l] }

// ServedFraction returns the fraction of accesses satisfied at level l.
func (h *Hierarchy) ServedFraction(l Level) float64 {
	total := h.served[0] + h.served[1] + h.served[2]
	if total == 0 {
		return 0
	}
	return float64(h.served[l]) / float64(total)
}
