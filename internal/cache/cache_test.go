package cache

import (
	"math/rand"
	"testing"
)

func TestCacheColdMissThenHit(t *testing.T) {
	c := New(Config{Name: "l1", Size: 32 << 10, Ways: 8, LineSize: 64, Latency: 3})
	if hit, _ := c.Access(0x1000, false); hit {
		t.Error("cold access hit")
	}
	if hit, _ := c.Access(0x1000, false); !hit {
		t.Error("second access missed")
	}
	// Same line, different offset: still a hit.
	if hit, _ := c.Access(0x103f, false); !hit {
		t.Error("same-line access missed")
	}
	// Next line: miss.
	if hit, _ := c.Access(0x1040, false); hit {
		t.Error("next-line access hit")
	}
}

func TestCacheLRUWithinSet(t *testing.T) {
	// 4 sets × 2 ways × 64B lines = 512B.
	c := New(Config{Name: "tiny", Size: 512, Ways: 2, LineSize: 64})
	setStride := uint64(4 * 64)
	a, b, d := uint64(0), setStride, 2*setStride // same set (set 0)
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is MRU
	c.Access(d, false) // evicts b
	if !c.Probe(a) {
		t.Error("MRU line evicted")
	}
	if c.Probe(b) {
		t.Error("LRU line survived")
	}
	if !c.Probe(d) {
		t.Error("newly filled line absent")
	}
}

func TestCacheWritebackOnDirtyEviction(t *testing.T) {
	c := New(Config{Name: "tiny", Size: 128, Ways: 1, LineSize: 64}) // 2 sets, direct-mapped
	setStride := uint64(2 * 64)
	c.Access(0, true) // dirty line in set 0
	_, wb := c.Access(setStride, false)
	if !wb {
		t.Error("dirty eviction did not report writeback")
	}
	_, _, wbs := c.Stats()
	if wbs != 1 {
		t.Errorf("writebacks = %d, want 1", wbs)
	}
	// Clean eviction: no writeback.
	_, wb = c.Access(2*setStride, false)
	if wb {
		t.Error("clean eviction reported writeback")
	}
}

func TestCacheWorkingSetBehaviour(t *testing.T) {
	// A working set within capacity should converge to ~0 misses; one
	// far beyond capacity should keep missing.
	run := func(ws uint64) float64 {
		c := New(Config{Name: "l1", Size: 32 << 10, Ways: 8, LineSize: 64})
		rng := rand.New(rand.NewSource(5))
		// Warm up, then measure.
		for i := 0; i < 20000; i++ {
			c.Access(rng.Uint64()%ws, false)
		}
		a0, m0, _ := c.Stats()
		for i := 0; i < 20000; i++ {
			c.Access(rng.Uint64()%ws, false)
		}
		a1, m1, _ := c.Stats()
		return float64(m1-m0) / float64(a1-a0)
	}
	if mr := run(16 << 10); mr > 0.01 {
		t.Errorf("in-capacity working set miss rate = %.4f, want ~0", mr)
	}
	if mr := run(4 << 20); mr < 0.5 {
		t.Errorf("4MB working set in 32KB cache miss rate = %.4f, want > 0.5", mr)
	}
}

func TestCacheMissRateAndStats(t *testing.T) {
	c := New(Config{Name: "x", Size: 1 << 10, Ways: 2, LineSize: 64})
	c.Access(0, false)
	c.Access(0, false)
	if got := c.MissRate(); got != 0.5 {
		t.Errorf("miss rate = %g, want 0.5", got)
	}
	a, m, _ := c.Stats()
	if a != 2 || m != 1 {
		t.Errorf("stats = (%d,%d), want (2,1)", a, m)
	}
}

func TestCacheRejectsBadGeometry(t *testing.T) {
	bad := []Config{
		{Name: "a", Size: 0, Ways: 1, LineSize: 64},
		{Name: "b", Size: 1024, Ways: 1, LineSize: 60},
		{Name: "c", Size: 96 * 64, Ways: 1, LineSize: 64}, // 96 sets: not power of two
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestTLBPageGranularity(t *testing.T) {
	tlb := NewTLB("dtlb", 256, 4)
	if tlb.Access(0x1000) {
		t.Error("cold TLB access hit")
	}
	if !tlb.Access(0x1fff) {
		t.Error("same-page access missed")
	}
	if tlb.Access(0x2000) {
		t.Error("next-page access hit")
	}
	a, m := tlb.Stats()
	if a != 3 || m != 2 {
		t.Errorf("TLB stats = (%d,%d), want (3,2)", a, m)
	}
	if tlb.MissRate() <= 0 {
		t.Error("TLB miss rate should be positive")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	l1 := New(Config{Name: "l1", Size: 32 << 10, Ways: 8, LineSize: 64})
	l2 := New(Config{Name: "l2", Size: 4 << 20, Ways: 16, LineSize: 64})
	h := NewHierarchy(l1, l2, 3, 12, 160)

	// Cold: misses everywhere → 3+12+160.
	lat, lvl := h.Access(0x10000, false)
	if lat != 175 || lvl != LevelMem {
		t.Errorf("cold access = (%d, %v), want (175, mem)", lat, lvl)
	}
	// Now in both L1 and L2 → L1 hit.
	lat, lvl = h.Access(0x10000, false)
	if lat != 3 || lvl != LevelL1 {
		t.Errorf("warm access = (%d, %v), want (3, L1)", lat, lvl)
	}
	// Evict from L1 by sweeping its capacity (same L1 set), keep in L2.
	for i := uint64(1); i <= 8; i++ {
		h.Access(0x10000+i*(32<<10)/8, false)
	}
	lat, lvl = h.Access(0x10000, false)
	if lat != 15 || lvl != LevelL2 {
		t.Errorf("L2 hit = (%d, %v), want (15, L2)", lat, lvl)
	}
}

func TestHierarchyServedCounters(t *testing.T) {
	l1 := New(Config{Name: "l1", Size: 1 << 10, Ways: 2, LineSize: 64})
	l2 := New(Config{Name: "l2", Size: 8 << 10, Ways: 4, LineSize: 64})
	h := NewHierarchy(l1, l2, 3, 12, 100)
	h.Access(0, false)
	h.Access(0, false)
	if h.Served(LevelMem) != 1 || h.Served(LevelL1) != 1 {
		t.Errorf("served = [%d %d %d]", h.Served(LevelL1), h.Served(LevelL2), h.Served(LevelMem))
	}
	if f := h.ServedFraction(LevelL1); f != 0.5 {
		t.Errorf("L1 fraction = %g, want 0.5", f)
	}
}

func TestLevelStrings(t *testing.T) {
	if LevelL1.String() != "L1" || LevelL2.String() != "L2" || LevelMem.String() != "mem" {
		t.Error("level names wrong")
	}
}
