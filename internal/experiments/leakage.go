package experiments

import (
	"fmt"

	"thermalherd/internal/config"
	"thermalherd/internal/floorplan"
	"thermalherd/internal/power"
	"thermalherd/internal/thermal"
)

// LeakageFeedbackResult reports the converged power/temperature fixpoint
// when leakage depends on local temperature.
type LeakageFeedbackResult struct {
	// PeakNoFeedbackK is the peak with temperature-independent leakage
	// (the paper's assumption).
	PeakNoFeedbackK float64
	// PeakK is the converged peak with exponential leakage feedback.
	PeakK float64
	// LeakageW is the converged total leakage (vs. the nominal 18 W).
	LeakageW float64
	// Iterations until |ΔT| < 0.1 K.
	Iterations int
	// Diverged is set if the loop failed to converge (thermal runaway).
	Diverged bool
}

// LeakageFeedback iterates the power and thermal models to a fixpoint
// with temperature-dependent leakage — an effect the paper's methodology
// (like most HotSpot studies of its era) holds constant, and a natural
// robustness check on the thermal conclusions: herding should still win
// when hot spots pay a leakage premium.
func LeakageFeedback(r *Runner, cfg config.Machine, workload string) (*LeakageFeedbackResult, error) {
	b, err := r.PowerFor(cfg, workload)
	if err != nil {
		return nil, err
	}
	fp := floorplan.Planar()
	build := thermal.BuildPlanar
	if cfg.ThreeD {
		fp = floorplan.Stacked()
		build = thermal.BuildStacked
	}

	solveWith := func(unitW map[power.UnitKey]float64) (*thermal.Solution, error) {
		stack, err := build(fp, func(u floorplan.Unit) float64 {
			return unitW[power.UnitKey{Block: u.Block, Core: u.Core, Die: u.Die}]
		}, r.opts.Grid, r.opts.Grid)
		if err != nil {
			return nil, err
		}
		return stack.Solve()
	}

	base, err := solveWith(b.UnitW)
	if err != nil {
		return nil, err
	}
	res := &LeakageFeedbackResult{}
	res.PeakNoFeedbackK, _, _, _ = base.Peak()

	cur := make(map[power.UnitKey]float64, len(b.UnitW))
	for k, v := range b.UnitW {
		cur[k] = v
	}
	prevPeak := res.PeakNoFeedbackK
	sol := base
	const maxIters = 20
	for iter := 1; iter <= maxIters; iter++ {
		res.Iterations = iter
		// Rescale each unit's leakage by its local temperature.
		var totalLeak float64
		for k, w := range b.UnitW {
			leak := b.UnitLeakW[k]
			u, ok := fp.Find(k.Block, k.Core, k.Die)
			scale := 1.0
			if ok {
				scale = power.LeakageScaleAt(thermal.PeakOfUnit(sol, fp, u))
			}
			cur[k] = w - leak + leak*scale
			totalLeak += leak * scale
		}
		res.LeakageW = totalLeak
		sol, err = solveWith(cur)
		if err != nil {
			return nil, err
		}
		peak, _, _, _ := sol.Peak()
		res.PeakK = peak
		if peak > 500 {
			res.Diverged = true
			return res, nil
		}
		if d := peak - prevPeak; d < 0.1 && d > -0.1 {
			return res, nil
		}
		prevPeak = peak
	}
	res.Diverged = true
	return res, nil
}

// RenderLeakageFeedback formats the result.
func (l *LeakageFeedbackResult) String() string {
	if l.Diverged {
		return fmt.Sprintf("DIVERGED after %d iterations (thermal runaway; last peak %.1f K)",
			l.Iterations, l.PeakK)
	}
	return fmt.Sprintf("peak %.1f K -> %.1f K with leakage feedback (+%.1f K, leakage %.1f W, %d iterations)",
		l.PeakNoFeedbackK, l.PeakK, l.PeakK-l.PeakNoFeedbackK, l.LeakageW, l.Iterations)
}
