package experiments

import (
	"fmt"

	"thermalherd/internal/config"
	"thermalherd/internal/core"
	"thermalherd/internal/floorplan"
	"thermalherd/internal/stats"
	"thermalherd/internal/trace"
)

// AblationWidthPolicy compares width-prediction policies on one
// workload: the two-bit predictor against a perfect oracle and the two
// degenerate static policies. It reports IPC and the top-die activity
// share of the integer execution units (gating coverage).
func AblationWidthPolicy(r *Runner, workload string) (*stats.Table, error) {
	t := stats.NewTable("Policy", "IPC", "IntExec top-die share", "Unsafe rate")
	for _, pol := range []core.OraclePolicy{
		core.PolicyTwoBit, core.PolicyOracle, core.PolicyAlwaysLow, core.PolicyAlwaysFull,
	} {
		cfg := config.ThreeD()
		cfg.Name = "3D/" + pol.String()
		cfg.WidthPolicy = pol
		s, err := r.Simulate(cfg, workload)
		if err != nil {
			return nil, err
		}
		t.AddRow(pol.String(),
			fmt.Sprintf("%.3f", s.IPC()),
			fmt.Sprintf("%.3f", s.BlockDie[floorplan.BlkIntExec].TopDieShare()),
			fmt.Sprintf("%.4f", s.WidthUnsafeRate))
	}
	return t, nil
}

// AblationAllocator compares the herded (top-die-first) scheduler
// allocation against round-robin: top-die allocation share and the mean
// number of die each tag broadcast drives.
func AblationAllocator(r *Runner, workload string) (*stats.Table, error) {
	t := stats.NewTable("Allocator", "IPC", "Top-die alloc share", "Mean broadcast dies")
	for _, pol := range []core.AllocPolicy{core.AllocHerded, core.AllocRoundRobin} {
		cfg := config.ThreeD()
		cfg.Name = "3D/" + pol.String()
		cfg.AllocPolicy = pol
		s, err := r.Simulate(cfg, workload)
		if err != nil {
			return nil, err
		}
		t.AddRow(pol.String(),
			fmt.Sprintf("%.3f", s.IPC()),
			fmt.Sprintf("%.3f", s.RSTopDieShare),
			fmt.Sprintf("%.2f", s.MeanBroadcastDie))
	}
	return t, nil
}

// AblationPVEncoding quantifies the coverage of the 2-bit partial value
// encoding against a 1-bit zeros-only memoization, per workload group.
func AblationPVEncoding(r *Runner) (*stats.Table, error) {
	t := stats.NewTable("Group", "2-bit low fraction", "zeros-only fraction", "gain")
	cfg := config.ThreeD()
	for _, g := range trace.Groups() {
		var two, zero, n float64
		for _, p := range trace.GroupProfiles(g) {
			s, err := r.Simulate(cfg, p.Name)
			if err != nil {
				return nil, err
			}
			total := float64(s.PV.Total())
			two += s.PV.LowFraction() * total
			zero += s.PV.ZeroOnlyFraction() * total
			n += total
		}
		if n == 0 {
			continue
		}
		t.AddRow(g.String(),
			fmt.Sprintf("%.3f", two/n),
			fmt.Sprintf("%.3f", zero/n),
			fmt.Sprintf("%+.3f", (two-zero)/n))
	}
	return t, nil
}

// AblationPAM reports the partial-address-memoization hit rate and the
// LSQ top-die activity share per workload group — against the implicit
// baseline of broadcasting all 64 address bits to every die.
func AblationPAM(r *Runner) (*stats.Table, error) {
	t := stats.NewTable("Group", "PAM hit rate", "LSQ top-die share")
	cfg := config.ThreeD()
	for _, g := range trace.Groups() {
		var hit, share, n float64
		for _, p := range trace.GroupProfiles(g) {
			s, err := r.Simulate(cfg, p.Name)
			if err != nil {
				return nil, err
			}
			hit += s.PAMHitRate
			share += s.BlockDie[floorplan.BlkLSQ].TopDieShare()
			n++
		}
		t.AddRow(g.String(), fmt.Sprintf("%.3f", hit/n), fmt.Sprintf("%.3f", share/n))
	}
	return t, nil
}

// AblationD2DResistance sweeps the die-to-die via-field copper occupancy
// and reports the 3D worst-case peak temperature sensitivity for one
// workload (DESIGN.md's thermal-resistance sensitivity study).
func AblationD2DResistance(r *Runner, workload string, occupancies []float64) (*stats.Table, error) {
	t := stats.NewTable("Cu occupancy", "effective k (W/mK)", "peak (K)")
	cfg := config.ThreeD()
	b, err := r.PowerFor(cfg, workload)
	if err != nil {
		return nil, err
	}
	fp := floorplan.Stacked()
	for _, occ := range occupancies {
		keff := occ*395.0 + (1-occ)*0.026
		stack, err := buildStackedWithD2DK(fp, b, keff, r.opts.Grid)
		if err != nil {
			return nil, err
		}
		sol, err := stack.Solve()
		if err != nil {
			return nil, err
		}
		peak, _, _, _ := sol.Peak()
		t.AddRow(fmt.Sprintf("%.0f%%", 100*occ), fmt.Sprintf("%.1f", keff), fmt.Sprintf("%.1f", peak))
	}
	return t, nil
}
