// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5): Table 2's 2D-vs-3D block latencies, Figure 8's
// IPC/performance comparison across the five machine configurations and
// seven benchmark groups, Figure 9's power breakdown, Figure 10's thermal
// analysis, the Section 5.3 power-density study, the Section 3.8 width
// prediction accuracy claim, and the ablation studies DESIGN.md calls
// out.
package experiments

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"

	"thermalherd/internal/config"
	"thermalherd/internal/cpu"
	"thermalherd/internal/floorplan"
	"thermalherd/internal/power"
	"thermalherd/internal/thermal"
	"thermalherd/internal/trace"
)

// Options controls simulation depth and parallelism.
type Options struct {
	// FastForwardInsts are streamed through functional warming (caches,
	// predictors) before the cycle-level warmup — SimpleScalar-style
	// fast-forward.
	FastForwardInsts uint64
	// WarmupInsts are executed through the cycle-level model before
	// measurement to settle pipeline state (SimPoint-style warmup).
	WarmupInsts uint64
	// MeasureInsts are the instructions actually measured.
	MeasureInsts uint64
	// Parallelism bounds concurrent workload simulations.
	Parallelism int
	// Grid is the lateral thermal grid resolution.
	Grid int
	// OnSimulated, when non-nil, is invoked after every workload
	// simulation a Runner completes (cache hits included) with the
	// machine and workload names. The thermherdd daemon uses it to
	// report job progress.
	OnSimulated func(cfg, workload string)
}

// envUint applies the named environment override to *dst. Unset
// variables are ignored silently; set-but-unusable values (unparsable
// or zero) are ignored with a one-line warning on stderr.
func envUint(name string, dst *uint64) {
	s := os.Getenv(name)
	if s == "" {
		return
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil || v == 0 {
		fmt.Fprintf(os.Stderr, "experiments: ignoring %s=%q: want a positive integer\n", name, s)
		return
	}
	*dst = v
}

// DefaultOptions returns the depths used for the recorded results.
// The environment variables THERMALHERD_FF, THERMALHERD_WARM and
// THERMALHERD_MEASURE override the instruction counts for quicker
// exploratory runs, and THERMALHERD_PARALLEL overrides the workload
// parallelism.
func DefaultOptions() Options {
	o := Options{
		FastForwardInsts: 6_000_000,
		WarmupInsts:      200_000,
		MeasureInsts:     200_000,
		Parallelism:      runtime.NumCPU(),
		Grid:             thermal.DefaultGrid,
	}
	envUint("THERMALHERD_FF", &o.FastForwardInsts)
	envUint("THERMALHERD_WARM", &o.WarmupInsts)
	envUint("THERMALHERD_MEASURE", &o.MeasureInsts)
	var par uint64
	envUint("THERMALHERD_PARALLEL", &par)
	if par > 0 {
		o.Parallelism = int(par)
	}
	return o
}

// QuickOptions returns shallow depths for unit tests.
func QuickOptions() Options {
	return Options{
		FastForwardInsts: 300_000,
		WarmupInsts:      60_000,
		MeasureInsts:     60_000,
		Parallelism:      runtime.NumCPU(),
		Grid:             16,
	}
}

type simKey struct {
	cfg      string
	workload string
	policy   string // width-policy/alloc-policy variants for ablations
}

// Runner executes and caches workload simulations.
type Runner struct {
	opts  Options
	ctx   context.Context
	mu    sync.Mutex
	cache map[simKey]*cpu.Stats
}

// NewRunner builds a runner with the given options.
func NewRunner(opts Options) *Runner {
	if opts.Parallelism <= 0 {
		opts.Parallelism = 1
	}
	return &Runner{opts: opts, ctx: context.Background(), cache: make(map[simKey]*cpu.Stats)}
}

// Options returns the runner's options.
func (r *Runner) Options() Options { return r.opts }

// SetContext attaches ctx to the runner. Once ctx is canceled,
// simulations abort between pipeline phases (and SimulateMany between
// workloads) returning ctx.Err(). The thermherdd daemon uses this for
// per-job cancellation.
func (r *Runner) SetContext(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	r.ctx = ctx
}

// simulated reports one finished workload simulation to the optional
// progress callback.
func (r *Runner) simulated(cfg config.Machine, workload string) {
	if r.opts.OnSimulated != nil {
		r.opts.OnSimulated(cfg.Name, workload)
	}
}

// Simulate runs (or returns the cached result of) workload under cfg.
func (r *Runner) Simulate(cfg config.Machine, workload string) (*cpu.Stats, error) {
	key := simKey{cfg.Name, workload, fmt.Sprint(cfg.WidthPolicy, cfg.AllocPolicy)}
	r.mu.Lock()
	if s, ok := r.cache[key]; ok {
		r.mu.Unlock()
		r.simulated(cfg, workload)
		return s, nil
	}
	r.mu.Unlock()

	if err := r.ctx.Err(); err != nil {
		return nil, err
	}
	prof, err := trace.ProfileByName(workload)
	if err != nil {
		return nil, err
	}
	c, err := cpu.New(cfg, trace.NewGenerator(prof))
	if err != nil {
		return nil, err
	}
	c.FastForward(r.opts.FastForwardInsts)
	if err := r.ctx.Err(); err != nil {
		return nil, err
	}
	c.Warmup(r.opts.WarmupInsts)
	if err := r.ctx.Err(); err != nil {
		return nil, err
	}
	s := c.Run(r.opts.MeasureInsts)

	r.mu.Lock()
	r.cache[key] = s
	r.mu.Unlock()
	r.simulated(cfg, workload)
	return s, nil
}

// SimulateMany runs all (config, workload) pairs with bounded
// parallelism, returning the first error encountered.
func (r *Runner) SimulateMany(cfgs []config.Machine, workloads []string) error {
	type job struct {
		cfg      config.Machine
		workload string
	}
	jobs := make(chan job)
	errs := make(chan error, r.opts.Parallelism)
	var wg sync.WaitGroup
	for w := 0; w < r.opts.Parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if _, err := r.Simulate(j.cfg, j.workload); err != nil {
					select {
					case errs <- err:
					default:
					}
				}
			}
		}()
	}
feed:
	for _, cfg := range cfgs {
		for _, wl := range workloads {
			if r.ctx.Err() != nil {
				break feed
			}
			jobs <- job{cfg, wl}
		}
	}
	close(jobs)
	wg.Wait()
	if err := r.ctx.Err(); err != nil {
		return err
	}
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// PowerFor computes the power breakdown of workload under cfg.
func (r *Runner) PowerFor(cfg config.Machine, workload string) (*power.Breakdown, error) {
	s, err := r.Simulate(cfg, workload)
	if err != nil {
		return nil, err
	}
	fp := floorplan.Planar()
	if cfg.ThreeD {
		fp = floorplan.Stacked()
	}
	b, err := power.Compute(cfg, s, fp)
	if err != nil {
		return nil, err
	}
	b.Workload = workload
	return b, nil
}

// SolveThermal runs the thermal solver on a power breakdown.
func (r *Runner) SolveThermal(cfg config.Machine, b *power.Breakdown) (*thermal.Solution, *floorplan.Floorplan, error) {
	if cfg.ThreeD {
		fp := floorplan.Stacked()
		watts := func(u floorplan.Unit) float64 {
			return b.UnitW[power.UnitKey{Block: u.Block, Core: u.Core, Die: u.Die}]
		}
		stack, err := thermal.BuildStacked(fp, watts, r.opts.Grid, r.opts.Grid)
		if err != nil {
			return nil, nil, err
		}
		sol, err := stack.Solve()
		return sol, fp, err
	}
	fp := floorplan.Planar()
	watts := func(u floorplan.Unit) float64 {
		return b.UnitW[power.UnitKey{Block: u.Block, Core: u.Core, Die: u.Die}]
	}
	stack, err := thermal.BuildPlanar(fp, watts, r.opts.Grid, r.opts.Grid)
	if err != nil {
		return nil, nil, err
	}
	sol, err := stack.Solve()
	return sol, fp, err
}

// AllWorkloadNames returns the 106 workload names.
func AllWorkloadNames() []string {
	return trace.Names()
}
