package experiments

import (
	"testing"

	"thermalherd/internal/config"
	"thermalherd/internal/cpu"
	"thermalherd/internal/trace"
)

func BenchmarkSimSpeed(b *testing.B) {
	p, _ := trace.ProfileByName("gzip")
	for i := 0; i < b.N; i++ {
		c, _ := cpu.New(config.ThreeD(), trace.NewGenerator(p))
		c.Run(1_000_000)
	}
}
