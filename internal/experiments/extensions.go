package experiments

import (
	"fmt"

	"thermalherd/internal/config"
	"thermalherd/internal/core"
	"thermalherd/internal/cpu"
	"thermalherd/internal/floorplan"
	"thermalherd/internal/power"
	"thermalherd/internal/stats"
	"thermalherd/internal/thermal"
	"thermalherd/internal/trace"
)

// This file implements the extension studies beyond the paper's figures:
// the performance-for-power conversion the paper attributes to Black et
// al. (Section 5.3), heterogeneous two-core pairings, the value-width
// census behind the Section 3 premise, and the thermal transient of a
// workload start.

// PerfToPowerPoint is one frequency point of the conversion study.
type PerfToPowerPoint struct {
	ClockGHz float64
	IPns     float64
	TotalW   float64
	PeakK    float64
}

// PerfToPower reproduces the observation the paper cites from Black et
// al.: part of the 3D performance gain can be converted into power (and
// temperature) reduction by clocking the 3D design lower. It sweeps the
// 3D clock from the baseline frequency to the full 3.93 GHz and reports
// performance, power, and peak temperature at each point, plus the
// baseline planar reference. Frequency-only scaling (no voltage scaling)
// keeps the estimate conservative.
func PerfToPower(r *Runner, workload string, points int) ([]PerfToPowerPoint, PerfToPowerPoint, error) {
	if points < 2 {
		points = 2
	}
	baseB, err := r.PowerFor(config.Baseline(), workload)
	if err != nil {
		return nil, PerfToPowerPoint{}, err
	}
	baseS, err := r.Simulate(config.Baseline(), workload)
	if err != nil {
		return nil, PerfToPowerPoint{}, err
	}
	baseSol, _, err := r.SolveThermal(config.Baseline(), baseB)
	if err != nil {
		return nil, PerfToPowerPoint{}, err
	}
	basePeak, _, _, _ := baseSol.Peak()
	ref := PerfToPowerPoint{
		ClockGHz: config.BaseClockGHz,
		IPns:     baseS.IPns(config.BaseClockGHz),
		TotalW:   baseB.TotalW,
		PeakK:    basePeak,
	}

	var out []PerfToPowerPoint
	for i := 0; i < points; i++ {
		f := config.BaseClockGHz +
			(config.ThreeDClockGHz-config.BaseClockGHz)*float64(i)/float64(points-1)
		cfg := config.ThreeD()
		cfg.Name = fmt.Sprintf("3D@%.2f", f)
		cfg.ClockGHz = f
		s, err := r.Simulate(cfg, workload)
		if err != nil {
			return nil, ref, err
		}
		fp := floorplan.Stacked()
		b, err := power.Compute(cfg, s, fp)
		if err != nil {
			return nil, ref, err
		}
		sol, _, err := r.SolveThermal(cfg, b)
		if err != nil {
			return nil, ref, err
		}
		peak, _, _, _ := sol.Peak()
		out = append(out, PerfToPowerPoint{
			ClockGHz: f, IPns: s.IPns(f), TotalW: b.TotalW, PeakK: peak,
		})
	}
	return out, ref, nil
}

// RenderPerfToPower prints the conversion sweep.
func RenderPerfToPower(points []PerfToPowerPoint, ref PerfToPowerPoint) *stats.Table {
	t := stats.NewTable("Config", "Clock (GHz)", "IPns", "vs Base", "Power (W)", "Peak (K)")
	t.AddRow("Base (planar)", fmt.Sprintf("%.2f", ref.ClockGHz), fmt.Sprintf("%.2f", ref.IPns),
		"+0.0%", fmt.Sprintf("%.1f", ref.TotalW), fmt.Sprintf("%.1f", ref.PeakK))
	for _, p := range points {
		t.AddRow("3D", fmt.Sprintf("%.2f", p.ClockGHz), fmt.Sprintf("%.2f", p.IPns),
			fmt.Sprintf("%+.1f%%", 100*(p.IPns/ref.IPns-1)),
			fmt.Sprintf("%.1f", p.TotalW), fmt.Sprintf("%.1f", p.PeakK))
	}
	return t
}

// MixedPairResult summarizes a heterogeneous two-core run.
type MixedPairResult struct {
	Workloads [2]string
	TotalW    float64
	PeakK     float64
	Hotspot   string
	HotCore   int
}

// MixedPair runs two different workloads, one per core, under cfg, and
// reports the combined power and thermal outcome — the asymmetric-load
// scenario the paper's symmetric setup does not cover.
func MixedPair(r *Runner, cfg config.Machine, wl0, wl1 string) (*MixedPairResult, error) {
	s0, err := r.Simulate(cfg, wl0)
	if err != nil {
		return nil, err
	}
	s1, err := r.Simulate(cfg, wl1)
	if err != nil {
		return nil, err
	}
	fp := floorplan.Planar()
	if cfg.ThreeD {
		fp = floorplan.Stacked()
	}
	b, err := power.ComputeDual(cfg, [2]*cpu.Stats{s0, s1}, fp)
	if err != nil {
		return nil, err
	}
	sol, _, err := r.SolveThermal(cfg, b)
	if err != nil {
		return nil, err
	}
	u, peak, ok := thermal.HottestUnit(sol, fp)
	res := &MixedPairResult{Workloads: [2]string{wl0, wl1}, TotalW: b.TotalW, PeakK: peak}
	if ok {
		res.Hotspot = u.Block.String()
		res.HotCore = u.Core
	}
	return res, nil
}

// ValueWidthCensus aggregates the integer result-width distribution per
// benchmark group — the Section 3 premise ("many 64-bit integer values
// require only 16 or fewer bits").
func ValueWidthCensus(r *Runner) (*stats.Table, error) {
	t := stats.NewTable("Group", "<=16b", "17-32b", "33-48b", "49-64b")
	cfg := config.ThreeD()
	for _, g := range trace.Groups() {
		var words [5]uint64
		for _, p := range trace.GroupProfiles(g) {
			s, err := r.Simulate(cfg, p.Name)
			if err != nil {
				return nil, err
			}
			for w := 1; w <= core.NumDies; w++ {
				words[w] += s.WidthWords[w]
			}
		}
		total := float64(words[1] + words[2] + words[3] + words[4])
		if total == 0 {
			continue
		}
		t.AddRow(g.String(),
			fmt.Sprintf("%.3f", float64(words[1])/total),
			fmt.Sprintf("%.3f", float64(words[2])/total),
			fmt.Sprintf("%.3f", float64(words[3])/total),
			fmt.Sprintf("%.3f", float64(words[4])/total))
	}
	return t, nil
}

// ThermalTransient simulates the first seconds after workload onset on
// the 3D design and reports how quickly the worst-case hotspot forms.
func ThermalTransient(r *Runner, workload string, duration float64) (*thermal.TransientResult, error) {
	cfg := config.ThreeD()
	b, err := r.PowerFor(cfg, workload)
	if err != nil {
		return nil, err
	}
	fp := floorplan.Stacked()
	watts := func(u floorplan.Unit) float64 {
		return b.UnitW[power.UnitKey{Block: u.Block, Core: u.Core, Die: u.Die}]
	}
	stack, err := thermal.BuildStacked(fp, watts, 16, 16)
	if err != nil {
		return nil, err
	}
	return stack.SolveTransient(duration, duration/200, 10)
}
