package experiments

import (
	"testing"

	"thermalherd/internal/config"
	"thermalherd/internal/cpu"
	"thermalherd/internal/emu"
	"thermalherd/internal/floorplan"
	"thermalherd/internal/kernels"
	"thermalherd/internal/power"
	"thermalherd/internal/thermal"
	"thermalherd/internal/trace"
)

// TestKernelEndToEnd drives a real TH64 program (functional emulation)
// through the timing model, the power model, and the thermal solver —
// the full stack a library user composes.
func TestKernelEndToEnd(t *testing.T) {
	k := kernels.PointerChase(64, 200)

	runOn := func(cfg config.Machine) (*cpu.Stats, *power.Breakdown, float64) {
		m := emu.New(k.Program)
		c, err := cpu.New(cfg, emu.NewSource(m, 0))
		if err != nil {
			t.Fatal(err)
		}
		s := c.Run(1 << 60) // to completion
		if s.Insts == 0 {
			t.Fatal("no instructions executed")
		}
		// The emulator must still have computed the right answer.
		if got := m.IntRegs[k.ResultReg]; got != k.Expected {
			t.Fatalf("kernel result %d, want %d", got, k.Expected)
		}
		fp := floorplan.Planar()
		if cfg.ThreeD {
			fp = floorplan.Stacked()
		}
		b, err := power.Compute(cfg, s, fp)
		if err != nil {
			t.Fatal(err)
		}
		watts := func(u floorplan.Unit) float64 {
			return b.UnitW[power.UnitKey{Block: u.Block, Core: u.Core, Die: u.Die}]
		}
		var stack *thermal.Stack
		if cfg.ThreeD {
			stack, err = thermal.BuildStacked(fp, watts, 16, 16)
		} else {
			stack, err = thermal.BuildPlanar(fp, watts, 16, 16)
		}
		if err != nil {
			t.Fatal(err)
		}
		sol, err := stack.Solve()
		if err != nil {
			t.Fatal(err)
		}
		peak, _, _, _ := sol.Peak()
		return s, b, peak
	}

	sBase, bBase, peakBase := runOn(config.Baseline())
	s3D, b3D, peak3D := runOn(config.ThreeD())

	// Performance: the kernel is cache-resident, so 3D should deliver a
	// large fraction of the frequency gain.
	speedup := s3D.IPns(config.ThreeDClockGHz) / sBase.IPns(config.BaseClockGHz)
	if speedup < 1.2 {
		t.Errorf("3D speedup on pointer chase = %.3f, want >= 1.2", speedup)
	}
	// Power: 3D with herding must be cheaper.
	if b3D.TotalW >= bBase.TotalW {
		t.Errorf("3D power (%.1f W) not below planar (%.1f W)", b3D.TotalW, bBase.TotalW)
	}
	// Thermals: both must solve to sane temperatures above ambient.
	for _, p := range []float64{peakBase, peak3D} {
		if p <= thermal.AmbientK || p > 500 {
			t.Errorf("implausible peak temperature %.1f K", p)
		}
	}
	// Herding evidence on real pointer-chasing code: PVAddr should have
	// contributed to D-cache low-width coverage.
	if s3D.PV.LowFraction() <= s3D.PV.ZeroOnlyFraction() {
		t.Errorf("2-bit PV encoding (%.3f) did not beat zeros-only (%.3f) on pointer chase",
			s3D.PV.LowFraction(), s3D.PV.ZeroOnlyFraction())
	}
}

// TestKernelWidthAccuracyHigh checks the paper's predictability claim on
// real computation end to end through the pipeline.
func TestKernelWidthAccuracyHigh(t *testing.T) {
	for _, k := range []kernels.Kernel{kernels.Fibonacci(92), kernels.ArraySum(256)} {
		m := emu.New(k.Program)
		c, err := cpu.New(config.ThreeD(), emu.NewSource(m, 0))
		if err != nil {
			t.Fatal(err)
		}
		s := c.Run(1 << 60)
		if s.WidthPredictions == 0 {
			t.Fatalf("%s: no width predictions", k.Name)
		}
		if s.WidthAccuracy < 0.9 {
			t.Errorf("%s: width accuracy %.3f, want >= 0.9", k.Name, s.WidthAccuracy)
		}
	}
}

// TestSyntheticAndEmulatedAgreeOnPremises cross-validates the synthetic
// generator against real code: both must exhibit high PAM hit rates and
// high width predictability — the two phenomena Thermal Herding rests
// on.
func TestSyntheticAndEmulatedAgreeOnPremises(t *testing.T) {
	// Real kernel.
	m := emu.New(kernels.BubbleSort(24).Program)
	cReal, err := cpu.New(config.ThreeD(), emu.NewSource(m, 0))
	if err != nil {
		t.Fatal(err)
	}
	real := cReal.Run(1 << 60)

	// Synthetic workload.
	prof, err := trace.ProfileByName("qsort")
	if err != nil {
		t.Fatal(err)
	}
	cSyn, err := cpu.New(config.ThreeD(), trace.NewGenerator(prof))
	if err != nil {
		t.Fatal(err)
	}
	cSyn.Warmup(100_000)
	syn := cSyn.Run(60_000)

	// The emulated kernel works on one contiguous array, so its PAM
	// locality is near-perfect; the synthetic workload interleaves
	// independent regions (stack, hot set, streams), which caps PAM at a
	// moderate rate — both must still clear their floors, and width
	// predictability must be high for both.
	for _, probe := range []struct {
		name      string
		real, syn float64
		minReal   float64
		minSyn    float64
	}{
		{"PAM hit rate", real.PAMHitRate, syn.PAMHitRate, 0.6, 0.25},
		{"width accuracy", real.WidthAccuracy, syn.WidthAccuracy, 0.85, 0.85},
	} {
		if probe.real < probe.minReal {
			t.Errorf("emulated %s = %.3f below %.2f", probe.name, probe.real, probe.minReal)
		}
		if probe.syn < probe.minSyn {
			t.Errorf("synthetic %s = %.3f below %.2f", probe.name, probe.syn, probe.minSyn)
		}
	}
}
