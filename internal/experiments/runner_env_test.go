package experiments

import (
	"os"
	"strings"
	"testing"
)

// captureStderr runs f and returns what it wrote to stderr.
func captureStderr(t *testing.T, f func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stderr
	os.Stderr = w
	defer func() { os.Stderr = old }()
	f()
	w.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

func TestDefaultOptionsEnvOverrides(t *testing.T) {
	t.Setenv("THERMALHERD_MEASURE", "12345")
	t.Setenv("THERMALHERD_PARALLEL", "3")
	o := DefaultOptions()
	if o.MeasureInsts != 12345 {
		t.Errorf("MeasureInsts = %d, want 12345", o.MeasureInsts)
	}
	if o.Parallelism != 3 {
		t.Errorf("Parallelism = %d, want 3", o.Parallelism)
	}
}

func TestDefaultOptionsWarnsOnMalformedEnv(t *testing.T) {
	t.Setenv("THERMALHERD_WARM", "lots")
	t.Setenv("THERMALHERD_MEASURE", "0")
	var o Options
	out := captureStderr(t, func() { o = DefaultOptions() })
	if o.WarmupInsts != 200_000 || o.MeasureInsts != 200_000 {
		t.Errorf("malformed overrides applied: warm=%d measure=%d", o.WarmupInsts, o.MeasureInsts)
	}
	if !strings.Contains(out, "THERMALHERD_WARM") || !strings.Contains(out, "THERMALHERD_MEASURE") {
		t.Errorf("stderr warning missing variable names: %q", out)
	}
}

func TestDefaultOptionsSilentWhenUnset(t *testing.T) {
	for _, v := range []string{"THERMALHERD_FF", "THERMALHERD_WARM", "THERMALHERD_MEASURE", "THERMALHERD_PARALLEL"} {
		t.Setenv(v, "")
	}
	out := captureStderr(t, func() { DefaultOptions() })
	if out != "" {
		t.Errorf("unset overrides produced warnings: %q", out)
	}
}
