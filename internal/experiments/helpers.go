package experiments

import (
	"thermalherd/internal/floorplan"
	"thermalherd/internal/power"
	"thermalherd/internal/thermal"
)

// buildStackedWithD2DK builds the 3D thermal stack with an overridden
// die-to-die interface conductivity (for the sensitivity sweep).
func buildStackedWithD2DK(fp *floorplan.Floorplan, b *power.Breakdown, keff float64, grid int) (*thermal.Stack, error) {
	watts := func(u floorplan.Unit) float64 {
		return b.UnitW[power.UnitKey{Block: u.Block, Core: u.Core, Die: u.Die}]
	}
	stack, err := thermal.BuildStacked(fp, watts, grid, grid)
	if err != nil {
		return nil, err
	}
	for i := range stack.Layers {
		if thermal.LayerDie(stack, i) < 0 && stack.Layers[i].Name != "spreader" && stack.Layers[i].Name != "tim" {
			stack.Layers[i].K = keff
		}
	}
	return stack, nil
}
