package experiments

import (
	"strings"
	"testing"

	"thermalherd/internal/config"
)

func quickRunner() *Runner { return NewRunner(QuickOptions()) }

func TestTable1ContainsPaperParameters(t *testing.T) {
	out := Table1().String()
	for _, want := range []string{
		"96 entries", "32 entries", "32/20 entries", "32KB, 8-way, 3-cycle",
		"4MB, 16-way, 12-cycle", "2048-entry, 4-way", "2.66 GHz",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2ShowsFrequencyGain(t *testing.T) {
	out := Table2().String()
	for _, want := range []string{"wakeup-select", "ALU + bypass", "2.66 GHz", "3.9"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure8OnSubset(t *testing.T) {
	// The full Figure 8 harness is exercised by the benchmarks; here we
	// validate the machinery on a handful of simulations directly.
	r := quickRunner()
	base := config.Baseline()
	threeD := config.ThreeD()
	for _, wl := range []string{"crafty", "mcf"} {
		sBase, err := r.Simulate(base, wl)
		if err != nil {
			t.Fatal(err)
		}
		s3D, err := r.Simulate(threeD, wl)
		if err != nil {
			t.Fatal(err)
		}
		speedup := s3D.IPns(threeD.ClockGHz) / sBase.IPns(base.ClockGHz)
		if speedup <= 1.0 {
			t.Errorf("%s: 3D speedup = %.3f, want > 1", wl, speedup)
		}
		t.Logf("%s: speedup %.3f", wl, speedup)
	}
	// crafty (compute-bound) must speed up more than mcf (DRAM-bound).
	crB, _ := r.Simulate(base, "crafty")
	cr3, _ := r.Simulate(threeD, "crafty")
	mcB, _ := r.Simulate(base, "mcf")
	mc3, _ := r.Simulate(threeD, "mcf")
	crS := cr3.IPns(threeD.ClockGHz) / crB.IPns(base.ClockGHz)
	mcS := mc3.IPns(threeD.ClockGHz) / mcB.IPns(base.ClockGHz)
	if crS <= mcS {
		t.Errorf("crafty speedup (%.3f) not above mcf (%.3f)", crS, mcS)
	}
}

func TestRunnerCaches(t *testing.T) {
	r := quickRunner()
	a, err := r.Simulate(config.Baseline(), "gzip")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Simulate(config.Baseline(), "gzip")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second Simulate did not return the cached result")
	}
}

func TestRunnerRejectsUnknownWorkload(t *testing.T) {
	r := quickRunner()
	if _, err := r.Simulate(config.Baseline(), "nonesuch"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestDensityStudyOrdering(t *testing.T) {
	r := quickRunner()
	planar, density, err := DensityStudy(r, "mpeg2enc")
	if err != nil {
		t.Fatal(err)
	}
	if density <= planar {
		t.Errorf("density-study peak (%.1f K) not above planar (%.1f K)", density, planar)
	}
	t.Logf("planar %.1f K, 4x-density %.1f K (+%.1f)", planar, density, density-planar)
}

func TestFigure9OrderingOnReference(t *testing.T) {
	r := quickRunner()
	base, err := r.PowerFor(config.Baseline(), "mpeg2enc")
	if err != nil {
		t.Fatal(err)
	}
	noTH, err := r.PowerFor(config.ThreeDNoTH(), "mpeg2enc")
	if err != nil {
		t.Fatal(err)
	}
	th, err := r.PowerFor(config.ThreeD(), "mpeg2enc")
	if err != nil {
		t.Fatal(err)
	}
	if !(base.TotalW > noTH.TotalW && noTH.TotalW > th.TotalW) {
		t.Errorf("Figure 9 ordering violated: %.1f / %.1f / %.1f",
			base.TotalW, noTH.TotalW, th.TotalW)
	}
}

func TestThermalOrderingOnReference(t *testing.T) {
	r := quickRunner()
	peak := func(cfg config.Machine) float64 {
		b, err := r.PowerFor(cfg, "mpeg2enc")
		if err != nil {
			t.Fatal(err)
		}
		sol, _, err := r.SolveThermal(cfg, b)
		if err != nil {
			t.Fatal(err)
		}
		p, _, _, _ := sol.Peak()
		return p
	}
	base := peak(config.Baseline())
	noTH := peak(config.ThreeDNoTH())
	th := peak(config.ThreeD())
	t.Logf("peaks: base %.1f K, 3D-noTH %.1f K, 3D-TH %.1f K", base, noTH, th)
	// Figure 10 ordering: 2D < 3D-TH < 3D-noTH.
	if !(base < th && th < noTH) {
		t.Errorf("thermal ordering violated: base=%.1f th=%.1f noTH=%.1f", base, th, noTH)
	}
}

func TestAblationTablesRender(t *testing.T) {
	r := quickRunner()
	wp, err := AblationWidthPolicy(r, "gzip")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(wp.String(), "oracle") {
		t.Error("width-policy ablation missing oracle row")
	}
	al, err := AblationAllocator(r, "gzip")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(al.String(), "round-robin") {
		t.Error("allocator ablation missing round-robin row")
	}
	d2d, err := AblationD2DResistance(r, "gzip", []float64{0.05, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	out := d2d.String()
	if !strings.Contains(out, "25%") {
		t.Errorf("d2d ablation missing sweep point:\n%s", out)
	}
}

func TestWidthPolicyAblationOrdering(t *testing.T) {
	r := quickRunner()
	tbl, err := AblationWidthPolicy(r, "crafty")
	if err != nil {
		t.Fatal(err)
	}
	// Parse rows back: oracle must have zero unsafe rate, always-full
	// must have the lowest top-die share.
	lines := strings.Split(strings.TrimSpace(tbl.String()), "\n")
	vals := map[string][]string{}
	for _, l := range lines[2:] {
		f := strings.Fields(l)
		vals[f[0]] = f[1:]
	}
	if vals["oracle"][2] != "0.0000" {
		t.Errorf("oracle unsafe rate = %s, want 0", vals["oracle"][2])
	}
	if vals["always-full"][1] >= vals["oracle"][1] {
		t.Errorf("always-full top-die share (%s) should be below oracle (%s)",
			vals["always-full"][1], vals["oracle"][1])
	}
}

func TestAllWorkloadNames(t *testing.T) {
	names := AllWorkloadNames()
	if len(names) != 106 {
		t.Errorf("workload count = %d, want 106", len(names))
	}
}

func TestSimulateManyParallel(t *testing.T) {
	r := quickRunner()
	err := r.SimulateMany([]config.Machine{config.Baseline()},
		[]string{"gzip", "crafty", "adpcmenc", "bitcount"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Simulate(config.Baseline(), "gzip"); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateManySurfacesErrors(t *testing.T) {
	r := quickRunner()
	if err := r.SimulateMany([]config.Machine{config.Baseline()}, []string{"gzip", "bogus"}); err == nil {
		t.Error("SimulateMany swallowed an unknown-workload error")
	}
}
