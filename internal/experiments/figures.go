package experiments

import (
	"fmt"
	"sort"

	"thermalherd/internal/circuit"
	"thermalherd/internal/config"
	"thermalherd/internal/floorplan"
	"thermalherd/internal/power"
	"thermalherd/internal/stats"
	"thermalherd/internal/thermal"
	"thermalherd/internal/trace"
)

// Table1 renders the baseline machine parameters (the paper's Table 1).
func Table1() *stats.Table {
	m := config.Baseline()
	t := stats.NewTable("Parameter", "Value")
	t.AddRow("Fetch/Decode/Commit", fmt.Sprintf("%d insts/cycle", m.FetchWidth))
	t.AddRow("Issue", fmt.Sprintf("Max. %d/cycle", m.IssueWidth))
	t.AddRow("Int", fmt.Sprintf("%d ALU, %d shift, %d mult/complex", m.IntALU, m.IntShift, m.IntMulDiv))
	t.AddRow("FP", fmt.Sprintf("%d add, %d mult, %d div/sqrt", m.FPAdd, m.FPMul, m.FPDiv))
	t.AddRow("Memory", fmt.Sprintf("%d Ld/St port, %d Ld-only port", m.MemPorts, m.LoadPorts))
	t.AddRow("ROB size", fmt.Sprintf("%d entries", m.ROBSize))
	t.AddRow("RS size", fmt.Sprintf("%d entries", m.RSSize))
	t.AddRow("LQ/SQ size", fmt.Sprintf("%d/%d entries", m.LQSize, m.SQSize))
	t.AddRow("I/D L1 caches", fmt.Sprintf("%dKB, %d-way, %d-cycle", m.L1Size>>10, m.L1Ways, m.L1Latency))
	t.AddRow("Branch Predictor", "10KB Bimodal/Local/Global hybrid")
	t.AddRow("Unified L2 cache", fmt.Sprintf("%dMB, %d-way, %d-cycle", m.L2Size>>20, m.L2Ways, m.L2Latency))
	t.AddRow("I/D TLBs", fmt.Sprintf("%d/%d-entry, %d-way", m.ITLBEntries, m.DTLBEntries, m.TLBWays))
	t.AddRow("BTB", fmt.Sprintf("%d-entry, %d-way", m.BTBEntries, m.BTBWays))
	t.AddRow("Inst Fetch Queue", fmt.Sprintf("%d entry", m.IFQSize))
	t.AddRow("Clock", fmt.Sprintf("%.2f GHz", m.ClockGHz))
	return t
}

// Table2 renders the 2D-vs-3D block latencies and the derived clock
// frequencies (the paper's Table 2 plus the Section 5.1.1 headline).
func Table2() *stats.Table {
	t := stats.NewTable("Block", "2D (ps)", "3D (ps)", "Improvement", "Critical")
	for _, b := range circuit.Blocks() {
		crit := ""
		if b.CriticalLoop {
			crit = "yes"
		}
		t.AddRow(b.Name,
			fmt.Sprintf("%.0f", b.Latency2D()),
			fmt.Sprintf("%.0f", b.Latency3D()),
			fmt.Sprintf("%.1f%%", 100*b.Improvement()),
			crit)
	}
	t.AddRow("-- clock frequency --",
		fmt.Sprintf("%.2f GHz", circuit.ClockGHz2D()),
		fmt.Sprintf("%.2f GHz", circuit.ClockGHz3D()),
		fmt.Sprintf("+%.1f%%", 100*circuit.FrequencyGain()), "")
	return t
}

// Figure8Result holds the performance comparison of Figure 8: per-group
// geometric-mean IPC, IPns, and speedup for the five configurations,
// plus the per-benchmark extremes the paper quotes.
type Figure8Result struct {
	Configs []string
	Groups  []string
	// IPC[group][config], IPns[group][config], Speedup[group][config]
	// (speedup is IPns relative to Base).
	IPC     map[string]map[string]float64
	IPns    map[string]map[string]float64
	Speedup map[string]map[string]float64
	// MoM is the mean of the per-group means per config.
	MoMIPC     map[string]float64
	MoMSpeedup map[string]float64
	// Per-benchmark 3D speedups for the min/max callouts.
	BenchSpeedup map[string]float64
}

// Figure8 runs the full suite across the five configurations.
func Figure8(r *Runner) (*Figure8Result, error) {
	cfgs := config.AllConfigs()
	workloads := AllWorkloadNames()
	if err := r.SimulateMany(cfgs, workloads); err != nil {
		return nil, err
	}
	res := &Figure8Result{
		IPC:          map[string]map[string]float64{},
		IPns:         map[string]map[string]float64{},
		Speedup:      map[string]map[string]float64{},
		MoMIPC:       map[string]float64{},
		MoMSpeedup:   map[string]float64{},
		BenchSpeedup: map[string]float64{},
	}
	for _, c := range cfgs {
		res.Configs = append(res.Configs, c.Name)
	}
	for _, g := range trace.Groups() {
		res.Groups = append(res.Groups, g.String())
	}

	// Per-benchmark IPns per config.
	ipns := map[string]map[string]float64{} // config -> workload -> IPns
	for _, cfg := range cfgs {
		ipns[cfg.Name] = map[string]float64{}
		for _, wl := range workloads {
			s, err := r.Simulate(cfg, wl)
			if err != nil {
				return nil, err
			}
			ipns[cfg.Name][wl] = s.IPns(cfg.ClockGHz)
		}
	}
	for _, wl := range workloads {
		res.BenchSpeedup[wl] = ipns["3D"][wl] / ipns["Base"][wl]
	}

	// Group geometric means.
	for _, g := range trace.Groups() {
		gname := g.String()
		var members []string
		for _, p := range trace.GroupProfiles(g) {
			members = append(members, p.Name)
		}
		for _, cfg := range cfgs {
			var ipcs, ipnss, speeds []float64
			for _, wl := range members {
				v := ipns[cfg.Name][wl]
				ipcs = append(ipcs, v/cfg.ClockGHz)
				ipnss = append(ipnss, v)
				speeds = append(speeds, v/ipns["Base"][wl])
			}
			set := func(m map[string]map[string]float64, v float64) {
				if m[gname] == nil {
					m[gname] = map[string]float64{}
				}
				m[gname][cfg.Name] = v
			}
			set(res.IPC, stats.MustGeoMean(ipcs))
			set(res.IPns, stats.MustGeoMean(ipnss))
			set(res.Speedup, stats.MustGeoMean(speeds))
		}
	}
	// Mean of the per-group means.
	for _, cfg := range cfgs {
		var ipcMeans, spMeans []float64
		for _, g := range res.Groups {
			ipcMeans = append(ipcMeans, res.IPC[g][cfg.Name])
			spMeans = append(spMeans, res.Speedup[g][cfg.Name])
		}
		res.MoMIPC[cfg.Name] = stats.Mean(ipcMeans)
		res.MoMSpeedup[cfg.Name] = stats.Mean(spMeans)
	}
	return res, nil
}

// MinMaxSpeedup returns the benchmarks with the smallest and largest 3D
// speedups (the paper's mcf 7% / patricia 77% callouts).
func (f *Figure8Result) MinMaxSpeedup() (minName string, minV float64, maxName string, maxV float64) {
	minV, maxV = 1e9, -1e9
	for wl, v := range f.BenchSpeedup {
		if v < minV {
			minName, minV = wl, v
		}
		if v > maxV {
			maxName, maxV = wl, v
		}
	}
	return minName, minV, maxName, maxV
}

// Render prints a Figure 8 panel ("ipc", "ipns", or "speedup").
func (f *Figure8Result) Render(panel string) *stats.Table {
	header := append([]string{"Group"}, f.Configs...)
	t := stats.NewTable(header...)
	src := f.IPC
	switch panel {
	case "ipns":
		src = f.IPns
	case "speedup":
		src = f.Speedup
	}
	for _, g := range f.Groups {
		row := []string{g}
		for _, c := range f.Configs {
			row = append(row, fmt.Sprintf("%.3f", src[g][c]))
		}
		t.AddRow(row...)
	}
	if panel == "ipc" || panel == "speedup" {
		row := []string{"M-of-M"}
		for _, c := range f.Configs {
			if panel == "ipc" {
				row = append(row, fmt.Sprintf("%.3f", f.MoMIPC[c]))
			} else {
				row = append(row, fmt.Sprintf("%.3f", f.MoMSpeedup[c]))
			}
		}
		t.AddRow(row...)
	}
	return t
}

// Figure9Result holds the power analysis of Figure 9.
type Figure9Result struct {
	// The three mpeg2enc bars: planar, 3D without TH, 3D with TH.
	Planar, NoTH, TH *power.Breakdown
	// Savings of the full 3D-TH design over planar, per workload.
	SavingByBench map[string]float64
	MinBench      string
	MinSaving     float64
	MaxBench      string
	MaxSaving     float64
}

// Figure9 computes the power comparison on the reference workload and
// the per-benchmark savings range over the whole suite.
func Figure9(r *Runner) (*Figure9Result, error) {
	res := &Figure9Result{SavingByBench: map[string]float64{}}
	var err error
	if res.Planar, err = r.PowerFor(config.Baseline(), "mpeg2enc"); err != nil {
		return nil, err
	}
	if res.NoTH, err = r.PowerFor(config.ThreeDNoTH(), "mpeg2enc"); err != nil {
		return nil, err
	}
	if res.TH, err = r.PowerFor(config.ThreeD(), "mpeg2enc"); err != nil {
		return nil, err
	}
	workloads := AllWorkloadNames()
	if err := r.SimulateMany([]config.Machine{config.Baseline(), config.ThreeD()}, workloads); err != nil {
		return nil, err
	}
	res.MinSaving, res.MaxSaving = 1e9, -1e9
	for _, wl := range workloads {
		base, err := r.PowerFor(config.Baseline(), wl)
		if err != nil {
			return nil, err
		}
		th, err := r.PowerFor(config.ThreeD(), wl)
		if err != nil {
			return nil, err
		}
		s := th.Saving(base)
		res.SavingByBench[wl] = s
		if s < res.MinSaving {
			res.MinBench, res.MinSaving = wl, s
		}
		if s > res.MaxSaving {
			res.MaxBench, res.MaxSaving = wl, s
		}
	}
	return res, nil
}

// Render prints the Figure 9 summary.
func (f *Figure9Result) Render() *stats.Table {
	t := stats.NewTable("Configuration", "Dynamic (W)", "Clock (W)", "Leakage (W)", "Total (W)", "vs planar")
	for _, b := range []*power.Breakdown{f.Planar, f.NoTH, f.TH} {
		t.AddRow(b.Config,
			fmt.Sprintf("%.1f", b.DynamicW),
			fmt.Sprintf("%.1f", b.ClockW),
			fmt.Sprintf("%.1f", b.LeakageW),
			fmt.Sprintf("%.1f", b.TotalW),
			fmt.Sprintf("%+.1f%%", -100*b.Saving(f.Planar)))
	}
	return t
}

// Figure10Result holds the thermal analysis of Figure 10.
type Figure10Result struct {
	// Worst-case peaks per configuration with the responsible workload
	// and hotspot block (panels a-c).
	Worst map[string]ThermalPoint
	// SameApp holds the three configurations running one common
	// application (panels d-f), including the ROB comparison the paper
	// highlights.
	SameApp     map[string]ThermalPoint
	SameAppName string
	// ROBPeak per config for the same app: the paper observes the 3D
	// TH ROB running cooler than planar.
	ROBPeak map[string]float64
}

// ThermalPoint is one solved configuration.
type ThermalPoint struct {
	Workload string
	PeakK    float64
	Hotspot  string // block name of the hottest unit
	TotalW   float64
}

// figure10Configs are the three Figure 10 machines.
func figure10Configs() []config.Machine {
	return []config.Machine{config.Baseline(), config.ThreeDNoTH(), config.ThreeD()}
}

// Figure10 finds, for each configuration, the workload inducing the
// worst-case temperature (the paper scans all 106 traces; power is a
// cheap proxy ordering, so we solve the thermal stack for the top
// candidates by total power and take the hottest).
func Figure10(r *Runner, sameApp string) (*Figure10Result, error) {
	res := &Figure10Result{
		Worst:       map[string]ThermalPoint{},
		SameApp:     map[string]ThermalPoint{},
		SameAppName: sameApp,
		ROBPeak:     map[string]float64{},
	}
	workloads := AllWorkloadNames()
	for _, cfg := range figure10Configs() {
		if err := r.SimulateMany([]config.Machine{cfg}, workloads); err != nil {
			return nil, err
		}
		// Rank workloads by total power; thermal-solve the top few.
		type cand struct {
			wl string
			b  *power.Breakdown
		}
		var cands []cand
		for _, wl := range workloads {
			b, err := r.PowerFor(cfg, wl)
			if err != nil {
				return nil, err
			}
			cands = append(cands, cand{wl, b})
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].b.TotalW > cands[j].b.TotalW })
		const topK = 5
		best := ThermalPoint{PeakK: -1}
		for i := 0; i < topK && i < len(cands); i++ {
			pt, err := r.solvePoint(cfg, cands[i].wl, cands[i].b)
			if err != nil {
				return nil, err
			}
			if pt.PeakK > best.PeakK {
				best = pt
			}
		}
		res.Worst[cfg.Name] = best
	}

	// Panels d-f: one common application across the three configs.
	for _, cfg := range figure10Configs() {
		b, err := r.PowerFor(cfg, sameApp)
		if err != nil {
			return nil, err
		}
		pt, err := r.solvePoint(cfg, sameApp, b)
		if err != nil {
			return nil, err
		}
		res.SameApp[cfg.Name] = pt

		sol, fp, err := r.SolveThermal(cfg, b)
		if err != nil {
			return nil, err
		}
		// ROB peak over all die instances holding it (die 0 carries the
		// most activity under herding; planar has only die 0).
		peak := 0.0
		for d := 0; d < fp.NumDies; d++ {
			if u, ok := fp.Find(floorplan.BlkROB, 0, d); ok {
				if v := thermal.PeakOfUnit(sol, fp, u); v > peak {
					peak = v
				}
			}
		}
		res.ROBPeak[cfg.Name] = peak
	}
	return res, nil
}

func (r *Runner) solvePoint(cfg config.Machine, wl string, b *power.Breakdown) (ThermalPoint, error) {
	sol, fp, err := r.SolveThermal(cfg, b)
	if err != nil {
		return ThermalPoint{}, err
	}
	u, peak, ok := thermal.HottestUnit(sol, fp)
	hot := "(unattributed)"
	if ok {
		hot = u.Block.String()
	}
	return ThermalPoint{Workload: wl, PeakK: peak, Hotspot: hot, TotalW: b.TotalW}, nil
}

// Render prints the Figure 10 worst-case summary.
func (f *Figure10Result) Render() *stats.Table {
	t := stats.NewTable("Configuration", "Worst workload", "Peak (K)", "Hotspot", "Power (W)")
	for _, name := range []string{"Base", "3D-noTH", "3D"} {
		p := f.Worst[name]
		t.AddRow(name, p.Workload, fmt.Sprintf("%.1f", p.PeakK), p.Hotspot, fmt.Sprintf("%.1f", p.TotalW))
	}
	return t
}

// DensityStudy reproduces the Section 5.3 experiment: the planar
// processor's power map (90 W at 2.66 GHz) forced into the 3D stack,
// quadrupling power density. Returns the planar peak and the
// density-experiment peak.
func DensityStudy(r *Runner, workload string) (planarPeakK, densityPeakK float64, err error) {
	base, err := r.PowerFor(config.Baseline(), workload)
	if err != nil {
		return 0, 0, err
	}
	sol, _, err := r.SolveThermal(config.Baseline(), base)
	if err != nil {
		return 0, 0, err
	}
	planarPeakK, _, _, _ = sol.Peak()

	sfp := floorplan.Stacked()
	m := power.DensityStudyMap(base, sfp)
	stack, err := thermal.BuildStacked(sfp, func(u floorplan.Unit) float64 {
		return m[power.UnitKey{Block: u.Block, Core: u.Core, Die: u.Die}]
	}, r.opts.Grid, r.opts.Grid)
	if err != nil {
		return 0, 0, err
	}
	dsol, err := stack.Solve()
	if err != nil {
		return 0, 0, err
	}
	densityPeakK, _, _, _ = dsol.Peak()
	return planarPeakK, densityPeakK, nil
}

// WidthAccuracy measures suite-wide width prediction accuracy under the
// 3D configuration (the paper's "97% of all instructions fetched have
// their widths correctly predicted").
func WidthAccuracy(r *Runner) (float64, error) {
	cfg := config.ThreeD()
	workloads := AllWorkloadNames()
	if err := r.SimulateMany([]config.Machine{cfg}, workloads); err != nil {
		return 0, err
	}
	var correctW, totalW float64
	for _, wl := range workloads {
		s, err := r.Simulate(cfg, wl)
		if err != nil {
			return 0, err
		}
		n := float64(s.WidthPredictions)
		correctW += s.WidthAccuracy * n
		totalW += n
	}
	return correctW / totalW, nil
}
