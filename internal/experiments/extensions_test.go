package experiments

import (
	"strings"
	"testing"

	"thermalherd/internal/config"
	"thermalherd/internal/power"
)

func TestPerfToPowerSweep(t *testing.T) {
	r := quickRunner()
	points, ref, err := PerfToPower(r, "susan_s", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4", len(points))
	}
	// Performance and power must both rise with frequency.
	for i := 1; i < len(points); i++ {
		if points[i].IPns <= points[i-1].IPns {
			t.Errorf("IPns not increasing: %.3f -> %.3f", points[i-1].IPns, points[i].IPns)
		}
		if points[i].TotalW <= points[i-1].TotalW {
			t.Errorf("power not increasing: %.2f -> %.2f", points[i-1].TotalW, points[i].TotalW)
		}
	}
	// The paper's conversion claim: at the baseline frequency the 3D
	// design must match or beat planar performance while using less
	// power (wire reduction + herding + halved clock capacitance).
	p0 := points[0]
	if p0.IPns < ref.IPns*0.95 {
		t.Errorf("3D at base clock IPns %.3f well below planar %.3f", p0.IPns, ref.IPns)
	}
	if p0.TotalW >= ref.TotalW {
		t.Errorf("3D at base clock power %.1f W not below planar %.1f W", p0.TotalW, ref.TotalW)
	}
	out := RenderPerfToPower(points, ref).String()
	if !strings.Contains(out, "Base (planar)") {
		t.Error("render missing reference row")
	}
}

func TestMixedPair(t *testing.T) {
	r := quickRunner()
	res, err := MixedPair(r, config.ThreeD(), "susan_s", "yacr2")
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalW <= 0 || res.PeakK <= 300 {
		t.Errorf("implausible mixed-pair result: %.1f W, %.1f K", res.TotalW, res.PeakK)
	}
	// A hot+cold pairing should dissipate less than hot+hot and more
	// than cold+cold.
	hotHot, err := MixedPair(r, config.ThreeD(), "susan_s", "susan_s")
	if err != nil {
		t.Fatal(err)
	}
	coldCold, err := MixedPair(r, config.ThreeD(), "yacr2", "yacr2")
	if err != nil {
		t.Fatal(err)
	}
	if !(coldCold.TotalW < res.TotalW && res.TotalW < hotHot.TotalW) {
		t.Errorf("mixed pair power ordering violated: %.1f / %.1f / %.1f",
			coldCold.TotalW, res.TotalW, hotHot.TotalW)
	}
}

func TestValueWidthCensus(t *testing.T) {
	r := quickRunner()
	// Restrict to two groups to keep the test quick: simulate only
	// those workloads (the census will simulate the rest lazily; use
	// the quick options so it stays bounded).
	tbl, err := ValueWidthCensus(r)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if !strings.Contains(out, "MediaBench") {
		t.Fatalf("census missing groups:\n%s", out)
	}
	// Spot-check the premise: parse the MediaBench row's <=16b column.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "MediaBench") {
			fields := strings.Fields(line)
			if len(fields) < 2 {
				t.Fatalf("bad row %q", line)
			}
			if fields[1] < "0.6" { // string compare works for 0.xxx
				t.Errorf("MediaBench <=16b fraction %s, want majority low-width", fields[1])
			}
		}
	}
}

func TestThermalTransientForms(t *testing.T) {
	r := quickRunner()
	tr, err := ThermalTransient(r, "susan_s", 10.0)
	if err != nil {
		t.Fatal(err)
	}
	first, last := tr.PeakK[0], tr.PeakK[len(tr.PeakK)-1]
	if last <= first {
		t.Errorf("no heating transient: %.2f -> %.2f K", first, last)
	}
	if settle := tr.TimeToWithin(1.0); settle <= 0 {
		t.Errorf("bad settling time %.3f", settle)
	}
}

func TestLeakageFeedbackConverges(t *testing.T) {
	r := quickRunner()
	res, err := LeakageFeedback(r, config.ThreeD(), "mpeg2enc")
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged {
		t.Fatalf("leakage feedback diverged: %s", res)
	}
	// Consistency: the peak moves in the same direction as the total
	// leakage correction (most of the die sits below the 358 K
	// reference at these power levels, so leakage — and the peak —
	// typically adjust downward), and the correction is modest.
	dPeak := res.PeakK - res.PeakNoFeedbackK
	dLeak := res.LeakageW - power.LeakageW()
	if dPeak*dLeak < 0 {
		t.Errorf("peak moved %.2f K while leakage moved %.2f W (inconsistent directions)",
			dPeak, dLeak)
	}
	if dPeak > 20 || dPeak < -20 {
		t.Errorf("feedback moved peak by %.1f K, implausibly large", dPeak)
	}
	if res.Iterations < 1 || res.Iterations >= 20 {
		t.Errorf("iterations = %d", res.Iterations)
	}
}

func TestLeakageScaleMonotone(t *testing.T) {
	if power.LeakageScaleAt(power.LeakageRefK) != 1 {
		t.Error("scale at reference temperature must be 1")
	}
	if power.LeakageScaleAt(power.LeakageRefK+10) <= 1 {
		t.Error("hotter must leak more")
	}
	if power.LeakageScaleAt(power.LeakageRefK-10) >= 1 {
		t.Error("cooler must leak less")
	}
}
