package floorplan

import (
	"fmt"
	"strings"
)

// Render draws an ASCII map of one die: each cell shows the initial of
// the block occupying it (upper case for core 0, lower case for core 1,
// '#' for the shared L2, '.' for whitespace), with a legend underneath.
func (fp *Floorplan) Render(die, cols, rows int) string {
	if cols <= 0 {
		cols = 48
	}
	if rows <= 0 {
		rows = 24
	}
	grid := make([][]byte, rows)
	for y := range grid {
		grid[y] = bytes('.', cols)
	}
	legend := map[byte]BlockID{}
	for _, u := range fp.UnitsOn(die) {
		ch := glyphFor(u)
		if u.Core != SharedCore {
			legend[upper(ch)] = u.Block
		}
		x0 := int(u.X / fp.ChipW * float64(cols))
		x1 := int((u.X + u.W) / fp.ChipW * float64(cols))
		y0 := int(u.Y / fp.ChipH * float64(rows))
		y1 := int((u.Y + u.H) / fp.ChipH * float64(rows))
		for y := y0; y < y1 && y < rows; y++ {
			for x := x0; x < x1 && x < cols; x++ {
				grid[y][x] = ch
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s die %d (%.1f x %.1f mm)\n", fp.Name, die, fp.ChipW, fp.ChipH)
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("legend: ")
	for ch := byte('A'); ch <= 'Z'; ch++ {
		if blk, ok := legend[ch]; ok {
			fmt.Fprintf(&b, "%c=%v ", ch, blk)
		}
	}
	b.WriteString("#=l2 (lower case = core 1)\n")
	return b.String()
}

func bytes(fill byte, n int) []byte {
	row := make([]byte, n)
	for i := range row {
		row[i] = fill
	}
	return row
}

// glyphFor assigns each block a distinct letter; core 1 blocks render in
// lower case, the shared L2 as '#'.
func glyphFor(u Unit) byte {
	if u.Block == BlkL2 {
		return '#'
	}
	glyphs := [NumBlocks]byte{
		BlkICache:  'I',
		BlkITLB:    'T',
		BlkBTB:     'B',
		BlkBPred:   'P',
		BlkDecode:  'D',
		BlkIFQ:     'Q',
		BlkRename:  'N',
		BlkROB:     'R',
		BlkRS:      'S',
		BlkIntExec: 'X',
		BlkBypass:  'Y',
		BlkFPExec:  'F',
		BlkLSQ:     'L',
		BlkDCache:  'C',
		BlkDTLB:    'U',
		BlkMemCtl:  'M',
	}
	ch := glyphs[u.Block]
	if ch == 0 {
		ch = '?'
	}
	if u.Core == 1 {
		ch = lower(ch)
	}
	return ch
}

func upper(ch byte) byte {
	if ch >= 'a' && ch <= 'z' {
		return ch - 'a' + 'A'
	}
	return ch
}

func lower(ch byte) byte {
	if ch >= 'A' && ch <= 'Z' {
		return ch - 'A' + 'a'
	}
	return ch
}
