package floorplan

import (
	"math"
	"strings"
	"testing"
)

func TestPlanarValidates(t *testing.T) {
	fp := Planar()
	if err := fp.Validate(); err != nil {
		t.Fatal(err)
	}
	if fp.NumDies != 1 {
		t.Errorf("planar dies = %d, want 1", fp.NumDies)
	}
}

func TestStackedValidates(t *testing.T) {
	fp := Stacked()
	if err := fp.Validate(); err != nil {
		t.Fatal(err)
	}
	if fp.NumDies != 4 {
		t.Errorf("stacked dies = %d, want 4", fp.NumDies)
	}
}

func TestStackedFootprintQuarter(t *testing.T) {
	p, s := Planar(), Stacked()
	planarArea := p.ChipW * p.ChipH
	stackedArea := s.ChipW * s.ChipH
	if math.Abs(stackedArea-planarArea/4) > 1e-9 {
		t.Errorf("3D footprint = %.2f mm², want %.2f (quarter of planar)",
			stackedArea, planarArea/4)
	}
}

func TestPlanarHasAllBlocksPerCore(t *testing.T) {
	fp := Planar()
	for core := 0; core < 2; core++ {
		for _, b := range CoreBlocks() {
			if _, ok := fp.Find(b, core, 0); !ok {
				t.Errorf("planar missing block %v on core %d", b, core)
			}
		}
	}
	if _, ok := fp.Find(BlkL2, SharedCore, 0); !ok {
		t.Error("planar missing shared L2")
	}
}

func TestStackedReplicatesAcrossDies(t *testing.T) {
	fp := Stacked()
	for die := 0; die < 4; die++ {
		for core := 0; core < 2; core++ {
			for _, b := range CoreBlocks() {
				if _, ok := fp.Find(b, core, die); !ok {
					t.Errorf("stacked missing block %v core %d die %d", b, core, die)
				}
			}
		}
		if _, ok := fp.Find(BlkL2, SharedCore, die); !ok {
			t.Errorf("stacked missing L2 on die %d", die)
		}
	}
}

func TestUnitsFillDie(t *testing.T) {
	// Core layout should tile the 6×6 core exactly; with two cores and
	// the L2, unit area should equal the full chip area.
	p := Planar()
	chipArea := p.ChipW * p.ChipH
	if got := p.TotalArea(0); math.Abs(got-chipArea) > 1e-9 {
		t.Errorf("planar unit area = %.3f, chip = %.3f (gaps or overlaps)", got, chipArea)
	}
	s := Stacked()
	dieArea := s.ChipW * s.ChipH
	for die := 0; die < 4; die++ {
		if got := s.TotalArea(die); math.Abs(got-dieArea) > 1e-9 {
			t.Errorf("stacked die %d unit area = %.3f, die = %.3f", die, got, dieArea)
		}
	}
}

func TestOverlapDetection(t *testing.T) {
	a := Unit{Block: BlkROB, Die: 0, X: 0, Y: 0, W: 2, H: 2}
	b := Unit{Block: BlkRS, Die: 0, X: 1, Y: 1, W: 2, H: 2}
	if !a.Overlaps(b) {
		t.Error("overlapping units not detected")
	}
	c := Unit{Block: BlkRS, Die: 0, X: 2, Y: 0, W: 2, H: 2} // shares an edge only
	if a.Overlaps(c) {
		t.Error("edge-adjacent units reported as overlapping")
	}
	d := Unit{Block: BlkRS, Die: 1, X: 0, Y: 0, W: 2, H: 2}
	if a.Overlaps(d) {
		t.Error("units on different dies reported as overlapping")
	}
}

func TestValidateCatchesOutOfBounds(t *testing.T) {
	fp := &Floorplan{Name: "bad", ChipW: 4, ChipH: 4, NumDies: 1,
		Units: []Unit{{Block: BlkROB, Die: 0, X: 3, Y: 0, W: 2, H: 1}}}
	if err := fp.Validate(); err == nil {
		t.Error("out-of-bounds unit not rejected")
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	fp := &Floorplan{Name: "bad", ChipW: 4, ChipH: 4, NumDies: 1,
		Units: []Unit{
			{Block: BlkROB, Die: 0, X: 0, Y: 0, W: 2, H: 2},
			{Block: BlkRS, Die: 0, X: 1, Y: 1, W: 2, H: 2},
		}}
	if err := fp.Validate(); err == nil {
		t.Error("overlap not rejected")
	}
}

func TestValidateCatchesBadDie(t *testing.T) {
	fp := &Floorplan{Name: "bad", ChipW: 4, ChipH: 4, NumDies: 1,
		Units: []Unit{{Block: BlkROB, Die: 2, X: 0, Y: 0, W: 1, H: 1}}}
	if err := fp.Validate(); err == nil {
		t.Error("invalid die index not rejected")
	}
}

func TestBlockNames(t *testing.T) {
	if BlkRS.String() != "rs" || BlkDCache.String() != "dcache" || BlkL2.String() != "l2" {
		t.Error("block names wrong")
	}
	if BlockID(200).String() == "" {
		t.Error("out-of-range block has empty name")
	}
	seen := map[string]bool{}
	for b := BlockID(0); b < NumBlocks; b++ {
		n := b.String()
		if n == "" || seen[n] {
			t.Errorf("block %d has empty or duplicate name %q", b, n)
		}
		seen[n] = true
	}
}

func TestUnitsOnPartition(t *testing.T) {
	s := Stacked()
	total := 0
	for die := 0; die < 4; die++ {
		total += len(s.UnitsOn(die))
	}
	if total != len(s.Units) {
		t.Errorf("per-die partition covers %d units, floorplan has %d", total, len(s.Units))
	}
}

func TestCoreBlocksExcludesL2(t *testing.T) {
	for _, b := range CoreBlocks() {
		if b == BlkL2 {
			t.Error("CoreBlocks includes the shared L2")
		}
	}
	if len(CoreBlocks()) != int(NumBlocks)-1 {
		t.Errorf("CoreBlocks has %d entries, want %d", len(CoreBlocks()), int(NumBlocks)-1)
	}
}

func TestRenderPlanar(t *testing.T) {
	out := Planar().Render(0, 48, 24)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 26 { // header + 24 rows + legend
		t.Fatalf("render has %d lines, want 26", len(lines))
	}
	// Both cores and the L2 appear: upper case, lower case, '#'.
	body := strings.Join(lines[1:25], "")
	if !strings.Contains(body, "S") || !strings.Contains(body, "s") {
		t.Error("render missing RS glyphs for both cores")
	}
	if !strings.Contains(body, "#") {
		t.Error("render missing the shared L2")
	}
	if !strings.Contains(lines[25], "S=rs") {
		t.Errorf("legend missing RS entry: %q", lines[25])
	}
}

func TestRenderStackedDies(t *testing.T) {
	fp := Stacked()
	for d := 0; d < 4; d++ {
		out := fp.Render(d, 32, 16)
		if !strings.Contains(out, "die "+string(rune('0'+d))) {
			t.Errorf("render header missing die %d", d)
		}
		if !strings.Contains(out, "#") {
			t.Errorf("die %d render missing L2", d)
		}
	}
}
