// Package floorplan defines the physical layout of the simulated
// processor: the planar two-core-plus-L2 baseline of Figure 7(a) and the
// 4-die stacked 3D floorplan of Figure 7(b), whose footprint shrinks by
// ~4x because every block is word-partitioned across the four die.
//
// Dimensions are in millimetres. Coordinates follow screen convention
// (origin top-left, x right, y down). Die 0 is the top die, adjacent to
// the heat sink.
package floorplan

import "fmt"

// BlockID identifies one microarchitectural block.
type BlockID uint8

// The floorplanned blocks of one core, plus the shared L2.
const (
	BlkICache BlockID = iota
	BlkITLB
	BlkBTB
	BlkBPred
	BlkDecode
	BlkIFQ
	BlkRename
	BlkROB
	BlkRS
	BlkIntExec
	BlkBypass
	BlkFPExec
	BlkLSQ
	BlkDCache
	BlkDTLB
	BlkMemCtl
	BlkL2
	NumBlocks
)

var blockNames = [NumBlocks]string{
	"icache", "itlb", "btb", "bpred", "decode", "ifq", "rename",
	"rob", "rs", "intexec", "bypass", "fpexec", "lsq", "dcache",
	"dtlb", "memctl", "l2",
}

// String returns the block's short name.
func (b BlockID) String() string {
	if b >= NumBlocks {
		return fmt.Sprintf("blk(%d)", uint8(b))
	}
	return blockNames[b]
}

// CoreBlocks lists the per-core blocks (everything except the L2).
func CoreBlocks() []BlockID {
	out := make([]BlockID, 0, NumBlocks-1)
	for b := BlockID(0); b < NumBlocks; b++ {
		if b != BlkL2 {
			out = append(out, b)
		}
	}
	return out
}

// SharedCore marks a unit not belonging to any core (the L2).
const SharedCore = -1

// Unit is one placed instance of a block: a rectangle on a specific die,
// belonging to a core (or shared).
type Unit struct {
	Block BlockID
	Core  int // 0, 1, or SharedCore
	Die   int // 0 = top die
	X, Y  float64
	W, H  float64
}

// Area returns the unit's area in mm².
func (u Unit) Area() float64 { return u.W * u.H }

// Overlaps reports whether two units on the same die overlap with
// positive area.
func (u Unit) Overlaps(v Unit) bool {
	if u.Die != v.Die {
		return false
	}
	return u.X < v.X+v.W && v.X < u.X+u.W && u.Y < v.Y+v.H && v.Y < u.Y+u.H
}

// Floorplan is a complete chip layout.
type Floorplan struct {
	Name string
	// ChipW, ChipH are the die footprint in mm.
	ChipW, ChipH float64
	// NumDies is 1 for planar, 4 for the stacked design.
	NumDies int
	// Units lists every placed block instance.
	Units []Unit
}

// coreLayout gives each per-core block's rectangle within a 6×6 mm core,
// relative to the core origin. The arrangement loosely follows the
// paper's Core 2-class floorplan: front-end at the top, scheduler and
// execution in the middle, memory at the bottom.
var coreLayout = map[BlockID][4]float64{
	// block: {x, y, w, h}
	BlkICache:  {0.0, 0.0, 2.0, 1.5},
	BlkITLB:    {2.0, 0.0, 1.0, 0.75},
	BlkBTB:     {2.0, 0.75, 1.0, 0.75},
	BlkBPred:   {3.0, 0.0, 1.0, 1.5},
	BlkDecode:  {4.0, 0.0, 2.0, 1.5},
	BlkRename:  {0.0, 1.5, 1.5, 1.0},
	BlkROB:     {1.5, 1.5, 2.0, 1.0},
	BlkRS:      {3.5, 1.5, 1.5, 1.0},
	BlkIFQ:     {5.0, 1.5, 1.0, 1.0},
	BlkIntExec: {0.0, 2.5, 2.0, 1.5},
	BlkBypass:  {2.0, 2.5, 1.0, 1.5},
	BlkFPExec:  {3.0, 2.5, 2.0, 1.5},
	BlkLSQ:     {5.0, 2.5, 1.0, 1.5},
	BlkDCache:  {0.0, 4.0, 4.0, 2.0},
	BlkDTLB:    {4.0, 4.0, 2.0, 1.0},
	BlkMemCtl:  {4.0, 5.0, 2.0, 1.0},
}

const (
	coreSize2D = 6.0 // mm, per side
	chipW2D    = 12.0
	chipH2D    = 12.0
)

// Planar returns the Figure 7(a) baseline floorplan: two 6×6 mm cores
// side by side with the 4MB L2 occupying the lower half of a 12×12 mm
// die.
func Planar() *Floorplan {
	fp := &Floorplan{Name: "planar-2d", ChipW: chipW2D, ChipH: chipH2D, NumDies: 1}
	for coreIdx := 0; coreIdx < 2; coreIdx++ {
		ox := float64(coreIdx) * coreSize2D
		for _, b := range CoreBlocks() {
			r := coreLayout[b]
			fp.Units = append(fp.Units, Unit{
				Block: b, Core: coreIdx, Die: 0,
				X: ox + r[0], Y: r[1], W: r[2], H: r[3],
			})
		}
	}
	fp.Units = append(fp.Units, Unit{
		Block: BlkL2, Core: SharedCore, Die: 0,
		X: 0, Y: coreSize2D, W: chipW2D, H: chipH2D - coreSize2D,
	})
	return fp
}

// Stacked returns the Figure 7(b) 3D floorplan: the same layout
// word-partitioned across four die. Each block keeps its relative
// position but halves in each linear dimension (the ~4x footprint
// reduction), and every block instance appears on all four die.
func Stacked() *Floorplan {
	const scale = 0.5
	fp := &Floorplan{
		Name:    "stacked-3d",
		ChipW:   chipW2D * scale,
		ChipH:   chipH2D * scale,
		NumDies: 4,
	}
	for die := 0; die < 4; die++ {
		for coreIdx := 0; coreIdx < 2; coreIdx++ {
			ox := float64(coreIdx) * coreSize2D * scale
			for _, b := range CoreBlocks() {
				r := coreLayout[b]
				fp.Units = append(fp.Units, Unit{
					Block: b, Core: coreIdx, Die: die,
					X: ox + r[0]*scale, Y: r[1] * scale,
					W: r[2] * scale, H: r[3] * scale,
				})
			}
		}
		fp.Units = append(fp.Units, Unit{
			Block: BlkL2, Core: SharedCore, Die: die,
			X: 0, Y: coreSize2D * scale,
			W: chipW2D * scale, H: (chipH2D - coreSize2D) * scale,
		})
	}
	return fp
}

// Validate checks that all units lie within the chip and that no two
// units on the same die overlap.
func (fp *Floorplan) Validate() error {
	const eps = 1e-9
	for i, u := range fp.Units {
		if u.X < -eps || u.Y < -eps || u.X+u.W > fp.ChipW+eps || u.Y+u.H > fp.ChipH+eps {
			return fmt.Errorf("floorplan %s: unit %v (core %d, die %d) outside chip bounds",
				fp.Name, u.Block, u.Core, u.Die)
		}
		if u.Die < 0 || u.Die >= fp.NumDies {
			return fmt.Errorf("floorplan %s: unit %v on invalid die %d", fp.Name, u.Block, u.Die)
		}
		for j := i + 1; j < len(fp.Units); j++ {
			if u.Overlaps(fp.Units[j]) {
				v := fp.Units[j]
				return fmt.Errorf("floorplan %s: %v(core %d) overlaps %v(core %d) on die %d",
					fp.Name, u.Block, u.Core, v.Block, v.Core, u.Die)
			}
		}
	}
	return nil
}

// UnitsOn returns the units placed on the given die.
func (fp *Floorplan) UnitsOn(die int) []Unit {
	var out []Unit
	for _, u := range fp.Units {
		if u.Die == die {
			out = append(out, u)
		}
	}
	return out
}

// Find returns the unit for (block, core, die), or false.
func (fp *Floorplan) Find(b BlockID, core, die int) (Unit, bool) {
	for _, u := range fp.Units {
		if u.Block == b && u.Core == core && u.Die == die {
			return u, true
		}
	}
	return Unit{}, false
}

// TotalArea returns the summed unit area on one die.
func (fp *Floorplan) TotalArea(die int) float64 {
	var a float64
	for _, u := range fp.UnitsOn(die) {
		a += u.Area()
	}
	return a
}
