package journal

import (
	"encoding/binary"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"thermalherd/internal/clock"
	"thermalherd/internal/faultinject"
)

func open(t *testing.T, opts Options) (*Journal, *Replay) {
	t.Helper()
	j, rep, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { j.Close() })
	return j, rep
}

func ev(typ EventType, id string) Event {
	return Event{Type: typ, ID: id, At: "2026-01-01T00:00:00Z"}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, rep := open(t, Options{Dir: dir})
	if rep.Snapshot != nil || len(rep.Events) != 0 || rep.TruncatedRecords != 0 {
		t.Fatalf("fresh dir should replay nothing, got %+v", rep)
	}
	events := []Event{
		{Type: EventAccepted, ID: "job-000001", Spec: json.RawMessage(`{"kind":"timing"}`), Key: "k1", IdemKey: "i1", At: "t0"},
		ev(EventStarted, "job-000001"),
		{Type: EventCompleted, ID: "job-000001", Result: json.RawMessage(`{"ok":true}`), At: "t2"},
		{Type: EventFailed, ID: "job-000002", Error: "boom", At: "t3"},
	}
	for _, e := range events {
		if err := j.Append(e); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if st := j.Stats(); st.Appends != 4 || st.Fsyncs != 4 {
		t.Fatalf("fsync=always should sync per append, got %+v", st)
	}
	j.Close()

	_, rep2 := open(t, Options{Dir: dir})
	if len(rep2.Events) != len(events) {
		t.Fatalf("replayed %d events, want %d", len(rep2.Events), len(events))
	}
	for i, got := range rep2.Events {
		want := events[i]
		if got.Type != want.Type || got.ID != want.ID || got.Error != want.Error ||
			string(got.Spec) != string(want.Spec) || string(got.Result) != string(want.Result) ||
			got.Key != want.Key || got.IdemKey != want.IdemKey || got.At != want.At {
			t.Fatalf("event %d: got %+v want %+v", i, got, want)
		}
	}
	if rep2.TruncatedRecords != 0 || rep2.CleanClose {
		t.Fatalf("unexpected replay flags: %+v", rep2)
	}
}

func TestFsyncPolicies(t *testing.T) {
	t.Run("off", func(t *testing.T) {
		j, _ := open(t, Options{Dir: t.TempDir(), Fsync: FsyncOff})
		for i := 0; i < 5; i++ {
			if err := j.Append(ev(EventAccepted, "job-000001")); err != nil {
				t.Fatal(err)
			}
		}
		if st := j.Stats(); st.Fsyncs != 0 {
			t.Fatalf("fsync=off synced %d times", st.Fsyncs)
		}
	})
	t.Run("interval", func(t *testing.T) {
		fake := clock.NewFake(time.Unix(0, 0))
		j, _ := open(t, Options{Dir: t.TempDir(), Fsync: FsyncInterval, FsyncEvery: time.Second, Clock: fake})
		for i := 0; i < 3; i++ {
			if err := j.Append(ev(EventAccepted, "job-000001")); err != nil {
				t.Fatal(err)
			}
		}
		if st := j.Stats(); st.Fsyncs != 0 {
			t.Fatalf("interval not elapsed yet, synced %d times", st.Fsyncs)
		}
		fake.Advance(time.Second)
		if err := j.Append(ev(EventStarted, "job-000001")); err != nil {
			t.Fatal(err)
		}
		if st := j.Stats(); st.Fsyncs != 1 {
			t.Fatalf("want 1 fsync after interval elapsed, got %d", st.Fsyncs)
		}
		// The sync resets the window.
		if err := j.Append(ev(EventCompleted, "job-000001")); err != nil {
			t.Fatal(err)
		}
		if st := j.Stats(); st.Fsyncs != 1 {
			t.Fatalf("window should have reset, got %d fsyncs", st.Fsyncs)
		}
	})
	t.Run("parse", func(t *testing.T) {
		for _, good := range []string{"always", "interval", "off", ""} {
			if _, err := ParseFsyncPolicy(good); err != nil {
				t.Errorf("ParseFsyncPolicy(%q): %v", good, err)
			}
		}
		if _, err := ParseFsyncPolicy("sometimes"); err == nil {
			t.Error("ParseFsyncPolicy(sometimes) should fail")
		}
	})
}

// TestTornTailSweep is the crash-consistency core: record a journal,
// then recover from every byte-length prefix 0..N. Recovery must never
// error, and the replayed events must always be an exact prefix of
// what was written.
func TestTornTailSweep(t *testing.T) {
	dir := t.TempDir()
	j, _ := open(t, Options{Dir: dir})
	var written []Event
	for i := 0; i < 6; i++ {
		e := Event{Type: EventAccepted, ID: "job-00000" + string(rune('1'+i)), Key: "k", At: "t"}
		written = append(written, e)
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	walPath := filepath.Join(dir, walName)
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	for n := 0; n <= len(full); n++ {
		sub := t.TempDir()
		if err := os.WriteFile(filepath.Join(sub, walName), full[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		jj, rep, err := Open(Options{Dir: sub})
		if err != nil {
			t.Fatalf("prefix %d: Open: %v", n, err)
		}
		// Replayed events must be an exact prefix of what was written.
		if len(rep.Events) > len(written) {
			t.Fatalf("prefix %d: replayed %d > written %d", n, len(rep.Events), len(written))
		}
		for i, got := range rep.Events {
			if got.ID != written[i].ID {
				t.Fatalf("prefix %d: event %d id %q want %q", n, i, got.ID, written[i].ID)
			}
		}
		// A torn tail must be reported and physically truncated so the
		// next append starts on a frame boundary.
		if fi, _ := os.Stat(filepath.Join(sub, walName)); rep.TruncatedRecords > 0 {
			wantLen := int64(0)
			for i := 0; i < len(rep.Events); i++ {
				payload, _ := json.Marshal(rep.Events[i])
				wantLen += int64(frameHeader + len(payload))
			}
			if fi.Size() != wantLen {
				t.Fatalf("prefix %d: truncated to %d bytes, want %d", n, fi.Size(), wantLen)
			}
		}
		// Appending after recovery must produce a fully valid log.
		if err := jj.Append(ev(EventFailed, "job-999999")); err != nil {
			t.Fatalf("prefix %d: append after recovery: %v", n, err)
		}
		jj.Close()
		_, rep2, err := Open(Options{Dir: sub})
		if err != nil {
			t.Fatalf("prefix %d: reopen: %v", n, err)
		}
		if got := len(rep2.Events); got != len(rep.Events)+1 {
			t.Fatalf("prefix %d: reopen replayed %d, want %d", n, got, len(rep.Events)+1)
		}
		if last := rep2.Events[len(rep2.Events)-1]; last.ID != "job-999999" {
			t.Fatalf("prefix %d: last event %q", n, last.ID)
		}
	}
}

func TestCorruptMiddleRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	j, _ := open(t, Options{Dir: dir})
	for i := 0; i < 3; i++ {
		if err := j.Append(ev(EventAccepted, "job-000001")); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	walPath := filepath.Join(dir, walName)
	b, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the second frame.
	first := binary.LittleEndian.Uint32(b[0:4])
	off := frameHeader + int(first) + frameHeader // second frame's payload start
	b[off] ^= 0xff
	if err := os.WriteFile(walPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rep := open(t, Options{Dir: dir})
	if len(rep.Events) != 1 || rep.TruncatedRecords != 1 {
		t.Fatalf("want 1 event + 1 truncation, got %d events, %d truncated", len(rep.Events), rep.TruncatedRecords)
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	j, _ := open(t, Options{Dir: dir, CompactBytes: 1})
	if err := j.Append(ev(EventAccepted, "job-000001")); err != nil {
		t.Fatal(err)
	}
	if !j.ShouldCompact() {
		t.Fatal("WAL above threshold should want compaction")
	}
	snap := Snapshot{Jobs: []JobRecord{{ID: "job-000001", State: "done", Key: "k", Result: json.RawMessage(`{"ok":true}`)}}}
	if err := j.WriteSnapshot(snap); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if j.Size() != 0 {
		t.Fatalf("WAL should be empty after compaction, size=%d", j.Size())
	}
	// Appends after compaction replay on top of the snapshot.
	if err := j.Append(ev(EventAccepted, "job-000002")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, rep := open(t, Options{Dir: dir})
	if rep.Snapshot == nil || len(rep.Snapshot.Jobs) != 1 || rep.Snapshot.Jobs[0].ID != "job-000001" {
		t.Fatalf("snapshot not recovered: %+v", rep.Snapshot)
	}
	if len(rep.Events) != 1 || rep.Events[0].ID != "job-000002" {
		t.Fatalf("post-snapshot events not recovered: %+v", rep.Events)
	}
	if rep.CleanClose {
		t.Fatal("non-clean snapshot with trailing events must not report CleanClose")
	}
}

func TestCleanCloseMarker(t *testing.T) {
	dir := t.TempDir()
	j, _ := open(t, Options{Dir: dir})
	if err := j.Append(ev(EventAccepted, "job-000001")); err != nil {
		t.Fatal(err)
	}
	if err := j.WriteSnapshot(Snapshot{Clean: true, Jobs: []JobRecord{{ID: "job-000001", State: "done"}}}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, rep := open(t, Options{Dir: dir})
	if !rep.CleanClose {
		t.Fatalf("clean snapshot + empty WAL should report CleanClose: %+v", rep)
	}
	if len(rep.Events) != 0 {
		t.Fatalf("clean restart should replay zero records, got %d", len(rep.Events))
	}
}

func TestCorruptSnapshotFallsBackToWAL(t *testing.T) {
	dir := t.TempDir()
	j, _ := open(t, Options{Dir: dir})
	if err := j.WriteSnapshot(Snapshot{Jobs: []JobRecord{{ID: "job-000001", State: "done"}}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(ev(EventAccepted, "job-000002")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Corrupt the snapshot body.
	snapPath := filepath.Join(dir, snapshotName)
	b, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(snapPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rep := open(t, Options{Dir: dir})
	if rep.Snapshot != nil || !rep.SnapshotCorrupt {
		t.Fatalf("corrupt snapshot should be ignored and flagged: %+v", rep)
	}
	if len(rep.Events) != 1 {
		t.Fatalf("WAL events should still replay, got %d", len(rep.Events))
	}
}

// TestFaultInjectedAppendRestoresBoundary: a failed append (which
// really writes a torn half-frame first) must restore the last good
// frame boundary before returning, so the journal keeps accepting
// appends and none of them is stranded behind the torn frame.
func TestFaultInjectedAppendRestoresBoundary(t *testing.T) {
	dir := t.TempDir()
	reg := faultinject.New()
	if err := reg.Arm("journal.append=error:disk gone,count:1", 1); err != nil {
		t.Fatal(err)
	}
	j, _ := open(t, Options{Dir: dir, Faults: reg})
	if err := j.Append(ev(EventAccepted, "job-000001")); err == nil {
		t.Fatal("injected append fault should surface an error")
	}
	if j.Size() != 0 {
		t.Fatalf("failed append left %d bytes in the WAL, want the frame boundary restored", j.Size())
	}
	j.Close()
	_, rep := open(t, Options{Dir: dir})
	if len(rep.Events) != 0 || rep.TruncatedRecords != 0 {
		t.Fatalf("restored boundary should replay cleanly, got %d events, %d truncated",
			len(rep.Events), rep.TruncatedRecords)
	}
}

// TestAppendFailThenContinue is the ack-durability regression the torn
// half-frame used to break: events acked AFTER a transient append
// failure must survive a restart, not be dropped at the torn frame.
func TestAppendFailThenContinue(t *testing.T) {
	dir := t.TempDir()
	reg := faultinject.New()
	j, _ := open(t, Options{Dir: dir, Faults: reg})
	if err := j.Append(ev(EventAccepted, "job-000001")); err != nil {
		t.Fatalf("append 1: %v", err)
	}
	// Arm a one-shot fault: the second append fails, the third succeeds.
	if err := reg.Arm("journal.append=error:transient enospc,count:1", 1); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(ev(EventAccepted, "job-000002")); err == nil {
		t.Fatal("injected append fault should surface an error")
	}
	if err := j.Append(ev(EventAccepted, "job-000003")); err != nil {
		t.Fatalf("append after transient failure: %v", err)
	}
	j.Close()
	_, rep := open(t, Options{Dir: dir})
	if len(rep.Events) != 2 || rep.TruncatedRecords != 0 {
		t.Fatalf("want both acked events (no truncation), got %d events, %d truncated",
			len(rep.Events), rep.TruncatedRecords)
	}
	if rep.Events[0].ID != "job-000001" || rep.Events[1].ID != "job-000003" {
		t.Fatalf("recovered wrong events: %+v", rep.Events)
	}
}

// TestCompactHoldsOutConcurrentAppend: an append racing a compaction
// must land in the fresh WAL after the truncation (never in the gap
// between the state capture and the truncate, where it would be lost).
func TestCompactHoldsOutConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	j, _ := open(t, Options{Dir: dir, Fsync: FsyncOff})
	if err := j.Append(ev(EventAccepted, "job-000001")); err != nil {
		t.Fatal(err)
	}
	appended := make(chan error, 1)
	err := j.Compact(func() Snapshot {
		// Fire a concurrent append mid-compaction; it must block on the
		// journal lock until the truncate is done.
		go func() { appended <- j.Append(ev(EventAccepted, "job-000002")) }()
		time.Sleep(20 * time.Millisecond) // give the append a chance to reach the lock
		return Snapshot{Jobs: []JobRecord{{ID: "job-000001", State: "queued"}}}
	})
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := <-appended; err != nil {
		t.Fatalf("concurrent append: %v", err)
	}
	j.Close()
	_, rep := open(t, Options{Dir: dir})
	if rep.Snapshot == nil || len(rep.Snapshot.Jobs) != 1 {
		t.Fatalf("snapshot not recovered: %+v", rep.Snapshot)
	}
	if len(rep.Events) != 1 || rep.Events[0].ID != "job-000002" {
		t.Fatalf("append racing compaction was lost: events = %+v", rep.Events)
	}
}

// TestIntervalFlusherSyncsIdleTail: under fsync=interval the last acks
// of a burst must reach stable storage within FsyncEvery even when no
// further append arrives to trigger the inline sync.
func TestIntervalFlusherSyncsIdleTail(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	j, _ := open(t, Options{Dir: t.TempDir(), Fsync: FsyncInterval, FsyncEvery: time.Second, Clock: fake})
	if err := j.Append(ev(EventAccepted, "job-000001")); err != nil {
		t.Fatal(err)
	}
	if st := j.Stats(); st.Fsyncs != 0 {
		t.Fatalf("interval not elapsed yet, synced %d times", st.Fsyncs)
	}
	// The flusher goroutine registers its timer and wakes
	// asynchronously; keep advancing the fake window until its sync
	// lands.
	deadline := time.Now().Add(5 * time.Second)
	for j.Stats().Fsyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle tail never synced: the interval flusher did not run")
		}
		fake.Advance(time.Second)
		time.Sleep(time.Millisecond)
	}
}

func TestFaultInjectedFsyncFailsAppend(t *testing.T) {
	reg := faultinject.New()
	if err := reg.Arm("journal.fsync=error:fsync eio,count:1", 1); err != nil {
		t.Fatal(err)
	}
	j, _ := open(t, Options{Dir: t.TempDir(), Fsync: FsyncAlways, Faults: reg})
	if err := j.Append(ev(EventAccepted, "job-000001")); err == nil {
		t.Fatal("injected fsync fault under fsync=always should fail the append")
	}
	if err := j.Append(ev(EventAccepted, "job-000002")); err != nil {
		t.Fatalf("append after spent fault: %v", err)
	}
}

func TestFaultInjectedSnapshotAbortsCompaction(t *testing.T) {
	reg := faultinject.New()
	if err := reg.Arm("journal.snapshot=error:no space,count:1", 1); err != nil {
		t.Fatal(err)
	}
	j, _ := open(t, Options{Dir: t.TempDir(), Faults: reg})
	if err := j.Append(ev(EventAccepted, "job-000001")); err != nil {
		t.Fatal(err)
	}
	before := j.Size()
	if err := j.WriteSnapshot(Snapshot{}); err == nil {
		t.Fatal("injected snapshot fault should surface an error")
	}
	if j.Size() != before {
		t.Fatal("failed compaction must leave the WAL intact")
	}
}

func TestReset(t *testing.T) {
	dir := t.TempDir()
	j, _ := open(t, Options{Dir: dir})
	if err := j.Append(ev(EventAccepted, "job-000001")); err != nil {
		t.Fatal(err)
	}
	if err := j.WriteSnapshot(Snapshot{Jobs: []JobRecord{{ID: "job-000001", State: "done"}}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	j.Close()
	_, rep := open(t, Options{Dir: dir})
	if rep.Snapshot != nil || len(rep.Events) != 0 {
		t.Fatalf("Reset should discard all state, got %+v", rep)
	}
}
