// Package journal is thermherdd's crash-safe write-ahead log for job
// lifecycle events. Every accepted job and every later transition
// (started, completed, failed, canceled) is appended as one framed
// record before the daemon acknowledges it, so a crash — a kill -9, an
// OOM, a chaos-layer panic that slips past recovery — loses no
// acknowledged work: on restart the server replays the journal,
// rebuilds its job table, and re-enqueues whatever was accepted or
// started but never finished.
//
// # Record format
//
// The log is a flat sequence of frames:
//
//	| length (4B LE) | crc32 (4B LE, IEEE, over payload) | payload |
//
// where payload is one JSON-encoded Event. The frame is
// self-delimiting and self-validating: recovery scans frames in order
// and stops at the first torn or corrupt one (short header, length
// past EOF, implausible length, or CRC mismatch), truncating the file
// there. A torn tail is the expected crash artifact — the tail record
// was never acknowledged (the append that wrote it did not return), so
// dropping it breaks no promise.
//
// # Fsync policy
//
// Durability of the acknowledgment is governed by the fsync policy:
// FsyncAlways syncs after every append (an acked job survives power
// loss), FsyncInterval syncs at most once per configured period (a
// crash can lose the last interval's acks, bounded data loss for much
// cheaper appends), FsyncOff leaves flushing to the OS (process
// crashes lose nothing, power loss may lose recent acks).
//
// # Snapshot compaction
//
// The log would otherwise grow forever, so the server periodically
// folds its whole job table into a snapshot file (one framed record in
// snapshot.db, written to a temp file, fsynced, and renamed) and
// truncates the WAL. Recovery loads the snapshot first, then replays
// the WAL's events over it; because event application is idempotent, a
// crash between the snapshot rename and the WAL truncation only
// replays events the snapshot already contains. A clean shutdown
// writes a final snapshot with Clean set, so the common restart path
// replays zero records.
//
// Named fault points (FaultAppend, FaultFsync, FaultSnapshot) sit on
// the fs seam so chaos tests can inject short writes and fsync errors
// deterministically; an injected append failure really does write a
// torn half-frame before erroring, exercising the same restore path a
// short write would. A failed append restores the last good frame
// boundary (truncate + seek back) before returning, so the journal
// keeps accepting appends afterwards and events acknowledged after a
// transient failure are never stranded behind a torn frame; only if
// that restore itself fails does the journal seal itself and refuse
// further appends.
//
//thermlint:goroutines
package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"thermalherd/internal/clock"
	"thermalherd/internal/faultinject"
)

// Fault points on the journal's fs seam; arm them on the registry
// passed via Options.Faults. All are no-ops when the registry is nil
// or disarmed.
//
//thermlint:faultpoints
const (
	// FaultAppend fires before a WAL append: an error action fails the
	// append after writing only half the frame, exercising the
	// torn-write restore path a short write or ENOSPC would take.
	FaultAppend = "journal.append"
	// FaultFsync fires before an fsync: an error action surfaces as a
	// failed append under FsyncAlways (the ack is withheld).
	FaultFsync = "journal.fsync"
	// FaultSnapshot fires before a snapshot write: an error action
	// aborts compaction, leaving the WAL intact.
	FaultSnapshot = "journal.snapshot"
)

// EventType enumerates the journaled job-lifecycle transitions.
type EventType string

const (
	// EventAccepted records a job entering the queue (or completing
	// immediately from the result cache); it carries the full spec so
	// replay can re-enqueue the job.
	EventAccepted EventType = "accepted"
	// EventStarted records a worker picking the job up.
	EventStarted EventType = "started"
	// EventCompleted records successful completion, carrying the result
	// so the job table and result cache survive a restart.
	EventCompleted EventType = "completed"
	// EventFailed and EventCanceled record the failure-side terminal
	// states.
	EventFailed   EventType = "failed"
	EventCanceled EventType = "canceled"
	// EventMigrated records a queued job handed off to another backend
	// (proactive drain herding): terminal locally, with MigratedTo
	// naming the node that adopted it.
	EventMigrated EventType = "migrated"
)

// Event is one journaled lifecycle transition. Accepted events carry
// the job's identity (spec, cache key, idempotency key); terminal
// events carry the outcome.
type Event struct {
	Type EventType `json:"t"`
	ID   string    `json:"id"`
	// Spec, Key, and IdemKey are set on accepted events.
	Spec    json.RawMessage `json:"spec,omitempty"`
	Key     string          `json:"key,omitempty"`
	IdemKey string          `json:"idem,omitempty"`
	// Tenant attributes accepted events to the submitting tenant so
	// replay can rebuild per-tenant accounting. Optional: events from
	// journals written before multi-tenancy simply have none.
	Tenant string `json:"tenant,omitempty"`
	// Result is set on completed events; FromCache marks completions
	// answered from the result cache at admission.
	Result    json.RawMessage `json:"result,omitempty"`
	FromCache bool            `json:"from_cache,omitempty"`
	// Error is set on failed and canceled events.
	Error string `json:"err,omitempty"`
	// MigratedTo is set on migrated events: the node that adopted the
	// job.
	MigratedTo string `json:"migrated_to,omitempty"`
	// At is the transition's RFC3339Nano timestamp.
	At string `json:"at,omitempty"`
}

// JobRecord is one job's full state inside a Snapshot.
type JobRecord struct {
	ID         string          `json:"id"`
	Spec       json.RawMessage `json:"spec"`
	Key        string          `json:"key"`
	IdemKey    string          `json:"idem,omitempty"`
	Tenant     string          `json:"tenant,omitempty"`
	State      string          `json:"state"`
	Error      string          `json:"err,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
	FromCache  bool            `json:"from_cache,omitempty"`
	MigratedTo string          `json:"migrated_to,omitempty"`
	Submitted  string          `json:"submitted,omitempty"`
	Started    string          `json:"started,omitempty"`
	Finished   string          `json:"finished,omitempty"`
}

// Snapshot is the compacted job table written at compaction points and
// on clean shutdown.
type Snapshot struct {
	// Clean marks a snapshot written by a graceful drain: every job is
	// terminal and the WAL behind it is empty.
	Clean bool        `json:"clean"`
	Jobs  []JobRecord `json:"jobs"`
}

// FsyncPolicy selects when appends reach stable storage.
type FsyncPolicy string

const (
	// FsyncAlways syncs after every append; an acknowledged job
	// survives power loss.
	FsyncAlways FsyncPolicy = "always"
	// FsyncInterval syncs at most once per Options.FsyncEvery; a crash
	// can lose at most that window of acknowledgments. A background
	// flusher syncs the tail of a burst, so the bound holds even when
	// no further append arrives to trigger the inline sync.
	FsyncInterval FsyncPolicy = "interval"
	// FsyncOff never syncs explicitly; process crashes lose nothing
	// (the OS holds the pages), power loss may lose recent acks.
	FsyncOff FsyncPolicy = "off"
)

// ParseFsyncPolicy validates a policy string (the -fsync flag).
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch FsyncPolicy(s) {
	case FsyncAlways, FsyncInterval, FsyncOff:
		return FsyncPolicy(s), nil
	case "":
		return FsyncAlways, nil
	}
	return "", fmt.Errorf("journal: unknown fsync policy %q (want always, interval, or off)", s)
}

// Options configures Open.
type Options struct {
	// Dir holds the WAL (wal.log) and snapshot (snapshot.db) files; it
	// is created if missing.
	Dir string
	// Fsync is the append durability policy; empty means FsyncAlways.
	Fsync FsyncPolicy
	// FsyncEvery spaces syncs under FsyncInterval; 0 means 100ms.
	FsyncEvery time.Duration
	// CompactBytes is the WAL size past which ShouldCompact reports
	// true; 0 means 4 MiB.
	CompactBytes int64
	// Faults is the chaos-testing fault-injection registry (may be nil).
	Faults *faultinject.Registry
	// Clock paces interval fsyncs; nil means the wall clock.
	Clock clock.Clock
}

// Replay is what Open recovered from disk: the last snapshot (if any)
// and the WAL events appended after it, in order.
type Replay struct {
	// Snapshot is the compacted base state, nil when none was found
	// (or the snapshot file was itself corrupt).
	Snapshot *Snapshot
	// Events are the valid WAL records after the snapshot.
	Events []Event
	// TruncatedRecords counts torn or corrupt tails dropped during the
	// scan (at most one per recovery: the scan stops at the first).
	TruncatedRecords int
	// SnapshotCorrupt notes that a snapshot file existed but failed
	// validation and was ignored.
	SnapshotCorrupt bool
	// CleanClose reports a graceful-shutdown artifact: a Clean snapshot
	// with zero WAL events behind it.
	CleanClose bool
}

// Stats counts a journal's I/O since Open.
type Stats struct {
	Appends uint64
	Fsyncs  uint64
}

const (
	walName      = "wal.log"
	snapshotName = "snapshot.db"
	frameHeader  = 8 // 4B length + 4B CRC32
	// maxRecord bounds a single frame's payload; a length beyond it is
	// treated as corruption rather than an allocation request.
	maxRecord = 64 << 20
)

// Journal is an open write-ahead log. Methods are safe for concurrent
// use.
type Journal struct {
	opts Options
	dir  string

	mu       sync.Mutex
	f        *os.File
	size     int64
	lastSync time.Time
	appends  uint64
	fsyncs   uint64
	// dirty marks appended-but-unsynced bytes; the interval flusher
	// syncs them even when no further append arrives.
	dirty bool
	// broken seals the journal after a failed append whose frame-boundary
	// restore also failed: the WAL tail is torn and cannot be repaired,
	// so accepting more appends would strand every later event behind
	// the torn frame on recovery. Cleared when a compaction empties the
	// WAL.
	broken error

	// flushStop/flushDone bracket the FsyncInterval background flusher.
	flushStop chan struct{}
	flushDone chan struct{}
}

// Open recovers the journal in opts.Dir and returns it ready for
// appends, along with everything it replayed. The WAL is truncated at
// the first torn or corrupt record so subsequent appends start from a
// clean frame boundary.
func Open(opts Options) (*Journal, *Replay, error) {
	if opts.Dir == "" {
		return nil, nil, fmt.Errorf("journal: Options.Dir is required")
	}
	if opts.Fsync == "" {
		opts.Fsync = FsyncAlways
	}
	if _, err := ParseFsyncPolicy(string(opts.Fsync)); err != nil {
		return nil, nil, err
	}
	if opts.FsyncEvery <= 0 {
		opts.FsyncEvery = 100 * time.Millisecond
	}
	if opts.CompactBytes <= 0 {
		opts.CompactBytes = 4 << 20
	}
	if opts.Clock == nil {
		opts.Clock = clock.Real()
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}

	rep := &Replay{}
	rep.Snapshot, rep.SnapshotCorrupt = readSnapshot(filepath.Join(opts.Dir, snapshotName))

	walPath := filepath.Join(opts.Dir, walName)
	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	events, good, torn, err := scanWAL(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: scanning %s: %w", walPath, err)
	}
	if torn {
		rep.TruncatedRecords = 1
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: truncating torn tail of %s: %w", walPath, err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	rep.Events = events
	rep.CleanClose = rep.Snapshot != nil && rep.Snapshot.Clean && len(events) == 0

	j := &Journal{
		opts:     opts,
		dir:      opts.Dir,
		f:        f,
		size:     good,
		lastSync: opts.Clock.Now(),
	}
	if opts.Fsync == FsyncInterval {
		// Without the flusher the interval policy only syncs from within
		// a later Append, so the tail of a burst would stay unsynced
		// indefinitely and the "at most FsyncEvery of acks" loss bound
		// would not hold.
		j.flushStop = make(chan struct{})
		j.flushDone = make(chan struct{})
		go j.flushLoop(j.flushStop, j.flushDone)
	}
	return j, rep, nil
}

// flushLoop is the FsyncInterval background flusher: it syncs dirty
// appends at most once per FsyncEvery so the loss bound holds even
// when no further append arrives to trigger the inline sync. The
// channels are passed in because Close nils the struct fields.
func (j *Journal) flushLoop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	for {
		select {
		case <-stop:
			return
		case <-j.opts.Clock.After(j.opts.FsyncEvery):
		}
		j.mu.Lock()
		if j.f != nil && j.dirty {
			j.syncLocked() // best-effort; an error also surfaces on the next Append
		}
		j.mu.Unlock()
	}
}

// scanWAL reads frames from the start of f, returning the decoded
// events, the offset of the last fully valid frame, and whether a torn
// or corrupt tail was found. I/O errors other than EOF abort the scan.
func scanWAL(f *os.File) (events []Event, good int64, torn bool, err error) {
	r := io.Reader(f)
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, false, err
	}
	var header [frameHeader]byte
	for {
		n, err := io.ReadFull(r, header[:])
		if err == io.EOF {
			return events, good, false, nil // clean end on a frame boundary
		}
		if err == io.ErrUnexpectedEOF || (err == nil && n < frameHeader) {
			return events, good, true, nil // torn header
		}
		if err != nil {
			return nil, 0, false, err
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if length == 0 || length > maxRecord {
			return events, good, true, nil // implausible length: corrupt
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return events, good, true, nil // torn payload
			}
			return nil, 0, false, err
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return events, good, true, nil // corrupt payload
		}
		var ev Event
		if err := json.Unmarshal(payload, &ev); err != nil {
			return events, good, true, nil // CRC-valid but undecodable: corrupt
		}
		events = append(events, ev)
		good += int64(frameHeader) + int64(length)
	}
}

// readSnapshot loads and validates the snapshot file. A missing file
// returns (nil, false); an unreadable or corrupt one returns
// (nil, true) — recovery then falls back to the WAL alone.
func readSnapshot(path string) (*Snapshot, bool) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, !os.IsNotExist(err)
	}
	if len(b) < frameHeader {
		return nil, true
	}
	length := binary.LittleEndian.Uint32(b[0:4])
	sum := binary.LittleEndian.Uint32(b[4:8])
	if int64(length) != int64(len(b)-frameHeader) || crc32.ChecksumIEEE(b[frameHeader:]) != sum {
		return nil, true
	}
	var snap Snapshot
	if err := json.Unmarshal(b[frameHeader:], &snap); err != nil {
		return nil, true
	}
	return &snap, false
}

// EncodeFrames renders events as a concatenation of CRC-framed,
// length-prefixed records — the WAL's exact on-disk format, reused as
// the replication stream's wire format so a replica file is
// byte-compatible with a WAL segment.
func EncodeFrames(events []Event) ([]byte, error) {
	var out []byte
	for _, ev := range events {
		payload, err := json.Marshal(ev)
		if err != nil {
			return nil, fmt.Errorf("journal: encoding event: %w", err)
		}
		out = append(out, frame(payload)...)
	}
	return out, nil
}

// DecodeFrames parses a concatenation of CRC-framed records (the
// EncodeFrames / WAL format). torn reports a truncated or corrupt tail;
// the events decoded before it are still returned, mirroring WAL
// recovery's stop-at-first-bad-frame rule.
func DecodeFrames(b []byte) (events []Event, torn bool) {
	for len(b) > 0 {
		if len(b) < frameHeader {
			return events, true
		}
		length := binary.LittleEndian.Uint32(b[0:4])
		sum := binary.LittleEndian.Uint32(b[4:8])
		if length == 0 || length > maxRecord || int64(length) > int64(len(b)-frameHeader) {
			return events, true
		}
		payload := b[frameHeader : frameHeader+int(length)]
		if crc32.ChecksumIEEE(payload) != sum {
			return events, true
		}
		var ev Event
		if err := json.Unmarshal(payload, &ev); err != nil {
			return events, true
		}
		events = append(events, ev)
		b = b[frameHeader+int(length):]
	}
	return events, false
}

// frame renders one CRC32-framed, length-prefixed record.
func frame(payload []byte) []byte {
	buf := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[frameHeader:], payload)
	return buf
}

// Append journals one event under the configured fsync policy. When it
// returns nil the event is recorded (durably so under FsyncAlways);
// when it returns an error the caller must not acknowledge the
// transition. A failed write restores the last good frame boundary
// (truncate + seek back over the torn half-frame) before returning, so
// later appends land on a clean boundary and stay replayable; if the
// restore itself fails the journal seals and every later Append errors
// rather than silently stranding acked events behind a torn frame.
func (j *Journal) Append(ev Event) error {
	payload, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("journal: encoding event: %w", err)
	}
	buf := frame(payload)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.broken != nil {
		return j.broken
	}
	prev := j.size
	if ferr := j.opts.Faults.Fire(FaultAppend); ferr != nil {
		// Simulate the disk state an interrupted write leaves behind —
		// half a frame — then take the same restore path a real short
		// write would.
		n, _ := j.f.Write(buf[:len(buf)/2])
		j.size += int64(n)
		j.restoreTailLocked(prev)
		return ferr
	}
	n, err := j.f.Write(buf)
	j.size += int64(n)
	if err != nil {
		j.restoreTailLocked(prev)
		return fmt.Errorf("journal: append: %w", err)
	}
	j.appends++
	j.dirty = true
	return j.maybeSyncLocked()
}

// restoreTailLocked rolls the WAL back to the frame boundary at prev
// after a failed append, so the torn half-frame never sits in front of
// later events. If the rollback itself fails, the journal is sealed:
// accepting more appends past an unrepaired torn frame would drop
// every one of them at the next recovery. Caller holds j.mu.
func (j *Journal) restoreTailLocked(prev int64) {
	if err := j.f.Truncate(prev); err != nil {
		j.broken = fmt.Errorf("journal: sealed: torn tail at offset %d could not be truncated: %w", prev, err)
		return
	}
	if _, err := j.f.Seek(prev, io.SeekStart); err != nil {
		j.broken = fmt.Errorf("journal: sealed: could not seek back to frame boundary %d: %w", prev, err)
		return
	}
	j.size = prev
}

// maybeSyncLocked applies the fsync policy after an append. Caller
// holds j.mu.
func (j *Journal) maybeSyncLocked() error {
	switch j.opts.Fsync {
	case FsyncOff:
		return nil
	case FsyncInterval:
		if j.opts.Clock.Since(j.lastSync) < j.opts.FsyncEvery {
			return nil
		}
	}
	return j.syncLocked()
}

// syncLocked flushes the WAL to stable storage. Caller holds j.mu.
func (j *Journal) syncLocked() error {
	if ferr := j.opts.Faults.Fire(FaultFsync); ferr != nil {
		return ferr
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.fsyncs++
	j.dirty = false
	j.lastSync = j.opts.Clock.Now()
	return nil
}

// Sync forces an fsync regardless of policy.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncLocked()
}

// ShouldCompact reports whether the WAL has outgrown the compaction
// threshold; the server answers by folding its job table into
// WriteSnapshot.
func (j *Journal) ShouldCompact() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size >= j.opts.CompactBytes
}

// WriteSnapshot atomically replaces the snapshot file with snap and
// truncates the WAL behind it. Use Compact when the state being
// snapshotted can change concurrently with appends — WriteSnapshot
// takes snap as already captured, so it is only race-free when the
// caller knows no append can land between capturing snap and calling
// it (boot, drain, tests).
func (j *Journal) WriteSnapshot(snap Snapshot) error {
	return j.Compact(func() Snapshot { return snap })
}

// Compact folds capture()'s state into the snapshot file and truncates
// the WAL behind it, holding the journal lock across the whole
// sequence so no Append can land between the state capture and the WAL
// truncation — an event is always covered by either the snapshot or
// the surviving WAL, never lost to the gap. capture must not call back
// into the Journal. Ordering makes the pair crash-safe: the snapshot
// lands (temp file, fsync, rename) before the WAL is cut, so a crash
// between the two replays snapshot-covered events, which application
// handles idempotently.
func (j *Journal) Compact(capture func() Snapshot) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if ferr := j.opts.Faults.Fire(FaultSnapshot); ferr != nil {
		return ferr
	}
	payload, err := json.Marshal(capture())
	if err != nil {
		return fmt.Errorf("journal: encoding snapshot: %w", err)
	}
	buf := frame(payload)
	path := filepath.Join(j.dir, snapshotName)
	tmp := path + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	if _, err := tf.Write(buf); err != nil {
		tf.Close()
		os.Remove(tmp)
		return fmt.Errorf("journal: snapshot write: %w", err)
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		os.Remove(tmp)
		return fmt.Errorf("journal: snapshot fsync: %w", err)
	}
	if err := tf.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: snapshot rename: %w", err)
	}
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("journal: truncating WAL after snapshot: %w", err)
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.size = 0
	j.dirty = false
	// The WAL is empty again: whatever torn tail sealed the journal is
	// gone, so appends may resume.
	j.broken = nil
	return nil
}

// Reset discards all persisted state (the -no-recover path): the WAL
// is truncated and the snapshot removed.
func (j *Journal) Reset() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("journal: reset: %w", err)
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.size = 0
	j.dirty = false
	j.broken = nil
	if err := os.Remove(filepath.Join(j.dir, snapshotName)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("journal: reset: %w", err)
	}
	return nil
}

// Stats returns append/fsync counts since Open.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Stats{Appends: j.appends, Fsyncs: j.fsyncs}
}

// Size returns the WAL's current byte length.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// Close stops the interval flusher, then syncs and closes the WAL
// file. It does not write a snapshot; a graceful shutdown calls
// WriteSnapshot first.
func (j *Journal) Close() error {
	j.mu.Lock()
	stop, done := j.flushStop, j.flushDone
	j.flushStop = nil
	j.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done // the flusher exits promptly once stop is closed
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	serr := j.f.Sync()
	cerr := j.f.Close()
	j.f = nil
	if serr != nil {
		return fmt.Errorf("journal: close sync: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("journal: close: %w", cerr)
	}
	return nil
}
