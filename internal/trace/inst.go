// Package trace defines the dynamic instruction stream consumed by the
// timing simulator, and provides the synthetic workload generator that
// stands in for the paper's 106 application traces (SPEC2000, MediaBench,
// MiBench, pointer-intensive, graphics, and bioinformatics suites run
// under SimpleScalar/MASE with SimPoint sampling).
//
// Declared deterministic to thermlint: the same generator parameters
// and seed must reproduce the same instruction stream bit for bit.
//
//thermlint:deterministic
package trace

import "thermalherd/internal/isa"

// RegNone marks an absent register operand.
const RegNone int16 = -1

// FPBase offsets floating-point register identifiers so integer and FP
// registers share one rename space in Inst records: FP register f3 is
// identified as FPBase+3.
const FPBase int16 = 32

// Inst is one dynamic (executed) instruction with everything the timing
// model needs: operand/result identity for renaming, the result value for
// width classification, the effective address for the memory system and
// PAM, and the resolved control-flow outcome for the branch predictor.
type Inst struct {
	// PC is the instruction's address.
	PC uint64
	// Op is the executed opcode; Class caches Op.Class() for the
	// issue logic.
	Op    isa.Opcode
	Class isa.Class
	// Dest is the architectural destination register (FP registers
	// offset by FPBase), or RegNone.
	Dest int16
	// Src1, Src2 are source registers, or RegNone.
	Src1, Src2 int16
	// Result is the value written to Dest (raw bits for FP); width
	// prediction classifies it. Meaningless when Dest == RegNone.
	Result uint64
	// MemAddr/MemSize describe the data memory access of loads and
	// stores (size in bytes, 0 for non-memory instructions).
	MemAddr uint64
	MemSize uint8
	// StoreVal is the value a store writes.
	StoreVal uint64
	// Taken and Target describe resolved control flow for branches and
	// jumps: Target is the next PC when Taken.
	Taken  bool
	Target uint64
}

// IsMem reports whether the instruction accesses data memory.
func (in *Inst) IsMem() bool { return in.Class == isa.ClassLoad || in.Class == isa.ClassStore }

// IsCtrl reports whether the instruction is a branch or jump.
func (in *Inst) IsCtrl() bool { return in.Class == isa.ClassBranch || in.Class == isa.ClassJump }

// NextPC returns the address of the successor instruction.
func (in *Inst) NextPC() uint64 {
	if in.IsCtrl() && in.Taken {
		return in.Target
	}
	return in.PC + 4
}

// HasIntDest reports whether the instruction writes an integer register.
func (in *Inst) HasIntDest() bool { return in.Dest != RegNone && in.Dest < FPBase }

// Source produces a dynamic instruction stream. Implementations include
// the functional emulator (package emu) and the synthetic generators in
// this package.
type Source interface {
	// Next returns the next dynamic instruction; ok is false when the
	// stream is exhausted.
	Next() (in Inst, ok bool)
}

// SliceSource adapts a pre-recorded instruction slice into a Source.
type SliceSource struct {
	insts []Inst
	pos   int
}

// NewSliceSource wraps insts.
func NewSliceSource(insts []Inst) *SliceSource { return &SliceSource{insts: insts} }

// Next implements Source.
func (s *SliceSource) Next() (Inst, bool) {
	if s.pos >= len(s.insts) {
		return Inst{}, false
	}
	in := s.insts[s.pos]
	s.pos++
	return in, true
}

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }

// Collect drains up to max instructions from src into a slice.
func Collect(src Source, max int) []Inst {
	out := make([]Inst, 0, min(max, 4096))
	for len(out) < max {
		in, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, in)
	}
	return out
}
