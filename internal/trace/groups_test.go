package trace

import (
	"testing"

	"thermalherd/internal/core"
	"thermalherd/internal/isa"
)

// groupSample aggregates stream statistics over every workload in a
// group (short streams; generator-only, no timing model).
type groupSample struct {
	lowFrac   float64 // low-width fraction of integer results
	fpFrac    float64 // FP fraction of the instruction mix
	memFrac   float64 // load+store fraction
	pvAddr    float64 // PVAddr fraction of load values
	branches  float64 // branch fraction
	taken     float64 // taken fraction of branches
	perInsts  int
	workloads int
}

func sampleGroup(t *testing.T, g Group, perWorkload int) groupSample {
	t.Helper()
	var s groupSample
	for _, p := range GroupProfiles(g) {
		gen := NewGenerator(p)
		var intRes, low, fp, mem, pvAddrN, loads, branches, taken int
		for i := 0; i < perWorkload; i++ {
			in, _ := gen.Next()
			switch in.Class {
			case isa.ClassFPAdd, isa.ClassFPMul, isa.ClassFPDiv:
				fp++
			case isa.ClassLoad:
				mem++
				loads++
				if core.ClassifyPartialValue(in.Result, in.MemAddr) == core.PVAddr {
					pvAddrN++
				}
			case isa.ClassStore:
				mem++
			case isa.ClassBranch:
				branches++
				if in.Taken {
					taken++
				}
			}
			if in.HasIntDest() && in.Class != isa.ClassJump {
				intRes++
				if core.IsLowWidth(in.Result) {
					low++
				}
			}
		}
		n := float64(perWorkload)
		s.lowFrac += float64(low) / float64(max(intRes, 1))
		s.fpFrac += float64(fp) / n
		s.memFrac += float64(mem) / n
		s.pvAddr += float64(pvAddrN) / float64(max(loads, 1))
		s.branches += float64(branches) / n
		s.taken += float64(taken) / float64(max(branches, 1))
		s.workloads++
	}
	w := float64(s.workloads)
	s.lowFrac /= w
	s.fpFrac /= w
	s.memFrac /= w
	s.pvAddr /= w
	s.branches /= w
	s.taken /= w
	return s
}

// TestGroupCharacterOrderings checks the suite encodes each group's
// well-known character, which the figure shapes depend on.
func TestGroupCharacterOrderings(t *testing.T) {
	const n = 30000
	samples := map[Group]groupSample{}
	for _, g := range Groups() {
		samples[g] = sampleGroup(t, g, n)
	}

	// SPECfp is by far the most FP-intensive; integer suites have
	// almost none.
	if samples[GroupSPECfp].fpFrac < 0.2 {
		t.Errorf("SPECfp FP fraction = %.3f, want >= 0.2", samples[GroupSPECfp].fpFrac)
	}
	for _, g := range []Group{GroupSPECint, GroupMiBench, GroupPointer, GroupBio} {
		if samples[g].fpFrac >= samples[GroupSPECfp].fpFrac/2 {
			t.Errorf("group %v FP fraction %.3f too close to SPECfp %.3f",
				g, samples[g].fpFrac, samples[GroupSPECfp].fpFrac)
		}
	}

	// Media/embedded suites are the most low-width (16-bit data).
	for _, media := range []Group{GroupMediaBench, GroupBio} {
		if samples[media].lowFrac <= samples[GroupSPECfp].lowFrac {
			t.Errorf("%v low-width %.3f not above SPECfp %.3f",
				media, samples[media].lowFrac, samples[GroupSPECfp].lowFrac)
		}
	}

	// The pointer suite leads in PVAddr-classified load values.
	for _, g := range Groups() {
		if g == GroupPointer {
			continue
		}
		if samples[g].pvAddr >= samples[GroupPointer].pvAddr {
			t.Errorf("group %v PVAddr %.3f not below pointer suite %.3f",
				g, samples[g].pvAddr, samples[GroupPointer].pvAddr)
		}
	}

	// Every group has plausible branch behaviour: some branches, mixed
	// outcomes.
	for g, s := range samples {
		if s.branches < 0.02 || s.branches > 0.25 {
			t.Errorf("group %v branch fraction %.3f implausible", g, s.branches)
		}
		if s.taken < 0.3 || s.taken > 0.95 {
			t.Errorf("group %v taken fraction %.3f implausible", g, s.taken)
		}
	}

	// Loads+stores are a substantial fraction everywhere (load/store
	// ISA) but never a majority.
	for g, s := range samples {
		if s.memFrac < 0.15 || s.memFrac > 0.6 {
			t.Errorf("group %v memory fraction %.3f implausible", g, s.memFrac)
		}
	}
}
