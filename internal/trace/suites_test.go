package trace

import "testing"

func TestSuiteHas106Workloads(t *testing.T) {
	s := Suite()
	if len(s) != SuiteSize {
		t.Errorf("suite size = %d, want %d", len(s), SuiteSize)
	}
}

func TestSuiteNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Suite() {
		if seen[p.Name] {
			t.Errorf("duplicate workload name %q", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestSuiteProfilesValidate(t *testing.T) {
	for _, p := range Suite() {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
	}
}

func TestSuiteCoversAllGroups(t *testing.T) {
	counts := map[Group]int{}
	for _, p := range Suite() {
		counts[p.Group]++
	}
	for _, g := range Groups() {
		if counts[g] == 0 {
			t.Errorf("group %v has no workloads", g)
		}
	}
	// The paper's full SPEC suites.
	if counts[GroupSPECint] != 12 {
		t.Errorf("SPECint2000 has %d workloads, want 12", counts[GroupSPECint])
	}
	if counts[GroupSPECfp] != 14 {
		t.Errorf("SPECfp2000 has %d workloads, want 14", counts[GroupSPECfp])
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"mcf", "crafty", "patricia", "mpeg2enc", "yacr2", "susan_s"} {
		p, err := ProfileByName(name)
		if err != nil {
			t.Errorf("ProfileByName(%s): %v", name, err)
			continue
		}
		if p.Name != name {
			t.Errorf("ProfileByName(%s).Name = %s", name, p.Name)
		}
	}
	if _, err := ProfileByName("nonesuch"); err == nil {
		t.Error("unknown benchmark not rejected")
	}
}

func TestPaperCalloutCharacteristics(t *testing.T) {
	mcf, _ := ProfileByName("mcf")
	crafty, _ := ProfileByName("crafty")
	if mcf.WorkingSet <= crafty.WorkingSet {
		t.Error("mcf must be far more memory-hungry than crafty")
	}
	if mcf.HotFrac >= crafty.HotFrac {
		t.Error("mcf must have worse locality than crafty")
	}
	yacr2, _ := ProfileByName("yacr2")
	susan, _ := ProfileByName("susan_s")
	if yacr2.WorkingSet <= susan.WorkingSet {
		t.Error("yacr2 must be more memory-intensive than susan")
	}
	if susan.LowWidthStaticFrac <= yacr2.LowWidthStaticFrac {
		t.Error("susan (16-bit image data) should be more low-width than yacr2")
	}
	// SPECfp must be the most memory-bound group on average, matching
	// the paper's explanation for its low speedup.
	avgWS := func(g Group) float64 {
		var sum float64
		ps := GroupProfiles(g)
		for _, p := range ps {
			sum += float64(p.WorkingSet)
		}
		return sum / float64(len(ps))
	}
	fp := avgWS(GroupSPECfp)
	for _, g := range []Group{GroupSPECint, GroupMediaBench, GroupMiBench, GroupGraphics} {
		if avgWS(g) >= fp {
			t.Errorf("group %v average working set >= SPECfp", g)
		}
	}
}

func TestGroupProfilesPartition(t *testing.T) {
	total := 0
	for _, g := range Groups() {
		total += len(GroupProfiles(g))
	}
	if total != len(Suite()) {
		t.Errorf("group partition covers %d, suite has %d", total, len(Suite()))
	}
}

func TestGroupStrings(t *testing.T) {
	want := []string{"SPECint2000", "SPECfp2000", "MediaBench", "MiBench", "Pointer", "Graphics", "Bio"}
	for i, g := range Groups() {
		if g.String() != want[i] {
			t.Errorf("group %d String() = %q, want %q", i, g.String(), want[i])
		}
	}
}

func TestSeedsDeterministicAndDistinct(t *testing.T) {
	if seedFor("mcf") != seedFor("mcf") {
		t.Error("seedFor not deterministic")
	}
	if seedFor("mcf") == seedFor("gcc") {
		t.Error("seed collision between mcf and gcc")
	}
}

func TestGeneratorWorksForAllSuiteProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("suite-wide generation is slow")
	}
	for _, p := range Suite() {
		insts := Collect(NewGenerator(p), 2000)
		if len(insts) != 2000 {
			t.Errorf("%s: generated %d insts, want 2000", p.Name, len(insts))
		}
	}
}
