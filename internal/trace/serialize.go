package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"thermalherd/internal/isa"
)

// Binary trace serialization: capture a dynamic instruction stream (from
// the emulator or a generator) to a compact file and replay it later as
// a Source. The format is a little-endian fixed-size record per
// instruction behind a small header.

// traceMagic identifies a TH64 trace stream ("THTR" + version 1).
var traceMagic = [8]byte{'T', 'H', 'T', 'R', 0, 0, 0, 1}

// recordSize is the on-disk size of one instruction record.
const recordSize = 8 + 1 + 1 + 2 + 2 + 2 + 8 + 1 + 1 + 8 + 8 + 8

// Write serializes up to max instructions from src to w, returning how
// many were written. max <= 0 means until the source is exhausted.
func Write(w io.Writer, src Source, max int) (int, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return 0, fmt.Errorf("trace: write header: %w", err)
	}
	var buf [recordSize]byte
	n := 0
	for max <= 0 || n < max {
		in, ok := src.Next()
		if !ok {
			break
		}
		encodeRecord(&buf, &in)
		if _, err := bw.Write(buf[:]); err != nil {
			return n, fmt.Errorf("trace: write record %d: %w", n, err)
		}
		n++
	}
	return n, bw.Flush()
}

func encodeRecord(buf *[recordSize]byte, in *Inst) {
	le := binary.LittleEndian
	le.PutUint64(buf[0:], in.PC)
	buf[8] = uint8(in.Op)
	buf[9] = uint8(in.Class)
	le.PutUint16(buf[10:], uint16(in.Dest))
	le.PutUint16(buf[12:], uint16(in.Src1))
	le.PutUint16(buf[14:], uint16(in.Src2))
	le.PutUint64(buf[16:], in.Result)
	buf[24] = in.MemSize
	if in.Taken {
		buf[25] = 1
	} else {
		buf[25] = 0
	}
	le.PutUint64(buf[26:], in.MemAddr)
	le.PutUint64(buf[34:], in.StoreVal)
	le.PutUint64(buf[42:], in.Target)
}

func decodeRecord(buf *[recordSize]byte) Inst {
	le := binary.LittleEndian
	return Inst{
		PC:       le.Uint64(buf[0:]),
		Op:       isa.Opcode(buf[8]),
		Class:    isa.Class(buf[9]),
		Dest:     int16(le.Uint16(buf[10:])),
		Src1:     int16(le.Uint16(buf[12:])),
		Src2:     int16(le.Uint16(buf[14:])),
		Result:   le.Uint64(buf[16:]),
		MemSize:  buf[24],
		Taken:    buf[25] != 0,
		MemAddr:  le.Uint64(buf[26:]),
		StoreVal: le.Uint64(buf[34:]),
		Target:   le.Uint64(buf[42:]),
	}
}

// Reader replays a serialized trace as a Source.
type Reader struct {
	br  *bufio.Reader
	err error
	n   int
}

// NewReader validates the header and returns a replay Source.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if hdr != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr[:4])
	}
	return &Reader{br: br}, nil
}

// Next implements Source.
func (r *Reader) Next() (Inst, bool) {
	if r.err != nil {
		return Inst{}, false
	}
	var buf [recordSize]byte
	if _, err := io.ReadFull(r.br, buf[:]); err != nil {
		if err != io.EOF {
			r.err = err
		}
		return Inst{}, false
	}
	r.n++
	return decodeRecord(&buf), true
}

// Err returns any non-EOF read error encountered during replay.
func (r *Reader) Err() error { return r.err }

// Count returns the number of instructions replayed so far.
func (r *Reader) Count() int { return r.n }
