package trace

import (
	"math"
	"testing"

	"thermalherd/internal/core"
	"thermalherd/internal/isa"
)

func testProfile() Profile {
	p := baseProfile(GroupSPECint)
	p.Name = "test"
	p.Seed = 42
	return p
}

func TestGeneratorDeterministic(t *testing.T) {
	p := testProfile()
	a := Collect(NewGenerator(p), 5000)
	b := Collect(NewGenerator(p), 5000)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	p1 := testProfile()
	p2 := testProfile()
	p2.Seed = 43
	a := Collect(NewGenerator(p1), 1000)
	b := Collect(NewGenerator(p2), 1000)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical streams")
	}
}

func TestGeneratorInstructionMix(t *testing.T) {
	p := testProfile()
	insts := Collect(NewGenerator(p), 200000)
	counts := map[isa.Class]int{}
	for i := range insts {
		counts[insts[i].Class]++
	}
	n := float64(len(insts))
	check := func(name string, got float64, want, tol float64) {
		if math.Abs(got-want) > tol {
			t.Errorf("%s fraction = %.3f, want %.3f ± %.3f", name, got, want, tol)
		}
	}
	check("load", float64(counts[isa.ClassLoad])/n, p.FracLoad, 0.05)
	check("store", float64(counts[isa.ClassStore])/n, p.FracStore, 0.05)
	ctrl := float64(counts[isa.ClassBranch]+counts[isa.ClassJump]) / n
	check("control", ctrl, p.FracBranch+p.FracJump, 0.05)
}

func TestGeneratorPCsWithinCode(t *testing.T) {
	p := testProfile()
	insts := Collect(NewGenerator(p), 50000)
	limit := uint64(codeBase + 4*p.StaticInsts)
	for i := range insts {
		pc := insts[i].PC
		if pc < codeBase || pc >= limit {
			t.Fatalf("inst %d at pc %#x outside code segment", i, pc)
		}
		if pc%4 != 0 {
			t.Fatalf("misaligned pc %#x", pc)
		}
	}
}

func TestGeneratorControlFlowConsistency(t *testing.T) {
	p := testProfile()
	insts := Collect(NewGenerator(p), 50000)
	for i := 0; i < len(insts)-1; i++ {
		cur, next := &insts[i], &insts[i+1]
		// Far-region excursions synthesize PCs outside the code
		// segment mapping; skip those transitions.
		if next.PC >= farBase || cur.PC >= farBase {
			continue
		}
		if cur.IsCtrl() && cur.Taken {
			if cur.Target >= farBase {
				continue
			}
			if next.PC != cur.Target {
				t.Fatalf("inst %d taken to %#x but next pc is %#x", i, cur.Target, next.PC)
			}
		} else if next.PC != cur.PC+4 {
			t.Fatalf("inst %d (class %v, taken=%v) fell through to %#x, want %#x",
				i, cur.Class, cur.Taken, next.PC, cur.PC+4)
		}
	}
}

func TestGeneratorWidthBiasResponds(t *testing.T) {
	lowFrac := func(staticFrac float64) float64 {
		p := testProfile()
		p.LowWidthStaticFrac = staticFrac
		insts := Collect(NewGenerator(p), 100000)
		var results, low int
		for i := range insts {
			if insts[i].HasIntDest() && insts[i].Class != isa.ClassJump {
				results++
				if core.IsLowWidth(insts[i].Result) {
					low++
				}
			}
		}
		return float64(low) / float64(results)
	}
	hi := lowFrac(0.9)
	lo := lowFrac(0.2)
	if hi <= lo {
		t.Errorf("low-width fraction did not respond to bias: %.3f (0.9) vs %.3f (0.2)", hi, lo)
	}
	if hi < 0.75 {
		t.Errorf("at 0.9 static bias, dynamic low fraction = %.3f, want >= 0.75", hi)
	}
}

func TestGeneratorPointerLoadsClassifyAsPVAddr(t *testing.T) {
	p := testProfile()
	p.PtrLoadFrac = 0.5
	insts := Collect(NewGenerator(p), 100000)
	var stats core.PVStats
	for i := range insts {
		if insts[i].Class == isa.ClassLoad {
			stats.Observe(core.ClassifyPartialValue(insts[i].Result, insts[i].MemAddr))
		}
	}
	if frac := float64(stats.Counts[core.PVAddr]) / float64(stats.Total()); frac < 0.3 {
		t.Errorf("PVAddr fraction = %.3f, want >= 0.3 with PtrLoadFrac=0.5", frac)
	}
}

func TestGeneratorMemoryFootprintRespondsToWorkingSet(t *testing.T) {
	unique := func(wsBytes uint64) int {
		p := testProfile()
		p.WorkingSet = wsBytes
		p.HotFrac = 0 // pure uniform over the working set
		insts := Collect(NewGenerator(p), 50000)
		seen := map[uint64]bool{}
		for i := range insts {
			if insts[i].IsMem() && insts[i].MemAddr >= heapBase {
				seen[insts[i].MemAddr&^63] = true // cache-line granularity
			}
		}
		return len(seen)
	}
	small := unique(64 << 10)
	big := unique(32 << 20)
	if big <= small {
		t.Errorf("footprint did not grow with working set: %d vs %d lines", small, big)
	}
}

func TestGeneratorStackAccessesShareUpperBits(t *testing.T) {
	p := testProfile()
	p.StackFrac = 1.0
	insts := Collect(NewGenerator(p), 20000)
	memo := core.NewAddressMemo()
	for i := range insts {
		if insts[i].IsMem() {
			memo.Broadcast(insts[i].MemAddr, insts[i].Class == isa.ClassStore)
		}
	}
	if memo.Broadcasts() == 0 {
		t.Fatal("no memory operations")
	}
	if hr := memo.HitRate(); hr < 0.95 {
		t.Errorf("all-stack PAM hit rate = %.3f, want >= 0.95", hr)
	}
}

func TestGeneratorBranchBiasAffectsPredictability(t *testing.T) {
	mispredictRate := func(hardFrac float64) float64 {
		p := testProfile()
		p.HardBranchFrac = hardFrac
		insts := Collect(NewGenerator(p), 100000)
		// A simple last-taken predictor per PC approximates bimodal
		// behaviour for this check.
		lastTaken := map[uint64]bool{}
		var branches, miss int
		for i := range insts {
			if insts[i].Class != isa.ClassBranch {
				continue
			}
			branches++
			if pred, ok := lastTaken[insts[i].PC]; ok && pred != insts[i].Taken {
				miss++
			}
			lastTaken[insts[i].PC] = insts[i].Taken
		}
		return float64(miss) / float64(branches)
	}
	easy := mispredictRate(0.0)
	hardR := mispredictRate(0.5)
	if hardR <= easy {
		t.Errorf("mispredict rate did not grow with hard branches: %.3f vs %.3f", easy, hardR)
	}
}

func TestGeneratorFarJumpsProduceFarTargets(t *testing.T) {
	p := testProfile()
	p.FarTargetFrac = 1.0
	p.FracJump = 0.10
	insts := Collect(NewGenerator(p), 50000)
	var far int
	for i := range insts {
		if insts[i].Class == isa.ClassJump && core.TargetNeedsFullRead(insts[i].PC, insts[i].Target) {
			far++
		}
	}
	if far == 0 {
		t.Error("no far jump targets with FarTargetFrac=1")
	}
}

func TestProfileValidation(t *testing.T) {
	bad := testProfile()
	bad.FracLoad = 0.9 // pushes the mix over 1.0
	if err := bad.Validate(); err == nil {
		t.Error("overfull instruction mix not rejected")
	}
	bad = testProfile()
	bad.HotFrac = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range fraction not rejected")
	}
	bad = testProfile()
	bad.WorkingSet = 100
	if err := bad.Validate(); err == nil {
		t.Error("tiny working set not rejected")
	}
	bad = testProfile()
	bad.DepDistMean = 0.5
	if err := bad.Validate(); err == nil {
		t.Error("sub-1 dependency distance not rejected")
	}
	bad = testProfile()
	bad.StaticInsts = 4
	if err := bad.Validate(); err == nil {
		t.Error("tiny static program not rejected")
	}
}

func TestSliceSource(t *testing.T) {
	src := NewSliceSource([]Inst{{PC: 4}, {PC: 8}})
	a, ok := src.Next()
	if !ok || a.PC != 4 {
		t.Fatalf("first = (%v, %v)", a.PC, ok)
	}
	b, _ := src.Next()
	if b.PC != 8 {
		t.Fatalf("second PC = %d", b.PC)
	}
	if _, ok := src.Next(); ok {
		t.Error("exhausted source returned ok")
	}
	src.Reset()
	if c, ok := src.Next(); !ok || c.PC != 4 {
		t.Error("Reset did not rewind")
	}
}

func TestCollectCaps(t *testing.T) {
	g := NewGenerator(testProfile())
	insts := Collect(g, 123)
	if len(insts) != 123 {
		t.Errorf("Collect returned %d, want 123", len(insts))
	}
	if g.Emitted() != 123 {
		t.Errorf("Emitted = %d, want 123", g.Emitted())
	}
}
