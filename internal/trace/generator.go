package trace

import (
	"fmt"
	"math/rand"

	"thermalherd/internal/isa"
)

// Profile parameterizes a synthetic workload. Each of the paper's 106
// application traces is represented by one Profile (see suites.go) whose
// parameters encode the workload dimensions the evaluation is sensitive
// to: instruction mix, value-width behaviour, memory footprint and
// locality, branch predictability, and instruction-level parallelism.
type Profile struct {
	// Name and Group identify the workload ("mcf", SPECint2000, ...).
	Name  string
	Group Group
	// Seed makes the stream deterministic.
	Seed int64

	// Instruction mix (fractions of the dynamic stream; the remainder
	// is plain ALU work).
	FracLoad   float64
	FracStore  float64
	FracBranch float64
	FracJump   float64
	FracShift  float64
	FracMulDiv float64
	FracFPAdd  float64
	FracFPMul  float64
	FracFPDiv  float64

	// LowWidthStaticFrac is the fraction of static integer producers
	// biased toward low-width (≤16-bit) results. Biased producers emit
	// low-width values 99.5% of the time; unbiased ones 2%.
	LowWidthStaticFrac float64

	// Load value composition (fractions of 64-bit load results):
	// PtrLoadFrac return pointers into the same region (PVAddr case),
	// NegValFrac return small negatives (PVOnes case); the remaining
	// loads follow the producer width model.
	PtrLoadFrac float64
	NegValFrac  float64

	// Memory behaviour. WorkingSet is the data footprint in bytes;
	// HotFrac is the probability an access falls in the hot subset
	// (≤16KB) of the working set; StackFrac is the fraction of memory
	// operations addressing the stack region.
	WorkingSet uint64
	HotFrac    float64
	StackFrac  float64

	// HardBranchFrac is the fraction of static branches with
	// history-independent ~50/50 outcomes (mispredict-prone); the rest
	// are ~95% biased.
	HardBranchFrac float64

	// FarTargetFrac is the fraction of static jumps whose target lies
	// in a different upper-48-bit region than the branch PC (forcing
	// BTB full-target reads).
	FarTargetFrac float64

	// DepDistMean is the mean register dependency distance in
	// instructions (higher = more ILP).
	DepDistMean float64

	// StaticInsts is the static code size in instructions (power of
	// two not required); controls I-cache and predictor pressure.
	StaticInsts int
}

// Group is a benchmark suite grouping, mirroring the paper's Figure 8
// benchmark classes.
type Group uint8

// The seven workload groups of the paper's evaluation.
const (
	GroupSPECint Group = iota
	GroupSPECfp
	GroupMediaBench
	GroupMiBench
	GroupPointer
	GroupGraphics
	GroupBio
	NumGroups
)

// String names the group as the paper's figures do.
func (g Group) String() string {
	switch g {
	case GroupSPECint:
		return "SPECint2000"
	case GroupSPECfp:
		return "SPECfp2000"
	case GroupMediaBench:
		return "MediaBench"
	case GroupMiBench:
		return "MiBench"
	case GroupPointer:
		return "Pointer"
	case GroupGraphics:
		return "Graphics"
	case GroupBio:
		return "Bio"
	}
	return fmt.Sprintf("group(%d)", uint8(g))
}

// Validate checks profile parameters for consistency.
func (p *Profile) Validate() error {
	mix := p.FracLoad + p.FracStore + p.FracBranch + p.FracJump +
		p.FracShift + p.FracMulDiv + p.FracFPAdd + p.FracFPMul + p.FracFPDiv
	if mix > 1.0+1e-9 {
		return fmt.Errorf("trace: %s: instruction mix sums to %.3f > 1", p.Name, mix)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"LowWidthStaticFrac", p.LowWidthStaticFrac},
		{"PtrLoadFrac", p.PtrLoadFrac},
		{"NegValFrac", p.NegValFrac},
		{"HotFrac", p.HotFrac},
		{"StackFrac", p.StackFrac},
		{"HardBranchFrac", p.HardBranchFrac},
		{"FarTargetFrac", p.FarTargetFrac},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("trace: %s: %s = %g outside [0,1]", p.Name, f.name, f.v)
		}
	}
	if p.WorkingSet < 4096 {
		return fmt.Errorf("trace: %s: working set %d too small", p.Name, p.WorkingSet)
	}
	if p.StaticInsts < 16 {
		return fmt.Errorf("trace: %s: static program too small (%d)", p.Name, p.StaticInsts)
	}
	if p.DepDistMean < 1 {
		return fmt.Errorf("trace: %s: DepDistMean %g < 1", p.Name, p.DepDistMean)
	}
	return nil
}

// Address space layout for synthetic streams. The bases have non-zero
// upper-48 bits, like real user-space addresses, so PAM and the BTB
// target memoization see realistic behaviour.
const (
	codeBase  = 0x0000_0040_0000
	farBase   = 0x0000_7000_0000_0000 // far call targets (different upper 48)
	heapBase  = 0x0000_2000_0000_0000
	stackBase = 0x0000_7fff_f000_0000
	hotSetMax = 16 << 10
)

type staticKind uint8

const (
	kindALU staticKind = iota
	kindShift
	kindMulDiv
	kindLoad
	kindStore
	kindBranch
	kindJump
	kindFPAdd
	kindFPMul
	kindFPDiv
)

// staticInst is one instruction of the synthesized static program.
type staticInst struct {
	kind    staticKind
	lowBias bool // integer producer biased toward low-width results

	// Memory behaviour (loads/stores).
	stack   bool
	ptrLoad bool
	negLoad bool
	stride  uint64 // 0 = random within working set, else strided
	cursor  uint64 // per-static-instruction stride cursor
	// Strided accessors stream through a bounded buffer (streamBase,
	// streamLen) inside the working set, wrapping — a media kernel
	// re-traversing its frame buffer — rather than crawling the whole
	// working set, which would manufacture compulsory misses forever.
	streamBase uint64
	streamLen  uint64

	// Branch behaviour.
	takenProb float64
	targetIdx int  // static index of the taken target
	far       bool // jump to a far (different upper-48) region
	backward  bool
	// tripsLeft is the loop-iteration state of a backward branch: a
	// fresh entry draws a trip count (geometric in takenProb); the
	// branch is then taken until the count drains, and falls through
	// exactly once — real loop behaviour, which keeps the program walk
	// drifting forward instead of sinking toward index 0.
	tripsLeft int
}

// Generator emits a deterministic synthetic dynamic instruction stream
// for a Profile. It implements Source.
type Generator struct {
	prof Profile
	rng  *rand.Rand
	code []staticInst

	idx int // current static instruction index
	// Call/return state: jumps model calls; after a callee runs for a
	// few instructions, control returns to the call's fall-through.
	retStack   []int
	calleeLeft int

	destRR  int // round-robin destination register allocator
	recent  []producer
	regVal  [64]uint64
	emitted uint64
}

// producer records a recently written register and the width class of
// the value it holds, so consumers can exhibit the width locality real
// dataflow has (low-width pipelines feed low-width consumers).
type producer struct {
	reg int16
	low bool
}

// NewGenerator builds the static program for prof and returns a stream
// generator. It panics if the profile fails validation (profiles are
// authored in suites.go; a bad one is a programming error).
func NewGenerator(prof Profile) *Generator {
	if err := prof.Validate(); err != nil {
		panic(err)
	}
	g := &Generator{
		prof:   prof,
		rng:    rand.New(rand.NewSource(prof.Seed)),
		recent: make([]producer, 0, 64),
	}
	g.synthesize()
	return g
}

// Profile returns the generator's workload profile.
func (g *Generator) Profile() Profile { return g.prof }

// synthesize builds the static program: a linear code layout where every
// basic block ends in a branch whose taken target is usually backward
// (forming loops) and occasionally forward.
func (g *Generator) synthesize() {
	p := &g.prof
	n := p.StaticInsts
	g.code = make([]staticInst, n)

	// First decide which slots are control-flow, spreading them evenly
	// at the configured density.
	ctrlEvery := 1.0 / (p.FracBranch + p.FracJump + 1e-12)
	if ctrlEvery > float64(n) {
		ctrlEvery = float64(n)
	}
	lastBack := -1 // slot of the most recent loop back edge
	for i := range g.code {
		si := &g.code[i]
		isCtrlSlot := ctrlEvery <= 1 || (i > 0 && i%int(ctrlEvery+0.5) == int(ctrlEvery+0.5)-1)
		if isCtrlSlot && i != n-1 {
			jumpShare := p.FracJump / (p.FracBranch + p.FracJump + 1e-12)
			if g.rng.Float64() < jumpShare {
				si.kind = kindJump
				si.takenProb = 1
				si.far = g.rng.Float64() < p.FarTargetFrac
				si.targetIdx = g.rng.Intn(n)
			} else {
				si.kind = kindBranch
				// Loop bodies are kept >= minBody instructions so the
				// dynamic instruction mix inside hot loops matches the
				// static mix (tiny loops would skew it), and loops are
				// disjoint (a back edge never reaches behind the
				// previous back edge) so trip counts cannot compound
				// multiplicatively through accidental nesting.
				const minBody, maxBody = 12, 56
				makeLoop := false
				loopLo, loopHi := 0, 0
				if r := g.rng.Float64(); r >= p.HardBranchFrac &&
					r < p.HardBranchFrac+(1-p.HardBranchFrac)*0.5 {
					loopLo = max(i-maxBody, lastBack+1)
					loopHi = i - minBody
					makeLoop = loopHi >= loopLo
				}
				switch {
				case makeLoop:
					// Loop back edge: iterates per a geometric trip
					// count (mean takenProb/(1-takenProb)), then exits.
					si.takenProb = 0.88 + 0.07*g.rng.Float64()
					si.backward = true
					si.targetIdx = loopLo + g.rng.Intn(loopHi-loopLo+1)
					si.tripsLeft = -1
					lastBack = i
				case g.rng.Float64() < p.HardBranchFrac*2:
					// Hard data-dependent branch: ~50/50, forward so it
					// cannot trap the walk.
					si.takenProb = 0.35 + 0.3*g.rng.Float64()
					si.targetIdx = min(i+minBody+g.rng.Intn(maxBody-minBody+1), n-1)
				default:
					// Guard branch, rarely taken, forward.
					si.takenProb = 0.02 + 0.05*g.rng.Float64()
					si.targetIdx = min(i+minBody+g.rng.Intn(maxBody-minBody+1), n-1)
				}
			}
			continue
		}
		// Non-control slot: draw the kind from the remaining mix.
		rem := 1 - p.FracBranch - p.FracJump
		u := g.rng.Float64() * rem
		switch {
		case u < p.FracLoad:
			si.kind = kindLoad
			si.ptrLoad = g.rng.Float64() < p.PtrLoadFrac
			si.negLoad = !si.ptrLoad && g.rng.Float64() < p.NegValFrac
			g.assignMemBehaviour(si)
		case u < p.FracLoad+p.FracStore:
			si.kind = kindStore
			g.assignMemBehaviour(si)
		case u < p.FracLoad+p.FracStore+p.FracShift:
			si.kind = kindShift
		case u < p.FracLoad+p.FracStore+p.FracShift+p.FracMulDiv:
			si.kind = kindMulDiv
		case u < p.FracLoad+p.FracStore+p.FracShift+p.FracMulDiv+p.FracFPAdd:
			si.kind = kindFPAdd
		case u < p.FracLoad+p.FracStore+p.FracShift+p.FracMulDiv+p.FracFPAdd+p.FracFPMul:
			si.kind = kindFPMul
		case u < p.FracLoad+p.FracStore+p.FracShift+p.FracMulDiv+p.FracFPAdd+p.FracFPMul+p.FracFPDiv:
			si.kind = kindFPDiv
		default:
			si.kind = kindALU
		}
		si.lowBias = g.rng.Float64() < p.LowWidthStaticFrac
	}
	// The last instruction wraps the walk back to the start (the
	// outermost loop of the program).
	last := &g.code[n-1]
	last.kind = kindBranch
	last.takenProb = 0.999
	last.targetIdx = 0
}

func (g *Generator) assignMemBehaviour(si *staticInst) {
	p := &g.prof
	si.stack = g.rng.Float64() < p.StackFrac
	// Half of heap accessors are strided (streaming), half random.
	if !si.stack && g.rng.Float64() < 0.5 {
		si.stride = 8 << uint(g.rng.Intn(3)) // 8, 16, or 32 bytes
		si.streamLen = min(p.WorkingSet, 128<<10)
		if p.WorkingSet > si.streamLen {
			si.streamBase = (g.rng.Uint64() % (p.WorkingSet - si.streamLen)) &^ 63
		}
	}
}

// Next implements Source. The stream is unbounded; callers cap it.
func (g *Generator) Next() (Inst, bool) {
	// A pending return from a callee emits an explicit return jump so
	// the dynamic stream stays control-flow consistent (and the return
	// address stack has something to predict).
	if len(g.retStack) > 0 && g.calleeLeft <= 0 {
		ret := g.retStack[len(g.retStack)-1]
		g.retStack = g.retStack[:len(g.retStack)-1]
		g.calleeLeft = 8 + g.rng.Intn(32)
		in := Inst{
			PC: g.pcOf(g.idx), Op: isa.OpJalr, Class: isa.ClassJump,
			Dest: RegNone, Src1: 31, Src2: RegNone,
			Taken: true, Target: g.pcOf(ret),
		}
		g.idx = ret
		g.emitted++
		return in, true
	}
	si := &g.code[g.idx]
	pc := g.pcOf(g.idx)

	in := Inst{PC: pc, Dest: RegNone, Src1: RegNone, Src2: RegNone}
	nextIdx := g.idx + 1

	switch si.kind {
	case kindALU, kindShift, kindMulDiv:
		in.Op, in.Class = opForKind(si.kind)
		in.Result = g.intResult(si)
		low := in.Result>>16 == 0
		in.Src1 = g.pickSource(false, low)
		in.Src2 = g.pickSource(false, low)
		in.Dest = g.pickDest(false)
		g.regVal[in.Dest] = in.Result

	case kindFPAdd, kindFPMul, kindFPDiv:
		in.Op, in.Class = opForKind(si.kind)
		in.Src1 = g.pickSource(true, false)
		in.Src2 = g.pickSource(true, false)
		in.Dest = g.pickDest(true)
		// FP bit patterns are full-width essentially always.
		in.Result = 0x4000_0000_0000_0000 | g.rng.Uint64()>>2
		g.regVal[in.Dest] = in.Result

	case kindLoad:
		in.Op, in.Class = isa.OpLd, isa.ClassLoad
		in.Src1 = g.pickSource(false, false) // address register: full-width pointer
		in.Dest = g.pickDest(false)
		in.MemAddr, in.MemSize = g.memAddr(si), 8
		in.Result = g.loadValue(si, in.MemAddr)
		g.regVal[in.Dest] = in.Result

	case kindStore:
		in.Op, in.Class = isa.OpSt, isa.ClassStore
		in.Src1 = g.pickSource(false, false)      // address register
		in.Src2 = g.pickSource(false, si.lowBias) // data register
		in.MemAddr, in.MemSize = g.memAddr(si), 8
		if in.Src2 != RegNone {
			in.StoreVal = g.regVal[in.Src2]
		}

	case kindBranch:
		in.Op, in.Class = isa.OpBne, isa.ClassBranch
		in.Src1 = g.pickSource(false, true)
		in.Src2 = g.pickSource(false, true)
		var taken bool
		if si.backward {
			// Structured loop: fresh entry draws a trip count, then the
			// branch is taken until the count drains and falls through
			// exactly once.
			if si.tripsLeft < 0 {
				trips := 0
				for g.rng.Float64() < si.takenProb {
					trips++
				}
				si.tripsLeft = trips
			}
			if si.tripsLeft > 0 {
				taken = true
				si.tripsLeft--
			} else {
				taken = false
				si.tripsLeft = -1
			}
		} else {
			taken = g.rng.Float64() < si.takenProb
		}
		in.Taken = taken
		in.Target = g.pcOf(si.targetIdx)
		if taken {
			nextIdx = si.targetIdx
		}

	case kindJump:
		// Jumps model calls: control transfers to the (static) callee
		// and returns to the fall-through after a few instructions.
		in.Op, in.Class = isa.OpJal, isa.ClassJump
		in.Dest = g.pickDest(false)
		in.Taken = true
		in.Target = g.pcOf(si.targetIdx)
		if si.far {
			// A far callee (shared library, distant text): the target
			// address lies in a different upper-48-bit region, forcing
			// a BTB full-target read under 3D target memoization.
			in.Target = farBase | in.Target
		}
		in.Result = pc + 4
		g.regVal[in.Dest] = in.Result
		if len(g.retStack) < 16 {
			g.retStack = append(g.retStack, g.idx+1)
		}
		g.calleeLeft = 8 + g.rng.Intn(32)
		nextIdx = si.targetIdx
	}

	// Tick down the current callee's remaining length; the return
	// itself is emitted by the next Next call.
	if si.kind != kindJump && len(g.retStack) > 0 {
		g.calleeLeft--
	}

	g.idx = nextIdx % len(g.code)
	g.emitted++
	if in.Dest != RegNone {
		low := in.Dest < FPBase && in.Result>>16 == 0
		g.noteDest(in.Dest, low)
	}
	return in, true
}

func (g *Generator) pcOf(idx int) uint64 { return codeBase + uint64(4*idx) }

func opForKind(k staticKind) (isa.Opcode, isa.Class) {
	switch k {
	case kindALU:
		return isa.OpAdd, isa.ClassALU
	case kindShift:
		return isa.OpSll, isa.ClassShift
	case kindMulDiv:
		return isa.OpMul, isa.ClassMulDiv
	case kindFPAdd:
		return isa.OpFAdd, isa.ClassFPAdd
	case kindFPMul:
		return isa.OpFMul, isa.ClassFPMul
	case kindFPDiv:
		return isa.OpFDiv, isa.ClassFPDiv
	}
	return isa.OpNop, isa.ClassNop
}

// pickDest allocates destination registers round-robin, avoiding r0.
func (g *Generator) pickDest(fp bool) int16 {
	g.destRR = (g.destRR + 1) % 30
	d := int16(g.destRR + 1)
	if fp {
		d += FPBase
	}
	return d
}

// pickSource draws a source register at a geometric dependency distance
// over recent producers, modelling the profile's ILP. preferLow biases
// the choice toward producers whose value matches the consumer's width
// class: real code exhibits strong width locality (a 16-bit media
// pipeline consumes 16-bit values), which is precisely what makes the
// paper's per-PC width prediction accurate.
func (g *Generator) pickSource(fp, preferLow bool) int16 {
	if len(g.recent) == 0 {
		if fp {
			return FPBase + 1
		}
		return 1
	}
	// Geometric distance with mean DepDistMean.
	dist := 0
	pCont := 1 - 1/g.prof.DepDistMean
	for dist < len(g.recent)-1 && g.rng.Float64() < pCont {
		dist++
	}
	r := g.recent[len(g.recent)-1-dist]
	if !fp && r.low != preferLow && g.rng.Float64() < 0.98 {
		// Width-locality: scan outward for a producer of the matching
		// width class.
		for i := len(g.recent) - 1; i >= 0; i-- {
			cand := g.recent[i]
			if cand.reg < FPBase && cand.low == preferLow {
				r = cand
				break
			}
		}
	}
	if fp != (r.reg >= FPBase) {
		// Wrong file: fall back to a fixed register of the right kind.
		if fp {
			return FPBase + 1
		}
		return 1
	}
	return r.reg
}

func (g *Generator) noteDest(d int16, low bool) {
	g.recent = append(g.recent, producer{reg: d, low: low})
	if len(g.recent) > 64 {
		g.recent = g.recent[1:]
	}
}

// intResult draws a result value honouring the static instruction's
// width bias.
func (g *Generator) intResult(si *staticInst) uint64 {
	low := false
	if si.lowBias {
		low = g.rng.Float64() < 0.995
	} else {
		low = g.rng.Float64() < 0.02
	}
	if low {
		return g.rng.Uint64() & 0xffff
	}
	// Full-width: random magnitude between 17 and 64 significant bits.
	bits := 17 + g.rng.Intn(48)
	return g.rng.Uint64()>>(64-uint(bits)) | 1<<uint(bits-1)
}

// loadValue draws a loaded value per the profile's composition, with the
// PVAddr pointer case tied to the load address's region.
func (g *Generator) loadValue(si *staticInst, addr uint64) uint64 {
	switch {
	case si.ptrLoad:
		// A pointer to a nearby object: same upper 48 bits.
		return (addr &^ 0xffff) | (g.rng.Uint64() & 0xffff)
	case si.negLoad:
		return ^(g.rng.Uint64() & 0x7fff) // small negative
	default:
		return g.intResult(si)
	}
}

// memAddr produces the effective address for a memory static instruction.
func (g *Generator) memAddr(si *staticInst) uint64 {
	if si.stack {
		// Stack frame accesses: a small window below the stack base.
		return stackBase - uint64(8*(1+g.rng.Intn(64)))
	}
	ws := g.prof.WorkingSet
	if si.stride != 0 {
		si.cursor = (si.cursor + si.stride) % si.streamLen
		return heapBase + si.streamBase + si.cursor&^7
	}
	hot := ws
	if hot > hotSetMax {
		hot = hotSetMax
	}
	if g.rng.Float64() < g.prof.HotFrac {
		return heapBase + (g.rng.Uint64()%hot)&^7
	}
	return heapBase + (g.rng.Uint64()%ws)&^7
}

// Emitted returns the number of instructions generated so far.
func (g *Generator) Emitted() uint64 { return g.emitted }
