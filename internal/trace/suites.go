package trace

import (
	"fmt"
	"hash/fnv"
)

// This file defines the 106 named workload profiles standing in for the
// paper's trace collection: "all benchmarks from SpecInt2000 and
// SpecFP2000 with the reference inputs, and a variety of programs from
// MediaBench, the Michigan embedded benchmarks [MiBench], the Wisconsin
// pointer-intensive benchmarks, assorted graphics programs ... and the
// BioBench and BioPerf bioinformatics benchmark suites."
//
// Group-level parameter defaults encode each suite's well-known
// character; per-benchmark overrides encode the individuals the paper
// calls out (mcf's memory-boundedness, crafty's compute intensity,
// patricia's small footprint, mpeg2's high activity, yacr2's memory
// intensity, susan's computation intensity).

func seedFor(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64() & 0x7fff_ffff_ffff_ffff)
}

func baseProfile(g Group) Profile {
	p := Profile{
		Group:       g,
		StaticInsts: 12288,
		DepDistMean: 2.5,
	}
	switch g {
	case GroupSPECint:
		p.FracLoad, p.FracStore = 0.24, 0.12
		p.FracBranch, p.FracJump = 0.13, 0.02
		p.FracShift, p.FracMulDiv = 0.06, 0.02
		p.LowWidthStaticFrac = 0.75
		p.PtrLoadFrac, p.NegValFrac = 0.10, 0.05
		p.WorkingSet, p.HotFrac, p.StackFrac = 1<<20, 0.92, 0.30
		p.HardBranchFrac, p.FarTargetFrac = 0.08, 0.05
	case GroupSPECfp:
		p.FracLoad, p.FracStore = 0.28, 0.12
		p.FracBranch, p.FracJump = 0.05, 0.01
		p.FracShift, p.FracMulDiv = 0.03, 0.01
		p.FracFPAdd, p.FracFPMul, p.FracFPDiv = 0.17, 0.13, 0.02
		p.LowWidthStaticFrac = 0.55
		p.PtrLoadFrac, p.NegValFrac = 0.04, 0.03
		p.WorkingSet, p.HotFrac, p.StackFrac = 16<<20, 0.80, 0.08
		p.HardBranchFrac, p.FarTargetFrac = 0.02, 0.02
		p.DepDistMean = 4.5
		p.StaticInsts = 8192
	case GroupMediaBench:
		p.FracLoad, p.FracStore = 0.22, 0.10
		p.FracBranch, p.FracJump = 0.10, 0.02
		p.FracShift, p.FracMulDiv = 0.10, 0.05
		p.FracFPAdd, p.FracFPMul = 0.02, 0.02
		p.LowWidthStaticFrac = 0.86
		p.PtrLoadFrac, p.NegValFrac = 0.05, 0.08
		p.WorkingSet, p.HotFrac, p.StackFrac = 256<<10, 0.95, 0.20
		p.HardBranchFrac, p.FarTargetFrac = 0.05, 0.04
		p.DepDistMean = 3.0
		p.StaticInsts = 6144
	case GroupMiBench:
		p.FracLoad, p.FracStore = 0.23, 0.11
		p.FracBranch, p.FracJump = 0.13, 0.02
		p.FracShift, p.FracMulDiv = 0.08, 0.03
		p.LowWidthStaticFrac = 0.85
		p.PtrLoadFrac, p.NegValFrac = 0.06, 0.06
		p.WorkingSet, p.HotFrac, p.StackFrac = 128<<10, 0.96, 0.25
		p.HardBranchFrac, p.FarTargetFrac = 0.06, 0.04
		p.StaticInsts = 4096
	case GroupPointer:
		p.FracLoad, p.FracStore = 0.30, 0.12
		p.FracBranch, p.FracJump = 0.13, 0.03
		p.FracShift, p.FracMulDiv = 0.04, 0.01
		p.LowWidthStaticFrac = 0.60
		p.PtrLoadFrac, p.NegValFrac = 0.35, 0.04
		p.WorkingSet, p.HotFrac, p.StackFrac = 1<<20, 0.90, 0.15
		p.HardBranchFrac, p.FarTargetFrac = 0.10, 0.06
		p.StaticInsts = 6144
	case GroupGraphics:
		p.FracLoad, p.FracStore = 0.24, 0.11
		p.FracBranch, p.FracJump = 0.10, 0.02
		p.FracShift, p.FracMulDiv = 0.06, 0.03
		p.FracFPAdd, p.FracFPMul, p.FracFPDiv = 0.07, 0.07, 0.01
		p.LowWidthStaticFrac = 0.72
		p.PtrLoadFrac, p.NegValFrac = 0.08, 0.05
		p.WorkingSet, p.HotFrac, p.StackFrac = 1<<20, 0.92, 0.18
		p.HardBranchFrac, p.FarTargetFrac = 0.07, 0.05
		p.StaticInsts = 10240
	case GroupBio:
		p.FracLoad, p.FracStore = 0.26, 0.09
		p.FracBranch, p.FracJump = 0.12, 0.02
		p.FracShift, p.FracMulDiv = 0.07, 0.02
		p.LowWidthStaticFrac = 0.90
		p.PtrLoadFrac, p.NegValFrac = 0.05, 0.03
		p.WorkingSet, p.HotFrac, p.StackFrac = 2<<20, 0.90, 0.12
		p.HardBranchFrac, p.FarTargetFrac = 0.06, 0.03
		p.StaticInsts = 8192
	}
	return p
}

// tweak mutates a copy of a base profile.
type tweak func(*Profile)

func mk(name string, g Group, tweaks ...tweak) Profile {
	p := baseProfile(g)
	p.Name = name
	p.Seed = seedFor(name)
	for _, t := range tweaks {
		t(&p)
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

func ws(bytes uint64) tweak  { return func(p *Profile) { p.WorkingSet = bytes } }
func hot(f float64) tweak    { return func(p *Profile) { p.HotFrac = f } }
func lowW(f float64) tweak   { return func(p *Profile) { p.LowWidthStaticFrac = f } }
func ptr(f float64) tweak    { return func(p *Profile) { p.PtrLoadFrac = f } }
func hard(f float64) tweak   { return func(p *Profile) { p.HardBranchFrac = f } }
func dep(f float64) tweak    { return func(p *Profile) { p.DepDistMean = f } }
func branch(f float64) tweak { return func(p *Profile) { p.FracBranch = f } }
func loads(f float64) tweak  { return func(p *Profile) { p.FracLoad = f } }

// Suite returns all 106 workload profiles.
func Suite() []Profile {
	var s []Profile

	// SPECint2000: 12 benchmarks.
	s = append(s,
		mk("gzip", GroupSPECint, ws(1<<20), lowW(0.82)),
		mk("vpr", GroupSPECint, ws(1<<20), hard(0.10)),
		mk("gcc", GroupSPECint, ws(2<<20), hot(0.93), hard(0.09), branch(0.15)),
		// mcf: the paper's minimum-speedup benchmark — dominated by
		// DRAM latency (huge, poorly cached working set).
		mk("mcf", GroupSPECint, ws(160<<20), hot(0.25), loads(0.32), ptr(0.30), dep(1.8)),
		// crafty: compute-bound with a cache-resident footprint; one of
		// the paper's largest speedups.
		mk("crafty", GroupSPECint, ws(256<<10), hot(0.97), lowW(0.78), branch(0.15)),
		mk("parser", GroupSPECint, ws(1<<20), hot(0.92), ptr(0.18), hard(0.09)),
		mk("eon", GroupSPECint, ws(1<<20), hot(0.95), dep(3.0)),
		mk("perlbmk", GroupSPECint, ws(1<<20), branch(0.15), hard(0.08)),
		mk("gap", GroupSPECint, ws(2<<20), hot(0.90)),
		mk("vortex", GroupSPECint, ws(1<<20), ptr(0.16)),
		mk("bzip2", GroupSPECint, ws(1<<20), lowW(0.84), hot(0.93)),
		mk("twolf", GroupSPECint, ws(1<<20), hot(0.93), hard(0.09)),
	)

	// SPECfp2000: 14 benchmarks, generally memory-bound FP.
	s = append(s,
		mk("wupwise", GroupSPECfp, ws(8<<20), hot(0.88)),
		mk("swim", GroupSPECfp, ws(48<<20), hot(0.58)),
		mk("mgrid", GroupSPECfp, ws(16<<20), hot(0.76)),
		mk("applu", GroupSPECfp, ws(40<<20), hot(0.62)),
		mk("mesa", GroupSPECfp, ws(1<<20), hot(0.92), lowW(0.68)),
		mk("galgel", GroupSPECfp, ws(8<<20), hot(0.88)),
		mk("art", GroupSPECfp, ws(32<<20), hot(0.55), loads(0.32)),
		mk("equake", GroupSPECfp, ws(16<<20), hot(0.80)),
		mk("facerec", GroupSPECfp, ws(8<<20), hot(0.88)),
		mk("ammp", GroupSPECfp, ws(8<<20), hot(0.85), ptr(0.10)),
		mk("lucas", GroupSPECfp, ws(32<<20), hot(0.62)),
		mk("fma3d", GroupSPECfp, ws(12<<20), hot(0.84)),
		mk("sixtrack", GroupSPECfp, ws(2<<20), hot(0.90)),
		mk("apsi", GroupSPECfp, ws(8<<20), hot(0.86)),
	)

	// MediaBench: 14 kernels.
	s = append(s,
		// mpeg2enc: the paper's peak-power application — high activity,
		// compute-bound 16-bit media arithmetic.
		mk("mpeg2enc", GroupMediaBench, ws(512<<10), hot(0.95), lowW(0.90), dep(3.5)),
		mk("mpeg2dec", GroupMediaBench, ws(512<<10), lowW(0.90)),
		mk("jpegenc", GroupMediaBench, ws(256<<10), lowW(0.88)),
		mk("jpegdec", GroupMediaBench, ws(256<<10), lowW(0.88)),
		mk("epic", GroupMediaBench, ws(256<<10)),
		mk("unepic", GroupMediaBench, ws(256<<10)),
		mk("gsmenc", GroupMediaBench, ws(128<<10), lowW(0.92)),
		mk("gsmdec", GroupMediaBench, ws(128<<10), lowW(0.92)),
		mk("g721enc", GroupMediaBench, ws(64<<10), lowW(0.93)),
		mk("g721dec", GroupMediaBench, ws(64<<10), lowW(0.93)),
		mk("pegwitenc", GroupMediaBench, ws(256<<10), lowW(0.60)),
		mk("pegwitdec", GroupMediaBench, ws(256<<10), lowW(0.60)),
		mk("adpcmenc", GroupMediaBench, ws(64<<10), lowW(0.95)),
		mk("adpcmdec", GroupMediaBench, ws(64<<10), lowW(0.95)),
	)

	// MiBench: 20 benchmarks.
	s = append(s,
		// susan (smoothing): the paper's maximum power saving —
		// computation-intensive image processing.
		mk("susan_s", GroupMiBench, ws(256<<10), hot(0.97), lowW(0.92), dep(3.5)),
		mk("susan_e", GroupMiBench, ws(256<<10), lowW(0.90)),
		mk("susan_c", GroupMiBench, ws(256<<10), lowW(0.90)),
		// patricia: the paper's maximum speedup (77%).
		mk("patricia", GroupMiBench, ws(128<<10), hot(0.97), branch(0.16), lowW(0.88), dep(2.2)),
		mk("dijkstra", GroupMiBench, ws(256<<10), hot(0.95)),
		mk("qsort", GroupMiBench, ws(256<<10), hard(0.12)),
		mk("bitcount", GroupMiBench, ws(64<<10), lowW(0.95)),
		mk("basicmath", GroupMiBench, ws(64<<10)),
		mk("stringsearch", GroupMiBench, ws(128<<10), lowW(0.93)),
		mk("sha", GroupMiBench, ws(64<<10), lowW(0.55)),
		mk("crc32", GroupMiBench, ws(64<<10), lowW(0.50)),
		mk("fft", GroupMiBench, ws(256<<10)),
		mk("ifft", GroupMiBench, ws(256<<10)),
		mk("blowfish_e", GroupMiBench, ws(128<<10), lowW(0.55)),
		mk("blowfish_d", GroupMiBench, ws(128<<10), lowW(0.55)),
		mk("rijndael_e", GroupMiBench, ws(128<<10), lowW(0.55)),
		mk("rijndael_d", GroupMiBench, ws(128<<10), lowW(0.55)),
		mk("jpeg_mi", GroupMiBench, ws(256<<10), lowW(0.88)),
		mk("lame", GroupMiBench, ws(512<<10)),
		mk("gsm_mi", GroupMiBench, ws(128<<10), lowW(0.92)),
	)

	// Wisconsin pointer-intensive (+ Olden-style): 10 benchmarks.
	s = append(s,
		mk("anagram", GroupPointer, ws(1<<20)),
		mk("bc", GroupPointer, ws(1<<20), hot(0.85)),
		mk("ft", GroupPointer, ws(2<<20)),
		mk("ks", GroupPointer, ws(1<<20)),
		// yacr2: the paper's minimum power saving and the TH worst-case
		// thermal application — memory-intensive, D-cache hammering.
		mk("yacr2", GroupPointer, ws(48<<20), hot(0.45), loads(0.36), dep(2.0)),
		mk("tsp", GroupPointer, ws(2<<20)),
		mk("treeadd", GroupPointer, ws(2<<20), ptr(0.45)),
		mk("mst", GroupPointer, ws(2<<20), ptr(0.40)),
		mk("perimeter", GroupPointer, ws(2<<20), ptr(0.45)),
		mk("health", GroupPointer, ws(2<<20), ptr(0.40), hot(0.85)),
	)

	// Graphics (SimpleScalar-website assortment): 12 programs.
	s = append(s,
		mk("doom", GroupGraphics, ws(1<<20), lowW(0.80)),
		mk("quake", GroupGraphics, ws(2<<20)),
		mk("glquake", GroupGraphics, ws(2<<20)),
		mk("raytrace", GroupGraphics, ws(2<<20), dep(3.5)),
		mk("povray", GroupGraphics, ws(1<<20), dep(3.5)),
		mk("mpegplay", GroupGraphics, ws(512<<10), lowW(0.85)),
		mk("aviplay", GroupGraphics, ws(512<<10), lowW(0.85)),
		mk("gears", GroupGraphics, ws(1<<20), hot(0.92)),
		mk("osdemo", GroupGraphics, ws(2<<20)),
		mk("texgen", GroupGraphics, ws(1<<20)),
		mk("anim", GroupGraphics, ws(2<<20)),
		mk("morph3d", GroupGraphics, ws(2<<20)),
	)

	// BioBench + BioPerf: 24 benchmarks.
	s = append(s,
		mk("blastn", GroupBio, ws(4<<20), hot(0.92)),
		mk("blastp", GroupBio, ws(4<<20), hot(0.92)),
		mk("clustalw", GroupBio, ws(2<<20), hot(0.90)),
		mk("hmmer", GroupBio, ws(2<<20), lowW(0.88)),
		mk("hmmpfam", GroupBio, ws(2<<20), lowW(0.88)),
		mk("fasta_dna", GroupBio, ws(2<<20)),
		mk("fasta_prot", GroupBio, ws(2<<20)),
		mk("mummer", GroupBio, ws(8<<20), hot(0.90), ptr(0.20)),
		mk("tigr", GroupBio, ws(4<<20), hot(0.90)),
		mk("phylip", GroupBio, ws(1<<20), hot(0.92)),
		mk("grappa", GroupBio, ws(2<<20)),
		mk("ce", GroupBio, ws(2<<20)),
		mk("glimmer", GroupBio, ws(2<<20), ptr(0.15)),
		mk("predator", GroupBio, ws(2<<20)),
		mk("tcoffee", GroupBio, ws(2<<20)),
		mk("dnapenny", GroupBio, ws(1<<20), hot(0.94)),
		mk("promlk", GroupBio, ws(2<<20)),
		mk("seqgen", GroupBio, ws(1<<20)),
		mk("clustalw_smp", GroupBio, ws(2<<20), hot(0.90)),
		mk("blat", GroupBio, ws(4<<20), hot(0.90)),
		mk("sim4", GroupBio, ws(2<<20)),
		mk("spsearch", GroupBio, ws(2<<20)),
		mk("ssearch", GroupBio, ws(2<<20), lowW(0.92)),
		mk("wise2", GroupBio, ws(2<<20)),
	)

	return s
}

// SuiteSize is the expected number of workloads, matching the paper's
// "collection of 106 application traces".
const SuiteSize = 106

// Names returns every suite workload name in suite order.
func Names() []string {
	suite := Suite()
	names := make([]string, len(suite))
	for i, p := range suite {
		names[i] = p.Name
	}
	return names
}

// ProfileByName finds a workload profile by benchmark name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Suite() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("trace: unknown benchmark %q", name)
}

// GroupProfiles returns the profiles belonging to group g.
func GroupProfiles(g Group) []Profile {
	var out []Profile
	for _, p := range Suite() {
		if p.Group == g {
			out = append(out, p)
		}
	}
	return out
}

// Groups returns all benchmark groups in figure order.
func Groups() []Group {
	gs := make([]Group, NumGroups)
	for i := range gs {
		gs[i] = Group(i)
	}
	return gs
}
