package trace_test

import (
	"fmt"

	"thermalherd/internal/trace"
)

// Generate the first instructions of a named workload; streams are
// deterministic per profile seed.
func ExampleNewGenerator() {
	prof, err := trace.ProfileByName("mcf")
	if err != nil {
		fmt.Println(err)
		return
	}
	g := trace.NewGenerator(prof)
	insts := trace.Collect(g, 100000)
	var mem int
	for i := range insts {
		if insts[i].IsMem() {
			mem++
		}
	}
	fmt.Println("instructions:", len(insts))
	fmt.Println("memory-heavy:", float64(mem)/float64(len(insts)) > 0.3)
	// Output:
	// instructions: 100000
	// memory-heavy: true
}
