package trace

import (
	"bytes"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	p, err := ProfileByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	orig := Collect(NewGenerator(p), 5000)

	var buf bytes.Buffer
	n, err := Write(&buf, NewSliceSource(orig), 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(orig) {
		t.Fatalf("wrote %d records, want %d", n, len(orig))
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed := Collect(r, len(orig)+10)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if len(replayed) != len(orig) {
		t.Fatalf("replayed %d records, want %d", len(replayed), len(orig))
	}
	for i := range orig {
		if replayed[i] != orig[i] {
			t.Fatalf("record %d differs:\n  orig %+v\n  got  %+v", i, orig[i], replayed[i])
		}
	}
	if r.Count() != len(orig) {
		t.Errorf("Count = %d, want %d", r.Count(), len(orig))
	}
}

func TestTraceWriteCap(t *testing.T) {
	p, _ := ProfileByName("gzip")
	var buf bytes.Buffer
	n, err := Write(&buf, NewGenerator(p), 123)
	if err != nil || n != 123 {
		t.Fatalf("Write capped = (%d, %v), want (123, nil)", n, err)
	}
}

func TestTraceReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a trace file at all"))); err == nil {
		t.Error("garbage header accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestTraceReaderTruncatedRecord(t *testing.T) {
	p, _ := ProfileByName("gzip")
	var buf bytes.Buffer
	if _, err := Write(&buf, NewGenerator(p), 3); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	r, err := NewReader(bytes.NewReader(full[:len(full)-5])) // chop mid-record
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		n++
	}
	if n != 2 {
		t.Errorf("replayed %d complete records, want 2", n)
	}
	if r.Err() == nil {
		t.Error("truncated record not reported as an error")
	}
}

func TestNegativeRegFieldsSurvive(t *testing.T) {
	// RegNone (-1) must round-trip through the uint16 encoding.
	in := Inst{PC: 4, Dest: RegNone, Src1: RegNone, Src2: RegNone}
	var buf bytes.Buffer
	if _, err := Write(&buf, NewSliceSource([]Inst{in}), 0); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := r.Next()
	if !ok || got.Dest != RegNone || got.Src1 != RegNone {
		t.Errorf("RegNone did not survive: %+v (ok=%v)", got, ok)
	}
}
