// Package power computes per-unit and total power from the timing
// model's activity counters, the circuit model's per-access energies,
// and the paper's Section 4 assumptions: the baseline 2D processor
// dissipates 35% of its power in the clock network and 20% in leakage;
// the 3D organization halves clock power (footprint quartered,
// conservatively credited as half); 3D and Thermal Herding do not reduce
// leakage.
//
// The output is both a scalar breakdown (Figure 9 totals) and a per-
// floorplan-unit power map feeding the thermal solver (Figure 10).
package power

import (
	"fmt"
	"math"

	"thermalherd/internal/circuit"
	"thermalherd/internal/config"
	"thermalherd/internal/core"
	"thermalherd/internal/cpu"
	"thermalherd/internal/floorplan"
)

// Calibration constants. The paper's reference point: two copies of the
// MediaBench Mpeg2 encoder on the planar two-core processor dissipate
// 90 W total. EnergyScale multiplies the circuit model's per-access
// energies to land the dynamic component of that reference point;
// RefTotal2D anchors the 35%/20% clock/leakage split in watts.
const (
	EnergyScale = 2.88
	RefTotal2D  = 90.0 // W, two cores, mpeg2enc
	ClockFrac   = 0.35
	LeakFrac    = 0.20

	// Clock3DFactor: "we conservatively reduce its power consumption
	// by 1/2 for the 3D processor configurations."
	Clock3DFactor = 0.5
)

// ClockW2D is the planar clock network power at the baseline frequency.
func ClockW2D() float64 { return ClockFrac * RefTotal2D }

// LeakageW is the leakage power, unchanged across all configurations.
func LeakageW() float64 { return LeakFrac * RefTotal2D }

// Breakdown is the computed power of one configuration running one
// workload on both cores.
type Breakdown struct {
	Config   string
	Workload string

	// DynamicW is switching power in the microarchitectural blocks;
	// ClockW the clock network; LeakageW leakage; TotalW their sum.
	DynamicW float64
	ClockW   float64
	LeakageW float64
	TotalW   float64

	// BlockW is dynamic power per block summed over cores and die.
	BlockW [floorplan.NumBlocks]float64
	// UnitW maps every floorplan unit (block × core × die) to its
	// total dissipated power including its share of clock and leakage
	// — the thermal solver's input.
	UnitW map[UnitKey]float64
	// UnitLeakW is the leakage component of UnitW per unit, kept
	// separate so temperature-dependent leakage models can rescale it
	// (see LeakageScaleAt).
	UnitLeakW map[UnitKey]float64
}

// UnitKey identifies a floorplan unit.
type UnitKey struct {
	Block floorplan.BlockID
	Core  int
	Die   int
}

// Compute derives the power breakdown for cfg running the workload whose
// per-core statistics are s on both cores, the paper's two-instance
// setup. ComputeDual supports heterogeneous pairings.
func Compute(cfg config.Machine, s *cpu.Stats, fp *floorplan.Floorplan) (*Breakdown, error) {
	return ComputeDual(cfg, [2]*cpu.Stats{s, s}, fp)
}

// ComputeDual derives the power breakdown for cfg with a (possibly
// different) workload on each core.
func ComputeDual(cfg config.Machine, s [2]*cpu.Stats, fp *floorplan.Floorplan) (*Breakdown, error) {
	for coreIdx := range s {
		if s[coreIdx] == nil || s[coreIdx].Cycles == 0 {
			return nil, fmt.Errorf("power: core %d statistics cover zero cycles", coreIdx)
		}
	}
	if cfg.ThreeD != (fp.NumDies == 4) {
		return nil, fmt.Errorf("power: config %s (3D=%v) mismatched with floorplan %s",
			cfg.Name, cfg.ThreeD, fp.Name)
	}
	b := &Breakdown{
		Config:    cfg.Name,
		UnitW:     make(map[UnitKey]float64),
		UnitLeakW: make(map[UnitKey]float64),
	}

	// Dynamic power per block and core. Watts = (accesses/cycle) ×
	// f[GHz] × E[pJ] / 1000.
	for coreIdx, cs := range s {
		for blk := floorplan.BlockID(0); blk < floorplan.NumBlocks; blk++ {
			e := circuit.EnergyFor(blk)
			if cfg.ThreeD {
				// Per-die word activity: each activated die burns a
				// quarter of the (wire-reduced) 3D access energy.
				perWord := e.PerDieWord3D() * EnergyScale
				for d := 0; d < core.NumDies; d++ {
					wpc := float64(cs.BlockDie[blk].Words[d]) / float64(cs.Cycles)
					w := wpc * cfg.ClockGHz * perWord / 1000
					b.addUnit(blk, coreIdx, d, w)
					b.BlockW[blk] += w
				}
			} else {
				apc := float64(cs.BlockAccesses[blk]) / float64(cs.Cycles)
				w := apc * cfg.ClockGHz * e.PerAccess2D() * EnergyScale / 1000
				b.addUnit(blk, coreIdx, 0, w)
				b.BlockW[blk] += w
			}
		}
	}
	for _, w := range b.BlockW {
		b.DynamicW += w
	}

	// Clock network power scales with frequency; 3D additionally gets
	// the paper's conservative capacitance halving, anchored so the
	// stock 3.93 GHz 3D design dissipates exactly half the planar
	// baseline's clock power.
	switch {
	case cfg.ThreeD:
		b.ClockW = ClockW2D() * Clock3DFactor * cfg.ClockGHz / config.ThreeDClockGHz
	default:
		b.ClockW = ClockW2D() * cfg.ClockGHz / config.BaseClockGHz
	}
	b.LeakageW = LeakageW()
	b.TotalW = b.DynamicW + b.ClockW + b.LeakageW

	b.distributeOverheads(fp)
	return b, nil
}

// addUnit attributes watts to the unit holding the block for one core on
// one die; the shared L2 pools both cores' contributions.
func (b *Breakdown) addUnit(blk floorplan.BlockID, coreIdx, die int, watts float64) {
	if blk == floorplan.BlkL2 {
		b.UnitW[UnitKey{blk, floorplan.SharedCore, die}] += watts
		return
	}
	b.UnitW[UnitKey{blk, coreIdx, die}] += watts
}

// distributeOverheads spreads clock and leakage power over all floorplan
// units proportionally to area (the clock network and subthreshold
// leakage are chip-wide).
func (b *Breakdown) distributeOverheads(fp *floorplan.Floorplan) {
	var totalArea float64
	for _, u := range fp.Units {
		totalArea += u.Area()
	}
	overhead := b.ClockW + b.LeakageW
	for _, u := range fp.Units {
		key := UnitKey{u.Block, u.Core, u.Die}
		b.UnitW[key] += overhead * u.Area() / totalArea
		b.UnitLeakW[key] = b.LeakageW * u.Area() / totalArea
	}
}

// UnitTotal sums the per-unit map (equals TotalW up to rounding).
func (b *Breakdown) UnitTotal() float64 {
	var t float64
	for _, w := range b.UnitW {
		t += w
	}
	return t
}

// Saving returns the fractional total-power saving of b relative to
// base.
func (b *Breakdown) Saving(base *Breakdown) float64 {
	return 1 - b.TotalW/base.TotalW
}

// Temperature-dependent leakage: subthreshold leakage grows roughly
// exponentially with temperature. LeakageRefK is the temperature at
// which the paper's 20% leakage share is taken (a hot 85 C chip);
// LeakageBeta is the per-kelvin exponential coefficient.
const (
	LeakageRefK = 358.0
	LeakageBeta = 0.02
)

// LeakageScaleAt returns the multiplicative leakage factor at tempK
// relative to the reference temperature.
func LeakageScaleAt(tempK float64) float64 {
	return math.Exp(LeakageBeta * (tempK - LeakageRefK))
}

// DensityStudyMap builds the per-unit power map for the paper's
// Section 5.3 power-density experiment: the planar processor's 90 W at
// 2.66 GHz forced into the 3D stack — each block's planar power is
// divided evenly across its four die instances on the quarter footprint,
// quadrupling power density while ignoring 3D's latency and power
// benefits.
func DensityStudyMap(planar *Breakdown, stacked *floorplan.Floorplan) map[UnitKey]float64 {
	out := make(map[UnitKey]float64, len(planar.UnitW)*4)
	for key, w := range planar.UnitW {
		for d := 0; d < stacked.NumDies; d++ {
			out[UnitKey{key.Block, key.Core, d}] += w / float64(stacked.NumDies)
		}
	}
	return out
}
