package power

import (
	"math"
	"testing"

	"thermalherd/internal/config"
	"thermalherd/internal/cpu"
	"thermalherd/internal/floorplan"
	"thermalherd/internal/trace"
)

func simulate(t *testing.T, cfg config.Machine, workload string, insts uint64) *cpu.Stats {
	t.Helper()
	if insts == 0 {
		insts = 200000
	}
	p, err := trace.ProfileByName(workload)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cpu.New(cfg, trace.NewGenerator(p))
	if err != nil {
		t.Fatal(err)
	}
	// Warm caches and predictors deeply enough that steady-state
	// behaviour, not cold-start, is measured (the role of SimPoint
	// warmup in the paper).
	c.Warmup(600000)
	return c.Run(insts)
}

func computeFor(t *testing.T, cfg config.Machine, workload string) *Breakdown {
	t.Helper()
	s := simulate(t, cfg, workload, 0)
	fp := floorplan.Planar()
	if cfg.ThreeD {
		fp = floorplan.Stacked()
	}
	b, err := Compute(cfg, s, fp)
	if err != nil {
		t.Fatal(err)
	}
	b.Workload = workload
	return b
}

func TestBaselineMpeg2NearNinetyWatts(t *testing.T) {
	b := computeFor(t, config.Baseline(), "mpeg2enc")
	if b.TotalW < 78 || b.TotalW > 104 {
		t.Errorf("baseline mpeg2enc total = %.1f W, want ≈ 90 (paper's reference)", b.TotalW)
	}
	// Clock should be ~35% and leakage ~20% of the reference total.
	if math.Abs(b.ClockW-31.5) > 0.01 {
		t.Errorf("clock = %.2f W, want 31.5", b.ClockW)
	}
	if math.Abs(b.LeakageW-18) > 0.01 {
		t.Errorf("leakage = %.2f W, want 18", b.LeakageW)
	}
}

func TestPowerOrderingPlanarVs3D(t *testing.T) {
	base := computeFor(t, config.Baseline(), "mpeg2enc")
	noTH := computeFor(t, config.ThreeDNoTH(), "mpeg2enc")
	th := computeFor(t, config.ThreeD(), "mpeg2enc")
	// The paper's Figure 9 ordering: planar > 3D-noTH > 3D-TH.
	if !(base.TotalW > noTH.TotalW && noTH.TotalW > th.TotalW) {
		t.Errorf("power ordering violated: base=%.1f noTH=%.1f th=%.1f",
			base.TotalW, noTH.TotalW, th.TotalW)
	}
	// 3D without TH saves ~19%, with TH ~29%.
	if s := noTH.Saving(base); s < 0.10 || s > 0.30 {
		t.Errorf("3D-noTH saving = %.3f, want ≈ 0.19", s)
	}
	if s := th.Saving(base); s < 0.20 || s > 0.42 {
		t.Errorf("3D-TH saving = %.3f, want ≈ 0.29", s)
	}
}

func TestTHGatingSavesDynamicPower(t *testing.T) {
	noTH := computeFor(t, config.ThreeDNoTH(), "susan_s")
	th := computeFor(t, config.ThreeD(), "susan_s")
	if th.DynamicW >= noTH.DynamicW {
		t.Errorf("TH dynamic (%.1f W) not below no-TH (%.1f W)", th.DynamicW, noTH.DynamicW)
	}
}

func TestComputeVsMemorySavingsOrdering(t *testing.T) {
	base := config.Baseline()
	th := config.ThreeD()
	saving := func(workload string) float64 {
		b := computeFor(t, base, workload)
		h := computeFor(t, th, workload)
		return h.Saving(b)
	}
	susan := saving("susan_s")
	yacr2 := saving("yacr2")
	// susan (computation-intensive) must save more than yacr2
	// (memory-intensive), per the paper's 30% vs 15% endpoints.
	if susan <= yacr2 {
		t.Errorf("susan saving (%.3f) not above yacr2 (%.3f)", susan, yacr2)
	}
}

func TestUnitMapConsistentWithTotal(t *testing.T) {
	b := computeFor(t, config.Baseline(), "gzip")
	if math.Abs(b.UnitTotal()-b.TotalW) > 1e-6*b.TotalW {
		t.Errorf("unit map total %.4f W != breakdown total %.4f W", b.UnitTotal(), b.TotalW)
	}
	b3 := computeFor(t, config.ThreeD(), "gzip")
	if math.Abs(b3.UnitTotal()-b3.TotalW) > 1e-6*b3.TotalW {
		t.Errorf("3D unit map total %.4f W != %.4f W", b3.UnitTotal(), b3.TotalW)
	}
}

func TestThreeDTopDiePowerShare(t *testing.T) {
	b := computeFor(t, config.ThreeD(), "gzip")
	perDie := [4]float64{}
	for k, w := range b.UnitW {
		perDie[k.Die] += w
	}
	total := perDie[0] + perDie[1] + perDie[2] + perDie[3]
	// Thermal herding must put the plurality of power on the top die.
	if perDie[0] <= perDie[1] || perDie[0] <= perDie[3] {
		t.Errorf("top-die power (%.1f W) not dominant: %v (total %.1f)", perDie[0], perDie, total)
	}
}

func TestFastConfigClockScales(t *testing.T) {
	fast := computeFor(t, config.Fast(), "gzip")
	want := ClockW2D() * config.ThreeDClockGHz / config.BaseClockGHz
	if math.Abs(fast.ClockW-want) > 0.01 {
		t.Errorf("Fast clock power = %.2f W, want %.2f", fast.ClockW, want)
	}
}

func TestComputeRejectsMismatchedFloorplan(t *testing.T) {
	s := simulate(t, config.Baseline(), "gzip", 5000)
	if _, err := Compute(config.Baseline(), s, floorplan.Stacked()); err == nil {
		t.Error("planar config with stacked floorplan accepted")
	}
	cfg3 := config.ThreeD()
	s3 := simulate(t, cfg3, "gzip", 5000)
	if _, err := Compute(cfg3, s3, floorplan.Planar()); err == nil {
		t.Error("3D config with planar floorplan accepted")
	}
}

func TestComputeRejectsEmptyStats(t *testing.T) {
	if _, err := Compute(config.Baseline(), &cpu.Stats{}, floorplan.Planar()); err == nil {
		t.Error("zero-cycle stats accepted")
	}
}

func TestDensityStudyMapPreservesTotal(t *testing.T) {
	b := computeFor(t, config.Baseline(), "mpeg2enc")
	m := DensityStudyMap(b, floorplan.Stacked())
	var total float64
	for _, w := range m {
		total += w
	}
	if math.Abs(total-b.TotalW) > 1e-6*b.TotalW {
		t.Errorf("density map total %.3f W != planar total %.3f W", total, b.TotalW)
	}
	// Every die must carry an equal quarter.
	perDie := [4]float64{}
	for k, w := range m {
		perDie[k.Die] += w
	}
	for d := 1; d < 4; d++ {
		if math.Abs(perDie[d]-perDie[0]) > 1e-9 {
			t.Errorf("density map die %d power %.3f != die 0 %.3f", d, perDie[d], perDie[0])
		}
	}
}

func TestComputeDualHeterogeneous(t *testing.T) {
	hot := simulate(t, config.Baseline(), "susan_s", 60000)
	cold := simulate(t, config.Baseline(), "yacr2", 60000)
	fp := floorplan.Planar()
	mixed, err := ComputeDual(config.Baseline(), [2]*cpu.Stats{hot, cold}, fp)
	if err != nil {
		t.Fatal(err)
	}
	hotHot, err := ComputeDual(config.Baseline(), [2]*cpu.Stats{hot, hot}, fp)
	if err != nil {
		t.Fatal(err)
	}
	coldCold, err := ComputeDual(config.Baseline(), [2]*cpu.Stats{cold, cold}, fp)
	if err != nil {
		t.Fatal(err)
	}
	if !(coldCold.TotalW < mixed.TotalW && mixed.TotalW < hotHot.TotalW) {
		t.Errorf("dual power ordering violated: %.1f / %.1f / %.1f",
			coldCold.TotalW, mixed.TotalW, hotHot.TotalW)
	}
	// The mixed pair must be exactly midway in dynamic power (linear
	// composition of the two cores).
	want := (hotHot.DynamicW + coldCold.DynamicW) / 2
	if diff := mixed.DynamicW - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("mixed dynamic %.4f W != average %.4f W", mixed.DynamicW, want)
	}
	// Per-core attribution: core 0 (hot) must dissipate more than
	// core 1 (cold) in the mixed breakdown.
	var core0, core1 float64
	for k, w := range mixed.UnitW {
		switch k.Core {
		case 0:
			core0 += w
		case 1:
			core1 += w
		}
	}
	if core0 <= core1 {
		t.Errorf("hot core power (%.2f W) not above cold core (%.2f W)", core0, core1)
	}
}

func TestComputeDualRejectsNil(t *testing.T) {
	s := simulate(t, config.Baseline(), "gzip", 5000)
	if _, err := ComputeDual(config.Baseline(), [2]*cpu.Stats{s, nil}, floorplan.Planar()); err == nil {
		t.Error("nil core stats accepted")
	}
}
