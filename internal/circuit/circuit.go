// Package circuit is the analytical delay and energy model standing in
// for the paper's HSpice simulations of 65nm (BPTM) circuits. Each block
// latency splits into a logic component (gate delay, unchanged by 3D)
// and a wire component; 3D stacking shrinks a block's footprint, cutting
// its internal wire lengths, at the cost of a few die-to-die via
// crossings (each below one FO4, per prior 3D work the paper cites).
//
// The model regenerates Table 2 (2D vs 3D block latencies) and derives
// the paper's headline clock result: the wakeup-select and ALU+bypass
// loops bound cycle time, and their 3D latency reduction yields the
// 2.66 GHz → 3.93 GHz (+47.9%) frequency increase.
package circuit

import (
	"fmt"

	"thermalherd/internal/floorplan"
)

// Technology constants (65nm-class, calibrated to the paper's relative
// results rather than to absolute silicon).
const (
	// FO4Ps is one fanout-of-4 inverter delay in picoseconds.
	FO4Ps = 21.0
	// D2DViaPs is one die-to-die via crossing (< 1 FO4; Section 2.1).
	D2DViaPs = 15.0
	// CycleFO4 is the 2D cycle time in FO4s (2.66 GHz ≈ 376 ps ≈ 18 FO4).
	CycleFO4 = 17.9
)

// BlockTiming describes one pipeline block's delay decomposition.
type BlockTiming struct {
	// Name is the Table 2 row label.
	Name string
	// LogicPs is the gate-delay component, unchanged by 3D.
	LogicPs float64
	// WirePs is the 2D wire-delay component.
	WirePs float64
	// WireScale3D is the fraction of the wire component remaining
	// after 3D partitioning (footprint compaction shortens wires).
	WireScale3D float64
	// ViaCrossings is the number of d2d via hops on the 3D critical
	// path.
	ViaCrossings int
	// CriticalLoop marks the blocks the paper bolds: the cycle-time
	// limiting loops (wakeup-select, ALU+bypass).
	CriticalLoop bool
}

// Latency2D returns the planar latency in ps.
func (b BlockTiming) Latency2D() float64 { return b.LogicPs + b.WirePs }

// Latency3D returns the 3D latency in ps.
func (b BlockTiming) Latency3D() float64 {
	return b.LogicPs + b.WirePs*b.WireScale3D + float64(b.ViaCrossings)*D2DViaPs
}

// Improvement returns the fractional 2D→3D latency reduction.
func (b BlockTiming) Improvement() float64 {
	return 1 - b.Latency3D()/b.Latency2D()
}

// cycle2DPs is the planar cycle time.
const cycle2DPs = CycleFO4 * FO4Ps // ≈ 376 ps

// Blocks returns the Table 2 timing rows. The two bold critical loops
// both consume a full 2D cycle; large arrays are wire-dominated and gain
// the most from stacking, consistent with prior 3D cache studies.
func Blocks() []BlockTiming {
	return []BlockTiming{
		// Wakeup-select: tag broadcast bus + selection tree. Stacking
		// RS entries across four die quarters the broadcast bus length.
		{Name: "scheduler (wakeup-select loop)", LogicPs: 170, WirePs: cycle2DPs - 170,
			WireScale3D: 0.345, ViaCrossings: 1, CriticalLoop: true},
		// ALU + bypass: the adder is logic-dominated (only ~3% of the
		// loop's 36% gain comes from it); the bypass wires dominate and
		// quarter in length.
		{Name: "ALU + bypass loop", LogicPs: 158, WirePs: cycle2DPs - 158,
			WireScale3D: 0.305, ViaCrossings: 1, CriticalLoop: true},
		// The 64-bit adder alone: only the final carry wires shrink.
		{Name: "64-bit adder", LogicPs: 160, WirePs: 36, WireScale3D: 0.45, ViaCrossings: 1},
		// Shifter and multiplier are wire-intensive (Section 3.2).
		{Name: "64-bit shifter", LogicPs: 90, WirePs: 180, WireScale3D: 0.33, ViaCrossings: 1},
		{Name: "64-bit multiplier", LogicPs: 420, WirePs: 700, WireScale3D: 0.33, ViaCrossings: 2},
		// The word-partitioned register file (Section 3.1).
		{Name: "register file", LogicPs: 180, WirePs: 270, WireScale3D: 0.32, ViaCrossings: 1},
		// Bypass network alone.
		{Name: "bypass network", LogicPs: 60, WirePs: 260, WireScale3D: 0.27, ViaCrossings: 1},
		// Large arrays: wire-dominated word/bit lines.
		{Name: "L1 I-cache (32KB)", LogicPs: 300, WirePs: 620, WireScale3D: 0.42, ViaCrossings: 2},
		{Name: "L1 D-cache (32KB)", LogicPs: 300, WirePs: 620, WireScale3D: 0.42, ViaCrossings: 2},
		{Name: "L2 cache (4MB)", LogicPs: 700, WirePs: 3800, WireScale3D: 0.45, ViaCrossings: 3},
		{Name: "I-TLB", LogicPs: 120, WirePs: 160, WireScale3D: 0.40, ViaCrossings: 1},
		{Name: "D-TLB", LogicPs: 120, WirePs: 200, WireScale3D: 0.40, ViaCrossings: 1},
		{Name: "BTB", LogicPs: 180, WirePs: 300, WireScale3D: 0.38, ViaCrossings: 1},
		{Name: "branch predictor", LogicPs: 160, WirePs: 240, WireScale3D: 0.42, ViaCrossings: 1},
		{Name: "load/store queues", LogicPs: 170, WirePs: 250, WireScale3D: 0.34, ViaCrossings: 1},
		{Name: "ROB / physical registers", LogicPs: 190, WirePs: 300, WireScale3D: 0.35, ViaCrossings: 1},
	}
}

// BlockByName finds a Table 2 row.
func BlockByName(name string) (BlockTiming, error) {
	for _, b := range Blocks() {
		if b.Name == name {
			return b, nil
		}
	}
	return BlockTiming{}, fmt.Errorf("circuit: unknown block %q", name)
}

// ClockGHz2D returns the planar clock frequency implied by the cycle
// time (≈ 2.66 GHz).
func ClockGHz2D() float64 { return 1000 / cycle2DPs }

// ClockGHz3D returns the 3D clock frequency: the slowest critical loop's
// 3D latency sets the new cycle time (≈ 3.93 GHz, +47.9%).
func ClockGHz3D() float64 {
	var worst float64
	for _, b := range Blocks() {
		if b.CriticalLoop && b.Latency3D() > worst {
			worst = b.Latency3D()
		}
	}
	return 1000 / worst
}

// FrequencyGain returns the fractional 3D clock improvement.
func FrequencyGain() float64 { return ClockGHz3D()/ClockGHz2D() - 1 }

// ---------------------------------------------------------------------
// Energy model
// ---------------------------------------------------------------------

// BlockEnergy gives the dynamic energy per access of one floorplan block
// and how 3D implementation reduces it.
type BlockEnergy struct {
	Block floorplan.BlockID
	// PJ is the planar energy per access in picojoules (calibrated so
	// the mpeg2enc workload lands near the paper's 45 W/core baseline).
	PJ float64
	// WireFrac is the fraction of that energy dissipated in wires.
	WireFrac float64
	// WireScale3D is the fraction of wire energy remaining in 3D.
	WireScale3D float64
}

// PerAccess2D returns the planar energy per access (pJ).
func (e BlockEnergy) PerAccess2D() float64 { return e.PJ }

// PerAccess3D returns the 3D energy per full (all-die) access (pJ).
func (e BlockEnergy) PerAccess3D() float64 {
	return e.PJ*(1-e.WireFrac) + e.PJ*e.WireFrac*e.WireScale3D
}

// PerDieWord3D returns the 3D energy for activating one die's 16-bit
// word slice: a quarter of the full access. Thermal Herding's gating
// saves this quantum for every die it keeps idle.
func (e BlockEnergy) PerDieWord3D() float64 { return e.PerAccess3D() / 4 }

// Energies returns per-access energies for every floorplan block.
// Values are loosely proportional to block size and port count; wire
// fractions follow the wire-intensity ordering of the timing model.
func Energies() []BlockEnergy {
	return []BlockEnergy{
		{floorplan.BlkICache, 240, 0.55, 0.45},
		{floorplan.BlkITLB, 22, 0.45, 0.42},
		{floorplan.BlkBTB, 60, 0.50, 0.40},
		{floorplan.BlkBPred, 38, 0.50, 0.44},
		{floorplan.BlkDecode, 90, 0.40, 0.50},
		{floorplan.BlkIFQ, 26, 0.35, 0.50},
		{floorplan.BlkRename, 70, 0.45, 0.45},
		{floorplan.BlkROB, 110, 0.50, 0.36},
		{floorplan.BlkRS, 170, 0.62, 0.36},
		{floorplan.BlkIntExec, 150, 0.45, 0.35},
		{floorplan.BlkBypass, 120, 0.85, 0.29},
		{floorplan.BlkFPExec, 320, 0.45, 0.35},
		{floorplan.BlkLSQ, 130, 0.58, 0.36},
		{floorplan.BlkDCache, 260, 0.55, 0.45},
		{floorplan.BlkDTLB, 30, 0.45, 0.42},
		{floorplan.BlkMemCtl, 140, 0.50, 0.50},
		{floorplan.BlkL2, 1400, 0.62, 0.47},
	}
}

// EnergyFor returns the energy entry for block b.
func EnergyFor(b floorplan.BlockID) BlockEnergy {
	for _, e := range Energies() {
		if e.Block == b {
			return e
		}
	}
	panic(fmt.Sprintf("circuit: no energy entry for block %v", b))
}
