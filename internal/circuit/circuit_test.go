package circuit

import (
	"math"
	"testing"

	"thermalherd/internal/floorplan"
)

func TestClockFrequenciesMatchPaper(t *testing.T) {
	f2d := ClockGHz2D()
	if math.Abs(f2d-2.66) > 0.03 {
		t.Errorf("2D clock = %.3f GHz, want ≈ 2.66", f2d)
	}
	f3d := ClockGHz3D()
	if math.Abs(f3d-3.93) > 0.06 {
		t.Errorf("3D clock = %.3f GHz, want ≈ 3.93", f3d)
	}
	gain := FrequencyGain()
	if math.Abs(gain-0.479) > 0.02 {
		t.Errorf("frequency gain = %.3f, want ≈ 0.479", gain)
	}
}

func TestCriticalLoopImprovements(t *testing.T) {
	ws, err := BlockByName("scheduler (wakeup-select loop)")
	if err != nil {
		t.Fatal(err)
	}
	if got := ws.Improvement(); math.Abs(got-0.32) > 0.02 {
		t.Errorf("wakeup-select improvement = %.3f, want ≈ 0.32", got)
	}
	ab, err := BlockByName("ALU + bypass loop")
	if err != nil {
		t.Fatal(err)
	}
	if got := ab.Improvement(); math.Abs(got-0.36) > 0.02 {
		t.Errorf("ALU+bypass improvement = %.3f, want ≈ 0.36", got)
	}
}

func TestAdderContributionIsSmall(t *testing.T) {
	// "The adder only accounts for 3% out of the 36% benefit": the
	// adder's own latency gain must be a small fraction of the loop's.
	adder, err := BlockByName("64-bit adder")
	if err != nil {
		t.Fatal(err)
	}
	loop, _ := BlockByName("ALU + bypass loop")
	adderSavedPs := adder.Latency2D() - adder.Latency3D()
	loopSavedPs := loop.Latency2D() - loop.Latency3D()
	frac := adderSavedPs / loopSavedPs
	if frac > 0.10 {
		t.Errorf("adder contributes %.3f of the loop's saving, want small (<= 0.10)", frac)
	}
	if adderSavedPs <= 0 {
		t.Error("adder must still improve in 3D")
	}
}

func TestCriticalLoopsConsumeFullCycle(t *testing.T) {
	for _, b := range Blocks() {
		if !b.CriticalLoop {
			continue
		}
		if math.Abs(b.Latency2D()-cycle2DPs) > 1e-9 {
			t.Errorf("%s 2D latency %.1f ps != cycle time %.1f ps", b.Name, b.Latency2D(), cycle2DPs)
		}
	}
}

func TestAllBlocksImproveIn3D(t *testing.T) {
	for _, b := range Blocks() {
		if b.Latency3D() >= b.Latency2D() {
			t.Errorf("%s does not improve in 3D: %.1f -> %.1f ps",
				b.Name, b.Latency2D(), b.Latency3D())
		}
		if b.Improvement() > 0.6 {
			t.Errorf("%s improvement %.2f implausibly large", b.Name, b.Improvement())
		}
	}
}

func TestArraysImproveMoreThanAdder(t *testing.T) {
	// "Large arrays (caches, register files, TLBs) observe substantial
	// latency improvements" — more than logic-dominated blocks.
	adder, _ := BlockByName("64-bit adder")
	for _, name := range []string{"register file", "L1 D-cache (32KB)", "L2 cache (4MB)", "D-TLB"} {
		b, err := BlockByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if b.Improvement() <= adder.Improvement() {
			t.Errorf("%s improvement (%.3f) not above adder's (%.3f)",
				name, b.Improvement(), adder.Improvement())
		}
	}
}

func TestBlockByNameUnknown(t *testing.T) {
	if _, err := BlockByName("flux capacitor"); err == nil {
		t.Error("unknown block accepted")
	}
}

func TestBlockNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range Blocks() {
		if seen[b.Name] {
			t.Errorf("duplicate block name %q", b.Name)
		}
		seen[b.Name] = true
	}
}

func TestViaDelayBelowOneFO4(t *testing.T) {
	if D2DViaPs >= FO4Ps {
		t.Errorf("d2d via (%g ps) must be below one FO4 (%g ps)", D2DViaPs, FO4Ps)
	}
}

func TestEnergiesCoverAllBlocks(t *testing.T) {
	seen := map[floorplan.BlockID]bool{}
	for _, e := range Energies() {
		if seen[e.Block] {
			t.Errorf("duplicate energy entry for %v", e.Block)
		}
		seen[e.Block] = true
	}
	for b := floorplan.BlockID(0); b < floorplan.NumBlocks; b++ {
		if !seen[b] {
			t.Errorf("no energy entry for block %v", b)
		}
	}
}

func TestEnergy3DBelow2D(t *testing.T) {
	for _, e := range Energies() {
		if e.PerAccess3D() >= e.PerAccess2D() {
			t.Errorf("block %v: 3D energy (%.1f pJ) not below 2D (%.1f pJ)",
				e.Block, e.PerAccess3D(), e.PerAccess2D())
		}
		if e.PerDieWord3D()*4 != e.PerAccess3D() {
			t.Errorf("block %v: die-word energy inconsistent", e.Block)
		}
	}
}

func TestEnergyForPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("EnergyFor(NumBlocks) did not panic")
		}
	}()
	EnergyFor(floorplan.NumBlocks)
}

func TestBypassIsMostWireIntensive(t *testing.T) {
	// Section 3.3: the bypass network is wire-dominated and benefits
	// the most from 3D energy-wise.
	byp := EnergyFor(floorplan.BlkBypass)
	for _, e := range Energies() {
		if e.Block != floorplan.BlkBypass && e.WireFrac > byp.WireFrac {
			t.Errorf("block %v wire fraction (%.2f) above bypass (%.2f)",
				e.Block, e.WireFrac, byp.WireFrac)
		}
	}
}
