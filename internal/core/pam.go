package core

// AddressMemo implements partial address memoization (PAM) for the load
// and store queues (Section 3.5). Memory addresses are almost always
// full-width, but their upper bits rarely change: the LSQ broadcasts only
// the low 16 address bits on the top die plus one extra bit indicating
// whether the remaining 48 bits are identical to those of the most recent
// store address. When the bit is set, the comparison completes on the top
// die; otherwise the lower three die must participate.
type AddressMemo struct {
	// lastStoreUpper is the upper 48 bits of the most recently
	// broadcast store address, the memoization reference.
	lastStoreUpper uint64
	valid          bool

	broadcasts    uint64
	memoHits      uint64
	activity      DieActivity
	fullBroadcast DieActivity // ablation baseline: always broadcast all 64 bits
}

// NewAddressMemo returns an empty memoizer; the first broadcast always
// misses.
func NewAddressMemo() *AddressMemo { return &AddressMemo{} }

// BroadcastResult describes one LSQ address broadcast under PAM.
type BroadcastResult struct {
	// MemoHit is true when the upper 48 bits matched the memoized
	// store address and the broadcast was confined to the top die.
	MemoHit bool
	// DiesActivated is the number of die the broadcast drove.
	DiesActivated int
}

// Broadcast models one address broadcast into the LSQ CAMs. isStore
// updates the memoization reference (the paper memoizes against the most
// recent store address).
func (m *AddressMemo) Broadcast(addr uint64, isStore bool) BroadcastResult {
	m.broadcasts++
	upper := Upper48(addr)
	hit := m.valid && upper == m.lastStoreUpper
	if isStore {
		m.lastStoreUpper = upper
		m.valid = true
	}
	m.fullBroadcast.RecordFull()
	if hit {
		m.memoHits++
		m.activity.RecordAccess(1)
		return BroadcastResult{MemoHit: true, DiesActivated: 1}
	}
	m.activity.RecordFull()
	return BroadcastResult{DiesActivated: NumDies}
}

// HitRate returns the fraction of broadcasts confined to the top die.
func (m *AddressMemo) HitRate() float64 {
	if m.broadcasts == 0 {
		return 0
	}
	return float64(m.memoHits) / float64(m.broadcasts)
}

// Broadcasts returns the total number of broadcasts observed.
func (m *AddressMemo) Broadcasts() uint64 { return m.broadcasts }

// Activity returns per-die activity under PAM.
func (m *AddressMemo) Activity() DieActivity { return m.activity }

// BaselineActivity returns per-die activity a PAM-less LSQ (full 64-bit
// broadcast every time) would have incurred — the PAM ablation baseline.
func (m *AddressMemo) BaselineActivity() DieActivity { return m.fullBroadcast }

// ResetStats zeroes counters while keeping the memoized reference.
func (m *AddressMemo) ResetStats() {
	m.broadcasts, m.memoHits = 0, 0
	m.activity = DieActivity{}
	m.fullBroadcast = DieActivity{}
}

// Reset clears the memoization state and statistics.
func (m *AddressMemo) Reset() { *m = AddressMemo{} }
