package core

// PVEncoding is the two-bit partial value encoding the paper's Section
// 3.6 stores alongside each L1 data cache word on the top die. It widens
// the definition of "low-width" beyond all-zero upper bits so that more
// loads and stores can be serviced entirely from the top die.
type PVEncoding uint8

// The four encodings of the upper 48 bits of a cached 64-bit value.
const (
	// PVZero: the upper 48 bits are all zeros (small non-negative value).
	PVZero PVEncoding = 0b00
	// PVOnes: the upper 48 bits are all ones (small negative value).
	PVOnes PVEncoding = 0b01
	// PVAddr: the upper 48 bits equal the upper 48 bits of the
	// referencing address — the pointer-locality case where heap
	// structures store pointers to nearby objects.
	PVAddr PVEncoding = 0b10
	// PVFull: the upper bits are not trivially encodable and must be
	// read from the remaining three die.
	PVFull PVEncoding = 0b11
)

// String names the encoding.
func (e PVEncoding) String() string {
	switch e {
	case PVZero:
		return "zeros"
	case PVOnes:
		return "ones"
	case PVAddr:
		return "addr"
	case PVFull:
		return "full"
	}
	return "invalid"
}

// IsLow reports whether the encoding lets a load complete from the top
// die alone.
func (e PVEncoding) IsLow() bool { return e != PVFull }

const upper48Ones = (uint64(1) << 48) - 1

// ClassifyPartialValue computes the PVEncoding for value v stored at (or
// loaded from) address addr. The referencing address participates so the
// PVAddr pointer case can be detected.
func ClassifyPartialValue(v, addr uint64) PVEncoding {
	upper := Upper48(v)
	switch upper {
	case 0:
		return PVZero
	case upper48Ones:
		return PVOnes
	case Upper48(addr):
		return PVAddr
	default:
		return PVFull
	}
}

// ExpandPartialValue reconstructs the full 64-bit value from its low
// 16-bit word, its encoding, and the referencing address. For PVFull the
// caller must supply the upper bits read from the lower die via upper48.
func ExpandPartialValue(low16 uint16, enc PVEncoding, addr, upper48 uint64) uint64 {
	switch enc {
	case PVZero:
		return uint64(low16)
	case PVOnes:
		return Assemble(upper48Ones, low16)
	case PVAddr:
		return Assemble(Upper48(addr), low16)
	default:
		return Assemble(upper48, low16)
	}
}

// PVStats tallies how often each encoding occurs, quantifying the
// coverage the 2-bit scheme buys over a 1-bit zero-only memoization
// (the partial-value ablation in DESIGN.md).
type PVStats struct {
	Counts [4]uint64
}

// Observe records one classified value.
func (s *PVStats) Observe(e PVEncoding) { s.Counts[e]++ }

// Total returns the number of classified values.
func (s *PVStats) Total() uint64 {
	return s.Counts[0] + s.Counts[1] + s.Counts[2] + s.Counts[3]
}

// LowFraction returns the fraction of values servable from the top die
// under the full 2-bit scheme.
func (s *PVStats) LowFraction() float64 {
	t := s.Total()
	if t == 0 {
		return 0
	}
	return float64(t-s.Counts[PVFull]) / float64(t)
}

// ZeroOnlyFraction returns the fraction a 1-bit zeros-only memoization
// would have covered — the ablation baseline.
func (s *PVStats) ZeroOnlyFraction() float64 {
	t := s.Total()
	if t == 0 {
		return 0
	}
	return float64(s.Counts[PVZero]) / float64(t)
}
