package core

import "fmt"

// AllocPolicy selects how reservation station entries are assigned to
// die in the entry-partitioned 3D scheduler of Section 3.4.
type AllocPolicy uint8

// Scheduler allocation policies.
const (
	// AllocHerded is the paper's policy: fill the top die first, then
	// the die next closest to the heat sink, and so on, keeping active
	// entries near the heat sink.
	AllocHerded AllocPolicy = iota
	// AllocRoundRobin spreads entries evenly across the die — the
	// ablation baseline that ignores thermals.
	AllocRoundRobin
)

// String names the policy.
func (p AllocPolicy) String() string {
	switch p {
	case AllocHerded:
		return "herded"
	case AllocRoundRobin:
		return "round-robin"
	}
	return "unknown"
}

// HerdingAllocator manages the entry-partitioned instruction scheduler:
// one quarter of the RS entries per die, with a thermally aware
// allocation policy and per-die tag broadcast gating (a die with no
// occupied entries does not receive the broadcast).
type HerdingAllocator struct {
	policy     AllocPolicy
	perDie     int
	occupied   [NumDies]int
	slots      [NumDies][]bool
	rrNext     int
	allocs     uint64
	allocsByD  [NumDies]uint64
	broadcasts uint64
	// broadcastDies counts die-broadcasts delivered; gated die are not
	// counted.
	broadcastDies uint64
	activity      DieActivity
	occupancySum  [NumDies]uint64
	occupancyObs  uint64
}

// NewHerdingAllocator builds an allocator for a scheduler with the given
// total number of RS entries, split evenly across the four die.
func NewHerdingAllocator(totalEntries int, policy AllocPolicy) *HerdingAllocator {
	if totalEntries <= 0 || totalEntries%NumDies != 0 {
		panic(fmt.Sprintf("core: RS entries (%d) must be a positive multiple of %d", totalEntries, NumDies))
	}
	a := &HerdingAllocator{policy: policy, perDie: totalEntries / NumDies}
	for d := range a.slots {
		a.slots[d] = make([]bool, a.perDie)
	}
	return a
}

// Capacity returns the total number of RS entries.
func (a *HerdingAllocator) Capacity() int { return a.perDie * NumDies }

// Free returns the number of unoccupied entries.
func (a *HerdingAllocator) Free() int {
	free := a.Capacity()
	for _, o := range a.occupied {
		free -= o
	}
	return free
}

// Entry identifies one reservation station slot by die and index.
type Entry struct {
	Die  int
	Slot int
}

// Allocate claims a free RS entry according to the policy. ok is false
// when the scheduler is full.
func (a *HerdingAllocator) Allocate() (e Entry, ok bool) {
	switch a.policy {
	case AllocHerded:
		for d := 0; d < NumDies; d++ {
			if a.occupied[d] < a.perDie {
				return a.claim(d), true
			}
		}
	case AllocRoundRobin:
		for i := 0; i < NumDies; i++ {
			d := (a.rrNext + i) % NumDies
			if a.occupied[d] < a.perDie {
				a.rrNext = (d + 1) % NumDies
				return a.claim(d), true
			}
		}
	}
	return Entry{}, false
}

func (a *HerdingAllocator) claim(d int) Entry {
	for s, used := range a.slots[d] {
		if !used {
			a.slots[d][s] = true
			a.occupied[d]++
			a.allocs++
			a.allocsByD[d]++
			return Entry{Die: d, Slot: s}
		}
	}
	panic("core: claim on full die") // unreachable: caller checked occupancy
}

// Release frees an entry when its instruction issues.
func (a *HerdingAllocator) Release(e Entry) {
	if e.Die < 0 || e.Die >= NumDies || e.Slot < 0 || e.Slot >= a.perDie {
		panic(fmt.Sprintf("core: release of invalid entry %+v", e))
	}
	if !a.slots[e.Die][e.Slot] {
		panic(fmt.Sprintf("core: double release of entry %+v", e))
	}
	a.slots[e.Die][e.Slot] = false
	a.occupied[e.Die]--
}

// Broadcast models one destination-tag broadcast through the wakeup
// logic. Die with no occupied entries gate the broadcast (Section 3.4),
// saving the associated switching energy.
func (a *HerdingAllocator) Broadcast() (diesDriven int) {
	a.broadcasts++
	for d := 0; d < NumDies; d++ {
		if a.occupied[d] > 0 {
			diesDriven++
			a.activity.Words[d]++
			a.broadcastDies++
		}
	}
	return diesDriven
}

// ObserveOccupancy samples per-die occupancy (call once per simulated
// cycle) for the thermal-herding effectiveness metrics.
func (a *HerdingAllocator) ObserveOccupancy() {
	a.occupancyObs++
	for d := 0; d < NumDies; d++ {
		a.occupancySum[d] += uint64(a.occupied[d])
	}
}

// ResetStats zeroes counters while preserving current occupancy.
func (a *HerdingAllocator) ResetStats() {
	a.allocs = 0
	a.allocsByD = [NumDies]uint64{}
	a.broadcasts, a.broadcastDies = 0, 0
	a.activity = DieActivity{}
	a.occupancySum = [NumDies]uint64{}
	a.occupancyObs = 0
}

// Occupied returns the current number of occupied entries on die d.
func (a *HerdingAllocator) Occupied(d int) int { return a.occupied[d] }

// Activity returns per-die broadcast activity.
func (a *HerdingAllocator) Activity() DieActivity { return a.activity }

// TopDieAllocShare returns the fraction of allocations that landed on
// the top die — the herding effectiveness measure for the allocator
// ablation.
func (a *HerdingAllocator) TopDieAllocShare() float64 {
	if a.allocs == 0 {
		return 0
	}
	return float64(a.allocsByD[TopDie]) / float64(a.allocs)
}

// MeanBroadcastDies returns the average number of die each tag broadcast
// had to drive (4.0 means gating never helped).
func (a *HerdingAllocator) MeanBroadcastDies() float64 {
	if a.broadcasts == 0 {
		return 0
	}
	return float64(a.broadcastDies) / float64(a.broadcasts)
}

// MeanOccupancy returns the average occupancy of die d over the sampled
// cycles.
func (a *HerdingAllocator) MeanOccupancy(d int) float64 {
	if a.occupancyObs == 0 {
		return 0
	}
	return float64(a.occupancySum[d]) / float64(a.occupancyObs)
}
