package core

// ALU3D models the clock-gating behaviour of the significance-partitioned
// arithmetic units of Section 3.2. The low 16 bits of the adder sit on
// the top die; in the cycle before execution, the width prediction (and
// the register file's memoization bits) decide whether to clock-gate the
// upper 48 bits on the bottom three die.
//
// Two unsafe misprediction cases exist:
//
//   - Input-width misprediction: an operand turned out full-width while
//     the unit was only partially enabled → one cycle stall to re-enable
//     the upper 48 bits.
//   - Output-width misprediction: two low-width operands produced a
//     full-width result (e.g. 16-bit + 16-bit = 17-bit sum); for
//     pipelined units this may surface cycles into the computation, so
//     the instruction must re-execute.
type ALU3D struct {
	ops             uint64
	gatedOps        uint64
	inputMispredict uint64
	outputMispred   uint64
	activity        DieActivity
}

// ExecOutcome reports the timing consequences of one execution.
type ExecOutcome struct {
	// StallCycles is the number of extra cycles before the result is
	// available (1 for an input-width unsafe misprediction).
	StallCycles int
	// Reexecute is true when an output-width unsafe misprediction
	// forces the instruction to re-execute from issue.
	Reexecute bool
	// DiesActivated is the number of die that switched.
	DiesActivated int
}

// Execute models one ALU operation. predictedLow is the width
// predictor's call; op1Low/op2Low are the operands' actual width classes
// (from RF memoization bits); resultLow is the actual width class of the
// computed result.
//
// Gating decision per the paper: even with low-width operands, a
// full-width *prediction* enables the whole adder, because two low-width
// operands may generate a full-width result. Only a low-width prediction
// gates the bottom three die.
func (a *ALU3D) Execute(predictedLow, op1Low, op2Low, resultLow bool) ExecOutcome {
	a.ops++
	if !predictedLow {
		// Fully enabled unit: no stalls possible.
		a.activity.RecordFull()
		return ExecOutcome{DiesActivated: NumDies}
	}
	// Unit starts gated to the top die.
	if !op1Low || !op2Low {
		// Input-width unsafe misprediction: re-enable the upper 48
		// bits, costing one cycle; the full computation then runs.
		a.inputMispredict++
		a.activity.RecordFull()
		return ExecOutcome{StallCycles: 1, DiesActivated: NumDies}
	}
	if !resultLow {
		// Output-width unsafe misprediction: the gated computation
		// produced a wrong (truncated) result; re-execute with the
		// unit fully enabled.
		a.outputMispred++
		a.activity.RecordAccess(1) // the aborted gated pass
		a.activity.RecordFull()    // the re-execution
		return ExecOutcome{Reexecute: true, DiesActivated: NumDies + 1}
	}
	// Correctly herded low-width operation: top die only.
	a.gatedOps++
	a.activity.RecordAccess(1)
	return ExecOutcome{DiesActivated: 1}
}

// AddWidthOutcome classifies an actual 64-bit addition: given the
// operand values it returns whether each operand and the true sum are
// low-width. It exists so callers can derive Execute's inputs from real
// values (the emulator path) rather than trace annotations.
func AddWidthOutcome(op1, op2 uint64) (op1Low, op2Low, resultLow bool) {
	return IsLowWidth(op1), IsLowWidth(op2), IsLowWidth(op1 + op2)
}

// Ops returns the number of operations executed.
func (a *ALU3D) Ops() uint64 { return a.ops }

// GatedFraction returns the fraction of operations confined to the top
// die. The paper's Section 5.2 notes Thermal Herding can gate roughly
// 75% of a block's switching activity on such operations.
func (a *ALU3D) GatedFraction() float64 {
	if a.ops == 0 {
		return 0
	}
	return float64(a.gatedOps) / float64(a.ops)
}

// Mispredictions returns (input-width, output-width) unsafe
// misprediction counts.
func (a *ALU3D) Mispredictions() (input, output uint64) {
	return a.inputMispredict, a.outputMispred
}

// Activity returns the accumulated per-die switching activity.
func (a *ALU3D) Activity() DieActivity { return a.activity }
