package core

import "testing"

func TestAddressMemoFirstBroadcastMisses(t *testing.T) {
	m := NewAddressMemo()
	r := m.Broadcast(0x7fff_0000_1000, true)
	if r.MemoHit {
		t.Error("first broadcast cannot hit (no memoized store yet)")
	}
	if r.DiesActivated != NumDies {
		t.Errorf("dies = %d, want %d", r.DiesActivated, NumDies)
	}
}

func TestAddressMemoStackLocality(t *testing.T) {
	m := NewAddressMemo()
	stack := uint64(0x7fff_ffe0_0000)
	m.Broadcast(stack, true) // establishes the reference
	hits := 0
	const n = 32
	for i := 0; i < n; i++ {
		// Subsequent stack accesses share upper 48 bits.
		r := m.Broadcast(stack+uint64(8*i), i%2 == 0)
		if r.MemoHit {
			hits++
			if r.DiesActivated != 1 {
				t.Errorf("memo hit activated %d dies, want 1", r.DiesActivated)
			}
		}
	}
	if hits != n {
		t.Errorf("stack-local broadcasts hit %d/%d, want all", hits, n)
	}
}

func TestAddressMemoHeapStackAlternation(t *testing.T) {
	m := NewAddressMemo()
	stack := uint64(0x7fff_ffe0_0000)
	heap := uint64(0x0000_1234_0000)
	m.Broadcast(stack, true)
	// A heap load doesn't match and doesn't update the reference (loads
	// never update).
	if r := m.Broadcast(heap, false); r.MemoHit {
		t.Error("heap load matched stack reference")
	}
	// Stack store still matches the old reference.
	if r := m.Broadcast(stack+8, true); !r.MemoHit {
		t.Error("stack store should match the memoized stack upper bits")
	}
	// Now a heap store moves the reference.
	m.Broadcast(heap, true)
	if r := m.Broadcast(heap+16, false); !r.MemoHit {
		t.Error("heap load should match after heap store updated the reference")
	}
	if r := m.Broadcast(stack, false); r.MemoHit {
		t.Error("stack load should miss after heap store updated the reference")
	}
}

func TestAddressMemoOnlyStoresUpdateReference(t *testing.T) {
	m := NewAddressMemo()
	a := uint64(0x1111_0000_0000)
	b := uint64(0x2222_0000_0000)
	m.Broadcast(a, true)
	m.Broadcast(b, false) // load: must not move the reference
	if r := m.Broadcast(a+8, false); !r.MemoHit {
		t.Error("reference moved on a load broadcast")
	}
}

func TestAddressMemoHitRateAndBaseline(t *testing.T) {
	m := NewAddressMemo()
	base := uint64(0x4000_0000_0000)
	m.Broadcast(base, true)
	for i := 1; i < 10; i++ {
		m.Broadcast(base+uint64(i*8), false)
	}
	if got, want := m.HitRate(), 0.9; got != want {
		t.Errorf("hit rate = %g, want %g", got, want)
	}
	if m.Broadcasts() != 10 {
		t.Errorf("broadcasts = %d, want 10", m.Broadcasts())
	}
	// PAM activity must be strictly below the full-broadcast baseline.
	if m.Activity().Total() >= m.BaselineActivity().Total() {
		t.Errorf("PAM activity (%d) not below baseline (%d)",
			m.Activity().Total(), m.BaselineActivity().Total())
	}
	if m.BaselineActivity().Total() != 10*NumDies {
		t.Errorf("baseline total = %d, want %d", m.BaselineActivity().Total(), 10*NumDies)
	}
}

func TestAddressMemoReset(t *testing.T) {
	m := NewAddressMemo()
	m.Broadcast(0x1000, true)
	m.Reset()
	if m.Broadcasts() != 0 || m.HitRate() != 0 {
		t.Error("Reset did not clear state")
	}
	if r := m.Broadcast(0x1000, false); r.MemoHit {
		t.Error("hit against a reference that should have been cleared")
	}
}
