package core

import (
	"testing"
	"testing/quick"
)

func TestTargetNeedsFullRead(t *testing.T) {
	pc := uint64(0x0000_4000_1000)
	if TargetNeedsFullRead(pc, pc+64) {
		t.Error("nearby PC-relative target should not need a full read")
	}
	if !TargetNeedsFullRead(pc, 0x7fff_0000_0000) {
		t.Error("far target must need a full read")
	}
	// Boundary: targets in a different 64KB-aligned upper region.
	if !TargetNeedsFullRead(0xffff, 0x10000) {
		t.Error("crossing the 16-bit boundary changes upper bits")
	}
}

func TestComposeTargetRoundTrip(t *testing.T) {
	f := func(pc, target uint64) bool {
		needsFull := TargetNeedsFullRead(pc, target)
		var upper uint64
		if needsFull {
			upper = Upper48(target)
		}
		return ComposeTarget(pc, Low16(target), needsFull, upper) == target
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTargetMemoStats(t *testing.T) {
	var s TargetMemoStats
	pc := uint64(0x40_0000)
	// 9 near targets, 1 far.
	for i := 0; i < 9; i++ {
		if full := s.Observe(pc, pc+uint64(4*(i+1))); full {
			t.Errorf("near target %d flagged as full read", i)
		}
	}
	if full := s.Observe(pc, 0x9999_0000_0000); !full {
		t.Error("far target not flagged")
	}
	if got, want := s.TopDieRate(), 0.9; got != want {
		t.Errorf("top-die rate = %g, want %g", got, want)
	}
	if s.Activity.Words[TopDie] != 10 {
		t.Errorf("top die accesses = %d, want 10", s.Activity.Words[TopDie])
	}
	if s.Activity.Words[1] != 1 {
		t.Errorf("die-1 accesses = %d, want 1 (only the far target)", s.Activity.Words[1])
	}
}

func TestTargetMemoStatsEmpty(t *testing.T) {
	var s TargetMemoStats
	if s.TopDieRate() != 0 {
		t.Error("empty stats should report 0 top-die rate")
	}
}
