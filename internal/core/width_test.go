package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWidth(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 1},
		{1, 1},
		{0xffff, 1},
		{0x10000, 2},
		{0xffffffff, 2},
		{0x1_0000_0000, 3},
		{0xffff_ffff_ffff, 3},
		{0x1_0000_0000_0000, 4},
		{math.MaxUint64, 4},
	}
	for _, c := range cases {
		if got := Width(c.v); got != c.want {
			t.Errorf("Width(%#x) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestIsLowWidth(t *testing.T) {
	for _, v := range []uint64{0, 1, 42, 0xffff} {
		if !IsLowWidth(v) {
			t.Errorf("IsLowWidth(%#x) = false, want true", v)
		}
	}
	for _, v := range []uint64{0x10000, 1 << 32, math.MaxUint64} {
		if IsLowWidth(v) {
			t.Errorf("IsLowWidth(%#x) = true, want false", v)
		}
	}
	// A small negative number sign-extended to 64 bits is NOT low-width
	// under the register-file definition (upper bits are ones, not
	// zeros).
	if IsLowWidth(^uint64(0)) {
		t.Error("IsLowWidth(-1) = true, want false (sign bits are non-zero)")
	}
}

func TestWordOfAndAssembleRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		// Words must reassemble to the original value.
		var r uint64
		for d := NumDies - 1; d >= 0; d-- {
			r = r<<WordBits | uint64(WordOf(v, d))
		}
		if r != v {
			return false
		}
		return Assemble(Upper48(v), Low16(v)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWidthMatchesDiesForWidth(t *testing.T) {
	f := func(v uint64) bool {
		w := Width(v)
		d := DiesForWidth(w)
		if d != w {
			return false
		}
		// All words above the reported width must be zero.
		for die := w; die < NumDies; die++ {
			if WordOf(v, die) != 0 {
				return false
			}
		}
		// The highest word within the width must be non-zero unless
		// the width is 1 (zero itself has width 1).
		if w > 1 && WordOf(v, w-1) == 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiesForWidthClamping(t *testing.T) {
	if got := DiesForWidth(0); got != 1 {
		t.Errorf("DiesForWidth(0) = %d, want 1", got)
	}
	if got := DiesForWidth(9); got != NumDies {
		t.Errorf("DiesForWidth(9) = %d, want %d", got, NumDies)
	}
}

func TestDieActivityRecording(t *testing.T) {
	var a DieActivity
	a.RecordAccess(1)
	a.RecordAccess(1)
	a.RecordAccess(1)
	a.RecordFull()
	if a.Words[0] != 4 {
		t.Errorf("top die words = %d, want 4", a.Words[0])
	}
	for d := 1; d < NumDies; d++ {
		if a.Words[d] != 1 {
			t.Errorf("die %d words = %d, want 1", d, a.Words[d])
		}
	}
	if got := a.Total(); got != 7 {
		t.Errorf("Total = %d, want 7", got)
	}
	if got, want := a.TopDieShare(), 4.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("TopDieShare = %g, want %g", got, want)
	}
	// 4 accesses ungated would cost 16 word-accesses; we used 7.
	if got, want := a.GatedFraction(), 1-7.0/16.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("GatedFraction = %g, want %g", got, want)
	}
}

func TestDieActivityAdd(t *testing.T) {
	var a, b DieActivity
	a.RecordAccess(2)
	b.RecordFull()
	a.Add(b)
	want := [NumDies]uint64{2, 2, 1, 1}
	if a.Words != want {
		t.Errorf("after Add, Words = %v, want %v", a.Words, want)
	}
}

func TestDieActivityEmpty(t *testing.T) {
	var a DieActivity
	if a.TopDieShare() != 0 {
		t.Error("TopDieShare of empty activity should be 0")
	}
	if a.GatedFraction() != 0 {
		t.Error("GatedFraction of empty activity should be 0")
	}
}

func TestDieActivityClamps(t *testing.T) {
	var a DieActivity
	a.RecordAccess(0)  // clamps to 1
	a.RecordAccess(99) // clamps to NumDies
	if a.Words[0] != 2 || a.Words[NumDies-1] != 1 {
		t.Errorf("clamping failed: %v", a.Words)
	}
}
