package core

// TargetMemo implements the BTB target memoization of Section 3.7: most
// branch targets lie close to the originating branch, so the BTB stores
// only the low-order 16 target bits on the top die plus one target
// memoization bit per entry. When the bit is clear, the predicted target
// reuses the upper 48 bits of the branch's own PC; when set, the upper
// bits must be fetched from the remaining three die, stalling the
// prediction pipeline for one cycle.

// TargetNeedsFullRead reports whether a branch at pc with the given
// target requires the BTB's lower die (i.e. the target's upper 48 bits
// differ from the branch PC's).
func TargetNeedsFullRead(pc, target uint64) bool {
	return Upper48(pc) != Upper48(target)
}

// ComposeTarget reconstructs a predicted target from the branch PC and
// the stored low 16 bits when the memoization bit says the upper bits
// match; otherwise fullUpper (read from the lower die) supplies them.
func ComposeTarget(pc uint64, low16 uint16, memoBit bool, fullUpper uint64) uint64 {
	if !memoBit {
		return Assemble(Upper48(pc), low16)
	}
	return Assemble(fullUpper, low16)
}

// TargetMemoStats tracks how often target predictions stay on the top
// die.
type TargetMemoStats struct {
	Lookups   uint64
	FullReads uint64
	Activity  DieActivity
}

// Observe records one BTB target lookup for a branch at pc predicting
// target.
func (s *TargetMemoStats) Observe(pc, target uint64) (needsFull bool) {
	s.Lookups++
	needsFull = TargetNeedsFullRead(pc, target)
	if needsFull {
		s.FullReads++
		s.Activity.RecordFull()
	} else {
		s.Activity.RecordAccess(1)
	}
	return needsFull
}

// TopDieRate returns the fraction of lookups confined to the top die.
func (s *TargetMemoStats) TopDieRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Lookups-s.FullReads) / float64(s.Lookups)
}
