package core

// WidthPredictor is the PC-indexed table of two-bit saturating counters
// that predicts, for each instruction, whether its result (and operand
// usage) will be low-width (≤16 bits) or full-width. The paper cites the
// scheme of Loh (reference [13]) and reports 97% of fetched instructions
// correctly predicted.
//
// Counter semantics: values 0..1 predict full-width, 2..3 predict
// low-width. The counter trains toward the observed width on every
// resolution. An "unsafe" misprediction — predicted low, actually full —
// costs pipeline stalls; a "safe" misprediction — predicted full,
// actually low — merely forgoes gating.
type WidthPredictor struct {
	counters []uint8
	mask     uint64

	// Statistics.
	predictions uint64
	correct     uint64
	unsafeMiss  uint64
	safeMiss    uint64
}

// widthCounterInit biases new counters toward predicting low-width (the
// common case in integer code) without being fully confident.
const widthCounterInit = 2

// NewWidthPredictor creates a predictor with the given number of entries,
// which must be a power of two.
func NewWidthPredictor(entries int) *WidthPredictor {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("core: width predictor entries must be a positive power of two")
	}
	p := &WidthPredictor{
		counters: make([]uint8, entries),
		mask:     uint64(entries - 1),
	}
	for i := range p.counters {
		p.counters[i] = widthCounterInit
	}
	return p
}

func (p *WidthPredictor) index(pc uint64) uint64 {
	// Instructions are 4-byte aligned; drop the alignment bits so
	// adjacent instructions map to distinct counters.
	return (pc >> 2) & p.mask
}

// Predict returns true if the instruction at pc is predicted low-width.
func (p *WidthPredictor) Predict(pc uint64) bool {
	p.predictions++
	return p.counters[p.index(pc)] >= 2
}

// Resolve trains the predictor with the actual outcome for pc and records
// accuracy statistics. predictedLow must be the value Predict returned
// for this dynamic instance; actualLow is the resolved width class.
// It reports whether the misprediction (if any) was unsafe.
func (p *WidthPredictor) Resolve(pc uint64, predictedLow, actualLow bool) (unsafe bool) {
	i := p.index(pc)
	c := p.counters[i]
	if actualLow {
		if c < 3 {
			p.counters[i] = c + 1
		}
	} else {
		if c > 0 {
			p.counters[i] = c - 1
		}
	}
	switch {
	case predictedLow == actualLow:
		p.correct++
		return false
	case predictedLow && !actualLow:
		p.unsafeMiss++
		return true
	default:
		p.safeMiss++
		return false
	}
}

// CorrectOverride forces the entry for pc to predict full-width. The
// paper's register file "corrects the instruction's width prediction to
// prevent any further stalls in the rest of the pipeline" on an unsafe
// misprediction; this models that in-flight correction.
func (p *WidthPredictor) CorrectOverride(pc uint64) {
	p.counters[p.index(pc)] = 0
}

// Accuracy returns the fraction of resolved predictions that were
// correct, or 1 if nothing has resolved yet.
func (p *WidthPredictor) Accuracy() float64 {
	resolved := p.correct + p.unsafeMiss + p.safeMiss
	if resolved == 0 {
		return 1
	}
	return float64(p.correct) / float64(resolved)
}

// Stats returns (predictions made, correct, unsafe mispredictions, safe
// mispredictions).
func (p *WidthPredictor) Stats() (predictions, correct, unsafeMiss, safeMiss uint64) {
	return p.predictions, p.correct, p.unsafeMiss, p.safeMiss
}

// UnsafeRate returns the fraction of resolved predictions that were
// unsafe mispredictions.
func (p *WidthPredictor) UnsafeRate() float64 {
	resolved := p.correct + p.unsafeMiss + p.safeMiss
	if resolved == 0 {
		return 0
	}
	return float64(p.unsafeMiss) / float64(resolved)
}

// ResetStats zeroes accuracy statistics while preserving the trained
// counters.
func (p *WidthPredictor) ResetStats() {
	p.predictions, p.correct, p.unsafeMiss, p.safeMiss = 0, 0, 0, 0
}

// Reset clears counters to their initial bias and zeroes statistics.
func (p *WidthPredictor) Reset() {
	for i := range p.counters {
		p.counters[i] = widthCounterInit
	}
	p.predictions, p.correct, p.unsafeMiss, p.safeMiss = 0, 0, 0, 0
}

// OraclePolicy enumerates width-prediction policies for the ablation
// study: the real two-bit predictor, a perfect oracle, and the two
// degenerate static policies.
type OraclePolicy uint8

// Width prediction policies.
const (
	PolicyTwoBit OraclePolicy = iota
	PolicyOracle              // always predicts the actual width
	PolicyAlwaysLow
	PolicyAlwaysFull
)

// String names the policy.
func (p OraclePolicy) String() string {
	switch p {
	case PolicyTwoBit:
		return "2bit"
	case PolicyOracle:
		return "oracle"
	case PolicyAlwaysLow:
		return "always-low"
	case PolicyAlwaysFull:
		return "always-full"
	}
	return "unknown"
}
