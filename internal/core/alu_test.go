package core

import (
	"testing"
	"testing/quick"
)

func TestALUGatedLowWidthOp(t *testing.T) {
	var a ALU3D
	out := a.Execute(true, true, true, true)
	if out.StallCycles != 0 || out.Reexecute {
		t.Errorf("correctly predicted low op incurred penalty: %+v", out)
	}
	if out.DiesActivated != 1 {
		t.Errorf("dies = %d, want 1", out.DiesActivated)
	}
	if a.GatedFraction() != 1 {
		t.Errorf("gated fraction = %g, want 1", a.GatedFraction())
	}
}

func TestALUFullPredictionEnablesEverything(t *testing.T) {
	var a ALU3D
	// Even with low-width operands, a full prediction runs ungated (two
	// low operands may produce a full result).
	out := a.Execute(false, true, true, false)
	if out.StallCycles != 0 || out.Reexecute {
		t.Errorf("full-predicted op incurred penalty: %+v", out)
	}
	if out.DiesActivated != NumDies {
		t.Errorf("dies = %d, want %d", out.DiesActivated, NumDies)
	}
}

func TestALUInputWidthMisprediction(t *testing.T) {
	var a ALU3D
	out := a.Execute(true, false, true, false)
	if out.StallCycles != 1 {
		t.Errorf("input-width mispredict stall = %d, want 1", out.StallCycles)
	}
	if out.Reexecute {
		t.Error("input-width mispredict must not force re-execution")
	}
	in, outc := a.Mispredictions()
	if in != 1 || outc != 0 {
		t.Errorf("mispredictions = (%d,%d), want (1,0)", in, outc)
	}
}

func TestALUOutputWidthMisprediction(t *testing.T) {
	var a ALU3D
	// Both operands low but the result overflows 16 bits.
	out := a.Execute(true, true, true, false)
	if !out.Reexecute {
		t.Error("output-width mispredict must force re-execution")
	}
	in, outc := a.Mispredictions()
	if in != 0 || outc != 1 {
		t.Errorf("mispredictions = (%d,%d), want (0,1)", in, outc)
	}
}

func TestAddWidthOutcome(t *testing.T) {
	cases := []struct {
		op1, op2             uint64
		w1Low, w2Low, resLow bool
	}{
		{5, 7, true, true, true},
		{0xffff, 1, true, true, false}, // 16-bit + 16-bit = 17-bit sum
		{1 << 20, 3, false, true, false},
		{1, 1 << 50, true, false, false},
	}
	for _, c := range cases {
		w1, w2, r := AddWidthOutcome(c.op1, c.op2)
		if w1 != c.w1Low || w2 != c.w2Low || r != c.resLow {
			t.Errorf("AddWidthOutcome(%#x,%#x) = (%v,%v,%v), want (%v,%v,%v)",
				c.op1, c.op2, w1, w2, r, c.w1Low, c.w2Low, c.resLow)
		}
	}
}

func TestAddWidthOutcomeProperty(t *testing.T) {
	// Whenever AddWidthOutcome says the result is low-width, the actual
	// 64-bit sum must fit in 16 bits.
	f := func(x, y uint16) bool {
		op1, op2 := uint64(x), uint64(y)
		_, _, resLow := AddWidthOutcome(op1, op2)
		return resLow == (op1+op2 <= 0xffff)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestALUActivityAccounting(t *testing.T) {
	var a ALU3D
	a.Execute(true, true, true, true)     // 1 die
	a.Execute(false, false, false, false) // 4 dies
	act := a.Activity()
	if act.Words[TopDie] != 2 {
		t.Errorf("top die = %d, want 2", act.Words[TopDie])
	}
	if act.Total() != 1+NumDies {
		t.Errorf("total = %d, want %d", act.Total(), 1+NumDies)
	}
	if a.Ops() != 2 {
		t.Errorf("ops = %d, want 2", a.Ops())
	}
}

func TestALUGatedFractionEmpty(t *testing.T) {
	var a ALU3D
	if a.GatedFraction() != 0 {
		t.Error("gated fraction of idle ALU should be 0")
	}
}
