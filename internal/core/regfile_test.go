package core

import (
	"testing"
	"testing/quick"
)

func TestRegFileReadWriteRoundTrip(t *testing.T) {
	rf := NewRegFile3D(96)
	f := func(idx uint8, v uint64) bool {
		i := int(idx) % rf.Size()
		rf.Write(i, v)
		r := rf.Read(i, false)
		return r.Value == v && rf.Memo(i) == IsLowWidth(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegFileHerdedLowWidthRead(t *testing.T) {
	rf := NewRegFile3D(8)
	rf.Write(3, 42)
	r := rf.Read(3, true)
	if r.Unsafe {
		t.Error("low-width predicted read of low-width value flagged unsafe")
	}
	if r.DiesActivated != 1 {
		t.Errorf("dies activated = %d, want 1 (top die only)", r.DiesActivated)
	}
	if r.Value != 42 {
		t.Errorf("value = %d, want 42", r.Value)
	}
}

func TestRegFileUnsafeMisprediction(t *testing.T) {
	rf := NewRegFile3D(8)
	rf.Write(5, 1<<40)
	r := rf.Read(5, true)
	if !r.Unsafe {
		t.Error("predicted-low read of full-width value must be unsafe")
	}
	if r.DiesActivated != NumDies {
		t.Errorf("dies activated = %d, want %d", r.DiesActivated, NumDies)
	}
	if r.Value != 1<<40 {
		t.Errorf("value = %#x, want %#x (recovery must return full value)", r.Value, uint64(1)<<40)
	}
	if s := rf.Stats(); s.UnsafeReads != 1 {
		t.Errorf("unsafe reads = %d, want 1", s.UnsafeReads)
	}
}

func TestRegFileFullPredictedReadNeverStalls(t *testing.T) {
	rf := NewRegFile3D(8)
	rf.Write(1, 7)          // low-width value
	rf.Write(2, 0xdead<<32) // full-width value
	for _, idx := range []int{1, 2} {
		if r := rf.Read(idx, false); r.Unsafe {
			t.Errorf("full-width predicted read of entry %d flagged unsafe", idx)
		}
	}
}

func TestRegFileActivityHerding(t *testing.T) {
	rf := NewRegFile3D(8)
	rf.Write(0, 5) // low-width write: 1 word
	rf.Read(0, true)
	rf.Read(0, true)
	a := rf.Activity()
	if a.Words[TopDie] != 3 {
		t.Errorf("top die words = %d, want 3", a.Words[TopDie])
	}
	for d := 1; d < NumDies; d++ {
		if a.Words[d] != 0 {
			t.Errorf("die %d words = %d, want 0 (fully herded)", d, a.Words[d])
		}
	}
}

func TestRegFileZeroInitializedLowWidth(t *testing.T) {
	rf := NewRegFile3D(4)
	for i := 0; i < rf.Size(); i++ {
		if !rf.Memo(i) {
			t.Errorf("fresh entry %d should be memoized low-width", i)
		}
	}
}

func TestRegFileStatsCounting(t *testing.T) {
	rf := NewRegFile3D(8)
	rf.Write(0, 1)     // low write
	rf.Write(1, 1<<20) // full write
	rf.Read(0, true)   // low read
	rf.Read(1, false)  // full read
	rf.Read(1, true)   // unsafe read
	s := rf.Stats()
	if s.Writes != 2 || s.LowWidthWrites != 1 {
		t.Errorf("writes = %d low = %d, want 2/1", s.Writes, s.LowWidthWrites)
	}
	if s.Reads != 3 || s.LowWidthReads != 1 || s.UnsafeReads != 1 {
		t.Errorf("reads = %d low = %d unsafe = %d, want 3/1/1", s.Reads, s.LowWidthReads, s.UnsafeReads)
	}
	if s.LowReadRatio() != 0.5 {
		t.Errorf("LowReadRatio = %g, want 0.5", s.LowReadRatio())
	}
}

func TestGroupReadStallAtMostOne(t *testing.T) {
	// A group with multiple unsafe mispredictions still stalls only one
	// cycle (serviced in parallel in the next cycle).
	group := []ReadResult{{Unsafe: true}, {Unsafe: true}, {Unsafe: true}, {}}
	if got := GroupReadStall(group); got != 1 {
		t.Errorf("GroupReadStall = %d, want 1", got)
	}
	clean := []ReadResult{{}, {}, {}}
	if got := GroupReadStall(clean); got != 0 {
		t.Errorf("GroupReadStall(clean) = %d, want 0", got)
	}
	if got := GroupReadStall(nil); got != 0 {
		t.Errorf("GroupReadStall(nil) = %d, want 0", got)
	}
}

func TestRegFileRejectsBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRegFile3D(0) did not panic")
		}
	}()
	NewRegFile3D(0)
}
