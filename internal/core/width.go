// Package core implements the Thermal Herding techniques that are the
// primary contribution of Puttaswamy & Loh, "Thermal Herding:
// Microarchitecture Techniques for Controlling Hotspots in
// High-Performance 3D-Integrated Processors" (HPCA 2007).
//
// The processor datapath is significance-partitioned across a stack of
// four die, 16 bits per die, with bits 15..0 on the top die — the die
// adjacent to the heat sink. The package provides:
//
//   - value width classification and per-die activity accounting
//     (width.go),
//   - the PC-indexed two-bit saturating-counter width predictor
//     (predictor.go),
//   - width memoization bits for the register file (regfile.go),
//   - the 2-bit partial value encoding for the L1 data cache
//     (partialvalue.go),
//   - partial address memoization for the load/store queues (pam.go),
//   - the target memoization scheme for the BTB (btbmemo.go),
//   - the top-die-first ("herding") scheduler allocation policy
//     (allocator.go).
package core

// The 3D stack geometry assumed throughout the paper: a 64-bit datapath
// significance-partitioned across four die at 16 bits per die. Die 0 is
// the top die, closest to the heat sink.
const (
	// NumDies is the number of stacked die.
	NumDies = 4
	// WordBits is the number of datapath bits per die.
	WordBits = 16
	// ValueBits is the full datapath width.
	ValueBits = NumDies * WordBits
	// TopDie is the index of the die adjacent to the heat sink.
	TopDie = 0
)

// Width reports the number of 16-bit words needed to represent v as an
// unsigned quantity: 1 if v fits in bits 15..0, up to 4 if bits 63..48
// are non-zero. This matches the paper's register-file width memoization,
// where a single bit records whether "the remaining three die contain
// non-zero values".
func Width(v uint64) int {
	switch {
	case v>>WordBits == 0:
		return 1
	case v>>(2*WordBits) == 0:
		return 2
	case v>>(3*WordBits) == 0:
		return 3
	default:
		return 4
	}
}

// IsLowWidth reports whether v is a low-width value in the paper's sense:
// representable in 16 or fewer bits, i.e. the upper 48 bits are all zero.
// Negative (sign-extended) values are NOT low-width under the register
// file's single memoization bit; the data cache's richer 2-bit partial
// value encoding (see PartialValue) covers them.
func IsLowWidth(v uint64) bool { return v>>WordBits == 0 }

// DiesForWidth returns the number of die whose datapath word is active
// when handling a value of the given word width under perfect gating.
func DiesForWidth(w int) int {
	if w < 1 {
		return 1
	}
	if w > NumDies {
		return NumDies
	}
	return w
}

// WordOf extracts the 16-bit word of v held on the given die (die 0 =
// bits 15..0).
func WordOf(v uint64, die int) uint16 {
	return uint16(v >> (uint(die) * WordBits))
}

// Upper48 returns bits 63..16 of v, the portion stored on the bottom
// three die.
func Upper48(v uint64) uint64 { return v >> WordBits }

// Low16 returns bits 15..0 of v, the portion stored on the top die.
func Low16(v uint64) uint16 { return uint16(v) }

// Assemble reconstructs a 64-bit value from its upper 48 bits and its low
// 16-bit word; the inverse of (Upper48, Low16).
func Assemble(upper48 uint64, low16 uint16) uint64 {
	return upper48<<WordBits | uint64(low16)
}

// DieActivity accumulates, per die, how many word-accesses a structure
// performed. It is the bridge between the microarchitectural herding
// mechanisms and the power model: a correctly herded low-width operation
// touches only die 0, a full-width operation touches all four.
type DieActivity struct {
	// Words[d] counts 16-bit word accesses performed on die d.
	Words [NumDies]uint64
}

// RecordAccess adds one access that activates the given number of die,
// counted from the top of the stack: dies=1 touches only die 0, dies=4
// touches all four. Out-of-range values are clamped.
func (a *DieActivity) RecordAccess(dies int) {
	if dies < 1 {
		dies = 1
	}
	if dies > NumDies {
		dies = NumDies
	}
	for d := 0; d < dies; d++ {
		a.Words[d]++
	}
}

// RecordFull adds one access touching all four die.
func (a *DieActivity) RecordFull() { a.RecordAccess(NumDies) }

// Add accumulates another activity record into a.
func (a *DieActivity) Add(b DieActivity) {
	for d := range a.Words {
		a.Words[d] += b.Words[d]
	}
}

// Total returns the total word accesses across all die.
func (a DieActivity) Total() uint64 {
	var t uint64
	for _, w := range a.Words {
		t += w
	}
	return t
}

// TopDieShare returns the fraction of word accesses on the top die, the
// quantity Thermal Herding maximizes. Returns 0 when no accesses have
// been recorded.
func (a DieActivity) TopDieShare() float64 {
	t := a.Total()
	if t == 0 {
		return 0
	}
	return float64(a.Words[TopDie]) / float64(t)
}

// GatedFraction returns the fraction of word accesses avoided relative to
// an ungated design in which every access would have touched all four
// die. Accesses per die 0 define the access count. Returns 0 when idle.
func (a DieActivity) GatedFraction() float64 {
	accesses := a.Words[TopDie]
	if accesses == 0 {
		return 0
	}
	full := accesses * NumDies
	return 1 - float64(a.Total())/float64(full)
}
