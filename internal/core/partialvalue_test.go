package core

import (
	"testing"
	"testing/quick"
)

func TestClassifyPartialValue(t *testing.T) {
	heapAddr := uint64(0x00007f12_3456_0000)
	cases := []struct {
		v, addr uint64
		want    PVEncoding
	}{
		{0, heapAddr, PVZero},
		{12345, heapAddr, PVZero},
		{0xffff, heapAddr, PVZero},
		{^uint64(0), heapAddr, PVOnes},
		{^uint64(29999), heapAddr, PVOnes},
		// A pointer to a nearby heap object: same upper 48 bits as the
		// referencing address.
		{heapAddr | 0x1234, heapAddr, PVAddr},
		// Unrelated full-width value.
		{0x1122_3344_5566_7788, heapAddr, PVFull},
	}
	for _, c := range cases {
		if got := ClassifyPartialValue(c.v, c.addr); got != c.want {
			t.Errorf("ClassifyPartialValue(%#x, %#x) = %v, want %v", c.v, c.addr, got, c.want)
		}
	}
}

func TestPartialValueRoundTrip(t *testing.T) {
	f := func(v, addr uint64) bool {
		enc := ClassifyPartialValue(v, addr)
		// Upper bits are only supplied on a full read.
		var upper uint64
		if enc == PVFull {
			upper = Upper48(v)
		}
		return ExpandPartialValue(Low16(v), enc, addr, upper) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPVEncodingIsLow(t *testing.T) {
	for _, e := range []PVEncoding{PVZero, PVOnes, PVAddr} {
		if !e.IsLow() {
			t.Errorf("%v.IsLow() = false, want true", e)
		}
	}
	if PVFull.IsLow() {
		t.Error("PVFull.IsLow() = true, want false")
	}
}

func TestPVEncodingZeroVsOnesDisjoint(t *testing.T) {
	// Upper 48 cannot be simultaneously all-zero and all-one; the
	// classifier must prefer the zero encoding only for genuinely
	// zero-extended values.
	if ClassifyPartialValue(0xffff, 0) != PVZero {
		t.Error("0xffff should classify as PVZero")
	}
	if ClassifyPartialValue(0xffff_ffff_ffff_ffff, 0) != PVOnes {
		t.Error("all-ones should classify as PVOnes")
	}
}

func TestPVAddrBeatsFullWhenUpperMatches(t *testing.T) {
	// When the value's upper bits happen to be all-zero AND match the
	// address, zero wins (checked first, cheaper encoding).
	if got := ClassifyPartialValue(0x42, 0x99); got != PVZero {
		t.Errorf("got %v, want PVZero", got)
	}
}

func TestPVStats(t *testing.T) {
	var s PVStats
	addr := uint64(0x5555_0000_0000)
	values := []uint64{
		0, 1, 2, // zeros x3
		^uint64(4),            // ones
		addr | 0x10,           // addr
		0x1234_5678_9abc_def0, // full
	}
	for _, v := range values {
		s.Observe(ClassifyPartialValue(v, addr))
	}
	if s.Total() != 6 {
		t.Fatalf("total = %d, want 6", s.Total())
	}
	if got, want := s.LowFraction(), 5.0/6.0; got != want {
		t.Errorf("LowFraction = %g, want %g", got, want)
	}
	if got, want := s.ZeroOnlyFraction(), 3.0/6.0; got != want {
		t.Errorf("ZeroOnlyFraction = %g, want %g", got, want)
	}
	// The 2-bit scheme must dominate the 1-bit zeros-only scheme.
	if s.LowFraction() < s.ZeroOnlyFraction() {
		t.Error("2-bit encoding should cover at least as much as zeros-only")
	}
}

func TestPVStatsEmpty(t *testing.T) {
	var s PVStats
	if s.LowFraction() != 0 || s.ZeroOnlyFraction() != 0 {
		t.Error("empty stats should report zero fractions")
	}
}

func TestPVEncodingStrings(t *testing.T) {
	want := map[PVEncoding]string{PVZero: "zeros", PVOnes: "ones", PVAddr: "addr", PVFull: "full"}
	for e, s := range want {
		if e.String() != s {
			t.Errorf("%d.String() = %q, want %q", e, e.String(), s)
		}
	}
}
