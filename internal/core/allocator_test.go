package core

import "testing"

func TestHerdedAllocatorFillsTopDieFirst(t *testing.T) {
	a := NewHerdingAllocator(32, AllocHerded)
	// First 8 allocations must all land on die 0.
	for i := 0; i < 8; i++ {
		e, ok := a.Allocate()
		if !ok {
			t.Fatalf("allocation %d failed", i)
		}
		if e.Die != TopDie {
			t.Errorf("allocation %d landed on die %d, want top die", i, e.Die)
		}
	}
	// The 9th spills to die 1.
	e, ok := a.Allocate()
	if !ok || e.Die != 1 {
		t.Errorf("9th allocation on die %d (ok=%v), want die 1", e.Die, ok)
	}
}

func TestRoundRobinAllocatorSpreads(t *testing.T) {
	a := NewHerdingAllocator(32, AllocRoundRobin)
	var perDie [NumDies]int
	for i := 0; i < NumDies; i++ {
		e, ok := a.Allocate()
		if !ok {
			t.Fatal("allocation failed")
		}
		perDie[e.Die]++
	}
	for d, n := range perDie {
		if n != 1 {
			t.Errorf("die %d received %d of the first 4 allocations, want 1", d, n)
		}
	}
}

func TestAllocatorFullAndRelease(t *testing.T) {
	a := NewHerdingAllocator(8, AllocHerded)
	entries := make([]Entry, 0, 8)
	for i := 0; i < 8; i++ {
		e, ok := a.Allocate()
		if !ok {
			t.Fatalf("allocation %d failed with capacity 8", i)
		}
		entries = append(entries, e)
	}
	if _, ok := a.Allocate(); ok {
		t.Error("allocation succeeded on a full scheduler")
	}
	if a.Free() != 0 {
		t.Errorf("Free = %d, want 0", a.Free())
	}
	a.Release(entries[0])
	if a.Free() != 1 {
		t.Errorf("Free after release = %d, want 1", a.Free())
	}
	if e, ok := a.Allocate(); !ok || e != entries[0] {
		t.Errorf("herded realloc = %+v (ok=%v), want the freed top-die slot", e, ok)
	}
}

func TestAllocatorDoubleReleasePanics(t *testing.T) {
	a := NewHerdingAllocator(8, AllocHerded)
	e, _ := a.Allocate()
	a.Release(e)
	defer func() {
		if recover() == nil {
			t.Error("double release did not panic")
		}
	}()
	a.Release(e)
}

func TestBroadcastGating(t *testing.T) {
	a := NewHerdingAllocator(32, AllocHerded)
	// Empty scheduler: every die gated.
	if n := a.Broadcast(); n != 0 {
		t.Errorf("broadcast to empty scheduler drove %d dies, want 0", n)
	}
	// One entry on the top die: only die 0 driven.
	e, _ := a.Allocate()
	if n := a.Broadcast(); n != 1 {
		t.Errorf("broadcast drove %d dies, want 1", n)
	}
	// Fill past the top die.
	for i := 0; i < 8; i++ {
		a.Allocate()
	}
	if n := a.Broadcast(); n != 2 {
		t.Errorf("broadcast drove %d dies, want 2", n)
	}
	a.Release(e)
	if got := a.MeanBroadcastDies(); got <= 0 || got > NumDies {
		t.Errorf("MeanBroadcastDies = %g out of range", got)
	}
}

func TestHerdedTopDieShareExceedsRoundRobin(t *testing.T) {
	run := func(policy AllocPolicy) float64 {
		a := NewHerdingAllocator(32, policy)
		live := make([]Entry, 0, 32)
		// Alternate allocate-heavy and release phases at low occupancy,
		// where herding's advantage is largest.
		for step := 0; step < 1000; step++ {
			if len(live) < 6 {
				if e, ok := a.Allocate(); ok {
					live = append(live, e)
				}
			} else {
				a.Release(live[0])
				live = live[1:]
			}
			a.Broadcast()
			a.ObserveOccupancy()
		}
		return a.TopDieAllocShare()
	}
	herded := run(AllocHerded)
	rr := run(AllocRoundRobin)
	if herded <= rr {
		t.Errorf("herded top-die share (%.3f) not above round-robin (%.3f)", herded, rr)
	}
	if herded < 0.99 {
		t.Errorf("at occupancy <= 6/32, herded share = %.3f, want ~1.0", herded)
	}
}

func TestAllocatorOccupancySampling(t *testing.T) {
	a := NewHerdingAllocator(8, AllocHerded)
	a.Allocate()
	a.Allocate()
	a.ObserveOccupancy()
	a.ObserveOccupancy()
	if got := a.MeanOccupancy(TopDie); got != 2 {
		t.Errorf("mean top-die occupancy = %g, want 2", got)
	}
	if got := a.MeanOccupancy(1); got != 0 {
		t.Errorf("mean die-1 occupancy = %g, want 0", got)
	}
}

func TestAllocatorRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, -4, 30} { // 30 not divisible by 4
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHerdingAllocator(%d) did not panic", n)
				}
			}()
			NewHerdingAllocator(n, AllocHerded)
		}()
	}
}

func TestAllocPolicyStrings(t *testing.T) {
	if AllocHerded.String() != "herded" || AllocRoundRobin.String() != "round-robin" {
		t.Error("policy String() mismatch")
	}
}
