package core_test

import (
	"fmt"

	"thermalherd/internal/core"
)

// The width predictor drives every herding decision: predict before the
// register file access, resolve when the value is known.
func ExampleWidthPredictor() {
	p := core.NewWidthPredictor(1024)
	pc := uint64(0x1000)
	// Train: this instruction always produces small values.
	for i := 0; i < 4; i++ {
		pred := p.Predict(pc)
		p.Resolve(pc, pred, true)
	}
	fmt.Println("predicts low-width:", p.Predict(pc))
	// Output: predicts low-width: true
}

// The 2-bit partial value encoding covers small negatives and nearby
// pointers, not just zero-extended values.
func ExampleClassifyPartialValue() {
	heap := uint64(0x2000_0000_1000)
	fmt.Println(core.ClassifyPartialValue(42, heap))          // small positive
	fmt.Println(core.ClassifyPartialValue(^uint64(4), heap))  // small negative
	fmt.Println(core.ClassifyPartialValue(heap|0x2468, heap)) // nearby pointer
	fmt.Println(core.ClassifyPartialValue(0xdead_beef_cafe_f00d, heap))
	// Output:
	// zeros
	// ones
	// addr
	// full
}

// The herding allocator fills the die nearest the heat sink first.
func ExampleHerdingAllocator() {
	a := core.NewHerdingAllocator(32, core.AllocHerded)
	for i := 0; i < 3; i++ {
		e, _ := a.Allocate()
		fmt.Printf("entry %d -> die %d\n", i, e.Die)
	}
	// Output:
	// entry 0 -> die 0
	// entry 1 -> die 0
	// entry 2 -> die 0
}

// Partial address memoization confines LSQ broadcasts whose upper 48
// address bits match the most recent store to the top die.
func ExampleAddressMemo() {
	m := core.NewAddressMemo()
	stack := uint64(0x7fff_ffff_0000)
	m.Broadcast(stack, true) // store establishes the reference
	r := m.Broadcast(stack+64, false)
	fmt.Println("memo hit:", r.MemoHit, "- dies driven:", r.DiesActivated)
	// Output: memo hit: true - dies driven: 1
}
