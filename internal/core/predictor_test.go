package core

import (
	"math/rand"
	"testing"
)

func TestWidthPredictorLearnsStableBehaviour(t *testing.T) {
	p := NewWidthPredictor(1024)
	pcLow := uint64(0x1000)
	pcFull := uint64(0x1004) // adjacent instruction: distinct counter

	// Train: pcLow always low-width, pcFull always full-width.
	for i := 0; i < 8; i++ {
		p.Resolve(pcLow, p.Predict(pcLow), true)
		p.Resolve(pcFull, p.Predict(pcFull), false)
	}
	if !p.Predict(pcLow) {
		t.Error("predictor failed to learn low-width PC")
	}
	if p.Predict(pcFull) {
		t.Error("predictor failed to learn full-width PC")
	}
}

func TestWidthPredictorHysteresis(t *testing.T) {
	p := NewWidthPredictor(64)
	pc := uint64(0x40)
	// Saturate toward low.
	for i := 0; i < 4; i++ {
		p.Resolve(pc, true, true)
	}
	// One full-width outlier must not flip a saturated counter.
	p.Resolve(pc, p.Predict(pc), false)
	if !p.Predict(pc) {
		t.Error("single outlier flipped a saturated two-bit counter")
	}
	// But two in a row must.
	p.Resolve(pc, p.Predict(pc), false)
	if p.Predict(pc) {
		t.Error("two consecutive full-width outcomes failed to flip prediction")
	}
}

func TestWidthPredictorUnsafeVsSafeAccounting(t *testing.T) {
	p := NewWidthPredictor(64)
	pc := uint64(0x80)
	if unsafe := p.Resolve(pc, true, false); !unsafe {
		t.Error("predicted-low/actual-full must be unsafe")
	}
	if unsafe := p.Resolve(pc, false, true); unsafe {
		t.Error("predicted-full/actual-low must be safe")
	}
	if unsafe := p.Resolve(pc, true, true); unsafe {
		t.Error("correct prediction must not be unsafe")
	}
	_, correct, unsafeN, safeN := p.Stats()
	if correct != 1 || unsafeN != 1 || safeN != 1 {
		t.Errorf("stats = (correct=%d, unsafe=%d, safe=%d), want (1,1,1)", correct, unsafeN, safeN)
	}
}

func TestWidthPredictorCorrectOverride(t *testing.T) {
	p := NewWidthPredictor(64)
	pc := uint64(0x100)
	for i := 0; i < 4; i++ {
		p.Resolve(pc, true, true)
	}
	if !p.Predict(pc) {
		t.Fatal("setup: expected low prediction")
	}
	p.CorrectOverride(pc)
	if p.Predict(pc) {
		t.Error("CorrectOverride did not force full-width prediction")
	}
}

func TestWidthPredictorAccuracyOnBiasedStream(t *testing.T) {
	// The paper reports ~97% accuracy. On a synthetic stream where each
	// static instruction has a strongly biased width behaviour, the
	// two-bit counters should land well above 90%.
	p := NewWidthPredictor(4096)
	rng := rand.New(rand.NewSource(7))
	const staticInsts = 256
	bias := make([]float64, staticInsts)
	for i := range bias {
		// Most static instructions are heavily biased one way.
		if rng.Float64() < 0.7 {
			bias[i] = 0.97 // mostly low-width
		} else {
			bias[i] = 0.03 // mostly full-width
		}
	}
	for i := 0; i < 200000; i++ {
		s := rng.Intn(staticInsts)
		pc := uint64(0x1000 + 4*s)
		actualLow := rng.Float64() < bias[s]
		p.Resolve(pc, p.Predict(pc), actualLow)
	}
	if acc := p.Accuracy(); acc < 0.93 {
		t.Errorf("accuracy on biased stream = %.3f, want >= 0.93", acc)
	}
	if ur := p.UnsafeRate(); ur > 0.05 {
		t.Errorf("unsafe rate = %.3f, want <= 0.05", ur)
	}
}

func TestWidthPredictorReset(t *testing.T) {
	p := NewWidthPredictor(64)
	p.Resolve(0, true, false)
	p.Reset()
	if _, c, u, s := p.Stats(); c != 0 || u != 0 || s != 0 {
		t.Error("Reset did not clear statistics")
	}
	if p.Accuracy() != 1 {
		t.Error("Accuracy after reset should be 1 (vacuous)")
	}
}

func TestWidthPredictorRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, -8, 3, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWidthPredictor(%d) did not panic", n)
				}
			}()
			NewWidthPredictor(n)
		}()
	}
}

func TestOraclePolicyNames(t *testing.T) {
	names := map[OraclePolicy]string{
		PolicyTwoBit:     "2bit",
		PolicyOracle:     "oracle",
		PolicyAlwaysLow:  "always-low",
		PolicyAlwaysFull: "always-full",
	}
	for p, want := range names {
		if got := p.String(); got != want {
			t.Errorf("policy %d String() = %q, want %q", p, got, want)
		}
	}
}
