package core

import "fmt"

// RegFile3D models the word-partitioned physical register file of
// Section 3.1. Each 64-bit entry is split across the four die with a
// width memoization bit per entry on the top die that records whether the
// remaining three die hold non-zero bits.
//
// A predicted-low read activates only the top die; if the memoization bit
// disagrees (an unsafe width misprediction) the access stalls one cycle
// while the remaining three die are enabled. In a superscalar group, all
// unsafe mispredictions in the same access group are serviced together,
// so a group induces at most one stall cycle regardless of how many of
// its reads mispredicted.
type RegFile3D struct {
	entries []regEntry

	activity DieActivity

	reads          uint64
	writes         uint64
	lowWidthReads  uint64
	lowWidthWrites uint64
	unsafeReads    uint64
}

type regEntry struct {
	value uint64
	// memo is the width memoization bit: true when the upper 48 bits
	// are all zero, i.e. only the top die holds live bits.
	memo bool
}

// NewRegFile3D creates a register file with the given number of physical
// entries. All entries start at zero (low-width).
func NewRegFile3D(entries int) *RegFile3D {
	if entries <= 0 {
		panic("core: register file needs at least one entry")
	}
	rf := &RegFile3D{entries: make([]regEntry, entries)}
	for i := range rf.entries {
		rf.entries[i].memo = true
	}
	return rf
}

// Size returns the number of physical entries.
func (rf *RegFile3D) Size() int { return len(rf.entries) }

// Write stores v into entry idx, updating the memoization bit and
// activating only as many die as the value requires (a store already
// knows its width at writeback).
func (rf *RegFile3D) Write(idx int, v uint64) {
	e := &rf.entries[idx]
	e.value = v
	e.memo = IsLowWidth(v)
	rf.writes++
	if e.memo {
		rf.lowWidthWrites++
		rf.activity.RecordAccess(1)
	} else {
		rf.activity.RecordAccess(Width(v))
	}
}

// ReadResult describes the outcome of a width-predicted register read.
type ReadResult struct {
	// Value is the full 64-bit register value.
	Value uint64
	// Unsafe is true when the access was predicted low-width but the
	// entry is full-width: the pipeline must stall one cycle while the
	// lower die are enabled.
	Unsafe bool
	// DiesActivated is how many die the access touched in total
	// (including the recovery access on an unsafe misprediction).
	DiesActivated int
}

// Read performs a width-predicted read of entry idx. predictedLow is the
// width predictor's call for the consuming instruction.
func (rf *RegFile3D) Read(idx int, predictedLow bool) ReadResult {
	e := &rf.entries[idx]
	rf.reads++
	if e.memo {
		rf.lowWidthReads++
	}
	switch {
	case predictedLow && e.memo:
		// Herded access: top die only.
		rf.activity.RecordAccess(1)
		return ReadResult{Value: e.value, DiesActivated: 1}
	case predictedLow && !e.memo:
		// Unsafe misprediction: the top-die access runs, detects the
		// set memoization bit, then the remaining three die are
		// enabled in the next cycle.
		rf.unsafeReads++
		rf.activity.RecordFull()
		return ReadResult{Value: e.value, Unsafe: true, DiesActivated: NumDies}
	default:
		// Predicted full-width: all die read in parallel.
		rf.activity.RecordFull()
		return ReadResult{Value: e.value, DiesActivated: NumDies}
	}
}

// Peek returns the entry value without modeling an access.
func (rf *RegFile3D) Peek(idx int) uint64 { return rf.entries[idx].value }

// Memo returns the memoization bit of entry idx.
func (rf *RegFile3D) Memo(idx int) bool { return rf.entries[idx].memo }

// Activity returns the accumulated per-die activity.
func (rf *RegFile3D) Activity() DieActivity { return rf.activity }

// Stats returns aggregate access statistics.
func (rf *RegFile3D) Stats() RegFileStats {
	return RegFileStats{
		Reads:          rf.reads,
		Writes:         rf.writes,
		LowWidthReads:  rf.lowWidthReads,
		LowWidthWrites: rf.lowWidthWrites,
		UnsafeReads:    rf.unsafeReads,
	}
}

// RegFileStats aggregates register file access behaviour. The paper's
// Section 5.3 observes ~5x more low-width reads and ~2x more low-width
// writes than full-width in the ROB/physical registers.
type RegFileStats struct {
	Reads          uint64
	Writes         uint64
	LowWidthReads  uint64
	LowWidthWrites uint64
	UnsafeReads    uint64
}

// LowReadRatio returns low-width reads / full-width reads (∞-safe: returns
// 0 when there are no full-width reads).
func (s RegFileStats) LowReadRatio() float64 {
	full := s.Reads - s.LowWidthReads
	if full == 0 {
		return 0
	}
	return float64(s.LowWidthReads) / float64(full)
}

// String summarizes the stats.
func (s RegFileStats) String() string {
	return fmt.Sprintf("reads=%d (low %d, unsafe %d) writes=%d (low %d)",
		s.Reads, s.LowWidthReads, s.UnsafeReads, s.Writes, s.LowWidthWrites)
}

// GroupReadStall models the paper's dispatch rule: within one register
// file access group (the instructions reading the RF in the same cycle),
// any number of unsafe mispredictions can be serviced in parallel in the
// next cycle, so the group as a whole pays at most one stall cycle.
// It returns 1 if any result in the group was unsafe, else 0.
func GroupReadStall(results []ReadResult) int {
	for _, r := range results {
		if r.Unsafe {
			return 1
		}
	}
	return 0
}
