package kernels

import (
	"testing"

	"thermalherd/internal/core"
	"thermalherd/internal/emu"
	"thermalherd/internal/isa"
	"thermalherd/internal/trace"
)

const maxInsts = 2_000_000

func runKernel(t *testing.T, k Kernel) (*emu.Machine, []trace.Inst) {
	t.Helper()
	m := emu.New(k.Program)
	insts, err := m.Run(maxInsts)
	if err != nil {
		t.Fatalf("%s: %v", k.Name, err)
	}
	if !m.Halted {
		t.Fatalf("%s: did not halt within %d instructions", k.Name, maxInsts)
	}
	return m, insts
}

func TestAllKernelsProduceExpectedResults(t *testing.T) {
	for _, k := range All2() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			m, _ := runKernel(t, k)
			if got := m.IntRegs[k.ResultReg]; got != k.Expected {
				t.Errorf("result r%d = %d (%#x), want %d (%#x)",
					k.ResultReg, got, got, k.Expected, k.Expected)
			}
		})
	}
}

func TestByName(t *testing.T) {
	k, err := ByName("fib")
	if err != nil || k.Name != "fib" {
		t.Errorf("ByName(fib) = (%v, %v)", k.Name, err)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("ByName accepted unknown kernel")
	}
}

func TestKernelNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range All2() {
		if seen[k.Name] {
			t.Errorf("duplicate kernel name %q", k.Name)
		}
		seen[k.Name] = true
		if k.Description == "" {
			t.Errorf("kernel %q missing description", k.Name)
		}
	}
}

// TestFibWidthBehaviour validates the premise of Section 3: integer loop
// code produces overwhelmingly low-width results.
func TestFibWidthBehaviour(t *testing.T) {
	_, insts := runKernel(t, Fibonacci(20))
	var intResults, low int
	for i := range insts {
		if insts[i].HasIntDest() {
			intResults++
			if core.IsLowWidth(insts[i].Result) {
				low++
			}
		}
	}
	if intResults == 0 {
		t.Fatal("no integer results recorded")
	}
	frac := float64(low) / float64(intResults)
	if frac < 0.95 {
		t.Errorf("fib low-width result fraction = %.3f, want >= 0.95", frac)
	}
}

// TestChecksumIsFullWidthHeavy validates the adversarial kernel really
// stresses the predictor.
func TestChecksumIsFullWidthHeavy(t *testing.T) {
	_, insts := runKernel(t, Checksum(48))
	var full int
	for i := range insts {
		if insts[i].HasIntDest() && !core.IsLowWidth(insts[i].Result) {
			full++
		}
	}
	if full < 48 {
		t.Errorf("checksum produced only %d full-width results, want >= 48", full)
	}
}

// TestPointerChaseExhibitsPVAddrLocality validates the data cache's
// pointer-locality encoding case: stored pointers share upper bits with
// their own addresses.
func TestPointerChaseExhibitsPVAddrLocality(t *testing.T) {
	_, insts := runKernel(t, PointerChase(32, 8))
	var stats core.PVStats
	for i := range insts {
		if insts[i].Class == isa.ClassLoad && insts[i].MemSize == 8 {
			stats.Observe(core.ClassifyPartialValue(insts[i].Result, insts[i].MemAddr))
		}
	}
	if stats.Total() == 0 {
		t.Fatal("no 64-bit loads observed")
	}
	if stats.Counts[core.PVAddr] == 0 {
		t.Error("pointer chase produced no PVAddr-classified loads")
	}
	// The 2-bit encoding must beat zeros-only on this workload.
	if stats.LowFraction() <= stats.ZeroOnlyFraction() {
		t.Errorf("2-bit encoding (%.3f) did not beat zeros-only (%.3f)",
			stats.LowFraction(), stats.ZeroOnlyFraction())
	}
}

// TestMemoryAddressesShareUpperBits validates the PAM premise: a kernel's
// data accesses concentrate in few upper-48-bit regions.
func TestMemoryAddressesShareUpperBits(t *testing.T) {
	_, insts := runKernel(t, ArraySum(64))
	memo := core.NewAddressMemo()
	for i := range insts {
		if insts[i].IsMem() {
			memo.Broadcast(insts[i].MemAddr, insts[i].Class == isa.ClassStore)
		}
	}
	if memo.Broadcasts() == 0 {
		t.Fatal("no memory operations observed")
	}
	if hr := memo.HitRate(); hr < 0.9 {
		t.Errorf("PAM hit rate on arraysum = %.3f, want >= 0.9", hr)
	}
}

// TestWidthPredictorOnKernels checks the paper's 97% accuracy claim holds
// in spirit on real code: heavily biased kernels should predict well.
func TestWidthPredictorOnKernels(t *testing.T) {
	for _, k := range []Kernel{Fibonacci(20), ArraySum(64), BubbleSort(16)} {
		_, insts := runKernel(t, k)
		p := core.NewWidthPredictor(4096)
		for i := range insts {
			if !insts[i].HasIntDest() {
				continue
			}
			pred := p.Predict(insts[i].PC)
			p.Resolve(insts[i].PC, pred, core.IsLowWidth(insts[i].Result))
		}
		if acc := p.Accuracy(); acc < 0.9 {
			t.Errorf("%s: width prediction accuracy = %.3f, want >= 0.9", k.Name, acc)
		}
	}
}

// TestBranchBehaviourVaries sanity-checks that kernels exercise both
// taken and not-taken branches.
func TestBranchBehaviourVaries(t *testing.T) {
	_, insts := runKernel(t, BubbleSort(16))
	var taken, notTaken int
	for i := range insts {
		if insts[i].Class == isa.ClassBranch {
			if insts[i].Taken {
				taken++
			} else {
				notTaken++
			}
		}
	}
	if taken == 0 || notTaken == 0 {
		t.Errorf("bubblesort branches taken=%d notTaken=%d; want both non-zero", taken, notTaken)
	}
}

func TestKernelsIncludeFPWork(t *testing.T) {
	_, insts := runKernel(t, MatMul(4))
	var fp int
	for i := range insts {
		switch insts[i].Class {
		case isa.ClassFPAdd, isa.ClassFPMul, isa.ClassFPDiv:
			fp++
		}
	}
	if fp == 0 {
		t.Error("matmul executed no FP operations")
	}
}

// TestRecursiveFibUsesDeepCalls verifies the recursion actually recurses
// (jal/jalr pairs) rather than collapsing to a loop.
func TestRecursiveFibUsesDeepCalls(t *testing.T) {
	_, insts := runKernel(t, RecursiveFib(12))
	var calls, returns int
	for i := range insts {
		switch insts[i].Op {
		case isa.OpJal:
			calls++
		case isa.OpJalr:
			returns++
		}
	}
	if calls < 100 || returns < 100 {
		t.Errorf("calls=%d returns=%d, want deep recursion", calls, returns)
	}
	if calls != returns+1 { // the final return to halt-side happens after measurement? both should match per call
		// Every jal is matched by a jalr return except none: entry call
		// also returns. Allow equality or off-by-one.
		if calls != returns {
			t.Errorf("calls (%d) and returns (%d) unbalanced", calls, returns)
		}
	}
}

// TestFIRKernelIsLowWidthHeavy: 16-bit samples and small taps keep the
// MAC loop low-width — the media behaviour the paper highlights.
func TestFIRKernelIsLowWidthHeavy(t *testing.T) {
	_, insts := runKernel(t, FIRFilter(96, 8))
	var intResults, low int
	for i := range insts {
		if insts[i].HasIntDest() {
			intResults++
			if core.IsLowWidth(insts[i].Result) {
				low++
			}
		}
	}
	if frac := float64(low) / float64(intResults); frac < 0.8 {
		t.Errorf("FIR low-width fraction = %.3f, want >= 0.8", frac)
	}
}

// TestCRC32IsFullWidthMixing: the CRC state is a wide value most of the
// time.
func TestCRC32IsFullWidthMixing(t *testing.T) {
	_, insts := runKernel(t, CRC32(64))
	var full int
	for i := range insts {
		if insts[i].HasIntDest() && !core.IsLowWidth(insts[i].Result) {
			full++
		}
	}
	if full < 500 {
		t.Errorf("crc32 produced only %d full-width results", full)
	}
}
