// Package kernels provides a library of TH64 benchmark kernels written in
// assembly. They are miniature stand-ins for the paper's application
// suites: integer loop code (SPECint-like), floating-point array code
// (SPECfp-like), byte/stream processing (MediaBench/MiBench-like), and
// pointer-chasing code (the Wisconsin pointer-intensive suite), each
// chosen to exhibit the value-width and address-locality behaviour the
// Thermal Herding mechanisms exploit.
package kernels

import (
	"fmt"

	"thermalherd/internal/asm"
	"thermalherd/internal/isa"
)

// Kernel is a named, runnable TH64 program.
type Kernel struct {
	// Name identifies the kernel in reports.
	Name string
	// Description says what it computes and which workload family it
	// stands in for.
	Description string
	// Program is the assembled code.
	Program *isa.Program
	// ResultReg is the integer register holding the kernel's checksum
	// at halt, and Expected its correct value; used by validation
	// tests.
	ResultReg int
	Expected  uint64
}

// All returns every kernel in the library.
func All() []Kernel {
	return []Kernel{
		Fibonacci(20),
		ArraySum(64),
		PointerChase(32, 8),
		BubbleSort(16),
		Checksum(48),
		MatMul(4),
		VecDot(32),
		StringCount(40),
	}
}

// ByName returns the kernel with the given name from All.
func ByName(name string) (Kernel, error) {
	for _, k := range All() {
		if k.Name == name {
			return k, nil
		}
	}
	return Kernel{}, fmt.Errorf("kernels: unknown kernel %q", name)
}

// Fibonacci computes fib(n) iteratively. Loop counters and intermediate
// Fibonacci numbers stay low-width for small n — the classic integer-loop
// behaviour behind the paper's 97% width predictability claim.
func Fibonacci(n int) Kernel {
	fib := func(n int) uint64 {
		a, b := uint64(0), uint64(1)
		for i := 0; i < n; i++ {
			a, b = b, a+b
		}
		return a
	}
	src := fmt.Sprintf(`
		addi r1, r0, 0      ; a
		addi r2, r0, 1      ; b
		addi r3, r0, %d     ; i = n
	loop:
		add  r4, r1, r2     ; t = a + b
		add  r1, r2, r0     ; a = b
		add  r2, r4, r0     ; b = t
		addi r3, r3, -1
		bne  r3, r0, loop
		halt
	`, n)
	return Kernel{
		Name:        "fib",
		Description: "iterative Fibonacci; low-width integer loop (SPECint-like)",
		Program:     asm.MustAssemble(src),
		ResultReg:   1,
		Expected:    fib(n),
	}
}

// ArraySum initializes an array of small values in the heap and sums it.
// Loads return low-width data from full-width addresses.
func ArraySum(n int) Kernel {
	var want uint64
	for i := 1; i <= n; i++ {
		want += uint64(i)
	}
	src := fmt.Sprintf(`
		; r5 = heap base 0x1234_0000_0000 (full-width address)
		lui  r5, 0x1234
		slli r5, r5, 16
		; init: a[i] = i+1 for i in 0..n-1
		addi r1, r0, 0      ; i
		addi r2, r0, %d     ; n
	init:
		addi r3, r1, 1
		slli r4, r1, 3
		add  r4, r5, r4
		st   r3, 0(r4)
		addi r1, r1, 1
		bne  r1, r2, init
		; sum
		addi r1, r0, 0
		addi r6, r0, 0      ; sum
	sum:
		slli r4, r1, 3
		add  r4, r5, r4
		ld   r3, 0(r4)
		add  r6, r6, r3
		addi r1, r1, 1
		bne  r1, r2, sum
		halt
	`, n)
	return Kernel{
		Name:        "arraysum",
		Description: "array reduction over small values; low-width loads (MiBench-like)",
		Program:     asm.MustAssemble(src),
		ResultReg:   6,
		Expected:    want,
	}
}

// PointerChase builds a linked list of nodes in the heap, each node
// holding a pointer to the next, then walks it rounds times. The stored
// pointers share upper bits with the addresses they are stored at — the
// PVAddr pointer-locality case of the data cache's partial value
// encoding.
func PointerChase(nodes, rounds int) Kernel {
	src := fmt.Sprintf(`
		lui  r5, 0x4321
		slli r5, r5, 16     ; heap base, full-width
		; build list: node i at base + 64*i, next pointer at offset 0,
		; payload (= i) at offset 8; last node points back to base.
		addi r1, r0, 0      ; i
		addi r2, r0, %d     ; nodes
	build:
		slli r3, r1, 6
		add  r3, r5, r3     ; &node[i]
		addi r4, r1, 1
		bne  r4, r2, notlast
		addi r4, r0, 0      ; wrap to node 0
	notlast:
		slli r4, r4, 6
		add  r4, r5, r4     ; &node[i+1 mod nodes]
		st   r4, 0(r3)      ; node.next = pointer (shares upper bits!)
		st   r1, 8(r3)      ; node.payload = i
		addi r1, r1, 1
		bne  r1, r2, build
		; chase: walk rounds*nodes links, summing payloads
		addi r6, r0, 0      ; sum
		addi r7, r0, %d     ; remaining hops
		add  r8, r5, r0     ; cursor = base
	chase:
		ld   r9, 8(r8)      ; payload
		add  r6, r6, r9
		ld   r8, 0(r8)      ; cursor = cursor.next (pointer load)
		addi r7, r7, -1
		bne  r7, r0, chase
		halt
	`, nodes, nodes*rounds)
	var want uint64
	for i := 0; i < nodes; i++ {
		want += uint64(i)
	}
	want *= uint64(rounds)
	return Kernel{
		Name:        "ptrchase",
		Description: "linked-list walk; pointer loads exercise PVAddr locality (pointer-suite-like)",
		Program:     asm.MustAssemble(src),
		ResultReg:   6,
		Expected:    want,
	}
}

// BubbleSort sorts a descending array ascending and returns the sum of
// element*index as a checksum. Branch-heavy with data-dependent control.
func BubbleSort(n int) Kernel {
	var want uint64
	for i := 0; i < n; i++ {
		want += uint64((i + 1) * i) // sorted ascending: a[i] = i+1
	}
	src := fmt.Sprintf(`
		lui  r5, 0x2222
		slli r5, r5, 16
		addi r2, r0, %d     ; n
		; init descending: a[i] = n-i
		addi r1, r0, 0
	init:
		sub  r3, r2, r1
		slli r4, r1, 3
		add  r4, r5, r4
		st   r3, 0(r4)
		addi r1, r1, 1
		bne  r1, r2, init
		; bubble sort
		addi r10, r2, -1    ; passes = n-1
	pass:
		addi r1, r0, 0      ; j
		addi r11, r2, -1    ; limit = n-1
	inner:
		slli r4, r1, 3
		add  r4, r5, r4
		ld   r6, 0(r4)      ; a[j]
		ld   r7, 8(r4)      ; a[j+1]
		blt  r6, r7, noswap
		st   r7, 0(r4)
		st   r6, 8(r4)
	noswap:
		addi r1, r1, 1
		bne  r1, r11, inner
		addi r10, r10, -1
		bne  r10, r0, pass
		; checksum: sum a[i]*i
		addi r1, r0, 0
		addi r8, r0, 0
	csum:
		slli r4, r1, 3
		add  r4, r5, r4
		ld   r6, 0(r4)
		mul  r7, r6, r1
		add  r8, r8, r7
		addi r1, r1, 1
		bne  r1, r2, csum
		halt
	`, n)
	return Kernel{
		Name:        "bubblesort",
		Description: "in-place sort; data-dependent branches (SPECint-like)",
		Program:     asm.MustAssemble(src),
		ResultReg:   8,
		Expected:    want,
	}
}

// Checksum runs a multiply-xor-shift mixing loop whose state rapidly goes
// full-width — the adversarial case for width prediction.
func Checksum(iters int) Kernel {
	ref := func(iters int) uint64 {
		h := uint64(0x9e37)
		for i := 0; i < iters; i++ {
			h = h*2654435761%(1<<62) ^ h>>13 ^ uint64(i)
			h &= (1 << 62) - 1
		}
		return h
	}
	_ = ref
	// The assembly computes: h = (h * K) ^ (h >> 13) ^ i, over iters
	// iterations, with K built from immediates. Compute the expected
	// value with the same operations in Go below.
	src := fmt.Sprintf(`
		lui  r1, 0x9e37     ; h = 0x9e370000
		lui  r2, 0x9e37     ; K = 0x9e3779b9
		ori  r2, r2, 0x79b9
		addi r3, r0, 0      ; i
		addi r4, r0, %d     ; iters
	loop:
		mul  r5, r1, r2
		srli r6, r1, 13
		xor  r5, r5, r6
		xor  r1, r5, r3
		addi r3, r3, 1
		bne  r3, r4, loop
		halt
	`, iters)
	h := uint64(0x9e370000)
	k := uint64(0x9e3779b9)
	for i := uint64(0); i < uint64(iters); i++ {
		h = (h * k) ^ (h >> 13) ^ i
	}
	return Kernel{
		Name:        "checksum",
		Description: "multiply-xor-shift hash; full-width values stress width prediction",
		Program:     asm.MustAssemble(src),
		ResultReg:   1,
		Expected:    h,
	}
}

// MatMul multiplies two n×n integer-valued FP matrices (A[i][j] = i+j,
// B[i][j] = i-j as floats) and returns the integer cast of the sum of C's
// entries. FP-heavy, SPECfp-like.
func MatMul(n int) Kernel {
	// Reference computation.
	var sum float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var c float64
			for k := 0; k < n; k++ {
				c += float64(i+k) * float64(k-j)
			}
			sum += c
		}
	}
	src := fmt.Sprintf(`
		addi r2, r0, %d     ; n
		lui  r20, 0x3333
		slli r20, r20, 16   ; A base
		lui  r21, 0x3344
		slli r21, r21, 16   ; B base
		; init A[i][j] = i+j, B[i][j] = i-j (as floats)
		addi r1, r0, 0      ; i
	iinit:
		addi r3, r0, 0      ; j
	jinit:
		mul  r4, r1, r2
		add  r4, r4, r3
		slli r4, r4, 3      ; byte offset of [i][j]
		add  r5, r1, r3
		i2f  f1, r5
		add  r6, r20, r4
		fst  f1, 0(r6)
		sub  r5, r1, r3
		i2f  f2, r5
		add  r6, r21, r4
		fst  f2, 0(r6)
		addi r3, r3, 1
		bne  r3, r2, jinit
		addi r1, r1, 1
		bne  r1, r2, iinit
		; C sum = Σ_ij Σ_k A[i][k]*B[k][j]
		i2f  f10, r0        ; total = 0
		addi r1, r0, 0      ; i
	iloop:
		addi r3, r0, 0      ; j
	jloop:
		i2f  f3, r0         ; c = 0
		addi r7, r0, 0      ; k
	kloop:
		mul  r4, r1, r2
		add  r4, r4, r7
		slli r4, r4, 3
		add  r6, r20, r4
		fld  f1, 0(r6)      ; A[i][k]
		mul  r4, r7, r2
		add  r4, r4, r3
		slli r4, r4, 3
		add  r6, r21, r4
		fld  f2, 0(r6)      ; B[k][j]
		fmul f4, f1, f2
		fadd f3, f3, f4
		addi r7, r7, 1
		bne  r7, r2, kloop
		fadd f10, f10, f3
		addi r3, r3, 1
		bne  r3, r2, jloop
		addi r1, r1, 1
		bne  r1, r2, iloop
		f2i  r10, f10
		halt
	`, n)
	return Kernel{
		Name:        "matmul",
		Description: "dense FP matrix multiply (SPECfp-like)",
		Program:     asm.MustAssemble(src),
		ResultReg:   10,
		Expected:    uint64(int64(sum)),
	}
}

// VecDot computes the dot product of two FP vectors v[i] = i, w[i] = 2i.
func VecDot(n int) Kernel {
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(i) * float64(2*i)
	}
	src := fmt.Sprintf(`
		addi r2, r0, %d
		lui  r20, 0x5151
		slli r20, r20, 16
		lui  r21, 0x5252
		slli r21, r21, 16
		addi r1, r0, 0
	init:
		slli r4, r1, 3
		i2f  f1, r1
		add  r6, r20, r4
		fst  f1, 0(r6)
		add  r5, r1, r1
		i2f  f2, r5
		add  r6, r21, r4
		fst  f2, 0(r6)
		addi r1, r1, 1
		bne  r1, r2, init
		i2f  f10, r0
		addi r1, r0, 0
	dot:
		slli r4, r1, 3
		add  r6, r20, r4
		fld  f1, 0(r6)
		add  r6, r21, r4
		fld  f2, 0(r6)
		fmul f3, f1, f2
		fadd f10, f10, f3
		addi r1, r1, 1
		bne  r1, r2, dot
		f2i  r10, f10
		halt
	`, n)
	return Kernel{
		Name:        "vecdot",
		Description: "FP vector dot product; streaming loads (SPECfp-like)",
		Program:     asm.MustAssemble(src),
		ResultReg:   10,
		Expected:    uint64(int64(sum)),
	}
}

// StringCount writes a byte string into memory and counts occurrences of
// a target byte — byte-granularity loads as in media/string workloads.
func StringCount(n int) Kernel {
	// The string is bytes (i*7+3)&0x7f; count occurrences of bytes
	// equal to 0x24 modulo the pattern.
	var want uint64
	for i := 0; i < n; i++ {
		if (i*7+3)&0x7f == 0x24 {
			want++
		}
	}
	src := fmt.Sprintf(`
		lui  r5, 0x6161
		slli r5, r5, 16
		addi r2, r0, %d
		addi r1, r0, 0
	init:
		mul  r3, r1, r0
		addi r3, r1, 0
		slli r4, r3, 3      ; i*8
		sub  r4, r4, r3     ; i*7
		addi r4, r4, 3
		andi r4, r4, 0x7f
		add  r6, r5, r1
		sb   r4, 0(r6)
		addi r1, r1, 1
		bne  r1, r2, init
		addi r1, r0, 0
		addi r7, r0, 0      ; count
		addi r8, r0, 0x24   ; target
	scan:
		add  r6, r5, r1
		lb   r3, 0(r6)
		bne  r3, r8, skip
		addi r7, r7, 1
	skip:
		addi r1, r1, 1
		bne  r1, r2, scan
		halt
	`, n)
	return Kernel{
		Name:        "strcount",
		Description: "byte-stream scan; sub-word loads (MediaBench-like)",
		Program:     asm.MustAssemble(src),
		ResultReg:   7,
		Expected:    want,
	}
}
