package kernels

import (
	"fmt"

	"thermalherd/internal/asm"
)

// This file adds the second wave of kernels: recursive call-heavy code
// (RAS/iBTB behaviour), fixed-point DSP (MediaBench-like multiply
// accumulate), table-driven CRC (full-width mixing through memory), byte
// histogramming, and block copies.

// All2 returns the extended kernel set (the originals plus these).
func All2() []Kernel {
	return append(All(),
		RecursiveFib(18),
		FIRFilter(96, 8),
		Histogram(256),
		CRC32(64),
		MemCopy(128),
	)
}

// RecursiveFib computes fib(n) by naive recursion — a deep, call-heavy
// workload exercising the return address stack.
func RecursiveFib(n int) Kernel {
	var fib func(int) uint64
	fib = func(n int) uint64 {
		if n < 2 {
			return uint64(n)
		}
		return fib(n-1) + fib(n-2)
	}
	// Calling convention: argument in r1, result in r2, stack r30,
	// link r31. Frame: [ret][saved r1][saved partial].
	src := fmt.Sprintf(`
		addi r1, r0, %d
		jal  r31, fib
		halt
	fib:
		slti r3, r1, 2
		beq  r3, r0, recurse
		add  r2, r1, r0      ; base case: fib(n) = n
		jalr r0, r31, 0
	recurse:
		addi r30, r30, -24
		st   r31, 0(r30)
		st   r1, 8(r30)
		addi r1, r1, -1
		jal  r31, fib        ; fib(n-1)
		st   r2, 16(r30)
		ld   r1, 8(r30)
		addi r1, r1, -2
		jal  r31, fib        ; fib(n-2)
		ld   r3, 16(r30)
		add  r2, r2, r3
		ld   r31, 0(r30)
		addi r30, r30, 24
		jalr r0, r31, 0
	`, n)
	return Kernel{
		Name:        "recfib",
		Description: "naive recursive Fibonacci; deep call stack (RAS-heavy)",
		Program:     asm.MustAssemble(src),
		ResultReg:   2,
		Expected:    fib(n),
	}
}

// FIRFilter runs a fixed-point finite-impulse-response filter over a
// synthetic signal: the multiply-accumulate inner loop of MediaBench
// audio codecs, with 16-bit samples and taps.
func FIRFilter(samples, taps int) Kernel {
	// Signal x[i] = (i*37+11) & 0x3fff; taps h[k] = k+1. Output checksum
	// = sum of y[i] & 0xffff over valid positions.
	x := make([]uint64, samples)
	for i := range x {
		x[i] = uint64(i*37+11) & 0x3fff
	}
	var want uint64
	for i := taps - 1; i < samples; i++ {
		var y uint64
		for k := 0; k < taps; k++ {
			y += x[i-k] * uint64(k+1)
		}
		want += y & 0xffff
	}
	src := fmt.Sprintf(`
		lui  r5, 0x7171
		slli r5, r5, 16      ; signal base
		addi r2, r0, %d      ; samples
		addi r9, r0, %d      ; taps
		; init signal
		addi r1, r0, 0
	init:
		addi r3, r1, 0
		slli r4, r3, 5       ; i*32
		addi r6, r3, 0
		slli r6, r6, 2       ; i*4
		add  r4, r4, r6      ; i*36
		add  r4, r4, r3      ; i*37
		addi r4, r4, 11
		andi r4, r4, 0x3fff
		slli r6, r1, 3
		add  r6, r5, r6
		st   r4, 0(r6)
		addi r1, r1, 1
		bne  r1, r2, init
		; filter
		addi r10, r9, -1     ; i = taps-1
		addi r12, r0, 0      ; checksum
	outer:
		addi r7, r0, 0       ; k
		addi r11, r0, 0      ; y
	inner:
		sub  r3, r10, r7     ; i-k
		slli r4, r3, 3
		add  r4, r5, r4
		ld   r6, 0(r4)       ; x[i-k]
		addi r8, r7, 1       ; h[k] = k+1
		mul  r6, r6, r8
		add  r11, r11, r6
		addi r7, r7, 1
		bne  r7, r9, inner
		andi r11, r11, 0xffff
		add  r12, r12, r11
		addi r10, r10, 1
		bne  r10, r2, outer
		halt
	`, samples, taps)
	return Kernel{
		Name:        "fir",
		Description: "fixed-point FIR filter; 16-bit multiply-accumulate (MediaBench-like)",
		Program:     asm.MustAssemble(src),
		ResultReg:   12,
		Expected:    want,
	}
}

// Histogram counts byte values of a pseudo-random string into 16 bins —
// data-dependent store addresses.
func Histogram(n int) Kernel {
	var bins [16]uint64
	for i := 0; i < n; i++ {
		b := (i*61 + 7) & 0xff
		bins[b>>4]++
	}
	var want uint64
	for i, c := range bins {
		want += c * uint64(i+1)
	}
	src := fmt.Sprintf(`
		lui  r5, 0x8181
		slli r5, r5, 16      ; string base
		lui  r15, 0x8282
		slli r15, r15, 16    ; bins base
		addi r2, r0, %d
		; init string: s[i] = (i*61+7) & 0xff
		addi r1, r0, 0
	init:
		addi r3, r1, 0
		slli r4, r3, 6       ; i*64
		sub  r4, r4, r3      ; i*63
		sub  r4, r4, r3      ; i*62
		sub  r4, r4, r3      ; i*61
		addi r4, r4, 7
		andi r4, r4, 0xff
		add  r6, r5, r1
		sb   r4, 0(r6)
		addi r1, r1, 1
		bne  r1, r2, init
		; zero the 16 bins
		addi r1, r0, 0
		addi r7, r0, 16
	zero:
		slli r4, r1, 3
		add  r4, r15, r4
		st   r0, 0(r4)
		addi r1, r1, 1
		bne  r1, r7, zero
		; histogram
		addi r1, r0, 0
	scan:
		add  r6, r5, r1
		lb   r3, 0(r6)
		andi r3, r3, 0xff
		srli r3, r3, 4       ; bin = b >> 4
		slli r3, r3, 3
		add  r3, r15, r3
		ld   r4, 0(r3)
		addi r4, r4, 1
		st   r4, 0(r3)
		addi r1, r1, 1
		bne  r1, r2, scan
		; checksum: sum bins[i]*(i+1)
		addi r1, r0, 0
		addi r12, r0, 0
	csum:
		slli r4, r1, 3
		add  r4, r15, r4
		ld   r3, 0(r4)
		addi r6, r1, 1
		mul  r3, r3, r6
		add  r12, r12, r3
		addi r1, r1, 1
		bne  r1, r7, csum
		halt
	`, n)
	return Kernel{
		Name:        "histogram",
		Description: "byte histogram; data-dependent addresses (MiBench-like)",
		Program:     asm.MustAssemble(src),
		ResultReg:   12,
		Expected:    want,
	}
}

// CRC32 runs a (simplified, table-free) bitwise CRC over words — a
// full-width shift/xor mixing loop like MiBench's crc32.
func CRC32(words int) Kernel {
	const poly = 0xedb88320
	crc := ^uint64(0) & 0xffffffff
	for i := 0; i < words; i++ {
		crc ^= uint64(i*2654435761) & 0xffffffff
		for b := 0; b < 8; b++ {
			if crc&1 != 0 {
				crc = (crc >> 1) ^ poly
			} else {
				crc >>= 1
			}
		}
	}
	src := fmt.Sprintf(`
		lui  r2, 0xffff
		ori  r2, r2, 0xffff  ; crc = 0xffffffff
		lui  r3, 0xedb8
		ori  r3, r3, 0x8320  ; poly
		lui  r4, 0x9e37
		ori  r4, r4, 0x79b1  ; Knuth multiplier 2654435761
		lui  r14, 0xffff
		ori  r14, r14, 0xffff ; 32-bit mask
		addi r5, r0, %d      ; words
		addi r1, r0, 0       ; i
	loop:
		mul  r6, r1, r4
		and  r6, r6, r14
		xor  r2, r2, r6
		addi r7, r0, 8       ; bit counter
	bits:
		andi r8, r2, 1
		srli r2, r2, 1
		beq  r8, r0, nobit
		xor  r2, r2, r3
	nobit:
		addi r7, r7, -1
		bne  r7, r0, bits
		addi r1, r1, 1
		bne  r1, r5, loop
		halt
	`, words)
	return Kernel{
		Name:        "crc32",
		Description: "bitwise CRC-32; full-width shift/xor mixing (MiBench crc32-like)",
		Program:     asm.MustAssemble(src),
		ResultReg:   2,
		Expected:    crc,
	}
}

// MemCopy copies an n-word buffer and checksums the destination —
// streaming loads and stores.
func MemCopy(n int) Kernel {
	var want uint64
	for i := 0; i < n; i++ {
		want += uint64(i)*3 + 5
	}
	src := fmt.Sprintf(`
		lui  r5, 0x9191
		slli r5, r5, 16      ; src
		lui  r15, 0x9292
		slli r15, r15, 16    ; dst
		addi r2, r0, %d
		addi r1, r0, 0
	init:
		slli r4, r1, 1
		add  r4, r4, r1      ; i*3
		addi r4, r4, 5
		slli r6, r1, 3
		add  r6, r5, r6
		st   r4, 0(r6)
		addi r1, r1, 1
		bne  r1, r2, init
		addi r1, r0, 0
	copy:
		slli r6, r1, 3
		add  r7, r5, r6
		ld   r3, 0(r7)
		add  r7, r15, r6
		st   r3, 0(r7)
		addi r1, r1, 1
		bne  r1, r2, copy
		addi r1, r0, 0
		addi r12, r0, 0
	csum:
		slli r6, r1, 3
		add  r7, r15, r6
		ld   r3, 0(r7)
		add  r12, r12, r3
		addi r1, r1, 1
		bne  r1, r2, csum
		halt
	`, n)
	return Kernel{
		Name:        "memcopy",
		Description: "block copy with checksum; streaming loads/stores",
		Program:     asm.MustAssemble(src),
		ResultReg:   12,
		Expected:    want,
	}
}
