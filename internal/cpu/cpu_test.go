package cpu

import (
	"testing"

	"thermalherd/internal/asm"
	"thermalherd/internal/config"
	"thermalherd/internal/core"
	"thermalherd/internal/emu"
	"thermalherd/internal/floorplan"
	"thermalherd/internal/isa"
	"thermalherd/internal/trace"
)

// aluStream builds n independent low-width ALU instructions walking a
// small loop of PCs.
func aluStream(n int) []trace.Inst {
	insts := make([]trace.Inst, n)
	for i := range insts {
		insts[i] = trace.Inst{
			PC:     0x1000 + uint64(4*(i%64)),
			Op:     isa.OpAdd,
			Class:  isa.ClassALU,
			Dest:   int16(1 + (i % 8)),
			Src1:   trace.RegNone,
			Src2:   trace.RegNone,
			Result: uint64(i % 100),
		}
	}
	return insts
}

// chainStream builds a serial dependence chain: each instruction reads
// the previous result.
func chainStream(n int) []trace.Inst {
	insts := make([]trace.Inst, n)
	for i := range insts {
		insts[i] = trace.Inst{
			PC:     0x1000 + uint64(4*i),
			Op:     isa.OpAdd,
			Class:  isa.ClassALU,
			Dest:   1,
			Src1:   1,
			Src2:   trace.RegNone,
			Result: uint64(i % 50),
		}
	}
	return insts
}

func runStream(t *testing.T, cfg config.Machine, insts []trace.Inst) *Stats {
	t.Helper()
	c, err := New(cfg, trace.NewSliceSource(insts))
	if err != nil {
		t.Fatal(err)
	}
	return c.Run(uint64(len(insts)))
}

func TestIndependentALUStreamHighIPC(t *testing.T) {
	s := runStream(t, config.Baseline(), aluStream(20000))
	if s.Insts != 20000 {
		t.Fatalf("committed %d, want 20000", s.Insts)
	}
	if ipc := s.IPC(); ipc < 2.5 {
		t.Errorf("independent ALU IPC = %.2f, want >= 2.5 (commit-width bound 4)", ipc)
	}
	if ipc := s.IPC(); ipc > 4.0 {
		t.Errorf("IPC = %.2f exceeds commit width", ipc)
	}
}

func TestDependentChainIPCNearOne(t *testing.T) {
	s := runStream(t, config.Baseline(), chainStream(10000))
	ipc := s.IPC()
	if ipc < 0.7 || ipc > 1.2 {
		t.Errorf("serial chain IPC = %.2f, want ~1.0", ipc)
	}
}

func TestAllInstsCommitExactlyOnce(t *testing.T) {
	for _, n := range []int{1, 7, 100, 5000} {
		s := runStream(t, config.Baseline(), aluStream(n))
		if s.Insts != uint64(n) {
			t.Errorf("n=%d: committed %d", n, s.Insts)
		}
	}
}

func TestBranchMispredictionsHurtIPC(t *testing.T) {
	mkBranches := func(pattern func(i int) bool) []trace.Inst {
		insts := make([]trace.Inst, 20000)
		for i := range insts {
			if i%4 == 3 {
				taken := pattern(i)
				target := uint64(0x1000 + 4*((i+1)%256))
				insts[i] = trace.Inst{
					PC: 0x1000 + uint64(4*(i%256)), Op: isa.OpBne, Class: isa.ClassBranch,
					Dest: trace.RegNone, Src1: 1, Src2: trace.RegNone,
					Taken: taken, Target: target,
				}
			} else {
				insts[i] = trace.Inst{
					PC: 0x1000 + uint64(4*(i%256)), Op: isa.OpAdd, Class: isa.ClassALU,
					Dest: int16(1 + i%8), Src1: trace.RegNone, Src2: trace.RegNone,
					Result: 5,
				}
			}
		}
		return insts
	}
	// Note: these streams are synthetic; control-flow consistency with
	// PCs is not required by the model (it consumes resolved outcomes).
	predictable := runStream(t, config.Baseline(), mkBranches(func(i int) bool { return true }))
	rng := uint32(12345)
	random := runStream(t, config.Baseline(), mkBranches(func(i int) bool {
		rng = rng*1664525 + 1013904223
		return (rng>>13)&1 == 0
	}))
	if random.IPC() >= predictable.IPC() {
		t.Errorf("random branches IPC (%.2f) not below predictable (%.2f)",
			random.IPC(), predictable.IPC())
	}
	if random.BranchMispred == 0 {
		t.Error("random branch stream had no mispredictions")
	}
}

// memStream builds loads sweeping a working set.
func memStream(n int, ws uint64) []trace.Inst {
	insts := make([]trace.Inst, n)
	rng := uint64(99)
	for i := range insts {
		rng = rng*6364136223846793005 + 1442695040888963407
		if i%3 == 0 {
			insts[i] = trace.Inst{
				PC: 0x1000 + uint64(4*(i%256)), Op: isa.OpLd, Class: isa.ClassLoad,
				Dest: int16(1 + i%8), Src1: trace.RegNone, Src2: trace.RegNone,
				MemAddr: 0x2000_0000_0000 + (rng % ws &^ 7), MemSize: 8,
				Result: 7,
			}
		} else {
			insts[i] = trace.Inst{
				PC: 0x1000 + uint64(4*(i%256)), Op: isa.OpAdd, Class: isa.ClassALU,
				Dest: int16(1 + i%8), Src1: trace.RegNone, Src2: trace.RegNone,
				Result: uint64(i),
			}
		}
	}
	return insts
}

func TestMemoryBoundStreamsSlower(t *testing.T) {
	small := runStream(t, config.Baseline(), memStream(20000, 8<<10))
	big := runStream(t, config.Baseline(), memStream(20000, 64<<20))
	if big.IPC() >= small.IPC() {
		t.Errorf("64MB working set IPC (%.2f) not below 8KB (%.2f)", big.IPC(), small.IPC())
	}
	if big.DRAMAccesses == 0 {
		t.Error("big working set generated no DRAM accesses")
	}
	if small.L1DMissRate > 0.1 {
		t.Errorf("8KB working set L1D miss rate = %.3f, want small", small.L1DMissRate)
	}
}

func TestFastConfigLosesIPCOnlyWhenMemoryBound(t *testing.T) {
	// Fast raises the clock, which only shows up as more DRAM cycles.
	cpuBound := aluStream(20000)
	base := runStream(t, config.Baseline(), cpuBound)
	fast := runStream(t, config.Fast(), cpuBound)
	if diff := base.IPC() - fast.IPC(); diff > 0.01 {
		t.Errorf("Fast lost %.3f IPC on a CPU-bound stream, want ~0", diff)
	}
	memBound := memStream(20000, 64<<20)
	baseM := runStream(t, config.Baseline(), memBound)
	fastM := runStream(t, config.Fast(), memBound)
	if fastM.IPC() >= baseM.IPC() {
		t.Errorf("Fast IPC (%.3f) not below Base (%.3f) on memory-bound stream",
			fastM.IPC(), baseM.IPC())
	}
}

func TestTHConfigRunsAndTracksWidthEvents(t *testing.T) {
	// A stream mixing low- and full-width producers per PC.
	insts := make([]trace.Inst, 20000)
	for i := range insts {
		full := i%64 >= 48 // PCs 48..63 produce full-width values
		res := uint64(5)
		if full {
			res = 1 << 40
		}
		insts[i] = trace.Inst{
			PC: 0x1000 + uint64(4*(i%64)), Op: isa.OpAdd, Class: isa.ClassALU,
			Dest: int16(1 + i%8), Src1: int16(1 + (i+1)%8), Src2: trace.RegNone,
			Result: res,
		}
	}
	s := runStream(t, config.TH(), insts)
	if s.WidthPredictions == 0 {
		t.Fatal("TH config made no width predictions")
	}
	if s.WidthAccuracy < 0.9 {
		t.Errorf("width accuracy = %.3f on biased stream, want >= 0.9", s.WidthAccuracy)
	}
}

func TestTHWidthStallsOccurOnAdversarialStream(t *testing.T) {
	// Alternate low/full per PC so the two-bit counters keep
	// mispredicting unsafely.
	insts := make([]trace.Inst, 20000)
	for i := range insts {
		res := uint64(3)
		if (i/64)%2 == 1 {
			res = 1 << 40
		}
		insts[i] = trace.Inst{
			PC: 0x1000 + uint64(4*(i%64)), Op: isa.OpAdd, Class: isa.ClassALU,
			Dest: int16(1 + i%8), Src1: int16(1 + (i+1)%8), Src2: trace.RegNone,
			Result: res,
		}
	}
	s := runStream(t, config.TH(), insts)
	if s.RFGroupStalls == 0 && s.ALUInputStalls == 0 && s.ALUReexecutes == 0 {
		t.Error("adversarial width stream caused no width-misprediction penalties")
	}
	base := runStream(t, config.Baseline(), insts)
	if s.IPC() > base.IPC() {
		t.Errorf("TH IPC (%.3f) above Base (%.3f) on adversarial stream", s.IPC(), base.IPC())
	}
}

func TestPipeConfigImprovesMispredictHeavyStream(t *testing.T) {
	insts := make([]trace.Inst, 30000)
	rng := uint32(7)
	for i := range insts {
		if i%5 == 4 {
			rng = rng*1664525 + 1013904223
			insts[i] = trace.Inst{
				PC: 0x1000 + uint64(4*(i%1024)), Op: isa.OpBne, Class: isa.ClassBranch,
				Dest: trace.RegNone, Src1: 1, Src2: trace.RegNone,
				Taken: (rng>>13)&1 == 0, Target: 0x1000 + uint64(4*((i+1)%1024)),
			}
		} else {
			insts[i] = trace.Inst{
				PC: 0x1000 + uint64(4*(i%1024)), Op: isa.OpAdd, Class: isa.ClassALU,
				Dest: int16(1 + i%8), Src1: trace.RegNone, Src2: trace.RegNone, Result: 2,
			}
		}
	}
	base := runStream(t, config.Baseline(), insts)
	pipe := runStream(t, config.Pipe(), insts)
	if pipe.IPC() <= base.IPC() {
		t.Errorf("Pipe IPC (%.3f) not above Base (%.3f) on mispredict-heavy stream",
			pipe.IPC(), base.IPC())
	}
}

func TestThreeDActivityIsHerded(t *testing.T) {
	p, err := trace.ProfileByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	run := func(cfg config.Machine) *Stats {
		c, err := New(cfg, trace.NewGenerator(p))
		if err != nil {
			t.Fatal(err)
		}
		return c.Run(60000)
	}
	th := run(config.ThreeD())
	noTH := run(config.ThreeDNoTH())

	// Herding must concentrate integer-execution activity on the top die.
	thShare := th.BlockDie[floorplan.BlkIntExec].TopDieShare()
	noTHShare := noTH.BlockDie[floorplan.BlkIntExec].TopDieShare()
	if thShare <= noTHShare {
		t.Errorf("TH int-exec top-die share (%.3f) not above no-TH (%.3f)", thShare, noTHShare)
	}
	if noTHShare > 0.26 {
		t.Errorf("no-TH top-die share = %.3f, want ~0.25 (uniform)", noTHShare)
	}
	// The scheduler allocator must herd.
	if th.RSTopDieShare < 0.5 {
		t.Errorf("RS top-die allocation share = %.3f, want >= 0.5", th.RSTopDieShare)
	}
	// ROB: the paper reports many more low-width than full-width reads.
	if th.RegLowReads <= th.RegFullReads {
		t.Errorf("low-width reg reads (%d) not above full-width (%d)",
			th.RegLowReads, th.RegFullReads)
	}
}

func TestWidthAccuracyOnSuiteWorkload(t *testing.T) {
	// The paper reports 97% width prediction accuracy overall.
	p, err := trace.ProfileByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(config.TH(), trace.NewGenerator(p))
	if err != nil {
		t.Fatal(err)
	}
	c.Warmup(100000)
	s := c.Run(100000)
	if s.WidthAccuracy < 0.9 {
		t.Errorf("width accuracy on gzip = %.3f, want >= 0.9", s.WidthAccuracy)
	}
}

func TestRunsOnEmulatorSource(t *testing.T) {
	prog := asm.MustAssemble(`
		addi r1, r0, 200
		addi r2, r0, 0
	loop:
		add  r2, r2, r1
		addi r1, r1, -1
		bne  r1, r0, loop
		halt
	`)
	m := emu.New(prog)
	c, err := New(config.ThreeD(), emu.NewSource(m, 0))
	if err != nil {
		t.Fatal(err)
	}
	s := c.Run(10000)
	if s.Insts == 0 {
		t.Fatal("no instructions committed from emulator source")
	}
	if s.IPC() <= 0 {
		t.Error("non-positive IPC")
	}
	// Short loop, highly predictable: good branch accuracy expected.
	if s.DirAccuracy < 0.9 {
		t.Errorf("direction accuracy on counted loop = %.3f, want >= 0.9", s.DirAccuracy)
	}
}

func TestSourceExhaustionTerminates(t *testing.T) {
	s := runStream(t, config.Baseline(), aluStream(10))
	if s.Insts != 10 {
		t.Errorf("committed %d, want 10 (source exhaustion)", s.Insts)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := config.Baseline()
	cfg.RSSize = 30 // not divisible by 4 dies
	if _, err := New(cfg, trace.NewSliceSource(nil)); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestStoreCommitPath(t *testing.T) {
	insts := make([]trace.Inst, 1000)
	for i := range insts {
		insts[i] = trace.Inst{
			PC: 0x1000 + uint64(4*(i%32)), Op: isa.OpSt, Class: isa.ClassStore,
			Dest: trace.RegNone, Src1: 1, Src2: 2,
			MemAddr: 0x7fff_0000_0000 + uint64(8*(i%16)), MemSize: 8,
			StoreVal: uint64(i),
		}
	}
	s := runStream(t, config.TH(), insts)
	if s.StoreCount != 1000 {
		t.Errorf("stores committed = %d, want 1000", s.StoreCount)
	}
	if s.PAMHitRate < 0.9 {
		t.Errorf("PAM hit rate on same-region stores = %.3f, want >= 0.9", s.PAMHitRate)
	}
}

func TestBlockActivityRecorded(t *testing.T) {
	s := runStream(t, config.ThreeD(), memStream(5000, 64<<10))
	for _, b := range []floorplan.BlockID{
		floorplan.BlkICache, floorplan.BlkDecode, floorplan.BlkROB,
		floorplan.BlkRS, floorplan.BlkIntExec, floorplan.BlkDCache,
		floorplan.BlkLSQ, floorplan.BlkDTLB,
	} {
		if s.BlockAccesses[b] == 0 {
			t.Errorf("block %v recorded no accesses", b)
		}
	}
}

func TestOccupancyStatsBounded(t *testing.T) {
	s := runStream(t, config.Baseline(), chainStream(5000))
	if s.MeanROBOcc <= 0 || s.MeanROBOcc > 96 {
		t.Errorf("mean ROB occupancy = %.1f out of range", s.MeanROBOcc)
	}
	if s.MeanRSOcc < 0 || s.MeanRSOcc > 32 {
		t.Errorf("mean RS occupancy = %.1f out of range", s.MeanRSOcc)
	}
}

func TestOracleWidthPolicyNoUnsafeStalls(t *testing.T) {
	cfg := config.TH()
	cfg.WidthPolicy = core.PolicyOracle
	insts := make([]trace.Inst, 10000)
	for i := range insts {
		res := uint64(3)
		if i%3 == 0 {
			res = 1 << 30
		}
		insts[i] = trace.Inst{
			PC: 0x1000 + uint64(4*(i%64)), Op: isa.OpAdd, Class: isa.ClassALU,
			Dest: int16(1 + i%8), Src1: int16(1 + (i+1)%8), Src2: trace.RegNone,
			Result: res,
		}
	}
	c, err := New(cfg, trace.NewSliceSource(insts))
	if err != nil {
		t.Fatal(err)
	}
	s := c.Run(uint64(len(insts)))
	if s.ALUReexecutes != 0 {
		t.Errorf("oracle policy caused %d re-executions, want 0", s.ALUReexecutes)
	}
}
