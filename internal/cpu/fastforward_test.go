package cpu

import (
	"testing"

	"thermalherd/internal/config"
	"thermalherd/internal/floorplan"
	"thermalherd/internal/isa"
	"thermalherd/internal/trace"
)

const decodeBlock = floorplan.BlkDecode

// Shorthands for building trace streams in tests.
const (
	opSt       = isa.OpSt
	opLd       = isa.OpLd
	classStore = isa.ClassStore
	classLoad  = isa.ClassLoad
)

// TestFastForwardWarmsCaches: after fast-forwarding, the measured phase
// should see far fewer cold misses than a cold start.
func TestFastForwardWarmsCaches(t *testing.T) {
	p, err := trace.ProfileByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	run := func(ff uint64) *Stats {
		c, err := New(config.Baseline(), trace.NewGenerator(p))
		if err != nil {
			t.Fatal(err)
		}
		c.FastForward(ff)
		return c.Run(60000)
	}
	cold := run(0)
	warm := run(2_000_000)
	if warm.DRAMAccesses >= cold.DRAMAccesses {
		t.Errorf("fast-forward did not reduce DRAM accesses: %d vs %d",
			warm.DRAMAccesses, cold.DRAMAccesses)
	}
	if warm.IPC() <= cold.IPC() {
		t.Errorf("fast-forward did not improve measured IPC: %.3f vs %.3f",
			warm.IPC(), cold.IPC())
	}
	if warm.DirAccuracy <= cold.DirAccuracy {
		t.Errorf("fast-forward did not warm the branch predictor: %.3f vs %.3f",
			warm.DirAccuracy, cold.DirAccuracy)
	}
}

// TestFastForwardApproximatesCycleWarmup: both warming methods should
// land the measured IPC in the same neighbourhood.
func TestFastForwardApproximatesCycleWarmup(t *testing.T) {
	p, err := trace.ProfileByName("susan_s")
	if err != nil {
		t.Fatal(err)
	}
	viaFF := func() float64 {
		c, _ := New(config.ThreeD(), trace.NewGenerator(p))
		c.FastForward(600_000)
		c.Warmup(50_000)
		return c.Run(100_000).IPC()
	}()
	viaCycle := func() float64 {
		c, _ := New(config.ThreeD(), trace.NewGenerator(p))
		c.Warmup(650_000)
		return c.Run(100_000).IPC()
	}()
	ratio := viaFF / viaCycle
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("FF-warmed IPC %.3f vs cycle-warmed %.3f (ratio %.3f), want within 10%%",
			viaFF, viaCycle, ratio)
	}
}

// TestFastForwardDiscardsStats: statistics must be clean after FF.
func TestFastForwardDiscardsStats(t *testing.T) {
	p, _ := trace.ProfileByName("gzip")
	c, _ := New(config.ThreeD(), trace.NewGenerator(p))
	c.FastForward(100_000)
	s := c.Run(1000)
	// Commit is up to 4-wide, so the run may overshoot the target by up
	// to CommitWidth-1 instructions.
	if s.Insts < 1000 || s.Insts > 1003 {
		t.Errorf("measured insts = %d, want 1000..1003", s.Insts)
	}
	if s.Cycles == 0 || s.Cycles > 100_000 {
		t.Errorf("measured cycles = %d look contaminated by the FF phase", s.Cycles)
	}
}

// TestDecodeHerdingGradient: with herding, decode dependence-check
// activity leans toward the top die; without, it is uniform.
func TestDecodeHerdingGradient(t *testing.T) {
	p, _ := trace.ProfileByName("gzip")
	run := func(cfg config.Machine) *Stats {
		c, _ := New(cfg, trace.NewGenerator(p))
		return c.Run(50000)
	}
	th := run(config.ThreeD())
	noTH := run(config.ThreeDNoTH())
	thDecode := th.BlockDie[decodeBlock].TopDieShare()
	noTHDecode := noTH.BlockDie[decodeBlock].TopDieShare()
	if thDecode <= noTHDecode {
		t.Errorf("herded decode top-die share (%.3f) not above uniform (%.3f)",
			thDecode, noTHDecode)
	}
}

// TestStoreToLoadForwarding: a load hitting an in-flight store's address
// must be counted as forwarded and avoid the memory hierarchy.
func TestStoreToLoadForwarding(t *testing.T) {
	// Alternating store/load to the same address, far apart in the
	// address space from anything else.
	insts := make([]trace.Inst, 2000)
	addr := uint64(0x7000_0000_0000)
	for i := range insts {
		if i%2 == 0 {
			insts[i] = trace.Inst{
				PC: 0x1000 + uint64(4*(i%64)), Op: opSt, Class: classStore,
				Dest: -1, Src1: 1, Src2: 2,
				MemAddr: addr, MemSize: 8, StoreVal: 7,
			}
		} else {
			insts[i] = trace.Inst{
				PC: 0x1000 + uint64(4*(i%64)), Op: opLd, Class: classLoad,
				Dest: int16(1 + i%8), Src1: 1, Src2: -1,
				MemAddr: addr, MemSize: 8, Result: 7,
			}
		}
	}
	c, err := New(config.Baseline(), trace.NewSliceSource(insts))
	if err != nil {
		t.Fatal(err)
	}
	s := c.Run(uint64(len(insts)))
	if s.ForwardedLoads == 0 {
		t.Error("no loads forwarded despite same-address in-flight stores")
	}
	if s.ForwardedLoads > s.LoadCount {
		t.Errorf("forwarded (%d) exceeds loads (%d)", s.ForwardedLoads, s.LoadCount)
	}
}

// TestIndirectBTBLearnsNonReturnTargets: indirect jumps with no matching
// call (so the RAS cannot help) must be predicted by the iBTB once
// trained.
func TestIndirectBTBLearnsNonReturnTargets(t *testing.T) {
	// A repeating pattern of jalr instructions, each PC with a fixed
	// target, interleaved with filler ALU ops.
	insts := make([]trace.Inst, 20000)
	for i := range insts {
		if i%4 == 3 {
			slot := (i / 4) % 8
			pc := uint64(0x2000 + 16*slot)
			insts[i] = trace.Inst{
				PC: pc, Op: isa.OpJalr, Class: isa.ClassJump,
				Dest: -1, Src1: 5, Src2: -1,
				Taken: true, Target: 0x9000 + uint64(64*slot),
			}
		} else {
			insts[i] = trace.Inst{
				PC: 0x1000 + uint64(4*(i%16)), Op: isa.OpAdd, Class: isa.ClassALU,
				Dest: int16(1 + i%8), Src1: -1, Src2: -1, Result: 3,
			}
		}
	}
	c, err := New(config.Baseline(), trace.NewSliceSource(insts))
	if err != nil {
		t.Fatal(err)
	}
	s := c.Run(uint64(len(insts)))
	mispredRate := float64(s.BranchMispred) / float64(s.BranchCount)
	if mispredRate > 0.2 {
		t.Errorf("indirect-jump mispredict rate = %.3f; iBTB should learn fixed targets", mispredRate)
	}
}
