// Package cpu is a trace-driven, cycle-level timing model of the Table 1
// out-of-order superscalar processor, standing in for the paper's
// SimpleScalar/MASE infrastructure. It models fetch (branch prediction,
// BTB, I-cache/ITLB), in-order dispatch into a ROB and reservation
// stations, out-of-order issue constrained by functional units and memory
// ports, the cache hierarchy, and in-order commit.
//
// When the configuration enables Thermal Herding, the model adds the
// paper's Section 3 mechanisms and their costs: width prediction with
// register-file group stalls, ALU input-width stalls and output-width
// re-execution, data-cache partial-value stalls, BTB full-target-read
// bubbles, the herded scheduler allocator, and partial address
// memoization — while accounting switching activity per die for the
// power and thermal models.
package cpu

import (
	"fmt"

	"thermalherd/internal/cache"
	"thermalherd/internal/config"
	"thermalherd/internal/core"
	"thermalherd/internal/floorplan"
	"thermalherd/internal/isa"
	"thermalherd/internal/predictor"
	"thermalherd/internal/trace"
)

const numArchRegs = 64 // 32 int + 32 fp in the shared rename space

type robState uint8

const (
	stDispatched robState = iota
	stIssued
	stDone
)

type robEntry struct {
	inst     trace.Inst
	state    robState
	rs       core.Entry
	inRS     bool
	complete uint64 // cycle the result is available

	predictedLow bool
	hasWidthPred bool
	opAnyFull    bool // an integer operand was full-width (program order)
	srcFull      [2]bool
	resultLow    bool
	mispredicted bool // branch direction/target misprediction
	fpLoad       bool
}

type fetchSlot struct {
	inst         trace.Inst
	predictedLow bool
	hasWidthPred bool
	opAnyFull    bool
	srcFull      [2]bool
	resultLow    bool
	mispredicted bool
}

// Core is one simulated processor core.
type Core struct {
	cfg config.Machine
	src trace.Source

	bpred *predictor.Hybrid
	btb   *predictor.BTB
	ibtb  *predictor.IndirectBTB
	ras   *predictor.RAS
	il1   *cache.Cache
	itlb  *cache.TLB
	dtlb  *cache.TLB
	dmem  *cache.Hierarchy

	wpred   *core.WidthPredictor
	rsAlloc *core.HerdingAllocator
	pam     *core.AddressMemo

	rob      []robEntry
	robHead  int
	robTail  int
	robCount int
	ifq      []fetchSlot

	// Compact mirrors of the hot ROB fields, scanned every cycle by
	// the issue logic; keeping them in dense arrays (rather than
	// walking the large robEntry structs) is a significant
	// simulation-speed win.
	robState    []robState
	robComplete []uint64
	robSrc      [][2]int16

	regReady [numArchRegs]uint64
	// regIsLow tracks, in program order at fetch time, whether each
	// architectural register's latest value is low-width — the state
	// the width memoization bits of the renamed physical registers
	// would expose to each instruction's register read.
	regIsLow [numArchRegs]bool

	lqUsed, sqUsed int
	// sqAddrs holds the 8-byte-aligned addresses of in-flight stores
	// (dispatched, not yet committed) for store-to-load forwarding.
	sqAddrs map[uint64]int

	cycle            uint64
	fetchResumeAt    uint64
	dispatchBlockedU uint64
	redirectPending  bool // a mispredicted branch is in flight; fetch stalled
	srcDone          bool

	// Non-pipelined units.
	mulDivFree uint64
	fpDivFree  uint64

	stats         Stats
	statCycleBase uint64
}

// Stats aggregates everything the experiments need from one run.
type Stats struct {
	Cycles uint64
	Insts  uint64

	// Front end.
	BranchCount   uint64
	BranchMispred uint64
	BTBFullStalls uint64
	ICacheMisses  uint64
	DirAccuracy   float64
	BTBHitRate    float64

	// Thermal Herding events.
	WidthPredictions uint64
	WidthAccuracy    float64
	WidthUnsafeRate  float64
	RFGroupStalls    uint64
	ALUInputStalls   uint64
	ALUReexecutes    uint64
	DCacheUnsafe     uint64
	PAMHitRate       float64
	PV               core.PVStats
	RSTopDieShare    float64
	MeanBroadcastDie float64

	// Memory system.
	L1DMissRate  float64
	L2MissRate   float64
	DRAMAccesses uint64
	LoadCount    uint64
	StoreCount   uint64
	// ForwardedLoads counts loads satisfied by store-to-load forwarding
	// from an in-flight older store in the store queue.
	ForwardedLoads uint64

	// Register (ROB/physical register) width behaviour (Section 5.3).
	RegLowReads   uint64
	RegFullReads  uint64
	RegLowWrites  uint64
	RegFullWrites uint64

	// WidthWords[w] counts integer results needing w 16-bit words
	// (w in 1..4) — the paper's Section 3 premise that most 64-bit
	// integer values need 16 or fewer bits.
	WidthWords [5]uint64

	// Per-block activity for the power model: access counts and, for 3D
	// configurations, the per-die word activity of each block.
	BlockAccesses [floorplan.NumBlocks]uint64
	BlockDie      [floorplan.NumBlocks]core.DieActivity

	// Occupancy (averaged over cycles).
	MeanROBOcc float64
	MeanRSOcc  float64
}

// IPC returns committed instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Insts) / float64(s.Cycles)
}

// IPns returns instructions per nanosecond at the given clock.
func (s *Stats) IPns(clockGHz float64) float64 { return s.IPC() * clockGHz }

// New builds a core for cfg consuming instructions from src.
func New(cfg config.Machine, src trace.Source) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l1d := cache.New(cache.Config{Name: "l1d", Size: cfg.L1Size, Ways: cfg.L1Ways, LineSize: cfg.LineSize})
	l2 := cache.New(cache.Config{Name: "l2", Size: cfg.L2Size, Ways: cfg.L2Ways, LineSize: cfg.LineSize})
	c := &Core{
		cfg:     cfg,
		src:     src,
		bpred:   predictor.NewHybrid(),
		btb:     predictor.NewBTB(cfg.BTBEntries, cfg.BTBWays),
		ibtb:    predictor.NewIndirectBTB(cfg.IBTBEntries, cfg.IBTBWays),
		ras:     predictor.NewRAS(cfg.RASDepth),
		il1:     cache.New(cache.Config{Name: "l1i", Size: cfg.L1Size, Ways: cfg.L1Ways, LineSize: cfg.LineSize}),
		itlb:    cache.NewTLB("itlb", cfg.ITLBEntries, cfg.TLBWays),
		dtlb:    cache.NewTLB("dtlb", cfg.DTLBEntries, cfg.TLBWays),
		dmem:    cache.NewHierarchy(l1d, l2, cfg.L1Latency, cfg.L2Latency, cfg.DRAMCycles()),
		wpred:   core.NewWidthPredictor(cfg.WidthPredEntries),
		rsAlloc: core.NewHerdingAllocator(cfg.RSSize, cfg.AllocPolicy),
		pam:     core.NewAddressMemo(),
		rob:     make([]robEntry, cfg.ROBSize),
		ifq:     make([]fetchSlot, 0, cfg.IFQSize),
		sqAddrs: make(map[uint64]int, cfg.SQSize),

		robState:    make([]robState, cfg.ROBSize),
		robComplete: make([]uint64, cfg.ROBSize),
		robSrc:      make([][2]int16, cfg.ROBSize),
	}
	for i := range c.regIsLow {
		c.regIsLow[i] = true
	}
	return c, nil
}

// Run simulates until maxInsts further instructions commit or the
// source is exhausted, and returns the statistics. Call Warmup first to
// exclude cold-start effects from the measurement.
func (c *Core) Run(maxInsts uint64) *Stats {
	occROB, occRS := c.runLoop(c.stats.Insts + maxInsts)
	c.finalizeStats(occROB, occRS)
	return &c.stats
}

// Warmup runs n instructions through the full cycle-level model to warm
// the caches, branch predictors, width predictor, and memoization state,
// then discards all statistics so that measurement starts from a hot
// microarchitectural state — the role SimPoint warmup plays in the
// paper's methodology.
func (c *Core) Warmup(n uint64) {
	c.runLoop(c.stats.Insts + n)
	c.ResetStats()
}

// FastForward functionally warms the microarchitectural state — caches,
// TLBs, branch predictors, BTB, width predictor, PAM — by streaming n
// instructions without cycle-level timing, the counterpart of
// SimpleScalar's fast-forward mode. Statistics are discarded afterwards.
// Follow with a short Warmup to also settle pipeline-occupancy state
// before measuring.
func (c *Core) FastForward(n uint64) {
	for i := uint64(0); i < n && !c.srcDone; i++ {
		in, ok := c.src.Next()
		if !ok {
			c.srcDone = true
			break
		}
		c.il1.Access(in.PC, false)
		c.itlb.Access(in.PC)
		if in.IsCtrl() {
			c.predictControl(&in)
		}
		if in.HasIntDest() && in.Class != isa.ClassJump {
			low := core.IsLowWidth(in.Result)
			if in.Class != isa.ClassLoad {
				low = low && !c.operandFull(in.Src1) && !c.operandFull(in.Src2)
			}
			pred := c.wpred.Predict(in.PC)
			if c.cfg.WidthPolicy == core.PolicyTwoBit {
				c.wpred.Resolve(in.PC, pred, low)
			}
		}
		if in.Dest != trace.RegNone {
			c.regIsLow[in.Dest] = in.Dest < trace.FPBase && core.IsLowWidth(in.Result)
		}
		switch in.Class {
		case isa.ClassLoad:
			c.dtlb.Access(in.MemAddr)
			c.dmem.Access(in.MemAddr, false)
			c.pam.Broadcast(in.MemAddr, false)
		case isa.ClassStore:
			c.dtlb.Access(in.MemAddr)
			c.dmem.Access(in.MemAddr, true)
			c.pam.Broadcast(in.MemAddr, true)
		}
	}
	c.ResetStats()
}

// ResetStats zeroes all statistics (including component counters) while
// preserving every piece of learned microarchitectural state.
func (c *Core) ResetStats() {
	c.stats = Stats{}
	c.statCycleBase = c.cycle
	c.bpred.ResetStats()
	c.btb.ResetStats()
	c.ibtb.ResetStats()
	c.il1.ResetStats()
	c.itlb.ResetStats()
	c.dtlb.ResetStats()
	c.dmem.ResetStats()
	c.wpred.ResetStats()
	c.rsAlloc.ResetStats()
	c.pam.ResetStats()
}

func (c *Core) runLoop(targetInsts uint64) (occROB, occRS uint64) {
	startCycle := c.cycle
	for c.stats.Insts < targetInsts {
		c.commit()
		c.issue()
		c.dispatch()
		c.fetch()
		occROB += uint64(c.robCount)
		occRS += uint64(c.rsAlloc.Capacity() - c.rsAlloc.Free())
		c.rsAlloc.ObserveOccupancy()
		c.cycle++
		if c.srcDone && c.robCount == 0 && len(c.ifq) == 0 {
			break
		}
		// Safety valve: a stuck pipeline is a bug, not a result.
		if c.cycle-startCycle > 1000*targetInsts+1_000_000 {
			panic(fmt.Sprintf("cpu: pipeline wedged at cycle %d with %d insts committed",
				c.cycle, c.stats.Insts))
		}
	}
	return occROB, occRS
}

func (c *Core) finalizeStats(occROB, occRS uint64) {
	s := &c.stats
	s.Cycles = c.cycle - c.statCycleBase
	if s.Cycles > 0 {
		s.MeanROBOcc = float64(occROB) / float64(s.Cycles)
		s.MeanRSOcc = float64(occRS) / float64(s.Cycles)
	}
	s.DirAccuracy = c.bpred.Accuracy()
	s.BTBHitRate = c.btb.HitRate()
	s.WidthPredictions, _, _, _ = c.wpred.Stats()
	s.WidthAccuracy = c.wpred.Accuracy()
	s.WidthUnsafeRate = c.wpred.UnsafeRate()
	s.PAMHitRate = c.pam.HitRate()
	s.L1DMissRate = c.dmem.L1.MissRate()
	s.L2MissRate = c.dmem.L2.MissRate()
	s.DRAMAccesses = c.dmem.Served(cache.LevelMem)
	s.RSTopDieShare = c.rsAlloc.TopDieAllocShare()
	s.MeanBroadcastDie = c.rsAlloc.MeanBroadcastDies()
	// Merge allocator broadcast activity into the RS block activity.
	s.BlockDie[floorplan.BlkRS].Add(c.rsAlloc.Activity())
}

// threeDPartitioned reports whether the configuration's structures are
// physically partitioned across four die.
func (c *Core) threeDPartitioned() bool { return c.cfg.ThreeD }

// herding reports whether Thermal Herding gating is active.
func (c *Core) herding() bool { return c.cfg.ThermalHerding }

// recordActivity charges one access to a block. dies is the number of
// die activated counting from the top (ignored for planar
// configurations, which record everything on die 0).
func (c *Core) recordActivity(b floorplan.BlockID, dies int) {
	c.stats.BlockAccesses[b]++
	if c.threeDPartitioned() {
		c.stats.BlockDie[b].RecordAccess(dies)
	} else {
		c.stats.BlockDie[b].RecordAccess(1)
	}
}

// predictWidth applies the configured width-prediction policy.
func (c *Core) predictWidth(pc uint64, actualLow bool) bool {
	switch c.cfg.WidthPolicy {
	case core.PolicyOracle:
		return actualLow
	case core.PolicyAlwaysLow:
		return true
	case core.PolicyAlwaysFull:
		return false
	default:
		return c.wpred.Predict(pc)
	}
}

// ---------------------------------------------------------------------
// Fetch
// ---------------------------------------------------------------------

func (c *Core) fetch() {
	if c.redirectPending || c.cycle < c.fetchResumeAt || c.srcDone {
		return
	}
	for fetched := 0; fetched < c.cfg.FetchWidth && len(c.ifq) < c.cfg.IFQSize; fetched++ {
		in, ok := c.src.Next()
		if !ok {
			c.srcDone = true
			return
		}
		slot := fetchSlot{inst: in}

		// I-cache and ITLB.
		c.recordActivity(floorplan.BlkICache, core.NumDies)
		if !c.itlb.Access(in.PC) {
			c.fetchResumeAt = c.cycle + uint64(c.cfg.TLBMissPenalty)
		}
		c.recordActivity(floorplan.BlkITLB, core.NumDies)
		if hit, _ := c.il1.Access(in.PC, false); !hit {
			c.stats.ICacheMisses++
			// Fetch stalls for the L2 round trip.
			c.fetchResumeAt = c.cycle + uint64(c.cfg.L2Latency)
		}
		c.recordActivity(floorplan.BlkIFQ, core.NumDies)
		// Decode dependence-check herding (Section 3.7, Figure 6(b)):
		// within a fetch group, instruction i must compare against the
		// i earlier instructions' destinations; the instruction with
		// the most comparators is placed on the top die. The resulting
		// activity gradient leans toward the heat sink.
		if c.herding() {
			c.recordActivity(floorplan.BlkDecode, c.cfg.FetchWidth-fetched)
		} else {
			c.recordActivity(floorplan.BlkDecode, core.NumDies)
		}

		// Operand widths are resolved in program order: this is exactly
		// the state the width memoization bits of the renamed physical
		// registers expose.
		slot.srcFull[0] = c.operandFull(in.Src1)
		slot.srcFull[1] = c.operandFull(in.Src2)
		slot.opAnyFull = slot.srcFull[0] || slot.srcFull[1]
		slot.resultLow = in.Dest != trace.RegNone && in.Dest < trace.FPBase &&
			core.IsLowWidth(in.Result)
		if in.HasIntDest() {
			c.stats.WidthWords[core.Width(in.Result)]++
		}

		// Width prediction happens in the front end so gating control
		// reaches the register file ahead of the access.
		if actualLow, relevant := c.actualWidthClass(&slot); relevant {
			slot.hasWidthPred = true
			slot.predictedLow = c.predictWidth(in.PC, actualLow)
			if c.cfg.WidthPolicy == core.PolicyTwoBit {
				c.wpred.Resolve(in.PC, slot.predictedLow, actualLow)
			}
		}

		// Advance the program-order width state past this instruction.
		if in.Dest != trace.RegNone {
			c.regIsLow[in.Dest] = slot.resultLow
		}

		// Control flow.
		if in.IsCtrl() {
			mispred, extraBubble := c.predictControl(&in)
			slot.mispredicted = mispred
			c.ifq = append(c.ifq, slot)
			if mispred {
				// Fetch stops until the branch resolves.
				c.redirectPending = true
				return
			}
			if in.Taken {
				// Correctly predicted taken: fetch discontinuity ends
				// the fetch group; a full-target BTB read adds a
				// bubble cycle.
				c.fetchResumeAt = c.cycle + 1 + extraBubble
				return
			}
			continue
		}
		c.ifq = append(c.ifq, slot)
	}
}

// predictControl runs the branch predictors for a control instruction,
// trains them, and reports whether the front end mispredicted, plus any
// extra fetch-bubble cycles (BTB full-target reads under 3D herding).
func (c *Core) predictControl(in *trace.Inst) (mispred bool, extraBubble uint64) {
	c.recordActivity(floorplan.BlkBPred, core.NumDies)
	c.stats.BranchCount++

	if in.Class == isa.ClassJump {
		// Jumps are always taken; the question is the target. Returns
		// come from the RAS; other indirect jumps from the iBTB; direct
		// jumps from the BTB.
		btbRes := c.btb.Lookup(in.PC)
		c.recordBTBActivity(btbRes)
		var predTarget uint64
		havePred := false
		if in.Op == isa.OpJalr {
			if t, ok := c.ras.Pop(); ok {
				predTarget, havePred = t, true
			} else {
				iTarget, iOK := c.ibtb.Predict(in.PC)
				c.ibtb.Update(in.PC, in.Target, iTarget, iOK)
				if iOK {
					predTarget, havePred = iTarget, true
				}
			}
		}
		if !havePred && btbRes.Hit {
			predTarget, havePred = btbRes.Target, true
		}
		if in.Op == isa.OpJal {
			c.ras.Push(in.PC + 4)
		}
		c.btb.Update(in.PC, in.Target)
		if !havePred || predTarget != in.Target {
			c.stats.BranchMispred++
			return true, 0
		}
		if c.herding() && btbRes.Hit && btbRes.NeedsFullRead {
			c.stats.BTBFullStalls++
			extraBubble = 1
		}
		return false, extraBubble
	}

	// Conditional branch.
	predTaken := c.bpred.Predict(in.PC)
	btbRes := c.btb.Lookup(in.PC)
	c.recordBTBActivity(btbRes)
	c.bpred.Update(in.PC, in.Taken, predTaken)
	if in.Taken {
		c.btb.Update(in.PC, in.Target)
	}
	if predTaken != in.Taken {
		c.stats.BranchMispred++
		return true, 0
	}
	if in.Taken {
		if !btbRes.Hit || btbRes.Target != in.Target {
			// Right direction, wrong/unknown target.
			c.stats.BranchMispred++
			return true, 0
		}
		if c.herding() && btbRes.NeedsFullRead {
			c.stats.BTBFullStalls++
			extraBubble = 1
		}
	}
	return false, extraBubble
}

func (c *Core) recordBTBActivity(r predictor.LookupResult) {
	dies := 1
	if !c.herding() || (r.Hit && r.NeedsFullRead) {
		dies = core.NumDies
	}
	c.recordActivity(floorplan.BlkBTB, dies)
}

// actualWidthClass returns whether the instruction is a low-width
// instruction — the paper predicts whether an instruction "uses"
// low-width values, covering both operands and result — and whether
// width prediction applies to it at all. Loads are classified by their
// loaded value alone (their address registers are handled by PAM, not by
// width prediction); ALU-class instructions are low only if their result
// and all integer operands are low.
func (c *Core) actualWidthClass(slot *fetchSlot) (low, relevant bool) {
	in := &slot.inst
	if !in.HasIntDest() || in.Class == isa.ClassJump {
		return false, false
	}
	low = slot.resultLow
	if in.Class != isa.ClassLoad {
		low = low && !slot.opAnyFull
	}
	return low, true
}

// ---------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------

func (c *Core) dispatch() {
	if c.cycle < c.dispatchBlockedU {
		return
	}
	groupHadUnsafe := false
	for n := 0; n < c.cfg.DecodeWidth && len(c.ifq) > 0; n++ {
		slot := c.ifq[0]
		in := &slot.inst
		if c.robCount == c.cfg.ROBSize {
			break
		}
		if in.Class == isa.ClassLoad && c.lqUsed == c.cfg.LQSize {
			break
		}
		if in.Class == isa.ClassStore && c.sqUsed == c.cfg.SQSize {
			break
		}
		rsEntry, ok := c.rsAlloc.Allocate()
		if !ok {
			break
		}

		// Register file read with width prediction (TH only): an
		// operand whose architectural value is full-width read under a
		// low prediction is unsafe; the group pays one stall cycle and
		// the prediction is corrected in place, so the instruction
		// proceeds with its execution unit fully enabled (no second
		// stall at the ALU for the same misprediction).
		// Loads are exempt: their prediction concerns the loaded value
		// (gating the D-cache); the address-register read is performed
		// full-width, as load/store addresses almost always are
		// (Section 3.5 — PAM, not width prediction, covers them).
		if c.herding() && slot.hasWidthPred && slot.predictedLow && slot.opAnyFull &&
			in.Class != isa.ClassLoad {
			groupHadUnsafe = true
			slot.predictedLow = false
			c.wpred.CorrectOverride(in.PC)
		}
		c.chargeRegisterRead(&slot, slot.predictedLow && c.herding())
		c.recordActivity(floorplan.BlkRename, core.NumDies)

		e := robEntry{
			inst:         *in,
			state:        stDispatched,
			rs:           rsEntry,
			inRS:         true,
			predictedLow: slot.predictedLow,
			hasWidthPred: slot.hasWidthPred,
			opAnyFull:    slot.opAnyFull,
			srcFull:      slot.srcFull,
			resultLow:    slot.resultLow,
			mispredicted: slot.mispredicted,
			fpLoad:       in.Class == isa.ClassLoad && in.Dest >= trace.FPBase,
		}
		c.rob[c.robTail] = e
		c.robState[c.robTail] = stDispatched
		c.robSrc[c.robTail] = [2]int16{in.Src1, in.Src2}
		c.robTail = (c.robTail + 1) % c.cfg.ROBSize
		c.robCount++
		// RS entry write: with herding, a low-width instruction's
		// operand/tag state is confined to its entry's die; the entry
		// itself lives on one die, so dispatch touches that die only.
		// Without partitioning this is a full-structure access.
		if c.threeDPartitioned() {
			c.stats.BlockAccesses[floorplan.BlkRS]++
			c.stats.BlockDie[floorplan.BlkRS].Words[rsEntry.Die]++
		} else {
			c.recordActivity(floorplan.BlkRS, 1)
		}

		switch in.Class {
		case isa.ClassLoad:
			c.lqUsed++
		case isa.ClassStore:
			c.sqUsed++
			c.sqAddrs[in.MemAddr&^7]++
		}
		c.ifq = c.ifq[1:]
	}
	if groupHadUnsafe {
		// The whole group stalls one cycle (at most one per group
		// regardless of how many operands mispredicted), and the
		// predictions are corrected in place.
		c.stats.RFGroupStalls++
		c.dispatchBlockedU = c.cycle + 2
	}
}

// operandFull reports whether the architectural register's latest
// program-order value (as of the current fetch point) is full-width.
// Only valid during fetch, where state advances in program order.
func (c *Core) operandFull(r int16) bool {
	if r == trace.RegNone || r >= trace.FPBase {
		return false // FP operands are not width-predicted
	}
	return !c.regIsLow[r]
}

// chargeRegisterRead accounts ROB/physical-register-file read activity
// for an instruction's operands, with die gating when herded.
func (c *Core) chargeRegisterRead(slot *fetchSlot, herdedLow bool) {
	in := &slot.inst
	for i, r := range [2]int16{in.Src1, in.Src2} {
		if r == trace.RegNone {
			continue
		}
		low := r < trace.FPBase && !slot.srcFull[i]
		if low {
			c.stats.RegLowReads++
		} else {
			c.stats.RegFullReads++
		}
		dies := core.NumDies
		if herdedLow && low {
			dies = 1
		}
		c.recordActivity(floorplan.BlkROB, dies)
	}
}

// ---------------------------------------------------------------------
// Issue / execute
// ---------------------------------------------------------------------

// fu tracks per-cycle functional unit budgets.
type fuBudget struct {
	alu, shift, mulDiv  int
	fpAdd, fpMul, fpDiv int
	memPorts, loadPorts int
}

func (c *Core) issue() {
	budget := fuBudget{
		alu: c.cfg.IntALU, shift: c.cfg.IntShift, mulDiv: c.cfg.IntMulDiv,
		fpAdd: c.cfg.FPAdd, fpMul: c.cfg.FPMul, fpDiv: c.cfg.FPDiv,
		memPorts: c.cfg.MemPorts, loadPorts: c.cfg.LoadPorts,
	}
	issued := 0
	size := c.cfg.ROBSize
	for i, idx := 0, c.robHead; i < c.robCount && issued < c.cfg.IssueWidth; i++ {
		if c.robState[idx] != stDispatched || !c.srcsReady(idx) {
			idx++
			if idx == size {
				idx = 0
			}
			continue
		}
		e := &c.rob[idx]
		if !c.takeFU(&budget, &e.inst) {
			idx++
			if idx == size {
				idx = 0
			}
			continue
		}
		lat, ok := c.executeLatency(e)
		if !ok {
			idx++
			if idx == size {
				idx = 0
			}
			continue // non-pipelined unit busy
		}
		e.state = stIssued
		c.robState[idx] = stIssued
		e.complete = c.cycle + uint64(lat)
		c.robComplete[idx] = e.complete
		if e.inst.Dest != trace.RegNone {
			c.regReady[e.inst.Dest] = e.complete
		}
		issued++

		// Scheduler: issue frees the RS entry and broadcasts the tag.
		if e.inRS {
			c.rsAlloc.Release(e.rs)
			e.inRS = false
		}
		c.rsAlloc.Broadcast()
		if !c.threeDPartitioned() {
			c.stats.BlockAccesses[floorplan.BlkRS]++
			c.stats.BlockDie[floorplan.BlkRS].RecordAccess(1)
		} else {
			c.stats.BlockAccesses[floorplan.BlkRS]++
			// Broadcast activity is merged from the allocator at the
			// end of the run (it already tracks per-die gating).
		}
		c.chargeExecActivity(e)

		if e.mispredicted {
			// The branch resolves at e.complete; the front end
			// restarts after the redirect penalty.
			c.fetchResumeAt = e.complete + uint64(c.cfg.MispredictRedirect)
			c.redirectPending = false
		}
		idx++
		if idx == size {
			idx = 0
		}
	}
	// Advance ROB entry states whose completion time has arrived.
	for i, idx := 0, c.robHead; i < c.robCount; i++ {
		if c.robState[idx] == stIssued && c.robComplete[idx] <= c.cycle {
			c.robState[idx] = stDone
			e := &c.rob[idx]
			e.state = stDone
			c.writeback(e)
		}
		idx++
		if idx == size {
			idx = 0
		}
	}
}

// srcsReady reports whether the ROB entry's source operands are
// available this cycle.
func (c *Core) srcsReady(idx int) bool {
	src := &c.robSrc[idx]
	if src[0] != trace.RegNone && c.regReady[src[0]] > c.cycle {
		return false
	}
	if src[1] != trace.RegNone && c.regReady[src[1]] > c.cycle {
		return false
	}
	return true
}

func (c *Core) takeFU(b *fuBudget, in *trace.Inst) bool {
	take := func(n *int) bool {
		if *n > 0 {
			*n--
			return true
		}
		return false
	}
	switch in.Class {
	case isa.ClassALU, isa.ClassBranch, isa.ClassJump, isa.ClassNop, isa.ClassHalt:
		return take(&b.alu)
	case isa.ClassShift:
		return take(&b.shift) || take(&b.alu)
	case isa.ClassMulDiv:
		return take(&b.mulDiv)
	case isa.ClassFPAdd:
		return take(&b.fpAdd)
	case isa.ClassFPMul:
		return take(&b.fpMul)
	case isa.ClassFPDiv:
		return take(&b.fpDiv)
	case isa.ClassLoad:
		return take(&b.loadPorts) || take(&b.memPorts)
	case isa.ClassStore:
		return take(&b.memPorts)
	}
	return take(&b.alu)
}

// executeLatency computes the execution latency of an instruction at
// issue, including cache access, TLB, width-misprediction penalties, and
// non-pipelined unit availability. ok=false means the instruction cannot
// start this cycle (busy non-pipelined unit).
func (c *Core) executeLatency(e *robEntry) (lat int, ok bool) {
	in := &e.inst
	switch in.Class {
	case isa.ClassALU, isa.ClassBranch, isa.ClassJump, isa.ClassNop, isa.ClassHalt:
		lat = 1
	case isa.ClassShift:
		lat = 1
	case isa.ClassMulDiv:
		if c.mulDivFree > c.cycle {
			return 0, false
		}
		if in.Op == isa.OpDiv || in.Op == isa.OpRem {
			lat = 20
			c.mulDivFree = c.cycle + uint64(lat) // divider not pipelined
		} else {
			lat = 3
		}
	case isa.ClassFPAdd:
		lat = 3
	case isa.ClassFPMul:
		lat = 5
	case isa.ClassFPDiv:
		if c.fpDivFree > c.cycle {
			return 0, false
		}
		lat = 20
		c.fpDivFree = c.cycle + uint64(lat)
	case isa.ClassLoad:
		lat = c.loadLatency(e)
	case isa.ClassStore:
		// Address generation only; data is written at commit.
		lat = 1
		c.broadcastLSQ(in)
	default:
		lat = 1
	}

	// Width-misprediction execution penalties (integer units only).
	// RF-detected mispredictions were already corrected at dispatch
	// (predictedLow cleared), so only genuine surprises remain: an
	// operand that bypassed in full-width, or a low×low operation whose
	// result overflowed 16 bits.
	if c.herding() && e.hasWidthPred && e.predictedLow && isIntExec(in.Class) {
		switch {
		case e.opAnyFull:
			// The unit was not fully enabled: one cycle to re-enable
			// the upper 48 bits.
			c.stats.ALUInputStalls++
			lat++
		case !e.resultLow:
			// Output-width misprediction: re-execute.
			c.stats.ALUReexecutes++
			lat *= 2
		}
	}
	return lat, true
}

func isIntExec(cl isa.Class) bool {
	return cl == isa.ClassALU || cl == isa.ClassShift || cl == isa.ClassMulDiv
}

// loadLatency models a load: DTLB, LSQ broadcast, cache hierarchy, and
// the Thermal Herding partial-value behaviour of the L1 data cache.
func (c *Core) loadLatency(e *robEntry) int {
	in := &e.inst
	c.stats.LoadCount++
	lat := 0
	if !c.dtlb.Access(in.MemAddr) {
		lat += c.cfg.TLBMissPenalty
	}
	c.recordActivity(floorplan.BlkDTLB, core.NumDies)
	c.broadcastLSQ(in)

	// Store-to-load forwarding: a load whose address matches an
	// in-flight older store takes its data straight from the store
	// queue, skipping the cache. (The model's dependence resolution is
	// conservative: an address match suffices; real designs also check
	// age and size.)
	if c.sqAddrs[in.MemAddr&^7] > 0 {
		c.stats.ForwardedLoads++
		lat += 2 // SQ read-out
		// The forwarded value still drives the (herded) data bypass.
		dies := core.NumDies
		if c.herding() && e.predictedLow && e.hasWidthPred {
			dies = 1
		}
		c.recordActivity(floorplan.BlkLSQ, dies)
		if lat < c.cfg.L1Latency {
			lat = c.cfg.L1Latency
		}
		if e.fpLoad {
			lat += c.cfg.FPLoadExtraCycle
		}
		return lat
	}

	memLat, level := c.dmem.Access(in.MemAddr, false)
	lat += memLat
	c.chargeMemActivity(level)

	// Partial value encoding (Section 3.6): classify the loaded value
	// against the referencing address.
	enc := core.ClassifyPartialValue(in.Result, in.MemAddr)
	c.stats.PV.Observe(enc)
	if c.herding() {
		if level == cache.LevelL1 && e.predictedLow && e.hasWidthPred {
			if enc.IsLow() {
				// Herded load: top die only.
				c.recordActivity(floorplan.BlkDCache, 1)
			} else {
				// Unsafe: stall the cache pipeline one cycle; the tag
				// match already identified the way, so only one way of
				// the lower die is read.
				c.stats.DCacheUnsafe++
				lat++
				c.recordActivity(floorplan.BlkDCache, core.NumDies)
			}
		} else {
			// Full-width predicted loads and all L2 fills access all
			// four die.
			c.recordActivity(floorplan.BlkDCache, core.NumDies)
		}
	} else {
		c.recordActivity(floorplan.BlkDCache, core.NumDies)
	}

	// FP loads may pay an extra routing cycle in the planar design.
	if e.fpLoad {
		lat += c.cfg.FPLoadExtraCycle
	}
	if lat < c.cfg.L1Latency {
		lat = c.cfg.L1Latency
	}
	return lat
}

// broadcastLSQ models the load/store queue address broadcast with
// partial address memoization.
func (c *Core) broadcastLSQ(in *trace.Inst) {
	res := c.pam.Broadcast(in.MemAddr, in.Class == isa.ClassStore)
	dies := core.NumDies
	if c.herding() && res.MemoHit {
		dies = res.DiesActivated
	}
	c.recordActivity(floorplan.BlkLSQ, dies)
}

func (c *Core) chargeMemActivity(level cache.Level) {
	if level == cache.LevelL2 || level == cache.LevelMem {
		c.recordActivity(floorplan.BlkL2, core.NumDies)
	}
	if level == cache.LevelMem {
		c.stats.BlockAccesses[floorplan.BlkMemCtl]++
		c.stats.BlockDie[floorplan.BlkMemCtl].RecordAccess(1)
	}
}

// chargeExecActivity accounts execution-unit and bypass switching for an
// issued instruction, with die gating for herded low-width operations.
func (c *Core) chargeExecActivity(e *robEntry) {
	in := &e.inst
	resultLow := e.resultLow
	gated := c.herding() && e.hasWidthPred && e.predictedLow &&
		!e.opAnyFull && resultLow

	switch {
	case isIntExec(in.Class) || in.Class == isa.ClassBranch || in.Class == isa.ClassJump:
		if gated {
			c.recordActivity(floorplan.BlkIntExec, 1)
			c.recordActivity(floorplan.BlkBypass, 1)
		} else {
			c.recordActivity(floorplan.BlkIntExec, core.NumDies)
			dies := core.NumDies
			if c.herding() && resultLow {
				// A correctly low result only drives the top-die
				// bypass wires even if the unit ran ungated.
				dies = 1
			}
			c.recordActivity(floorplan.BlkBypass, dies)
		}
	case in.Class == isa.ClassFPAdd || in.Class == isa.ClassFPMul || in.Class == isa.ClassFPDiv:
		c.recordActivity(floorplan.BlkFPExec, core.NumDies)
		c.recordActivity(floorplan.BlkBypass, core.NumDies)
	case in.Class == isa.ClassLoad:
		dies := core.NumDies
		if c.herding() && resultLow {
			dies = 1
		}
		c.recordActivity(floorplan.BlkBypass, dies)
	}
}

// writeback charges the result write into the ROB/physical registers.
// The width state itself advanced in program order at fetch.
func (c *Core) writeback(e *robEntry) {
	in := &e.inst
	if in.Dest == trace.RegNone {
		return
	}
	low := e.resultLow
	if low {
		c.stats.RegLowWrites++
	} else {
		c.stats.RegFullWrites++
	}
	dies := core.NumDies
	if c.herding() && low {
		dies = 1
	}
	c.recordActivity(floorplan.BlkROB, dies)
}

// ---------------------------------------------------------------------
// Commit
// ---------------------------------------------------------------------

func (c *Core) commit() {
	for n := 0; n < c.cfg.CommitWidth && c.robCount > 0; n++ {
		e := &c.rob[c.robHead]
		if e.state != stDone {
			return
		}
		in := &e.inst
		switch in.Class {
		case isa.ClassLoad:
			c.lqUsed--
		case isa.ClassStore:
			c.sqUsed--
			if n := c.sqAddrs[in.MemAddr&^7]; n > 1 {
				c.sqAddrs[in.MemAddr&^7] = n - 1
			} else {
				delete(c.sqAddrs, in.MemAddr&^7)
			}
			c.stats.StoreCount++
			// The store writes the cache at commit. A store knows its
			// data width, so it never causes an unsafe misprediction.
			_, level := c.dmem.Access(in.MemAddr, true)
			c.chargeMemActivity(level)
			dies := core.NumDies
			if c.herding() && core.ClassifyPartialValue(in.StoreVal, in.MemAddr).IsLow() {
				dies = 1
			}
			c.recordActivity(floorplan.BlkDCache, dies)
			if !c.dtlb.Access(in.MemAddr) {
				// Commit-time translation misses are rare (the issue
				// access warmed the TLB); charge activity only.
			}
			c.recordActivity(floorplan.BlkDTLB, core.NumDies)
		}
		c.robHead = (c.robHead + 1) % c.cfg.ROBSize
		c.robCount--
		c.stats.Insts++
	}
}
