package thermal

import (
	"math"
	"testing"

	"thermalherd/internal/floorplan"
)

func transientStack(t *testing.T, totalW float64) *Stack {
	t.Helper()
	fp := floorplan.Planar()
	s, err := BuildPlanar(fp, uniformWatts(fp, totalW), 12, 12)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTransientConvergesToSteadyState(t *testing.T) {
	s := transientStack(t, 60)
	steady, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	steadyPeak, _, _, _ := steady.Peak()

	tr, err := s.SolveTransient(60.0, 0.05, 50)
	if err != nil {
		t.Fatal(err)
	}
	finalPeak := tr.PeakK[len(tr.PeakK)-1]
	if math.Abs(finalPeak-steadyPeak) > 1.0 {
		t.Errorf("transient final peak %.2f K vs steady %.2f K (should agree)", finalPeak, steadyPeak)
	}
}

func TestTransientMonotoneHeating(t *testing.T) {
	s := transientStack(t, 60)
	tr, err := s.SolveTransient(5.0, 0.05, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tr.PeakK[0] != s.Ambient {
		t.Errorf("t=0 peak %.2f K, want ambient %.2f K", tr.PeakK[0], s.Ambient)
	}
	for i := 1; i < len(tr.PeakK); i++ {
		if tr.PeakK[i] < tr.PeakK[i-1]-1e-6 {
			t.Fatalf("peak decreased during heating: %.3f -> %.3f at sample %d",
				tr.PeakK[i-1], tr.PeakK[i], i)
		}
	}
	// Heating from ambient, so early samples must be well below final.
	if tr.PeakK[1] >= tr.PeakK[len(tr.PeakK)-1] {
		t.Error("no visible thermal transient")
	}
}

func TestTransientMorePowerHeatsFaster(t *testing.T) {
	lo := transientStack(t, 30)
	hi := transientStack(t, 90)
	trLo, err := lo.SolveTransient(2.0, 0.05, 10)
	if err != nil {
		t.Fatal(err)
	}
	trHi, err := hi.SolveTransient(2.0, 0.05, 10)
	if err != nil {
		t.Fatal(err)
	}
	// At every shared sample after t=0, the 90 W stack is hotter.
	for i := 1; i < len(trLo.PeakK) && i < len(trHi.PeakK); i++ {
		if trHi.PeakK[i] <= trLo.PeakK[i] {
			t.Fatalf("sample %d: 90 W (%.2f K) not hotter than 30 W (%.2f K)",
				i, trHi.PeakK[i], trLo.PeakK[i])
		}
	}
}

func TestTransientRejectsBadArgs(t *testing.T) {
	s := transientStack(t, 10)
	if _, err := s.SolveTransient(0, 0.1, 1); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := s.SolveTransient(1, 0, 1); err == nil {
		t.Error("zero dt accepted")
	}
	if _, err := s.SolveTransient(0.1, 1, 1); err == nil {
		t.Error("dt > duration accepted")
	}
}

func TestTimeToWithin(t *testing.T) {
	s := transientStack(t, 60)
	tr, err := s.SolveTransient(40.0, 0.05, 20)
	if err != nil {
		t.Fatal(err)
	}
	settle := tr.TimeToWithin(0.5)
	if settle <= 0 || settle > 40 {
		t.Errorf("settling time %.2f s out of range", settle)
	}
	// Thermal time constants of a spreader+sink system are seconds, not
	// milliseconds.
	if settle < 0.2 {
		t.Errorf("settling time %.3f s implausibly fast", settle)
	}
}

func TestTransientFinalFieldUsable(t *testing.T) {
	s := transientStack(t, 45)
	tr, err := s.SolveTransient(30, 0.1, 100)
	if err != nil {
		t.Fatal(err)
	}
	peak, layer, _, _ := tr.Final.Peak()
	if peak <= s.Ambient {
		t.Error("final field not heated")
	}
	if layer < 0 || layer >= len(s.Layers) {
		t.Errorf("bad peak layer %d", layer)
	}
}
