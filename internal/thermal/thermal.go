// Package thermal is a steady-state compact thermal model standing in
// for the HotSpot 3.0.2 simulations of the paper's Section 4: a
// finite-difference RC network over a layered die stack, solved with
// successive over-relaxation.
//
// The modelled stack, from the heat sink downward, matches the paper's
// assumptions: a copper heat spreader, a phase-change metallic-alloy
// thermal interface material, then the silicon die — one for the planar
// processor, four for the 3D processor with die-to-die interface layers
// whose effective conductivity reflects a fully populated via field at
// 25% copper / 75% air occupancy. The bottom of the stack (package side)
// is treated as adiabatic, so all heat exits through the sink, the
// worst-case assumption for a 3D stack.
package thermal

import (
	"fmt"
	"math"
)

// Material and boundary constants.
const (
	// KSilicon is bulk silicon conductivity near operating temperature
	// (W/m·K).
	KSilicon = 110.0
	// KCopper is the heat spreader conductivity.
	KCopper = 395.0
	// KTIM is the phase-change metallic alloy TIM the paper assumes.
	KTIM = 30.0
	// KD2D is the effective conductivity of a die-to-die interface with
	// a fully populated via field: 25% copper, 75% air.
	KD2D = 0.25*KCopper + 0.75*0.026
	// AmbientK is the ambient temperature (HotSpot's default 45 C).
	AmbientK = 318.15
)

// Default layer thicknesses in metres.
const (
	SpreaderThickness = 2.0e-3
	TIMThickness      = 50e-6
	BulkDieThickness  = 400e-6 // planar die / top die bulk silicon
	ThinDieThickness  = 30e-6  // thinned stacked die
	D2DThickness      = 15e-6  // via interface layer (5-20 um per paper)
)

// SinkRTotal is the lumped heat-sink-to-ambient resistance (K/W),
// calibrated so the planar 90 W reference lands near the paper's 360 K
// peak.
const SinkRTotal = 0.32

// Layer is one horizontal slab of the stack.
type Layer struct {
	// Name labels the layer in reports.
	Name string
	// Thickness in metres.
	Thickness float64
	// K is the thermal conductivity in W/(m·K).
	K float64
	// Power is the injected power per cell in watts (length Nx*Ny), or
	// nil for a passive layer.
	Power []float64
}

// Stack is a complete thermal problem.
type Stack struct {
	// Nx, Ny are the lateral grid dimensions.
	Nx, Ny int
	// CellW, CellH are the lateral cell dimensions in metres.
	CellW, CellH float64
	// Layers lists the slabs from the heat-sink side downward.
	Layers []Layer
	// SinkR is the lumped sink-to-ambient resistance in K/W attached
	// above layer 0.
	SinkR float64
	// Ambient is the ambient temperature in kelvin.
	Ambient float64
}

// TotalPower sums all injected power.
func (s *Stack) TotalPower() float64 {
	var p float64
	for _, l := range s.Layers {
		for _, w := range l.Power {
			p += w
		}
	}
	return p
}

// Validate checks the stack geometry.
func (s *Stack) Validate() error {
	if s.Nx <= 0 || s.Ny <= 0 {
		return fmt.Errorf("thermal: grid %dx%d invalid", s.Nx, s.Ny)
	}
	if s.CellW <= 0 || s.CellH <= 0 {
		return fmt.Errorf("thermal: non-positive cell size")
	}
	if len(s.Layers) == 0 {
		return fmt.Errorf("thermal: no layers")
	}
	if s.SinkR <= 0 {
		return fmt.Errorf("thermal: sink resistance must be positive")
	}
	n := s.Nx * s.Ny
	for _, l := range s.Layers {
		if l.Thickness <= 0 || l.K <= 0 {
			return fmt.Errorf("thermal: layer %s has non-positive thickness or conductivity", l.Name)
		}
		if l.Power != nil && len(l.Power) != n {
			return fmt.Errorf("thermal: layer %s power map has %d cells, want %d", l.Name, len(l.Power), n)
		}
	}
	return nil
}

// Solution holds the solved temperature field.
type Solution struct {
	Stack *Stack
	// T[l][y*Nx+x] is the temperature of cell (x, y) in layer l.
	T [][]float64
	// Iterations the solver used.
	Iterations int
}

// Solve computes the steady-state temperature field by SOR iteration.
func (s *Stack) Solve() (*Solution, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	nx, ny, nl := s.Nx, s.Ny, len(s.Layers)
	n := nx * ny
	cellArea := s.CellW * s.CellH

	// Conductances.
	gx := make([]float64, nl) // lateral, x direction
	gy := make([]float64, nl)
	for l, layer := range s.Layers {
		gx[l] = layer.K * layer.Thickness * s.CellH / s.CellW
		gy[l] = layer.K * layer.Thickness * s.CellW / s.CellH
	}
	gz := make([]float64, nl-1) // vertical between layer l and l+1
	for l := 0; l < nl-1; l++ {
		r := s.Layers[l].Thickness/(2*s.Layers[l].K) + s.Layers[l+1].Thickness/(2*s.Layers[l+1].K)
		gz[l] = cellArea / r
	}
	// Sink: distributed over the top layer's cells, in series with half
	// the top layer's vertical resistance.
	rSinkCell := s.SinkR*float64(n) + s.Layers[0].Thickness/(2*s.Layers[0].K*cellArea)
	gSink := 1 / rSinkCell

	T := make([][]float64, nl)
	for l := range T {
		T[l] = make([]float64, n)
		for i := range T[l] {
			T[l][i] = s.Ambient + 20
		}
	}

	const (
		omega    = 1.85
		tol      = 1e-5
		maxIters = 200000
	)
	var iters int
	for iters = 0; iters < maxIters; iters++ {
		var maxDelta float64
		for l := 0; l < nl; l++ {
			layer := &s.Layers[l]
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					i := y*nx + x
					var gSum, flux float64
					if x > 0 {
						gSum += gx[l]
						flux += gx[l] * T[l][i-1]
					}
					if x < nx-1 {
						gSum += gx[l]
						flux += gx[l] * T[l][i+1]
					}
					if y > 0 {
						gSum += gy[l]
						flux += gy[l] * T[l][i-nx]
					}
					if y < ny-1 {
						gSum += gy[l]
						flux += gy[l] * T[l][i+nx]
					}
					if l > 0 {
						gSum += gz[l-1]
						flux += gz[l-1] * T[l-1][i]
					}
					if l < nl-1 {
						gSum += gz[l]
						flux += gz[l] * T[l+1][i]
					}
					if l == 0 {
						gSum += gSink
						flux += gSink * s.Ambient
					}
					if layer.Power != nil {
						flux += layer.Power[i]
					}
					tNew := flux / gSum
					delta := tNew - T[l][i]
					T[l][i] += omega * delta
					if d := math.Abs(delta); d > maxDelta {
						maxDelta = d
					}
				}
			}
		}
		if maxDelta < tol {
			break
		}
	}
	if iters == maxIters {
		return nil, fmt.Errorf("thermal: SOR did not converge in %d iterations", maxIters)
	}
	return &Solution{Stack: s, T: T, Iterations: iters}, nil
}

// Peak returns the maximum temperature anywhere in the stack and its
// location.
func (sol *Solution) Peak() (tempK float64, layer, x, y int) {
	tempK = -1
	for l := range sol.T {
		for i, t := range sol.T[l] {
			if t > tempK {
				tempK = t
				layer = l
				x = i % sol.Stack.Nx
				y = i / sol.Stack.Nx
			}
		}
	}
	return tempK, layer, x, y
}

// PeakOfLayer returns the maximum temperature within one layer.
func (sol *Solution) PeakOfLayer(l int) float64 {
	peak := -1.0
	for _, t := range sol.T[l] {
		if t > peak {
			peak = t
		}
	}
	return peak
}

// MeanOfLayer returns the average temperature of one layer.
func (sol *Solution) MeanOfLayer(l int) float64 {
	var sum float64
	for _, t := range sol.T[l] {
		sum += t
	}
	return sum / float64(len(sol.T[l]))
}

// At returns the temperature of cell (x, y) in layer l.
func (sol *Solution) At(l, x, y int) float64 {
	return sol.T[l][y*sol.Stack.Nx+x]
}

// MaxOverCells returns, for layer l, the maximum temperature over the
// cells for which keep returns true. Returns the ambient temperature if
// no cell matches.
func (sol *Solution) MaxOverCells(l int, keep func(x, y int) bool) float64 {
	peak := sol.Stack.Ambient
	for y := 0; y < sol.Stack.Ny; y++ {
		for x := 0; x < sol.Stack.Nx; x++ {
			if keep(x, y) {
				if t := sol.At(l, x, y); t > peak {
					peak = t
				}
			}
		}
	}
	return peak
}
