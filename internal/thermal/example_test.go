package thermal_test

import (
	"fmt"

	"thermalherd/internal/floorplan"
	"thermalherd/internal/thermal"
)

// Build the 4-die stack with all power herded to the top die and solve
// for the steady state.
func ExampleBuildStacked() {
	fp := floorplan.Stacked()
	var topArea float64
	for _, u := range fp.UnitsOn(0) {
		topArea += u.Area()
	}
	watts := func(u floorplan.Unit) float64 {
		if u.Die == 0 {
			return 50 * u.Area() / topArea // all 50 W on the top die
		}
		return 0
	}
	stack, err := thermal.BuildStacked(fp, watts, 16, 16)
	if err != nil {
		fmt.Println(err)
		return
	}
	sol, err := stack.Solve()
	if err != nil {
		fmt.Println(err)
		return
	}
	peak, _, _, _ := sol.Peak()
	fmt.Println("peak above ambient:", peak > thermal.AmbientK)
	fmt.Println("top die hotter than ambient:", sol.MeanOfLayer(thermal.DieLayerIndex(0)) > thermal.AmbientK)
	// Output:
	// peak above ambient: true
	// top die hotter than ambient: true
}
