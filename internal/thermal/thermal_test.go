package thermal

import (
	"math"
	"strings"
	"testing"

	"thermalherd/internal/floorplan"
)

// uniformWatts spreads total watts evenly over unit area.
func uniformWatts(fp *floorplan.Floorplan, total float64) PowerFor {
	var area float64
	for _, u := range fp.Units {
		area += u.Area()
	}
	return func(u floorplan.Unit) float64 { return total * u.Area() / area }
}

func TestSingleCellAnalytic(t *testing.T) {
	// One cell, one layer: T = ambient + P * (SinkR*N + t/(2kA)).
	s := &Stack{
		Nx: 1, Ny: 1, CellW: 0.01, CellH: 0.01,
		SinkR: 0.5, Ambient: 300,
		Layers: []Layer{{Name: "die", Thickness: 1e-3, K: 100, Power: []float64{10}}},
	}
	sol, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	rVert := 1e-3 / (2 * 100.0 * 0.01 * 0.01)
	want := 300 + 10*(0.5+rVert)
	if got := sol.T[0][0]; math.Abs(got-want) > 0.01 {
		t.Errorf("analytic single cell: got %.3f K, want %.3f K", got, want)
	}
}

func TestEnergyConservation(t *testing.T) {
	fp := floorplan.Planar()
	s, err := BuildPlanar(fp, uniformWatts(fp, 90), 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// All heat must exit through the sink: sum over top-layer cells of
	// gSink*(T - ambient) == total power.
	n := s.Nx * s.Ny
	cellArea := s.CellW * s.CellH
	rSinkCell := s.SinkR*float64(n) + s.Layers[0].Thickness/(2*s.Layers[0].K*cellArea)
	var out float64
	for _, temp := range sol.T[0] {
		out += (temp - s.Ambient) / rSinkCell
	}
	if math.Abs(out-90) > 0.5 {
		t.Errorf("heat out of sink = %.3f W, want 90 (conservation)", out)
	}
}

func TestHotterWhereMorePower(t *testing.T) {
	fp := floorplan.Planar()
	// All power in core 0's RS block.
	watts := func(u floorplan.Unit) float64 {
		if u.Block == floorplan.BlkRS && u.Core == 0 {
			return 30
		}
		return 0
	}
	s, err := BuildPlanar(fp, watts, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	u, peak, ok := HottestUnit(sol, fp)
	if !ok {
		t.Fatal("hotspot not attributed to a unit")
	}
	if u.Block != floorplan.BlkRS || u.Core != 0 {
		t.Errorf("hotspot at %v core %d, want RS core 0", u.Block, u.Core)
	}
	if peak <= AmbientK {
		t.Error("peak not above ambient")
	}
}

func TestStackedHeatsMoreThanPlanarAtEqualPower(t *testing.T) {
	// The Section 5.3 density observation: the same total power in the
	// quarter-footprint stack runs hotter.
	pfp := floorplan.Planar()
	sfp := floorplan.Stacked()
	const total = 90.0
	ps, err := BuildPlanar(pfp, uniformWatts(pfp, total), 24, 24)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := BuildStacked(sfp, uniformWatts(sfp, total), 24, 24)
	if err != nil {
		t.Fatal(err)
	}
	psol, err := ps.Solve()
	if err != nil {
		t.Fatal(err)
	}
	ssol, err := ss.Solve()
	if err != nil {
		t.Fatal(err)
	}
	pPeak, _, _, _ := psol.Peak()
	sPeak, _, _, _ := ssol.Peak()
	if sPeak <= pPeak {
		t.Errorf("stacked peak (%.1f K) not above planar (%.1f K) at equal power", sPeak, pPeak)
	}
}

func TestBottomDieHotterThanTopDie(t *testing.T) {
	// With power spread evenly, die 3 (farthest from the sink) must run
	// hotter than die 0 — the reason herding wants activity on top.
	fp := floorplan.Stacked()
	s, err := BuildStacked(fp, uniformWatts(fp, 60), 24, 24)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	top := sol.MeanOfLayer(DieLayerIndex(0))
	bottom := sol.MeanOfLayer(DieLayerIndex(3))
	if bottom <= top {
		t.Errorf("bottom die (%.2f K) not hotter than top die (%.2f K)", bottom, top)
	}
}

func TestHerdingToTopDieReducesPeak(t *testing.T) {
	// Moving the same power toward the top die must reduce the stack's
	// peak temperature — the core thermal claim of the paper.
	fp := floorplan.Stacked()
	build := func(topShare float64) float64 {
		perDie := [4]float64{topShare, (1 - topShare) / 3, (1 - topShare) / 3, (1 - topShare) / 3}
		var area float64
		for _, u := range fp.UnitsOn(0) {
			area += u.Area()
		}
		watts := func(u floorplan.Unit) float64 {
			return 60 * perDie[u.Die] * u.Area() / area
		}
		s, err := BuildStacked(fp, watts, 24, 24)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := s.Solve()
		if err != nil {
			t.Fatal(err)
		}
		peak, _, _, _ := sol.Peak()
		return peak
	}
	herded := build(0.70)  // most power on the top die
	uniform := build(0.25) // evenly spread
	if herded >= uniform {
		t.Errorf("herded peak (%.2f K) not below uniform (%.2f K)", herded, uniform)
	}
}

func TestValidateRejectsBadStacks(t *testing.T) {
	bad := []*Stack{
		{Nx: 0, Ny: 4, CellW: 1, CellH: 1, SinkR: 1, Layers: []Layer{{Name: "x", Thickness: 1, K: 1}}},
		{Nx: 4, Ny: 4, CellW: 1, CellH: 1, SinkR: 0, Layers: []Layer{{Name: "x", Thickness: 1, K: 1}}},
		{Nx: 4, Ny: 4, CellW: 1, CellH: 1, SinkR: 1},
		{Nx: 4, Ny: 4, CellW: 1, CellH: 1, SinkR: 1, Layers: []Layer{{Name: "x", Thickness: 0, K: 1}}},
		{Nx: 4, Ny: 4, CellW: 1, CellH: 1, SinkR: 1,
			Layers: []Layer{{Name: "x", Thickness: 1, K: 1, Power: []float64{1}}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad stack %d accepted", i)
		}
		if _, err := s.Solve(); err == nil {
			t.Errorf("bad stack %d solved", i)
		}
	}
}

func TestBuilderRejectsWrongFloorplan(t *testing.T) {
	if _, err := BuildPlanar(floorplan.Stacked(), func(floorplan.Unit) float64 { return 0 }, 8, 8); err == nil {
		t.Error("BuildPlanar accepted a stacked floorplan")
	}
	if _, err := BuildStacked(floorplan.Planar(), func(floorplan.Unit) float64 { return 0 }, 8, 8); err == nil {
		t.Error("BuildStacked accepted a planar floorplan")
	}
}

func TestRasterizePreservesPower(t *testing.T) {
	fp := floorplan.Stacked()
	s, err := BuildStacked(fp, uniformWatts(fp, 72), 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.TotalPower(); math.Abs(got-72) > 1e-6 {
		t.Errorf("rasterized power = %.6f W, want 72", got)
	}
}

func TestLayerDieMapping(t *testing.T) {
	fp := floorplan.Stacked()
	s, _ := BuildStacked(fp, func(floorplan.Unit) float64 { return 0 }, 8, 8)
	for d := 0; d < 4; d++ {
		if got := LayerDie(s, DieLayerIndex(d)); got != d {
			t.Errorf("LayerDie(DieLayerIndex(%d)) = %d", d, got)
		}
	}
	if LayerDie(s, 0) != -1 || LayerDie(s, 1) != -1 {
		t.Error("passive layers should map to die -1")
	}
	pfp := floorplan.Planar()
	ps, _ := BuildPlanar(pfp, func(floorplan.Unit) float64 { return 0 }, 8, 8)
	if LayerDie(ps, 2) != 0 {
		t.Error("planar die layer should map to die 0")
	}
}

func TestRenderLayer(t *testing.T) {
	fp := floorplan.Planar()
	s, _ := BuildPlanar(fp, uniformWatts(fp, 50), 8, 8)
	sol, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	out := sol.RenderLayer(2, AmbientK, AmbientK+60)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 9 { // header + 8 rows
		t.Errorf("render has %d lines, want 9", len(lines))
	}
	if len(lines[1]) != 8 {
		t.Errorf("render row width %d, want 8", len(lines[1]))
	}
}

func TestD2DConductivityMatchesPaperAssumption(t *testing.T) {
	// 25% copper, 75% air.
	want := 0.25*KCopper + 0.75*0.026
	if math.Abs(KD2D-want) > 1e-9 {
		t.Errorf("KD2D = %.3f, want %.3f", KD2D, want)
	}
}

func TestPeakOfUnit(t *testing.T) {
	fp := floorplan.Planar()
	watts := func(u floorplan.Unit) float64 {
		if u.Block == floorplan.BlkDCache && u.Core == 1 {
			return 25
		}
		return 0
	}
	s, _ := BuildPlanar(fp, watts, 32, 32)
	sol, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	hot, _ := fp.Find(floorplan.BlkDCache, 1, 0)
	cold, _ := fp.Find(floorplan.BlkICache, 0, 0)
	if PeakOfUnit(sol, fp, hot) <= PeakOfUnit(sol, fp, cold) {
		t.Error("powered unit not hotter than idle distant unit")
	}
}
