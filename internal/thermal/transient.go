package thermal

import (
	"fmt"
	"math"
)

// Volumetric heat capacities in J/(m³·K), for the transient solver.
const (
	CvSilicon = 1.75e6
	CvCopper  = 3.45e6
	CvTIM     = 2.0e6
	CvD2D     = 0.25*CvCopper + 0.75*1200 // via field: copper + air
)

// heatCapacityFor maps a layer to its volumetric heat capacity by
// material (inferred from its conductivity).
func heatCapacityFor(l *Layer) float64 {
	switch {
	case l.K == KCopper:
		return CvCopper
	case l.K == KTIM:
		return CvTIM
	case l.K == KSilicon:
		return CvSilicon
	default:
		return CvD2D
	}
}

// TransientResult is a sampled transient temperature trajectory.
type TransientResult struct {
	// TimesS are the sample instants in seconds.
	TimesS []float64
	// PeakK[i] is the stack-wide peak temperature at TimesS[i].
	PeakK []float64
	// Final is the temperature field at the end of the simulation.
	Final *Solution
}

// SolveTransient integrates the stack's thermal RC network from a
// uniform ambient-temperature start over duration seconds using backward
// Euler steps of dt seconds (unconditionally stable), sampling the peak
// temperature every sampleEvery steps. It answers questions the
// steady-state solver cannot: how fast hotspots form when a workload
// starts, which the paper's HotSpot methodology also captures.
func (s *Stack) SolveTransient(duration, dt float64, sampleEvery int) (*TransientResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if duration <= 0 || dt <= 0 || dt > duration {
		return nil, fmt.Errorf("thermal: bad transient horizon %g s / step %g s", duration, dt)
	}
	if sampleEvery <= 0 {
		sampleEvery = 1
	}
	nx, ny, nl := s.Nx, s.Ny, len(s.Layers)
	n := nx * ny
	cellArea := s.CellW * s.CellH

	gx := make([]float64, nl)
	gy := make([]float64, nl)
	cap := make([]float64, nl) // thermal capacitance per cell
	for l := range s.Layers {
		layer := &s.Layers[l]
		gx[l] = layer.K * layer.Thickness * s.CellH / s.CellW
		gy[l] = layer.K * layer.Thickness * s.CellW / s.CellH
		cap[l] = heatCapacityFor(layer) * layer.Thickness * cellArea
	}
	gz := make([]float64, nl-1)
	for l := 0; l < nl-1; l++ {
		r := s.Layers[l].Thickness/(2*s.Layers[l].K) + s.Layers[l+1].Thickness/(2*s.Layers[l+1].K)
		gz[l] = cellArea / r
	}
	rSinkCell := s.SinkR*float64(n) + s.Layers[0].Thickness/(2*s.Layers[0].K*cellArea)
	gSink := 1 / rSinkCell

	T := make([][]float64, nl)
	for l := range T {
		T[l] = make([]float64, n)
		for i := range T[l] {
			T[l][i] = s.Ambient
		}
	}

	steps := int(duration/dt + 0.5)
	res := &TransientResult{}
	record := func(t float64) {
		peak := -1.0
		for l := range T {
			for _, v := range T[l] {
				if v > peak {
					peak = v
				}
			}
		}
		res.TimesS = append(res.TimesS, t)
		res.PeakK = append(res.PeakK, peak)
	}
	record(0)

	// Backward Euler: at each step solve (C/dt + ΣG) T' = C/dt·T + Σ G·T'_nbr + P
	// by SOR, warm-started from the previous step.
	const omega = 1.6
	for step := 1; step <= steps; step++ {
		prev := make([][]float64, nl)
		for l := range T {
			prev[l] = append([]float64(nil), T[l]...)
		}
		for iter := 0; iter < 400; iter++ {
			var maxDelta float64
			for l := 0; l < nl; l++ {
				layer := &s.Layers[l]
				selfG := cap[l] / dt
				for y := 0; y < ny; y++ {
					for x := 0; x < nx; x++ {
						i := y*nx + x
						gSum := selfG
						flux := selfG * prev[l][i]
						if x > 0 {
							gSum += gx[l]
							flux += gx[l] * T[l][i-1]
						}
						if x < nx-1 {
							gSum += gx[l]
							flux += gx[l] * T[l][i+1]
						}
						if y > 0 {
							gSum += gy[l]
							flux += gy[l] * T[l][i-nx]
						}
						if y < ny-1 {
							gSum += gy[l]
							flux += gy[l] * T[l][i+nx]
						}
						if l > 0 {
							gSum += gz[l-1]
							flux += gz[l-1] * T[l-1][i]
						}
						if l < nl-1 {
							gSum += gz[l]
							flux += gz[l] * T[l+1][i]
						}
						if l == 0 {
							gSum += gSink
							flux += gSink * s.Ambient
						}
						if layer.Power != nil {
							flux += layer.Power[i]
						}
						delta := flux/gSum - T[l][i]
						T[l][i] += omega * delta
						if d := math.Abs(delta); d > maxDelta {
							maxDelta = d
						}
					}
				}
			}
			if maxDelta < 1e-5 {
				break
			}
		}
		if step%sampleEvery == 0 || step == steps {
			record(float64(step) * dt)
		}
	}
	res.Final = &Solution{Stack: s, T: T}
	return res, nil
}

// TimeToWithin returns the first sampled instant at which the peak
// temperature is within eps kelvin of its final value, approximating the
// stack's thermal settling time.
func (r *TransientResult) TimeToWithin(eps float64) float64 {
	final := r.PeakK[len(r.PeakK)-1]
	for i, p := range r.PeakK {
		if math.Abs(final-p) <= eps {
			return r.TimesS[i]
		}
	}
	return r.TimesS[len(r.TimesS)-1]
}
