package thermal

import (
	"math"
	"math/rand"
	"testing"

	"thermalherd/internal/floorplan"
)

// TestSuperposition: the thermal network is linear, so the temperature
// rise of a combined power map must equal the sum of the rises of its
// parts — a strong end-to-end check on the solver.
func TestSuperposition(t *testing.T) {
	fp := floorplan.Planar()
	rng := rand.New(rand.NewSource(21))
	wattsA := map[floorplan.BlockID]float64{}
	wattsB := map[floorplan.BlockID]float64{}
	for _, u := range fp.Units {
		wattsA[u.Block] = 5 * rng.Float64()
		wattsB[u.Block] = 5 * rng.Float64()
	}
	solve := func(f PowerFor) *Solution {
		s, err := BuildPlanar(fp, f, 12, 12)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := s.Solve()
		if err != nil {
			t.Fatal(err)
		}
		return sol
	}
	perUnit := func(m map[floorplan.BlockID]float64) PowerFor {
		return func(u floorplan.Unit) float64 { return m[u.Block] }
	}
	solA := solve(perUnit(wattsA))
	solB := solve(perUnit(wattsB))
	solAB := solve(func(u floorplan.Unit) float64 { return wattsA[u.Block] + wattsB[u.Block] })

	for l := range solAB.T {
		for i := range solAB.T[l] {
			riseA := solA.T[l][i] - AmbientK
			riseB := solB.T[l][i] - AmbientK
			riseAB := solAB.T[l][i] - AmbientK
			if math.Abs(riseAB-(riseA+riseB)) > 0.02 {
				t.Fatalf("superposition violated at layer %d cell %d: %.4f vs %.4f",
					l, i, riseAB, riseA+riseB)
			}
		}
	}
}

// TestScalingLinearity: doubling power doubles every temperature rise.
func TestScalingLinearity(t *testing.T) {
	fp := floorplan.Stacked()
	watts := func(scale float64) PowerFor {
		return func(u floorplan.Unit) float64 { return scale * u.Area() }
	}
	solve := func(f PowerFor) *Solution {
		s, err := BuildStacked(fp, f, 10, 10)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := s.Solve()
		if err != nil {
			t.Fatal(err)
		}
		return sol
	}
	one := solve(watts(1))
	two := solve(watts(2))
	p1, _, _, _ := one.Peak()
	p2, _, _, _ := two.Peak()
	if math.Abs((p2-AmbientK)-2*(p1-AmbientK)) > 0.05 {
		t.Errorf("scaling violated: rise %.3f K vs 2x %.3f K", p2-AmbientK, p1-AmbientK)
	}
}

// TestThickerTIMRunsHotter: increasing the interface resistance between
// die and spreader must raise the peak — a monotonicity property used by
// the d2d sensitivity ablation.
func TestThickerTIMRunsHotter(t *testing.T) {
	fp := floorplan.Planar()
	build := func(timThickness float64) float64 {
		s, err := BuildPlanar(fp, uniformWatts(fp, 80), 12, 12)
		if err != nil {
			t.Fatal(err)
		}
		s.Layers[1].Thickness = timThickness
		sol, err := s.Solve()
		if err != nil {
			t.Fatal(err)
		}
		p, _, _, _ := sol.Peak()
		return p
	}
	thin := build(20e-6)
	thick := build(200e-6)
	if thick <= thin {
		t.Errorf("thicker TIM (%.2f K) not hotter than thin (%.2f K)", thick, thin)
	}
}
