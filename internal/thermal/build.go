package thermal

import (
	"fmt"
	"strings"

	"thermalherd/internal/floorplan"
)

// PowerFor supplies each floorplan unit's dissipated power in watts.
type PowerFor func(u floorplan.Unit) float64

// DefaultGrid is the lateral resolution used by the experiment harness.
const DefaultGrid = 32

// rasterize spreads each unit's power over the grid cells it covers,
// proportionally to overlap area.
func rasterize(fp *floorplan.Floorplan, die int, watts PowerFor, nx, ny int) []float64 {
	out := make([]float64, nx*ny)
	cw := fp.ChipW / float64(nx)
	ch := fp.ChipH / float64(ny)
	for _, u := range fp.UnitsOn(die) {
		w := watts(u)
		if w == 0 {
			continue
		}
		density := w / u.Area()
		x0 := int(u.X / cw)
		x1 := int((u.X + u.W) / cw)
		y0 := int(u.Y / ch)
		y1 := int((u.Y + u.H) / ch)
		for y := y0; y <= y1 && y < ny; y++ {
			for x := x0; x <= x1 && x < nx; x++ {
				// Overlap of cell (x,y) with the unit rectangle.
				ox := overlap(float64(x)*cw, float64(x+1)*cw, u.X, u.X+u.W)
				oy := overlap(float64(y)*ch, float64(y+1)*ch, u.Y, u.Y+u.H)
				if ox > 0 && oy > 0 {
					out[y*nx+x] += density * ox * oy
				}
			}
		}
	}
	return out
}

func overlap(a0, a1, b0, b1 float64) float64 {
	lo, hi := max(a0, b0), min(a1, b1)
	if hi > lo {
		return hi - lo
	}
	return 0
}

// BuildPlanar constructs the thermal stack for the planar floorplan:
// spreader, TIM, one silicon die carrying the power map.
func BuildPlanar(fp *floorplan.Floorplan, watts PowerFor, nx, ny int) (*Stack, error) {
	if fp.NumDies != 1 {
		return nil, fmt.Errorf("thermal: BuildPlanar wants a 1-die floorplan, got %d", fp.NumDies)
	}
	s := &Stack{
		Nx: nx, Ny: ny,
		CellW:   fp.ChipW / float64(nx) * 1e-3, // floorplan mm → m
		CellH:   fp.ChipH / float64(ny) * 1e-3,
		SinkR:   SinkRTotal,
		Ambient: AmbientK,
	}
	s.Layers = []Layer{
		{Name: "spreader", Thickness: SpreaderThickness, K: KCopper},
		{Name: "tim", Thickness: TIMThickness, K: KTIM},
		{Name: "die", Thickness: BulkDieThickness, K: KSilicon, Power: rasterize(fp, 0, watts, nx, ny)},
	}
	return s, nil
}

// BuildStacked constructs the thermal stack for the 4-die 3D floorplan:
// spreader, TIM, then for each die a silicon layer carrying its power
// map, separated by die-to-die via-field interface layers. Die 0 is the
// top die, adjacent to the heat sink through the TIM, exactly as the
// Thermal Herding organization assumes.
func BuildStacked(fp *floorplan.Floorplan, watts PowerFor, nx, ny int) (*Stack, error) {
	if fp.NumDies != 4 {
		return nil, fmt.Errorf("thermal: BuildStacked wants a 4-die floorplan, got %d", fp.NumDies)
	}
	s := &Stack{
		Nx: nx, Ny: ny,
		CellW:   fp.ChipW / float64(nx) * 1e-3,
		CellH:   fp.ChipH / float64(ny) * 1e-3,
		SinkR:   SinkRTotal,
		Ambient: AmbientK,
	}
	s.Layers = append(s.Layers,
		Layer{Name: "spreader", Thickness: SpreaderThickness, K: KCopper},
		Layer{Name: "tim", Thickness: TIMThickness, K: KTIM},
	)
	for d := 0; d < 4; d++ {
		thickness := ThinDieThickness
		if d == 0 {
			thickness = BulkDieThickness // the top die keeps its bulk
		}
		s.Layers = append(s.Layers, Layer{
			Name:      fmt.Sprintf("die%d", d),
			Thickness: thickness,
			K:         KSilicon,
			Power:     rasterize(fp, d, watts, nx, ny),
		})
		if d < 3 {
			s.Layers = append(s.Layers, Layer{
				Name:      fmt.Sprintf("d2d%d", d),
				Thickness: D2DThickness,
				K:         KD2D,
			})
		}
	}
	return s, nil
}

// DieLayerIndex returns the layer index of die d in a stack built by
// BuildStacked (or of the single die for BuildPlanar when d == 0).
func DieLayerIndex(d int) int {
	if d == 0 {
		return 2
	}
	return 2 + 2*d
}

// HottestUnit locates the floorplan unit containing the solution's peak
// cell, attributing the hotspot to a microarchitectural block as the
// paper's Figure 10 annotations do. dieOfLayer maps a solution layer
// index back to a floorplan die (use LayerDie).
func HottestUnit(sol *Solution, fp *floorplan.Floorplan) (floorplan.Unit, float64, bool) {
	peak, layer, x, y := sol.Peak()
	die := LayerDie(sol.Stack, layer)
	if die < 0 {
		return floorplan.Unit{}, peak, false
	}
	// Cell centre in floorplan coordinates (mm).
	cx := (float64(x) + 0.5) * fp.ChipW / float64(sol.Stack.Nx)
	cy := (float64(y) + 0.5) * fp.ChipH / float64(sol.Stack.Ny)
	for _, u := range fp.UnitsOn(die) {
		if cx >= u.X && cx < u.X+u.W && cy >= u.Y && cy < u.Y+u.H {
			return u, peak, true
		}
	}
	return floorplan.Unit{}, peak, false
}

// LayerDie maps a layer index to its floorplan die index, or -1 for
// passive layers.
func LayerDie(s *Stack, layer int) int {
	name := s.Layers[layer].Name
	switch {
	case name == "die":
		return 0
	case strings.HasPrefix(name, "die"):
		return int(name[3] - '0')
	}
	return -1
}

// PeakOfUnit returns the peak temperature within one floorplan unit's
// footprint on its die's layer.
func PeakOfUnit(sol *Solution, fp *floorplan.Floorplan, u floorplan.Unit) float64 {
	layer := -1
	for l := range sol.Stack.Layers {
		if LayerDie(sol.Stack, l) == u.Die {
			layer = l
			break
		}
	}
	if layer < 0 {
		return sol.Stack.Ambient
	}
	cw := fp.ChipW / float64(sol.Stack.Nx)
	ch := fp.ChipH / float64(sol.Stack.Ny)
	return sol.MaxOverCells(layer, func(x, y int) bool {
		cx := (float64(x) + 0.5) * cw
		cy := (float64(y) + 0.5) * ch
		return cx >= u.X && cx < u.X+u.W && cy >= u.Y && cy < u.Y+u.H
	})
}

// RenderLayer draws an ASCII heat map of one layer, normalizing shades
// between the given temperature bounds.
func (sol *Solution) RenderLayer(l int, minK, maxK float64) string {
	const ramp = " .:-=+*#%@"
	var b strings.Builder
	fmt.Fprintf(&b, "layer %s  [%.1fK .. %.1fK]\n", sol.Stack.Layers[l].Name, minK, maxK)
	for y := 0; y < sol.Stack.Ny; y++ {
		for x := 0; x < sol.Stack.Nx; x++ {
			t := sol.At(l, x, y)
			f := (t - minK) / (maxK - minK)
			idx := int(f * float64(len(ramp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			b.WriteByte(ramp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
