package server

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime/debug"

	"thermalherd/internal/config"
	"thermalherd/internal/cpu"
	"thermalherd/internal/experiments"
	"thermalherd/internal/thermal"
	"thermalherd/internal/trace"
)

// progressFunc reports completed vs. total units of work.
type progressFunc func(completed, total int)

// execJob invokes the executor for one job with panic containment:
// a panicking executor (organic, or injected through the FaultExec
// point — which fires first, so injected panics exercise this exact
// recovery path) is converted into an error carrying the panic value
// and stack, and panicked is reported so the caller can attribute the
// failure. The daemon survives either way.
func (s *Server) execJob(ctx context.Context, j *job) (res json.RawMessage, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
			panicked = true
		}
	}()
	if ferr := s.faults.Fire(FaultExec); ferr != nil {
		return nil, ferr, false
	}
	res, err = s.exec(ctx, j.spec, j.setProgress)
	return res, err, false
}

// totalUnits estimates a spec's unit count (workload simulations, plus
// one closing unit for post-processing) so progress has a stable
// denominator.
func totalUnits(spec Spec) int {
	n := trace.SuiteSize
	switch spec.Kind {
	case KindTiming:
		return 1
	case KindThermal:
		return 2 // simulate + thermal solve
	case KindExperiment:
		switch spec.Section {
		case "table1", "table2":
			return 1
		case "fig8":
			return len(config.AllConfigs()) * n
		case "fig9":
			// mpeg2enc on three machines plus the suite on Base and 3D.
			return 3 + 2*n
		case "fig10":
			return 3 * n
		case "density":
			return 2
		case "width":
			return n
		}
	}
	return 1
}

// runSpec executes one normalized spec, reporting progress through
// report. It is the worker pool's default executor; tests substitute
// their own. Cancellation is observed by the runner between
// simulation phases, surfacing as ctx.Err().
func runSpec(ctx context.Context, spec Spec, report progressFunc) (json.RawMessage, error) {
	opts, err := spec.Depths.options()
	if err != nil {
		return nil, err
	}
	total := totalUnits(spec)
	done := 0
	opts.OnSimulated = func(string, string) {
		done++
		if done <= total {
			report(done, total)
		}
	}
	report(0, total)
	r := experiments.NewRunner(opts)
	r.SetContext(ctx)

	switch spec.Kind {
	case KindTiming:
		return runTiming(r, spec)
	case KindThermal:
		return runThermal(r, spec, report, total)
	case KindExperiment:
		return runExperiment(r, spec)
	}
	return nil, fmt.Errorf("unknown job kind %q", spec.Kind)
}

// timingResult is the JSON result of a timing job.
type timingResult struct {
	Workload string     `json:"workload"`
	Config   string     `json:"config"`
	ClockGHz float64    `json:"clock_ghz"`
	IPC      float64    `json:"ipc"`
	IPns     float64    `json:"ipns"`
	Stats    *cpu.Stats `json:"stats"`
}

func runTiming(r *experiments.Runner, spec Spec) (json.RawMessage, error) {
	cfg, err := config.ByName(spec.Config)
	if err != nil {
		return nil, err
	}
	s, err := r.Simulate(cfg, spec.Workload)
	if err != nil {
		return nil, err
	}
	return json.Marshal(timingResult{
		Workload: spec.Workload,
		Config:   cfg.Name,
		ClockGHz: cfg.ClockGHz,
		IPC:      s.IPC(),
		IPns:     s.IPns(cfg.ClockGHz),
		Stats:    s,
	})
}

// thermalResult is the JSON result of a thermal job.
type thermalResult struct {
	Workload   string  `json:"workload"`
	Config     string  `json:"config"`
	IPC        float64 `json:"ipc"`
	DynamicW   float64 `json:"dynamic_w"`
	ClockW     float64 `json:"clock_w"`
	LeakageW   float64 `json:"leakage_w"`
	TotalW     float64 `json:"total_w"`
	PeakK      float64 `json:"peak_k"`
	Hotspot    string  `json:"hotspot,omitempty"`
	HotspotK   float64 `json:"hotspot_k,omitempty"`
	Iterations int     `json:"solver_iterations"`
}

func runThermal(r *experiments.Runner, spec Spec, report progressFunc, total int) (json.RawMessage, error) {
	cfg, err := config.ByName(spec.Config)
	if err != nil {
		return nil, err
	}
	s, err := r.Simulate(cfg, spec.Workload)
	if err != nil {
		return nil, err
	}
	b, err := r.PowerFor(cfg, spec.Workload)
	if err != nil {
		return nil, err
	}
	sol, fp, err := r.SolveThermal(cfg, b)
	if err != nil {
		return nil, err
	}
	report(total, total)
	res := thermalResult{
		Workload:   spec.Workload,
		Config:     cfg.Name,
		IPC:        s.IPC(),
		DynamicW:   b.DynamicW,
		ClockW:     b.ClockW,
		LeakageW:   b.LeakageW,
		TotalW:     b.TotalW,
		Iterations: sol.Iterations,
	}
	res.PeakK, _, _, _ = sol.Peak()
	if u, t, ok := thermal.HottestUnit(sol, fp); ok {
		res.Hotspot = u.Block.String()
		res.HotspotK = t
	}
	return json.Marshal(res)
}

// experimentResult is the JSON result of an experiment job: the
// section's rendered text plus section-specific numbers.
type experimentResult struct {
	Section string             `json:"section"`
	Text    string             `json:"text"`
	Values  map[string]float64 `json:"values,omitempty"`
}

func runExperiment(r *experiments.Runner, spec Spec) (json.RawMessage, error) {
	res := experimentResult{Section: spec.Section, Values: map[string]float64{}}
	switch spec.Section {
	case "table1":
		res.Text = experiments.Table1().String()
	case "table2":
		res.Text = experiments.Table2().String()
	case "fig8":
		f, err := experiments.Figure8(r)
		if err != nil {
			return nil, err
		}
		res.Text = f.Render("speedup").String()
		for cfg, v := range f.MoMSpeedup {
			res.Values["mom_speedup_"+cfg] = v
		}
	case "fig9":
		f, err := experiments.Figure9(r)
		if err != nil {
			return nil, err
		}
		res.Text = f.Render().String()
		res.Values["planar_w"] = f.Planar.TotalW
		res.Values["3d_noth_w"] = f.NoTH.TotalW
		res.Values["3d_th_w"] = f.TH.TotalW
		res.Values["min_saving"] = f.MinSaving
		res.Values["max_saving"] = f.MaxSaving
	case "fig10":
		f, err := experiments.Figure10(r, spec.Workload)
		if err != nil {
			return nil, err
		}
		res.Text = f.Render().String()
		for cfg, p := range f.Worst {
			res.Values["worst_peak_k_"+cfg] = p.PeakK
		}
	case "density":
		planar, density, err := experiments.DensityStudy(r, "mpeg2enc")
		if err != nil {
			return nil, err
		}
		res.Text = fmt.Sprintf("planar peak %.1f K -> 4x-density stack peak %.1f K (+%.1f K)\n",
			planar, density, density-planar)
		res.Values["planar_peak_k"] = planar
		res.Values["density_peak_k"] = density
	case "width":
		wa, err := experiments.WidthAccuracy(r)
		if err != nil {
			return nil, err
		}
		res.Text = fmt.Sprintf("suite-wide width prediction accuracy: %.1f%%\n", 100*wa)
		res.Values["width_accuracy"] = wa
	default:
		return nil, fmt.Errorf("unknown experiment section %q", spec.Section)
	}
	return json.Marshal(res)
}
