package server

import (
	"testing"
	"time"
)

func testJob(id string) *job {
	j, err := newJob(id, Spec{Kind: KindTiming, Config: "3D", Workload: "patricia"}, nil)
	if err != nil {
		panic(err)
	}
	return j
}

func TestQueueFIFO(t *testing.T) {
	q := newQueue(3, nil)
	for _, id := range []string{"a", "b", "c"} {
		if err := q.push(testJob(id)); err != nil {
			t.Fatalf("push(%s): %v", id, err)
		}
	}
	if q.len() != 3 {
		t.Fatalf("len = %d, want 3", q.len())
	}
	for _, want := range []string{"a", "b", "c"} {
		j, ok := q.pop()
		if !ok || j.id != want {
			t.Fatalf("pop = %v,%v, want %s", j, ok, want)
		}
	}
}

func TestQueueFull(t *testing.T) {
	q := newQueue(1, nil)
	if err := q.push(testJob("a")); err != nil {
		t.Fatalf("push: %v", err)
	}
	if err := q.push(testJob("b")); err != ErrQueueFull {
		t.Fatalf("push on full = %v, want ErrQueueFull", err)
	}
}

func TestQueueClose(t *testing.T) {
	q := newQueue(2, nil)
	q.push(testJob("a"))
	q.close()
	if err := q.push(testJob("b")); err != ErrQueueClosed {
		t.Fatalf("push after close = %v, want ErrQueueClosed", err)
	}
	// Remaining items still drain, then pop reports closed.
	if j, ok := q.pop(); !ok || j.id != "a" {
		t.Fatalf("pop after close = %v,%v, want a,true", j, ok)
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop on drained closed queue reported ok")
	}
}

func TestQueueCloseWakesBlockedPop(t *testing.T) {
	q := newQueue(1, nil)
	done := make(chan bool, 1)
	go func() {
		_, ok := q.pop()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q.close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("blocked pop returned ok after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pop did not wake on close")
	}
}

func TestQueueDrainPending(t *testing.T) {
	q := newQueue(4, nil)
	q.push(testJob("a"))
	q.push(testJob("b"))
	pending := q.drainPending()
	if len(pending) != 2 || pending[0].id != "a" || pending[1].id != "b" {
		t.Fatalf("drainPending = %v", pending)
	}
	if q.len() != 0 {
		t.Fatalf("len after drain = %d, want 0", q.len())
	}
}
