package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"thermalherd/internal/clock"
	"thermalherd/internal/journal"
)

// blockingExec returns a stub executor that parks every job on release
// until the test sends (one job per send) or closes it (all jobs
// proceed). Jobs that proceed return a tiny fixed result.
func blockingExec(release chan struct{}) func(ctx context.Context, spec Spec, report progressFunc) (json.RawMessage, error) {
	return func(ctx context.Context, spec Spec, report progressFunc) (json.RawMessage, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return json.RawMessage(`{"ok":true}`), nil
	}
}

// fastExec completes every job immediately.
func fastExec(ctx context.Context, spec Spec, report progressFunc) (json.RawMessage, error) {
	return json.RawMessage(`{"ok":true}`), nil
}

// specBody renders a valid timing spec whose fast_forward knob makes
// it content-unique, so each job gets its own cache key.
func specBody(n int) string {
	return `{"kind":"timing","config":"TH","workload":"bitcount",
	         "depths":{"preset":"quick","fast_forward":` + itoa(3000+n) + `,"warmup":500,"measure":1000}}`
}

func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}

// waitAppends polls until the journal has absorbed want appends; the
// crash-image copy must not race an in-flight frame write.
func waitAppends(t *testing.T, s *Server, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if s.journal.Stats().Appends >= want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("journal appends never reached %d (at %d)", want, s.journal.Stats().Appends)
}

// copyCrashImage snapshots a journal directory's files byte-for-byte
// into a fresh dir, simulating the on-disk state a kill -9 leaves.
func copyCrashImage(t *testing.T, from string) string {
	t.Helper()
	to := t.TempDir()
	ents, err := os.ReadDir(from)
	if err != nil {
		t.Fatalf("read journal dir: %v", err)
	}
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(from, e.Name()))
		if err != nil {
			t.Fatalf("read %s: %v", e.Name(), err)
		}
		if err := os.WriteFile(filepath.Join(to, e.Name()), b, 0o644); err != nil {
			t.Fatalf("write %s: %v", e.Name(), err)
		}
	}
	return to
}

// buildCrashImage runs a journaling server to a known mid-flight state
// — job 1 completed, job 2 started (executor parked), job 3 queued —
// and returns a point-in-time copy of its journal directory. The WAL
// holds exactly 6 events: accepted(1), started(1), accepted(2),
// accepted(3), completed(1), started(2).
func buildCrashImage(t *testing.T) (dir string, ids [3]string) {
	t.Helper()
	jdir := t.TempDir()
	s, err := New(Config{Workers: 1, QueueDepth: 8, CacheSize: 8, JournalDir: jdir, FsyncPolicy: "off"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	release := make(chan struct{})
	stubExec(s, blockingExec(release))
	s.Start()
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		close(release) // unpark whatever is still blocked so Drain finishes
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
	})

	for i := 0; i < 3; i++ {
		resp, st := postJob(t, ts, specBody(i))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d = %s, want 202", i, resp.Status)
		}
		ids[i] = st.ID
	}
	waitAppends(t, s, 4) // 3 accepted + started(1); the worker is parked on job 1
	release <- struct{}{}
	waitState(t, ts, ids[0], StateDone)
	// Job 1's completed event plus job 2's started event (the single
	// worker moves straight on) bring the WAL to 6 frames.
	waitAppends(t, s, 6)
	return copyCrashImage(t, jdir), ids
}

// TestRestartRecoversCrashImage boots a second server on a crash
// image: the completed job must come back terminal with its result and
// warm cache entry, the unfinished jobs must be re-enqueued and run to
// completion, and /readyz must report "recovering" until Start's
// replay completes.
func TestRestartRecoversCrashImage(t *testing.T) {
	dir, ids := buildCrashImage(t)

	s, err := New(Config{Workers: 1, QueueDepth: 8, CacheSize: 8, JournalDir: dir, FsyncPolicy: "off"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	stubExec(s, fastExec)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
	})

	// Between New and Start the replay has not been applied: the
	// readiness probe must steer traffic away.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	var ready struct {
		Ready  bool   `json:"ready"`
		Reason string `json:"reason"`
	}
	json.NewDecoder(resp.Body).Decode(&ready)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || ready.Ready || ready.Reason != "recovering" {
		t.Fatalf("/readyz before Start = %d %+v, want 503 recovering", resp.StatusCode, ready)
	}

	s.Start()

	// The completed job survived with its result intact.
	st := getStatus(t, ts, ids[0])
	if st.State != StateDone {
		t.Fatalf("job %s after recovery = %s, want done", ids[0], st.State)
	}
	res, err := http.Get(ts.URL + "/v1/jobs/" + ids[0] + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK || string(body) != `{"ok":true}` {
		t.Fatalf("recovered result = %d %q, want the journaled document", res.StatusCode, body)
	}

	// The started-but-unfinished and queued jobs re-ran to completion.
	waitState(t, ts, ids[1], StateDone)
	waitState(t, ts, ids[2], StateDone)

	doc := metricsDoc(t, ts)
	if got := counter(t, doc, "journal", "replayed"); got != 6 {
		t.Errorf("journal.replayed = %v, want 6", got)
	}
	if got := counter(t, doc, "journal", "recovered_jobs"); got != 2 {
		t.Errorf("journal.recovered_jobs = %v, want 2", got)
	}
	if got := counter(t, doc, "jobs", "completed"); got != 3 {
		t.Errorf("completed = %v, want 3 (1 replayed + 2 re-run, never a double-count)", got)
	}
	// The recovered result warmed the cache: an identical resubmission
	// is a hit, not a third execution of job 1's spec.
	resp2, st2 := postJob(t, ts, specBody(0))
	if resp2.StatusCode != http.StatusOK || !st2.FromCache {
		t.Fatalf("resubmit after recovery = %d fromCache=%v, want 200 cached", resp2.StatusCode, st2.FromCache)
	}

	// After Start the probe is green again.
	resp3, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("/readyz after Start = %d, want 200", resp3.StatusCode)
	}

	// New submissions must not collide with recovered ids.
	resp4, st4 := postJob(t, ts, specBody(99))
	if resp4.StatusCode != http.StatusAccepted {
		t.Fatalf("fresh submit = %s, want 202", resp4.Status)
	}
	for _, id := range ids {
		if st4.ID == id {
			t.Fatalf("fresh job reused recovered id %s", id)
		}
	}
}

// TestTornWriteSweep is the crash-consistency acceptance test: for
// EVERY byte prefix of a real server's WAL, recovery must succeed
// without panicking, must never count a completed job twice, and must
// never re-enqueue a job the journal shows as terminal.
func TestTornWriteSweep(t *testing.T) {
	dir, ids := buildCrashImage(t)
	wal, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatalf("read wal: %v", err)
	}
	snap, err := os.ReadFile(filepath.Join(dir, "snapshot.db"))
	if err != nil {
		t.Fatalf("read snapshot: %v", err)
	}
	if len(wal) == 0 {
		t.Fatal("crash image WAL is empty; the sweep would test nothing")
	}

	sweep := t.TempDir()
	for n := 0; n <= len(wal); n++ {
		if err := os.WriteFile(filepath.Join(sweep, "snapshot.db"), snap, 0o644); err != nil {
			t.Fatalf("prefix %d: seed snapshot: %v", n, err)
		}
		if err := os.WriteFile(filepath.Join(sweep, "wal.log"), wal[:n], 0o644); err != nil {
			t.Fatalf("prefix %d: seed wal: %v", n, err)
		}
		s, err := New(Config{Workers: 1, QueueDepth: 8, CacheSize: 8, JournalDir: sweep, FsyncPolicy: "off"})
		if err != nil {
			t.Fatalf("prefix %d: New: %v", n, err)
		}
		// applyReplay alone (no Start) keeps the sweep from spinning up
		// 2×len(wal) worker pools; it is exactly the recovery path.
		s.applyReplay()

		var done, pending int
		for id, j := range s.jobs {
			switch j.status().State {
			case StateDone, StateFailed, StateCanceled:
				done++
			default:
				pending++
			}
			if id != ids[0] && id != ids[1] && id != ids[2] {
				t.Fatalf("prefix %d: recovered unknown job id %s", n, id)
			}
		}
		if got := int(s.metrics.submitted.Value()); got != len(s.jobs) {
			t.Fatalf("prefix %d: submitted = %d but table has %d jobs", n, got, len(s.jobs))
		}
		if got := s.metrics.completed.Value(); got > 1 {
			t.Fatalf("prefix %d: completed = %d; a torn tail resurrected a completed job twice", n, got)
		}
		if got := s.sched.len(); got != pending {
			t.Fatalf("prefix %d: queue holds %d jobs but %d are pending (%d terminal) — a terminal job was re-enqueued",
				n, got, pending, done)
		}
		// The accounting identity holds modulo still-pending work.
		terminal := s.metrics.cacheHits.Value() + s.metrics.completed.Value() +
			s.metrics.failed.Value() + s.metrics.canceled.Value() + s.metrics.rejected.Value()
		if s.metrics.submitted.Value() != terminal+uint64(pending) {
			t.Fatalf("prefix %d: submitted=%d != terminal %d + pending %d",
				n, s.metrics.submitted.Value(), terminal, pending)
		}
		s.journal.Close()
	}
}

// TestReplaySnapshotWALOverlap covers the crash window between
// snapshot rename and WAL truncation: the WAL still holds events the
// snapshot already folded in. Replay must apply them idempotently —
// one job, counted once.
func TestReplaySnapshotWALOverlap(t *testing.T) {
	dir := t.TempDir()
	jnl, _, err := journal.Open(journal.Options{Dir: dir, Fsync: journal.FsyncOff})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	spec, _ := json.Marshal(map[string]string{"kind": "timing", "config": "TH", "workload": "bitcount"})
	res := json.RawMessage(`{"ok":1}`)
	accepted := journal.Event{Type: journal.EventAccepted, ID: "job-000001", Spec: spec, Key: "k1", At: "2026-08-06T00:00:00Z"}
	completed := journal.Event{Type: journal.EventCompleted, ID: "job-000001", Result: res, At: "2026-08-06T00:00:01Z"}
	jnl.Append(accepted)
	jnl.Append(completed)
	// Snapshot folds the done job in and truncates the WAL...
	if err := jnl.WriteSnapshot(journal.Snapshot{Jobs: []journal.JobRecord{{
		ID: "job-000001", Spec: spec, Key: "k1", State: string(StateDone), Result: res,
		Submitted: "2026-08-06T00:00:00Z", Finished: "2026-08-06T00:00:01Z",
	}}}); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	// ...then the "crash" resurrects the same events behind it, exactly
	// what a kill between rename and truncate leaves on disk.
	jnl.Append(accepted)
	jnl.Append(completed)
	jnl.Close()

	s, err := New(Config{Workers: 1, JournalDir: dir, FsyncPolicy: "off"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.applyReplay()
	defer s.journal.Close()
	if len(s.jobs) != 1 {
		t.Fatalf("job table has %d entries, want 1", len(s.jobs))
	}
	if got := s.metrics.completed.Value(); got != 1 {
		t.Fatalf("completed = %d, want exactly 1 (idempotent overlap replay)", got)
	}
	if got := s.sched.len(); got != 0 {
		t.Fatalf("queue holds %d jobs; the done job must not re-run", got)
	}
}

// TestGracefulDrainWritesCleanClose is the drain-order regression
// test, on a fake clock for deterministic timestamps: Drain must
// cancel queued-but-unstarted jobs BEFORE waiting on the running one,
// journal those cancellations, and leave a clean-close snapshot a
// restart replays with zero WAL records.
func TestGracefulDrainWritesCleanClose(t *testing.T) {
	dir := t.TempDir()
	fake := clock.NewFake(time.Unix(1754000000, 0))
	s, err := New(Config{Workers: 1, QueueDepth: 8, CacheSize: 8,
		JournalDir: dir, FsyncPolicy: "always", Clock: fake})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	release := make(chan struct{})
	stubExec(s, blockingExec(release))
	s.Start()
	ts := httptest.NewServer(s)
	defer ts.Close()

	var ids [3]string
	for i := 0; i < 3; i++ {
		resp, st := postJob(t, ts, specBody(i))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d = %s", i, resp.Status)
		}
		ids[i] = st.ID
	}
	waitState(t, ts, ids[0], StateRunning)

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	// Drain order: the queued jobs are canceled synchronously before
	// the pool wait, while job 1 is still parked in its executor.
	for _, id := range ids[1:] {
		st := waitState(t, ts, id, StateCanceled)
		if st.Error == "" {
			t.Errorf("drained job %s has no cancellation reason", id)
		}
	}
	if st := getStatus(t, ts, ids[0]); st.State != StateRunning {
		t.Fatalf("running job was %s during drain, want running until released", st.State)
	}
	release <- struct{}{}
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v (want clean)", err)
	}
	waitState(t, ts, ids[0], StateDone)

	// The restart sees a clean close: snapshot only, zero WAL events.
	s2, err := New(Config{Workers: 1, JournalDir: dir, FsyncPolicy: "always", Clock: fake})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.journal.Close()
	rep := s2.replay
	if rep == nil || !rep.CleanClose {
		t.Fatalf("replay = %+v, want a clean close marker", rep)
	}
	if len(rep.Events) != 0 {
		t.Fatalf("clean restart replayed %d WAL events, want 0", len(rep.Events))
	}
	s2.applyReplay()
	if len(s2.jobs) != 3 {
		t.Fatalf("snapshot restored %d jobs, want 3", len(s2.jobs))
	}
	if got := s2.sched.len(); got != 0 {
		t.Fatalf("clean restart re-enqueued %d jobs, want 0 (all terminal)", got)
	}
	states := map[State]int{}
	for _, j := range s2.jobs {
		states[j.status().State]++
	}
	if states[StateDone] != 1 || states[StateCanceled] != 2 {
		t.Fatalf("recovered states = %v, want 1 done + 2 canceled", states)
	}
}

// TestIdempotencyDedupAcrossRestart: a key accepted before a clean
// restart must dedupe a resubmission after it — the journal carries
// the idempotency table.
func TestIdempotencyDedupAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Workers: 1, QueueDepth: 8, CacheSize: 8, JournalDir: dir, FsyncPolicy: "always"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	stubExec(s, fastExec)
	s.Start()
	ts := httptest.NewServer(s)

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(specBody(0)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", "retry-me")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var st Status
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	waitState(t, ts, st.ID, StateDone)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	s.Drain(ctx)
	cancel()
	ts.Close()

	s2, err := New(Config{Workers: 1, QueueDepth: 8, CacheSize: 8, JournalDir: dir, FsyncPolicy: "always"})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	stubExec(s2, fastExec)
	s2.Start()
	ts2 := httptest.NewServer(s2)
	t.Cleanup(func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s2.Drain(ctx)
	})

	req2, _ := http.NewRequest(http.MethodPost, ts2.URL+"/v1/jobs", strings.NewReader(specBody(0)))
	req2.Header.Set("Content-Type", "application/json")
	req2.Header.Set("Idempotency-Key", "retry-me")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	var st2 Status
	json.NewDecoder(resp2.Body).Decode(&st2)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resubmit across restart = %d, want 200 (deduped)", resp2.StatusCode)
	}
	if st2.ID != st.ID {
		t.Fatalf("dedup returned job %s, want original %s", st2.ID, st.ID)
	}
	doc := metricsDoc(t, ts2)
	if got := counter(t, doc, "jobs", "deduped"); got != 1 {
		t.Errorf("jobs.deduped = %v, want 1", got)
	}
	if got := counter(t, doc, "jobs", "completed"); got != 1 {
		t.Errorf("completed = %v, want 1 (the retry must not re-execute)", got)
	}
}
