package server

import (
	"sync"
	"time"

	"thermalherd/internal/stats"
)

// metrics aggregates the expvar-style counters served at /metrics.
// One mutex guards everything: updates are a few counter increments
// on job-lifecycle events, far off any hot path.
type metrics struct {
	mu sync.Mutex

	submitted stats.Counter
	completed stats.Counter
	failed    stats.Counter
	canceled  stats.Counter
	rejected  stats.Counter

	// Resilience sub-counters: panicsRecovered and deadlineExceeded
	// jobs are also counted in failed; brownoutRejects are also counted
	// in rejected. The sub-counters attribute *why*.
	panicsRecovered  stats.Counter
	deadlineExceeded stats.Counter
	brownoutRejects  stats.Counter
	workerRestarts   stats.Counter

	// deduped attributes submissions answered by idempotency-key
	// dedup; each is also counted in submitted and cacheHits (the
	// submission was absorbed without executing anything).
	deduped stats.Counter

	cacheHits   stats.Counter
	cacheMisses stats.Counter

	batchRequests stats.Counter
	listRequests  stats.Counter

	// latency histograms per job kind, in milliseconds.
	latency map[Kind]*stats.Histogram
}

func newMetrics() *metrics {
	m := &metrics{latency: make(map[Kind]*stats.Histogram)}
	for _, k := range Kinds() {
		// 40 × 250 ms buckets span 0–10 s; slower jobs land in the
		// overflow bucket.
		m.latency[k] = stats.NewHistogram(metricLatencyHistPrefix+string(k), 0, 250, 40)
	}
	return m
}

func (m *metrics) inc(c *stats.Counter) {
	m.mu.Lock()
	c.Inc()
	m.mu.Unlock()
}

// observeLatency records one finished job's wall time.
func (m *metrics) observeLatency(k Kind, d time.Duration) {
	m.mu.Lock()
	if h, ok := m.latency[k]; ok {
		h.Observe(int(d.Milliseconds()))
	}
	m.mu.Unlock()
}

// gauges carries the point-in-time values snapshot folds into the
// /metrics document alongside the counters.
type gauges struct {
	queueDepth, queueCap int
	running              int
	cacheLen, cacheCap   int
	workers              int
	brownoutActive       bool
	// faultsInjected is the per-fault-point injected count from the
	// fault-injection registry (empty when disarmed).
	faultsInjected map[string]uint64
	// Journal durability gauges; all zero when the journal is disabled
	// (the keys are still emitted so dashboards need no conditionals).
	journalAppends   uint64
	journalFsyncs    uint64
	journalReplayed  uint64
	journalTruncated uint64
	journalRecovered uint64
}

// snapshot renders the metrics as the /metrics JSON document. The
// document is authored flat, keyed by the metricnames registry
// constants, and folded into the nested wire shape by nestMetrics —
// thermlint's metrickeys analyzer verifies every key here against the
// registry.
//
//thermlint:metricsdoc
func (m *metrics) snapshot(g gauges) map[string]any {
	m.mu.Lock()
	defer m.mu.Unlock()
	hists := make(map[string]stats.HistogramSnapshot, len(m.latency))
	quants := make(map[string]map[string]float64)
	for k, h := range m.latency {
		snap := h.Snapshot()
		hists[string(k)] = snap
		if snap.Total > 0 {
			quants[string(k)] = map[string]float64{
				metricQuantP50: snap.Quantile(0.50),
				metricQuantP95: snap.Quantile(0.95),
				metricQuantP99: snap.Quantile(0.99),
			}
		}
	}
	if g.faultsInjected == nil {
		g.faultsInjected = map[string]uint64{}
	}
	return nestMetrics(map[string]any{
		metricJobsSubmitted:        m.submitted.Value(),
		metricJobsRunning:          g.running,
		metricJobsCompleted:        m.completed.Value(),
		metricJobsFailed:           m.failed.Value(),
		metricJobsCanceled:         m.canceled.Value(),
		metricJobsRejected:         m.rejected.Value(),
		metricJobsPanicsRecovered:  m.panicsRecovered.Value(),
		metricJobsDeadlineExceeded: m.deadlineExceeded.Value(),
		metricJobsDeduped:          m.deduped.Value(),

		metricJournalAppends:   g.journalAppends,
		metricJournalFsyncs:    g.journalFsyncs,
		metricJournalReplayed:  g.journalReplayed,
		metricJournalTruncated: g.journalTruncated,
		metricJournalRecovered: g.journalRecovered,

		metricAdmissionBrownoutRejects: m.brownoutRejects.Value(),
		metricAdmissionBrownoutActive:  g.brownoutActive,

		metricWorkersPool:     g.workers,
		metricWorkersRestarts: m.workerRestarts.Value(),

		metricQueueDepth:    g.queueDepth,
		metricQueueCapacity: g.queueCap,

		metricCacheHits:     m.cacheHits.Value(),
		metricCacheMisses:   m.cacheMisses.Value(),
		metricCacheEntries:  g.cacheLen,
		metricCacheCapacity: g.cacheCap,

		metricHTTPBatchRequests: m.batchRequests.Value(),
		metricHTTPListRequests:  m.listRequests.Value(),

		metricFaultsInjected: g.faultsInjected,

		metricLatencyHist:      hists,
		metricLatencyQuantiles: quants,
	})
}
