package server

import (
	"sync"
	"time"

	"thermalherd/internal/qos"
	"thermalherd/internal/stats"
)

// metrics aggregates the expvar-style counters served at /metrics.
// One mutex guards everything: updates are a few counter increments
// on job-lifecycle events, far off any hot path.
//
// The identity declaration below is machine-checked: thermlint's
// acctid analyzer proves that every submitted increment is settled by
// exactly one right-hand-side increment on every return path (or is
// explicitly handed off to a later settle), so the reconciliation
// chaosCheck asserts can never drift by construction.
//
//thermlint:identity metrics: submitted = cacheHits + completed + failed + canceled + rejected + migrated
type metrics struct {
	mu sync.Mutex

	submitted stats.Counter
	completed stats.Counter
	failed    stats.Counter
	canceled  stats.Counter
	rejected  stats.Counter
	// migrated settles jobs herded to the ring successor during drain:
	// locally terminal, adopted (and re-submitted) by the successor, so
	// fleet-wide reconciliation subtracts migrations from done totals.
	migrated stats.Counter

	// Resilience sub-counters: panicsRecovered and deadlineExceeded
	// jobs are also counted in failed; brownoutRejects and quotaRejects
	// are also counted in rejected. The sub-counters attribute *why*.
	panicsRecovered  stats.Counter
	deadlineExceeded stats.Counter
	brownoutRejects  stats.Counter
	quotaRejects     stats.Counter
	workerRestarts   stats.Counter

	// deduped attributes submissions answered by idempotency-key
	// dedup; each is also counted in submitted and cacheHits (the
	// submission was absorbed without executing anything).
	deduped stats.Counter

	cacheHits   stats.Counter
	cacheMisses stats.Counter

	batchRequests stats.Counter
	listRequests  stats.Counter

	// latency histograms per job kind, in milliseconds.
	latency map[Kind]*stats.Histogram
	// qwait histograms attribute queue wait per predicted class — the
	// direct measure of whether the short fast pool is working.
	qwait map[string]*stats.Histogram

	// tenants holds the per-tenant accounting identity counters, in
	// first-seen order for deterministic emission. Bounded: beyond
	// maxTenantCounters distinct tenants, new ones fold into "other".
	tenants     map[string]*tenantCounters
	tenantOrder []string
}

// tenantCounters is one tenant's slice of the accounting identity:
// submitted == hits + completed + failed + canceled + rejected must
// reconcile within each tenant exactly as it does globally.
type tenantCounters struct {
	submitted stats.Counter
	hits      stats.Counter
	completed stats.Counter
	failed    stats.Counter
	canceled  stats.Counter
	rejected  stats.Counter
	migrated  stats.Counter
}

// tcField selects which tenantCounters counter tinc bumps. The same
// accounting identity holds per tenant, proven over the tinc call
// sites instead of the struct fields (tinc's own switch is the single
// place the fields move).
//
//thermlint:identity tcField: tcSubmitted = tcHits + tcCompleted + tcFailed + tcCanceled + tcRejected + tcMigrated
type tcField int

const (
	tcSubmitted tcField = iota
	tcHits
	tcCompleted
	tcFailed
	tcCanceled
	tcRejected
	tcMigrated
)

// maxTenantCounters bounds the per-tenant metric map against tenant
// churn; overflow tenants share the "other" bucket.
const maxTenantCounters = 64

// overflowTenant aggregates tenants beyond maxTenantCounters.
const overflowTenant = "other"

func newMetrics() *metrics {
	m := &metrics{
		latency: make(map[Kind]*stats.Histogram),
		qwait:   make(map[string]*stats.Histogram),
		tenants: make(map[string]*tenantCounters),
	}
	for _, k := range Kinds() {
		// 40 × 250 ms buckets span 0–10 s; slower jobs land in the
		// overflow bucket.
		m.latency[k] = stats.NewHistogram(metricLatencyHistPrefix+string(k), 0, 250, 40)
	}
	for c := qos.Class(0); c < qos.NumClasses; c++ {
		// 50 × 100 ms buckets span 0–5 s of queue wait.
		m.qwait[c.String()] = stats.NewHistogram(metricQueueWaitHistPrefix+c.String(), 0, 100, 50)
	}
	return m
}

func (m *metrics) inc(c *stats.Counter) {
	m.mu.Lock()
	c.Inc()
	m.mu.Unlock()
}

// tinc bumps one of tenant's identity counters, creating the tenant's
// slot on first sight (or folding into the overflow bucket once the
// map is full).
func (m *metrics) tinc(tenant string, f tcField) {
	if tenant == "" {
		tenant = DefaultTenant
	}
	m.mu.Lock()
	tc, ok := m.tenants[tenant]
	if !ok {
		if len(m.tenants) >= maxTenantCounters {
			tenant = overflowTenant
			tc = m.tenants[tenant]
		}
		if tc == nil {
			tc = &tenantCounters{}
			m.tenants[tenant] = tc
			m.tenantOrder = append(m.tenantOrder, tenant)
		}
	}
	switch f {
	case tcSubmitted:
		tc.submitted.Inc()
	case tcHits:
		tc.hits.Inc()
	case tcCompleted:
		tc.completed.Inc()
	case tcFailed:
		tc.failed.Inc()
	case tcCanceled:
		tc.canceled.Inc()
	case tcRejected:
		tc.rejected.Inc()
	case tcMigrated:
		tc.migrated.Inc()
	}
	m.mu.Unlock()
}

// observeQueueWait records one popped job's time in queue under its
// predicted class.
func (m *metrics) observeQueueWait(c qos.Class, d time.Duration) {
	m.mu.Lock()
	if h, ok := m.qwait[c.String()]; ok {
		h.Observe(int(d.Milliseconds()))
	}
	m.mu.Unlock()
}

// observeLatency records one finished job's wall time.
func (m *metrics) observeLatency(k Kind, d time.Duration) {
	m.mu.Lock()
	if h, ok := m.latency[k]; ok {
		h.Observe(int(d.Milliseconds()))
	}
	m.mu.Unlock()
}

// gauges carries the point-in-time values snapshot folds into the
// /metrics document alongside the counters.
type gauges struct {
	queueDepth, queueCap int
	running              int
	cacheLen, cacheCap   int
	workers              int
	brownoutActive       bool
	// schedPolicy is the configured queue discipline; the per-class
	// occupancy gauges below are populated only under the qos policy.
	schedPolicy               string
	predictor                 qos.PredictorStats
	queuedShort, queuedLong   int
	runningShort, runningLong int
	// faultsInjected is the per-fault-point injected count from the
	// fault-injection registry (empty when disarmed).
	faultsInjected map[string]uint64
	// Journal durability gauges; all zero when the journal is disabled
	// (the keys are still emitted so dashboards need no conditionals).
	journalAppends   uint64
	journalFsyncs    uint64
	journalReplayed  uint64
	journalTruncated uint64
	journalRecovered uint64
	// Replication gauges; the policy string is "none" and the counters
	// zero when no streamer is configured (keys always emitted).
	replPolicy        string
	replStreamed      uint64
	replStreamErrors  uint64
	replDropped       uint64
	replReplicaEvents uint64
	replAdopted       uint64
	replAliased       uint64
}

// snapshot renders the metrics as the /metrics JSON document. The
// document is authored flat, keyed by the metricnames registry
// constants, and folded into the nested wire shape by nestMetrics —
// thermlint's metrickeys analyzer verifies every key here against the
// registry.
//
//thermlint:metricsdoc
func (m *metrics) snapshot(g gauges) map[string]any {
	m.mu.Lock()
	defer m.mu.Unlock()
	hists := make(map[string]stats.HistogramSnapshot, len(m.latency))
	quants := make(map[string]map[string]float64)
	for k, h := range m.latency {
		snap := h.Snapshot()
		hists[string(k)] = snap
		if snap.Total > 0 {
			quants[string(k)] = map[string]float64{
				metricQuantP50: snap.Quantile(0.50),
				metricQuantP95: snap.Quantile(0.95),
				metricQuantP99: snap.Quantile(0.99),
			}
		}
	}
	qhists := make(map[string]stats.HistogramSnapshot, len(m.qwait))
	qquants := make(map[string]map[string]float64)
	for class, h := range m.qwait {
		snap := h.Snapshot()
		qhists[class] = snap
		if snap.Total > 0 {
			qquants[class] = map[string]float64{
				metricQuantP50: snap.Quantile(0.50),
				metricQuantP95: snap.Quantile(0.95),
				metricQuantP99: snap.Quantile(0.99),
			}
		}
	}
	tenants := make(map[string]any, len(m.tenantOrder))
	for _, t := range m.tenantOrder {
		tenants[t] = m.tenants[t].doc()
	}
	if g.faultsInjected == nil {
		g.faultsInjected = map[string]uint64{}
	}
	return nestMetrics(map[string]any{
		metricJobsSubmitted:        m.submitted.Value(),
		metricJobsRunning:          g.running,
		metricJobsCompleted:        m.completed.Value(),
		metricJobsFailed:           m.failed.Value(),
		metricJobsCanceled:         m.canceled.Value(),
		metricJobsRejected:         m.rejected.Value(),
		metricJobsMigrated:         m.migrated.Value(),
		metricJobsPanicsRecovered:  m.panicsRecovered.Value(),
		metricJobsDeadlineExceeded: m.deadlineExceeded.Value(),
		metricJobsDeduped:          m.deduped.Value(),

		metricJournalAppends:   g.journalAppends,
		metricJournalFsyncs:    g.journalFsyncs,
		metricJournalReplayed:  g.journalReplayed,
		metricJournalTruncated: g.journalTruncated,
		metricJournalRecovered: g.journalRecovered,

		metricReplPolicy:        g.replPolicy,
		metricReplStreamed:      g.replStreamed,
		metricReplStreamErrors:  g.replStreamErrors,
		metricReplDropped:       g.replDropped,
		metricReplReplicaEvents: g.replReplicaEvents,
		metricReplAdopted:       g.replAdopted,
		metricReplAliased:       g.replAliased,

		metricAdmissionBrownoutRejects: m.brownoutRejects.Value(),
		metricAdmissionBrownoutActive:  g.brownoutActive,
		metricAdmissionQuotaRejects:    m.quotaRejects.Value(),

		metricQoSPolicy:         g.schedPolicy,
		metricQoSPredictions:    g.predictor.Predictions,
		metricQoSPredictedShort: g.predictor.PredictedShort,
		metricQoSPredictedLong:  g.predictor.PredictedLong,
		metricQoSMispredicts:    g.predictor.Mispredicts,
		metricQoSDemotions:      g.predictor.Demotions,
		metricQoSQueuedShort:    g.queuedShort,
		metricQoSQueuedLong:     g.queuedLong,
		metricQoSRunningShort:   g.runningShort,
		metricQoSRunningLong:    g.runningLong,

		metricTenants: tenants,

		metricQueueWaitHist:      qhists,
		metricQueueWaitQuantiles: qquants,

		metricWorkersPool:     g.workers,
		metricWorkersRestarts: m.workerRestarts.Value(),

		metricQueueDepth:    g.queueDepth,
		metricQueueCapacity: g.queueCap,

		metricCacheHits:     m.cacheHits.Value(),
		metricCacheMisses:   m.cacheMisses.Value(),
		metricCacheEntries:  g.cacheLen,
		metricCacheCapacity: g.cacheCap,

		metricHTTPBatchRequests: m.batchRequests.Value(),
		metricHTTPListRequests:  m.listRequests.Value(),

		metricFaultsInjected: g.faultsInjected,

		metricLatencyHist:      hists,
		metricLatencyQuantiles: quants,
	})
}

// doc renders one tenant's counters as its sub-document under the
// registered "tenants" key. The leaf names deliberately mirror the
// global jobs.* identity counters. Caller holds m.mu.
func (tc *tenantCounters) doc() map[string]any {
	return map[string]any{
		"submitted": tc.submitted.Value(),
		"hits":      tc.hits.Value(),
		"completed": tc.completed.Value(),
		"failed":    tc.failed.Value(),
		"canceled":  tc.canceled.Value(),
		"rejected":  tc.rejected.Value(),
		"migrated":  tc.migrated.Value(),
	}
}
