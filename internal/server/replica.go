package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"thermalherd/internal/journal"
)

// This file is the herd-failover surface of the server: the replica
// store holds peers' streamed journal records (POST /v1/replica/{origin}),
// adoption replays them into the live job table under the "<id>@<origin>"
// alias namespace (POST /v1/replica/{origin}/adopt), and migration is
// the proactive inverse — a draining node herds its queued jobs to the
// successor before exiting (POST /v1/migrate).

// replicaStore buffers peers' streamed journal events until adoption.
// With a journal directory it is file-backed (replica-<origin>.log,
// the journal's own CRC frame format), so a successor's copy of its
// peers' records survives the successor's own restart; without one it
// is memory-only — the same durability the node's own jobs get.
type replicaStore struct {
	mu     sync.Mutex
	dir    string
	events map[string][]journal.Event
	recv   uint64
}

// newReplicaStore loads any replica files already in dir (tolerating a
// torn tail exactly like WAL replay does); noRecover discards them
// instead, mirroring the journal's own -no-recover semantics.
func newReplicaStore(dir string, noRecover bool) *replicaStore {
	rs := &replicaStore{dir: dir, events: make(map[string][]journal.Event)}
	if dir == "" {
		return rs
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return rs // journal.Open created dir; unreadable means no replicas
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "replica-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		path := filepath.Join(dir, name)
		if noRecover {
			os.Remove(path)
			continue
		}
		origin, err := url.PathUnescape(strings.TrimSuffix(strings.TrimPrefix(name, "replica-"), ".log"))
		if err != nil || origin == "" {
			continue
		}
		b, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		if events, _ := journal.DecodeFrames(b); len(events) > 0 {
			rs.events[origin] = events
		}
	}
	return rs
}

func (rs *replicaStore) path(origin string) string {
	return filepath.Join(rs.dir, "replica-"+url.PathEscape(origin)+".log")
}

// append stores one decoded batch, persisting the already-framed bytes
// verbatim when file-backed (the wire format IS the file format).
func (rs *replicaStore) append(origin string, events []journal.Event, frames []byte) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.dir != "" {
		f, err := os.OpenFile(rs.path(origin), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		_, werr := f.Write(frames)
		cerr := f.Close()
		if werr != nil {
			return werr
		}
		if cerr != nil {
			return cerr
		}
	}
	rs.events[origin] = append(rs.events[origin], events...)
	rs.recv += uint64(len(events))
	return nil
}

// take removes and returns everything buffered for origin; adoption is
// the only caller. The file is removed too — adopted jobs are now in
// the successor's own journal, which supersedes the replica copy.
func (rs *replicaStore) take(origin string) []journal.Event {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	events := rs.events[origin]
	delete(rs.events, origin)
	if rs.dir != "" {
		os.Remove(rs.path(origin))
	}
	return events
}

// receivedEvents counts events accepted into the store since boot.
func (rs *replicaStore) receivedEvents() uint64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.recv
}

// handleReplicaAppend accepts one framed batch from a peer's streamer.
// A torn frame set is rejected whole (400) so the sender's error count
// reflects it; under the sync policy that withholds the peer's ack.
func (s *Server) handleReplicaAppend(w http.ResponseWriter, r *http.Request) {
	origin := r.PathValue("origin")
	if origin == "" {
		writeError(w, http.StatusBadRequest, "missing replica origin")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading replica body: %v", err)
		return
	}
	events, torn := journal.DecodeFrames(body)
	if torn {
		writeError(w, http.StatusBadRequest, "torn replica frame from %q", origin)
		return
	}
	if err := s.replica.append(origin, events, body); err != nil {
		writeError(w, http.StatusInternalServerError, "replica append: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"accepted": len(events)})
}

// handleReplicaAdopt replays origin's buffered replica records into the
// live job table. The gateway calls it on the successor after the
// takeover deadline (origin is dead) or as the second leg of migration
// (origin is draining). Idempotent: re-adoption of already-known ids
// changes nothing, so a retried takeover is safe.
func (s *Server) handleReplicaAdopt(w http.ResponseWriter, r *http.Request) {
	origin := r.PathValue("origin")
	if origin == "" {
		writeError(w, http.StatusBadRequest, "missing replica origin")
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining; cannot adopt jobs")
		return
	}
	adopted, aliased, requeued := s.adoptOrigin(origin)
	writeJSON(w, http.StatusOK, map[string]any{
		"origin":   origin,
		"adopted":  adopted,
		"aliased":  aliased,
		"requeued": requeued,
	})
}

// adoptOrigin folds origin's replica stream into job records (the same
// fold crash recovery uses, so the successor's view agrees with what
// the dead peer would have recovered) and takes each one over under
// the "<id>@<origin>" namespace: records whose Idempotency-Key already
// maps to a local job only gain an alias (the dedup that keeps adopted
// work from double-executing); the rest are registered — and, when
// unfinished, re-enqueued — as this node's own jobs, counted through
// the same accounting identity as recovery. Admission controls
// (quotas, brownout) deliberately do not apply: these jobs were
// admitted fleet-wide already.
func (s *Server) adoptOrigin(origin string) (adopted, aliased, requeued int) {
	for _, rec := range foldEvents(nil, s.replica.take(origin)) {
		localID := rec.ID + "@" + origin
		s.mu.Lock()
		_, known := s.jobs[localID]
		if !known {
			_, known = s.aliases[localID]
		}
		var existing string
		if !known && rec.IdemKey != "" {
			existing = s.idem[rec.IdemKey]
		}
		if !known && existing != "" {
			s.aliases[localID] = existing
		}
		s.mu.Unlock()
		if known {
			continue // re-adoption; already ours
		}
		if existing != "" {
			// Alias only: the original id keeps resolving, the work is
			// not re-registered. deduped attributes the absorption.
			s.metrics.inc(&s.metrics.deduped)
			s.aliasedJobs.Add(1)
			aliased++
			continue
		}
		recCopy := *rec
		recCopy.ID = localID
		j, err := newJobFromRecord(recCopy, s.cfg.Clock)
		if err != nil {
			continue // undecodable record; drop rather than refuse the rest
		}
		j.markAdopted()
		s.register(j, rec.IdemKey)
		s.adoptedJobs.Add(1)
		adopted++
		s.metrics.inc(&s.metrics.submitted)
		s.metrics.tinc(j.tenant, tcSubmitted)
		//thermlint:handoff -- the unfinished (default) arm re-enqueues: the adopted job settles when it runs
		switch State(recCopy.State) {
		case StateDone:
			if recCopy.FromCache {
				s.metrics.inc(&s.metrics.cacheHits)
				s.metrics.tinc(j.tenant, tcHits)
			} else {
				s.metrics.inc(&s.metrics.cacheMisses)
				s.metrics.inc(&s.metrics.completed)
				s.metrics.tinc(j.tenant, tcCompleted)
			}
			if len(recCopy.Result) > 0 && recCopy.Key != "" {
				s.cache.put(recCopy.Key, recCopy.Result)
			}
		case StateFailed:
			s.metrics.inc(&s.metrics.cacheMisses)
			s.metrics.inc(&s.metrics.failed)
			s.metrics.tinc(j.tenant, tcFailed)
		case StateCanceled:
			s.metrics.inc(&s.metrics.cacheMisses)
			s.metrics.inc(&s.metrics.canceled)
			s.metrics.tinc(j.tenant, tcCanceled)
		case StateMigrated:
			s.metrics.inc(&s.metrics.cacheMisses)
			s.metrics.inc(&s.metrics.migrated)
			s.metrics.tinc(j.tenant, tcMigrated)
		default:
			s.metrics.inc(&s.metrics.cacheMisses)
			j.setClass(s.predictor.Predict(j.pkey))
			if err := s.sched.requeue(j); err != nil {
				if j.cancelQueued("adoption requeue failed: " + err.Error()) {
					s.metrics.inc(&s.metrics.canceled)
					s.metrics.tinc(j.tenant, tcCanceled)
				}
				//thermlint:handoff -- settled just above under the cancelQueued settle-once guard
				continue
			}
			requeued++
		}
		// Best-effort durability + onward chain replication: the adopted
		// job enters OUR journal (and streams to OUR successor), so a
		// second failure down the chain still loses nothing acked.
		s.logEvent(acceptedEvent(j, rec.IdemKey))
		switch State(recCopy.State) {
		case StateDone:
			s.logEvent(journal.Event{Type: journal.EventCompleted, ID: j.id, Result: recCopy.Result, FromCache: recCopy.FromCache})
		case StateFailed:
			s.logEvent(journal.Event{Type: journal.EventFailed, ID: j.id, Error: recCopy.Error})
		case StateCanceled:
			s.logEvent(journal.Event{Type: journal.EventCanceled, ID: j.id, Error: recCopy.Error})
		case StateMigrated:
			s.logEvent(journal.Event{Type: journal.EventMigrated, ID: j.id, MigratedTo: recCopy.MigratedTo})
		}
	}
	if requeued > 0 {
		s.watchAdopted()
	}
	return adopted, aliased, requeued
}

// watchAdopted reports "recovering" on /readyz until the adopted
// frontier settles — every adopted job has reached a terminal state.
// The gateway treats recovering as non-routable, so a successor
// digesting a dead peer's backlog is ejected from new placements until
// it catches up. Single-flight: one watcher covers later adoptions
// too, since it re-scans the whole table each tick.
func (s *Server) watchAdopted() {
	if !s.adoptWatch.CompareAndSwap(false, true) {
		return
	}
	s.recovering.Store(true)
	// Deliberately NOT on s.wg: Drain waits on the worker pool, and this
	// watcher must be free to exit via watchdogStop after that wait.
	//thermlint:goroutine -- exits when the adopted frontier settles, or at drain via watchdogStop
	go func() {
		defer s.adoptWatch.Store(false)
		for {
			select {
			case <-s.watchdogStop:
				return
			case <-s.cfg.Clock.After(100 * time.Millisecond):
			}
			if !s.anyAdoptedPending() {
				s.recovering.Store(false)
				return
			}
		}
	}()
}

// anyAdoptedPending reports whether any adopted job is still queued or
// running.
func (s *Server) anyAdoptedPending() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		if j.adoptedPending() {
			return true
		}
	}
	return false
}

// migrateRequest is the POST /v1/migrate payload: the successor this
// node should herd its queued jobs to.
type migrateRequest struct {
	TargetName string `json:"target_name"`
	TargetURL  string `json:"target_url"`
}

// migrateClient ships migration batches; short timeout — the gateway
// retries a failed drain-migration, and the revert path below makes a
// failure loss-free.
var migrateClient = &http.Client{Timeout: 5 * time.Second}

// handleMigrate herds every still-queued job to the target node: each
// is frozen with the markMigrated settle-once CAS (a worker that pops
// it afterwards skips it), their acceptance records are shipped to the
// target's replica store and adopted there, and only then are they
// settled as migrated here. If the handoff fails everything reverts to
// queued and runs locally — a failed migration degrades to a normal
// drain, it never loses a job. Jobs that slipped into running before
// the CAS stay and finish here.
func (s *Server) handleMigrate(w http.ResponseWriter, r *http.Request) {
	var req migrateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad migrate payload: %v", err)
		return
	}
	if req.TargetName == "" || req.TargetURL == "" {
		writeError(w, http.StatusBadRequest, "migrate requires target_name and target_url")
		return
	}
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	idemByID := make(map[string]string, len(s.idem))
	for key, id := range s.idem {
		idemByID[id] = key
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].id < jobs[k].id })

	var marked []*job
	var events []journal.Event
	now := s.cfg.Clock.Now().Format(time.RFC3339Nano)
	for _, j := range jobs {
		if j.markMigrated(req.TargetName) {
			marked = append(marked, j)
			ev := acceptedEvent(j, idemByID[j.id])
			ev.At = now
			events = append(events, ev)
		}
	}
	if len(marked) == 0 {
		writeJSON(w, http.StatusOK, map[string]any{"migrated": 0, "target": req.TargetName})
		return
	}
	if err := shipMigration(req.TargetURL, s.cfg.NodeName, events); err != nil {
		// Revert: back to queued, and re-push in case a worker popped
		// (and skipped) a frozen job during the window. A duplicate
		// queue entry is benign — tryStart's CAS absorbs the second pop.
		for _, j := range marked {
			j.revertMigrated()
			if perr := s.sched.push(j); perr != nil {
				if j.cancelQueued("migration revert requeue failed: " + perr.Error()) {
					s.metrics.inc(&s.metrics.canceled)
					s.metrics.tinc(j.tenant, tcCanceled)
					s.logEvent(journal.Event{Type: journal.EventCanceled, ID: j.id, Error: "migration revert requeue failed"})
				}
			}
		}
		writeError(w, http.StatusBadGateway, "migration to %s failed: %v", req.TargetName, err)
		return
	}
	for _, j := range marked {
		s.metrics.inc(&s.metrics.migrated)   //thermlint:settled -- markMigrated's settle-once CAS admitted this job to marked exactly once; counting waited on the replica handoff
		s.metrics.tinc(j.tenant, tcMigrated) //thermlint:settled -- same settle-once CAS as the line above
		s.logEvent(journal.Event{Type: journal.EventMigrated, ID: j.id, MigratedTo: req.TargetName})
		j.cancel() // terminal locally now that the handoff is confirmed
	}
	writeJSON(w, http.StatusOK, map[string]any{"migrated": len(marked), "target": req.TargetName})
}

// shipMigration POSTs the frozen jobs' acceptance records to the
// target's replica store, then triggers adoption — the two legs of a
// drain-herding handoff.
func shipMigration(targetURL, origin string, events []journal.Event) error {
	if origin == "" {
		origin = "unnamed"
	}
	frames, err := journal.EncodeFrames(events)
	if err != nil {
		return err
	}
	base := strings.TrimSuffix(targetURL, "/")
	resp, err := migrateClient.Post(base+"/v1/replica/"+url.PathEscape(origin),
		"application/octet-stream", bytes.NewReader(frames))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replica append: HTTP %d", resp.StatusCode)
	}
	resp, err = migrateClient.Post(base+"/v1/replica/"+url.PathEscape(origin)+"/adopt",
		"application/json", nil)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("adopt: HTTP %d", resp.StatusCode)
	}
	return nil
}
