package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"thermalherd/internal/clock"
	"thermalherd/internal/faultinject"
)

// chaosServer builds a started server with an armed fault registry.
func chaosServer(t *testing.T, cfg Config, faultSpec string, seed int64) (*Server, *httptest.Server) {
	t.Helper()
	if faultSpec != "" {
		reg := faultinject.New()
		if err := reg.Arm(faultSpec, seed); err != nil {
			t.Fatalf("Arm(%q): %v", faultSpec, err)
		}
		cfg.Faults = reg
	}
	return newTestServer(t, cfg)
}

// faultCount digs the per-point injected counter out of /metrics.
func faultCount(t *testing.T, doc map[string]any, point string) float64 {
	t.Helper()
	sec, ok := doc["faults"].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing faults section: %v", doc)
	}
	injected, ok := sec["injected"].(map[string]any)
	if !ok {
		t.Fatalf("metrics faults missing injected map: %v", sec)
	}
	v, ok := injected[point].(float64)
	if !ok {
		t.Fatalf("faults.injected missing %q: %v", point, injected)
	}
	return v
}

// reconcile asserts the terminal-accounting identity every chaos run
// must preserve: each submission is settled exactly once.
func reconcile(t *testing.T, doc map[string]any) {
	t.Helper()
	submitted := counter(t, doc, "jobs", "submitted")
	terminal := counter(t, doc, "cache", "hits") +
		counter(t, doc, "jobs", "completed") +
		counter(t, doc, "jobs", "failed") +
		counter(t, doc, "jobs", "canceled") +
		counter(t, doc, "jobs", "rejected")
	if submitted != terminal {
		t.Fatalf("accounting identity broken: submitted %v != hits+completed+failed+canceled+rejected %v\n%v",
			submitted, terminal, doc)
	}
}

// TestChaosInjectedPanicsRecovered is the headline self-healing test:
// injected executor panics become failed jobs with the stack in the
// error, the daemon keeps serving, and the counters reconcile.
func TestChaosInjectedPanicsRecovered(t *testing.T) {
	s, ts := chaosServer(t, Config{Workers: 1, QueueDepth: 8, CacheSize: 8},
		"job.exec=panic:injected-chaos-panic,count:2", 1)
	stubExec(s, func(ctx context.Context, spec Spec, report progressFunc) (json.RawMessage, error) {
		return json.RawMessage(`{}`), nil
	})
	var sts []Status
	for _, wl := range []string{"mcf", "crafty", "gzip"} {
		resp, st := postJob(t, ts, fmt.Sprintf(`{"kind":"timing","workload":%q}`, wl))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %s = %s", wl, resp.Status)
		}
		sts = append(sts, st)
	}
	// First two jobs hit the panic fault, the third runs clean.
	for _, st := range sts[:2] {
		fin := waitState(t, ts, st.ID, StateFailed)
		if !strings.Contains(fin.Error, "recovered panic") || !strings.Contains(fin.Error, "injected-chaos-panic") {
			t.Fatalf("recovered-panic error = %q", fin.Error)
		}
		if !strings.Contains(fin.Error, "faultinject") {
			t.Fatalf("panic error carries no stack: %q", fin.Error)
		}
	}
	waitState(t, ts, sts[2].ID, StateDone)

	// The daemon survived: liveness holds and new work still runs.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("daemon dead after panics: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panics = %s", resp.Status)
	}

	doc := metricsDoc(t, ts)
	if got := counter(t, doc, "jobs", "panics_recovered"); got != 2 {
		t.Fatalf("panics_recovered = %v, want 2", got)
	}
	if got := counter(t, doc, "jobs", "failed"); got != 2 {
		t.Fatalf("failed = %v, want 2 (panicked jobs count as failed)", got)
	}
	if got := faultCount(t, doc, FaultExec); got != 2 {
		t.Fatalf("faults.injected[job.exec] = %v, want 2", got)
	}
	reconcile(t, doc)
}

// TestJobDeadlineExceeded pins Config.JobTimeout: a job that runs past
// it is failed with a deadline error (distinct from a client cancel)
// and counted.
func TestJobDeadlineExceeded(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, CacheSize: 4, JobTimeout: 50 * time.Millisecond})
	stubExec(s, func(ctx context.Context, spec Spec, report progressFunc) (json.RawMessage, error) {
		<-ctx.Done() // a cooperative executor observing its deadline
		return nil, ctx.Err()
	})
	_, st := postJob(t, ts, `{"kind":"timing","workload":"mcf"}`)
	fin := waitState(t, ts, st.ID, StateFailed)
	if !strings.Contains(fin.Error, "deadline exceeded") {
		t.Fatalf("deadline error = %q", fin.Error)
	}
	doc := metricsDoc(t, ts)
	if got := counter(t, doc, "jobs", "deadline_exceeded"); got != 1 {
		t.Fatalf("deadline_exceeded = %v, want 1", got)
	}
	if got := counter(t, doc, "jobs", "canceled"); got != 0 {
		t.Fatalf("deadline was miscounted as a cancel: canceled = %v", got)
	}
	reconcile(t, doc)
}

// TestWatchdogRestartsStuckWorker pins the watchdog: an executor that
// ignores its context forever is reaped, the job fails with a watchdog
// error, and a replacement worker keeps the (single-slot) pool alive.
func TestWatchdogRestartsStuckWorker(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 8, CacheSize: 8,
		StuckAfter: 80 * time.Millisecond, WatchdogInterval: 10 * time.Millisecond,
	})
	unstick := make(chan struct{})
	t.Cleanup(func() { close(unstick) }) // let the abandoned goroutine exit
	var firstJob atomic.Bool
	stubExec(s, func(ctx context.Context, spec Spec, report progressFunc) (json.RawMessage, error) {
		if firstJob.CompareAndSwap(false, true) {
			<-unstick // hard-stuck: ignores ctx entirely
		}
		return json.RawMessage(`{}`), nil
	})

	_, stuck := postJob(t, ts, `{"kind":"timing","workload":"mcf"}`)
	fin := waitState(t, ts, stuck.ID, StateFailed)
	if !strings.Contains(fin.Error, "watchdog") {
		t.Fatalf("reaped job error = %q", fin.Error)
	}
	// The single worker slot was stuck; only a restarted slot can run
	// the next job.
	_, next := postJob(t, ts, `{"kind":"timing","workload":"crafty"}`)
	waitState(t, ts, next.ID, StateDone)

	doc := metricsDoc(t, ts)
	if got := counter(t, doc, "workers", "restarts"); got != 1 {
		t.Fatalf("workers.restarts = %v, want 1", got)
	}
	reconcile(t, doc)
}

// TestBrownoutSheds429 pins the queue-wait admission controller: once
// the head-of-queue job has waited past BrownoutAfter, new submissions
// bounce with 429 + Retry-After while /readyz flips not-ready, and the
// daemon recovers once the backlog clears.
func TestBrownoutSheds429(t *testing.T) {
	// A fake clock drives the queue-age measurement, so the test ages
	// the backlog synchronously instead of sleeping and hoping the
	// scheduler cooperates.
	fake := clock.NewFake(time.Unix(1_700_000_000, 0))
	s, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 16, CacheSize: 4,
		BrownoutAfter: 40 * time.Millisecond,
		Clock:         fake,
	})
	release := make(chan struct{})
	stubExec(s, func(ctx context.Context, spec Spec, report progressFunc) (json.RawMessage, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return json.RawMessage(`{}`), nil
	})
	// One job occupies the worker, one ages at the head of the queue.
	_, running := postJob(t, ts, `{"kind":"timing","workload":"mcf"}`)
	waitState(t, ts, running.ID, StateRunning)
	_, queued := postJob(t, ts, `{"kind":"timing","workload":"crafty"}`)
	fake.Advance(80 * time.Millisecond) // age the queued job past the threshold

	resp, _ := postJob(t, ts, `{"kind":"timing","workload":"gzip"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("brownout submit = %s, want 429", resp.Status)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("brownout Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}

	ready, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var rdoc map[string]any
	json.NewDecoder(ready.Body).Decode(&rdoc)
	ready.Body.Close()
	if ready.StatusCode != http.StatusServiceUnavailable || rdoc["reason"] != "brownout" {
		t.Fatalf("readyz during brownout = %s %v, want 503/brownout", ready.Status, rdoc)
	}

	doc := metricsDoc(t, ts)
	if got := counter(t, doc, "admission", "brownout_rejects"); got != 1 {
		t.Fatalf("brownout_rejects = %v, want 1", got)
	}
	if got := counter(t, doc, "jobs", "rejected"); got != 1 {
		t.Fatalf("rejected = %v, want 1 (brownout rejects are rejections)", got)
	}

	// Clearing the backlog ends the brownout.
	close(release)
	waitState(t, ts, queued.ID, StateDone)
	ready2, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	ready2.Body.Close()
	if ready2.StatusCode != http.StatusOK {
		t.Fatalf("readyz after backlog cleared = %s, want 200", ready2.Status)
	}
	reconcile(t, metricsDoc(t, ts))
}

// TestCacheFaultsForceRecompute pins cache-fault degradation: dropped
// puts and forced-miss gets cost recomputation, never correctness.
func TestCacheFaultsForceRecompute(t *testing.T) {
	t.Run("put dropped", func(t *testing.T) {
		s, ts := chaosServer(t, Config{Workers: 1, QueueDepth: 4, CacheSize: 4},
			"rescache.put=error:store dropped,count:1", 1)
		stubExec(s, func(ctx context.Context, spec Spec, report progressFunc) (json.RawMessage, error) {
			return json.RawMessage(`{}`), nil
		})
		body := `{"kind":"timing","workload":"mcf"}`
		for i := 0; i < 2; i++ {
			// Both runs recompute: the first put was dropped.
			_, st := postJob(t, ts, body)
			if fin := waitState(t, ts, st.ID, StateDone); fin.FromCache {
				t.Fatalf("submission %d served from cache despite dropped put", i+1)
			}
		}
		// The second run's put stuck; now it hits.
		resp, st := postJob(t, ts, body)
		if resp.StatusCode != http.StatusOK || !st.FromCache {
			t.Fatalf("third submission = %s fromCache=%v, want cached 200", resp.Status, st.FromCache)
		}
		doc := metricsDoc(t, ts)
		if got := faultCount(t, doc, FaultCachePut); got != 1 {
			t.Fatalf("faults.injected[rescache.put] = %v, want 1", got)
		}
		reconcile(t, doc)
	})
	t.Run("get forced miss", func(t *testing.T) {
		s, ts := chaosServer(t, Config{Workers: 1, QueueDepth: 4, CacheSize: 4},
			"rescache.get=error:cache offline,count:2", 1)
		stubExec(s, func(ctx context.Context, spec Spec, report progressFunc) (json.RawMessage, error) {
			return json.RawMessage(`{}`), nil
		})
		body := `{"kind":"timing","workload":"mcf"}`
		// First get faults (would miss anyway), second faults a real hit
		// into a recompute, third hits.
		for i := 0; i < 2; i++ {
			_, st := postJob(t, ts, body)
			if fin := waitState(t, ts, st.ID, StateDone); fin.FromCache {
				t.Fatalf("submission %d hit despite get fault", i+1)
			}
		}
		_, st := postJob(t, ts, body)
		if !st.FromCache {
			t.Fatal("third submission missed after faults were exhausted")
		}
		doc := metricsDoc(t, ts)
		if got := counter(t, doc, "jobs", "completed"); got != 2 {
			t.Fatalf("completed = %v, want 2 (one recompute per forced miss)", got)
		}
		reconcile(t, doc)
	})
}

// TestAdmitAndRespondFaults covers the remaining fault points: an
// injected admission failure is a clean 503, and an injected response
// failure loses only the response, never the admitted job.
func TestAdmitAndRespondFaults(t *testing.T) {
	t.Run("queue.admit", func(t *testing.T) {
		_, ts := chaosServer(t, Config{Workers: 1, QueueDepth: 4, CacheSize: 4},
			"queue.admit=error:injected admission failure,count:1", 1)
		resp, _ := postJob(t, ts, `{"kind":"timing","workload":"mcf"}`)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("faulted admission = %s, want 503", resp.Status)
		}
		doc := metricsDoc(t, ts)
		if got := counter(t, doc, "jobs", "rejected"); got != 1 {
			t.Fatalf("rejected = %v, want 1", got)
		}
		reconcile(t, doc)
	})
	t.Run("http.respond", func(t *testing.T) {
		s, ts := chaosServer(t, Config{Workers: 1, QueueDepth: 4, CacheSize: 4},
			"http.respond=error:injected response failure,count:1", 1)
		stubExec(s, func(ctx context.Context, spec Spec, report progressFunc) (json.RawMessage, error) {
			return json.RawMessage(`{}`), nil
		})
		resp, _ := postJob(t, ts, `{"kind":"timing","workload":"mcf"}`)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("faulted response = %s, want 500", resp.Status)
		}
		// The job was admitted before the response write failed; it must
		// still settle, keeping the books balanced.
		deadline := time.Now().Add(5 * time.Second)
		for {
			doc := metricsDoc(t, ts)
			if counter(t, doc, "jobs", "completed") == 1 {
				reconcile(t, doc)
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job lost after response fault: %v", doc)
			}
			time.Sleep(5 * time.Millisecond)
		}
	})
}

// TestSpecMarshalFailure400 is the regression test for the daemon
// panic this PR removed: a spec the encoder rejects must come back as
// a 400, not kill the process.
func TestSpecMarshalFailure400(t *testing.T) {
	orig := marshalSpec
	marshalSpec = func(any) ([]byte, error) { return nil, fmt.Errorf("forced encoder failure") }
	defer func() { marshalSpec = orig }()

	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2, CacheSize: 2})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"timing","workload":"mcf"}`))
	if err != nil {
		t.Fatalf("submit with failing encoder: %v (daemon died?)", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unmarshalable spec = %s, want 400", resp.Status)
	}
	var doc errorDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil || !strings.Contains(doc.Error, "not marshalable") {
		t.Fatalf("error body = %+v, %v", doc, err)
	}
	doc2 := metricsDoc(t, ts)
	if got := counter(t, doc2, "jobs", "submitted"); got != 0 {
		t.Fatalf("rejected-at-validation spec counted as submitted: %v", got)
	}
}

// TestReadyzFresh pins the happy path: a fresh daemon is ready.
func TestReadyzFresh(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2, CacheSize: 2})
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %s, want 200", resp.Status)
	}
}

// TestDrainRacesSubmissionsAndCancels hammers Drain with concurrent
// submissions and cancellations (run under -race in CI): no crash, no
// stuck job, and post-drain submissions bounce with 503.
func TestDrainRacesSubmissionsAndCancels(t *testing.T) {
	s, err := New(Config{Workers: 4, QueueDepth: 32, CacheSize: 8})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	stubExec(s, func(ctx context.Context, spec Spec, report progressFunc) (json.RawMessage, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(2 * time.Millisecond):
			return json.RawMessage(`{}`), nil
		}
	})
	s.Start()
	ts := httptest.NewServer(s)
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	workloads := []string{"mcf", "crafty", "gzip", "patricia", "yacr2", "susan_s"}
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(wl string) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				// Distinct depths defeat the result cache so every
				// submission exercises the queue and pool.
				body := fmt.Sprintf(`{"kind":"timing","workload":%q,"depths":{"measure":%d}}`, wl, 1000+n)
				resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
				if err != nil {
					return // server shut down under us; fine
				}
				var st Status
				json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				if resp.StatusCode == http.StatusAccepted && n%3 == 0 {
					req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
					if dresp, err := http.DefaultClient.Do(req); err == nil {
						dresp.Body.Close()
					}
				}
			}
		}(workloads[i])
	}

	time.Sleep(25 * time.Millisecond)
	dctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain under load: %v", err)
	}
	close(stop)
	wg.Wait()

	// Every registered job must be terminal.
	s.mu.Lock()
	for id, j := range s.jobs {
		if st := j.status(); st.State == StateQueued || st.State == StateRunning {
			t.Errorf("job %s left non-terminal after drain: %s", id, st.State)
		}
	}
	s.mu.Unlock()

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"timing","workload":"mcf"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit = %s, want 503", resp.Status)
	}
	reconcile(t, metricsDoc(t, ts))
}

// TestDrainWhileBrownout drains a daemon that is actively shedding:
// the aged backlog is canceled, readiness reports draining (drain
// outranks brownout), and nothing deadlocks.
func TestDrainWhileBrownout(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 16, CacheSize: 4, BrownoutAfter: 30 * time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	stubExec(s, func(ctx context.Context, spec Spec, report progressFunc) (json.RawMessage, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	s.Start()
	ts := httptest.NewServer(s)
	defer ts.Close()

	_, running := postJob(t, ts, `{"kind":"timing","workload":"mcf"}`)
	waitState(t, ts, running.ID, StateRunning)
	_, queued := postJob(t, ts, `{"kind":"timing","workload":"crafty"}`)
	time.Sleep(60 * time.Millisecond)
	if resp, _ := postJob(t, ts, `{"kind":"timing","workload":"gzip"}`); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("pre-drain brownout submit = %s, want 429", resp.Status)
	}

	dctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(dctx); err != context.DeadlineExceeded {
		t.Fatalf("Drain = %v, want deadline exceeded (running job forced)", err)
	}
	if st := getStatus(t, ts, queued.ID); st.State != StateCanceled {
		t.Fatalf("aged queued job after drain = %s, want canceled", st.State)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var rdoc map[string]any
	json.NewDecoder(resp.Body).Decode(&rdoc)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || rdoc["reason"] != "draining" {
		t.Fatalf("readyz while draining = %s %v, want 503/draining", resp.Status, rdoc)
	}
	reconcile(t, metricsDoc(t, ts))
}
