package server

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
)

// MaxBatchJobs bounds one POST /v1/jobs:batch payload; larger batches
// are rejected outright so a single request cannot swamp the queue
// admission path.
const MaxBatchJobs = 256

// BatchRequest is the POST /v1/jobs:batch payload. IdempotencyKeys is
// optional; when present it must be one key per spec (empty strings
// opt individual specs out), and each key dedupes resubmissions the
// same way the Idempotency-Key header does for single submits.
// Tenants is likewise optional and per-spec; empty strings fall back
// to the request's X-Tenant-ID header (then to the default tenant).
type BatchRequest struct {
	Jobs            []Spec   `json:"jobs"`
	IdempotencyKeys []string `json:"idempotency_keys,omitempty"`
	Tenants         []string `json:"tenants,omitempty"`
}

// BatchItem is the per-spec outcome inside a BatchResponse: exactly
// one of Status (the spec was admitted or answered from cache) or
// Error (with Code holding the HTTP status a single submit would have
// returned: 400, 429 on brownout shedding, or 503) is set.
type BatchItem struct {
	Status *Status `json:"status,omitempty"`
	Error  string  `json:"error,omitempty"`
	Code   int     `json:"code,omitempty"`
}

// BatchResponse mirrors BatchRequest order: Jobs[i] is the outcome of
// request spec i.
type BatchResponse struct {
	Jobs []BatchItem `json:"jobs"`
}

// handleSubmitBatch admits up to MaxBatchJobs specs in one request so
// load generators can amortize HTTP round trips. Admission is per
// spec: a full queue or invalid spec fails that item only, and the
// response always carries one item per submitted spec, in order.
func (s *Server) handleSubmitBatch(w http.ResponseWriter, r *http.Request) {
	hdrTenant := tenantOrDefault(r.Header.Get(TenantHeader))
	if s.draining.Load() {
		s.metrics.inc(&s.metrics.submitted)
		s.metrics.inc(&s.metrics.rejected)
		s.metrics.tinc(hdrTenant, tcSubmitted)
		s.metrics.tinc(hdrTenant, tcRejected)
		writeError(w, http.StatusServiceUnavailable, "server is draining; not accepting jobs")
		return
	}
	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad batch payload: %v", err)
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch (want 1..%d jobs)", MaxBatchJobs)
		return
	}
	if len(req.Jobs) > MaxBatchJobs {
		writeError(w, http.StatusBadRequest, "batch of %d jobs exceeds the %d-job limit", len(req.Jobs), MaxBatchJobs)
		return
	}
	if len(req.IdempotencyKeys) != 0 && len(req.IdempotencyKeys) != len(req.Jobs) {
		writeError(w, http.StatusBadRequest, "idempotency_keys length %d does not match jobs length %d",
			len(req.IdempotencyKeys), len(req.Jobs))
		return
	}
	if len(req.Tenants) != 0 && len(req.Tenants) != len(req.Jobs) {
		writeError(w, http.StatusBadRequest, "tenants length %d does not match jobs length %d",
			len(req.Tenants), len(req.Jobs))
		return
	}
	s.metrics.inc(&s.metrics.batchRequests)
	resp := BatchResponse{Jobs: make([]BatchItem, len(req.Jobs))}
	for i, spec := range req.Jobs {
		var idemKey string
		if len(req.IdempotencyKeys) > 0 {
			idemKey = req.IdempotencyKeys[i]
		}
		tenant := hdrTenant
		if len(req.Tenants) > 0 && req.Tenants[i] != "" {
			tenant = req.Tenants[i]
		}
		st, code, _, err := s.admit(spec, idemKey, tenant)
		if err != nil {
			resp.Jobs[i] = BatchItem{Error: err.Error(), Code: code}
			continue
		}
		stCopy := st
		resp.Jobs[i] = BatchItem{Status: &stCopy}
	}
	s.respond(w, http.StatusOK, resp)
}

// ListResponse is the GET /v1/jobs document. NextOffset is present
// only when more jobs match beyond this page.
type ListResponse struct {
	Jobs       []Status `json:"jobs"`
	Total      int      `json:"total"`
	Offset     int      `json:"offset"`
	NextOffset *int     `json:"next_offset,omitempty"`
}

// listLimits bound GET /v1/jobs pagination.
const (
	defaultListLimit = 50
	maxListLimit     = 500
)

// handleList serves GET /v1/jobs?status=&tenant=&limit=&offset=: all
// known jobs in id order, optionally filtered to one lifecycle state
// and/or one tenant.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var filter State
	if v := q.Get("status"); v != "" {
		switch State(v) {
		case StateQueued, StateRunning, StateDone, StateFailed, StateCanceled, StateMigrated:
			filter = State(v)
		default:
			writeError(w, http.StatusBadRequest, "unknown status %q (want queued, running, done, failed, canceled, or migrated)", v)
			return
		}
	}
	tenantFilter := q.Get("tenant")
	limit, err := queryInt(q.Get("limit"), defaultListLimit)
	if err != nil || limit <= 0 || limit > maxListLimit {
		writeError(w, http.StatusBadRequest, "bad limit %q (want 1..%d)", q.Get("limit"), maxListLimit)
		return
	}
	offset, err := queryInt(q.Get("offset"), 0)
	if err != nil || offset < 0 {
		writeError(w, http.StatusBadRequest, "bad offset %q (want >= 0)", q.Get("offset"))
		return
	}
	s.metrics.inc(&s.metrics.listRequests)

	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	statuses := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		st := j.status()
		if filter != "" && st.State != filter {
			continue
		}
		if tenantFilter != "" && st.Tenant != tenantFilter {
			continue
		}
		statuses = append(statuses, st)
	}
	// Job ids are zero-padded and monotonic, so lexicographic order is
	// submission order.
	sort.Slice(statuses, func(i, k int) bool { return statuses[i].ID < statuses[k].ID })

	resp := ListResponse{Total: len(statuses), Offset: offset, Jobs: []Status{}}
	if offset < len(statuses) {
		end := offset + limit
		if end > len(statuses) {
			end = len(statuses)
		}
		resp.Jobs = statuses[offset:end]
		if end < len(statuses) {
			next := end
			resp.NextOffset = &next
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// queryInt parses an optional integer query parameter.
func queryInt(v string, def int) (int, error) {
	if v == "" {
		return def, nil
	}
	return strconv.Atoi(v)
}
