package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"thermalherd/internal/clock"
)

// postJobT submits one job with an explicit X-Tenant-ID header.
func postJobT(t *testing.T, ts *httptest.Server, tenant, body string) (*http.Response, Status) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var st Status
	json.NewDecoder(resp.Body).Decode(&st) // error docs leave st zero
	return resp, st
}

// tenantDoc digs one tenant's counter sub-document out of /metrics.
func tenantDoc(t *testing.T, doc map[string]any, tenant string) map[string]any {
	t.Helper()
	sec, ok := doc["tenants"].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing tenants section: %v", doc)
	}
	td, ok := sec[tenant].(map[string]any)
	if !ok {
		t.Fatalf("metrics tenants missing %q: %v", tenant, sec)
	}
	return td
}

// reconcileTenants asserts the accounting identity holds inside every
// tenant's sub-document, and that the tenant submitted counters sum to
// the global one — no submission is unattributed or double-attributed.
func reconcileTenants(t *testing.T, doc map[string]any) {
	t.Helper()
	sec, ok := doc["tenants"].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing tenants section: %v", doc)
	}
	var sumSubmitted float64
	for tenant, v := range sec {
		td, ok := v.(map[string]any)
		if !ok {
			t.Fatalf("tenant %q sub-document malformed: %v", tenant, v)
		}
		submitted := td["submitted"].(float64)
		terminal := td["hits"].(float64) + td["completed"].(float64) +
			td["failed"].(float64) + td["canceled"].(float64) + td["rejected"].(float64)
		if submitted != terminal {
			t.Fatalf("tenant %q identity broken: submitted %v != hits+completed+failed+canceled+rejected %v",
				tenant, submitted, terminal)
		}
		sumSubmitted += submitted
	}
	if global := counter(t, doc, "jobs", "submitted"); sumSubmitted != global {
		t.Fatalf("tenant submitted sum %v != global submitted %v", sumSubmitted, global)
	}
}

// TestQoSDemoteThenRetrain pins the mid-flight demotion loop: a
// predicted-short job that overruns the short budget is demoted to the
// long pool while still running, and its predictor bucket is retrained
// so the next submission of the same bucket is classed long at
// admission — the service-level analogue of the paper's
// unsafe-mispredict stall-and-retrain.
func TestQoSDemoteThenRetrain(t *testing.T) {
	fake := clock.NewFake(time.Unix(1_700_000_000, 0))
	s, ts := newTestServer(t, Config{
		Workers: 2, QueueDepth: 8, CacheSize: 8,
		SchedPolicy: SchedQoS, ShortBudget: 100 * time.Millisecond, ShortReserve: 1,
		Clock: fake,
	})
	release := make(chan struct{})
	stubExec(s, func(ctx context.Context, spec Spec, report progressFunc) (json.RawMessage, error) {
		if spec.Depths.Measure == 1000 {
			select {
			case <-release:
			case <-ctx.Done():
			}
		}
		return json.RawMessage(`{}`), nil
	})
	qs, ok := s.sched.(*qosSched)
	if !ok {
		t.Fatalf("scheduler is %T, want *qosSched", s.sched)
	}

	// A cold predictor classes everything short (weakly-short init).
	_, st := postJob(t, ts, `{"kind":"timing","workload":"mcf","depths":{"measure":1000}}`)
	if st.Class != "short" {
		t.Fatalf("cold-predictor class = %q, want short", st.Class)
	}
	waitState(t, ts, st.ID, StateRunning)

	// Age the running job past the short budget and sweep. The sweep may
	// race the background demote loop (the fake-clock Advance fires its
	// timer too), so assert on the observable outcome, not the count.
	fake.Advance(150 * time.Millisecond)
	qs.demoteOverruns()
	mid := getStatus(t, ts, st.ID)
	if !mid.Demoted || mid.Class != "long" {
		t.Fatalf("overrunning job demoted=%v class=%q, want demoted long", mid.Demoted, mid.Class)
	}

	close(release)
	waitState(t, ts, st.ID, StateDone)

	// Same predictor bucket (measure 1001 shares 1000's log2 class),
	// different cache key: admission must now predict long.
	_, st2 := postJob(t, ts, `{"kind":"timing","workload":"mcf","depths":{"measure":1001}}`)
	if st2.Class != "long" {
		t.Fatalf("post-demotion class = %q, want long (bucket retrained)", st2.Class)
	}
	waitState(t, ts, st2.ID, StateDone)

	doc := metricsDoc(t, ts)
	if got := counter(t, doc, "qos", "demotions"); got < 1 {
		t.Fatalf("qos.demotions = %v, want >= 1", got)
	}
	if got := counter(t, doc, "qos", "mispredicts"); got < 1 {
		t.Fatalf("qos.mispredicts = %v, want >= 1", got)
	}
	if got := counter(t, doc, "qos", "predicted_long"); got < 1 {
		t.Fatalf("qos.predicted_long = %v, want >= 1", got)
	}
	reconcile(t, doc)
	reconcileTenants(t, doc)
}

// TestQoSShortPoolSurvivesLongFlood is the starvation chaos test: a
// flood of trained-long jobs from a batch tenant is capped at longCap
// running slots, so an interactive tenant's short job cuts past the
// backlog and completes while most of the flood is still queued. Under
// FIFO the short job would wait behind every flood job.
func TestQoSShortPoolSurvivesLongFlood(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 2, QueueDepth: 64, CacheSize: 8,
		SchedPolicy: SchedQoS, ShortBudget: 20 * time.Millisecond, ShortReserve: 1,
	})
	stubExec(s, func(ctx context.Context, spec Spec, report progressFunc) (json.RawMessage, error) {
		if spec.Depths.Measure != 0 {
			select {
			case <-ctx.Done():
			case <-time.After(60 * time.Millisecond):
			}
		}
		return json.RawMessage(`{}`), nil
	})

	// Train the heavy bucket: the first overrunning job is demoted by
	// the live demote loop, flipping its weakly-short bucket to long;
	// the second run then confirms the long prediction and saturates
	// the counter.
	for i := 0; i < 2; i++ {
		_, st := postJobT(t, ts, "batch",
			fmt.Sprintf(`{"kind":"timing","workload":"crafty","depths":{"measure":%d}}`, 1000+i))
		waitState(t, ts, st.ID, StateDone)
	}

	// Flood from the batch tenant: all predicted long now, so at most
	// longCap (= workers - reserve = 1) runs at a time.
	var flood []string
	for i := 0; i < 8; i++ {
		resp, st := postJobT(t, ts, "batch",
			fmt.Sprintf(`{"kind":"timing","workload":"crafty","depths":{"measure":%d}}`, 1002+i))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("flood submit %d = %s", i, resp.Status)
		}
		if st.Class != "long" {
			t.Fatalf("flood job class = %q, want long (bucket was trained)", st.Class)
		}
		flood = append(flood, st.ID)
	}

	// The interactive tenant's short job must complete while the flood
	// is still mostly pending — the reserved slot cannot be starved.
	_, short := postJobT(t, ts, "live", `{"kind":"timing","workload":"mcf"}`)
	waitState(t, ts, short.ID, StateDone)
	pending := 0
	for _, id := range flood {
		if st := getStatus(t, ts, id); st.State == StateQueued || st.State == StateRunning {
			pending++
		}
	}
	if pending < 4 {
		t.Fatalf("only %d/8 flood jobs still pending when the short job finished; short pool was starved", pending)
	}

	for _, id := range flood {
		waitState(t, ts, id, StateDone)
	}
	doc := metricsDoc(t, ts)
	if got := counter(t, doc, "qos", "demotions"); got < 1 {
		t.Fatalf("qos.demotions = %v, want >= 1 (training overrun)", got)
	}
	bd := tenantDoc(t, doc, "batch")
	if got := bd["submitted"].(float64); got != 10 {
		t.Fatalf("tenant batch submitted = %v, want 10", got)
	}
	ld := tenantDoc(t, doc, "live")
	if got := ld["submitted"].(float64); got != 1 {
		t.Fatalf("tenant live submitted = %v, want 1", got)
	}
	reconcile(t, doc)
	reconcileTenants(t, doc)
}

// TestTenantQuota429 pins the per-tenant token bucket: a tenant over
// its admission rate bounces with 429 + Retry-After without touching
// other tenants, and refills with time.
func TestTenantQuota429(t *testing.T) {
	fake := clock.NewFake(time.Unix(1_700_000_000, 0))
	s, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 8, CacheSize: 8,
		TenantRate: 1, TenantBurst: 1,
		Clock: fake,
	})
	stubExec(s, func(ctx context.Context, spec Spec, report progressFunc) (json.RawMessage, error) {
		return json.RawMessage(`{}`), nil
	})

	resp, st := postJobT(t, ts, "a", `{"kind":"timing","workload":"mcf"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %s, want 202", resp.Status)
	}
	waitState(t, ts, st.ID, StateDone)

	resp2, _ := postJobT(t, ts, "a", `{"kind":"timing","workload":"crafty"}`)
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit = %s, want 429", resp2.Status)
	}
	if ra, err := strconv.Atoi(resp2.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("quota Retry-After = %q, want a positive integer", resp2.Header.Get("Retry-After"))
	}

	// Another tenant has its own bucket.
	resp3, st3 := postJobT(t, ts, "b", `{"kind":"timing","workload":"gzip"}`)
	if resp3.StatusCode != http.StatusAccepted {
		t.Fatalf("other-tenant submit = %s, want 202", resp3.Status)
	}
	waitState(t, ts, st3.ID, StateDone)

	// The bucket refills at TenantRate tokens/sec.
	fake.Advance(2 * time.Second)
	resp4, st4 := postJobT(t, ts, "a", `{"kind":"timing","workload":"patricia"}`)
	if resp4.StatusCode != http.StatusAccepted {
		t.Fatalf("post-refill submit = %s, want 202", resp4.Status)
	}
	waitState(t, ts, st4.ID, StateDone)

	doc := metricsDoc(t, ts)
	if got := counter(t, doc, "admission", "quota_rejects"); got != 1 {
		t.Fatalf("quota_rejects = %v, want 1", got)
	}
	ad := tenantDoc(t, doc, "a")
	if got := ad["rejected"].(float64); got != 1 {
		t.Fatalf("tenant a rejected = %v, want 1", got)
	}
	reconcile(t, doc)
	reconcileTenants(t, doc)
}

// TestBatchTenantsAndListFilter pins the batch tenants array and the
// ?tenant= list filter end to end.
func TestBatchTenantsAndListFilter(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 16, CacheSize: 8})
	stubExec(s, func(ctx context.Context, spec Spec, report progressFunc) (json.RawMessage, error) {
		return json.RawMessage(`{}`), nil
	})
	body := `{"jobs":[{"kind":"timing","workload":"mcf"},{"kind":"timing","workload":"crafty"}],` +
		`"tenants":["live","batch"]}`
	resp, err := http.Post(ts.URL+"/v1/jobs:batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var br BatchResponse
	json.NewDecoder(resp.Body).Decode(&br)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(br.Jobs) != 2 {
		t.Fatalf("batch = %s with %d items, want 200 with 2", resp.Status, len(br.Jobs))
	}
	for i, tenant := range []string{"live", "batch"} {
		if br.Jobs[i].Status == nil || br.Jobs[i].Status.Tenant != tenant {
			t.Fatalf("batch item %d tenant = %+v, want %q", i, br.Jobs[i].Status, tenant)
		}
		waitState(t, ts, br.Jobs[i].Status.ID, StateDone)
	}

	lr, err := http.Get(ts.URL + "/v1/jobs?tenant=live")
	if err != nil {
		t.Fatal(err)
	}
	var list ListResponse
	json.NewDecoder(lr.Body).Decode(&list)
	lr.Body.Close()
	if list.Total != 1 || len(list.Jobs) != 1 || list.Jobs[0].Tenant != "live" {
		t.Fatalf("list?tenant=live = %+v, want exactly the live job", list)
	}

	// Mismatched tenants length is a 400, not a partial admit.
	bad := `{"jobs":[{"kind":"timing","workload":"gzip"}],"tenants":["a","b"]}`
	br2, err := http.Post(ts.URL+"/v1/jobs:batch", "application/json", strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	br2.Body.Close()
	if br2.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched tenants batch = %s, want 400", br2.Status)
	}
	reconcileTenants(t, metricsDoc(t, ts))
}
