// Package server exposes the Thermal Herding simulation stack as a
// long-lived HTTP service (the thermherdd daemon): jobs are submitted
// to a bounded FIFO queue, executed by a fixed worker pool, and their
// JSON results are kept in a content-addressed LRU cache so identical
// resubmissions are answered without re-simulating.
//
// API surface (all JSON):
//
//	POST   /v1/jobs             submit a job (Spec) → Status (202; 200 on cache hit)
//	POST   /v1/jobs:batch       submit up to 256 jobs in one request
//	GET    /v1/jobs             list jobs, filterable by ?status= with pagination
//	GET    /v1/jobs/{id}        job status and progress
//	GET    /v1/jobs/{id}/result the finished job's result document
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/workloads        the runnable workload profiles
//	GET    /v1/configs          the machine configurations
//	GET    /healthz             liveness and drain state
//	GET    /readyz              readiness: 503 while draining or browning out
//	GET    /metrics             expvar-style counters and latency histograms
//
// The daemon is self-healing: a panicking executor is recovered into a
// failed job (the process survives), jobs run under an optional
// per-job deadline, a watchdog retires worker slots stuck on jobs that
// ignore cancellation, and a queue-wait brownout controller sheds load
// with 429 + Retry-After before the queue fills. Named fault points
// (see the Fault* constants) let chaos tests inject latency, errors,
// and panics into the hot paths deterministically.
//
//thermlint:goroutines
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"thermalherd/internal/clock"
	"thermalherd/internal/config"
	"thermalherd/internal/faultinject"
	"thermalherd/internal/journal"
	"thermalherd/internal/qos"
	"thermalherd/internal/replication"
	"thermalherd/internal/trace"
)

// TenantHeader is the HTTP header attributing a submission to a
// tenant; the gateway forwards it byte-for-byte. Missing or empty
// means the "default" tenant.
const TenantHeader = "X-Tenant-ID"

// DefaultTenant buckets submissions that carry no X-Tenant-ID.
const DefaultTenant = "default"

// DedupHeader marks a submit response answered by Idempotency-Key
// dedup — the job was already accepted by an earlier attempt. The
// gateway uses it to count failover retries whose first send was acked
// by a backend that died before responding.
const DedupHeader = "X-Thermherd-Dedup"

// tenantOrDefault normalizes a raw X-Tenant-ID value: trimmed,
// bounded, defaulted.
func tenantOrDefault(t string) string {
	t = strings.TrimSpace(t)
	if t == "" {
		return DefaultTenant
	}
	if len(t) > 64 {
		t = t[:64]
	}
	return t
}

// Fault points threaded through the service's hot paths; arm them on
// a faultinject.Registry passed via Config.Faults. All are no-ops when
// the registry is nil or disarmed.
//
//thermlint:faultpoints
const (
	// FaultExec fires in the worker just before the executor runs a
	// job: an error action fails the job, a panic action exercises the
	// recover path, a delay action stretches its runtime (tripping the
	// job deadline or the watchdog when configured).
	FaultExec = "job.exec"
	// FaultCacheGet degrades a result-cache lookup into a miss.
	FaultCacheGet = "rescache.get"
	// FaultCachePut drops a result-cache store.
	FaultCachePut = "rescache.put"
	// FaultAdmit rejects queue admission with a 503, as if the queue
	// were full.
	FaultAdmit = "queue.admit"
	// FaultRespond fires while writing job-API responses: a delay
	// action slows the write, an error action turns it into a 500.
	FaultRespond = "http.respond"
	// FaultQuota rejects a queue-bound submission as if the tenant's
	// token bucket were empty (429 + Retry-After), regardless of the
	// real quota state.
	FaultQuota = "qos.quota"
)

// Config sizes the daemon.
type Config struct {
	// Workers is the worker pool size; 0 means runtime.NumCPU().
	Workers int
	// QueueDepth bounds queued (not yet running) jobs; 0 means 64.
	QueueDepth int
	// CacheSize bounds the result cache entry count; 0 means 128.
	CacheSize int

	// JobTimeout bounds each job's execution wall time; a job whose
	// executor aborts on the expired context is failed with a
	// deadline-exceeded error. 0 means no per-job deadline.
	JobTimeout time.Duration
	// StuckAfter arms the watchdog: a job still running this long
	// after it started is settled as failed and its worker slot is
	// restarted (the stuck executor goroutine is abandoned). It should
	// comfortably exceed JobTimeout, which handles cooperative
	// executors; the watchdog is the backstop for ones that ignore
	// their context. 0 disables the watchdog.
	StuckAfter time.Duration
	// WatchdogInterval spaces watchdog scans; 0 means StuckAfter/4,
	// clamped to [10ms, 1s]. Ignored when StuckAfter is 0.
	WatchdogInterval time.Duration
	// BrownoutAfter arms the brownout admission controller: when the
	// head-of-queue job has been waiting longer than this, new
	// queue-bound submissions are shed with 429 + Retry-After (cache
	// hits are still served). 0 disables brownout.
	BrownoutAfter time.Duration

	// SchedPolicy selects the queue discipline: SchedFIFO (the default)
	// or SchedQoS, the cost-predicted multi-tenant scheduler.
	SchedPolicy string
	// ShortBudget is the runtime budget of the predicted-short class
	// under SchedQoS: a short job running past it is demoted to the
	// long pool mid-flight and its predictor bucket retrained. 0 means
	// 2s.
	ShortBudget time.Duration
	// ShortReserve is how many worker slots SchedQoS reserves for
	// short-class jobs; long-class concurrency is capped at
	// Workers - ShortReserve. 0 means max(1, Workers/4); values are
	// clamped to leave at least one long slot.
	ShortReserve int
	// TenantRate and TenantBurst arm per-tenant token-bucket admission
	// quotas (jobs/second accrual and bucket capacity). Rate 0 disables
	// quotas. Quotas apply under both scheduling policies.
	TenantRate  float64
	TenantBurst int
	// TenantWeights sets per-tenant weighted-fair dequeue weights under
	// SchedQoS; unlisted tenants weigh 1.
	TenantWeights map[string]int

	// JournalDir enables crash-safe durability: every job lifecycle
	// transition is appended to a write-ahead log there before it is
	// acknowledged, and on startup the journal is replayed to rebuild
	// the job table and re-enqueue unfinished work. Empty (the default)
	// keeps all state in memory.
	JournalDir string
	// FsyncPolicy is the journal's append durability policy: "always"
	// (default), "interval", or "off". Ignored without JournalDir.
	FsyncPolicy string
	// FsyncEvery spaces journal syncs under the "interval" policy;
	// 0 means 100ms.
	FsyncEvery time.Duration
	// JournalCompactBytes is the WAL size that triggers snapshot
	// compaction; 0 means 4 MiB.
	JournalCompactBytes int64
	// NoRecover discards any persisted journal state at startup instead
	// of replaying it.
	NoRecover bool

	// NodeName is this backend's herd name; it keys the replica streams
	// peers send us and suffixes adopted job ids ("<id>@<origin>").
	// Empty is fine for a standalone daemon.
	NodeName string
	// Repl streams every journaled event to the ring successor per its
	// ack policy (nil disables replication). Under the sync policy a
	// failed replica append withholds the submit ack. The server takes
	// ownership: Drain closes the streamer.
	Repl *replication.Streamer

	// Faults is the chaos-testing fault-injection registry; nil (the
	// production default) costs one atomic load per fault point.
	Faults *faultinject.Registry

	// Clock supplies job timestamps, queue-age measurements, and the
	// watchdog cutoff; nil means the wall clock. Tests inject a
	// clock.Fake to drive timing-dependent behavior synchronously.
	Clock clock.Clock
}

// Server is the simulation-as-a-service daemon. Create one with New,
// launch the worker pool with Start, serve it with net/http (it
// implements http.Handler), and stop it with Drain.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	sched   Scheduler
	cache   *resultCache
	metrics *metrics
	faults  *faultinject.Registry

	// predictor classifies jobs short/long at admission (it annotates
	// statuses under every policy; only SchedQoS acts on it), and
	// quotas holds the per-tenant token buckets (nil when disabled).
	predictor *qos.Predictor
	quotas    *qos.Buckets

	mu     sync.Mutex
	jobs   map[string]*job
	nextID uint64
	// idem maps client Idempotency-Key values to the job id that first
	// carried them, so a retried submission (including one replayed
	// across a restart) is answered with the original job instead of
	// re-executing. Guarded by mu; rebuilt from the journal on recovery.
	idem map[string]string
	// aliases maps adopted job ids (a dead peer's "<id>@<origin>"
	// namespace) to the local job id that already covers them via
	// Idempotency-Key dedup, so the old ids keep resolving without
	// double-registering the work; lookup follows the chain. Guarded by
	// mu.
	aliases map[string]string

	// replica stores peers' streamed journal events until adoption;
	// adoptWatch single-flights the adopted-frontier settle watcher, and
	// the adopted/aliased counters feed the repl.* gauges.
	replica     *replicaStore
	adoptWatch  atomic.Bool
	adoptedJobs atomic.Uint64
	aliasedJobs atomic.Uint64

	// journal is the write-ahead log (nil when durability is off);
	// replay holds what Open recovered until Start applies it, and
	// recovering gates /readyz until that replay completes.
	journal     *journal.Journal
	replay      *journal.Replay
	recovering  atomic.Bool
	replayStats struct{ replayed, truncated, recovered uint64 }

	running  atomic.Int64
	draining atomic.Bool
	wg       sync.WaitGroup

	// readyMu guards the /readyz since-tracking: readyReason is the
	// reason last reported (empty when ready) and readySince is when
	// that condition was first observed, read off the clock seam so the
	// gateway's membership can distinguish a freshly-browning node from
	// a long-dead one.
	readyMu     sync.Mutex
	readyReason string
	readySince  time.Time

	watchdogStop chan struct{}
	watchdogOnce sync.Once

	// exec runs one job's spec; tests substitute a stub.
	exec func(ctx context.Context, spec Spec, report progressFunc) (json.RawMessage, error)
}

// New builds a server; call Start before serving requests. With
// Config.JournalDir set it also opens (and recovers) the write-ahead
// journal, which can fail — a server refusing to start beats one
// silently running without the durability it was asked for.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 128
	}
	if cfg.StuckAfter > 0 && cfg.WatchdogInterval <= 0 {
		cfg.WatchdogInterval = cfg.StuckAfter / 4
		if cfg.WatchdogInterval < 10*time.Millisecond {
			cfg.WatchdogInterval = 10 * time.Millisecond
		}
		if cfg.WatchdogInterval > time.Second {
			cfg.WatchdogInterval = time.Second
		}
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real()
	}
	if cfg.ShortBudget <= 0 {
		cfg.ShortBudget = 2 * time.Second
	}
	s := &Server{
		cfg:          cfg,
		mux:          http.NewServeMux(),
		cache:        newResultCache(cfg.CacheSize, cfg.Faults),
		metrics:      newMetrics(),
		faults:       cfg.Faults,
		predictor:    qos.NewPredictor(0),
		quotas:       qos.NewBuckets(cfg.TenantRate, cfg.TenantBurst),
		jobs:         make(map[string]*job),
		idem:         make(map[string]string),
		aliases:      make(map[string]string),
		watchdogStop: make(chan struct{}),
		exec:         runSpec,
	}
	switch cfg.SchedPolicy {
	case "", SchedFIFO:
		s.cfg.SchedPolicy = SchedFIFO
		s.sched = newQueue(cfg.QueueDepth, cfg.Clock)
	case SchedQoS:
		s.sched = newQoSSched(cfg.QueueDepth, cfg.Workers, cfg.ShortReserve,
			s.cfg.ShortBudget, cfg.TenantWeights, s.predictor, cfg.Clock)
	default:
		return nil, fmt.Errorf("unknown scheduling policy %q (want %s or %s)",
			cfg.SchedPolicy, SchedFIFO, SchedQoS)
	}
	if cfg.JournalDir != "" {
		pol, err := journal.ParseFsyncPolicy(cfg.FsyncPolicy)
		if err != nil {
			return nil, err
		}
		jnl, rep, err := journal.Open(journal.Options{
			Dir:          cfg.JournalDir,
			Fsync:        pol,
			FsyncEvery:   cfg.FsyncEvery,
			CompactBytes: cfg.JournalCompactBytes,
			Faults:       cfg.Faults,
			Clock:        cfg.Clock,
		})
		if err != nil {
			return nil, err
		}
		if cfg.NoRecover {
			if err := jnl.Reset(); err != nil {
				jnl.Close()
				return nil, err
			}
			rep = nil
		}
		s.journal = jnl
		s.replay = rep
		// Not ready until Start replays; /readyz reports "recovering".
		s.recovering.Store(true)
	}
	// The replica store is file-backed alongside the journal (memory-only
	// without one), so a successor's copy of its peers' records survives
	// the successor's own restart too.
	s.replica = newReplicaStore(cfg.JournalDir, cfg.NoRecover)
	// Anchor the readiness condition at boot so the first /readyz probe
	// already carries a meaningful "since".
	s.readyReason = ""
	if s.recovering.Load() {
		s.readyReason = "recovering"
	}
	s.readySince = cfg.Clock.Now()
	s.routes()
	return s, nil
}

// Start applies the journal replay (rebuilding the job table and
// re-enqueuing unfinished work before any worker can race it), then
// launches the worker pool and, when configured, the stuck-worker
// watchdog.
func (s *Server) Start() {
	s.applyReplay()
	if s.journal != nil {
		// Boot compaction: fold the recovered table into a snapshot so
		// the WAL restarts empty and the next crash replays only events
		// from this incarnation. Capture under the journal lock — the
		// handler may already be serving admissions.
		s.journal.Compact(func() journal.Snapshot {
			return journal.Snapshot{Jobs: s.snapshotJobs()}
		})
	}
	s.recovering.Store(false)
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if s.cfg.StuckAfter > 0 {
		go s.watchdog()
	}
	if qs, ok := s.sched.(*qosSched); ok {
		go s.demoteLoop(qs)
	}
}

// demoteLoop periodically sweeps running jobs for predicted-shorts that
// have overrun the short budget and demotes them (see
// qosSched.demoteOverruns). It runs on the clock seam so fake-clock
// tests drive demotion deterministically, and stops with the watchdog
// at drain.
func (s *Server) demoteLoop(q *qosSched) {
	interval := s.cfg.ShortBudget / 4
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	if interval > time.Second {
		interval = time.Second
	}
	for {
		select {
		case <-s.watchdogStop:
			return
		case <-s.cfg.Clock.After(interval):
			q.demoteOverruns()
		}
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Drain gracefully shuts the pool down: new submissions are rejected
// with 503, queued-but-unstarted jobs are canceled, and running jobs
// get until ctx's deadline to finish before their contexts are
// canceled. It returns ctx.Err() when the deadline forced
// cancellation, nil on a clean drain.
func (s *Server) Drain(ctx context.Context) error {
	if s.draining.Swap(true) {
		return nil // already draining
	}
	defer s.watchdogOnce.Do(func() { close(s.watchdogStop) })
	for _, j := range s.sched.drainPending() {
		if j.cancelQueued("server shutting down") {
			s.metrics.inc(&s.metrics.canceled)
			s.metrics.tinc(j.tenant, tcCanceled)
			s.logEvent(journal.Event{Type: journal.EventCanceled, ID: j.id, Error: "server shutting down"})
		}
	}
	s.sched.close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.cfg.Repl.Close()
		s.closeJournal()
		return nil
	case <-ctx.Done():
		// Deadline passed: cancel whatever is still running and wait
		// for the workers to notice (the runner checks between
		// simulation phases; the watchdog, when armed, retires slots
		// whose executors ignore even that).
		s.mu.Lock()
		for _, j := range s.jobs {
			j.cancel()
		}
		s.mu.Unlock()
		//thermlint:blocking -- every job was just canceled; workers check ctx between phases and the watchdog retires slots that ignore it, so done closes promptly
		<-done
		s.cfg.Repl.Close()
		s.closeJournal()
		return ctx.Err()
	}
}

// worker owns one pool slot: it drains the queue until closed and
// empty, running each job in a child goroutine so the slot itself can
// be retired by the watchdog if the executor gets stuck. A retired
// slot's executor goroutine is abandoned — its job is already settled,
// and the settle-once guard keeps the straggler from overwriting
// anything when (if ever) it returns.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.sched.pop()
		if !ok {
			return
		}
		s.metrics.observeQueueWait(j.qclass(), s.cfg.Clock.Since(j.submitted))
		done := make(chan struct{})
		//thermlint:goroutine -- exits when runJob returns; a stuck executor is deliberately abandoned by the watchdog, which restarts the slot
		go func() {
			defer close(done)
			s.runJob(j)
		}()
		select {
		case <-done:
		case <-j.abandoned:
			return // watchdog retired this slot; a replacement is running
		}
	}
}

// watchdog periodically sweeps for jobs stuck past StuckAfter and
// reaps them: the job is failed, its slot restarted.
func (s *Server) watchdog() {
	for {
		select {
		case <-s.watchdogStop:
			return
		case <-s.cfg.Clock.After(s.cfg.WatchdogInterval):
			s.reapStuck()
		}
	}
}

// reapStuck settles every overdue running job as failed and restarts
// its worker slot. The replacement is registered on the WaitGroup
// before the stuck slot is told to retire, so Drain's wg.Wait can
// never observe a transient zero.
func (s *Server) reapStuck() {
	cutoff := s.cfg.Clock.Now().Add(-s.cfg.StuckAfter)
	s.mu.Lock()
	var stuck []*job
	for _, j := range s.jobs {
		if j.runningSince(cutoff) {
			stuck = append(stuck, j)
		}
	}
	s.mu.Unlock()
	for _, j := range stuck {
		msg := fmt.Sprintf("watchdog: job stuck for over %s; worker slot restarted", s.cfg.StuckAfter)
		if !j.finishRunning(StateFailed, nil, msg) {
			continue // settled in the meantime; nothing to reap
		}
		j.cancel()
		s.metrics.inc(&s.metrics.failed)
		s.metrics.tinc(j.tenant, tcFailed)
		s.metrics.inc(&s.metrics.workerRestarts)
		s.logEvent(journal.Event{Type: journal.EventFailed, ID: j.id, Error: msg})
		// Release the scheduler's slot charge for the reaped job; the
		// straggling executor's own deferred release becomes a no-op.
		s.sched.finished(j)
		s.wg.Add(1)
		go s.worker()
		close(j.abandoned)
	}
}

// runJob executes one popped job through the executor and settles its
// terminal state, result cache entry, and metrics. Executor panics are
// recovered into failed jobs; the daemon survives.
func (s *Server) runJob(j *job) {
	// Release the scheduler's slot charge (and train the predictor on
	// the observed runtime) however this job settles. Idempotent: the
	// watchdog releases reaped jobs first and this becomes a no-op.
	defer s.sched.finished(j)
	if !j.tryStart() {
		return // canceled while queued; already counted
	}
	s.logEvent(journal.Event{Type: journal.EventStarted, ID: j.id})
	s.running.Add(1)
	defer s.running.Add(-1)
	ctx := j.ctx
	if s.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(j.ctx, s.cfg.JobTimeout)
		defer cancel()
	}
	start := s.cfg.Clock.Now()
	res, err, panicked := s.execJob(ctx, j)
	switch {
	case panicked:
		if j.finishRunning(StateFailed, nil, "recovered "+err.Error()) {
			s.metrics.inc(&s.metrics.failed)
			s.metrics.tinc(j.tenant, tcFailed)
			s.metrics.inc(&s.metrics.panicsRecovered)
			s.logEvent(journal.Event{Type: journal.EventFailed, ID: j.id, Error: "recovered panic"})
		}
	case j.ctx.Err() != nil:
		if j.finishRunning(StateCanceled, nil, "canceled: "+j.ctx.Err().Error()) {
			s.metrics.inc(&s.metrics.canceled)
			s.metrics.tinc(j.tenant, tcCanceled)
			s.logEvent(journal.Event{Type: journal.EventCanceled, ID: j.id, Error: j.ctx.Err().Error()})
		}
	case err != nil && ctx.Err() == context.DeadlineExceeded:
		msg := fmt.Sprintf("deadline exceeded: job ran %s against a %s job timeout",
			s.cfg.Clock.Since(start).Round(time.Millisecond), s.cfg.JobTimeout)
		if j.finishRunning(StateFailed, nil, msg) {
			s.metrics.inc(&s.metrics.failed)
			s.metrics.tinc(j.tenant, tcFailed)
			s.metrics.inc(&s.metrics.deadlineExceeded)
			s.logEvent(journal.Event{Type: journal.EventFailed, ID: j.id, Error: msg})
		}
	case err != nil:
		if j.finishRunning(StateFailed, nil, err.Error()) {
			s.metrics.inc(&s.metrics.failed)
			s.metrics.tinc(j.tenant, tcFailed)
			s.logEvent(journal.Event{Type: journal.EventFailed, ID: j.id, Error: err.Error()})
		}
	default:
		if j.finishRunning(StateDone, res, "") {
			s.cache.put(j.key, res)
			s.metrics.inc(&s.metrics.completed)
			s.metrics.tinc(j.tenant, tcCompleted)
			s.logEvent(journal.Event{Type: journal.EventCompleted, ID: j.id, Result: res})
		}
	}
	s.metrics.observeLatency(j.spec.Kind, s.cfg.Clock.Since(start))
	s.compactMaybe()
}

// register stores j under a fresh id, recording its idempotency key
// (when the client sent one) for dedup.
func (s *Server) register(j *job, idemKey string) {
	s.mu.Lock()
	s.jobs[j.id] = j
	if idemKey != "" {
		s.idem[idemKey] = j.id
	}
	s.mu.Unlock()
}

// unregister rolls back a registration whose admission then failed
// (journal append error, queue overflow), so the job is unreachable
// and its idempotency key is free for a retry.
func (s *Server) unregister(j *job, idemKey string) {
	s.mu.Lock()
	delete(s.jobs, j.id)
	if idemKey != "" && s.idem[idemKey] == j.id {
		delete(s.idem, idemKey)
	}
	s.mu.Unlock()
}

// lookup finds a job by id, following the adoption alias table: an
// adopted id whose work was already covered by a local job (same
// Idempotency-Key) resolves through the chain. The hop bound guards
// against a cyclic table, which no write path can produce.
func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for hops := 0; hops < 8; hops++ {
		if j, ok := s.jobs[id]; ok {
			return j, true
		}
		next, ok := s.aliases[id]
		if !ok {
			return nil, false
		}
		id = next
	}
	return nil, false
}

// newID mints a monotonically increasing job id.
func (s *Server) newID() string {
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	s.mu.Unlock()
	return fmt.Sprintf("job-%06d", id)
}

// Metrics returns the /metrics document; exported for the daemon's
// logs and tests.
func (s *Server) Metrics() map[string]any {
	browning, _ := s.brownout()
	g := gauges{
		queueDepth:       s.sched.len(),
		queueCap:         s.sched.cap(),
		running:          int(s.running.Load()),
		cacheLen:         s.cache.len(),
		cacheCap:         s.cache.capacity(),
		workers:          s.cfg.Workers,
		brownoutActive:   browning,
		faultsInjected:   s.faults.Counts(),
		journalReplayed:  s.replayStats.replayed,
		journalTruncated: s.replayStats.truncated,
		journalRecovered: s.replayStats.recovered,
		schedPolicy:      s.cfg.SchedPolicy,
		predictor:        s.predictor.Stats(),
	}
	if qs, ok := s.sched.(*qosSched); ok {
		g.queuedShort, g.queuedLong, g.runningShort, g.runningLong = qs.counts()
	}
	if s.journal != nil {
		st := s.journal.Stats()
		g.journalAppends, g.journalFsyncs = st.Appends, st.Fsyncs
	}
	g.replPolicy = string(s.cfg.Repl.Policy())
	rst := s.cfg.Repl.Stats()
	g.replStreamed, g.replStreamErrors, g.replDropped = rst.Streamed, rst.StreamErrors, rst.Dropped
	g.replReplicaEvents = s.replica.receivedEvents()
	g.replAdopted = s.adoptedJobs.Load()
	g.replAliased = s.aliasedJobs.Load()
	return s.metrics.snapshot(g)
}

// routes installs the HTTP endpoints.
func (s *Server) routes() {
	s.route("/v1/jobs", map[string]http.HandlerFunc{
		http.MethodPost: s.handleSubmit,
		http.MethodGet:  s.handleList,
	})
	s.route("/v1/jobs:batch", map[string]http.HandlerFunc{
		http.MethodPost: s.handleSubmitBatch,
	})
	s.route("/v1/jobs/{id}", map[string]http.HandlerFunc{
		http.MethodGet:    s.handleStatus,
		http.MethodDelete: s.handleCancel,
	})
	s.route("/v1/jobs/{id}/result", map[string]http.HandlerFunc{
		http.MethodGet: s.handleResult,
	})
	s.route("/v1/replica/{origin}", map[string]http.HandlerFunc{
		http.MethodPost: s.handleReplicaAppend,
	})
	s.route("/v1/replica/{origin}/adopt", map[string]http.HandlerFunc{
		http.MethodPost: s.handleReplicaAdopt,
	})
	s.route("/v1/migrate", map[string]http.HandlerFunc{
		http.MethodPost: s.handleMigrate,
	})
	s.route("/v1/workloads", map[string]http.HandlerFunc{http.MethodGet: s.handleWorkloads})
	s.route("/v1/configs", map[string]http.HandlerFunc{http.MethodGet: s.handleConfigs})
	s.route("/healthz", map[string]http.HandlerFunc{http.MethodGet: s.handleHealthz})
	s.route("/readyz", map[string]http.HandlerFunc{http.MethodGet: s.handleReadyz})
	s.route("/metrics", map[string]http.HandlerFunc{http.MethodGet: s.handleMetrics})
}

// route registers each method's handler under "METHOD path" plus a
// methodless catch-all so every other verb on a known path gets a
// uniform JSON 405 carrying an Allow header (the Go 1.22 mux's own 405
// is plain text, and per-handler checks had drifted apart).
func (s *Server) route(path string, handlers map[string]http.HandlerFunc) {
	methods := make([]string, 0, len(handlers)+1)
	for m, h := range handlers {
		s.mux.HandleFunc(m+" "+path, h)
		methods = append(methods, m)
		if m == http.MethodGet {
			methods = append(methods, http.MethodHead) // the mux serves HEAD via GET
		}
	}
	sort.Strings(methods)
	allow := strings.Join(methods, ", ")
	s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed on %s (allow: %s)", r.Method, path, allow)
	})
}

// writeJSON writes v with the given HTTP status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// respond writes a job-API success document through the FaultRespond
// fault point: an injected delay slows the write, an injected error
// turns the response into a 500.
func (s *Server) respond(w http.ResponseWriter, status int, v any) {
	if err := s.faults.Fire(FaultRespond); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, status, v)
}

// errorDoc is the uniform error body.
type errorDoc struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorDoc{Error: fmt.Sprintf(format, args...)})
}

// brownoutError is admit's load-shedding rejection; the HTTP layer
// maps it to a 429 with a Retry-After header.
type brownoutError struct {
	wait       time.Duration
	retryAfter int // seconds
}

func (e *brownoutError) Error() string {
	return fmt.Sprintf("shedding load: queued jobs waiting %s; retry in %ds",
		e.wait.Round(time.Millisecond), e.retryAfter)
}

// brownout reports whether the queue-wait admission controller is
// shedding, and the Retry-After hint (in seconds) to send with
// rejections.
func (s *Server) brownout() (bool, int) {
	if s.cfg.BrownoutAfter <= 0 {
		return false, 0
	}
	wait := s.sched.oldestWait()
	if wait <= s.cfg.BrownoutAfter {
		return false, 0
	}
	// Suggest retrying after roughly the backlog's current age: by
	// then the head-of-line wait has either cleared or the client
	// re-sheds cheaply.
	return true, int(wait/time.Second) + 1
}

// quotaError is admit's per-tenant quota rejection; the HTTP layer
// maps it to a 429 with a Retry-After header, like brownout.
type quotaError struct {
	tenant     string
	retryAfter int // seconds
}

func (e *quotaError) Error() string {
	return fmt.Sprintf("tenant %q over admission quota; retry in %ds", e.tenant, e.retryAfter)
}

// setRetryAfter stamps the Retry-After header for brownout and quota
// rejections.
func setRetryAfter(w http.ResponseWriter, err error) {
	var be *brownoutError
	if errors.As(err, &be) {
		w.Header().Set("Retry-After", strconv.Itoa(be.retryAfter))
		return
	}
	var qe *quotaError
	if errors.As(err, &qe) {
		w.Header().Set("Retry-After", strconv.Itoa(qe.retryAfter))
	}
}

// admit validates one spec and either answers it from the cache (or
// idempotency-key dedup), or enqueues it, mirroring the single-submit
// metrics on both paths. With the journal enabled, a queue-bound job
// is journaled before it is acknowledged — the 202 is a durability
// promise. tenant is the raw X-Tenant-ID value; every path attributes
// the submission to its (normalized) tenant so the accounting identity
// holds per tenant as well as globally. It returns the job's status
// plus the HTTP code to report: 200 on a cache hit or dedup, 202 when
// queued, 400/429/503 (with err set) on rejection. dedup is true only
// on the Idempotency-Key path — the signal a retrying gateway uses to
// count a failover whose first attempt was acked before the backend
// died.
func (s *Server) admit(spec Spec, idemKey, tenant string) (st Status, code int, dedup bool, err error) {
	if err := spec.normalize(); err != nil {
		return Status{}, http.StatusBadRequest, false, fmt.Errorf("invalid job: %w", err)
	}
	tenant = tenantOrDefault(tenant)
	// Idempotency-key dedup: a resubmission of a key we have already
	// accepted (in this incarnation or, via the journal, a previous
	// one) is answered with the original job — the retried batch after
	// a restart must not double-execute. The submission still counts
	// as submitted + a cache hit (it was absorbed without executing
	// anything), keeping the accounting identity intact; deduped
	// attributes it.
	if idemKey != "" {
		s.mu.Lock()
		id, ok := s.idem[idemKey]
		var j *job
		if ok {
			j = s.jobs[id]
		}
		s.mu.Unlock()
		if j != nil {
			s.metrics.inc(&s.metrics.submitted)
			s.metrics.inc(&s.metrics.cacheHits)
			s.metrics.inc(&s.metrics.deduped)
			s.metrics.tinc(tenant, tcSubmitted)
			s.metrics.tinc(tenant, tcHits)
			return j.status(), http.StatusOK, true, nil
		}
	}
	j, err := newJob(s.newID(), spec, s.cfg.Clock)
	if err != nil {
		return Status{}, http.StatusBadRequest, false, fmt.Errorf("invalid job: %w", err)
	}
	j.tenant = tenant
	s.metrics.inc(&s.metrics.submitted)
	s.metrics.tinc(tenant, tcSubmitted)
	if res, ok := s.cache.get(j.key); ok {
		s.metrics.inc(&s.metrics.cacheHits)
		s.metrics.tinc(tenant, tcHits)
		j.finishFromCache(res)
		s.register(j, idemKey)
		// Best-effort journaling: the 200 response already carries the
		// result, so losing this record costs only post-restart dedup.
		s.logEvent(acceptedEvent(j, idemKey))
		s.logEvent(journal.Event{Type: journal.EventCompleted, ID: j.id, Result: res, FromCache: true})
		return j.status(), http.StatusOK, false, nil
	}
	s.metrics.inc(&s.metrics.cacheMisses)
	// Per-tenant quota: a tenant over its token bucket is shed with
	// 429 + Retry-After before it can occupy queue space. Cache hits
	// and dedups above are free — quotas meter execution capacity.
	if ferr := s.faults.Fire(FaultQuota); ferr != nil {
		s.metrics.inc(&s.metrics.rejected)
		s.metrics.inc(&s.metrics.quotaRejects)
		s.metrics.tinc(tenant, tcRejected)
		return Status{}, http.StatusTooManyRequests, false, &quotaError{tenant: tenant, retryAfter: 1}
	}
	if ok, retry := s.quotas.Take(tenant, s.cfg.Clock.Now()); !ok {
		s.metrics.inc(&s.metrics.rejected)
		s.metrics.inc(&s.metrics.quotaRejects)
		s.metrics.tinc(tenant, tcRejected)
		return Status{}, http.StatusTooManyRequests, false,
			&quotaError{tenant: tenant, retryAfter: int(retry/time.Second) + 1}
	}
	// Brownout sheds queue-bound work while admission is still
	// technically possible — a 429 the client can back off on beats a
	// 503 storm when the queue finally overflows.
	if shedding, retryAfter := s.brownout(); shedding {
		s.metrics.inc(&s.metrics.rejected)
		s.metrics.inc(&s.metrics.brownoutRejects)
		s.metrics.tinc(tenant, tcRejected)
		return Status{}, http.StatusTooManyRequests, false,
			&brownoutError{wait: s.sched.oldestWait(), retryAfter: retryAfter}
	}
	if err := s.faults.Fire(FaultAdmit); err != nil {
		s.metrics.inc(&s.metrics.rejected)
		s.metrics.tinc(tenant, tcRejected)
		return Status{}, http.StatusServiceUnavailable, false, err
	}
	// Classify for the scheduler: the cost predictor's verdict rides on
	// the job into the queue (and into its visible status).
	j.setClass(s.predictor.Predict(j.pkey))
	// Register before journaling: compaction snapshots the job table
	// and truncates the WAL atomically with respect to appends, which
	// is only lossless if the table is never older than the WAL — every
	// event's in-memory state change must happen before its append (see
	// compactMaybe). If the append then fails, the submission is
	// rejected un-acked and the registration is rolled back; if we
	// crash after it, the replay resurrects a job the client may never
	// have seen acked — harmless, since execution is idempotent.
	s.register(j, idemKey)
	if err := s.logEvent(acceptedEvent(j, idemKey)); err != nil {
		s.unregister(j, idemKey)
		s.metrics.inc(&s.metrics.rejected)
		s.metrics.tinc(tenant, tcRejected)
		return Status{}, http.StatusServiceUnavailable, false,
			fmt.Errorf("journal write failed; job not accepted: %w", err)
	}
	if err := s.sched.push(j); err != nil {
		// The acceptance is journaled; record the cancellation so a
		// replay does not resurrect a job the client saw rejected, and
		// roll back the registration so a retry of the same idempotency
		// key re-enqueues instead of deduping to a dead job.
		j.cancelQueued("queue rejected job")
		s.logEvent(journal.Event{Type: journal.EventCanceled, ID: j.id, Error: "queue rejected job at admission"})
		s.unregister(j, idemKey)
		s.metrics.inc(&s.metrics.rejected)
		s.metrics.tinc(tenant, tcRejected)
		return Status{}, http.StatusServiceUnavailable, false, err
	}
	//thermlint:handoff -- the 202 hands the obligation to the worker: runJob (or the watchdog) settles it via finishRunning
	return j.status(), http.StatusAccepted, false, nil
}

// acceptedEvent renders a job's admission for the journal.
func acceptedEvent(j *job, idemKey string) journal.Event {
	spec, _ := marshalSpec(j.spec)
	return journal.Event{Type: journal.EventAccepted, ID: j.id, Spec: spec, Key: j.key, IdemKey: idemKey, Tenant: j.tenant}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tenant := r.Header.Get(TenantHeader)
	if s.draining.Load() {
		// Count the rejection as a submission too, preserving the
		// accounting identity submitted == hits + terminal outcomes.
		s.metrics.inc(&s.metrics.submitted)
		s.metrics.inc(&s.metrics.rejected)
		s.metrics.tinc(tenantOrDefault(tenant), tcSubmitted)
		s.metrics.tinc(tenantOrDefault(tenant), tcRejected)
		writeError(w, http.StatusServiceUnavailable, "server is draining; not accepting jobs")
		return
	}
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job payload: %v", err)
		return
	}
	st, code, dedup, err := s.admit(spec, r.Header.Get("Idempotency-Key"), tenant)
	if err != nil {
		setRetryAfter(w, err)
		writeError(w, code, "%v", err)
		return
	}
	if dedup {
		// Tells a retrying gateway the first attempt of this submission
		// was already acked here — the failover-dedup accounting signal.
		w.Header().Set(DedupHeader, "1")
	}
	s.respond(w, code, st)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	s.respond(w, http.StatusOK, j.status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	state, result, errMsg := j.snapshotResult()
	switch state {
	case StateDone:
		if err := s.faults.Fire(FaultRespond); err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(result)
	case StateFailed:
		writeError(w, http.StatusInternalServerError, "job failed: %s", errMsg)
	case StateCanceled:
		writeError(w, http.StatusConflict, "job was canceled: %s", errMsg)
	default:
		writeJSON(w, http.StatusConflict, j.status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if j.cancelQueued("canceled by client") {
		// Never started; the worker will skip it when popped.
		s.metrics.inc(&s.metrics.canceled)
		s.metrics.tinc(j.tenant, tcCanceled)
		s.logEvent(journal.Event{Type: journal.EventCanceled, ID: j.id, Error: "canceled by client"})
		writeJSON(w, http.StatusOK, j.status())
		return
	}
	st := j.status()
	switch st.State {
	case StateRunning:
		// The worker settles the state (and metrics) once the runner
		// observes the canceled context.
		j.cancel()
		writeJSON(w, http.StatusOK, st)
	default:
		writeError(w, http.StatusConflict, "job %s is already %s", st.ID, st.State)
	}
}

// workloadInfo is one GET /v1/workloads entry.
type workloadInfo struct {
	Name       string `json:"name"`
	Group      string `json:"group"`
	WorkingSet uint64 `json:"working_set_bytes"`
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	suite := trace.Suite()
	out := make([]workloadInfo, len(suite))
	for i, p := range suite {
		out[i] = workloadInfo{Name: p.Name, Group: p.Group.String(), WorkingSet: p.WorkingSet}
	}
	writeJSON(w, http.StatusOK, out)
}

// configInfo is one GET /v1/configs entry.
type configInfo struct {
	Name           string  `json:"name"`
	ClockGHz       float64 `json:"clock_ghz"`
	ThreeD         bool    `json:"three_d"`
	ThermalHerding bool    `json:"thermal_herding"`
}

func (s *Server) handleConfigs(w http.ResponseWriter, r *http.Request) {
	regs := config.Registry()
	out := make([]configInfo, len(regs))
	for i, m := range regs {
		out[i] = configInfo{Name: m.Name, ClockGHz: m.ClockGHz, ThreeD: m.ThreeD, ThermalHerding: m.ThermalHerding}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  status,
		"workers": s.cfg.Workers,
	})
}

// sinceReason tracks how long the current readiness condition has
// held: when the observed reason differs from the last one, the
// transition is stamped off the clock seam; repeated probes under the
// same reason keep the original timestamp. The returned time is
// machine-readable in the /readyz document so gateway membership can
// tell a freshly-browning node from a long-dead one.
func (s *Server) sinceReason(reason string) time.Time {
	s.readyMu.Lock()
	defer s.readyMu.Unlock()
	if reason != s.readyReason || s.readySince.IsZero() {
		s.readyReason = reason
		s.readySince = s.cfg.Clock.Now()
	}
	return s.readySince
}

// handleReadyz is the load-balancer readiness probe, distinct from the
// /healthz liveness probe: a live daemon stops being ready while it
// drains or sheds load, so rotations pull it before clients see
// rejections. Every document carries a "since" timestamp: when the
// current condition (ready, or the specific not-ready reason) was
// first observed.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	notReady := func(reason string, extra map[string]any) {
		doc := map[string]any{
			"ready":  false,
			"reason": reason,
			"since":  s.sinceReason(reason).Format(time.RFC3339Nano),
		}
		for k, v := range extra {
			doc[k] = v
		}
		writeJSON(w, http.StatusServiceUnavailable, doc)
	}
	if s.recovering.Load() {
		notReady("recovering", nil)
		return
	}
	if s.draining.Load() {
		notReady("draining", nil)
		return
	}
	if shedding, retryAfter := s.brownout(); shedding {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		notReady("brownout", map[string]any{"retry_after_sec": retryAfter})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ready": true,
		"since": s.sinceReason("").Format(time.RFC3339Nano),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}
