// Package server exposes the Thermal Herding simulation stack as a
// long-lived HTTP service (the thermherdd daemon): jobs are submitted
// to a bounded FIFO queue, executed by a fixed worker pool, and their
// JSON results are kept in a content-addressed LRU cache so identical
// resubmissions are answered without re-simulating.
//
// API surface (all JSON):
//
//	POST   /v1/jobs             submit a job (Spec) → Status (202; 200 on cache hit)
//	POST   /v1/jobs:batch       submit up to 256 jobs in one request
//	GET    /v1/jobs             list jobs, filterable by ?status= with pagination
//	GET    /v1/jobs/{id}        job status and progress
//	GET    /v1/jobs/{id}/result the finished job's result document
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/workloads        the runnable workload profiles
//	GET    /v1/configs          the machine configurations
//	GET    /healthz             liveness and drain state
//	GET    /metrics             expvar-style counters and latency histograms
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"thermalherd/internal/config"
	"thermalherd/internal/trace"
)

// Config sizes the daemon.
type Config struct {
	// Workers is the worker pool size; 0 means runtime.NumCPU().
	Workers int
	// QueueDepth bounds queued (not yet running) jobs; 0 means 64.
	QueueDepth int
	// CacheSize bounds the result cache entry count; 0 means 128.
	CacheSize int
}

// Server is the simulation-as-a-service daemon. Create one with New,
// launch the worker pool with Start, serve it with net/http (it
// implements http.Handler), and stop it with Drain.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	queue   *queue
	cache   *resultCache
	metrics *metrics

	mu     sync.Mutex
	jobs   map[string]*job
	nextID uint64

	running  atomic.Int64
	draining atomic.Bool
	wg       sync.WaitGroup

	// exec runs one job's spec; tests substitute a stub.
	exec func(ctx context.Context, spec Spec, report progressFunc) (json.RawMessage, error)
}

// New builds a server; call Start before serving requests.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 128
	}
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		queue:   newQueue(cfg.QueueDepth),
		cache:   newResultCache(cfg.CacheSize),
		metrics: newMetrics(),
		jobs:    make(map[string]*job),
		exec:    runSpec,
	}
	s.routes()
	return s
}

// Start launches the worker pool.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Drain gracefully shuts the pool down: new submissions are rejected
// with 503, queued-but-unstarted jobs are canceled, and running jobs
// get until ctx's deadline to finish before their contexts are
// canceled. It returns ctx.Err() when the deadline forced
// cancellation, nil on a clean drain.
func (s *Server) Drain(ctx context.Context) error {
	if s.draining.Swap(true) {
		return nil // already draining
	}
	for _, j := range s.queue.drainPending() {
		if j.cancelQueued("server shutting down") {
			s.metrics.inc(&s.metrics.canceled)
		}
	}
	s.queue.close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Deadline passed: cancel whatever is still running and wait
		// for the workers to notice (the runner checks between
		// simulation phases).
		s.mu.Lock()
		for _, j := range s.jobs {
			j.cancel()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// worker drains the queue until it is closed and empty.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.queue.pop()
		if !ok {
			return
		}
		s.runJob(j)
	}
}

// runJob executes one popped job through the executor and settles its
// terminal state, result cache entry, and metrics.
func (s *Server) runJob(j *job) {
	if !j.tryStart() {
		return // canceled while queued; already counted
	}
	s.running.Add(1)
	defer s.running.Add(-1)
	start := time.Now()
	res, err := s.exec(j.ctx, j.spec, j.setProgress)
	switch {
	case j.ctx.Err() != nil:
		j.finish(StateCanceled, nil, "canceled: "+j.ctx.Err().Error())
		s.metrics.inc(&s.metrics.canceled)
	case err != nil:
		j.finish(StateFailed, nil, err.Error())
		s.metrics.inc(&s.metrics.failed)
	default:
		j.finish(StateDone, res, "")
		s.cache.put(j.key, res)
		s.metrics.inc(&s.metrics.completed)
	}
	s.metrics.observeLatency(j.spec.Kind, time.Since(start))
}

// register stores j under a fresh id.
func (s *Server) register(j *job) {
	s.mu.Lock()
	s.jobs[j.id] = j
	s.mu.Unlock()
}

// lookup finds a job by id.
func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// newID mints a monotonically increasing job id.
func (s *Server) newID() string {
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	s.mu.Unlock()
	return fmt.Sprintf("job-%06d", id)
}

// Metrics returns the /metrics document; exported for the daemon's
// logs and tests.
func (s *Server) Metrics() map[string]any {
	return s.metrics.snapshot(
		s.queue.len(), s.queue.cap(),
		int(s.running.Load()),
		s.cache.len(), s.cache.capacity())
}

// routes installs the HTTP endpoints.
func (s *Server) routes() {
	s.route("/v1/jobs", map[string]http.HandlerFunc{
		http.MethodPost: s.handleSubmit,
		http.MethodGet:  s.handleList,
	})
	s.route("/v1/jobs:batch", map[string]http.HandlerFunc{
		http.MethodPost: s.handleSubmitBatch,
	})
	s.route("/v1/jobs/{id}", map[string]http.HandlerFunc{
		http.MethodGet:    s.handleStatus,
		http.MethodDelete: s.handleCancel,
	})
	s.route("/v1/jobs/{id}/result", map[string]http.HandlerFunc{
		http.MethodGet: s.handleResult,
	})
	s.route("/v1/workloads", map[string]http.HandlerFunc{http.MethodGet: s.handleWorkloads})
	s.route("/v1/configs", map[string]http.HandlerFunc{http.MethodGet: s.handleConfigs})
	s.route("/healthz", map[string]http.HandlerFunc{http.MethodGet: s.handleHealthz})
	s.route("/metrics", map[string]http.HandlerFunc{http.MethodGet: s.handleMetrics})
}

// route registers each method's handler under "METHOD path" plus a
// methodless catch-all so every other verb on a known path gets a
// uniform JSON 405 carrying an Allow header (the Go 1.22 mux's own 405
// is plain text, and per-handler checks had drifted apart).
func (s *Server) route(path string, handlers map[string]http.HandlerFunc) {
	methods := make([]string, 0, len(handlers)+1)
	for m, h := range handlers {
		s.mux.HandleFunc(m+" "+path, h)
		methods = append(methods, m)
		if m == http.MethodGet {
			methods = append(methods, http.MethodHead) // the mux serves HEAD via GET
		}
	}
	sort.Strings(methods)
	allow := strings.Join(methods, ", ")
	s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed on %s (allow: %s)", r.Method, path, allow)
	})
}

// writeJSON writes v with the given HTTP status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// errorDoc is the uniform error body.
type errorDoc struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorDoc{Error: fmt.Sprintf(format, args...)})
}

// admit validates one spec and either answers it from the cache or
// enqueues it, mirroring the single-submit metrics on both paths. It
// returns the job's status plus the HTTP code to report: 200 on a
// cache hit, 202 when queued, 400/503 (with err set) on rejection.
func (s *Server) admit(spec Spec) (Status, int, error) {
	if err := spec.normalize(); err != nil {
		return Status{}, http.StatusBadRequest, fmt.Errorf("invalid job: %w", err)
	}
	s.metrics.inc(&s.metrics.submitted)
	j := newJob(s.newID(), spec)
	if res, ok := s.cache.get(j.key); ok {
		s.metrics.inc(&s.metrics.cacheHits)
		j.finishFromCache(res)
		s.register(j)
		return j.status(), http.StatusOK, nil
	}
	s.metrics.inc(&s.metrics.cacheMisses)
	if err := s.queue.push(j); err != nil {
		s.metrics.inc(&s.metrics.rejected)
		return Status{}, http.StatusServiceUnavailable, err
	}
	s.register(j)
	return j.status(), http.StatusAccepted, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.metrics.inc(&s.metrics.rejected)
		writeError(w, http.StatusServiceUnavailable, "server is draining; not accepting jobs")
		return
	}
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job payload: %v", err)
		return
	}
	st, code, err := s.admit(spec)
	if err != nil {
		writeError(w, code, "%v", err)
		return
	}
	writeJSON(w, code, st)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	state, result, errMsg := j.snapshotResult()
	switch state {
	case StateDone:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(result)
	case StateFailed:
		writeError(w, http.StatusInternalServerError, "job failed: %s", errMsg)
	case StateCanceled:
		writeError(w, http.StatusConflict, "job was canceled: %s", errMsg)
	default:
		writeJSON(w, http.StatusConflict, j.status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if j.cancelQueued("canceled by client") {
		// Never started; the worker will skip it when popped.
		s.metrics.inc(&s.metrics.canceled)
		writeJSON(w, http.StatusOK, j.status())
		return
	}
	st := j.status()
	switch st.State {
	case StateRunning:
		// The worker settles the state (and metrics) once the runner
		// observes the canceled context.
		j.cancel()
		writeJSON(w, http.StatusOK, st)
	default:
		writeError(w, http.StatusConflict, "job %s is already %s", st.ID, st.State)
	}
}

// workloadInfo is one GET /v1/workloads entry.
type workloadInfo struct {
	Name       string `json:"name"`
	Group      string `json:"group"`
	WorkingSet uint64 `json:"working_set_bytes"`
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	suite := trace.Suite()
	out := make([]workloadInfo, len(suite))
	for i, p := range suite {
		out[i] = workloadInfo{Name: p.Name, Group: p.Group.String(), WorkingSet: p.WorkingSet}
	}
	writeJSON(w, http.StatusOK, out)
}

// configInfo is one GET /v1/configs entry.
type configInfo struct {
	Name           string  `json:"name"`
	ClockGHz       float64 `json:"clock_ghz"`
	ThreeD         bool    `json:"three_d"`
	ThermalHerding bool    `json:"thermal_herding"`
}

func (s *Server) handleConfigs(w http.ResponseWriter, r *http.Request) {
	regs := config.Registry()
	out := make([]configInfo, len(regs))
	for i, m := range regs {
		out[i] = configInfo{Name: m.Name, ClockGHz: m.ClockGHz, ThreeD: m.ThreeD, ThermalHerding: m.ThermalHerding}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  status,
		"workers": s.cfg.Workers,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}
