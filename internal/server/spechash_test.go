package server

import (
	stdcontext "context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"thermalherd/internal/clock"
)

// TestSpecHashStableAcrossFieldOrder is the regression contract behind
// gateway sharding: the canonical spec hash must not depend on the
// field order of the submitted JSON, or two gateways (or one client
// with a different encoder) would route the same logical spec to
// different backends and break dedup.
func TestSpecHashStableAcrossFieldOrder(t *testing.T) {
	orderings := []string{
		`{"kind":"timing","workload":"mcf","config":"TH","depths":{"fast_forward":100,"warmup":50,"measure":100}}`,
		`{"config":"TH","depths":{"measure":100,"warmup":50,"fast_forward":100},"workload":"mcf","kind":"timing"}`,
		`{"workload":"mcf","kind":"timing","depths":{"warmup":50,"fast_forward":100,"measure":100},"config":"TH"}`,
	}
	var want string
	for i, body := range orderings {
		var spec Spec
		if err := json.Unmarshal([]byte(body), &spec); err != nil {
			t.Fatalf("ordering %d: %v", i, err)
		}
		h, err := spec.CanonicalHash()
		if err != nil {
			t.Fatalf("ordering %d: CanonicalHash: %v", i, err)
		}
		if i == 0 {
			want = h
			continue
		}
		if h != want {
			t.Fatalf("ordering %d hashed %s, ordering 0 hashed %s; field order leaked into the hash", i, h, want)
		}
	}
}

// TestSpecHashNormalizationInvariance: defaulted fields hash the same
// as their explicit spellings (config defaults to 3D), so clients that
// omit defaults share cache entries with clients that spell them out.
func TestSpecHashNormalizationInvariance(t *testing.T) {
	implicit := Spec{Kind: KindTiming, Workload: "mcf"}
	explicit := Spec{Kind: KindTiming, Workload: "mcf", Config: "3D"}
	h1, err := implicit.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := explicit.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("defaulted config hashed %s, explicit 3D hashed %s", h1, h2)
	}
	if _, err := (Spec{Kind: KindTiming, Workload: "no-such-benchmark"}).CanonicalHash(); err == nil {
		t.Fatal("CanonicalHash of an invalid spec did not error")
	}
}

// TestSubmitExposesSpecHash: both the POST /v1/jobs reply and later
// job-status documents carry the canonical spec hash, and it matches a
// client-side CanonicalHash of the same spec.
func TestSubmitExposesSpecHash(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, CacheSize: 4})
	body := `{"kind":"timing","workload":"mcf","config":"TH","depths":{"fast_forward":100,"warmup":50,"measure":100}}`
	var spec Spec
	if err := json.Unmarshal([]byte(body), &spec); err != nil {
		t.Fatal(err)
	}
	want, err := spec.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}

	resp, st := postJob(t, ts, body)
	resp.Body.Close()
	if st.SpecHash != want {
		t.Fatalf("submit reply spec_hash = %q, want %q", st.SpecHash, want)
	}

	sresp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var polled Status
	if err := json.NewDecoder(sresp.Body).Decode(&polled); err != nil {
		t.Fatal(err)
	}
	if polled.SpecHash != want {
		t.Fatalf("status spec_hash = %q, want %q", polled.SpecHash, want)
	}
}

// readyzProbe fetches /readyz and decodes the document.
func readyzProbe(t *testing.T, ts *httptest.Server) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, doc
}

// TestReadyzSinceStable: the /readyz "since" timestamp comes from the
// clock seam, marks when the current condition began, and does NOT
// advance across repeated probes under the same condition — that
// stability is what lets a gateway distinguish a freshly-draining node
// from a long-dead one.
func TestReadyzSinceStable(t *testing.T) {
	start := time.Date(2026, 8, 8, 10, 0, 0, 0, time.UTC)
	fc := clock.NewFake(start)
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, CacheSize: 4, Clock: fc})

	code, doc := readyzProbe(t, ts)
	if code != http.StatusOK || doc["ready"] != true {
		t.Fatalf("fresh server readyz: HTTP %d %v", code, doc)
	}
	since1, ok := doc["since"].(string)
	if !ok || since1 == "" {
		t.Fatalf("ready document missing machine-readable since: %v", doc)
	}
	got, err := time.Parse(time.RFC3339Nano, since1)
	if err != nil {
		t.Fatalf("since %q is not RFC3339Nano: %v", since1, err)
	}
	if !got.Equal(start) {
		t.Fatalf("ready since = %s, want clock-seam time %s", got, start)
	}

	// Repeated probes later on the fake clock keep the original stamp.
	fc.Advance(17 * time.Second)
	if _, doc2 := readyzProbe(t, ts); doc2["since"] != since1 {
		t.Fatalf("ready since advanced across probes: %v then %v", since1, doc2["since"])
	}

	// A condition change re-stamps: draining begins at the current fake
	// time, and repeated drained probes hold that new stamp.
	fc.Advance(3 * time.Second)
	go func() {
		ctx, cancel := stdcontext.WithCancel(stdcontext.Background())
		cancel() // expired deadline: settle queued work immediately
		s.Drain(ctx)
	}()
	deadline := time.Now().Add(5 * time.Second)
	var drainSince string
	for {
		code, doc := readyzProbe(t, ts)
		if code == http.StatusServiceUnavailable && doc["reason"] == "draining" {
			drainSince, _ = doc["since"].(string)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never reported draining: HTTP %d %v", code, doc)
		}
		time.Sleep(time.Millisecond)
	}
	wantDrain := start.Add(20 * time.Second)
	gotDrain, err := time.Parse(time.RFC3339Nano, drainSince)
	if err != nil || !gotDrain.Equal(wantDrain) {
		t.Fatalf("draining since = %q, want %s (err %v)", drainSince, wantDrain, err)
	}
	fc.Advance(42 * time.Second)
	if _, doc := readyzProbe(t, ts); doc["since"] != drainSince {
		t.Fatalf("draining since advanced across probes: %v then %v", drainSince, doc["since"])
	}
}
