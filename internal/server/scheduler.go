package server

import (
	"fmt"
	"math/bits"
	"sync"
	"time"

	"thermalherd/internal/clock"
	"thermalherd/internal/qos"
)

// Scheduling policies accepted by Config.SchedPolicy.
const (
	// SchedFIFO is the classic bounded first-in-first-out queue.
	SchedFIFO = "fifo"
	// SchedQoS enables the cost-predicted multi-tenant scheduler: a
	// reserved short-job fast pool, weighted-fair dequeue across
	// tenants, and mid-flight demotion of overrunning shorts.
	SchedQoS = "qos"
)

// Scheduler is the pluggable queue discipline feeding the worker pool.
// The server refactored its bounded FIFO behind this seam so queue
// policy (plain FIFO, QoS fast pool, future priority schemes) can vary
// without touching the worker, admission, or recovery paths.
//
// Contract:
//   - push admits one live job, failing with ErrQueueFull/ErrQueueClosed.
//   - requeue re-admits recovered work past the capacity bound.
//   - pop blocks for the next runnable job; ok=false means closed and
//     drained, retiring the calling worker.
//   - finished releases whatever slot accounting pop charged for j and
//     trains the cost predictor; it must be idempotent (both the normal
//     runJob path and the watchdog reaper call it).
//   - oldestWait is the head-of-line wait driving brownout admission.
type Scheduler interface {
	push(j *job) error
	requeue(j *job) error
	pop() (*job, bool)
	finished(j *job)
	len() int
	cap() int
	oldestWait() time.Duration
	close()
	drainPending() []*job
}

// The FIFO queue is the default Scheduler; its pop charges nothing, so
// finished has nothing to release.
func (q *queue) finished(j *job) {}

// predictorKey buckets a spec for the job-cost predictor — the
// service-level analogue of the PC index into the paper's width
// predictor tables. It is deliberately coarser than the cache key:
// (kind, workload, config, depth-class) for simulations, (kind,
// section, depth-class) for experiments, where depth-class is the
// preset name or, when the measure depth is overridden, its log2
// bucket. Specs in one bucket have runtimes of the same order, so one
// 2-bit counter per bucket converges fast.
func predictorKey(spec Spec) string {
	depth := spec.Depths.Preset
	if spec.Depths.Measure > 0 {
		depth = fmt.Sprintf("m%d", bits.Len64(spec.Depths.Measure))
	}
	if spec.Depths.Grid > 0 {
		depth += fmt.Sprintf("/g%d", spec.Depths.Grid)
	}
	if spec.Kind == KindExperiment {
		return string(spec.Kind) + "/" + spec.Section + "/" + depth
	}
	return string(spec.Kind) + "/" + spec.Workload + "/" + spec.Config + "/" + depth
}

// slotInfo is one running job's charge against the qos scheduler's
// per-class occupancy accounting.
type slotInfo struct {
	j *job
	// predicted is the class charged at pop time (what admission
	// predicted); class is the current charge, which demotion can flip
	// to long mid-flight.
	predicted qos.Class
	class     qos.Class
}

// qosSched is the QoS Scheduler: queued jobs sit in per-tenant,
// per-class weighted-fair lanes, and dequeue enforces a reserved
// short-job fast pool by capping long-class concurrency at longCap
// (Workers - ShortReserve) — workers stay homogeneous; what is
// reserved is occupancy, not goroutines. Shorts are always eligible
// and always preferred, so a flood of heavyweight sweeps can occupy at
// most longCap slots while at least ShortReserve slots keep draining
// interactive work.
//
// A running predicted-short job that overruns the short budget is
// demoted by the sweep (demoteOverruns): its charge flips to long —
// possibly pushing long occupancy past longCap, which blocks further
// long dequeues until it finishes, the service-level analogue of the
// paper's unsafe-mispredict stall — and its predictor counter is
// retrained so the next submission of its bucket is classed long at
// admission.
type qosSched struct {
	mu       sync.Mutex
	nonEmpty *sync.Cond
	clk      clock.Clock
	pred     *qos.Predictor
	fq       *qos.FairQueue[*job]
	max      int
	longCap  int
	budget   time.Duration

	closed  bool
	running map[string]*slotInfo
	nShort  int
	nLong   int
}

func newQoSSched(maxQueued, workers, shortReserve int, budget time.Duration,
	weights map[string]int, pred *qos.Predictor, clk clock.Clock) *qosSched {
	if maxQueued <= 0 {
		maxQueued = 1
	}
	if workers < 1 {
		workers = 1
	}
	if shortReserve <= 0 {
		shortReserve = workers / 4
		if shortReserve < 1 {
			shortReserve = 1
		}
	}
	if shortReserve >= workers {
		// At least one slot must remain for long work or a trained-long
		// bucket could never run at all.
		shortReserve = workers - 1
		if shortReserve < 1 {
			shortReserve = 1
		}
	}
	longCap := workers - shortReserve
	if longCap < 1 {
		longCap = 1
	}
	if clk == nil {
		clk = clock.Real()
	}
	q := &qosSched{
		clk:     clk,
		pred:    pred,
		fq:      qos.NewFairQueue[*job](weights),
		max:     maxQueued,
		longCap: longCap,
		budget:  budget,
		running: make(map[string]*slotInfo),
	}
	q.nonEmpty = sync.NewCond(&q.mu)
	return q
}

func (q *qosSched) push(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	if q.fq.Len() >= q.max {
		return ErrQueueFull
	}
	q.fq.Push(j.tenant, j.qclass(), j)
	q.nonEmpty.Signal()
	return nil
}

// requeue admits recovered work past the capacity bound, mirroring the
// FIFO queue's recovery contract.
func (q *qosSched) requeue(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	q.fq.Push(j.tenant, j.qclass(), j)
	q.nonEmpty.Signal()
	return nil
}

// pop blocks for the next runnable job: queued shorts first (weighted
// fair across tenants), then longs while long occupancy is under the
// cap. A closed scheduler keeps delivering until both the queue is
// empty and nothing capacity-blocked remains (finished wakes waiters
// as slots free up).
func (q *qosSched) pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if j, ok := q.fq.Pop(qos.ClassShort); ok {
			q.charge(j, qos.ClassShort)
			return j, true
		}
		if q.nLong < q.longCap {
			if j, ok := q.fq.Pop(qos.ClassLong); ok {
				q.charge(j, qos.ClassLong)
				return j, true
			}
		}
		if q.closed && q.fq.Len() == 0 {
			return nil, false
		}
		q.nonEmpty.Wait()
	}
}

// charge records j as occupying one slot of class. Caller holds q.mu.
func (q *qosSched) charge(j *job, class qos.Class) {
	q.running[j.id] = &slotInfo{j: j, predicted: class, class: class}
	if class == qos.ClassShort {
		q.nShort++
	} else {
		q.nLong++
	}
}

// finished releases j's slot charge and trains the predictor on its
// observed runtime. Idempotent: the second caller (runJob's deferred
// release after the watchdog already reaped, or vice versa) finds no
// charge and does nothing.
func (q *qosSched) finished(j *job) {
	q.mu.Lock()
	info, ok := q.running[j.id]
	if !ok {
		q.mu.Unlock()
		return
	}
	delete(q.running, j.id)
	if info.class == qos.ClassShort {
		q.nShort--
	} else {
		q.nLong--
	}
	predicted := info.predicted
	started := j.startedAt()
	overran := !started.IsZero() && q.clk.Since(started) > q.budget
	q.nonEmpty.Signal()
	q.mu.Unlock()
	// Train outside the lock; jobs that never started (canceled while
	// queued) carry no runtime signal.
	if !started.IsZero() {
		q.pred.Observe(j.pkey, predicted, overran)
	}
}

// demoteOverruns flips every running predicted-short job that has
// exceeded the short budget to a long-class charge and retrains its
// predictor bucket — the mid-flight demotion sweep. The flipped charge
// can exceed longCap; that deliberately stalls further long dequeues
// until the overrunner finishes. Returns how many jobs were demoted.
func (q *qosSched) demoteOverruns() int {
	q.mu.Lock()
	var demoted []*job
	for _, info := range q.running {
		if info.class != qos.ClassShort {
			continue
		}
		started := info.j.startedAt()
		if started.IsZero() || q.clk.Since(started) <= q.budget {
			continue
		}
		info.class = qos.ClassLong
		q.nShort--
		q.nLong++
		demoted = append(demoted, info.j)
	}
	q.mu.Unlock()
	for _, j := range demoted {
		j.markDemoted()
		q.pred.Demote(j.pkey)
	}
	return len(demoted)
}

func (q *qosSched) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.fq.Len()
}

func (q *qosSched) cap() int { return q.max }

// oldestWait reports the age of the oldest head-of-lane job: with
// multiple lanes the brownout signal is the worst head-of-line wait any
// tenant is experiencing.
func (q *qosSched) oldestWait() time.Duration {
	q.mu.Lock()
	defer q.mu.Unlock()
	var oldest time.Time
	q.fq.Heads(func(j *job) {
		if oldest.IsZero() || j.submitted.Before(oldest) {
			oldest = j.submitted
		}
	})
	if oldest.IsZero() {
		return 0
	}
	return q.clk.Since(oldest)
}

func (q *qosSched) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.nonEmpty.Broadcast()
}

func (q *qosSched) drainPending() []*job {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.fq.Drain()
}

// counts snapshots the scheduler's occupancy gauges: queued and running
// jobs per class.
func (q *qosSched) counts() (queuedShort, queuedLong, runningShort, runningLong int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.fq.LenClass(qos.ClassShort), q.fq.LenClass(qos.ClassLong), q.nShort, q.nLong
}
