package server

import (
	"sort"
	"strconv"
	"strings"
	"time"

	"thermalherd/internal/journal"
	"thermalherd/internal/replication"
)

// This file is the server side of crash recovery: applyReplay folds
// what journal.Open recovered into a live job table, and the small
// helpers around it (logEvent, snapshotJobs, compactMaybe,
// closeJournal) keep the journal in step with the table afterwards.

// logEvent journals one lifecycle transition, stamping the timestamp,
// then replicates it to the ring successor per the configured policy.
// It is a no-op with neither a journal nor a streamer. Admission treats
// a failure as a rejection (the durability promise is the ack) — under
// the sync policy that includes the successor's append, which is
// exactly the zero-acked-loss guarantee; later transitions call it
// best-effort — a lost terminal event only means the job re-runs after
// a crash, which content-addressed execution makes safe.
func (s *Server) logEvent(ev journal.Event) error {
	if s.journal == nil && s.cfg.Repl.Policy() == replication.PolicyNone {
		return nil
	}
	ev.At = s.cfg.Clock.Now().Format(time.RFC3339Nano)
	if s.journal != nil {
		if err := s.journal.Append(ev); err != nil {
			return err
		}
	}
	return s.cfg.Repl.Replicate(ev)
}

// applyReplay rebuilds the job table from the journal's snapshot plus
// the WAL events behind it. Event application is idempotent — an
// accepted event for a known id, or a terminal event on an already
// terminal record, is skipped — so replaying events the snapshot
// already covers (the crash-between-snapshot-and-truncate window)
// changes nothing, and a completed job can never be resurrected or
// double-counted. Jobs that were accepted or started but not finished
// come back as queued and are re-enqueued in their original order.
func (s *Server) applyReplay() {
	rep := s.replay
	if s.journal == nil || rep == nil {
		return
	}
	s.replay = nil // one-shot; free the buffered events

	var requeued uint64
	for _, rec := range foldEvents(rep.Snapshot, rep.Events) {
		j, err := newJobFromRecord(*rec, s.cfg.Clock)
		if err != nil {
			continue // undecodable record; drop rather than refuse to boot
		}
		s.register(j, rec.IdemKey)
		// Rebuild the counters the recovered jobs would have produced
		// live — global and per-tenant — preserving submitted == hits +
		// terminal + rejected on both axes.
		s.metrics.inc(&s.metrics.submitted)
		s.metrics.tinc(j.tenant, tcSubmitted)
		//thermlint:handoff -- the unfinished (default) arm re-enqueues: the requeued job settles when it runs
		switch State(rec.State) {
		case StateDone:
			if rec.FromCache {
				s.metrics.inc(&s.metrics.cacheHits)
				s.metrics.tinc(j.tenant, tcHits)
			} else {
				s.metrics.inc(&s.metrics.cacheMisses)
				s.metrics.inc(&s.metrics.completed)
				s.metrics.tinc(j.tenant, tcCompleted)
			}
			if len(rec.Result) > 0 && rec.Key != "" {
				// Warm the result cache so resubmissions of recovered
				// work stay hits across the restart.
				s.cache.put(rec.Key, rec.Result)
			}
		case StateFailed:
			s.metrics.inc(&s.metrics.cacheMisses)
			s.metrics.inc(&s.metrics.failed)
			s.metrics.tinc(j.tenant, tcFailed)
		case StateCanceled:
			s.metrics.inc(&s.metrics.cacheMisses)
			s.metrics.inc(&s.metrics.canceled)
			s.metrics.tinc(j.tenant, tcCanceled)
		case StateMigrated:
			s.metrics.inc(&s.metrics.cacheMisses)
			s.metrics.inc(&s.metrics.migrated)
			s.metrics.tinc(j.tenant, tcMigrated)
		default:
			s.metrics.inc(&s.metrics.cacheMisses)
			// Re-classify at requeue time: the predictor may have trained
			// since this job was first admitted (or be empty after a cold
			// restart, defaulting the class to short).
			j.setClass(s.predictor.Predict(j.pkey))
			if err := s.sched.requeue(j); err != nil {
				if j.cancelQueued("recovery requeue failed: " + err.Error()) {
					s.metrics.inc(&s.metrics.canceled)
					s.metrics.tinc(j.tenant, tcCanceled)
				}
				//thermlint:handoff -- settled just above under the cancelQueued settle-once guard
				continue
			}
			requeued++
		}
	}

	// Resume id minting past every recovered id so new jobs never
	// collide with journaled ones.
	s.mu.Lock()
	for id := range s.jobs {
		if n, ok := parseJobID(id); ok && n > s.nextID {
			s.nextID = n
		}
	}
	s.mu.Unlock()

	s.replayStats.replayed = uint64(len(rep.Events))
	s.replayStats.truncated = uint64(rep.TruncatedRecords)
	s.replayStats.recovered = requeued
}

// foldEvents rebuilds job records from a snapshot plus WAL events, in
// first-seen order. Application is idempotent: an accepted event for a
// known id, or any event on an already-terminal record, is skipped —
// so a record set folded from overlapping sources (a snapshot and the
// WAL behind it, or a retried replica stream) converges on the same
// state. Shared by the node's own crash recovery (applyReplay) and by
// replica adoption (adoptOrigin), which is what makes a successor's
// view of a dead peer's jobs agree with what the peer itself would
// have recovered.
func foldEvents(snap *journal.Snapshot, events []journal.Event) []*journal.JobRecord {
	recs := make(map[string]*journal.JobRecord)
	var order []string
	if snap != nil {
		for i := range snap.Jobs {
			rec := snap.Jobs[i]
			if _, ok := recs[rec.ID]; !ok {
				order = append(order, rec.ID)
			}
			recs[rec.ID] = &rec
		}
	}
	terminal := func(state string) bool {
		switch State(state) {
		case StateDone, StateFailed, StateCanceled, StateMigrated:
			return true
		}
		return false
	}
	for _, ev := range events {
		switch ev.Type {
		case journal.EventAccepted:
			if _, ok := recs[ev.ID]; ok {
				continue
			}
			recs[ev.ID] = &journal.JobRecord{
				ID: ev.ID, Spec: ev.Spec, Key: ev.Key, IdemKey: ev.IdemKey,
				Tenant: ev.Tenant,
				State:  string(StateQueued), Submitted: ev.At,
			}
			order = append(order, ev.ID)
		case journal.EventStarted:
			if rec, ok := recs[ev.ID]; ok && !terminal(rec.State) {
				rec.State = string(StateRunning)
				rec.Started = ev.At
			}
		case journal.EventCompleted:
			if rec, ok := recs[ev.ID]; ok && !terminal(rec.State) {
				rec.State = string(StateDone)
				rec.Result = ev.Result
				rec.FromCache = ev.FromCache
				rec.Finished = ev.At
			}
		case journal.EventFailed:
			if rec, ok := recs[ev.ID]; ok && !terminal(rec.State) {
				rec.State = string(StateFailed)
				rec.Error = ev.Error
				rec.Finished = ev.At
			}
		case journal.EventCanceled:
			if rec, ok := recs[ev.ID]; ok && !terminal(rec.State) {
				rec.State = string(StateCanceled)
				rec.Error = ev.Error
				rec.Finished = ev.At
			}
		case journal.EventMigrated:
			if rec, ok := recs[ev.ID]; ok && !terminal(rec.State) {
				rec.State = string(StateMigrated)
				rec.MigratedTo = ev.MigratedTo
				rec.Finished = ev.At
			}
		}
	}
	out := make([]*journal.JobRecord, 0, len(order))
	for _, id := range order {
		out = append(out, recs[id])
	}
	return out
}

// parseJobID extracts the numeric suffix of a "job-%06d" id.
func parseJobID(id string) (uint64, bool) {
	rest, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseUint(rest, 10, 64)
	return n, err == nil
}

// snapshotJobs folds the current job table into journal records,
// sorted by id for deterministic snapshots.
func (s *Server) snapshotJobs() []journal.JobRecord {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	idemByID := make(map[string]string, len(s.idem))
	for key, id := range s.idem {
		idemByID[id] = key
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].id < jobs[k].id })
	recs := make([]journal.JobRecord, len(jobs))
	for i, j := range jobs {
		recs[i] = j.record(idemByID[j.id])
	}
	return recs
}

// compactMaybe snapshots the job table when the WAL has outgrown its
// threshold. The table copy and the WAL truncation are atomic with
// respect to appends (Compact holds the journal lock across both), and
// every lifecycle path mutates the job table before journaling its
// event (admission registers before appending; workers settle the job
// before appending), so any event the truncation drops is already
// covered by the snapshot and any event not yet covered lands in the
// fresh WAL — an acked job is never lost to the compaction window.
func (s *Server) compactMaybe() {
	if s.journal == nil || !s.journal.ShouldCompact() {
		return
	}
	s.journal.Compact(func() journal.Snapshot {
		return journal.Snapshot{Jobs: s.snapshotJobs()}
	})
}

// closeJournal finishes a drain: the whole (now terminal) job table is
// written as a clean snapshot so the next boot replays zero records,
// then the WAL is closed.
func (s *Server) closeJournal() {
	if s.journal == nil {
		return
	}
	s.journal.Compact(func() journal.Snapshot {
		return journal.Snapshot{Clean: true, Jobs: s.snapshotJobs()}
	})
	s.journal.Close()
}
