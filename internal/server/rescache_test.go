package server

import (
	"encoding/json"
	"testing"
)

func TestResultCacheHitAndMiss(t *testing.T) {
	c := newResultCache(4, nil)
	if _, ok := c.get("k"); ok {
		t.Fatal("hit on empty cache")
	}
	c.put("k", json.RawMessage(`{"v":1}`))
	res, ok := c.get("k")
	if !ok || string(res) != `{"v":1}` {
		t.Fatalf("get = %s,%v", res, ok)
	}
}

func TestResultCacheLRUEviction(t *testing.T) {
	c := newResultCache(2, nil)
	c.put("a", json.RawMessage(`1`))
	c.put("b", json.RawMessage(`2`))
	// Touch a so b becomes least recently used.
	c.get("a")
	c.put("c", json.RawMessage(`3`))
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction; want LRU victim")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%s was evicted; want resident", k)
		}
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestResultCacheOverwriteDoesNotEvict(t *testing.T) {
	c := newResultCache(2, nil)
	c.put("a", json.RawMessage(`1`))
	c.put("b", json.RawMessage(`2`))
	c.put("a", json.RawMessage(`10`))
	res, ok := c.get("a")
	if !ok || string(res) != `10` {
		t.Fatalf("get a = %s,%v, want 10,true", res, ok)
	}
	if _, ok := c.get("b"); !ok {
		t.Fatal("overwrite evicted b")
	}
}

func TestSpecCacheKeyCanonical(t *testing.T) {
	key := func(s Spec) string {
		t.Helper()
		if err := s.normalize(); err != nil {
			t.Fatal(err)
		}
		k, err := s.cacheKey()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	a := key(Spec{Kind: KindTiming, Workload: "patricia"})
	b := key(Spec{Kind: KindTiming, Workload: "patricia", Config: "3D", Depths: Depths{Preset: "quick"}})
	if a != b {
		t.Fatal("defaulted and explicit specs hash differently")
	}
	c := key(Spec{Kind: KindTiming, Workload: "mcf", Config: "3D"})
	if a == c {
		t.Fatal("different workloads share a cache key")
	}
}
