package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"thermalherd/internal/journal"
	"thermalherd/internal/replication"
)

// replTestPair builds two servers: origin "a" streaming its journal
// records synchronously to successor "b".
func replTestPair(t *testing.T, cfgA, cfgB Config) (sa *Server, tsa *httptest.Server, sb *Server, tsb *httptest.Server) {
	t.Helper()
	cfgB.NodeName = "b"
	sb, tsb = newTestServer(t, cfgB)
	stubExec(sb, fastExec)
	stream, err := replication.New(replication.Options{
		Policy: replication.PolicySync,
		Origin: "a",
		Target: func() (string, string) { return "b", tsb.URL },
	})
	if err != nil {
		t.Fatalf("replication.New: %v", err)
	}
	cfgA.NodeName = "a"
	cfgA.Repl = stream
	sa, tsa = newTestServer(t, cfgA)
	stubExec(sa, fastExec)
	return sa, tsa, sb, tsb
}

func readyzDoc(t *testing.T, ts *httptest.Server) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	json.NewDecoder(resp.Body).Decode(&doc)
	return resp.StatusCode, doc
}

// TestReplicaAdoptEndToEnd: records stream to the successor as jobs
// are acked, and adoption replays them — finished jobs resolve with
// their results, unfinished ones re-run, and /readyz reports
// "recovering" until the adopted frontier settles.
func TestReplicaAdoptEndToEnd(t *testing.T) {
	sa, tsa, sb, tsb := replTestPair(t,
		Config{Workers: 1, QueueDepth: 16, CacheSize: 16},
		Config{Workers: 1, QueueDepth: 16, CacheSize: 16})

	// Job 1 runs to done on a; job 2 stays queued behind a parked job 1
	// is too racy with one worker, so park the worker first.
	release := make(chan struct{})
	stubExec(sa, blockingExec(release))
	resp1, st1 := postJob(t, tsa, specBody(1))
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 1 = %s", resp1.Status)
	}
	resp2, st2 := postJob(t, tsa, specBody(2))
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 2 = %s", resp2.Status)
	}
	release <- struct{}{} // job 1 finishes
	waitState(t, tsa, st1.ID, StateDone)

	// The sync policy means both acks already imply replica appends;
	// the completed event for job 1 is there too.
	if got := sb.replica.receivedEvents(); got < 3 {
		t.Fatalf("successor received %d replica events, want >= 3", got)
	}

	// "a" dies (we simply stop routing to it). Park b's worker so the
	// recovering window is observable, then adopt.
	released := make(chan struct{})
	stubExec(sb, blockingExec(released))
	aresp, err := http.Post(tsb.URL+"/v1/replica/a/adopt", "application/json", nil)
	if err != nil {
		t.Fatalf("adopt: %v", err)
	}
	var adoc map[string]any
	json.NewDecoder(aresp.Body).Decode(&adoc)
	aresp.Body.Close()
	if aresp.StatusCode != http.StatusOK {
		t.Fatalf("adopt = %d: %v", aresp.StatusCode, adoc)
	}
	if adoc["adopted"].(float64) != 2 || adoc["requeued"].(float64) != 1 {
		t.Fatalf("adopt doc = %v, want 2 adopted / 1 requeued", adoc)
	}

	// The finished job's old id resolves on the successor, done, with
	// its result served.
	stDone := getStatus(t, tsb, st1.ID+"@a")
	if stDone.State != StateDone {
		t.Fatalf("adopted finished job state = %s, want done", stDone.State)
	}
	rresp, err := http.Get(tsb.URL + "/v1/jobs/" + st1.ID + "@a/result")
	if err != nil {
		t.Fatalf("GET adopted result: %v", err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("adopted result = %s, want 200", rresp.Status)
	}

	// While the requeued adoptee is pending, the successor reports
	// recovering.
	code, doc := readyzDoc(t, tsb)
	if code != http.StatusServiceUnavailable || doc["reason"] != "recovering" {
		t.Fatalf("readyz during adoption = %d %v, want 503 recovering", code, doc)
	}
	close(released)
	waitState(t, tsb, st2.ID+"@a", StateDone)
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _ = readyzDoc(t, tsb)
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never returned to ready after the adopted frontier settled")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Re-adoption is a no-op.
	aresp, _ = http.Post(tsb.URL+"/v1/replica/a/adopt", "application/json", nil)
	adoc = map[string]any{}
	json.NewDecoder(aresp.Body).Decode(&adoc)
	aresp.Body.Close()
	if adoc["adopted"].(float64) != 0 {
		t.Fatalf("re-adoption adopted %v jobs, want 0", adoc["adopted"])
	}

	// The successor's accounting identity holds over the adopted jobs.
	mdoc := metricsDoc(t, tsb)
	sub := counter(t, mdoc, "jobs", "submitted")
	settled := counter(t, mdoc, "cache", "hits") + counter(t, mdoc, "jobs", "completed") +
		counter(t, mdoc, "jobs", "failed") + counter(t, mdoc, "jobs", "canceled") +
		counter(t, mdoc, "jobs", "rejected") + counter(t, mdoc, "jobs", "migrated")
	if sub != settled {
		t.Fatalf("successor identity: submitted %v != settled %v (%v)", sub, settled, mdoc)
	}
	if got := counter(t, mdoc, "repl", "adopted"); got != 2 {
		t.Fatalf("repl.adopted = %v, want 2", got)
	}
	// Unpark a's copy of job 2 so the cleanup drain is immediate.
	close(release)
	_ = sa
}

// TestAdoptIdempotencyAlias: a replica record whose Idempotency-Key
// the successor has already seen gains an alias instead of a second
// registration — the dedup that keeps adopted work from
// double-executing — and the dead node's id still resolves.
func TestAdoptIdempotencyAlias(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8, CacheSize: 8, NodeName: "b"})
	stubExec(s, fastExec)

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(specBody(7)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", "key-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var st Status
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	waitState(t, ts, st.ID, StateDone)

	// The dead peer "a" acked the same logical submission under its own
	// id before dying.
	var spec Spec
	json.Unmarshal([]byte(specBody(7)), &spec)
	spec.normalize()
	rawSpec, _ := json.Marshal(spec)
	frames, err := journal.EncodeFrames([]journal.Event{{
		Type: journal.EventAccepted, ID: "job-000042", Spec: rawSpec, IdemKey: "key-7",
	}})
	if err != nil {
		t.Fatal(err)
	}
	presp, err := http.Post(ts.URL+"/v1/replica/a", "application/octet-stream", strings.NewReader(string(frames)))
	if err != nil {
		t.Fatalf("replica append: %v", err)
	}
	presp.Body.Close()
	aresp, _ := http.Post(ts.URL+"/v1/replica/a/adopt", "application/json", nil)
	var adoc map[string]any
	json.NewDecoder(aresp.Body).Decode(&adoc)
	aresp.Body.Close()
	if adoc["aliased"].(float64) != 1 || adoc["adopted"].(float64) != 0 {
		t.Fatalf("adopt doc = %v, want 1 aliased / 0 adopted", adoc)
	}

	got := getStatus(t, ts, "job-000042@a")
	if got.ID != st.ID || got.State != StateDone {
		t.Fatalf("aliased lookup = %+v, want the original done job %s", got, st.ID)
	}
}

// TestMigrateHerdsQueuedJobs: /v1/migrate freezes queued jobs, ships
// them to the target, and settles them as migrated locally; the target
// runs them under the alias namespace.
func TestMigrateHerdsQueuedJobs(t *testing.T) {
	cfgB := Config{Workers: 2, QueueDepth: 16, CacheSize: 16, NodeName: "b"}
	sb, tsb := newTestServer(t, cfgB)
	stubExec(sb, fastExec)

	sa, tsa := newTestServer(t, Config{Workers: 1, QueueDepth: 16, CacheSize: 16, NodeName: "a"})
	release := make(chan struct{})
	stubExec(sa, blockingExec(release))

	_, stRunning := postJob(t, tsa, specBody(11))
	var queued []Status
	for i := 12; i < 15; i++ {
		resp, st := postJob(t, tsa, specBody(i))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d = %s", i, resp.Status)
		}
		queued = append(queued, st)
	}
	waitState(t, tsa, stRunning.ID, StateRunning)

	body := `{"target_name":"b","target_url":"` + tsb.URL + `"}`
	mresp, err := http.Post(tsa.URL+"/v1/migrate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("migrate: %v", err)
	}
	var mdoc map[string]any
	json.NewDecoder(mresp.Body).Decode(&mdoc)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK || mdoc["migrated"].(float64) != 3 {
		t.Fatalf("migrate = %d %v, want 200 with 3 migrated", mresp.StatusCode, mdoc)
	}

	for _, st := range queued {
		local := getStatus(t, tsa, st.ID)
		if local.State != StateMigrated || local.MigratedTo != "b" {
			t.Fatalf("source job %s = %+v, want migrated → b", st.ID, local)
		}
		adopted := waitState(t, tsb, st.ID+"@a", StateDone)
		if adopted.State != StateDone {
			t.Fatalf("adopted job %s = %s", st.ID, adopted.State)
		}
	}
	// The running job stayed home.
	close(release)
	waitState(t, tsa, stRunning.ID, StateDone)

	mdocA := metricsDoc(t, tsa)
	if got := counter(t, mdocA, "jobs", "migrated"); got != 3 {
		t.Fatalf("source jobs.migrated = %v, want 3", got)
	}
	sub := counter(t, mdocA, "jobs", "submitted")
	settled := counter(t, mdocA, "cache", "hits") + counter(t, mdocA, "jobs", "completed") +
		counter(t, mdocA, "jobs", "failed") + counter(t, mdocA, "jobs", "canceled") +
		counter(t, mdocA, "jobs", "rejected") + counter(t, mdocA, "jobs", "migrated")
	if sub != settled {
		t.Fatalf("source identity: submitted %v != settled %v", sub, settled)
	}
}

// TestMigrateRevertOnFailure: an unreachable target reverts every
// frozen job to queued — a failed migration degrades to running the
// work locally, never to losing it.
func TestMigrateRevertOnFailure(t *testing.T) {
	sa, tsa := newTestServer(t, Config{Workers: 1, QueueDepth: 16, CacheSize: 16, NodeName: "a"})
	release := make(chan struct{})
	stubExec(sa, blockingExec(release))

	_, stRunning := postJob(t, tsa, specBody(21))
	_, stQueued := postJob(t, tsa, specBody(22))
	waitState(t, tsa, stRunning.ID, StateRunning)

	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	body := `{"target_name":"x","target_url":"` + dead.URL + `"}`
	mresp, err := http.Post(tsa.URL+"/v1/migrate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("migrate: %v", err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusBadGateway {
		t.Fatalf("migrate to dead target = %s, want 502", mresp.Status)
	}
	if st := getStatus(t, tsa, stQueued.ID); st.State != StateQueued {
		t.Fatalf("job after failed migration = %s, want queued", st.State)
	}
	close(release)
	waitState(t, tsa, stQueued.ID, StateDone)
}

// TestSyncAckGate: with an unreachable successor under the sync
// policy, a queue-bound submission is rejected un-acked — the 202 is a
// fleet-durability promise, not just a local one.
func TestSyncAckGate(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	stream, err := replication.New(replication.Options{
		Policy: replication.PolicySync,
		Origin: "a",
		Target: func() (string, string) { return "ghost", dead.URL },
	})
	if err != nil {
		t.Fatal(err)
	}
	sa, tsa := newTestServer(t, Config{Workers: 1, QueueDepth: 8, CacheSize: 8, NodeName: "a", Repl: stream})
	stubExec(sa, fastExec)
	resp, _ := postJob(t, tsa, specBody(31))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit with dead successor = %s, want 503", resp.Status)
	}
	mdoc := metricsDoc(t, tsa)
	if got := counter(t, mdoc, "repl", "stream_errors"); got < 1 {
		t.Fatalf("repl.stream_errors = %v, want >= 1", got)
	}
	sub := counter(t, mdoc, "jobs", "submitted")
	rej := counter(t, mdoc, "jobs", "rejected")
	if sub != 1 || rej != 1 {
		t.Fatalf("submitted/rejected = %v/%v, want 1/1", sub, rej)
	}
}

// TestReplicaStoreSurvivesRestart: a file-backed replica store reloads
// peers' buffered records after the successor's own restart, so a
// chain where both links bounce still adopts.
func TestReplicaStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	var spec Spec
	json.Unmarshal([]byte(specBody(41)), &spec)
	spec.normalize()
	rawSpec, _ := json.Marshal(spec)
	frames, err := journal.EncodeFrames([]journal.Event{{
		Type: journal.EventAccepted, ID: "job-000007", Spec: rawSpec,
	}})
	if err != nil {
		t.Fatal(err)
	}

	s1, ts1 := func() (*Server, *httptest.Server) {
		s, err := New(Config{Workers: 1, QueueDepth: 8, CacheSize: 8, NodeName: "b", JournalDir: dir, FsyncPolicy: "off"})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		stubExec(s, fastExec)
		s.Start()
		return s, httptest.NewServer(s)
	}()
	presp, err := http.Post(ts1.URL+"/v1/replica/a", "application/octet-stream", strings.NewReader(string(frames)))
	if err != nil {
		t.Fatalf("replica append: %v", err)
	}
	presp.Body.Close()
	if got := s1.replica.receivedEvents(); got != 1 {
		t.Fatalf("received = %d, want 1", got)
	}
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	s1.Drain(ctx)
	cancel()

	s2, err := New(Config{Workers: 1, QueueDepth: 8, CacheSize: 8, NodeName: "b", JournalDir: dir, FsyncPolicy: "off"})
	if err != nil {
		t.Fatalf("restart New: %v", err)
	}
	stubExec(s2, fastExec)
	s2.Start()
	ts2 := httptest.NewServer(s2)
	t.Cleanup(func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s2.Drain(ctx)
	})
	aresp, _ := http.Post(ts2.URL+"/v1/replica/a/adopt", "application/json", nil)
	var adoc map[string]any
	json.NewDecoder(aresp.Body).Decode(&adoc)
	aresp.Body.Close()
	if adoc["adopted"].(float64) != 1 {
		t.Fatalf("adopt after restart = %v, want 1 adopted", adoc)
	}
	waitState(t, ts2, "job-000007@a", StateDone)
}
