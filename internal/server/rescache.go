package server

import (
	"encoding/json"
	"sync"

	"thermalherd/internal/faultinject"
)

// resultCache is a content-addressed in-memory result store, keyed by
// Spec.cacheKey and bounded by LRU eviction (the same
// oldest-timestamp victim scan internal/cache uses for its lines; the
// entry count here is small enough that a linear scan beats
// maintaining a list).
//
// Both lookups and stores pass through fault points (FaultCacheGet,
// FaultCachePut): an injected get fault degrades to a miss and an
// injected put fault drops the store, so chaos runs can prove the
// service stays correct — merely slower — with the cache misbehaving.
type resultCache struct {
	mu      sync.Mutex
	max     int
	clock   uint64
	entries map[string]*cacheEntry
	faults  *faultinject.Registry
}

type cacheEntry struct {
	result json.RawMessage
	lru    uint64
}

func newResultCache(max int, faults *faultinject.Registry) *resultCache {
	if max <= 0 {
		max = 1
	}
	return &resultCache{max: max, entries: make(map[string]*cacheEntry), faults: faults}
}

// get returns the cached result for key, refreshing its recency. An
// injected FaultCacheGet fault forces a miss.
func (c *resultCache) get(key string) (json.RawMessage, bool) {
	if err := c.faults.Fire(FaultCacheGet); err != nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.clock++
	e.lru = c.clock
	return e.result, true
}

// put stores a result under key, evicting the least-recently-used
// entry when the cache is at capacity. An injected FaultCachePut
// fault drops the store.
func (c *resultCache) put(key string, result json.RawMessage) {
	if err := c.faults.Fire(FaultCachePut); err != nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock++
	if e, ok := c.entries[key]; ok {
		e.result = result
		e.lru = c.clock
		return
	}
	if len(c.entries) >= c.max {
		victim := ""
		var oldest uint64 = ^uint64(0)
		for k, e := range c.entries {
			if e.lru < oldest {
				victim, oldest = k, e.lru
			}
		}
		delete(c.entries, victim)
	}
	c.entries[key] = &cacheEntry{result: result, lru: c.clock}
}

// len returns the number of cached results.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// capacity returns the cache bound.
func (c *resultCache) capacity() int { return c.max }
