package server

import (
	"errors"
	"sync"
	"time"

	"thermalherd/internal/clock"
)

// Queue admission errors.
var (
	// ErrQueueFull rejects a push when the queue is at capacity; the
	// HTTP layer maps it to 503.
	ErrQueueFull = errors.New("server: job queue full")
	// ErrQueueClosed rejects pushes after shutdown began.
	ErrQueueClosed = errors.New("server: job queue closed")
)

// queue is a bounded FIFO of jobs feeding the worker pool.
type queue struct {
	mu       sync.Mutex
	nonEmpty *sync.Cond
	clk      clock.Clock
	items    []*job
	max      int
	closed   bool
}

func newQueue(max int, clk clock.Clock) *queue {
	if max <= 0 {
		max = 1
	}
	if clk == nil {
		clk = clock.Real()
	}
	q := &queue{max: max, clk: clk}
	q.nonEmpty = sync.NewCond(&q.mu)
	return q
}

// push appends j, failing when the queue is full or closed.
func (q *queue) push(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	if len(q.items) >= q.max {
		return ErrQueueFull
	}
	q.items = append(q.items, j)
	q.nonEmpty.Signal()
	return nil
}

// pop blocks until a job is available, returning ok=false once the
// queue is closed and drained.
func (q *queue) pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.nonEmpty.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	j := q.items[0]
	q.items[0] = nil
	q.items = q.items[1:]
	return j, true
}

// requeue appends j past the capacity bound; startup recovery uses it
// so a replayed backlog larger than QueueDepth is never silently
// dropped (the bound protects live admission, not recovered work).
func (q *queue) requeue(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	q.items = append(q.items, j)
	q.nonEmpty.Signal()
	return nil
}

// len returns the current queue depth.
func (q *queue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// cap returns the queue capacity.
func (q *queue) cap() int { return q.max }

// oldestWait reports how long the head-of-queue job has been waiting
// since submission, or zero for an empty queue. The brownout admission
// controller sheds load on it: head-of-line wait is a direct measure
// of the queue delay a newly admitted job would inherit.
func (q *queue) oldestWait() time.Duration {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return 0
	}
	return q.clk.Since(q.items[0].submitted)
}

// close stops admission and wakes all blocked pops. Remaining items
// are still delivered; pop returns false once they are drained.
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.nonEmpty.Broadcast()
}

// drainPending removes and returns every queued-but-unstarted job;
// used at shutdown to cancel work that never ran.
func (q *queue) drainPending() []*job {
	q.mu.Lock()
	defer q.mu.Unlock()
	items := q.items
	q.items = nil
	return items
}
