package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func submitBatch(t *testing.T, url, body string) (*http.Response, BatchResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs:batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs:batch: %v", err)
	}
	defer resp.Body.Close()
	var br BatchResponse
	json.NewDecoder(resp.Body).Decode(&br) // error docs leave br zero
	return resp, br
}

func TestBatchSubmitMixedOutcomes(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8, CacheSize: 8})
	stubExec(s, func(ctx context.Context, spec Spec, report progressFunc) (json.RawMessage, error) {
		return json.RawMessage(fmt.Sprintf(`{"workload":%q}`, spec.Workload)), nil
	})
	resp, br := submitBatch(t, ts.URL, `{"jobs":[
		{"kind":"timing","workload":"mcf"},
		{"kind":"timing","workload":"doom2016"},
		{"kind":"timing","workload":"crafty"}
	]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch = %s, want 200", resp.Status)
	}
	if len(br.Jobs) != 3 {
		t.Fatalf("batch items = %d, want 3", len(br.Jobs))
	}
	if br.Jobs[0].Status == nil || br.Jobs[0].Status.ID == "" {
		t.Fatalf("item 0 not admitted: %+v", br.Jobs[0])
	}
	if br.Jobs[1].Status != nil || br.Jobs[1].Code != http.StatusBadRequest {
		t.Fatalf("item 1 (unknown workload) = %+v, want 400 error", br.Jobs[1])
	}
	if br.Jobs[2].Status == nil {
		t.Fatalf("item 2 not admitted: %+v", br.Jobs[2])
	}
	waitState(t, ts, br.Jobs[0].Status.ID, StateDone)
	waitState(t, ts, br.Jobs[2].Status.ID, StateDone)

	// An identical batch is answered entirely from the cache with no
	// new simulations; /metrics counts one batch request per call.
	_, br2 := submitBatch(t, ts.URL, `{"jobs":[
		{"kind":"timing","workload":"mcf"},
		{"kind":"timing","workload":"doom2016"},
		{"kind":"timing","workload":"crafty"}
	]}`)
	for _, i := range []int{0, 2} {
		if br2.Jobs[i].Status == nil || !br2.Jobs[i].Status.FromCache {
			t.Fatalf("resubmitted item %d not served from cache: %+v", i, br2.Jobs[i])
		}
	}
	doc := metricsDoc(t, ts)
	if got := counter(t, doc, "http", "batch_requests"); got != 2 {
		t.Fatalf("batch_requests = %v, want 2", got)
	}
	if hits := counter(t, doc, "cache", "hits"); hits != 2 {
		t.Fatalf("cache hits = %v, want 2", hits)
	}
	if completed := counter(t, doc, "jobs", "completed"); completed != 2 {
		t.Fatalf("completed = %v, want 2", completed)
	}
}

func TestBatchSubmitQueueOverflowPerItem(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, CacheSize: 2})
	release := make(chan struct{})
	stubExec(s, func(ctx context.Context, spec Spec, report progressFunc) (json.RawMessage, error) {
		<-release
		return json.RawMessage(`{}`), nil
	})
	defer close(release)
	// Occupy the single worker so queued items stay queued.
	_, first := postJob(t, ts, `{"kind":"timing","workload":"patricia"}`)
	waitState(t, ts, first.ID, StateRunning)
	resp, br := submitBatch(t, ts.URL, `{"jobs":[
		{"kind":"timing","workload":"mcf"},
		{"kind":"timing","workload":"crafty"},
		{"kind":"timing","workload":"gzip"}
	]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch = %s, want 200 (item-level failures)", resp.Status)
	}
	if br.Jobs[0].Status == nil {
		t.Fatalf("item 0 should fill the queue: %+v", br.Jobs[0])
	}
	for _, i := range []int{1, 2} {
		if br.Jobs[i].Status != nil || br.Jobs[i].Code != http.StatusServiceUnavailable {
			t.Fatalf("item %d = %+v, want 503 overflow error", i, br.Jobs[i])
		}
	}
}

func TestBatchSubmitRejectsBadShapes(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2, CacheSize: 2})
	var big strings.Builder
	big.WriteString(`{"jobs":[`)
	for i := 0; i <= MaxBatchJobs; i++ {
		if i > 0 {
			big.WriteString(",")
		}
		big.WriteString(`{"kind":"timing","workload":"mcf"}`)
	}
	big.WriteString(`]}`)
	for _, c := range []struct{ name, body string }{
		{"not json", `{{{`},
		{"empty batch", `{"jobs":[]}`},
		{"missing jobs", `{}`},
		{"unknown field", `{"jobs":[],"mode":"x"}`},
		{"oversized", big.String()},
	} {
		resp, _ := submitBatch(t, ts.URL, c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %s, want 400", c.name, resp.Status)
		}
	}
}

func TestBatchSubmitDraining503(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 2, CacheSize: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 5e9)
	defer cancel()
	s.Drain(ctx)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	resp, _ := submitBatch(t, ts.URL, `{"jobs":[{"kind":"timing","workload":"mcf"}]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("batch while draining = %s, want 503", resp.Status)
	}
}

func TestListJobsFilterAndPagination(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 16, CacheSize: 4})
	stubExec(s, func(ctx context.Context, spec Spec, report progressFunc) (json.RawMessage, error) {
		if spec.Workload == "yacr2" {
			return nil, fmt.Errorf("boom")
		}
		return json.RawMessage(`{}`), nil
	})
	ids := []string{}
	for _, wl := range []string{"mcf", "crafty", "gzip", "patricia", "yacr2"} {
		_, st := postJob(t, ts, fmt.Sprintf(`{"kind":"timing","workload":%q}`, wl))
		ids = append(ids, st.ID)
	}
	for _, id := range ids[:4] {
		waitState(t, ts, id, StateDone)
	}
	waitState(t, ts, ids[4], StateFailed)

	list := func(params string) ListResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/jobs" + params)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/jobs%s = %s", params, resp.Status)
		}
		var lr ListResponse
		if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
			t.Fatal(err)
		}
		return lr
	}

	all := list("")
	if all.Total != 5 || len(all.Jobs) != 5 || all.NextOffset != nil {
		t.Fatalf("list all = total %d, %d jobs, next %v", all.Total, len(all.Jobs), all.NextOffset)
	}
	for i := 1; i < len(all.Jobs); i++ {
		if all.Jobs[i-1].ID >= all.Jobs[i].ID {
			t.Fatalf("list not in id order: %s then %s", all.Jobs[i-1].ID, all.Jobs[i].ID)
		}
	}

	done := list("?status=done")
	if done.Total != 4 || len(done.Jobs) != 4 {
		t.Fatalf("status=done total = %d (%d jobs), want 4", done.Total, len(done.Jobs))
	}
	failed := list("?status=failed")
	if failed.Total != 1 || failed.Jobs[0].ID != ids[4] {
		t.Fatalf("status=failed = %+v, want just %s", failed, ids[4])
	}

	page1 := list("?limit=2")
	if len(page1.Jobs) != 2 || page1.NextOffset == nil || *page1.NextOffset != 2 {
		t.Fatalf("page1 = %d jobs, next %v; want 2 jobs next 2", len(page1.Jobs), page1.NextOffset)
	}
	page2 := list(fmt.Sprintf("?limit=2&offset=%d", *page1.NextOffset))
	if len(page2.Jobs) != 2 || page2.Jobs[0].ID != all.Jobs[2].ID {
		t.Fatalf("page2 starts at %s, want %s", page2.Jobs[0].ID, all.Jobs[2].ID)
	}
	page3 := list("?limit=2&offset=4")
	if len(page3.Jobs) != 1 || page3.NextOffset != nil {
		t.Fatalf("page3 = %d jobs, next %v; want 1 job, no next", len(page3.Jobs), page3.NextOffset)
	}
	beyond := list("?offset=99")
	if len(beyond.Jobs) != 0 || beyond.Total != 5 {
		t.Fatalf("offset beyond end = %+v, want empty page with total 5", beyond)
	}

	for _, bad := range []string{"?status=pending", "?limit=0", "?limit=9999", "?limit=x", "?offset=-1", "?offset=x"} {
		resp, err := http.Get(ts.URL + "/v1/jobs" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /v1/jobs%s = %s, want 400", bad, resp.Status)
		}
	}

	doc := metricsDoc(t, ts)
	if got := counter(t, doc, "http", "list_requests"); got < 5 {
		t.Fatalf("list_requests = %v, want >= 5", got)
	}
}

// TestMethodNotAllowed is the satellite's table-driven check: every
// route answers wrong-method requests with a JSON 405 and an accurate
// Allow header.
func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2, CacheSize: 2})
	cases := []struct {
		path   string
		method string
		allow  string
	}{
		{"/v1/jobs", http.MethodDelete, "GET, HEAD, POST"},
		{"/v1/jobs", http.MethodPut, "GET, HEAD, POST"},
		{"/v1/jobs:batch", http.MethodGet, "POST"},
		{"/v1/jobs:batch", http.MethodDelete, "POST"},
		{"/v1/jobs/job-000001", http.MethodPost, "DELETE, GET, HEAD"},
		{"/v1/jobs/job-000001/result", http.MethodDelete, "GET, HEAD"},
		{"/v1/workloads", http.MethodPost, "GET, HEAD"},
		{"/v1/configs", http.MethodDelete, "GET, HEAD"},
		{"/healthz", http.MethodPost, "GET, HEAD"},
		{"/metrics", http.MethodPut, "GET, HEAD"},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var doc errorDoc
		json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s = %s, want 405", c.method, c.path, resp.Status)
			continue
		}
		if got := resp.Header.Get("Allow"); got != c.allow {
			t.Errorf("%s %s Allow = %q, want %q", c.method, c.path, got, c.allow)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s %s Content-Type = %q, want application/json", c.method, c.path, ct)
		}
		if doc.Error == "" {
			t.Errorf("%s %s: 405 body carries no error document", c.method, c.path)
		}
	}
}
