package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// newTestServer builds a started server plus an httptest front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, ts
}

// stubExec replaces the real executor with fn for deterministic tests.
func stubExec(s *Server, fn func(ctx context.Context, spec Spec, report progressFunc) (json.RawMessage, error)) {
	s.exec = fn
}

func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, Status) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var st Status
	json.NewDecoder(resp.Body).Decode(&st) // error docs leave st zero
	return resp, st
}

func getStatus(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET status: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET status = %s", resp.Status)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return st
}

func waitState(t *testing.T, ts *httptest.Server, id string, want State) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if st.State == want {
			return st
		}
		if st.State == StateFailed && want != StateFailed {
			t.Fatalf("job %s failed: %s", id, st.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return Status{}
}

func deleteJob(t *testing.T, ts *httptest.Server, id string) *http.Response {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	return resp
}

func metricsDoc(t *testing.T, ts *httptest.Server) map[string]any {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	return doc
}

func counter(t *testing.T, doc map[string]any, section, name string) float64 {
	t.Helper()
	sec, ok := doc[section].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing section %q: %v", section, doc)
	}
	v, ok := sec[name].(float64)
	if !ok {
		t.Fatalf("metrics %s missing %q: %v", section, name, sec)
	}
	return v
}

// TestSubmitPollResultRoundTrip is the acceptance-criteria test: a
// real quick-depth single-workload timing job runs queued → done, its
// result is non-empty JSON, and an identical resubmission is served
// from the result cache (observed via the /metrics hit counter).
func TestSubmitPollResultRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8, CacheSize: 8})
	body := `{"kind":"timing","config":"TH","workload":"bitcount",
	          "depths":{"preset":"quick","fast_forward":20000,"warmup":5000,"measure":5000}}`
	resp, st := postJob(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %s, want 202", resp.Status)
	}
	if st.State != StateQueued && st.State != StateRunning && st.State != StateDone {
		t.Fatalf("fresh job state = %s", st.State)
	}
	fin := waitState(t, ts, st.ID, StateDone)
	if fin.FromCache {
		t.Fatal("first run claimed to come from cache")
	}

	res, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET result = %s", res.Status)
	}
	var tr timingResult
	if err := json.NewDecoder(res.Body).Decode(&tr); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	if tr.Workload != "bitcount" || tr.Config != "TH" || tr.IPC <= 0 || tr.Stats == nil {
		t.Fatalf("implausible result: %+v", tr)
	}

	// Identical resubmission: served from cache, no new simulation.
	resp2, st2 := postJob(t, ts, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resubmit = %s, want 200 (cache hit)", resp2.Status)
	}
	if st2.State != StateDone || !st2.FromCache {
		t.Fatalf("resubmit state = %s fromCache=%v, want immediate cached done", st2.State, st2.FromCache)
	}
	doc := metricsDoc(t, ts)
	if hits := counter(t, doc, "cache", "hits"); hits != 1 {
		t.Fatalf("cache hits = %v, want 1", hits)
	}
	if completed := counter(t, doc, "jobs", "completed"); completed != 1 {
		t.Fatalf("completed = %v, want 1 (cached resubmission must not re-run)", completed)
	}
}

func TestSubmitBadPayloads(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2, CacheSize: 2})
	cases := []struct {
		name string
		body string
	}{
		{"not json", `{{{`},
		{"unknown field", `{"kind":"timing","workload":"mcf","bogus":1}`},
		{"missing kind", `{"workload":"mcf"}`},
		{"unknown kind", `{"kind":"quantum","workload":"mcf"}`},
		{"missing workload", `{"kind":"timing"}`},
		{"unknown workload", `{"kind":"timing","workload":"doom2016"}`},
		{"unknown config", `{"kind":"timing","workload":"mcf","config":"5D"}`},
		{"unknown section", `{"kind":"experiment","section":"fig99"}`},
		{"section on timing", `{"kind":"timing","workload":"mcf","section":"fig8"}`},
		{"config on experiment", `{"kind":"experiment","section":"table2","config":"3D"}`},
		{"bad preset", `{"kind":"timing","workload":"mcf","depths":{"preset":"instant"}}`},
	}
	for _, c := range cases {
		resp, _ := postJob(t, ts, c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %s, want 400", c.name, resp.Status)
		}
	}
	doc := metricsDoc(t, ts)
	if depth := counter(t, doc, "queue", "depth"); depth != 0 {
		t.Fatalf("bad payloads left %v queued jobs", depth)
	}
}

func TestUnknownJob404(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2, CacheSize: 2})
	for _, path := range []string{"/v1/jobs/job-999999", "/v1/jobs/job-999999/result"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %s, want 404", path, resp.Status)
		}
	}
	if resp := deleteJob(t, ts, "job-999999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown = %s, want 404", resp.Status)
	}
}

func TestResultBeforeCompletion409(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2, CacheSize: 2})
	release := make(chan struct{})
	stubExec(s, func(ctx context.Context, spec Spec, report progressFunc) (json.RawMessage, error) {
		<-release
		return json.RawMessage(`{}`), nil
	})
	_, st := postJob(t, ts, `{"kind":"timing","workload":"mcf"}`)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result before completion = %s, want 409", resp.Status)
	}
	close(release)
	waitState(t, ts, st.ID, StateDone)
}

func TestCancelMidRun(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2, CacheSize: 2})
	started := make(chan struct{})
	stubExec(s, func(ctx context.Context, spec Spec, report progressFunc) (json.RawMessage, error) {
		close(started)
		<-ctx.Done() // simulate the runner observing cancellation
		return nil, ctx.Err()
	})
	_, st := postJob(t, ts, `{"kind":"timing","workload":"mcf"}`)
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("job never started")
	}
	if resp := deleteJob(t, ts, st.ID); resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE running job = %s, want 200", resp.Status)
	}
	fin := waitState(t, ts, st.ID, StateCanceled)
	if fin.Error == "" {
		t.Fatal("canceled job carries no reason")
	}
	// The canceled result must not be fetchable or cached.
	resp, _ := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result of canceled job = %s, want 409", resp.Status)
	}
	// Canceling a settled job conflicts.
	if resp := deleteJob(t, ts, st.ID); resp.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE settled job = %s, want 409", resp.Status)
	}
	doc := metricsDoc(t, ts)
	if canceled := counter(t, doc, "jobs", "canceled"); canceled != 1 {
		t.Fatalf("canceled counter = %v, want 1", canceled)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, CacheSize: 2})
	release := make(chan struct{})
	stubExec(s, func(ctx context.Context, spec Spec, report progressFunc) (json.RawMessage, error) {
		<-release
		return json.RawMessage(fmt.Sprintf(`{"workload":%q}`, spec.Workload)), nil
	})
	// First job occupies the single worker; the second sits queued.
	_, first := postJob(t, ts, `{"kind":"timing","workload":"mcf"}`)
	_, second := postJob(t, ts, `{"kind":"timing","workload":"crafty"}`)
	if resp := deleteJob(t, ts, second.ID); resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE queued job = %s, want 200", resp.Status)
	}
	st := getStatus(t, ts, second.ID)
	if st.State != StateCanceled {
		t.Fatalf("queued job state after cancel = %s, want canceled", st.State)
	}
	close(release)
	waitState(t, ts, first.ID, StateDone)
	// The canceled-in-queue job must never have run.
	if st := getStatus(t, ts, second.ID); st.State != StateCanceled || st.StartedAt != "" {
		t.Fatalf("canceled queued job ran anyway: %+v", st)
	}
}

func TestQueueFull503(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, CacheSize: 2})
	release := make(chan struct{})
	stubExec(s, func(ctx context.Context, spec Spec, report progressFunc) (json.RawMessage, error) {
		<-release
		return json.RawMessage(`{}`), nil
	})
	defer close(release)
	// One running, one queued; the third overflows.
	_, first := postJob(t, ts, `{"kind":"timing","workload":"mcf"}`)
	waitState(t, ts, first.ID, StateRunning)
	postJob(t, ts, `{"kind":"timing","workload":"crafty"}`)
	resp, _ := postJob(t, ts, `{"kind":"timing","workload":"gzip"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit = %s, want 503", resp.Status)
	}
	doc := metricsDoc(t, ts)
	if rejected := counter(t, doc, "jobs", "rejected"); rejected != 1 {
		t.Fatalf("rejected counter = %v, want 1", rejected)
	}
}

func TestDrainRejectsAndCancels(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 4, CacheSize: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	running := make(chan struct{})
	stubExec(s, func(ctx context.Context, spec Spec, report progressFunc) (json.RawMessage, error) {
		close(running)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	s.Start()
	ts := httptest.NewServer(s)
	defer ts.Close()

	_, first := postJob(t, ts, `{"kind":"timing","workload":"mcf"}`)
	_, queued := postJob(t, ts, `{"kind":"timing","workload":"crafty"}`)
	<-running

	// Drain with an immediate deadline: the queued job is canceled
	// outright, the running one via its context.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Drain = %v, want deadline exceeded (forced cancel)", err)
	}
	if st := getStatus(t, ts, queued.ID); st.State != StateCanceled {
		t.Fatalf("queued job after drain = %s, want canceled", st.State)
	}
	if st := getStatus(t, ts, first.ID); st.State != StateCanceled {
		t.Fatalf("running job after forced drain = %s, want canceled", st.State)
	}

	// While drained, health reports it and submissions bounce with 503.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if health["status"] != "draining" {
		t.Fatalf("healthz status = %v, want draining", health["status"])
	}
	resp2, _ := postJob(t, ts, `{"kind":"timing","workload":"gzip"}`)
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain = %s, want 503", resp2.Status)
	}
}

func TestConcurrentSubmissions(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64, CacheSize: 64})
	stubExec(s, func(ctx context.Context, spec Spec, report progressFunc) (json.RawMessage, error) {
		report(1, 1)
		return json.RawMessage(fmt.Sprintf(`{"workload":%q}`, spec.Workload)), nil
	})
	workloads := []string{"mcf", "crafty", "gzip", "patricia", "yacr2", "susan_s", "mpeg2enc", "bitcount"}
	var wg sync.WaitGroup
	ids := make(chan string, 4*len(workloads))
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, wl := range workloads {
				body := fmt.Sprintf(`{"kind":"timing","workload":%q}`, wl)
				resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				var st Status
				json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
					t.Errorf("submit %s: %s", wl, resp.Status)
					return
				}
				ids <- st.ID
			}
		}()
	}
	wg.Wait()
	close(ids)
	n := 0
	for id := range ids {
		waitState(t, ts, id, StateDone)
		n++
	}
	if n != 4*len(workloads) {
		t.Fatalf("completed %d jobs, want %d", n, 4*len(workloads))
	}
	doc := metricsDoc(t, ts)
	hits := counter(t, doc, "cache", "hits")
	completed := counter(t, doc, "jobs", "completed")
	if hits+completed != float64(n) {
		t.Fatalf("hits(%v) + completed(%v) != submitted(%d)", hits, completed, n)
	}
}

func TestWorkloadsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2, CacheSize: 2})
	resp, err := http.Get(ts.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []workloadInfo
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 106 {
		t.Fatalf("workloads = %d, want 106", len(out))
	}
	if out[0].Name == "" || out[0].Group == "" {
		t.Fatalf("empty workload entry: %+v", out[0])
	}
}

func TestConfigsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2, CacheSize: 2})
	resp, err := http.Get(ts.URL + "/v1/configs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []configInfo
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 6 {
		t.Fatalf("configs = %d, want 6", len(out))
	}
	names := map[string]bool{}
	for _, c := range out {
		names[c.Name] = true
	}
	for _, want := range []string{"Base", "TH", "Pipe", "Fast", "3D", "3D-noTH"} {
		if !names[want] {
			t.Errorf("missing config %q", want)
		}
	}
}

func TestExperimentSectionJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2, CacheSize: 2})
	// table2 derives from the circuit model without simulation, so it
	// exercises the experiment path instantly.
	_, st := postJob(t, ts, `{"kind":"experiment","section":"table2"}`)
	waitState(t, ts, st.ID, StateDone)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res experimentResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Section != "table2" || !strings.Contains(res.Text, "wakeup") {
		t.Fatalf("implausible table2 result: %+v", res)
	}
}

func TestFailedJobSurfacesError(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2, CacheSize: 2})
	stubExec(s, func(ctx context.Context, spec Spec, report progressFunc) (json.RawMessage, error) {
		return nil, fmt.Errorf("solver diverged")
	})
	_, st := postJob(t, ts, `{"kind":"timing","workload":"mcf"}`)
	fin := waitState(t, ts, st.ID, StateFailed)
	if !strings.Contains(fin.Error, "solver diverged") {
		t.Fatalf("error = %q", fin.Error)
	}
	resp, _ := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("result of failed job = %s, want 500", resp.Status)
	}
	// Failures must not poison the cache: resubmission runs again.
	stubExec(s, func(ctx context.Context, spec Spec, report progressFunc) (json.RawMessage, error) {
		return json.RawMessage(`{"ok":true}`), nil
	})
	_, st2 := postJob(t, ts, `{"kind":"timing","workload":"mcf"}`)
	if fin := waitState(t, ts, st2.ID, StateDone); fin.FromCache {
		t.Fatal("failed result was served from cache")
	}
}
