package server

import (
	"sort"
	"testing"
)

// TestMetricNamesMatchLiveEmission pins the registry to reality: the
// flattened key set of a live /metrics response must equal MetricNames()
// exactly. A key the server emits but the registry misses fails, and so
// does a registered key the server stopped emitting — so renaming or
// dropping any metric is impossible without editing the registry, where
// thermlint's metrickeys analyzer watches the other direction.
func TestMetricNamesMatchLiveEmission(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, CacheSize: 4})
	doc := metricsDoc(t, ts)

	registered := make(map[string]bool)
	for _, n := range MetricNames() {
		registered[n] = true
	}

	// Flatten the nested document with registry-aware descent: a
	// registered key is a leaf even when its value is a sub-document
	// (per-kind latency, per-point fault counts have dynamic keys).
	var emitted []string
	var flatten func(key string, v any)
	flatten = func(key string, v any) {
		if registered[key] {
			emitted = append(emitted, key)
			return
		}
		if sub, ok := v.(map[string]any); ok {
			for k, child := range sub {
				flatten(key+"."+k, child)
			}
			return
		}
		emitted = append(emitted, key)
	}
	for k, v := range doc {
		if registered[k] {
			emitted = append(emitted, k)
			continue
		}
		if sub, ok := v.(map[string]any); ok {
			for kk, child := range sub {
				flatten(k+"."+kk, child)
			}
			continue
		}
		emitted = append(emitted, k)
	}
	sort.Strings(emitted)

	want := MetricNames()
	emittedSet := make(map[string]bool, len(emitted))
	for _, k := range emitted {
		emittedSet[k] = true
	}
	for _, k := range want {
		if !emittedSet[k] {
			t.Errorf("registry key %q is not emitted by a live /metrics response", k)
		}
	}
	for _, k := range emitted {
		if !registered[k] {
			t.Errorf("live /metrics emits %q, which is not in the registry (add it to metricnames.go)", k)
		}
	}
	if len(emitted) != len(want) && !t.Failed() {
		t.Errorf("emitted %d keys, registry has %d", len(emitted), len(want))
	}
}

func TestNestMetricsShapesWireDocument(t *testing.T) {
	doc := nestMetrics(map[string]any{
		"jobs.submitted": 3,
		"jobs.failed":    1,
		"latency_ms":     map[string]any{"timing": 7},
	})
	jobs, ok := doc["jobs"].(map[string]any)
	if !ok || jobs["submitted"] != 3 || jobs["failed"] != 1 {
		t.Fatalf("jobs section = %v, want submitted:3 failed:1", doc["jobs"])
	}
	if _, nested := doc["jobs.submitted"]; nested {
		t.Fatal("dotted key leaked into the wire document")
	}
	lat, ok := doc["latency_ms"].(map[string]any)
	if !ok || lat["timing"] != 7 {
		t.Fatalf("latency_ms = %v, want the sub-document untouched", doc["latency_ms"])
	}
}
