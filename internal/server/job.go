package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"thermalherd/internal/clock"
	"thermalherd/internal/config"
	"thermalherd/internal/experiments"
	"thermalherd/internal/journal"
	"thermalherd/internal/qos"
	"thermalherd/internal/trace"
)

// Kind selects what a job runs.
type Kind string

const (
	// KindTiming runs one workload through the cycle-level model under
	// one machine configuration.
	KindTiming Kind = "timing"
	// KindThermal additionally computes the power breakdown and solves
	// the steady-state 3D thermal stack.
	KindThermal Kind = "thermal"
	// KindExperiment runs one section of the paper reproduction (the
	// cmd/repro sections).
	KindExperiment Kind = "experiment"
)

// Kinds lists every job kind.
func Kinds() []Kind { return []Kind{KindTiming, KindThermal, KindExperiment} }

// Depths selects simulation depths, mapping onto experiments.Options.
// The zero value means the "quick" preset.
type Depths struct {
	// Preset is "quick" (default) or "default"; the explicit fields
	// below override individual preset values.
	Preset      string `json:"preset,omitempty"`
	FastForward uint64 `json:"fast_forward,omitempty"`
	Warmup      uint64 `json:"warmup,omitempty"`
	Measure     uint64 `json:"measure,omitempty"`
	Grid        int    `json:"grid,omitempty"`
}

// options resolves the depths into concrete simulation options.
func (d Depths) options() (experiments.Options, error) {
	var o experiments.Options
	switch d.Preset {
	case "", "quick":
		o = experiments.QuickOptions()
	case "default":
		o = experiments.DefaultOptions()
	default:
		return o, fmt.Errorf("unknown depth preset %q (want quick or default)", d.Preset)
	}
	if d.FastForward > 0 {
		o.FastForwardInsts = d.FastForward
	}
	if d.Warmup > 0 {
		o.WarmupInsts = d.Warmup
	}
	if d.Measure > 0 {
		o.MeasureInsts = d.Measure
	}
	if d.Grid > 0 {
		o.Grid = d.Grid
	}
	return o, nil
}

// Sections lists the experiment sections KindExperiment accepts, in
// cmd/repro order.
func Sections() []string {
	return []string{"table1", "table2", "fig8", "fig9", "fig10", "density", "width"}
}

// Spec is the POST /v1/jobs submission payload.
type Spec struct {
	Kind Kind `json:"kind"`
	// Config names a machine configuration (GET /v1/configs); it
	// defaults to "3D". Used by timing and thermal jobs.
	Config string `json:"config,omitempty"`
	// Workload names a trace profile (GET /v1/workloads). Required for
	// timing and thermal jobs; optional reference app for fig10.
	Workload string `json:"workload,omitempty"`
	// Section names the reproduction section for experiment jobs.
	Section string `json:"section,omitempty"`
	// Depths selects the simulation depth.
	Depths Depths `json:"depths,omitempty"`
}

// normalize applies defaults and validates the spec in place.
func (s *Spec) normalize() error {
	switch s.Kind {
	case KindTiming, KindThermal:
		if s.Config == "" {
			s.Config = "3D"
		}
		if _, err := config.ByName(s.Config); err != nil {
			return err
		}
		if s.Workload == "" {
			return fmt.Errorf("%s job requires a workload (see GET /v1/workloads)", s.Kind)
		}
		if _, err := trace.ProfileByName(s.Workload); err != nil {
			return err
		}
		if s.Section != "" {
			return fmt.Errorf("%s job does not take a section", s.Kind)
		}
	case KindExperiment:
		ok := false
		for _, name := range Sections() {
			if s.Section == name {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("unknown experiment section %q (want one of %v)", s.Section, Sections())
		}
		if s.Section == "fig10" && s.Workload == "" {
			s.Workload = "mpeg2enc"
		}
		if s.Workload != "" {
			if _, err := trace.ProfileByName(s.Workload); err != nil {
				return err
			}
		}
		if s.Config != "" {
			return fmt.Errorf("experiment job does not take a config (sections fix their own)")
		}
	case "":
		return fmt.Errorf("missing job kind (want one of %v)", Kinds())
	default:
		return fmt.Errorf("unknown job kind %q (want one of %v)", s.Kind, Kinds())
	}
	if s.Depths.Preset == "" {
		s.Depths.Preset = "quick"
	}
	if _, err := s.Depths.options(); err != nil {
		return err
	}
	return nil
}

// marshalSpec is json.Marshal behind a seam so the regression test
// for the unmarshalable-spec path can force a failure; Spec's fields
// cannot produce one organically.
var marshalSpec = json.Marshal

// CanonicalHash normalizes a copy of the spec and returns its
// canonical content address — the hash the result cache keys on, the
// gateway's consistent-hash ring places by, and the spec_hash field of
// job statuses. Field order in the submitted JSON cannot affect it:
// decoding into Spec already erased any ordering, and the hash is
// computed from the normalized struct's fixed-order encoding.
func (s Spec) CanonicalHash() (string, error) {
	if err := s.normalize(); err != nil {
		return "", err
	}
	return s.cacheKey()
}

// cacheKey returns the content address of a normalized spec: a
// canonical hash over (kind, config, workload, section, depths). Two
// submissions with the same key compute the same result. A spec the
// encoder rejects surfaces as an error (mapped to a 400 by the submit
// path) rather than a daemon-killing panic.
func (s Spec) cacheKey() (string, error) {
	// Specs are flat with a fixed field order, so the JSON encoding is
	// canonical once normalized.
	b, err := marshalSpec(s)
	if err != nil {
		return "", fmt.Errorf("spec not marshalable: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// State is a job's lifecycle state.
type State string

// Job lifecycle: queued → running → done | failed | canceled.
// Queued jobs may also go straight to canceled, or — under drain
// herding — to migrated (terminal locally; the job now lives on the
// node named by MigratedTo).
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
	StateMigrated State = "migrated"
)

// Progress counts completed versus total units of work (workload
// simulations for most kinds).
type Progress struct {
	Completed int `json:"completed"`
	Total     int `json:"total"`
}

// Status is the JSON representation of a job visible to clients.
type Status struct {
	ID   string `json:"id"`
	Kind Kind   `json:"kind"`
	// SpecHash is the canonical content address of the job's normalized
	// spec (Spec.CanonicalHash): the key the result cache dedupes on and
	// the gateway's hash ring places by. Clients and tests use it to
	// verify placement without recomputing the hash.
	SpecHash string `json:"spec_hash,omitempty"`
	State    State  `json:"state"`
	Error    string `json:"error,omitempty"`
	// Tenant is who submitted the job (the X-Tenant-ID header,
	// defaulting to "default"); Class is the cost predictor's verdict at
	// admission ("short" or "long", empty for jobs answered from cache);
	// Demoted marks a predicted-short job the scheduler demoted to the
	// long pool mid-flight for overrunning its class budget.
	Tenant    string   `json:"tenant,omitempty"`
	Class     string   `json:"class,omitempty"`
	Demoted   bool     `json:"demoted,omitempty"`
	Progress  Progress `json:"progress"`
	FromCache bool     `json:"from_cache,omitempty"`
	// MigratedTo names the node that adopted this job when its state is
	// migrated; the gateway chases status polls there.
	MigratedTo  string `json:"migrated_to,omitempty"`
	SubmittedAt string `json:"submitted_at"`
	StartedAt   string `json:"started_at,omitempty"`
	FinishedAt  string `json:"finished_at,omitempty"`
}

// job is the server-side record of one submission.
type job struct {
	id   string
	spec Spec
	key  string
	clk  clock.Clock
	// tenant is the submitting tenant (set once at admission/recovery,
	// before the job is published); pkey is the predictor bucket the
	// cost predictor indexes by (derived from the normalized spec).
	tenant string
	pkey   string

	// ctx is canceled by DELETE /v1/jobs/{id} or a drain deadline; the
	// runner observes it between simulation phases.
	ctx    context.Context
	cancel context.CancelFunc

	// abandoned is closed by the watchdog when it settles an overdue
	// job and retires the worker slot stuck on it; the worker selects
	// on it to exit in favor of its replacement.
	abandoned chan struct{}

	mu        sync.Mutex
	state     State
	err       string
	result    json.RawMessage
	progress  Progress
	fromCache bool
	class     string // "short"/"long", or "" for jobs never classified
	demoted   bool
	// migratedTo names the node a migrated job was herded to; adopted
	// marks a job this node took over from a dead or draining peer (the
	// /readyz "recovering" frontier is the set of adopted non-terminal
	// jobs).
	migratedTo string
	adopted    bool
	submitted  time.Time
	started    time.Time
	finished   time.Time
}

func newJob(id string, spec Spec, clk clock.Clock) (*job, error) {
	key, err := spec.cacheKey()
	if err != nil {
		return nil, err
	}
	if clk == nil {
		clk = clock.Real()
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &job{
		id:        id,
		spec:      spec,
		key:       key,
		pkey:      predictorKey(spec),
		clk:       clk,
		ctx:       ctx,
		cancel:    cancel,
		abandoned: make(chan struct{}),
		state:     StateQueued,
		submitted: clk.Now(),
	}, nil
}

// status snapshots the job for clients.
func (j *job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:          j.id,
		Kind:        j.spec.Kind,
		SpecHash:    j.key,
		State:       j.state,
		Error:       j.err,
		Tenant:      j.tenant,
		Class:       j.class,
		Demoted:     j.demoted,
		Progress:    j.progress,
		FromCache:   j.fromCache,
		MigratedTo:  j.migratedTo,
		SubmittedAt: j.submitted.Format(time.RFC3339Nano),
	}
	if !j.started.IsZero() {
		st.StartedAt = j.started.Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		st.FinishedAt = j.finished.Format(time.RFC3339Nano)
	}
	return st
}

// tryStart transitions queued → running; it reports false if the job
// was canceled while still queued.
func (j *job) tryStart() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = j.clk.Now()
	return true
}

// setProgress updates the progress counters.
func (j *job) setProgress(completed, total int) {
	j.mu.Lock()
	j.progress = Progress{Completed: completed, Total: total}
	j.mu.Unlock()
}

// finishRunning moves a running job to its terminal state. It reports
// false without touching the job when the job is not running — the
// settle-once guard that keeps the worker, the watchdog, and an
// abandoned executor straggling back from settling the same job twice
// (the winner also owns the matching metrics and cache updates).
//
//thermlint:settleonce
func (j *job) finishRunning(state State, result json.RawMessage, errMsg string) bool {
	j.mu.Lock()
	if j.state != StateRunning {
		j.mu.Unlock()
		return false
	}
	j.state = state
	j.result = result
	j.err = errMsg
	j.finished = j.clk.Now()
	if state == StateDone && j.progress.Total > 0 {
		j.progress.Completed = j.progress.Total
	}
	j.mu.Unlock()
	j.cancel() // release the context's resources
	return true
}

// setClass records the cost predictor's admission verdict.
func (j *job) setClass(c qos.Class) {
	j.mu.Lock()
	j.class = c.String()
	j.mu.Unlock()
}

// qclass returns the job's current class for scheduling; unclassified
// jobs parse as short (the optimistic default).
func (j *job) qclass() qos.Class {
	j.mu.Lock()
	defer j.mu.Unlock()
	return qos.ParseClass(j.class)
}

// markDemoted flips the job to the long class and flags the demotion
// for status visibility.
func (j *job) markDemoted() {
	j.mu.Lock()
	j.class = qos.ClassLong.String()
	j.demoted = true
	j.mu.Unlock()
}

// startedAt returns when the job began running (zero if it never did).
func (j *job) startedAt() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.started
}

// runningSince reports whether the job has been running since before
// cutoff; the watchdog's overdue test.
func (j *job) runningSince(cutoff time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state == StateRunning && !j.started.IsZero() && j.started.Before(cutoff)
}

// finishFromCache completes a job immediately with a cached result.
func (j *job) finishFromCache(result json.RawMessage) {
	j.mu.Lock()
	j.fromCache = true
	j.state = StateDone
	j.result = result
	now := j.clk.Now()
	j.started, j.finished = now, now
	j.mu.Unlock()
	j.cancel()
}

// markMigrated transitions queued → migrated, recording the adopting
// node; it reports false if the job is no longer queued (a worker beat
// the herding to it, or it already settled). The settle-once CAS is
// what makes drain herding loss-free without double-running: a job is
// either frozen here (and counted migrated after the handoff lands) or
// stays with this node. The context is deliberately NOT canceled — the
// revert path needs the job live if the handoff fails.
//
//thermlint:settleonce
func (j *job) markMigrated(target string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateMigrated
	j.migratedTo = target
	j.finished = j.clk.Now()
	return true
}

// revertMigrated undoes markMigrated when the replica handoff fails,
// restoring the job to queued so it runs locally after all.
func (j *job) revertMigrated() {
	j.mu.Lock()
	if j.state == StateMigrated {
		j.state = StateQueued
		j.migratedTo = ""
		j.finished = time.Time{}
	}
	j.mu.Unlock()
}

// markAdopted flags a job taken over from a dead or draining peer.
func (j *job) markAdopted() {
	j.mu.Lock()
	j.adopted = true
	j.mu.Unlock()
}

// adoptedPending reports whether this is an adopted job that has not
// yet settled — the /readyz "recovering" frontier.
func (j *job) adoptedPending() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.adopted {
		return false
	}
	switch j.state {
	case StateQueued, StateRunning:
		return true
	}
	return false
}

// cancelQueued transitions queued → canceled; it reports false if the
// job had already started (the caller then cancels the context
// instead).
//
//thermlint:settleonce
func (j *job) cancelQueued(reason string) bool {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock()
		return false
	}
	j.state = StateCanceled
	j.err = reason
	j.finished = j.clk.Now()
	j.mu.Unlock()
	j.cancel()
	return true
}

// snapshotResult returns the terminal state and result.
func (j *job) snapshotResult() (State, json.RawMessage, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.result, j.err
}

// record renders the job as a journal snapshot entry.
func (j *job) record(idemKey string) journal.JobRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	spec, _ := marshalSpec(j.spec)
	rec := journal.JobRecord{
		ID:         j.id,
		Spec:       spec,
		Key:        j.key,
		IdemKey:    idemKey,
		Tenant:     j.tenant,
		State:      string(j.state),
		Error:      j.err,
		Result:     j.result,
		FromCache:  j.fromCache,
		MigratedTo: j.migratedTo,
		Submitted:  j.submitted.Format(time.RFC3339Nano),
	}
	if !j.started.IsZero() {
		rec.Started = j.started.Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		rec.Finished = j.finished.Format(time.RFC3339Nano)
	}
	return rec
}

// parseEventTime is lenient: journal timestamps are advisory metadata,
// and a record with an unparsable one still recovers (with a zero
// time) rather than aborting replay.
func parseEventTime(s string) time.Time {
	t, _ := time.Parse(time.RFC3339Nano, s)
	return t
}

// newJobFromRecord rebuilds a job from a journal snapshot entry (or a
// record synthesized from replayed events). Recovered pending jobs
// come back as queued — a job that was running when the process died
// restarts from scratch, which is safe because execution is
// deterministic and results are content-addressed.
func newJobFromRecord(rec journal.JobRecord, clk clock.Clock) (*job, error) {
	var spec Spec
	if err := json.Unmarshal(rec.Spec, &spec); err != nil {
		return nil, fmt.Errorf("job %s: bad journaled spec: %w", rec.ID, err)
	}
	if clk == nil {
		clk = clock.Real()
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:        rec.ID,
		spec:      spec,
		key:       rec.Key,
		pkey:      predictorKey(spec),
		tenant:    tenantOrDefault(rec.Tenant),
		clk:       clk,
		ctx:       ctx,
		cancel:    cancel,
		abandoned: make(chan struct{}),
		err:       rec.Error,
		result:    rec.Result,
		fromCache: rec.FromCache,
		submitted: parseEventTime(rec.Submitted),
		started:   parseEventTime(rec.Started),
		finished:  parseEventTime(rec.Finished),
	}
	switch State(rec.State) {
	case StateDone, StateFailed, StateCanceled:
		j.state = State(rec.State)
		j.cancel() // terminal; release the context immediately
	case StateMigrated:
		j.state = StateMigrated
		j.migratedTo = rec.MigratedTo
		j.cancel() // terminal locally; the adopting node owns it now
	default:
		// queued or running: both restart from the queue.
		j.state = StateQueued
		j.started = time.Time{}
		j.finished = time.Time{}
		j.err = ""
		j.result = nil
	}
	return j, nil
}
