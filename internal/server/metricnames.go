package server

import "sort"

// The metric-name registry: every key the /metrics document emits is a
// constant here, and thermlint's metrickeys analyzer rejects metric
// sites (histogram construction, the snapshot document) that spell a
// key any other way. Dashboards and the SLO harness key off these
// strings, so a drive-by rename is an outage in a dependency we can't
// see; forcing every emission through a named constant makes the
// registry the single place a name can change — and metricnames_test
// pins the registry to what a live server actually serves.
//
// Keys are dotted paths ("jobs.submitted"); nestMetrics folds them into
// the nested JSON wire shape, which is unchanged.
//
//thermlint:metricnames
const (
	metricJobsSubmitted        = "jobs.submitted"
	metricJobsRunning          = "jobs.running"
	metricJobsCompleted        = "jobs.completed"
	metricJobsFailed           = "jobs.failed"
	metricJobsCanceled         = "jobs.canceled"
	metricJobsRejected         = "jobs.rejected"
	metricJobsPanicsRecovered  = "jobs.panics_recovered"
	metricJobsDeadlineExceeded = "jobs.deadline_exceeded"
	metricJobsDeduped          = "jobs.deduped"
	metricJobsMigrated         = "jobs.migrated"

	// Journal durability metrics: appends/fsyncs count WAL I/O since
	// boot; replayed/truncated_records/recovered_jobs describe the last
	// startup recovery. All zero when -journal-dir is unset.
	metricJournalAppends   = "journal.appends"
	metricJournalFsyncs    = "journal.fsyncs"
	metricJournalReplayed  = "journal.replayed"
	metricJournalTruncated = "journal.truncated_records"
	metricJournalRecovered = "journal.recovered_jobs"

	// Replication metrics: the chain ack policy in force, the streamer's
	// send counters, and the replica store's intake/adoption counters.
	// policy is "none" (and the counters zero) when replication is off.
	metricReplPolicy        = "repl.policy"
	metricReplStreamed      = "repl.streamed"
	metricReplStreamErrors  = "repl.stream_errors"
	metricReplDropped       = "repl.dropped"
	metricReplReplicaEvents = "repl.replica_events"
	metricReplAdopted       = "repl.adopted"
	metricReplAliased       = "repl.aliased"

	metricAdmissionBrownoutRejects = "admission.brownout_rejects"
	metricAdmissionBrownoutActive  = "admission.brownout_active"

	metricWorkersPool     = "workers.pool"
	metricWorkersRestarts = "workers.restarts"

	metricQueueDepth    = "queue.depth"
	metricQueueCapacity = "queue.capacity"

	metricCacheHits     = "cache.hits"
	metricCacheMisses   = "cache.misses"
	metricCacheEntries  = "cache.entries"
	metricCacheCapacity = "cache.capacity"

	metricHTTPBatchRequests = "http.batch_requests"
	metricHTTPListRequests  = "http.list_requests"

	// metricFaultsInjected holds a sub-document keyed by fault-point
	// name; the points themselves live in the faultpoints registry.
	metricFaultsInjected = "faults.injected"

	// metricLatencyHist and metricLatencyQuantiles hold sub-documents
	// keyed by job kind.
	metricLatencyHist      = "latency_ms"
	metricLatencyQuantiles = "latency_quantiles_ms"

	// metricLatencyHistPrefix names the per-kind histograms themselves
	// ("latency_ms_<kind>"); it is a name prefix, not a document key.
	metricLatencyHistPrefix = "latency_ms_"

	// QoS scheduler metrics. policy is the configured discipline ("fifo"
	// or "qos"); the predictor counters mirror qos.PredictorStats; the
	// queued/running pairs are per-class occupancy gauges (zero under
	// FIFO, where jobs are never classified).
	metricQoSPolicy         = "qos.policy"
	metricQoSPredictions    = "qos.predictions"
	metricQoSPredictedShort = "qos.predicted_short"
	metricQoSPredictedLong  = "qos.predicted_long"
	metricQoSMispredicts    = "qos.mispredicts"
	metricQoSDemotions      = "qos.demotions"
	metricQoSQueuedShort    = "qos.queued_short"
	metricQoSQueuedLong     = "qos.queued_long"
	metricQoSRunningShort   = "qos.running_short"
	metricQoSRunningLong    = "qos.running_long"

	// metricAdmissionQuotaRejects counts submissions bounced by a
	// tenant's token-bucket quota; each is also counted in
	// jobs.rejected.
	metricAdmissionQuotaRejects = "admission.quota_rejects"

	// metricTenants holds a sub-document keyed by tenant id, each tenant
	// carrying its own slice of the accounting identity (submitted ==
	// hits + completed + failed + canceled + rejected).
	metricTenants = "tenants"

	// metricQueueWaitHist and metricQueueWaitQuantiles hold
	// sub-documents keyed by predicted class ("short"/"long").
	metricQueueWaitHist      = "queue_wait_ms"
	metricQueueWaitQuantiles = "queue_wait_quantiles_ms"

	// metricQueueWaitHistPrefix names the per-class queue-wait
	// histograms ("queue_wait_ms_<class>"); a name prefix, not a
	// document key.
	metricQueueWaitHistPrefix = "queue_wait_ms_"

	// Quantile labels inside each latency_quantiles_ms sub-document.
	metricQuantP50 = "p50"
	metricQuantP95 = "p95"
	metricQuantP99 = "p99"
)

// MetricNames returns the registered /metrics document keys, sorted.
// Sub-document keys (per-kind latency, per-point fault counts) are
// dynamic and represented by their registered parent.
func MetricNames() []string {
	names := []string{
		metricJobsSubmitted,
		metricJobsRunning,
		metricJobsCompleted,
		metricJobsFailed,
		metricJobsCanceled,
		metricJobsRejected,
		metricJobsPanicsRecovered,
		metricJobsDeadlineExceeded,
		metricJobsDeduped,
		metricJobsMigrated,
		metricJournalAppends,
		metricJournalFsyncs,
		metricJournalReplayed,
		metricJournalTruncated,
		metricJournalRecovered,
		metricReplPolicy,
		metricReplStreamed,
		metricReplStreamErrors,
		metricReplDropped,
		metricReplReplicaEvents,
		metricReplAdopted,
		metricReplAliased,
		metricAdmissionBrownoutRejects,
		metricAdmissionBrownoutActive,
		metricWorkersPool,
		metricWorkersRestarts,
		metricQueueDepth,
		metricQueueCapacity,
		metricCacheHits,
		metricCacheMisses,
		metricCacheEntries,
		metricCacheCapacity,
		metricHTTPBatchRequests,
		metricHTTPListRequests,
		metricFaultsInjected,
		metricLatencyHist,
		metricLatencyQuantiles,
		metricQoSPolicy,
		metricQoSPredictions,
		metricQoSPredictedShort,
		metricQoSPredictedLong,
		metricQoSMispredicts,
		metricQoSDemotions,
		metricQoSQueuedShort,
		metricQoSQueuedLong,
		metricQoSRunningShort,
		metricQoSRunningLong,
		metricAdmissionQuotaRejects,
		metricTenants,
		metricQueueWaitHist,
		metricQueueWaitQuantiles,
	}
	sort.Strings(names)
	return names
}

// nestMetrics folds a flat dotted-key document into the nested JSON
// wire shape: "jobs.submitted" → doc["jobs"]["submitted"]. Dotless keys
// stay top-level. The wire format predates the registry and must not
// change under it.
func nestMetrics(flat map[string]any) map[string]any {
	doc := make(map[string]any, len(flat))
	for key, v := range flat {
		dot := -1
		for i := 0; i < len(key); i++ {
			if key[i] == '.' {
				dot = i
				break
			}
		}
		if dot < 0 {
			doc[key] = v
			continue
		}
		group, leaf := key[:dot], key[dot+1:]
		sub, ok := doc[group].(map[string]any)
		if !ok {
			sub = make(map[string]any)
			doc[group] = sub
		}
		sub[leaf] = v
	}
	return doc
}
