package gateway

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"thermalherd/internal/faultinject"
)

// TestGatewayHedgedSubmitStraggler is the headline resilience property:
// with one backend turned into a deterministic straggler, an
// Idempotency-Key-bearing submit hedges to the ring successor after the
// p95 delay, the hedge wins, and the straggler-bound loser is stopped
// pre-send — the fleet ends the test with exactly one copy of the job.
func TestGatewayHedgedSubmitStraggler(t *testing.T) {
	faults := faultinject.New()
	g, ts, handles := startHerdWith(t, 3, func(c *Config) {
		c.Hedge = true
		c.Faults = faults
	})

	// The straggler fault targets the lexically-last ring node.
	if got := g.stragglerTarget(); got != "n2" {
		t.Fatalf("straggler target = %q, want n2", got)
	}
	workload := workloadHomedOn(t, g, "n2")
	hash := quickSpecHash(t, workload)
	expectedHedge := g.ring.Successors(hash, 3)[1]

	// Seed the submit-class estimator so the hedger has a delay; the
	// herd is fast, so 10ms is both realistic and way under the 300ms
	// injected straggle.
	for i := 0; i < hedgeMinSamples; i++ {
		g.hedger.observe(hedgeClassSubmit, 10*time.Millisecond)
	}
	if err := faults.Arm(FaultStraggler+"=delay:300ms", 42); err != nil {
		t.Fatalf("Arm: %v", err)
	}

	st := submitVia(t, ts.URL, quickSpec(workload), map[string]string{"Idempotency-Key": "hedge-1"})
	_, node, _ := splitID(st.ID)
	if node != expectedHedge {
		t.Fatalf("hedged submit landed on %q, want the ring successor %q", node, expectedHedge)
	}
	if got := g.metrics.hedgesFired.Load(); got != 1 {
		t.Fatalf("hedges_fired = %d, want 1", got)
	}
	if got := g.metrics.hedgesWon.Load(); got != 1 {
		t.Fatalf("hedges_won = %d, want 1", got)
	}

	// Let the aborted primary leg drain out of its injected delay, then
	// verify the straggler never saw the submit: the loser was stopped
	// pre-send, so there was nothing to reap either.
	time.Sleep(400 * time.Millisecond)
	faults.Disarm()
	if got := g.metrics.hedgeCancels.Load(); got != 0 {
		t.Fatalf("hedge_cancels = %d, want 0 (loser never hit the wire)", got)
	}
	if got := metricAt(t, fetchMetrics(t, handles[2].ts.URL), "jobs.submitted"); got != 0 {
		t.Fatalf("straggler backend saw %v submissions, want 0", got)
	}
	waitDone(t, ts.URL, st.ID)

	// No duplicates anywhere: the fleet holds exactly one job, and the
	// merged metrics document counts exactly one submission.
	var list ListDoc
	getJSON(t, ts.URL+"/v1/jobs?limit=500", &list)
	if list.Total != 1 || len(list.Jobs) != 1 {
		t.Fatalf("fleet list total=%d jobs=%d, want exactly 1 (no duplicate admission)", list.Total, len(list.Jobs))
	}
	doc := fetchMetrics(t, ts.URL)
	if got := metricAt(t, doc, "jobs.submitted"); got != 1 {
		t.Fatalf("fleet jobs.submitted = %v, want 1", got)
	}
	if got := metricAt(t, doc, "gateway.hedges_won"); got != 1 {
		t.Fatalf("merged gateway.hedges_won = %v, want 1", got)
	}
}

// TestGatewayHedgedReadsNoDoubleCount: with hedging aggressive enough
// to fire on every scatter leg, the merged /metrics document and the
// fleet GET /v1/jobs page still count each backend exactly once — a won
// or wasted hedge never double-counts its node.
func TestGatewayHedgedReadsNoDoubleCount(t *testing.T) {
	faults := faultinject.New()
	g, ts, _ := startHerdWith(t, 3, func(c *Config) {
		c.Hedge = true
		c.Faults = faults
	})
	workloads := []string{"bitcount", "mcf", "gzip"}
	ids := make(map[string]bool)
	for _, wl := range workloads {
		st := submitVia(t, ts.URL, quickSpec(wl), nil)
		waitDone(t, ts.URL, st.ID)
		ids[st.ID] = true
	}

	// Seed the read classes fast, then slow every forward past the
	// 5ms-min hedge delay: every read leg hedges.
	for i := 0; i < hedgeMinSamples; i++ {
		g.hedger.observe(hedgeClassScatter, time.Millisecond)
		g.hedger.observe(hedgeClassStatus, time.Millisecond)
	}
	if err := faults.Arm(FaultForward+"=delay:25ms", 7); err != nil {
		t.Fatalf("Arm: %v", err)
	}

	var list ListDoc
	getJSON(t, ts.URL+"/v1/jobs?limit=500", &list)
	if list.Total != len(workloads) || len(list.Jobs) != len(workloads) {
		t.Fatalf("hedged list total=%d jobs=%d, want %d (double-counted a won hedge?)",
			list.Total, len(list.Jobs), len(workloads))
	}
	seen := make(map[string]bool)
	for _, st := range list.Jobs {
		if !ids[st.ID] || seen[st.ID] {
			t.Fatalf("hedged list returned unexpected or repeated id %q", st.ID)
		}
		seen[st.ID] = true
	}

	doc := fetchMetrics(t, ts.URL)
	if got := metricAt(t, doc, "jobs.submitted"); got != float64(len(workloads)) {
		t.Fatalf("hedged merged jobs.submitted = %v, want %d (a backend was merged twice?)", got, len(workloads))
	}
	faults.Disarm()
	if g.metrics.hedgesFired.Load() == 0 {
		t.Fatal("no hedges fired; the test did not exercise the race")
	}
	// Every fired hedge resolved as won or wasted — none leaked.
	fired := g.metrics.hedgesFired.Load()
	if resolved := g.metrics.hedgesWon.Load() + g.metrics.hedgesWasted.Load(); resolved != fired {
		t.Fatalf("hedges fired=%d but resolved=%d", fired, resolved)
	}
}

// scriptedBackend is a minimal backend whose submit behavior each test
// scripts per call; /readyz always reports ready.
type scriptedBackend struct {
	mu      sync.Mutex
	submit  func(n int, w http.ResponseWriter)
	submits int
	ts      *httptest.Server
}

func newScriptedBackend(t *testing.T, submit func(n int, w http.ResponseWriter)) *scriptedBackend {
	t.Helper()
	s := &scriptedBackend{submit: submit}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, readyzDoc{Ready: true})
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		s.submits++
		n := s.submits
		fn := s.submit
		s.mu.Unlock()
		fn(n, w)
	})
	s.ts = httptest.NewServer(mux)
	t.Cleanup(s.ts.Close)
	return s
}

func (s *scriptedBackend) setSubmit(fn func(n int, w http.ResponseWriter)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.submit = fn
}

// TestGatewayRetryAfterHonored: a refusing backend's Retry-After hint
// is slept out (through the clock seam, counted in gw.retry_backoff_ms)
// before the submit fails over to the ring successor.
func TestGatewayRetryAfterHonored(t *testing.T) {
	accept := func(n int, w http.ResponseWriter) {
		writeJSON(w, http.StatusAccepted, map[string]any{"id": "job-" + itoa6(n), "state": "queued"})
	}
	refuse := func(n int, w http.ResponseWriter) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "draining")
	}
	// Script both nodes to refuse-with-hint; whichever the spec homes on
	// exercises the backoff, and the successor accepts.
	scripted := []*scriptedBackend{nil, nil}
	backends := make([]Backend, 2)
	for i := range scripted {
		i := i
		scripted[i] = newScriptedBackend(t, func(n int, w http.ResponseWriter) { refuse(n, w) })
		backends[i] = Backend{Name: fmt.Sprintf("n%d", i), URL: scripted[i].ts.URL}
	}
	g, err := New(Config{Backends: backends, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	ts := httptest.NewServer(g)
	t.Cleanup(func() {
		ts.Close()
		g.Close()
	})

	home := g.ring.Lookup(quickSpecHash(t, "bitcount"))
	for i := range scripted {
		if backends[i].Name != home {
			scripted[i].setSubmit(accept)
		}
	}

	start := time.Now()
	st := submitVia(t, ts.URL, quickSpec("bitcount"), nil)
	elapsed := time.Since(start)
	if _, node, _ := splitID(st.ID); node == home {
		t.Fatalf("submit landed on the refusing home %q", home)
	}
	if elapsed < time.Second {
		t.Fatalf("failover took %v, want >= 1s honoring Retry-After", elapsed)
	}
	if got := g.metrics.retryBackoffMs.Load(); got != 1000 {
		t.Fatalf("retry_backoff_ms = %d, want 1000", got)
	}
	if got := g.metrics.forwardRetries.Load(); got != 1 {
		t.Fatalf("forward_retries = %d, want 1", got)
	}
}

// TestGatewayRetryAfterCapped: an abusive Retry-After hint is clamped
// to retryAfterCap so a misbehaving backend cannot stall the submit
// path indefinitely.
func TestGatewayRetryAfterCapped(t *testing.T) {
	var fr forwardResult
	fr.header = http.Header{}
	fr.header.Set("Retry-After", "3600")
	g, err := New(Config{Backends: []Backend{{Name: "n0", URL: "http://127.0.0.1:1"}}, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	t.Cleanup(g.Close)
	start := time.Now()
	g.sleepRetryAfter(context.Background(), &fr)
	if elapsed := time.Since(start); elapsed > retryAfterCap+time.Second {
		t.Fatalf("sleepRetryAfter slept %v, want <= the %v cap", elapsed, retryAfterCap)
	}
	if got := g.metrics.retryBackoffMs.Load(); got != uint64(retryAfterCap/time.Millisecond) {
		t.Fatalf("retry_backoff_ms = %d, want the capped %d", got, retryAfterCap/time.Millisecond)
	}
}

// TestGatewayHedgeRespectsBudget: with the retry budget drained, the
// hedge timer expiring does not launch a second attempt — amplification
// stays bounded even when every request is slow.
func TestGatewayHedgeRespectsBudget(t *testing.T) {
	faults := faultinject.New()
	g, ts, _ := startHerdWith(t, 3, func(c *Config) {
		c.Hedge = true
		c.Faults = faults
		c.RetryBudgetRatio = 0.001
		c.RetryBudgetBurst = 0.5 // below one token: nothing to take, ever
	})
	for i := 0; i < hedgeMinSamples; i++ {
		g.hedger.observe(hedgeClassSubmit, 5*time.Millisecond)
	}
	if err := faults.Arm(FaultStraggler+"=delay:150ms", 42); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	workload := workloadHomedOn(t, g, g.stragglerTarget())
	st := submitVia(t, ts.URL, quickSpec(workload), map[string]string{"Idempotency-Key": "no-budget"})
	faults.Disarm()
	if _, node, _ := splitID(st.ID); node != g.stragglerTarget() {
		t.Fatalf("submit landed on %q; with no budget it must wait out its straggling home %q", node, g.stragglerTarget())
	}
	if got := g.metrics.hedgesFired.Load(); got != 0 {
		t.Fatalf("hedges_fired = %d, want 0 with an empty budget", got)
	}
	if g.metrics.budgetExhausted.Load() == 0 {
		t.Fatal("budget_exhausted never counted the refused hedge")
	}
	waitDone(t, ts.URL, st.ID)
}
