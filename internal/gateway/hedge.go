package gateway

import (
	"sort"
	"sync"
	"time"
)

// Route classes for the hedge-delay estimator: each keeps its own
// latency distribution, because a submit (runs a simulation) and a
// status poll (reads a map) have nothing in common tail-wise.
const (
	hedgeClassSubmit  = "submit"
	hedgeClassStatus  = "status"
	hedgeClassScatter = "scatter"
)

// latEstimator is an online latency-quantile estimator: a fixed-size
// sliding window of recent samples, quantiled by copy-and-sort on
// demand. 128 samples bounds both memory and the cost of a quantile
// read; the window slides so the estimate tracks regime changes (a
// backend recovering, the cache warming) within ~a hundred requests.
type latEstimator struct {
	mu   sync.Mutex
	buf  [128]time.Duration
	n    int // filled slots, <= len(buf)
	next int // ring write position
}

// hedgeMinSamples gates hedging until the estimator has seen enough
// traffic that its p95 means something.
const hedgeMinSamples = 16

func (e *latEstimator) observe(d time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.buf[e.next] = d
	e.next = (e.next + 1) % len(e.buf)
	if e.n < len(e.buf) {
		e.n++
	}
}

// p95 returns the window's 95th-percentile latency; ok is false until
// hedgeMinSamples have been observed.
func (e *latEstimator) p95() (time.Duration, bool) {
	e.mu.Lock()
	n := e.n
	samples := make([]time.Duration, n)
	copy(samples, e.buf[:n])
	e.mu.Unlock()
	if n < hedgeMinSamples {
		return 0, false
	}
	sort.Slice(samples, func(i, k int) bool { return samples[i] < samples[k] })
	return samples[(n-1)*95/100], true
}

// hedger decides when a second attempt is worth firing: per-route-class
// p95 estimators clamped into [min, max]. The max clamp matters when a
// straggler is common enough to drag the p95 itself — the hedge then
// fires at the clamp instead of chasing the inflated quantile, and the
// retry budget caps the amplification either way.
type hedger struct {
	min, max time.Duration

	mu      sync.Mutex
	classes map[string]*latEstimator
}

func newHedger(min, max time.Duration) *hedger {
	if min <= 0 {
		min = 5 * time.Millisecond
	}
	if max <= 0 {
		max = 100 * time.Millisecond
	}
	if max < min {
		max = min
	}
	return &hedger{min: min, max: max, classes: make(map[string]*latEstimator)}
}

func (h *hedger) estimator(class string) *latEstimator {
	h.mu.Lock()
	defer h.mu.Unlock()
	e, ok := h.classes[class]
	if !ok {
		e = &latEstimator{}
		h.classes[class] = e
	}
	return e
}

func (h *hedger) observe(class string, d time.Duration) {
	h.estimator(class).observe(d)
}

// delay returns how long to wait before hedging a request of this
// class; ok is false while the class has too few samples to estimate.
func (h *hedger) delay(class string) (time.Duration, bool) {
	p, ok := h.estimator(class).p95()
	if !ok {
		return 0, false
	}
	if p < h.min {
		p = h.min
	}
	if p > h.max {
		p = h.max
	}
	return p, true
}

// retryBudget is the Finagle-style global token bucket that bounds
// retry+hedge amplification: every base request deposits ratio tokens,
// every retry or hedge withdraws one, so extra load can never exceed
// ~ratio of base traffic no matter how many backends melt at once. The
// bucket starts full (burst) so isolated failovers on a cold gateway
// still work; a storm drains it and further retries are refused.
type retryBudget struct {
	mu     sync.Mutex
	ratio  float64
	burst  float64
	tokens float64
}

func newRetryBudget(ratio, burst float64) *retryBudget {
	if ratio <= 0 {
		ratio = 0.1
	}
	if burst <= 0 {
		burst = 10
	}
	return &retryBudget{ratio: ratio, burst: burst, tokens: burst}
}

func (b *retryBudget) deposit(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += b.ratio * float64(n)
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// take withdraws one retry/hedge token, reporting false when the
// budget is exhausted.
func (b *retryBudget) take() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// sendGate serializes a racing submit attempt's "about to hit the
// wire" moment against its abort. The straggler chaos fault (and any
// FaultForward delay) fires gateway-side before the request is sent,
// so when the hedge wins during that window the primary attempt can
// still be stopped pre-send — no job is admitted, nothing to cancel.
// Once the request is on the wire the attempt must be allowed to
// finish: cancelling it mid-flight would orphan a job whose id we
// never learned.
type sendGate struct {
	mu      sync.Mutex
	sent    bool
	aborted bool
}

// tryBegin marks the attempt as sent unless it was already aborted.
func (sg *sendGate) tryBegin() bool {
	sg.mu.Lock()
	defer sg.mu.Unlock()
	if sg.aborted {
		return false
	}
	sg.sent = true
	return true
}

// abort requests the attempt stop; it reports true when the attempt
// had not yet hit the wire (the caller may drop it on the floor) and
// false when it is in flight (the caller must reap its result).
func (sg *sendGate) abort() bool {
	sg.mu.Lock()
	defer sg.mu.Unlock()
	sg.aborted = true
	return !sg.sent
}
