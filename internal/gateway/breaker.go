package gateway

import (
	"sync"
	"time"

	"thermalherd/internal/clock"
	"thermalherd/internal/faultinject"
)

// breakerState is one backend's circuit position.
type breakerState string

const (
	// breakerClosed passes traffic; consecutive failures are counted.
	breakerClosed breakerState = "closed"
	// breakerOpen short-circuits submit routing to the backend until
	// the cooldown elapses.
	breakerOpen breakerState = "open"
	// breakerHalfOpen admits exactly one trial request; its outcome
	// closes or re-opens the circuit.
	breakerHalfOpen breakerState = "half-open"
)

// breaker is the per-backend circuit breaker. It is fed by the same
// outcomes the membership state machine sees — forward transport
// errors, retryable 5xx submit replies, and probe results — so a
// backend that keeps eating requests is short-circuited out of the
// submit path even between probe ticks. Reads are NOT gated: a
// namespaced job id has exactly one home, and converting its slow
// failure into a fast one would also fail the drain-reconciliation
// reads a departing node still answers.
type breaker struct {
	clk       clock.Clock
	faults    *faultinject.Registry
	threshold int
	cooldown  time.Duration
	onOpen    counterFunc

	mu    sync.Mutex
	nodes map[string]*breakerNode
}

type breakerNode struct {
	state       breakerState
	consecFails int
	openedAt    time.Time
	// trialInFlight marks the single half-open probe slot as taken.
	trialInFlight bool
}

func newBreaker(clk clock.Clock, faults *faultinject.Registry, threshold int, cooldown time.Duration) *breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &breaker{
		clk:       clk,
		faults:    faults,
		threshold: threshold,
		cooldown:  cooldown,
		onOpen:    func() {},
		nodes:     make(map[string]*breakerNode),
	}
}

func (b *breaker) add(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.nodes[name]; !ok {
		b.nodes[name] = &breakerNode{state: breakerClosed}
	}
}

func (b *breaker) remove(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.nodes, name)
}

// allow reports whether a submit may be sent to the node right now,
// consuming the half-open trial slot when it grants one. The
// FaultBreaker point lets the chaos suite force a denial.
func (b *breaker) allow(name string) bool {
	if err := b.faults.Fire(FaultBreaker); err != nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	bn, ok := b.nodes[name]
	if !ok {
		return true
	}
	switch bn.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.clk.Since(bn.openedAt) < b.cooldown {
			return false
		}
		bn.state = breakerHalfOpen
		bn.trialInFlight = true
		return true
	default: // half-open
		if bn.trialInFlight {
			return false
		}
		bn.trialInFlight = true
		return true
	}
}

// available is the non-consuming form of allow, for building candidate
// orders without burning half-open trial slots on nodes that are never
// actually tried.
func (b *breaker) available(name string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	bn, ok := b.nodes[name]
	if !ok {
		return true
	}
	switch bn.state {
	case breakerClosed:
		return true
	case breakerOpen:
		return b.clk.Since(bn.openedAt) >= b.cooldown
	default:
		return !bn.trialInFlight
	}
}

// success records a good outcome (forward succeeded, or a probe
// reached the backend): the circuit closes and the failure count
// resets.
func (b *breaker) success(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	bn, ok := b.nodes[name]
	if !ok {
		return
	}
	bn.state = breakerClosed
	bn.consecFails = 0
	bn.trialInFlight = false
}

// probeSuccess records a good outcome observed by a membership probe
// rather than a real forward. While a half-open trial is in flight it
// must NOT close the circuit: the trial slot was granted to exactly one
// forwarded request, and letting a concurrent probe (or a second racing
// request) close the circuit early would admit a second probe through
// the half-open state — the single-flight guarantee the half-open state
// exists to provide. Outside that window it behaves like success.
func (b *breaker) probeSuccess(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	bn, ok := b.nodes[name]
	if !ok {
		return
	}
	if bn.state == breakerHalfOpen && bn.trialInFlight {
		bn.consecFails = 0
		return
	}
	bn.state = breakerClosed
	bn.consecFails = 0
	bn.trialInFlight = false
}

// failure records a bad outcome; threshold consecutive failures open
// the circuit, and a failed half-open trial re-opens it immediately.
func (b *breaker) failure(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	bn, ok := b.nodes[name]
	if !ok {
		return
	}
	bn.consecFails++
	switch bn.state {
	case breakerHalfOpen:
		bn.state = breakerOpen
		bn.openedAt = b.clk.Now()
		bn.trialInFlight = false
		b.onOpen()
	case breakerClosed:
		if bn.consecFails >= b.threshold {
			bn.state = breakerOpen
			bn.openedAt = b.clk.Now()
			b.onOpen()
		}
	}
}

// stateOf reports the node's circuit position for health snapshots.
func (b *breaker) stateOf(name string) breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if bn, ok := b.nodes[name]; ok {
		return bn.state
	}
	return breakerClosed
}
