package gateway

import "sort"

// The gateway's metric-name registry: every key its /metrics document
// adds beyond the aggregated backend counters is a constant here, and
// thermlint's metrickeys analyzer rejects emission sites that spell a
// key any other way (the same contract internal/server keeps — see
// that package's metricnames.go).
//
// The aggregated document's backend-derived sections (jobs.*, cache.*,
// queue.*, ...) keep the backend wire names verbatim: they are summed
// pass-through values, and the fleet-wide accounting identity
// (submitted == hits+completed+failed+canceled+rejected) must
// reconcile against the same keys chaosCheck already reads.
//
// The fleet-wide accounting identity survives aggregation only if the
// merge is a structural sum: every numeric leaf combined with +, no
// key treated specially. thermlint's acctid analyzer enforces exactly
// that over the //thermlint:metricsmerge-marked merge function — the
// declared keys are the identity's leaves as the nested wire documents
// spell them.
//
//thermlint:identity merge: submitted = hits + completed + failed + canceled + rejected + migrated
//thermlint:metricnames
const (
	// metricSectionGateway holds the gateway's own counters.
	metricSectionGateway = "gateway"
	// metricSectionBackends holds the per-backend membership snapshot.
	metricSectionBackends = "backends"
	// metricKeyPartial marks an aggregation that is missing at least
	// one backend's contribution (scatter-gather timeout or error).
	metricKeyPartial = "partial"

	// Leaf keys inside the gateway section.
	metricProxied          = "proxied"
	metricSubmitsRouted    = "submits_routed"
	metricSpills           = "spills"
	metricFailovers        = "failovers"
	metricRetries          = "forward_retries"
	metricBackendErrors    = "backend_errors"
	metricScatterPartials  = "scatter_partials"
	metricProbes           = "probes"
	metricProbeFailures    = "probe_failures"
	metricBackendsTotal    = "backends_total"
	metricBackendsRoutable = "backends_routable"

	// Resilience-layer leaf keys: hedging, the retry budget, circuit
	// breakers, and live ring membership.
	metricHedgesFired     = "hedges_fired"
	metricHedgesWon       = "hedges_won"
	metricHedgesWasted    = "hedges_wasted"
	metricHedgeCancels    = "hedge_cancels"
	metricBudgetExhausted = "retry_budget_exhausted"
	metricRetryBackoffMs  = "retry_backoff_ms"
	metricBreakerOpens    = "breaker_opens"
	metricBreakerDenied   = "breaker_denied"
	metricRingEpoch       = "ring_epoch"
	metricNodesAdded      = "nodes_added"
	metricNodesRemoved    = "nodes_removed"
	metricNodesDrained    = "nodes_drained"

	// Failover-layer leaf keys: successor takeover, drain-time job
	// migration, and the alias table that reroutes adopted job ids.
	metricTakeovers         = "takeovers"
	metricMigrations        = "migrations"
	metricFailoverDedupHits = "failover_dedup_hits"
	metricAliasesActive     = "aliases_active"
)

// MetricNames returns the keys the gateway's aggregated /metrics
// document adds beyond the summed backend keys, in the flattened
// dotted namespace ("gateway.proxied", "backends", "partial"), sorted.
// The top-level backend_errors sub-document is deliberately absent: it
// is emitted only when a scatter-gather came back partial. Together
// with server.MetricNames this is the fleet's complete metric
// namespace, and metricnames_union_test pins the union to a live herd.
func MetricNames() []string {
	leaves := []string{
		metricProxied,
		metricSubmitsRouted,
		metricSpills,
		metricFailovers,
		metricRetries,
		metricBackendErrors,
		metricScatterPartials,
		metricProbes,
		metricProbeFailures,
		metricBackendsTotal,
		metricBackendsRoutable,
		metricHedgesFired,
		metricHedgesWon,
		metricHedgesWasted,
		metricHedgeCancels,
		metricBudgetExhausted,
		metricRetryBackoffMs,
		metricBreakerOpens,
		metricBreakerDenied,
		metricRingEpoch,
		metricNodesAdded,
		metricNodesRemoved,
		metricNodesDrained,
		metricTakeovers,
		metricMigrations,
		metricFailoverDedupHits,
		metricAliasesActive,
	}
	names := []string{metricSectionBackends, metricKeyPartial}
	for _, leaf := range leaves {
		names = append(names, metricSectionGateway+"."+leaf)
	}
	sort.Strings(names)
	return names
}
