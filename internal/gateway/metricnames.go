package gateway

// The gateway's metric-name registry: every key its /metrics document
// adds beyond the aggregated backend counters is a constant here, and
// thermlint's metrickeys analyzer rejects emission sites that spell a
// key any other way (the same contract internal/server keeps — see
// that package's metricnames.go).
//
// The aggregated document's backend-derived sections (jobs.*, cache.*,
// queue.*, ...) keep the backend wire names verbatim: they are summed
// pass-through values, and the fleet-wide accounting identity
// (submitted == hits+completed+failed+canceled+rejected) must
// reconcile against the same keys chaosCheck already reads.
//
//thermlint:metricnames
const (
	// metricSectionGateway holds the gateway's own counters.
	metricSectionGateway = "gateway"
	// metricSectionBackends holds the per-backend membership snapshot.
	metricSectionBackends = "backends"
	// metricKeyPartial marks an aggregation that is missing at least
	// one backend's contribution (scatter-gather timeout or error).
	metricKeyPartial = "partial"

	// Leaf keys inside the gateway section.
	metricProxied          = "proxied"
	metricSubmitsRouted    = "submits_routed"
	metricSpills           = "spills"
	metricFailovers        = "failovers"
	metricRetries          = "forward_retries"
	metricBackendErrors    = "backend_errors"
	metricScatterPartials  = "scatter_partials"
	metricProbes           = "probes"
	metricProbeFailures    = "probe_failures"
	metricBackendsTotal    = "backends_total"
	metricBackendsRoutable = "backends_routable"

	// Resilience-layer leaf keys: hedging, the retry budget, circuit
	// breakers, and live ring membership.
	metricHedgesFired     = "hedges_fired"
	metricHedgesWon       = "hedges_won"
	metricHedgesWasted    = "hedges_wasted"
	metricHedgeCancels    = "hedge_cancels"
	metricBudgetExhausted = "retry_budget_exhausted"
	metricRetryBackoffMs  = "retry_backoff_ms"
	metricBreakerOpens    = "breaker_opens"
	metricBreakerDenied   = "breaker_denied"
	metricRingEpoch       = "ring_epoch"
	metricNodesAdded      = "nodes_added"
	metricNodesRemoved    = "nodes_removed"
	metricNodesDrained    = "nodes_drained"
)
