package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"thermalherd/internal/server"
	"thermalherd/internal/trace"
)

// backendHandle is one real thermherdd node under test.
type backendHandle struct {
	name string
	srv  *server.Server
	ts   *httptest.Server
}

func startBackend(t *testing.T, name string) *backendHandle {
	t.Helper()
	s, err := server.New(server.Config{Workers: 2, QueueDepth: 64, CacheSize: 64})
	if err != nil {
		t.Fatalf("server.New(%s): %v", name, err)
	}
	s.Start()
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return &backendHandle{name: name, srv: s, ts: ts}
}

// startHerd builds n real backends behind one gateway.
func startHerd(t *testing.T, n int) (*Gateway, *httptest.Server, []*backendHandle) {
	t.Helper()
	handles := make([]*backendHandle, n)
	backends := make([]Backend, n)
	for i := 0; i < n; i++ {
		handles[i] = startBackend(t, fmt.Sprintf("n%d", i))
		backends[i] = Backend{Name: handles[i].name, URL: handles[i].ts.URL}
	}
	g, err := New(Config{Backends: backends, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	g.Start()
	ts := httptest.NewServer(g)
	t.Cleanup(func() {
		ts.Close()
		g.Close()
	})
	return g, ts, handles
}

// quickSpec is a timing job fast enough for tests to run to done.
func quickSpec(workload string) string {
	return fmt.Sprintf(`{"kind":"timing","workload":%q,"config":"TH","depths":{"fast_forward":200,"warmup":100,"measure":200}}`, workload)
}

func quickSpecHash(t *testing.T, workload string) string {
	t.Helper()
	var spec server.Spec
	if err := json.Unmarshal([]byte(quickSpec(workload)), &spec); err != nil {
		t.Fatalf("unmarshal spec: %v", err)
	}
	h, err := spec.CanonicalHash()
	if err != nil {
		t.Fatalf("CanonicalHash: %v", err)
	}
	return h
}

// workloadHomedOn finds a suite workload whose quick-spec hash the
// gateway's ring homes on the named node.
func workloadHomedOn(t *testing.T, g *Gateway, node string) string {
	t.Helper()
	for _, p := range trace.Suite() {
		if g.ring.Lookup(quickSpecHash(t, p.Name)) == node {
			return p.Name
		}
	}
	t.Fatalf("no suite workload homes on %s", node)
	return ""
}

func postJSON(t *testing.T, url, body string, header map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode GET %s: %v", url, err)
		}
	}
	return resp
}

func submitVia(t *testing.T, gwURL, body string, header map[string]string) server.Status {
	t.Helper()
	resp, raw := postJSON(t, gwURL+"/v1/jobs", body, header)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, raw)
	}
	var st server.Status
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("decode submit reply: %v (%s)", err, raw)
	}
	return st
}

func waitDone(t *testing.T, gwURL, gid string) server.Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st server.Status
		getJSON(t, gwURL+"/v1/jobs/"+gid, &st)
		switch st.State {
		case server.StateDone:
			return st
		case server.StateFailed, server.StateCanceled:
			t.Fatalf("job %s settled %s: %s", gid, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished (last state %s)", gid, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// metricAt walks a nested /metrics document by dotted path.
func metricAt(t *testing.T, doc map[string]any, path string) float64 {
	t.Helper()
	cur := any(doc)
	for _, part := range strings.Split(path, ".") {
		m, ok := cur.(map[string]any)
		if !ok {
			t.Fatalf("metric path %s: %T is not a map", path, cur)
		}
		cur = m[part]
	}
	f, ok := cur.(float64)
	if !ok {
		t.Fatalf("metric path %s: %T is not a number", path, cur)
	}
	return f
}

func fetchMetrics(t *testing.T, baseURL string) map[string]any {
	t.Helper()
	var doc map[string]any
	getJSON(t, baseURL+"/metrics", &doc)
	return doc
}

// TestGatewayCacheAffinity is the headline acceptance property: the
// same spec submitted twice through a 3-node herd routes to the same
// backend both times, and the second submission is that backend's
// cache hit — verified against each backend's own /metrics.
func TestGatewayCacheAffinity(t *testing.T) {
	g, ts, handles := startHerd(t, 3)
	workload := workloadHomedOn(t, g, "n1") // any fixed node; n1 keeps the test deterministic
	body := quickSpec(workload)

	st1 := submitVia(t, ts.URL, body, nil)
	if _, node, ok := splitID(st1.ID); !ok || node != "n1" {
		t.Fatalf("first submit landed on %q (id %s), ring says home is n1", node, st1.ID)
	}
	if want := quickSpecHash(t, workload); st1.SpecHash != want {
		t.Fatalf("submit reply spec_hash = %q, want %q", st1.SpecHash, want)
	}
	waitDone(t, ts.URL, st1.ID)

	st2 := submitVia(t, ts.URL, body, nil)
	_, node2, _ := splitID(st2.ID)
	if node2 != "n1" {
		t.Fatalf("second submit landed on %q, want the same home n1", node2)
	}
	if !st2.FromCache {
		t.Fatalf("second submit of an identical spec not served from cache: %+v", st2)
	}

	for _, h := range handles {
		doc := fetchMetrics(t, h.ts.URL)
		submitted := metricAt(t, doc, "jobs.submitted")
		hits := metricAt(t, doc, "cache.hits")
		if h.name == "n1" {
			if submitted != 2 || hits != 1 {
				t.Fatalf("home backend %s: submitted=%v hits=%v, want 2 and 1", h.name, submitted, hits)
			}
		} else if submitted != 0 {
			t.Fatalf("backend %s saw %v submissions, want 0 (affinity broken)", h.name, submitted)
		}
	}
}

// TestGatewayIdempotencyKeyForward: the client's Idempotency-Key rides
// the proxy hop, so a retried submission dedupes on the home backend
// and returns the original (namespaced) job id.
func TestGatewayIdempotencyKeyForward(t *testing.T) {
	g, ts, handles := startHerd(t, 3)
	workload := workloadHomedOn(t, g, "n0")
	hdr := map[string]string{"Idempotency-Key": "retry-me"}

	st1 := submitVia(t, ts.URL, quickSpec(workload), hdr)
	st2 := submitVia(t, ts.URL, quickSpec(workload), hdr)
	if st1.ID != st2.ID {
		t.Fatalf("idempotent resubmission minted a new id: %s vs %s", st1.ID, st2.ID)
	}
	doc := fetchMetrics(t, handles[0].ts.URL)
	if deduped := metricAt(t, doc, "jobs.deduped"); deduped != 1 {
		t.Fatalf("home backend deduped=%v, want 1", deduped)
	}
}

// TestGatewayResultAndCancelRouting: namespaced ids route status,
// result, and cancel to the minting backend; malformed or unknown ids
// are a clean 404.
func TestGatewayResultAndCancelRouting(t *testing.T) {
	g, ts, _ := startHerd(t, 3)
	workload := workloadHomedOn(t, g, "n2")
	st := submitVia(t, ts.URL, quickSpec(workload), nil)
	waitDone(t, ts.URL, st.ID)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	var result map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&result); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(result) == 0 {
		t.Fatalf("result: HTTP %d with %d keys, want 200 with payload", resp.StatusCode, len(result))
	}

	for _, bad := range []string{"no-separator", "job-000001@ghost", "@n0", "job-000001@"} {
		resp := getJSON(t, ts.URL+"/v1/jobs/"+bad, nil)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %q: HTTP %d, want 404", bad, resp.StatusCode)
		}
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	dresp.Body.Close()
	// The job is already done; the backend's 409 must relay untouched.
	if dresp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel of done job: HTTP %d, want 409", dresp.StatusCode)
	}
}

// TestGatewayListScatterGather: GET /v1/jobs merges every backend's
// jobs with namespaced ids, a fleet-wide total, and working
// pagination.
func TestGatewayListScatterGather(t *testing.T) {
	_, ts, _ := startHerd(t, 3)
	workloads := []string{"bitcount", "mcf", "gzip"}
	ids := make(map[string]bool)
	for _, wl := range workloads {
		st := submitVia(t, ts.URL, quickSpec(wl), nil)
		ids[st.ID] = true
	}

	var doc ListDoc
	getJSON(t, ts.URL+"/v1/jobs?limit=500", &doc)
	if doc.Total != len(workloads) || len(doc.Jobs) != len(workloads) {
		t.Fatalf("list total=%d jobs=%d, want %d", doc.Total, len(doc.Jobs), len(workloads))
	}
	if doc.Partial {
		t.Fatalf("list partial=true with all backends up: %+v", doc.BackendErrors)
	}
	for _, st := range doc.Jobs {
		if !ids[st.ID] {
			t.Fatalf("list returned unknown id %q (want namespaced ids %v)", st.ID, ids)
		}
	}

	var page ListDoc
	getJSON(t, ts.URL+"/v1/jobs?limit=2", &page)
	if len(page.Jobs) != 2 || page.NextOffset == nil || *page.NextOffset != 2 {
		t.Fatalf("page 1: %d jobs, next=%v; want 2 jobs with next_offset 2", len(page.Jobs), page.NextOffset)
	}
	var page2 ListDoc
	getJSON(t, ts.URL+"/v1/jobs?limit=2&offset=2", &page2)
	if len(page2.Jobs) != 1 || page2.NextOffset != nil {
		t.Fatalf("page 2: %d jobs, next=%v; want 1 job and no next_offset", len(page2.Jobs), page2.NextOffset)
	}
	if page.Jobs[0].ID == page2.Jobs[0].ID {
		t.Fatalf("pagination repeated id %s", page.Jobs[0].ID)
	}
}

// TestGatewayMetricsAggregation: the fleet /metrics document sums the
// backends' counters (the accounting identity reconciles herd-wide)
// and carries the gateway's own sections.
func TestGatewayMetricsAggregation(t *testing.T) {
	_, ts, handles := startHerd(t, 3)
	for _, wl := range []string{"bitcount", "mcf", "gzip", "crc32"} {
		st := submitVia(t, ts.URL, quickSpec(wl), nil)
		waitDone(t, ts.URL, st.ID)
	}

	doc := fetchMetrics(t, ts.URL)
	if got := metricAt(t, doc, "jobs.submitted"); got != 4 {
		t.Fatalf("aggregated jobs.submitted = %v, want 4", got)
	}
	var perBackend float64
	for _, h := range handles {
		perBackend += metricAt(t, fetchMetrics(t, h.ts.URL), "jobs.submitted")
	}
	if perBackend != 4 {
		t.Fatalf("per-backend submitted sum = %v, want 4", perBackend)
	}
	identity := metricAt(t, doc, "cache.hits") + metricAt(t, doc, "jobs.completed") +
		metricAt(t, doc, "jobs.failed") + metricAt(t, doc, "jobs.canceled") + metricAt(t, doc, "jobs.rejected")
	if got := metricAt(t, doc, "jobs.submitted"); got != identity {
		t.Fatalf("fleet accounting identity broken: submitted=%v, hits+terminal=%v", got, identity)
	}

	if got := metricAt(t, doc, "gateway.submits_routed"); got != 4 {
		t.Fatalf("gateway.submits_routed = %v, want 4", got)
	}
	if got := metricAt(t, doc, "gateway.backends_routable"); got != 3 {
		t.Fatalf("gateway.backends_routable = %v, want 3", got)
	}
	if partial, ok := doc["partial"].(bool); !ok || partial {
		t.Fatalf("partial = %v, want false", doc["partial"])
	}
	backends, ok := doc["backends"].([]any)
	if !ok || len(backends) != 3 {
		t.Fatalf("backends section = %T (%v), want 3 entries", doc["backends"], doc["backends"])
	}
}

// TestGatewayFailover: a dead backend's shard fails over to its ring
// successor — first via the submit path's suspect-and-retry, then
// directly once membership has ejected the node — while other shards
// keep their homes.
func TestGatewayFailover(t *testing.T) {
	g, ts, handles := startHerd(t, 3)
	victim := handles[1]
	victimWL := workloadHomedOn(t, g, victim.name)
	survivorWL := workloadHomedOn(t, g, "n0")
	expectedFailover := g.ring.Successors(quickSpecHash(t, victimWL), 3)[1]

	victim.ts.Close() // connections now refused

	st := submitVia(t, ts.URL, quickSpec(victimWL), nil)
	_, node, _ := splitID(st.ID)
	if node != expectedFailover {
		t.Fatalf("failover landed on %q, want deterministic successor %q", node, expectedFailover)
	}
	if g.metrics.forwardRetries.Load() == 0 {
		t.Fatal("submit succeeded without recording a forward retry against the dead home")
	}

	// Let membership observe the death, then routing skips the node
	// outright (failover without a failed first hop).
	for i := 0; i < 3; i++ {
		g.ProbeNow()
	}
	if got := g.members.state(victim.name); got != NodeDown {
		t.Fatalf("victim state after probes = %s, want down", got)
	}
	before := g.metrics.failovers.Load()
	st2 := submitVia(t, ts.URL, quickSpec(victimWL), nil)
	if _, node2, _ := splitID(st2.ID); node2 != expectedFailover {
		t.Fatalf("post-ejection submit landed on %q, want %q", node2, expectedFailover)
	}
	if g.metrics.failovers.Load() <= before {
		t.Fatal("post-ejection submit did not count a failover")
	}

	// A shard homed on a surviving node is untouched by the ejection.
	st3 := submitVia(t, ts.URL, quickSpec(survivorWL), nil)
	if _, node3, _ := splitID(st3.ID); node3 != "n0" {
		t.Fatalf("surviving shard moved to %q, want n0", node3)
	}

	// Scatter-gather degrades to a partial result, not an error.
	doc := fetchMetrics(t, ts.URL)
	if partial, _ := doc["partial"].(bool); !partial {
		t.Fatal("fleet /metrics with a dead backend should be marked partial")
	}
}

// TestGatewaySpillOnBrownout: a cold spec homed on a browning-out
// backend spills to a healthy peer, while a warm spec sticks to its
// home (the cache entry is the point of affinity).
func TestGatewaySpillOnBrownout(t *testing.T) {
	fakes := make([]*fakeBackend, 3)
	backends := make([]Backend, 3)
	for i := range fakes {
		fakes[i] = newFakeBackend(t)
		backends[i] = Backend{Name: fmt.Sprintf("n%d", i), URL: fakes[i].ts.URL}
	}
	g, err := New(Config{Backends: backends, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	ts := httptest.NewServer(g)
	t.Cleanup(func() {
		ts.Close()
		g.Close()
	})

	workload := workloadHomedOn(t, g, "n1")
	hash := quickSpecHash(t, workload)
	fakes[1].set(false, "brownout", "")
	g.ProbeNow()
	if got := g.members.state("n1"); got != NodeBrownout {
		t.Fatalf("home state = %s, want brownout", got)
	}

	st := submitVia(t, ts.URL, quickSpec(workload), nil)
	_, node, _ := splitID(st.ID)
	if node == "n1" {
		t.Fatal("cold spec routed to its browning-out home; want a spill to a healthy peer")
	}
	if g.metrics.spills.Load() != 1 {
		t.Fatalf("spills = %d, want 1", g.metrics.spills.Load())
	}

	// Mark the hash warm on its home and resubmit: affinity wins.
	g.warm.add(hash)
	before := fakes[1].submitCount()
	st2 := submitVia(t, ts.URL, quickSpec(workload), nil)
	if _, node2, _ := splitID(st2.ID); node2 != "n1" {
		t.Fatalf("warm spec spilled to %q, want its home n1", node2)
	}
	if fakes[1].submitCount() != before+1 {
		t.Fatal("home backend did not receive the warm submit")
	}
}

// TestGatewayBatchSplit: a batch fans out to each spec's home shard
// and reassembles in order; resubmitting with the same idempotency
// keys returns the same namespaced ids.
func TestGatewayBatchSplit(t *testing.T) {
	g, ts, _ := startHerd(t, 3)
	workloads := []string{"bitcount", "mcf", "gzip", "crc32"}
	req := server.BatchRequest{IdempotencyKeys: make([]string, len(workloads))}
	for i, wl := range workloads {
		var spec server.Spec
		if err := json.Unmarshal([]byte(quickSpec(wl)), &spec); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		req.Jobs = append(req.Jobs, spec)
		req.IdempotencyKeys[i] = fmt.Sprintf("batch-%d", i)
	}
	payload, _ := json.Marshal(req)

	submit := func() server.BatchResponse {
		resp, raw := postJSON(t, ts.URL+"/v1/jobs:batch", string(payload), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch: HTTP %d: %s", resp.StatusCode, raw)
		}
		var br server.BatchResponse
		if err := json.Unmarshal(raw, &br); err != nil {
			t.Fatalf("decode batch: %v", err)
		}
		return br
	}

	br := submit()
	if len(br.Jobs) != len(workloads) {
		t.Fatalf("batch returned %d items, want %d", len(br.Jobs), len(workloads))
	}
	for i, item := range br.Jobs {
		if item.Status == nil {
			t.Fatalf("item %d failed: %s (code %d)", i, item.Error, item.Code)
		}
		_, node, ok := splitID(item.Status.ID)
		if !ok {
			t.Fatalf("item %d id %q not namespaced", i, item.Status.ID)
		}
		if home := g.ring.Lookup(quickSpecHash(t, workloads[i])); node != home {
			t.Fatalf("item %d (workload %s) landed on %s, ring home is %s", i, workloads[i], node, home)
		}
	}

	br2 := submit()
	for i := range br.Jobs {
		if br2.Jobs[i].Status == nil || br2.Jobs[i].Status.ID != br.Jobs[i].Status.ID {
			t.Fatalf("item %d: idempotent batch resubmit changed id", i)
		}
	}
}

// TestGatewayReadyz: ready while any backend is routable; 503 with a
// reason once the whole herd is ejected.
func TestGatewayReadyz(t *testing.T) {
	fakes := make([]*fakeBackend, 2)
	backends := make([]Backend, 2)
	for i := range fakes {
		fakes[i] = newFakeBackend(t)
		backends[i] = Backend{Name: fmt.Sprintf("n%d", i), URL: fakes[i].ts.URL}
	}
	g, err := New(Config{Backends: backends, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	ts := httptest.NewServer(g)
	t.Cleanup(func() {
		ts.Close()
		g.Close()
	})

	var doc readyDoc
	if resp := getJSON(t, ts.URL+"/readyz", &doc); resp.StatusCode != http.StatusOK || !doc.Ready {
		t.Fatalf("readyz with healthy herd: HTTP %d ready=%v", resp.StatusCode, doc.Ready)
	}
	if len(doc.Backends) != 2 {
		t.Fatalf("readyz backends = %d, want 2", len(doc.Backends))
	}

	for _, f := range fakes {
		f.set(false, "draining", "")
	}
	g.ProbeNow()
	var down readyDoc
	if resp := getJSON(t, ts.URL+"/readyz", &down); resp.StatusCode != http.StatusServiceUnavailable || down.Ready {
		t.Fatalf("readyz with drained herd: HTTP %d ready=%v, want 503 not-ready", resp.StatusCode, down.Ready)
	}
	if down.Reason == "" {
		t.Fatal("not-ready readyz carries no reason")
	}
}
