package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"thermalherd/internal/clock"
	"thermalherd/internal/faultinject"
	"thermalherd/internal/server"
)

// Fault points threaded through the gateway's hot paths; arm them on a
// faultinject.Registry passed via Config.Faults. All are no-ops when
// the registry is nil or disarmed.
//
//thermlint:faultpoints
const (
	// FaultForward fires before a request is proxied to a backend: an
	// error action simulates the backend being down (the forward fails
	// and the submit path fails over to the next ring successor), a
	// delay action stretches the proxy hop.
	FaultForward = "gw.forward"
	// FaultProbe fires before a membership health probe: a delay action
	// is a slow probe (the round takes longer; under a short probe
	// timeout the backend looks dead), an error action fails the probe
	// outright — threshold consecutive failures eject the backend.
	FaultProbe = "gw.probe"
	// FaultSplitBrain fires after a successful probe response: an error
	// action discards it, so this gateway's membership view diverges
	// from the backend's actual state — a one-sided split-brain.
	FaultSplitBrain = "gw.splitbrain"
	// FaultStraggler fires before a non-DELETE forward to the
	// lexically-last ring node: a delay action turns exactly one
	// backend into a deterministic straggler — the scenario request
	// hedging exists to absorb. Probes are not affected (the straggler
	// stays "healthy"; that is what makes it dangerous).
	FaultStraggler = "gw.straggler"
	// FaultHedge fires when the hedge timer expires, just before the
	// second attempt launches: an error action suppresses the hedge, a
	// delay action stretches it.
	FaultHedge = "gw.hedge"
	// FaultBreaker fires inside every circuit-breaker admission check:
	// an error action forces a denial, simulating a wrongly-open
	// breaker.
	FaultBreaker = "gw.breaker"
	// FaultAdmin fires at the top of every admin-API operation: an
	// error action fails it after authentication, before any topology
	// mutation.
	FaultAdmin = "gw.admin"
	// FaultTakeover fires when a takeover is about to run — after the
	// deadline decision, before the successor is asked to adopt. An
	// error action suppresses the takeover (the dead node stays ejected
	// but unadopted), a delay action stretches the unavailability
	// window the chaos suite measures.
	FaultTakeover = "repl.takeover"
)

// Config sizes the gateway.
type Config struct {
	// Backends is the static node set the ring is built over; at least
	// one is required. Names must be unique, non-empty, and free of the
	// '@' id-separator.
	Backends []Backend
	// VNodes is the virtual-node count per backend on the hash ring;
	// 0 means DefaultVNodes.
	VNodes int
	// ProbeInterval spaces membership health probes; 0 means 1s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds each /readyz probe; 0 means 500ms.
	ProbeTimeout time.Duration
	// FailThreshold is how many consecutive probe failures eject a
	// backend as down; 0 means 3.
	FailThreshold int
	// ScatterTimeout bounds each backend's leg of a scatter-gather
	// (GET /v1/jobs, /metrics); 0 means 2s. A leg that misses it is
	// accounted as a partial result, never a stalled response.
	ScatterTimeout time.Duration
	// ForwardAttempts bounds how many backends one submit may try
	// (first choice plus failovers); 0 means 2.
	ForwardAttempts int
	// Faults is the chaos-testing fault-injection registry; nil (the
	// production default) costs one atomic load per fault point.
	Faults *faultinject.Registry
	// Clock supplies membership timing; nil means the wall clock.
	Clock clock.Clock

	// Hedge enables request hedging: idempotent reads and
	// Idempotency-Key-bearing submits get a second attempt after the
	// per-route p95 hedge delay, first response wins.
	Hedge bool
	// HedgeMin / HedgeMax clamp the estimator-driven hedge delay;
	// 0 means 5ms / 100ms. The max clamp is what keeps hedging useful
	// when a straggler is common enough to drag the p95 itself.
	HedgeMin time.Duration
	HedgeMax time.Duration
	// RetryBudgetRatio is the token-bucket deposit per base request
	// (0 means 0.1: retries+hedges bounded to ~10% of base traffic);
	// RetryBudgetBurst is the bucket capacity (0 means 10).
	RetryBudgetRatio float64
	RetryBudgetBurst float64
	// BreakerThreshold consecutive forward/probe failures open a
	// backend's circuit (0 means 5); BreakerCooldown is how long it
	// stays open before a half-open trial (0 means 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// AdminToken authorizes the /v1/admin/nodes API (Bearer token);
	// empty leaves the admin API disabled.
	AdminToken string
	// FlapWindow / FlapFlips / FlapCooldown tune membership flap
	// damping: FlapFlips routability changes within FlapWindow hold a
	// node suspect for FlapCooldown. Zero values mean 10s / 3 / 5s.
	FlapWindow   time.Duration
	FlapFlips    int
	FlapCooldown time.Duration
	// TakeoverAfter arms failover: a backend that has sat in NodeDown
	// this long is taken over — its ring successor is told to adopt the
	// replica journal it streamed, an alias routes the dead node's job
	// ids to the successor, and the dead node leaves the ring. Zero
	// (the default) disables takeover entirely; acked jobs on a dead
	// node then stay unreachable until it returns, exactly the
	// pre-replication behavior.
	TakeoverAfter time.Duration
}

// Gateway is the herd front door: an http.Handler exposing the same
// API surface as one thermherdd node, backed by N of them. Create one
// with New, launch the membership prober with Start, and stop it with
// Close.
type Gateway struct {
	cfg     Config
	members *membership
	mux     *http.ServeMux
	hc      *http.Client
	metrics *gwMetrics
	warm    *warmSet
	breaker *breaker
	hedger  *hedger
	budget  *retryBudget

	// epoch counts topology generations: 1 after the initial build,
	// bumped on every admin add/remove. Routing decisions inside one
	// request all read the same generation because they take topo once.
	epoch atomic.Uint64

	// topo guards the mutable topology below: the ring, the name
	// tables, and the per-backend in-flight counters. Request paths
	// take it shared; only the admin API takes it exclusive.
	topo sync.RWMutex
	ring *Ring
	// byName maps active backends; removed holds tombstones for nodes
	// deleted via the admin API, so <id>@<node> reads minted before the
	// removal still route while the process lives.
	byName  map[string]Backend
	removed map[string]Backend
	// inflight tracks per-backend submits in flight; the
	// power-of-two-choices spill reads it to pick the less-loaded of
	// two candidates.
	inflight map[string]*atomic.Int64
	// lastNode caches the lexically-last ring node: the deterministic
	// FaultStraggler target, recomputed on topology change.
	lastNode string
	// aliases routes a taken-over node's job ids: aliases[dead] names
	// the successor now serving <id>@<dead> (under its local id
	// "<id>@<dead>"). Chains form when a successor itself dies before
	// the aliased ids age out. Guarded by topo.
	aliases map[string]string

	// takeover single-flight state: one adoption per dead node, run on
	// a goroutine the gateway Close waits out.
	takeoverMu sync.Mutex
	takingOver map[string]bool
	takeoverWG sync.WaitGroup
}

// New builds a gateway; call Start before serving requests.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("gateway: no backends configured")
	}
	if cfg.ForwardAttempts <= 0 {
		cfg.ForwardAttempts = 2
	}
	if cfg.ScatterTimeout <= 0 {
		cfg.ScatterTimeout = 2 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real()
	}
	g := &Gateway{
		cfg:        cfg,
		ring:       NewRing(cfg.VNodes),
		mux:        http.NewServeMux(),
		hc:         &http.Client{},
		metrics:    &gwMetrics{},
		warm:       newWarmSet(8192),
		hedger:     newHedger(cfg.HedgeMin, cfg.HedgeMax),
		budget:     newRetryBudget(cfg.RetryBudgetRatio, cfg.RetryBudgetBurst),
		inflight:   make(map[string]*atomic.Int64, len(cfg.Backends)),
		byName:     make(map[string]Backend, len(cfg.Backends)),
		removed:    make(map[string]Backend),
		aliases:    make(map[string]string),
		takingOver: make(map[string]bool),
	}
	g.breaker = newBreaker(cfg.Clock, cfg.Faults, cfg.BreakerThreshold, cfg.BreakerCooldown)
	g.breaker.onOpen = func() { g.metrics.breakerOpens.Add(1) }
	for _, b := range cfg.Backends {
		b.URL = strings.TrimRight(b.URL, "/")
		if err := validateBackend(b); err != nil {
			return nil, err
		}
		if _, dup := g.byName[b.Name]; dup {
			return nil, fmt.Errorf("gateway: duplicate backend name %q", b.Name)
		}
		g.byName[b.Name] = b
		g.ring.Add(b.Name)
		g.inflight[b.Name] = &atomic.Int64{}
		g.breaker.add(b.Name)
	}
	g.recomputeLastLocked()
	g.epoch.Store(1)
	g.members = newMembership(cfg.Backends, cfg.Clock, cfg.Faults,
		cfg.ProbeInterval, cfg.ProbeTimeout, cfg.FailThreshold)
	if cfg.FlapWindow > 0 {
		g.members.flapWindow = cfg.FlapWindow
	}
	if cfg.FlapFlips > 0 {
		g.members.flapFlips = cfg.FlapFlips
	}
	if cfg.FlapCooldown > 0 {
		g.members.flapCooldown = cfg.FlapCooldown
	}
	g.members.probes = func() { g.metrics.probes.Add(1) }
	g.members.probeFailures = func() { g.metrics.probeFailures.Add(1) }
	g.members.onProbe = func(name string, ok bool) {
		if ok {
			// Probes close the circuit only outside a half-open trial:
			// the trial slot's single-flight guarantee belongs to the one
			// forwarded request that consumed it.
			g.breaker.probeSuccess(name)
		} else {
			g.breaker.failure(name)
			g.maybeTakeover(name)
		}
	}
	g.routes()
	return g, nil
}

// validateBackend checks one backend definition; New and the admin add
// path share it so a node added at runtime meets the same contract.
func validateBackend(b Backend) error {
	if b.Name == "" || strings.Contains(b.Name, "@") {
		return fmt.Errorf("gateway: bad backend name %q (must be non-empty, without '@')", b.Name)
	}
	if b.URL == "" {
		return fmt.Errorf("gateway: backend %q has no URL", b.Name)
	}
	return nil
}

// recomputeLastLocked refreshes the cached straggler-fault target (the
// lexically-last ring node); callers hold topo exclusively or are
// still inside New.
func (g *Gateway) recomputeLastLocked() {
	nodes := g.ring.Nodes()
	g.lastNode = ""
	if len(nodes) > 0 {
		g.lastNode = nodes[len(nodes)-1]
	}
}

// Epoch returns the current topology generation.
func (g *Gateway) Epoch() uint64 { return g.epoch.Load() }

// lookupBackend resolves a node name to its backend, consulting the
// tombstones so reads routed by an old <id>@<node> still work after an
// admin removal.
func (g *Gateway) lookupBackend(node string) (Backend, bool) {
	g.topo.RLock()
	defer g.topo.RUnlock()
	if b, ok := g.byName[node]; ok {
		return b, true
	}
	b, ok := g.removed[node]
	return b, ok
}

// ringNodes snapshots the active ring membership.
func (g *Gateway) ringNodes() []string {
	g.topo.RLock()
	defer g.topo.RUnlock()
	return g.ring.Nodes()
}

// inflightOf returns the node's in-flight submit counter; a node
// removed mid-request gets a throwaway so callers never nil-deref.
func (g *Gateway) inflightOf(node string) *atomic.Int64 {
	g.topo.RLock()
	cnt, ok := g.inflight[node]
	g.topo.RUnlock()
	if !ok {
		return &atomic.Int64{}
	}
	return cnt
}

// stragglerTarget reports the deterministic FaultStraggler victim.
func (g *Gateway) stragglerTarget() string {
	g.topo.RLock()
	defer g.topo.RUnlock()
	return g.lastNode
}

// Start launches the membership probe loop.
func (g *Gateway) Start() { go g.members.run() }

// Close stops the membership probe loop and waits out any in-flight
// takeover adoptions.
func (g *Gateway) Close() {
	g.members.close()
	//thermlint:blocking -- each takeover goroutine is bounded by takeoverTimeout HTTP deadlines
	g.takeoverWG.Wait()
}

// ProbeNow runs one synchronous probe round; tests use it to advance
// membership without waiting out the probe interval.
func (g *Gateway) ProbeNow() { g.members.ProbeAll(context.Background()) }

// Backends returns the configured node health snapshot, annotated
// with each node's circuit-breaker position.
func (g *Gateway) Backends() []NodeHealth {
	snap := g.members.snapshot()
	for i := range snap {
		snap[i].Breaker = string(g.breaker.stateOf(snap[i].Name))
	}
	return snap
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mux.ServeHTTP(w, r)
}

// routes installs the HTTP endpoints, mirroring the backend API.
func (g *Gateway) routes() {
	g.route("/v1/jobs", map[string]http.HandlerFunc{
		http.MethodPost: g.handleSubmit,
		http.MethodGet:  g.handleList,
	})
	g.route("/v1/jobs:batch", map[string]http.HandlerFunc{
		http.MethodPost: g.handleSubmitBatch,
	})
	g.route("/v1/jobs/{id}", map[string]http.HandlerFunc{
		http.MethodGet:    g.handleStatus,
		http.MethodDelete: g.handleCancel,
	})
	g.route("/v1/jobs/{id}/result", map[string]http.HandlerFunc{
		http.MethodGet: g.handleResult,
	})
	g.route("/v1/workloads", map[string]http.HandlerFunc{http.MethodGet: g.handlePassthrough("/v1/workloads")})
	g.route("/v1/configs", map[string]http.HandlerFunc{http.MethodGet: g.handlePassthrough("/v1/configs")})
	g.route("/healthz", map[string]http.HandlerFunc{http.MethodGet: g.handleHealthz})
	g.route("/readyz", map[string]http.HandlerFunc{http.MethodGet: g.handleReadyz})
	g.route("/metrics", map[string]http.HandlerFunc{http.MethodGet: g.handleMetrics})
	g.route("/v1/admin/nodes", map[string]http.HandlerFunc{
		http.MethodPost: g.requireAdmin(g.handleAdminAddNode),
		http.MethodGet:  g.requireAdmin(g.handleAdminListNodes),
	})
	g.route("/v1/admin/nodes/{name}", map[string]http.HandlerFunc{
		http.MethodDelete: g.requireAdmin(g.handleAdminRemoveNode),
	})
	g.route("/v1/admin/nodes/{name}/drain", map[string]http.HandlerFunc{
		http.MethodPost: g.requireAdmin(g.handleAdminDrainNode),
	})
}

// route mirrors the backend's method-dispatch idiom: per-method
// handlers plus a catch-all JSON 405 with an Allow header.
func (g *Gateway) route(path string, handlers map[string]http.HandlerFunc) {
	methods := make([]string, 0, len(handlers)+1)
	for m, h := range handlers {
		g.mux.HandleFunc(m+" "+path, h)
		methods = append(methods, m)
		if m == http.MethodGet {
			methods = append(methods, http.MethodHead)
		}
	}
	sort.Strings(methods)
	allow := strings.Join(methods, ", ")
	g.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed on %s (allow: %s)", r.Method, path, allow)
	})
}

// globalID namespaces a backend-minted job id with its node, so the
// gateway can route the id back without keeping a table. Backends mint
// bare ids; an "@" already present means an adopted or migrated job
// living under "<id>@<origin>" — that form is globally routable as-is
// (alias and tombstone tables resolve the origin), and re-suffixing it
// would hand the client a different id than the one it acked.
func globalID(id, node string) string {
	if strings.Contains(id, "@") {
		return id
	}
	return id + "@" + node
}

// splitID undoes globalID.
func splitID(gid string) (id, node string, ok bool) {
	i := strings.LastIndex(gid, "@")
	if i <= 0 || i == len(gid)-1 {
		return "", "", false
	}
	return gid[:i], gid[i+1:], true
}

// routePlan is one submit's placement decision.
type routePlan struct {
	// order is the preference-ordered backend list: first the chosen
	// node, then failover candidates.
	order []string
	// spilled marks a cold spec spilled off a browning-out home;
	// failedOver marks a home that was ejected outright.
	spilled, failedOver bool
}

// planRoute places one spec hash. The home node (first ring successor)
// takes the job when it is healthy — and even when it is browning out,
// if the spec is warm there (its cache entry is the whole point of
// sharding by hash). A cold spec with a browning home spills via
// power-of-two-choices over the healthy successors: of the first two,
// the one with fewer gateway-tracked in-flight submits wins. An
// ejected home (down / draining / recovering) fails over to the next
// routable successor deterministically, so dedup for that shard still
// converges on a single node. A node whose circuit breaker is open is
// skipped the same way an ejected one is — the breaker trips on
// forward failures faster than probes re-classify.
func (g *Gateway) planRoute(hash string) (routePlan, error) {
	g.topo.RLock()
	defer g.topo.RUnlock()
	succ := g.ring.Successors(hash, g.ring.Len())
	if len(succ) == 0 {
		return routePlan{}, fmt.Errorf("gateway: hash ring is empty")
	}
	var routable []string
	for _, n := range succ {
		if g.members.state(n).routable() && g.breaker.available(n) {
			routable = append(routable, n)
		}
	}
	if len(routable) == 0 {
		return routePlan{}, fmt.Errorf("gateway: no routable backends (%d configured, all ejected)", len(succ))
	}
	home := succ[0]
	homeState := g.members.state(home)
	if !homeState.routable() {
		// Prefer healthy failover targets over browning-out ones.
		order := append(filterByState(g.members, routable, NodeHealthy),
			filterByState(g.members, routable, NodeBrownout)...)
		return routePlan{order: order, failedOver: true}, nil
	}
	if homeState == NodeHealthy || g.warm.has(hash) {
		return routePlan{order: moveToFront(routable, home)}, nil
	}
	// Home is browning out and the spec is cold: spill. Power of two
	// choices over the healthy successors; the home node stays in the
	// order as the last resort.
	healthy := filterByState(g.members, routable, NodeHealthy)
	if len(healthy) == 0 {
		return routePlan{order: moveToFront(routable, home)}, nil
	}
	pick := healthy[0]
	if len(healthy) >= 2 {
		a, b := healthy[0], healthy[1]
		if g.inflight[b].Load() < g.inflight[a].Load() {
			pick = b
		}
	}
	order := moveToFront(routable, pick)
	return routePlan{order: order, spilled: true}, nil
}

func filterByState(m *membership, nodes []string, want NodeState) []string {
	var out []string
	for _, n := range nodes {
		if m.state(n) == want {
			out = append(out, n)
		}
	}
	return out
}

// moveToFront returns nodes with the named node first, preserving the
// relative order of the rest.
func moveToFront(nodes []string, front string) []string {
	out := make([]string, 0, len(nodes))
	out = append(out, front)
	for _, n := range nodes {
		if n != front {
			out = append(out, n)
		}
	}
	return out
}

// warmSet remembers recently routed spec hashes so the spill logic can
// tell a warm spec (likely cached on its home node) from a cold one.
// Bounded by generation rotation: when the current generation fills,
// it becomes the previous one and lookups consult both.
type warmSet struct {
	mu       sync.Mutex
	capacity int
	cur      map[string]bool
	prev     map[string]bool
}

func newWarmSet(capacity int) *warmSet {
	if capacity <= 0 {
		capacity = 1024
	}
	return &warmSet{capacity: capacity, cur: make(map[string]bool)}
}

func (w *warmSet) add(hash string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.cur) >= w.capacity {
		w.prev = w.cur
		w.cur = make(map[string]bool, w.capacity)
	}
	w.cur[hash] = true
}

func (w *warmSet) has(hash string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.cur[hash] || w.prev[hash]
}

// errorDoc mirrors the backend's uniform error body.
type errorDoc struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorDoc{Error: fmt.Sprintf(format, args...)})
}

// specHashOf decodes and content-addresses one submission body.
func specHashOf(spec server.Spec) (string, error) {
	return spec.CanonicalHash()
}
