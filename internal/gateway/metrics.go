package gateway

import "sync/atomic"

// gwMetrics are the gateway's own counters, kept as atomics — the
// forward path is the fleet's front door and must not serialize on a
// metrics mutex.
type gwMetrics struct {
	proxied         atomic.Uint64 // requests forwarded to any backend
	submitsRouted   atomic.Uint64 // submit-shaped requests placed by the ring
	spills          atomic.Uint64 // cold submits spilled off a browning home
	failovers       atomic.Uint64 // submits rerouted off an ejected home
	forwardRetries  atomic.Uint64 // submits re-forwarded after a backend failure
	backendErrors   atomic.Uint64 // forwards that failed (transport or 5xx)
	scatterPartials atomic.Uint64 // scatter-gathers missing >= 1 backend
	probes          atomic.Uint64 // membership probes issued
	probeFailures   atomic.Uint64 // membership probes failed

	hedgesFired     atomic.Uint64 // second attempts launched
	hedgesWon       atomic.Uint64 // races the hedge attempt won
	hedgesWasted    atomic.Uint64 // races the primary won after a hedge fired
	hedgeCancels    atomic.Uint64 // losing submit attempts reaped via DELETE
	budgetExhausted atomic.Uint64 // retries/hedges refused by the retry budget
	retryBackoffMs  atomic.Uint64 // ms slept honoring backend Retry-After
	breakerOpens    atomic.Uint64 // circuit-breaker open transitions
	breakerDenied   atomic.Uint64 // submit attempts denied by an open breaker
	nodesAdded      atomic.Uint64 // backends added via the admin API
	nodesRemoved    atomic.Uint64 // backends removed via the admin API
	nodesDrained    atomic.Uint64 // backends drained via the admin API

	takeovers         atomic.Uint64 // dead backends adopted by their ring successor
	migrations        atomic.Uint64 // drain-time proactive job migrations triggered
	failoverDedupHits atomic.Uint64 // failover retries answered from a backend dedup table
}

// snapshot renders the gateway section of the /metrics document,
// keyed by the metricnames registry.
//
//thermlint:metricsdoc
func (m *gwMetrics) snapshot(total, routable, aliases int, epoch uint64) map[string]any {
	return map[string]any{
		metricProxied:          m.proxied.Load(),
		metricSubmitsRouted:    m.submitsRouted.Load(),
		metricSpills:           m.spills.Load(),
		metricFailovers:        m.failovers.Load(),
		metricRetries:          m.forwardRetries.Load(),
		metricBackendErrors:    m.backendErrors.Load(),
		metricScatterPartials:  m.scatterPartials.Load(),
		metricProbes:           m.probes.Load(),
		metricProbeFailures:    m.probeFailures.Load(),
		metricBackendsTotal:    total,
		metricBackendsRoutable: routable,
		metricHedgesFired:      m.hedgesFired.Load(),
		metricHedgesWon:        m.hedgesWon.Load(),
		metricHedgesWasted:     m.hedgesWasted.Load(),
		metricHedgeCancels:     m.hedgeCancels.Load(),
		metricBudgetExhausted:  m.budgetExhausted.Load(),
		metricRetryBackoffMs:   m.retryBackoffMs.Load(),
		metricBreakerOpens:     m.breakerOpens.Load(),
		metricBreakerDenied:    m.breakerDenied.Load(),
		metricRingEpoch:        epoch,
		metricNodesAdded:       m.nodesAdded.Load(),
		metricNodesRemoved:     m.nodesRemoved.Load(),
		metricNodesDrained:     m.nodesDrained.Load(),

		metricTakeovers:         m.takeovers.Load(),
		metricMigrations:        m.migrations.Load(),
		metricFailoverDedupHits: m.failoverDedupHits.Load(),
		metricAliasesActive:     aliases,
	}
}
