package gateway

import "sync/atomic"

// gwMetrics are the gateway's own counters, kept as atomics — the
// forward path is the fleet's front door and must not serialize on a
// metrics mutex.
type gwMetrics struct {
	proxied         atomic.Uint64 // requests forwarded to any backend
	submitsRouted   atomic.Uint64 // submit-shaped requests placed by the ring
	spills          atomic.Uint64 // cold submits spilled off a browning home
	failovers       atomic.Uint64 // submits rerouted off an ejected home
	forwardRetries  atomic.Uint64 // submits re-forwarded after a backend failure
	backendErrors   atomic.Uint64 // forwards that failed (transport or 5xx)
	scatterPartials atomic.Uint64 // scatter-gathers missing >= 1 backend
	probes          atomic.Uint64 // membership probes issued
	probeFailures   atomic.Uint64 // membership probes failed
}

// snapshot renders the gateway section of the /metrics document,
// keyed by the metricnames registry.
//
//thermlint:metricsdoc
func (m *gwMetrics) snapshot(total, routable int) map[string]any {
	return map[string]any{
		metricProxied:          m.proxied.Load(),
		metricSubmitsRouted:    m.submitsRouted.Load(),
		metricSpills:           m.spills.Load(),
		metricFailovers:        m.failovers.Load(),
		metricRetries:          m.forwardRetries.Load(),
		metricBackendErrors:    m.backendErrors.Load(),
		metricScatterPartials:  m.scatterPartials.Load(),
		metricProbes:           m.probes.Load(),
		metricProbeFailures:    m.probeFailures.Load(),
		metricBackendsTotal:    total,
		metricBackendsRoutable: routable,
	}
}
