package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"thermalherd/internal/server"
)

const (
	// raceAttemptTimeout bounds each leg of a hedged submit race. The
	// attempts are detached from the client's context (a loser must be
	// observable after the winner is relayed), so they need their own
	// deadline.
	raceAttemptTimeout = 30 * time.Second
	// reapTimeout bounds the loser-cancel DELETE.
	reapTimeout = 5 * time.Second
	// retryAfterCap bounds how long the submit failover path will
	// honor a backend's Retry-After hint.
	retryAfterCap = 2 * time.Second
)

// errAborted marks a racing attempt stopped by its sendGate before it
// hit the wire; no backend ever saw it.
var errAborted = errors.New("attempt aborted pre-send (lost the hedge race)")

// forwardResult is one backend's reply, buffered so the gateway can
// rewrite job ids before relaying it.
type forwardResult struct {
	status int
	header http.Header
	body   []byte
}

// forward proxies one request to a named backend. The FaultForward
// point fires first: an error action simulates the backend being
// unreachable without touching the wire.
func (g *Gateway) forward(ctx context.Context, node, method, path string, body []byte, header http.Header) (forwardResult, error) {
	return g.forwardGated(ctx, nil, node, method, path, body, header)
}

// forwardGated is forward with an optional sendGate for hedge races:
// the gateway-side fault delays (FaultForward, FaultStraggler) fire
// before the gate check, so a racing attempt that loses while still
// stuck in an injected delay is stopped before it ever reaches the
// backend — the deterministic pre-send window the loser-cancellation
// design leans on.
func (g *Gateway) forwardGated(ctx context.Context, gate *sendGate, node, method, path string, body []byte, header http.Header) (forwardResult, error) {
	b, ok := g.lookupBackend(node)
	if !ok {
		return forwardResult{}, fmt.Errorf("unknown backend %q", node)
	}
	if err := g.cfg.Faults.Fire(FaultForward); err != nil {
		g.metrics.backendErrors.Add(1)
		return forwardResult{}, fmt.Errorf("forward to %s: %w", node, err)
	}
	if method != http.MethodDelete && node == g.stragglerTarget() {
		// The straggler fault targets the lexically-last ring node and
		// skips DELETEs, so the loser-cancel reaper is never slowed by
		// the very straggler it is cleaning up after.
		if err := g.cfg.Faults.Fire(FaultStraggler); err != nil {
			g.metrics.backendErrors.Add(1)
			return forwardResult{}, fmt.Errorf("forward to %s: %w", node, err)
		}
	}
	if gate != nil && !gate.tryBegin() {
		return forwardResult{}, errAborted
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, b.URL+path, rd)
	if err != nil {
		return forwardResult{}, err
	}
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	g.metrics.proxied.Add(1)
	resp, err := g.hc.Do(req)
	if err != nil {
		g.metrics.backendErrors.Add(1)
		return forwardResult{}, fmt.Errorf("forward to %s: %w", node, err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		g.metrics.backendErrors.Add(1)
		return forwardResult{}, fmt.Errorf("read from %s: %w", node, err)
	}
	return forwardResult{status: resp.StatusCode, header: resp.Header, body: buf}, nil
}

// retryable reports whether a submit that got this backend status is
// safe and useful to try on the next candidate: the backend refused or
// sat behind a broken hop (draining 503, bad gateway) rather than
// judging the request itself. Brownout 429s are NOT retried — the herd
// is telling the client to back off, and hammering a peer instead
// would defeat the shed.
func retryable(status int) bool {
	return status == http.StatusServiceUnavailable ||
		status == http.StatusBadGateway ||
		status == http.StatusGatewayTimeout
}

// timedForward forwards one request and, on success, feeds the
// attempt's latency into the hedge-delay estimator for its route
// class.
func (g *Gateway) timedForward(ctx context.Context, gate *sendGate, class, node, method, path string, body []byte, header http.Header) (forwardResult, error) {
	start := g.cfg.Clock.Now()
	fr, err := g.forwardGated(ctx, gate, node, method, path, body, header)
	if err == nil {
		g.hedger.observe(class, g.cfg.Clock.Since(start))
	}
	return fr, err
}

// feedBreakerOutcome folds one forward outcome into the node's
// circuit breaker: a transport error or a retryable 5xx is a failure
// (the backend ate the request); any other reply — including a 4xx —
// proves the backend alive.
func (g *Gateway) feedBreakerOutcome(node string, status int, err error) {
	if err != nil || retryable(status) {
		g.breaker.failure(node)
		return
	}
	g.breaker.success(node)
}

// raceRead hedges one idempotent GET against the same backend: after
// the class's hedge delay a duplicate request launches, the first
// reply wins, and the loser is ctx-cancelled mid-flight (a GET has
// nothing to reap). Hedging reads to the job's own node — not a ring
// successor — is deliberate: a namespaced <id>@<node> exists on
// exactly one backend, so a successor could only ever answer 404.
func (g *Gateway) raceRead(ctx context.Context, class, node, path string) (forwardResult, error) {
	single := func() (forwardResult, error) {
		return g.timedForward(ctx, nil, class, node, http.MethodGet, path, nil, nil)
	}
	if !g.cfg.Hedge {
		return single()
	}
	delay, ok := g.hedger.delay(class)
	if !ok {
		return single()
	}
	type res struct {
		fr  forwardResult
		err error
	}
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	pch := make(chan res, 1)
	//thermlint:goroutine -- exits when the pctx-bound forward returns; pcancel is deferred and the channel is buffered
	go func() {
		fr, err := g.timedForward(pctx, nil, class, node, http.MethodGet, path, nil, nil)
		pch <- res{fr, err}
	}()
	//thermlint:blocking -- the primary attempt is ctx-bound and the timer always fires; one arm resolves
	select {
	case r := <-pch:
		return r.fr, r.err
	case <-g.cfg.Clock.After(delay):
	}
	if err := g.cfg.Faults.Fire(FaultHedge); err != nil {
		//thermlint:blocking -- the primary attempt is ctx-bound; this receive resolves when it does
		r := <-pch
		return r.fr, r.err
	}
	if !g.budget.take() {
		g.metrics.budgetExhausted.Add(1)
		//thermlint:blocking -- the primary attempt is ctx-bound; this receive resolves when it does
		r := <-pch
		return r.fr, r.err
	}
	g.metrics.hedgesFired.Add(1)
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()
	hch := make(chan res, 1)
	//thermlint:goroutine -- exits when the hctx-bound forward returns; hcancel is deferred and the channel is buffered
	go func() {
		fr, err := g.timedForward(hctx, nil, class, node, http.MethodGet, path, nil, nil)
		hch <- res{fr, err}
	}()
	var first res
	var fromHedge bool
	//thermlint:blocking -- both attempts are ctx-bound; one arm resolves
	select {
	case first = <-pch:
	case first = <-hch:
		fromHedge = true
	}
	if first.err == nil {
		if fromHedge {
			g.metrics.hedgesWon.Add(1)
		} else {
			g.metrics.hedgesWasted.Add(1)
		}
		return first.fr, nil
	}
	// The first finisher failed; the race is decided by the other leg.
	var second res
	if fromHedge {
		//thermlint:blocking -- the primary attempt is ctx-bound; this receive resolves when it does
		second = <-pch
		if second.err == nil {
			g.metrics.hedgesWasted.Add(1)
			return second.fr, nil
		}
		return second.fr, second.err // the primary's outcome
	}
	//thermlint:blocking -- the hedge attempt is ctx-bound; this receive resolves when it does
	second = <-hch
	if second.err == nil {
		g.metrics.hedgesWon.Add(1)
		return second.fr, nil
	}
	return first.fr, first.err // the primary's outcome
}

// submitRes is one leg's outcome in a hedged submit race.
type submitRes struct {
	fr  forwardResult
	err error
}

// raceSubmit races an Idempotency-Key-bearing submit between its home
// node and the ring successor: the hedge launches after the submit
// class's p95 delay, the first acceptable reply wins, and the loser is
// either stopped pre-send (its sendGate aborts it while it is still
// stuck in the gateway-side straggler delay) or reaped — awaited to
// completion on a detached context and its admitted job DELETEd, so a
// hedged submit never leaves two live copies of the job behind.
// Returns the winning reply and the node that produced it.
func (g *Gateway) raceSubmit(ctx context.Context, primary, hedgeNode string, body []byte, hdr http.Header) (forwardResult, string, error) {
	// Attempts detach from the client's context: once a submit may
	// have been admitted somewhere, the gateway must observe the
	// outcome even if the client hangs up — otherwise it could neither
	// relay nor reap the job.
	base := context.WithoutCancel(ctx)
	launch := func(node string) (*sendGate, chan submitRes) {
		gate := &sendGate{}
		actx, cancel := context.WithTimeout(base, raceAttemptTimeout)
		ch := make(chan submitRes, 1)
		cnt := g.inflightOf(node)
		cnt.Add(1)
		//thermlint:goroutine -- exits when the raceAttemptTimeout-bound forward returns; the result channel is buffered
		go func() {
			defer cancel()
			defer cnt.Add(-1)
			fr, err := g.timedForward(actx, gate, hedgeClassSubmit, node, http.MethodPost, "/v1/jobs", body, hdr)
			ch <- submitRes{fr, err}
		}()
		return gate, ch
	}
	pgate, pch := launch(primary)
	settlePrimary := func() (forwardResult, string, error) {
		//thermlint:blocking -- the attempt is deadline-bound by raceAttemptTimeout
		r := <-pch
		g.feedBreakerOutcome(primary, r.fr.status, r.err)
		return r.fr, primary, r.err
	}
	delay, ok := g.hedger.delay(hedgeClassSubmit)
	if !ok {
		return settlePrimary()
	}
	//thermlint:blocking -- the attempt is deadline-bound by raceAttemptTimeout and the timer always fires
	select {
	case r := <-pch:
		g.feedBreakerOutcome(primary, r.fr.status, r.err)
		return r.fr, primary, r.err
	case <-g.cfg.Clock.After(delay):
	}
	if err := g.cfg.Faults.Fire(FaultHedge); err != nil {
		return settlePrimary()
	}
	if !g.budget.take() {
		g.metrics.budgetExhausted.Add(1)
		return settlePrimary()
	}
	if !g.breaker.allow(hedgeNode) {
		g.metrics.breakerDenied.Add(1)
		return settlePrimary()
	}
	g.metrics.hedgesFired.Add(1)
	hgate, hch := launch(hedgeNode)

	var winner submitRes
	winNode, loserNode := primary, hedgeNode
	loserGate, loserCh := hgate, hch
	//thermlint:blocking -- both attempts are deadline-bound by raceAttemptTimeout; one arm resolves
	select {
	case winner = <-pch:
	case winner = <-hch:
		winNode, loserNode = hedgeNode, primary
		loserGate, loserCh = pgate, pch
	}
	g.feedBreakerOutcome(winNode, winner.fr.status, winner.err)
	if winner.err != nil || retryable(winner.fr.status) {
		// The first finisher failed; let the other leg decide. A failed
		// leg admitted nothing (transport errors and retryable 503s are
		// refusals), so there is nothing to reap behind it.
		//thermlint:blocking -- the attempt is deadline-bound by raceAttemptTimeout
		second := <-loserCh
		g.feedBreakerOutcome(loserNode, second.fr.status, second.err)
		if second.err == nil && !retryable(second.fr.status) {
			if loserNode == hedgeNode {
				g.metrics.hedgesWon.Add(1)
			} else {
				g.metrics.hedgesWasted.Add(1)
			}
			return second.fr, loserNode, nil
		}
		// Both legs failed: report the primary's outcome so the caller's
		// failover loop sees the same thing an unhedged attempt would.
		if winNode == primary {
			return winner.fr, primary, winner.err
		}
		return second.fr, primary, second.err
	}
	if winNode == hedgeNode {
		g.metrics.hedgesWon.Add(1)
	} else {
		g.metrics.hedgesWasted.Add(1)
	}
	if !loserGate.abort() {
		// The loser is already on the wire; reap it off the request path.
		//thermlint:goroutine -- the losing attempt and its cancel DELETE are both deadline-bound
		go g.reapLoser(loserNode, loserCh)
	}
	return winner.fr, winNode, nil
}

// reapLoser awaits a losing submit attempt that had already hit the
// wire and cancels whatever job it admitted. DELETE marks a queued or
// running job canceled; a job that somehow finished first answers 409
// and is left as-is. The reap runs on a fresh background context — the
// client's request is long since answered by the winner.
func (g *Gateway) reapLoser(node string, ch chan submitRes) {
	//thermlint:blocking -- the attempt is deadline-bound by raceAttemptTimeout
	r := <-ch
	g.feedBreakerOutcome(node, r.fr.status, r.err)
	if r.err != nil || r.fr.status >= 300 {
		return // nothing was admitted
	}
	var st server.Status
	if err := json.Unmarshal(r.fr.body, &st); err != nil || st.ID == "" {
		return
	}
	rctx, cancel := context.WithTimeout(context.Background(), reapTimeout)
	defer cancel()
	fr, err := g.forward(rctx, node, http.MethodDelete, "/v1/jobs/"+st.ID, nil, nil)
	if err == nil && fr.status == http.StatusOK {
		g.metrics.hedgeCancels.Add(1)
	}
}

// sleepRetryAfter honors the previous attempt's Retry-After hint
// before a failover retry, capped at retryAfterCap, counting the
// requested wait in gw.retry_backoff_ms.
func (g *Gateway) sleepRetryAfter(ctx context.Context, fr *forwardResult) {
	if fr == nil {
		return
	}
	secs, err := strconv.Atoi(fr.header.Get("Retry-After"))
	if err != nil || secs <= 0 {
		return
	}
	d := time.Duration(secs) * time.Second
	if d > retryAfterCap {
		d = retryAfterCap
	}
	g.metrics.retryBackoffMs.Add(uint64(d / time.Millisecond))
	select {
	case <-ctx.Done():
	case <-g.cfg.Clock.After(d):
	}
}

// relay copies a buffered backend reply to the client, preserving the
// headers that carry semantics (content type, backoff hints).
func relay(w http.ResponseWriter, fr forwardResult) {
	for _, k := range []string{"Content-Type", "Retry-After"} {
		if v := fr.header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.WriteHeader(fr.status)
	w.Write(fr.body)
}

// relayStatusRewrite relays a backend reply whose body is (or may be) a
// job Status document, rewriting its id into the gateway namespace. A
// body that does not parse as a Status with an id is relayed verbatim.
func relayStatusRewrite(w http.ResponseWriter, fr forwardResult, node string) {
	var st server.Status
	if err := json.Unmarshal(fr.body, &st); err == nil && st.ID != "" {
		st.ID = globalID(st.ID, node)
		if v := fr.header.Get("Retry-After"); v != "" {
			w.Header().Set("Retry-After", v)
		}
		writeJSON(w, fr.status, st)
		return
	}
	relay(w, fr)
}

// handleSubmit places one job by its canonical spec hash and proxies
// the submission to the chosen backend, forwarding the client's
// Idempotency-Key untouched — the key dedupes on whichever node the
// hash routes to, so a client retry through any gateway replica lands
// on the same backend and hits the same dedup table.
func (g *Gateway) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad job payload: %v", err)
		return
	}
	var spec server.Spec
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job payload: %v", err)
		return
	}
	hash, err := specHashOf(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad job payload: %v", err)
		return
	}
	plan, err := g.planRoute(hash)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	g.metrics.submitsRouted.Add(1)
	if plan.spilled {
		g.metrics.spills.Add(1)
	}
	if plan.failedOver {
		g.metrics.failovers.Add(1)
	}
	hdr := http.Header{}
	if k := r.Header.Get("Idempotency-Key"); k != "" {
		hdr.Set("Idempotency-Key", k)
	}
	// The tenant identity travels byte-for-byte: the backend owns
	// normalization, quota, and attribution.
	if tenant := r.Header.Get(server.TenantHeader); tenant != "" {
		hdr.Set(server.TenantHeader, tenant)
	}
	hdr.Set("Content-Type", "application/json")

	attempts := plan.order
	if len(attempts) > g.cfg.ForwardAttempts {
		attempts = attempts[:g.cfg.ForwardAttempts]
	}
	// One base request funds the retry budget; every failover retry and
	// hedge below withdraws from it.
	g.budget.deposit(1)
	idemKey := r.Header.Get("Idempotency-Key")
	var lastErr error
	var lastFr *forwardResult
	for i, node := range attempts {
		if i > 0 {
			if !g.budget.take() {
				g.metrics.budgetExhausted.Add(1)
				lastErr = fmt.Errorf("retry budget exhausted after: %v", lastErr)
				break
			}
			g.metrics.forwardRetries.Add(1)
			// Honor the refusing backend's backoff hint before hammering
			// the successor — a draining 503 with Retry-After is the herd
			// asking for breathing room, not a race to the next node.
			g.sleepRetryAfter(r.Context(), lastFr)
		}
		if !g.breaker.allow(node) {
			g.metrics.breakerDenied.Add(1)
			lastErr = fmt.Errorf("backend %s: circuit open", node)
			continue
		}
		var fr forwardResult
		var err error
		if g.cfg.Hedge && i == 0 && idemKey != "" && len(attempts) > 1 {
			// Only Idempotency-Key-bearing submits are hedged: the key is
			// what makes a second copy of the request safe to send at all.
			// raceSubmit feeds the breaker for both legs itself.
			fr, node, err = g.raceSubmit(r.Context(), node, attempts[1], body, hdr)
		} else {
			cnt := g.inflightOf(node)
			cnt.Add(1)
			fr, err = g.timedForward(r.Context(), nil, hedgeClassSubmit, node, http.MethodPost, "/v1/jobs", body, hdr)
			cnt.Add(-1)
			g.feedBreakerOutcome(node, fr.status, err)
		}
		if err != nil {
			// The backend never answered: suspect it so membership probes it
			// now instead of at the next tick, then try the next candidate.
			// The forwarded Idempotency-Key makes the retry safe even if the
			// backend admitted the job before the connection died.
			g.members.suspect(node)
			lastErr = err
			lastFr = nil
			continue
		}
		if retryable(fr.status) && i < len(attempts)-1 {
			g.members.suspect(node)
			lastErr = fmt.Errorf("backend %s: HTTP %d", node, fr.status)
			frCopy := fr
			lastFr = &frCopy
			continue
		}
		if fr.status < 300 {
			g.warm.add(hash)
			if i > 0 && fr.header.Get(server.DedupHeader) != "" {
				// A failover retry the backend answered from its
				// Idempotency-Key table: the earlier attempt did land
				// before its connection died, and dedup — not a second
				// admit — is what the client got back. Counted so chaos
				// runs can prove the double-send never happens.
				g.metrics.failoverDedupHits.Add(1)
			}
		}
		relayStatusRewrite(w, fr, node)
		return
	}
	writeError(w, http.StatusBadGateway, "all candidate backends failed: %v", lastErr)
}

// handleSubmitBatch splits a batch by each spec's ring placement,
// forwards the per-node sub-batches concurrently, and reassembles the
// items in request order. A sub-batch whose backend fails entirely
// yields per-item 502s rather than failing the sibling shards.
func (g *Gateway) handleSubmitBatch(w http.ResponseWriter, r *http.Request) {
	var req server.BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad batch payload: %v", err)
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch (want 1..%d jobs)", server.MaxBatchJobs)
		return
	}
	if len(req.Jobs) > server.MaxBatchJobs {
		writeError(w, http.StatusBadRequest, "batch of %d jobs exceeds the %d-job limit", len(req.Jobs), server.MaxBatchJobs)
		return
	}
	if len(req.IdempotencyKeys) != 0 && len(req.IdempotencyKeys) != len(req.Jobs) {
		writeError(w, http.StatusBadRequest, "idempotency_keys length %d does not match jobs length %d",
			len(req.IdempotencyKeys), len(req.Jobs))
		return
	}
	if len(req.Tenants) != 0 && len(req.Tenants) != len(req.Jobs) {
		writeError(w, http.StatusBadRequest, "tenants length %d does not match jobs length %d",
			len(req.Tenants), len(req.Jobs))
		return
	}

	resp := server.BatchResponse{Jobs: make([]server.BatchItem, len(req.Jobs))}
	// groups maps backend -> indexes of req.Jobs routed there.
	groups := make(map[string][]int)
	hashes := make([]string, len(req.Jobs))
	for i, spec := range req.Jobs {
		hash, err := specHashOf(spec)
		if err != nil {
			resp.Jobs[i] = server.BatchItem{Error: fmt.Sprintf("bad job payload: %v", err), Code: http.StatusBadRequest}
			continue
		}
		plan, err := g.planRoute(hash)
		if err != nil {
			resp.Jobs[i] = server.BatchItem{Error: err.Error(), Code: http.StatusServiceUnavailable}
			continue
		}
		g.metrics.submitsRouted.Add(1)
		if plan.spilled {
			g.metrics.spills.Add(1)
		}
		if plan.failedOver {
			g.metrics.failovers.Add(1)
		}
		hashes[i] = hash
		groups[plan.order[0]] = append(groups[plan.order[0]], i)
	}

	var wg sync.WaitGroup
	var mu sync.Mutex // guards resp.Jobs cells across shard goroutines
	for node, idxs := range groups {
		wg.Add(1)
		go func(node string, idxs []int) {
			defer wg.Done()
			sub := server.BatchRequest{Jobs: make([]server.Spec, len(idxs))}
			if len(req.IdempotencyKeys) > 0 {
				sub.IdempotencyKeys = make([]string, len(idxs))
			}
			if len(req.Tenants) > 0 {
				sub.Tenants = make([]string, len(idxs))
			}
			for k, i := range idxs {
				sub.Jobs[k] = req.Jobs[i]
				if len(req.IdempotencyKeys) > 0 {
					sub.IdempotencyKeys[k] = req.IdempotencyKeys[i]
				}
				if len(req.Tenants) > 0 {
					sub.Tenants[k] = req.Tenants[i]
				}
			}
			payload, err := json.Marshal(sub)
			var sr server.BatchResponse
			if err == nil {
				hdr := http.Header{}
				hdr.Set("Content-Type", "application/json")
				if tenant := r.Header.Get(server.TenantHeader); tenant != "" {
					hdr.Set(server.TenantHeader, tenant)
				}
				g.budget.deposit(len(idxs))
				cnt := g.inflightOf(node)
				cnt.Add(int64(len(idxs)))
				fr, ferr := g.forward(r.Context(), node, http.MethodPost, "/v1/jobs:batch", payload, hdr)
				cnt.Add(-int64(len(idxs)))
				g.feedBreakerOutcome(node, fr.status, ferr)
				if ferr != nil {
					g.members.suspect(node)
					err = ferr
				} else if fr.status != http.StatusOK {
					if retryable(fr.status) {
						g.members.suspect(node)
					}
					err = fmt.Errorf("backend %s: HTTP %d", node, fr.status)
				} else if uerr := json.Unmarshal(fr.body, &sr); uerr != nil {
					err = fmt.Errorf("backend %s: bad batch response: %v", node, uerr)
				} else if len(sr.Jobs) != len(idxs) {
					err = fmt.Errorf("backend %s: batch response has %d items, want %d", node, len(sr.Jobs), len(idxs))
				}
			}
			mu.Lock()
			defer mu.Unlock()
			for k, i := range idxs {
				if err != nil {
					resp.Jobs[i] = server.BatchItem{Error: err.Error(), Code: http.StatusBadGateway}
					continue
				}
				item := sr.Jobs[k]
				if item.Status != nil {
					st := *item.Status
					st.ID = globalID(st.ID, node)
					item.Status = &st
					g.warm.add(hashes[i])
				}
				resp.Jobs[i] = item
			}
		}(node, idxs)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, resp)
}

// byNodeForward resolves a namespaced job id and proxies the request to
// the backend now serving it: the minting node normally, its takeover
// successor when an alias says the minting node is dead and adopted.
// GETs additionally chase live migrations — a reply that says the job
// moved ("migrated" with a destination) is re-fetched from the
// destination, where the job lives under "<id>@<origin>". The reply is
// always relayed under the id the client asked with, so old ids keep
// resolving no matter how many hops the job has made.
func (g *Gateway) byNodeForward(w http.ResponseWriter, r *http.Request, method, pathSuffix string) {
	gid := r.PathValue("id")
	id, node, ok := splitID(gid)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q (gateway job ids look like <id>@<node>)", gid)
		return
	}
	// The alias chain wins over tombstones: a taken-over node's jobs
	// are served by its successor, not the corpse.
	id, node = g.resolveAlias(id, node)
	if _, known := g.lookupBackend(node); !known {
		writeError(w, http.StatusNotFound, "unknown job %q: no backend named %q", gid, node)
		return
	}
	g.budget.deposit(1)
	var fr forwardResult
	var err error
	if method == http.MethodGet {
		// Status polls and result fetches are idempotent: hedge them.
		fr, err = g.raceRead(r.Context(), hedgeClassStatus, node, "/v1/jobs/"+id+pathSuffix)
		if err == nil {
			fr, node = g.chaseMigrated(r.Context(), fr, id, node, pathSuffix)
		}
	} else {
		fr, err = g.forward(r.Context(), node, method, "/v1/jobs/"+id+pathSuffix, nil, nil)
	}
	g.feedBreakerOutcome(node, fr.status, err)
	if err != nil {
		g.members.suspect(node)
		writeError(w, http.StatusBadGateway, "%v", err)
		return
	}
	if pathSuffix != "" && fr.status == http.StatusOK {
		// A completed result document is opaque payload; relay it as-is.
		relay(w, fr)
		return
	}
	relayStatusRewriteAs(w, fr, gid)
}

// chaseMigrated follows a migrated job to its destination: both the
// status endpoint (200) and the result endpoint (its 409 for an
// unfinished job) reply with the job's Status document, so a reply
// naming a migration destination is re-fetched from that node under
// the adopted id "<id>@<origin>". Bounded at 4 hops — a job migrates
// at most once per drain, and a chain that long means cascading drains
// the client can retry through. A hop that fails keeps the previous
// reply: a stale "migrated" answer is still a truthful one.
func (g *Gateway) chaseMigrated(ctx context.Context, fr forwardResult, id, node, pathSuffix string) (forwardResult, string) {
	for hop := 0; hop < 4; hop++ {
		var st server.Status
		if err := json.Unmarshal(fr.body, &st); err != nil ||
			st.State != server.StateMigrated || st.MigratedTo == "" {
			return fr, node
		}
		if _, known := g.lookupBackend(st.MigratedTo); !known {
			return fr, node
		}
		nextID, nextNode := id+"@"+node, st.MigratedTo
		nfr, err := g.raceRead(ctx, hedgeClassStatus, nextNode, "/v1/jobs/"+nextID+pathSuffix)
		if err != nil {
			return fr, node
		}
		fr, id, node = nfr, nextID, nextNode
	}
	return fr, node
}

// relayStatusRewriteAs relays a backend reply whose body is (or may
// be) a job Status document, forcing its id to the given gateway-
// namespaced id — the one the client asked with, which alias and
// migration chases may have internally rewritten several hops away.
func relayStatusRewriteAs(w http.ResponseWriter, fr forwardResult, gid string) {
	var st server.Status
	if err := json.Unmarshal(fr.body, &st); err == nil && st.ID != "" {
		st.ID = gid
		if v := fr.header.Get("Retry-After"); v != "" {
			w.Header().Set("Retry-After", v)
		}
		writeJSON(w, fr.status, st)
		return
	}
	relay(w, fr)
}

func (g *Gateway) handleStatus(w http.ResponseWriter, r *http.Request) {
	g.byNodeForward(w, r, http.MethodGet, "")
}

func (g *Gateway) handleResult(w http.ResponseWriter, r *http.Request) {
	g.byNodeForward(w, r, http.MethodGet, "/result")
}

func (g *Gateway) handleCancel(w http.ResponseWriter, r *http.Request) {
	g.byNodeForward(w, r, http.MethodDelete, "")
}

// handlePassthrough forwards a read-only endpoint to the first
// routable backend (the data is identical on every node).
func (g *Gateway) handlePassthrough(path string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		for _, node := range g.ringNodes() {
			if !g.members.state(node).routable() {
				continue
			}
			g.budget.deposit(1)
			fr, err := g.forward(r.Context(), node, http.MethodGet, path, nil, nil)
			if err != nil {
				g.members.suspect(node)
				continue
			}
			relay(w, fr)
			return
		}
		writeError(w, http.StatusServiceUnavailable, "no routable backends")
	}
}

// scatterReply is one backend's leg of a scatter-gather.
type scatterReply struct {
	node string
	fr   forwardResult
	err  error
}

// scatter issues the same GET to every configured backend (ejected
// ones included — they may still answer, and their jobs still exist)
// under the per-backend scatter timeout, returning one reply per node.
func (g *Gateway) scatter(ctx context.Context, path string) []scatterReply {
	nodes := g.ringNodes()
	replies := make([]scatterReply, len(nodes))
	var wg sync.WaitGroup
	for i, node := range nodes {
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, g.cfg.ScatterTimeout)
			defer cancel()
			// Each leg is a base request (deposit) and may hedge against
			// its own node — the merge keeps one reply per node either
			// way, so a won hedge can never double-count a backend.
			g.budget.deposit(1)
			fr, err := g.raceRead(sctx, hedgeClassScatter, node, path)
			if err == nil && fr.status != http.StatusOK {
				err = fmt.Errorf("backend %s: HTTP %d", node, fr.status)
			}
			replies[i] = scatterReply{node: node, fr: fr, err: err}
		}(i, node)
	}
	wg.Wait()
	return replies
}

// ListDoc is the gateway's GET /v1/jobs document: the merged backend
// pages plus partial-result accounting. When every backend answered,
// Partial is false and the document is exactly what one logical node
// holding all the jobs would return.
type ListDoc struct {
	server.ListResponse
	// Partial is true when at least one backend's leg failed or timed
	// out; Total then undercounts and BackendErrors says why.
	Partial       bool              `json:"partial,omitempty"`
	BackendErrors map[string]string `json:"backend_errors,omitempty"`
}

// handleList scatter-gathers GET /v1/jobs across the herd. Each leg
// pages through its backend up to offset+limit entries (more can never
// appear in the merged page), ids are rewritten into the gateway
// namespace, and the merged set is re-sorted and re-paginated.
func (g *Gateway) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := 50
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 || n > 500 {
			writeError(w, http.StatusBadRequest, "bad limit %q (want 1..500)", v)
			return
		}
		limit = n
	}
	offset := 0
	if v := q.Get("offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad offset %q (want >= 0)", v)
			return
		}
		offset = n
	}
	statusFilter := q.Get("status")
	tenantFilter := q.Get("tenant")

	need := offset + limit
	nodes := g.ringNodes()
	type legResult struct {
		node  string
		jobs  []server.Status
		total int
		err   error
	}
	legs := make([]legResult, len(nodes))
	var wg sync.WaitGroup
	for i, node := range nodes {
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(r.Context(), g.cfg.ScatterTimeout)
			defer cancel()
			g.budget.deposit(1)
			jobs, total, err := g.fetchJobs(sctx, node, statusFilter, tenantFilter, need)
			legs[i] = legResult{node: node, jobs: jobs, total: total, err: err}
		}(i, node)
	}
	wg.Wait()

	doc := ListDoc{}
	var merged []server.Status
	for _, leg := range legs {
		if leg.err != nil {
			doc.Partial = true
			if doc.BackendErrors == nil {
				doc.BackendErrors = make(map[string]string)
			}
			doc.BackendErrors[leg.node] = leg.err.Error()
			continue
		}
		doc.Total += leg.total
		for _, st := range leg.jobs {
			st.ID = globalID(st.ID, leg.node)
			merged = append(merged, st)
		}
	}
	if doc.Partial {
		g.metrics.scatterPartials.Add(1)
	}
	// Namespaced ids sort stably: per-node submission order is preserved
	// and nodes interleave deterministically.
	sort.Slice(merged, func(i, k int) bool { return merged[i].ID < merged[k].ID })
	doc.Offset = offset
	doc.Jobs = []server.Status{}
	if offset < len(merged) {
		end := offset + limit
		if end > len(merged) {
			end = len(merged)
		}
		doc.Jobs = merged[offset:end]
		if end < doc.Total {
			next := end
			doc.NextOffset = &next
		}
	}
	writeJSON(w, http.StatusOK, doc)
}

// fetchJobs pages one backend's GET /v1/jobs until it has the first
// `need` matching jobs (or the backend runs out), returning them plus
// the backend's total match count.
func (g *Gateway) fetchJobs(ctx context.Context, node, statusFilter, tenantFilter string, need int) ([]server.Status, int, error) {
	var jobs []server.Status
	total := 0
	offset := 0
	for {
		path := fmt.Sprintf("/v1/jobs?limit=500&offset=%d", offset)
		if statusFilter != "" {
			path += "&status=" + statusFilter
		}
		if tenantFilter != "" {
			path += "&tenant=" + url.QueryEscape(tenantFilter)
		}
		fr, err := g.raceRead(ctx, hedgeClassScatter, node, path)
		if err != nil {
			return nil, 0, err
		}
		if fr.status != http.StatusOK {
			// Relay the backend's own complaint (e.g. a bad status filter).
			var ed errorDoc
			if json.Unmarshal(fr.body, &ed) == nil && ed.Error != "" {
				return nil, 0, fmt.Errorf("backend %s: %s", node, ed.Error)
			}
			return nil, 0, fmt.Errorf("backend %s: HTTP %d", node, fr.status)
		}
		var page server.ListResponse
		if err := json.Unmarshal(fr.body, &page); err != nil {
			return nil, 0, fmt.Errorf("backend %s: bad list response: %v", node, err)
		}
		total = page.Total
		jobs = append(jobs, page.Jobs...)
		if page.NextOffset == nil || len(jobs) >= need {
			return jobs, total, nil
		}
		offset = *page.NextOffset
	}
}

// handleMetrics scatter-gathers every backend's /metrics and merges
// them into one fleet-wide document: numeric leaves are summed (so the
// accounting identity submitted == hits + completed + failed +
// canceled + rejected reconciles across the herd exactly as it does
// per node), booleans are OR-ed, and nested sections merge
// recursively. The gateway then adds its own sections: "gateway" (its
// counters), "backends" (the membership snapshot), and "partial"
// (true when a backend's leg failed, meaning the sums undercount).
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	replies := g.scatter(r.Context(), "/metrics")
	doc := make(map[string]any)
	backendErrs := make(map[string]string)
	for _, rep := range replies {
		if rep.err != nil {
			backendErrs[rep.node] = rep.err.Error()
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(rep.fr.body, &m); err != nil {
			backendErrs[rep.node] = fmt.Sprintf("bad metrics body: %v", err)
			continue
		}
		mergeDocs(doc, m)
	}
	partial := len(backendErrs) > 0
	if partial {
		g.metrics.scatterPartials.Add(1)
	}
	snap := g.Backends()
	routable := 0
	for _, h := range snap {
		if h.State.routable() {
			routable++
		}
	}
	doc[metricSectionGateway] = g.metrics.snapshot(len(snap), routable, g.aliasCount(), g.epoch.Load())
	doc[metricSectionBackends] = snap
	doc[metricKeyPartial] = partial
	if partial {
		doc[metricBackendErrors] = backendErrs
	}
	writeJSON(w, http.StatusOK, doc)
}

// mergeDocs folds src into dst: numbers add, booleans OR, maps recurse.
// Strings, arrays, and mismatched shapes keep dst's value (first
// backend wins) — histograms and timestamps are not meaningfully
// summable and the reconciliation identity only reads numeric leaves.
//
//thermlint:metricsmerge
func mergeDocs(dst, src map[string]any) {
	for k, sv := range src {
		dv, present := dst[k]
		if !present {
			dst[k] = copyValue(sv)
			continue
		}
		switch d := dv.(type) {
		case float64:
			if s, ok := sv.(float64); ok {
				dst[k] = d + s
			}
		case bool:
			if s, ok := sv.(bool); ok {
				dst[k] = d || s
			}
		case map[string]any:
			if s, ok := sv.(map[string]any); ok {
				mergeDocs(d, s)
			}
		}
	}
}

// copyValue deep-copies a decoded-JSON value so merging never aliases
// one backend's maps into the aggregate.
func copyValue(v any) any {
	if m, ok := v.(map[string]any); ok {
		out := make(map[string]any, len(m))
		for k, mv := range m {
			out[k] = copyValue(mv)
		}
		return out
	}
	return v
}

// handleHealthz reports gateway process liveness, in the same shape as
// a backend's /healthz so existing clients work unchanged.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	g.topo.RLock()
	n := len(g.byName)
	g.topo.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"backends": n,
	})
}

// readyDoc is the gateway's /readyz body: ready while at least one
// backend is routable, with the full membership snapshot attached so
// operators can see which nodes are ejected and since when.
type readyDoc struct {
	Ready  bool   `json:"ready"`
	Reason string `json:"reason,omitempty"`
	// Epoch is the topology generation: 1 at startup, bumped on every
	// admin add/remove, so operators can tell which ring a reply
	// reflects.
	Epoch    uint64       `json:"epoch"`
	Backends []NodeHealth `json:"backends"`
}

func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	snap := g.Backends()
	doc := readyDoc{Epoch: g.epoch.Load(), Backends: snap}
	for _, h := range snap {
		if h.State.routable() {
			doc.Ready = true
			break
		}
	}
	if !doc.Ready {
		doc.Reason = "no routable backends"
		writeJSON(w, http.StatusServiceUnavailable, doc)
		return
	}
	writeJSON(w, http.StatusOK, doc)
}
