package gateway

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"thermalherd/internal/clock"
	"thermalherd/internal/faultinject"
)

// fakeBackend is a scriptable /readyz (and submit) endpoint for
// membership and routing tests.
type fakeBackend struct {
	mu      sync.Mutex
	ready   bool
	reason  string
	since   string
	submits int
	ts      *httptest.Server
}

func newFakeBackend(t *testing.T) *fakeBackend {
	t.Helper()
	f := &fakeBackend{ready: true}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		doc := readyzDoc{Ready: f.ready, Reason: f.reason, Since: f.since}
		f.mu.Unlock()
		code := http.StatusOK
		if !doc.Ready {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, doc)
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		f.submits++
		n := f.submits
		f.mu.Unlock()
		writeJSON(w, http.StatusAccepted, map[string]any{"id": "job-" + itoa6(n), "state": "queued"})
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

func itoa6(n int) string {
	const digits = "0123456789"
	buf := []byte{'0', '0', '0', '0', '0', '0'}
	for i := 5; i >= 0 && n > 0; i-- {
		buf[i] = digits[n%10]
		n /= 10
	}
	return string(buf)
}

func (f *fakeBackend) set(ready bool, reason, since string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ready, f.reason, f.since = ready, reason, since
}

func (f *fakeBackend) submitCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.submits
}

// TestMembershipClassification: each structured /readyz reason maps to
// its membership state, and routability follows.
func TestMembershipClassification(t *testing.T) {
	cases := []struct {
		name     string
		ready    bool
		reason   string
		want     NodeState
		routable bool
	}{
		{"ready", true, "", NodeHealthy, true},
		{"brownout", false, "brownout", NodeBrownout, true},
		{"draining", false, "draining", NodeDraining, false},
		{"recovering", false, "recovering", NodeRecovering, false},
		{"unknown-reason", false, "weird", NodeDown, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := newFakeBackend(t)
			f.set(tc.ready, tc.reason, "")
			m := newMembership([]Backend{{Name: "n0", URL: f.ts.URL}},
				clock.Real(), nil, time.Hour, time.Second, 3)
			m.ProbeAll(context.Background())
			if got := m.state("n0"); got != tc.want {
				t.Fatalf("state after probe = %s, want %s", got, tc.want)
			}
			if got := m.state("n0").routable(); got != tc.routable {
				t.Fatalf("routable() = %v, want %v", got, tc.routable)
			}
		})
	}
}

// TestMembershipDownAfterThreshold: a dead backend is ejected only
// after the configured number of consecutive probe failures, and one
// successful probe restores it.
func TestMembershipDownAfterThreshold(t *testing.T) {
	f := newFakeBackend(t)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // refuse all connections from here on
	m := newMembership([]Backend{{Name: "n0", URL: dead.URL}},
		clock.Real(), nil, time.Hour, 200*time.Millisecond, 3)

	for i := 1; i <= 2; i++ {
		m.ProbeAll(context.Background())
		if got := m.state("n0"); got != NodeHealthy {
			t.Fatalf("after %d failures state = %s, want still healthy (threshold 3)", i, got)
		}
	}
	m.ProbeAll(context.Background())
	if got := m.state("n0"); got != NodeDown {
		t.Fatalf("after 3 failures state = %s, want down", got)
	}
	snap := m.snapshot()
	if len(snap) != 1 || snap[0].ConsecutiveFailures != 3 || snap[0].LastError == "" {
		t.Fatalf("snapshot = %+v, want 3 consecutive failures with a last error", snap)
	}

	// Point the member at a live backend: one good probe revives it.
	m.mu.Lock()
	m.info["n0"].backend.URL = f.ts.URL
	m.mu.Unlock()
	m.ProbeAll(context.Background())
	if got := m.state("n0"); got != NodeHealthy {
		t.Fatalf("after recovery probe state = %s, want healthy", got)
	}
}

// TestMembershipSincePreferred: the backend's own "since" timestamp
// wins over the gateway-observed transition time — it survives gateway
// restarts and distinguishes freshly-browning from long-unready.
func TestMembershipSincePreferred(t *testing.T) {
	f := newFakeBackend(t)
	reported := "2026-08-08T01:02:03.000000004Z"
	f.set(false, "brownout", reported)
	m := newMembership([]Backend{{Name: "n0", URL: f.ts.URL}},
		clock.Real(), nil, time.Hour, time.Second, 3)
	m.ProbeAll(context.Background())
	snap := m.snapshot()
	if len(snap) != 1 || snap[0].State != NodeBrownout {
		t.Fatalf("snapshot = %+v, want one brownout node", snap)
	}
	got, err := time.Parse(time.RFC3339Nano, snap[0].Since)
	if err != nil {
		t.Fatalf("snapshot since %q does not parse: %v", snap[0].Since, err)
	}
	want, _ := time.Parse(time.RFC3339Nano, reported)
	if !got.Equal(want) {
		t.Fatalf("since = %s, want the backend-reported %s", got, want)
	}
}

// TestMembershipProbeFault: the gw.probe fault point fails probes
// without touching the backend — threshold failures eject it.
func TestMembershipProbeFault(t *testing.T) {
	f := newFakeBackend(t)
	faults := faultinject.New()
	if err := faults.Arm(FaultProbe+"=error:probe chaos", 1); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	m := newMembership([]Backend{{Name: "n0", URL: f.ts.URL}},
		clock.Real(), faults, time.Hour, time.Second, 2)
	m.ProbeAll(context.Background())
	m.ProbeAll(context.Background())
	if got := m.state("n0"); got != NodeDown {
		t.Fatalf("state under probe fault = %s, want down", got)
	}
}

// TestMembershipSplitBrainFault: gw.splitbrain discards successful
// probe responses, so this gateway's view diverges from the backend's
// actual (healthy) state.
func TestMembershipSplitBrainFault(t *testing.T) {
	f := newFakeBackend(t)
	faults := faultinject.New()
	if err := faults.Arm(FaultSplitBrain+"=error:split brain", 1); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	m := newMembership([]Backend{{Name: "n0", URL: f.ts.URL}},
		clock.Real(), faults, time.Hour, time.Second, 2)
	m.ProbeAll(context.Background())
	m.ProbeAll(context.Background())
	if got := m.state("n0"); got != NodeDown {
		t.Fatalf("state under split-brain fault = %s, want down (view diverged)", got)
	}
	// The backend itself is fine; disarming heals the divergence.
	faults.Disarm()
	m.ProbeAll(context.Background())
	if got := m.state("n0"); got != NodeHealthy {
		t.Fatalf("state after disarm = %s, want healthy", got)
	}
}

// TestMembershipFlapDamping: a backend oscillating between healthy and
// down is held NodeSuspect for the flap cooldown instead of re-entering
// rotation on every good probe, and a node that has served its cooldown
// re-enters with a clean flip history. Runs entirely on a fake clock.
func TestMembershipFlapDamping(t *testing.T) {
	f := newFakeBackend(t)
	fc := clock.NewFake(time.Unix(1_700_000_000, 0))
	m := newMembership([]Backend{{Name: "n0", URL: f.ts.URL}},
		fc, nil, time.Hour, time.Second, 3)

	// flip scripts the backend's /readyz and probes once; an unknown
	// not-ready reason classifies as down without waiting out the
	// consecutive-failure threshold.
	flip := func(ready bool) {
		reason := ""
		if !ready {
			reason = "weird"
		}
		f.set(ready, reason, "")
		m.ProbeAll(context.Background())
	}

	flip(false) // routable -> down: flip 1
	flip(true)  // down -> healthy: flip 2
	if got := m.state("n0"); got != NodeHealthy {
		t.Fatalf("state after two flips = %s, want still healthy (damping threshold 3)", got)
	}
	flip(false) // healthy -> down: flip 3 arms the cooldown
	if got := m.state("n0"); got != NodeDown {
		t.Fatalf("state after third flip = %s, want down", got)
	}

	// Good probes inside the cooldown park the node in suspect instead
	// of letting it re-enter rotation.
	flip(true)
	if got := m.state("n0"); got != NodeSuspect {
		t.Fatalf("state on re-entry inside cooldown = %s, want suspect", got)
	}
	if m.state("n0").routable() {
		t.Fatal("suspect node reports routable")
	}
	fc.Advance(2 * time.Second) // still inside the 5s cooldown
	flip(true)
	if got := m.state("n0"); got != NodeSuspect {
		t.Fatalf("state mid-cooldown = %s, want still suspect", got)
	}

	// Cooldown served: the next good probe restores the node...
	fc.Advance(4 * time.Second)
	flip(true)
	if got := m.state("n0"); got != NodeHealthy {
		t.Fatalf("state after cooldown = %s, want healthy", got)
	}
	// ...with a clean history: one fresh bounce is not an instant
	// re-suspect.
	flip(false)
	flip(true)
	if got := m.state("n0"); got != NodeHealthy {
		t.Fatalf("state after one post-cooldown bounce = %s, want healthy (history was reset)", got)
	}
}

// TestMembershipDrainPin: an admin drain pin overrides healthy probe
// results until the node is re-added.
func TestMembershipDrainPin(t *testing.T) {
	f := newFakeBackend(t)
	m := newMembership([]Backend{{Name: "n0", URL: f.ts.URL}},
		clock.Real(), nil, time.Hour, time.Second, 3)
	if !m.pinDrain("n0") {
		t.Fatal("pinDrain refused a known node")
	}
	if got := m.state("n0"); got != NodeDraining {
		t.Fatalf("state after pin = %s, want draining", got)
	}
	m.ProbeAll(context.Background()) // backend still answers healthy
	if got := m.state("n0"); got != NodeDraining {
		t.Fatalf("healthy probe unpinned the drain: state = %s", got)
	}
	if m.pinDrain("ghost") {
		t.Fatal("pinDrain accepted an unknown node")
	}
	// Re-adding resets the record, clearing the pin.
	m.addMember(Backend{Name: "n0", URL: f.ts.URL}, NodeJoining)
	m.ProbeAll(context.Background())
	if got := m.state("n0"); got != NodeHealthy {
		t.Fatalf("state after re-add + probe = %s, want healthy", got)
	}
}

// TestMembershipRunLoop: the probe loop ticks on the clock seam and
// close() terminates it.
func TestMembershipRunLoop(t *testing.T) {
	f := newFakeBackend(t)
	f.set(false, "draining", "")
	fc := clock.NewFake(time.Unix(1_700_000_000, 0))
	m := newMembership([]Backend{{Name: "n0", URL: f.ts.URL}},
		fc, nil, time.Second, time.Second, 3)
	go m.run()
	deadline := time.Now().Add(5 * time.Second)
	for m.state("n0") != NodeDraining {
		fc.Advance(time.Second)
		if time.Now().After(deadline) {
			t.Fatal("probe loop never classified the backend as draining")
		}
		time.Sleep(time.Millisecond)
	}
	m.close()
}
