// Package gateway turns N thermherdd backends into one logical herd:
// a front-door HTTP service that consistent-hashes each job's
// canonical spec hash (server.Spec.CanonicalHash, the same content
// address the per-node result cache keys on) across the backends, so
// dedup and result-cache locality survive sharding. Health-check-driven
// membership polls each backend's /readyz and interprets its structured
// reasons (draining / brownout / recovering, each with a "since"
// timestamp) to temporarily eject or deprioritize nodes;
// power-of-two-choices spill routes cold specs around a browning-out
// home node; and GET /v1/jobs listing plus /metrics are scatter-gathered
// with per-backend timeouts and partial-result accounting.
//
// Job ids crossing the gateway are namespaced as "<id>@<node>" —
// backends mint ids independently, so the node suffix is what lets the
// gateway route status polls, result fetches, and cancels statelessly
// (a restarted gateway needs no id table).
//
//thermlint:goroutines
package gateway

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// Ring is a consistent-hash ring with virtual nodes. Placement is
// deterministic: node positions derive from sha256 over the node name
// and virtual-node index, key positions from sha256 over the key, so
// equal memberships place equal keys identically across gateway
// restarts and replicas. Removing a node remaps only the keys it
// owned (~1/N of the space with enough virtual nodes); re-adding it
// restores the original placement exactly.
//
// Ring is not safe for concurrent use on its own. The gateway builds
// one at startup from the configured backend set and mutates it only
// through the admin API's add/remove paths, which hold Gateway.topo
// exclusively while request paths hold it shared; each mutation bumps
// the gateway's ring epoch. Membership ejections never touch the ring
// (they are a routing-time skip set, not ring surgery — see
// Gateway.route), which is what keeps a node's shard identical when
// it returns.
type Ring struct {
	vnodes int
	points []ringPoint // sorted ascending by hash
	nodes  map[string]bool
}

type ringPoint struct {
	hash uint64
	node string
}

// DefaultVNodes is the virtual-node count per backend when the
// configuration does not say otherwise: enough that a 3–16 node herd's
// shards stay within a few percent of uniform.
const DefaultVNodes = 64

// NewRing builds an empty ring; vnodes <= 0 means DefaultVNodes.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]bool)}
}

// hash64 collapses sha256(data) into the ring's 64-bit key space.
func hash64(data string) uint64 {
	sum := sha256.Sum256([]byte(data))
	return binary.BigEndian.Uint64(sum[:8])
}

// vnodeHash positions virtual node i of a named node.
func vnodeHash(node string, i int) uint64 {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(i))
	return hash64(node + "#" + string(buf[:]))
}

// Add inserts a node (a no-op when it is already present).
func (r *Ring) Add(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: vnodeHash(node, i), node: node})
	}
	sort.Slice(r.points, func(i, k int) bool {
		if r.points[i].hash != r.points[k].hash {
			return r.points[i].hash < r.points[k].hash
		}
		// Tie-break on the node name so placement is total-ordered even
		// in the astronomically unlikely event of a position collision.
		return r.points[i].node < r.points[k].node
	})
}

// Remove deletes a node and its virtual nodes (a no-op when absent).
func (r *Ring) Remove(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len reports the member-node count.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the member node names, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	//thermlint:unordered -- collecting map keys for an explicit sort below
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the key's home node: the first virtual node clockwise
// from the key's position. Empty ring returns "".
func (r *Ring) Lookup(key string) string {
	succ := r.Successors(key, 1)
	if len(succ) == 0 {
		return ""
	}
	return succ[0]
}

// SuccessorOf returns the member node immediately clockwise from the
// named member's first virtual node — the replication chain's backup
// for that member, and the takeover target when it dies. Every gateway
// replica (and every backend deriving its own streaming target)
// computes the same successor from the same membership, which is what
// makes the primary→backup chain a ring property rather than
// configuration. Returns "" when the member is absent or alone.
func (r *Ring) SuccessorOf(member string) string {
	if !r.nodes[member] || len(r.nodes) < 2 {
		return ""
	}
	h := vnodeHash(member, 0)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if p.node != member {
			return p.node
		}
	}
	return ""
}

// Successors walks clockwise from the key's position and returns up to
// n distinct nodes in preference order: the home node first, then the
// nodes a failover or spill should try, in the order that keeps every
// gateway replica's fallback choice identical.
func (r *Ring) Successors(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}
