package gateway

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"thermalherd/internal/clock"
	"thermalherd/internal/faultinject"
	"thermalherd/internal/replication"
	"thermalherd/internal/server"
	"thermalherd/internal/trace"
)

// workloadRemappingTo finds a suite workload homed on victim whose
// next ring preference is adopter — after the victim's ejection the
// spec's placement (and so a keyed retry of the same submit) lands on
// the node that adopted the victim's journal. Per-spec remapping is
// hash-adjacent, not SuccessorOf, so only such workloads exercise the
// retry-meets-adopted-dedup path deterministically.
func workloadRemappingTo(t *testing.T, g *Gateway, victim, adopter string) string {
	t.Helper()
	for _, p := range trace.Suite() {
		h := quickSpecHash(t, p.Name)
		if g.ring.Lookup(h) != victim {
			continue
		}
		if succ := g.ring.Successors(h, 2); len(succ) > 1 && succ[1] == adopter {
			return p.Name
		}
	}
	t.Fatalf("no suite workload homes on %s and remaps to %s", victim, adopter)
	return ""
}

// TestRingSuccessorOf pins the chain topology: every member has a
// distinct successor, no member is its own successor, and a lone node
// has none. The exact assignments are whatever sha256 says — the
// property that matters is that every gateway and every backend
// derive the same answer from the same membership.
func TestRingSuccessorOf(t *testing.T) {
	r := NewRing(0)
	for _, n := range []string{"a", "b", "c"} {
		r.Add(n)
	}
	seen := map[string]bool{}
	for _, n := range []string{"a", "b", "c"} {
		succ := r.SuccessorOf(n)
		if succ == "" || succ == n {
			t.Fatalf("SuccessorOf(%s) = %q, want a different member", n, succ)
		}
		seen[succ] = true
	}
	if r.SuccessorOf("ghost") != "" {
		t.Fatal("SuccessorOf of a non-member returned a node")
	}
	lone := NewRing(0)
	lone.Add("only")
	if got := lone.SuccessorOf("only"); got != "" {
		t.Fatalf("lone node's successor = %q, want none", got)
	}
}

// TestBreakerProbeSuccessHalfOpenSingleFlight is the regression test
// for the half-open race: a membership probe succeeding while the one
// half-open trial request is still in flight used to close the
// circuit, which let a second request through the half-open state. A
// probe success must not release the trial slot; only the trial's own
// outcome may.
func TestBreakerProbeSuccessHalfOpenSingleFlight(t *testing.T) {
	fc := clock.NewFake(time.Unix(1_700_000_000, 0))
	b := newBreaker(fc, nil, 1, 5*time.Second)
	b.add("n0")

	b.failure("n0")
	if got := b.stateOf("n0"); got != breakerOpen {
		t.Fatalf("state after threshold failure = %s, want open", got)
	}
	fc.Advance(5 * time.Second)
	if !b.allow("n0") {
		t.Fatal("half-open trial not granted after the cooldown")
	}

	// A probe succeeds while the trial is in flight: the circuit must
	// stay half-open with the slot still taken.
	b.probeSuccess("n0")
	if got := b.stateOf("n0"); got != breakerHalfOpen {
		t.Fatalf("probe success mid-trial moved state to %s, want half-open", got)
	}
	if b.allow("n0") {
		t.Fatal("second request admitted during the half-open trial")
	}

	// The trial's own success closes the circuit.
	b.success("n0")
	if got := b.stateOf("n0"); got != breakerClosed {
		t.Fatalf("state after trial success = %s, want closed", got)
	}
	if !b.allow("n0") {
		t.Fatal("closed breaker denied traffic")
	}

	// Outside a trial window, a probe success closes an open circuit
	// exactly the way a forward success does.
	b.failure("n0")
	fc.Advance(5 * time.Second)
	b.probeSuccess("n0")
	if got := b.stateOf("n0"); got != breakerClosed {
		t.Fatalf("probe success outside a trial left state %s, want closed", got)
	}
}

// TestGatewayFailoverDedupCounted is the regression test for the
// uncounted failover dedup: a submit whose first attempt dies after
// the backend admitted the job is retried with the same
// Idempotency-Key, the backend answers from its dedup table, and the
// gateway must count that hit (gw.failover_dedup_hits) — the proof
// that the retry did not double-admit.
func TestGatewayFailoverDedupCounted(t *testing.T) {
	real := startBackend(t, "real")
	target, err := url.Parse(real.ts.URL)
	if err != nil {
		t.Fatalf("parse backend url: %v", err)
	}

	// Two proxies front the same backend. The first submit through
	// either one is delivered to the backend and then the client
	// connection is torn down — the gateway sees a transport error on
	// an attempt that actually landed.
	var aborted atomic.Bool
	mkProxy := func() *httptest.Server {
		rp := httputil.NewSingleHostReverseProxy(target)
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" && aborted.CompareAndSwap(false, true) {
				body, _ := io.ReadAll(r.Body)
				req, err := http.NewRequest(http.MethodPost, real.ts.URL+"/v1/jobs", bytes.NewReader(body))
				if err == nil {
					req.Header = r.Header.Clone()
					if resp, derr := http.DefaultClient.Do(req); derr == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
				panic(http.ErrAbortHandler)
			}
			rp.ServeHTTP(w, r)
		}))
		t.Cleanup(ts.Close)
		return ts
	}
	pa, pb := mkProxy(), mkProxy()

	g, err := New(Config{
		Backends:      []Backend{{Name: "pa", URL: pa.URL}, {Name: "pb", URL: pb.URL}},
		ProbeInterval: time.Hour,
	})
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	g.Start()
	gts := httptest.NewServer(g)
	t.Cleanup(func() {
		gts.Close()
		g.Close()
	})

	st := submitVia(t, gts.URL, quickSpec("gcc"), map[string]string{"Idempotency-Key": "dedup-regression"})
	if st.ID == "" {
		t.Fatal("submit returned no id")
	}
	doc := fetchMetrics(t, gts.URL)
	if got := metricAt(t, doc, "gateway.failover_dedup_hits"); got != 1 {
		t.Fatalf("gateway.failover_dedup_hits = %v, want 1", got)
	}
	if got := metricAt(t, doc, "gateway.forward_retries"); got != 1 {
		t.Fatalf("gateway.forward_retries = %v, want 1", got)
	}
	// The backend holds exactly one copy of the job: dedup, not a
	// double-send, answered the retry.
	var list server.ListResponse
	getJSON(t, real.ts.URL+"/v1/jobs", &list)
	if list.Total != 1 {
		t.Fatalf("backend holds %d jobs after the failover retry, want 1", list.Total)
	}
}

// startReplHerd builds n backends chained with sync successor
// replication (each node streams its journal to its ring successor,
// derived from the same vnode ring the gateway routes with) behind a
// gateway armed for takeover. perNode can adjust each backend's
// server.Config before it starts.
func startReplHerd(t *testing.T, n int, perNode func(name string, cfg *server.Config), mutate func(*Config)) (*Gateway, *httptest.Server, []*backendHandle) {
	t.Helper()
	ring := NewRing(0)
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("n%d", i)
		ring.Add(names[i])
	}
	var mu sync.Mutex
	urls := make(map[string]string, n)
	handles := make([]*backendHandle, n)
	backends := make([]Backend, n)
	for i, name := range names {
		succ := ring.SuccessorOf(name)
		repl, err := replication.New(replication.Options{
			Policy: replication.PolicySync,
			Origin: name,
			Target: func() (string, string) {
				mu.Lock()
				defer mu.Unlock()
				return succ, urls[succ]
			},
		})
		if err != nil {
			t.Fatalf("replication.New(%s): %v", name, err)
		}
		cfg := server.Config{Workers: 2, QueueDepth: 64, CacheSize: 64, NodeName: name, Repl: repl}
		if perNode != nil {
			perNode(name, &cfg)
		}
		s, err := server.New(cfg)
		if err != nil {
			t.Fatalf("server.New(%s): %v", name, err)
		}
		s.Start()
		ts := httptest.NewServer(s)
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			s.Drain(ctx)
		})
		mu.Lock()
		urls[name] = ts.URL
		mu.Unlock()
		handles[i] = &backendHandle{name: name, srv: s, ts: ts}
		backends[i] = Backend{Name: name, URL: ts.URL}
	}
	cfg := Config{
		Backends:      backends,
		ProbeInterval: time.Hour,
		FailThreshold: 1,
		TakeoverAfter: time.Millisecond,
		AdminToken:    testAdminToken,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	g.Start()
	gts := httptest.NewServer(g)
	t.Cleanup(func() {
		gts.Close()
		g.Close()
	})
	return g, gts, handles
}

// TestGatewayTakeoverAdoptsDeadNode is the failover acceptance path at
// the gateway layer: a job completes on its home node, the node dies,
// membership marks it down past the takeover deadline, and the ring
// successor — which holds the sync-replicated journal — adopts it. The
// old job id keeps resolving (status and result) through the alias,
// with zero acked loss. Wrapped in a subtest so the goroutine check
// runs after every cleanup: takeover must not leak streamer or
// adoption goroutines.
func TestGatewayTakeoverAdoptsDeadNode(t *testing.T) {
	before := runtime.NumGoroutine()
	t.Run("scenario", func(t *testing.T) {
		g, gts, handles := startReplHerd(t, 3, nil, nil)
		const victim = "n1"
		adopter := g.ring.SuccessorOf(victim)
		workload := workloadRemappingTo(t, g, victim, adopter)
		st := submitVia(t, gts.URL, quickSpec(workload), map[string]string{"Idempotency-Key": "takeover-k1"})
		done := waitDone(t, gts.URL, st.ID)
		if _, node, _ := splitID(done.ID); node != victim {
			t.Fatalf("job homed on %q, expected %q", node, victim)
		}

		for _, h := range handles {
			if h.name == victim {
				h.ts.Close()
			}
		}
		// First failed probe marks the victim down (threshold 1); the
		// second, past the takeover deadline, triggers the takeover.
		g.ProbeNow()
		deadline := time.Now().Add(10 * time.Second)
		for g.aliasCount() == 0 {
			if time.Now().After(deadline) {
				t.Fatal("takeover never installed the alias")
			}
			time.Sleep(10 * time.Millisecond)
			g.ProbeNow()
		}

		// The acked job survived: its old id resolves through the alias
		// to the successor's adopted copy, result included.
		var adopted server.Status
		resp := getJSON(t, gts.URL+"/v1/jobs/"+st.ID, &adopted)
		if resp.StatusCode != http.StatusOK || adopted.State != server.StateDone {
			t.Fatalf("adopted status: HTTP %d state %s, want 200 done", resp.StatusCode, adopted.State)
		}
		if adopted.ID != st.ID {
			t.Fatalf("adopted status id = %q, want the originally acked %q", adopted.ID, st.ID)
		}
		rresp, err := http.Get(gts.URL + "/v1/jobs/" + st.ID + "/result")
		if err != nil {
			t.Fatalf("result fetch: %v", err)
		}
		io.Copy(io.Discard, rresp.Body)
		rresp.Body.Close()
		if rresp.StatusCode != http.StatusOK {
			t.Fatalf("result fetch after takeover: HTTP %d, want 200", rresp.StatusCode)
		}

		// A keyed retry of the original submit must hand back the
		// ORIGINAL acked id. The adopter answers from its dedup table
		// with the adopted local id "<id>@<origin>" — the gateway must
		// not re-suffix that already-qualified form with the serving
		// node ("<id>@<origin>@<adopter>").
		retry := submitVia(t, gts.URL, quickSpec(workload), map[string]string{"Idempotency-Key": "takeover-k1"})
		if retry.ID != st.ID {
			t.Fatalf("keyed retry after takeover returned id %q, want the originally acked %q", retry.ID, st.ID)
		}

		doc := fetchMetrics(t, gts.URL)
		if got := metricAt(t, doc, "gateway.takeovers"); got != 1 {
			t.Fatalf("gateway.takeovers = %v, want 1", got)
		}
		if got := metricAt(t, doc, "gateway.aliases_active"); got != 1 {
			t.Fatalf("gateway.aliases_active = %v, want 1", got)
		}
	})
	waitGoroutinesSettle(t, before)
}

// TestGatewayDrainMigratesQueuedJobs covers proactive herding: with
// takeover armed, the admin drain migrates the node's queued jobs to
// its ring successor immediately — the draining node keeps only its
// running work, and every acked job still reaches done through the
// gateway's migration chase. Also wrapped for goroutine hygiene.
func TestGatewayDrainMigratesQueuedJobs(t *testing.T) {
	before := runtime.NumGoroutine()
	t.Run("scenario", func(t *testing.T) {
		const victim = "n0"
		faults := faultinject.New()
		if err := faults.Arm(server.FaultExec+"=delay:800ms", 1); err != nil {
			t.Fatalf("arm exec delay: %v", err)
		}
		_, gts, handles := startReplHerd(t, 3, func(name string, cfg *server.Config) {
			if name == victim {
				// Only the drain victim runs slow, so its queue backs up
				// while the successor finishes adopted jobs promptly.
				cfg.Faults = faults
			}
		}, nil)
		var victimURL string
		for _, h := range handles {
			if h.name == victim {
				victimURL = h.ts.URL
			}
		}

		// Five slow jobs straight onto the victim: two start running
		// (stuck in the exec delay), three queue behind them.
		gids := make([]string, 0, 5)
		for i := 0; i < 5; i++ {
			body := fmt.Sprintf(`{"kind":"timing","workload":"gcc","config":"TH","depths":{"fast_forward":200,"warmup":100,"measure":%d}}`, 200+i)
			resp, raw := postJSON(t, victimURL+"/v1/jobs", body, nil)
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("victim submit %d: HTTP %d: %s", i, resp.StatusCode, raw)
			}
			var st server.Status
			mustUnmarshal(t, raw, &st)
			gids = append(gids, globalID(st.ID, victim))
		}

		resp, raw := adminDo(t, http.MethodPost, gts.URL+"/v1/admin/nodes/"+victim+"/drain", testAdminToken, "")
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("drain: HTTP %d: %s", resp.StatusCode, raw)
		}
		var drainDoc map[string]any
		mustUnmarshal(t, raw, &drainDoc)
		if _, ok := drainDoc["migrated_to"]; !ok {
			t.Fatalf("drain reply did not migrate: %s", raw)
		}

		// Every acked job — migrated or still running on the drainer —
		// reaches done through the gateway, under its original id.
		for _, gid := range gids {
			st := waitDone(t, gts.URL, gid)
			if st.ID != gid {
				t.Fatalf("status id = %q, want the originally acked %q", st.ID, gid)
			}
		}
		doc := fetchMetrics(t, gts.URL)
		if got := metricAt(t, doc, "gateway.migrations"); got != 1 {
			t.Fatalf("gateway.migrations = %v, want 1", got)
		}
		if got := metricAt(t, doc, "jobs.migrated"); got < 1 {
			t.Fatalf("fleet jobs.migrated = %v, want >= 1", got)
		}
	})
	waitGoroutinesSettle(t, before)
}

// waitGoroutinesSettle asserts the goroutine count returns to its
// pre-scenario level (plus runtime slack) after all cleanups ran: the
// takeover and migration paths must not leak streamer, adoption, or
// probe goroutines.
func waitGoroutinesSettle(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+8 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: before=%d now=%d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
