package gateway

import (
	"testing"
	"time"
)

// TestLatEstimatorMinSamples: the p95 is withheld until the window has
// enough samples to mean anything.
func TestLatEstimatorMinSamples(t *testing.T) {
	var e latEstimator
	for i := 0; i < hedgeMinSamples-1; i++ {
		e.observe(10 * time.Millisecond)
		if _, ok := e.p95(); ok {
			t.Fatalf("p95 available after %d samples, want gated until %d", i+1, hedgeMinSamples)
		}
	}
	e.observe(10 * time.Millisecond)
	if _, ok := e.p95(); !ok {
		t.Fatalf("p95 unavailable at %d samples", hedgeMinSamples)
	}
}

// TestLatEstimatorP95: with a known distribution the p95 lands on the
// tail, and the sliding window forgets an old regime.
func TestLatEstimatorP95(t *testing.T) {
	var e latEstimator
	// 94 fast samples and a 6-sample slow tail: the p95 (index 94 of
	// the sorted 100) must surface the tail.
	for i := 0; i < 94; i++ {
		e.observe(time.Millisecond)
	}
	for i := 0; i < 6; i++ {
		e.observe(200 * time.Millisecond)
	}
	p, ok := e.p95()
	if !ok || p != 200*time.Millisecond {
		t.Fatalf("p95 = %v ok=%v, want 200ms from the 6%% tail", p, ok)
	}
	// The window slides: 128 fast samples push every slow one out.
	for i := 0; i < 128; i++ {
		e.observe(2 * time.Millisecond)
	}
	p, ok = e.p95()
	if !ok || p != 2*time.Millisecond {
		t.Fatalf("p95 after regime change = %v ok=%v, want 2ms", p, ok)
	}
}

// TestHedgerDelayClamps: the estimator-driven delay is clamped into
// [min, max] — the max clamp is what keeps hedging useful when a
// straggler drags the p95 itself.
func TestHedgerDelayClamps(t *testing.T) {
	h := newHedger(5*time.Millisecond, 100*time.Millisecond)
	if _, ok := h.delay(hedgeClassSubmit); ok {
		t.Fatal("delay available with no samples")
	}
	for i := 0; i < hedgeMinSamples; i++ {
		h.observe(hedgeClassSubmit, time.Microsecond)
	}
	if d, ok := h.delay(hedgeClassSubmit); !ok || d != 5*time.Millisecond {
		t.Fatalf("fast-class delay = %v ok=%v, want the 5ms min clamp", d, ok)
	}
	for i := 0; i < 128; i++ {
		h.observe(hedgeClassSubmit, 250*time.Millisecond)
	}
	if d, ok := h.delay(hedgeClassSubmit); !ok || d != 100*time.Millisecond {
		t.Fatalf("straggler-class delay = %v ok=%v, want the 100ms max clamp", d, ok)
	}
	// Classes are independent: the untouched status class stays gated.
	if _, ok := h.delay(hedgeClassStatus); ok {
		t.Fatal("status class shares samples with submit class")
	}
}

// TestRetryBudget: the bucket starts full (so a cold gateway can still
// fail over), deposits accrue at the ratio, the burst caps the balance,
// and an empty bucket refuses withdrawals.
func TestRetryBudget(t *testing.T) {
	b := newRetryBudget(0.1, 3)
	for i := 0; i < 3; i++ {
		if !b.take() {
			t.Fatalf("take %d refused from a full bucket of 3", i+1)
		}
	}
	if b.take() {
		t.Fatal("take succeeded from an empty bucket")
	}
	// 10 base requests at ratio 0.1 fund exactly one retry.
	b.deposit(10)
	if !b.take() {
		t.Fatal("take refused after 10 deposits at ratio 0.1")
	}
	if b.take() {
		t.Fatal("10 deposits at ratio 0.1 funded a second retry")
	}
	// The burst caps accrual: a quiet period cannot bank unlimited retries.
	b.deposit(1_000_000)
	for i := 0; i < 3; i++ {
		if !b.take() {
			t.Fatalf("take %d refused after a huge deposit (burst 3)", i+1)
		}
	}
	if b.take() {
		t.Fatal("burst cap did not bound the bucket")
	}
}

// TestSendGate: the pre-send abort window. An abort before tryBegin
// stops the attempt on the floor; one after tryBegin reports in-flight
// so the caller knows to reap.
func TestSendGate(t *testing.T) {
	var early sendGate
	if !early.abort() {
		t.Fatal("abort before send did not report pre-send")
	}
	if early.tryBegin() {
		t.Fatal("tryBegin succeeded after abort")
	}

	var late sendGate
	if !late.tryBegin() {
		t.Fatal("tryBegin refused on a fresh gate")
	}
	if late.abort() {
		t.Fatal("abort after send claimed the attempt never hit the wire")
	}
}
