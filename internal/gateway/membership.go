package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"thermalherd/internal/clock"
	"thermalherd/internal/faultinject"
)

// NodeState is the gateway's view of one backend, derived from its
// /readyz document (or the failure to fetch one).
type NodeState string

const (
	// NodeHealthy backends take all traffic.
	NodeHealthy NodeState = "healthy"
	// NodeBrownout backends are shedding queue-bound load: they stay in
	// the rotation for warm specs (their cache is why we route there)
	// but cold specs spill to less-loaded peers.
	NodeBrownout NodeState = "brownout"
	// NodeDraining backends are shutting down; ejected from routing.
	NodeDraining NodeState = "draining"
	// NodeRecovering backends are replaying their journal; ejected
	// until the replay completes.
	NodeRecovering NodeState = "recovering"
	// NodeDown backends failed FailThreshold consecutive probes (or
	// returned garbage); ejected until a probe succeeds again.
	NodeDown NodeState = "down"
)

// routable reports whether any traffic may be sent to a node in this
// state. Brownout is routable (deprioritized, not ejected).
func (s NodeState) routable() bool {
	return s == NodeHealthy || s == NodeBrownout
}

// Backend names one thermherdd node and its base URL.
type Backend struct {
	Name string
	URL  string
}

// NodeHealth is one backend's membership snapshot, served in the
// gateway's /metrics and /readyz documents.
type NodeHealth struct {
	Name string `json:"name"`
	URL  string `json:"url"`
	// State is the membership state machine's current classification.
	State NodeState `json:"state"`
	// Since is the backend-reported timestamp of its current readiness
	// condition (the /readyz "since" field); for NodeDown it is the
	// gateway-observed time of the first failed probe. It is how a
	// freshly-browning node is distinguished from a long-dead one.
	Since string `json:"since,omitempty"`
	// ConsecutiveFailures counts probes failed in a row.
	ConsecutiveFailures int `json:"consecutive_failures,omitempty"`
	// LastError is the most recent probe failure, empty when healthy.
	LastError string `json:"last_error,omitempty"`
}

// memberInfo is the mutable per-node record behind NodeHealth.
type memberInfo struct {
	backend     Backend
	state       NodeState
	since       time.Time
	consecFails int
	lastErr     string
}

// membership polls each backend's /readyz on a fixed interval and
// classifies it through the state machine above. Probes run through
// the clock seam and the fault-injection registry, so the chaos suite
// drives slow probes, dead backends, and split-brain views
// deterministically.
type membership struct {
	clk       clock.Clock
	hc        *http.Client
	faults    *faultinject.Registry
	interval  time.Duration
	timeout   time.Duration
	threshold int

	mu   sync.Mutex
	info map[string]*memberInfo

	started  atomic.Bool
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	probes        counterFunc
	probeFailures counterFunc
}

// counterFunc lets membership report probe counts into the gateway's
// metrics without a dependency cycle.
type counterFunc func()

func newMembership(backends []Backend, clk clock.Clock, faults *faultinject.Registry,
	interval, timeout time.Duration, threshold int) *membership {
	if interval <= 0 {
		interval = time.Second
	}
	if timeout <= 0 {
		timeout = 500 * time.Millisecond
	}
	if threshold <= 0 {
		threshold = 3
	}
	m := &membership{
		clk:           clk,
		hc:            &http.Client{},
		faults:        faults,
		interval:      interval,
		timeout:       timeout,
		threshold:     threshold,
		info:          make(map[string]*memberInfo, len(backends)),
		stop:          make(chan struct{}),
		done:          make(chan struct{}),
		probes:        func() {},
		probeFailures: func() {},
	}
	for _, b := range backends {
		// Optimistic boot: a backend starts healthy so the first requests
		// need not wait out a probe cycle; a dead one is ejected within
		// threshold probes (and suspected immediately on a failed forward).
		m.info[b.Name] = &memberInfo{backend: b, state: NodeHealthy, since: clk.Now()}
	}
	return m
}

// run is the probe loop; Gateway.Start launches it and Close stops it.
func (m *membership) run() {
	m.started.Store(true)
	defer close(m.done)
	for {
		select {
		case <-m.stop:
			return
		case <-m.clk.After(m.interval):
			m.ProbeAll(context.Background())
		}
	}
}

// close stops the probe loop and waits for it to exit. A membership
// whose loop was never launched (a gateway constructed but not
// Started) has nothing to wait for.
func (m *membership) close() {
	m.stopOnce.Do(func() { close(m.stop) })
	if !m.started.Load() {
		return
	}
	//thermlint:blocking -- done is closed unconditionally when run exits; the wait is bounded by one probe round
	<-m.done
}

// ProbeAll probes every backend once, concurrently. Tests (and the
// suspect path) call it directly to advance membership without waiting
// out the interval.
func (m *membership) ProbeAll(ctx context.Context) {
	m.mu.Lock()
	backends := make([]Backend, 0, len(m.info))
	//thermlint:unordered -- collecting map values to probe; probe order carries no meaning
	for _, mi := range m.info {
		backends = append(backends, mi.backend)
	}
	m.mu.Unlock()
	var wg sync.WaitGroup
	for _, b := range backends {
		wg.Add(1)
		go func(b Backend) {
			defer wg.Done()
			m.probe(ctx, b)
		}(b)
	}
	wg.Wait()
}

// suspect triggers an immediate asynchronous probe of one backend —
// the forward path calls it when a request to that backend fails, so
// ejection does not wait for the next interval tick.
func (m *membership) suspect(name string) {
	m.mu.Lock()
	mi, ok := m.info[name]
	var b Backend
	if ok {
		b = mi.backend
	}
	m.mu.Unlock()
	if !ok {
		return
	}
	go m.probe(context.Background(), b)
}

// readyzDoc is the backend /readyz body the prober decodes.
type readyzDoc struct {
	Ready  bool   `json:"ready"`
	Reason string `json:"reason"`
	Since  string `json:"since"`
}

// probe fetches one backend's /readyz and applies the result to the
// state machine. The FaultProbe point injects slow probes (delay
// action) and dead backends (error action); FaultSplitBrain discards a
// successful response, so this gateway's view diverges from reality —
// exactly the one-sided membership split the chaos suite exercises.
func (m *membership) probe(ctx context.Context, b Backend) {
	m.probes()
	if err := m.faults.Fire(FaultProbe); err != nil {
		m.applyFailure(b.Name, fmt.Errorf("probe: %w", err))
		return
	}
	doc, err := m.fetchReadyz(ctx, b)
	if err != nil {
		m.applyFailure(b.Name, err)
		return
	}
	if err := m.faults.Fire(FaultSplitBrain); err != nil {
		m.applyFailure(b.Name, fmt.Errorf("split-brain: %w", err))
		return
	}
	m.applyReadyz(b.Name, doc)
}

// fetchReadyz performs the HTTP probe under the probe timeout. Both a
// 200 and a 503 carrying a decodable document are successful probes —
// a browning-out backend is alive and telling us so.
func (m *membership) fetchReadyz(ctx context.Context, b Backend) (readyzDoc, error) {
	pctx, cancel := context.WithTimeout(ctx, m.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, b.URL+"/readyz", nil)
	if err != nil {
		return readyzDoc{}, err
	}
	resp, err := m.hc.Do(req)
	if err != nil {
		return readyzDoc{}, err
	}
	defer resp.Body.Close()
	var doc readyzDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return readyzDoc{}, fmt.Errorf("bad /readyz body: %w", err)
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return readyzDoc{}, fmt.Errorf("/readyz HTTP %d", resp.StatusCode)
	}
	return doc, nil
}

// applyReadyz folds a successful probe into the state machine.
func (m *membership) applyReadyz(name string, doc readyzDoc) {
	state := NodeHealthy
	if !doc.Ready {
		switch doc.Reason {
		case "brownout":
			state = NodeBrownout
		case "draining":
			state = NodeDraining
		case "recovering":
			state = NodeRecovering
		default:
			// Not ready for a reason this gateway does not understand:
			// treat it as down — routing to it would be a guess.
			state = NodeDown
		}
	}
	since, _ := time.Parse(time.RFC3339Nano, doc.Since)
	m.mu.Lock()
	defer m.mu.Unlock()
	mi, ok := m.info[name]
	if !ok {
		return
	}
	mi.consecFails = 0
	mi.lastErr = ""
	if mi.state != state {
		mi.state = state
		mi.since = m.clk.Now()
	}
	if !since.IsZero() {
		// Prefer the backend's own account of when the condition began:
		// it survives gateway restarts and is what distinguishes a
		// freshly-browning node from a long-unready one.
		mi.since = since
	}
}

// applyFailure folds a failed probe into the state machine: the node
// is marked down after threshold consecutive failures.
func (m *membership) applyFailure(name string, err error) {
	m.probeFailures()
	m.mu.Lock()
	defer m.mu.Unlock()
	mi, ok := m.info[name]
	if !ok {
		return
	}
	mi.consecFails++
	mi.lastErr = err.Error()
	if mi.consecFails >= m.threshold && mi.state != NodeDown {
		mi.state = NodeDown
		mi.since = m.clk.Now()
	}
}

// state returns one node's current classification.
func (m *membership) state(name string) NodeState {
	m.mu.Lock()
	defer m.mu.Unlock()
	if mi, ok := m.info[name]; ok {
		return mi.state
	}
	return NodeDown
}

// snapshot renders every node's health, sorted by name.
func (m *membership) snapshot() []NodeHealth {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]NodeHealth, 0, len(m.info))
	//thermlint:unordered -- collecting map values for an explicit sort below
	for _, mi := range m.info {
		h := NodeHealth{
			Name:                mi.backend.Name,
			URL:                 mi.backend.URL,
			State:               mi.state,
			ConsecutiveFailures: mi.consecFails,
			LastError:           mi.lastErr,
		}
		if !mi.since.IsZero() {
			h.Since = mi.since.Format(time.RFC3339Nano)
		}
		out = append(out, h)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Name < out[k].Name })
	return out
}
