package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"thermalherd/internal/clock"
	"thermalherd/internal/faultinject"
)

// NodeState is the gateway's view of one backend, derived from its
// /readyz document (or the failure to fetch one).
type NodeState string

const (
	// NodeHealthy backends take all traffic.
	NodeHealthy NodeState = "healthy"
	// NodeBrownout backends are shedding queue-bound load: they stay in
	// the rotation for warm specs (their cache is why we route there)
	// but cold specs spill to less-loaded peers.
	NodeBrownout NodeState = "brownout"
	// NodeDraining backends are shutting down; ejected from routing.
	NodeDraining NodeState = "draining"
	// NodeRecovering backends are replaying their journal; ejected
	// until the replay completes.
	NodeRecovering NodeState = "recovering"
	// NodeDown backends failed FailThreshold consecutive probes (or
	// returned garbage); ejected until a probe succeeds again.
	NodeDown NodeState = "down"
	// NodeJoining backends were just added through the admin API; they
	// take no traffic until a probe confirms them healthy, so a typo'd
	// URL or a still-booting node never eats live submits.
	NodeJoining NodeState = "joining"
	// NodeSuspect backends flapped healthy<->down too fast; they are
	// held out of rotation for a cooldown instead of re-entering on
	// every flip (each re-entry costs real requests that fail over).
	NodeSuspect NodeState = "suspect"
)

// routable reports whether any traffic may be sent to a node in this
// state. Brownout is routable (deprioritized, not ejected).
func (s NodeState) routable() bool {
	return s == NodeHealthy || s == NodeBrownout
}

// Backend names one thermherdd node and its base URL.
type Backend struct {
	Name string
	URL  string
}

// NodeHealth is one backend's membership snapshot, served in the
// gateway's /metrics and /readyz documents.
type NodeHealth struct {
	Name string `json:"name"`
	URL  string `json:"url"`
	// State is the membership state machine's current classification.
	State NodeState `json:"state"`
	// Since is the backend-reported timestamp of its current readiness
	// condition (the /readyz "since" field); for NodeDown it is the
	// gateway-observed time of the first failed probe. It is how a
	// freshly-browning node is distinguished from a long-dead one.
	Since string `json:"since,omitempty"`
	// ConsecutiveFailures counts probes failed in a row.
	ConsecutiveFailures int `json:"consecutive_failures,omitempty"`
	// LastError is the most recent probe failure, empty when healthy.
	LastError string `json:"last_error,omitempty"`
	// Breaker is the node's circuit-breaker position (closed / open /
	// half-open), filled in by the gateway when it renders a snapshot.
	Breaker string `json:"breaker,omitempty"`
}

// memberInfo is the mutable per-node record behind NodeHealth.
type memberInfo struct {
	backend     Backend
	state       NodeState
	since       time.Time
	consecFails int
	lastErr     string
	// pinnedDrain forces the state to NodeDraining regardless of what
	// probes report: the admin API set it, and only a re-add clears it.
	pinnedDrain bool
	// flips timestamps recent routable<->nonroutable transitions; too
	// many inside flapWindow marks the node suspect.
	flips []time.Time
	// suspectUntil bars the node from re-entering rotation before the
	// flap cooldown has elapsed.
	suspectUntil time.Time
}

// membership polls each backend's /readyz on a fixed interval and
// classifies it through the state machine above. Probes run through
// the clock seam and the fault-injection registry, so the chaos suite
// drives slow probes, dead backends, and split-brain views
// deterministically.
type membership struct {
	clk       clock.Clock
	hc        *http.Client
	faults    *faultinject.Registry
	interval  time.Duration
	timeout   time.Duration
	threshold int

	// Flap damping: flapFlips routability transitions within flapWindow
	// hold the node suspect for flapCooldown.
	flapWindow   time.Duration
	flapFlips    int
	flapCooldown time.Duration

	mu   sync.Mutex
	info map[string]*memberInfo

	started  atomic.Bool
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	probes        counterFunc
	probeFailures counterFunc
	// onProbe reports each probe's outcome (reached the backend or
	// not) so the gateway can feed its circuit breakers.
	onProbe func(name string, ok bool)
}

// counterFunc lets membership report probe counts into the gateway's
// metrics without a dependency cycle.
type counterFunc func()

func newMembership(backends []Backend, clk clock.Clock, faults *faultinject.Registry,
	interval, timeout time.Duration, threshold int) *membership {
	if interval <= 0 {
		interval = time.Second
	}
	if timeout <= 0 {
		timeout = 500 * time.Millisecond
	}
	if threshold <= 0 {
		threshold = 3
	}
	m := &membership{
		clk:           clk,
		hc:            &http.Client{},
		faults:        faults,
		interval:      interval,
		timeout:       timeout,
		threshold:     threshold,
		flapWindow:    10 * time.Second,
		flapFlips:     3,
		flapCooldown:  5 * time.Second,
		info:          make(map[string]*memberInfo, len(backends)),
		stop:          make(chan struct{}),
		done:          make(chan struct{}),
		probes:        func() {},
		probeFailures: func() {},
		onProbe:       func(string, bool) {},
	}
	for _, b := range backends {
		// Optimistic boot: a backend starts healthy so the first requests
		// need not wait out a probe cycle; a dead one is ejected within
		// threshold probes (and suspected immediately on a failed forward).
		m.info[b.Name] = &memberInfo{backend: b, state: NodeHealthy, since: clk.Now()}
	}
	return m
}

// run is the probe loop; Gateway.Start launches it and Close stops it.
func (m *membership) run() {
	m.started.Store(true)
	defer close(m.done)
	for {
		select {
		case <-m.stop:
			return
		case <-m.clk.After(m.interval):
			m.ProbeAll(context.Background())
		}
	}
}

// close stops the probe loop and waits for it to exit. A membership
// whose loop was never launched (a gateway constructed but not
// Started) has nothing to wait for.
func (m *membership) close() {
	m.stopOnce.Do(func() { close(m.stop) })
	if !m.started.Load() {
		return
	}
	//thermlint:blocking -- done is closed unconditionally when run exits; the wait is bounded by one probe round
	<-m.done
}

// ProbeAll probes every backend once, concurrently. Tests (and the
// suspect path) call it directly to advance membership without waiting
// out the interval.
func (m *membership) ProbeAll(ctx context.Context) {
	m.mu.Lock()
	backends := make([]Backend, 0, len(m.info))
	//thermlint:unordered -- collecting map values to probe; probe order carries no meaning
	for _, mi := range m.info {
		backends = append(backends, mi.backend)
	}
	m.mu.Unlock()
	var wg sync.WaitGroup
	for _, b := range backends {
		wg.Add(1)
		go func(b Backend) {
			defer wg.Done()
			m.probe(ctx, b)
		}(b)
	}
	wg.Wait()
}

// suspect triggers an immediate asynchronous probe of one backend —
// the forward path calls it when a request to that backend fails, so
// ejection does not wait for the next interval tick.
func (m *membership) suspect(name string) {
	m.mu.Lock()
	mi, ok := m.info[name]
	var b Backend
	if ok {
		b = mi.backend
	}
	m.mu.Unlock()
	if !ok {
		return
	}
	//thermlint:goroutine -- one /readyz fetch bounded by the probe client's timeout
	go m.probe(context.Background(), b)
}

// readyzDoc is the backend /readyz body the prober decodes.
type readyzDoc struct {
	Ready  bool   `json:"ready"`
	Reason string `json:"reason"`
	Since  string `json:"since"`
}

// probe fetches one backend's /readyz and applies the result to the
// state machine. The FaultProbe point injects slow probes (delay
// action) and dead backends (error action); FaultSplitBrain discards a
// successful response, so this gateway's view diverges from reality —
// exactly the one-sided membership split the chaos suite exercises.
func (m *membership) probe(ctx context.Context, b Backend) {
	m.probes()
	if err := m.faults.Fire(FaultProbe); err != nil {
		m.applyFailure(b.Name, fmt.Errorf("probe: %w", err))
		m.onProbe(b.Name, false)
		return
	}
	doc, err := m.fetchReadyz(ctx, b)
	if err != nil {
		m.applyFailure(b.Name, err)
		m.onProbe(b.Name, false)
		return
	}
	if err := m.faults.Fire(FaultSplitBrain); err != nil {
		m.applyFailure(b.Name, fmt.Errorf("split-brain: %w", err))
		m.onProbe(b.Name, false)
		return
	}
	m.applyReadyz(b.Name, doc)
	// Any decodable /readyz — even a draining 503 — means the backend
	// is alive: a good outcome as far as the circuit breaker cares.
	m.onProbe(b.Name, true)
}

// fetchReadyz performs the HTTP probe under the probe timeout. Both a
// 200 and a 503 carrying a decodable document are successful probes —
// a browning-out backend is alive and telling us so.
func (m *membership) fetchReadyz(ctx context.Context, b Backend) (readyzDoc, error) {
	pctx, cancel := context.WithTimeout(ctx, m.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, b.URL+"/readyz", nil)
	if err != nil {
		return readyzDoc{}, err
	}
	resp, err := m.hc.Do(req)
	if err != nil {
		return readyzDoc{}, err
	}
	defer resp.Body.Close()
	var doc readyzDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return readyzDoc{}, fmt.Errorf("bad /readyz body: %w", err)
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return readyzDoc{}, fmt.Errorf("/readyz HTTP %d", resp.StatusCode)
	}
	return doc, nil
}

// applyReadyz folds a successful probe into the state machine.
func (m *membership) applyReadyz(name string, doc readyzDoc) {
	state := NodeHealthy
	if !doc.Ready {
		switch doc.Reason {
		case "brownout":
			state = NodeBrownout
		case "draining":
			state = NodeDraining
		case "recovering":
			state = NodeRecovering
		default:
			// Not ready for a reason this gateway does not understand:
			// treat it as down — routing to it would be a guess.
			state = NodeDown
		}
	}
	since, _ := time.Parse(time.RFC3339Nano, doc.Since)
	m.mu.Lock()
	defer m.mu.Unlock()
	mi, ok := m.info[name]
	if !ok {
		return
	}
	mi.consecFails = 0
	mi.lastErr = ""
	m.transition(mi, state)
	if !since.IsZero() && mi.state == state {
		// Prefer the backend's own account of when the condition began:
		// it survives gateway restarts and is what distinguishes a
		// freshly-browning node from a long-unready one. A transition
		// the damper or the drain pin overrode keeps the gateway's own
		// timestamp — the backend's story is not the one we believed.
		mi.since = since
	}
}

// applyFailure folds a failed probe into the state machine: the node
// is marked down after threshold consecutive failures.
func (m *membership) applyFailure(name string, err error) {
	m.probeFailures()
	m.mu.Lock()
	defer m.mu.Unlock()
	mi, ok := m.info[name]
	if !ok {
		return
	}
	mi.consecFails++
	mi.lastErr = err.Error()
	if mi.consecFails >= m.threshold {
		m.transition(mi, NodeDown)
	}
}

// transition moves one node through the state machine under m.mu,
// applying the two policies that may override the raw observation: the
// admin drain pin (a pinned node never leaves draining until re-added)
// and flap damping — flapFlips routability changes inside flapWindow
// hold the node in NodeSuspect for flapCooldown, so an oscillating
// backend stops re-entering rotation on every good probe. A node that
// has served its cooldown re-enters with a clean flip history.
func (m *membership) transition(mi *memberInfo, to NodeState) {
	now := m.clk.Now()
	if mi.pinnedDrain {
		to = NodeDraining
	}
	from := mi.state
	if to.routable() && !from.routable() && now.Before(mi.suspectUntil) {
		to = NodeSuspect
	}
	if to == from {
		return
	}
	// Count routability flips; the initial joining->healthy promotion
	// is a node taking traffic for the first time, not a flap.
	if to.routable() != from.routable() && from != NodeJoining {
		kept := mi.flips[:0]
		for _, ts := range mi.flips {
			if now.Sub(ts) <= m.flapWindow {
				kept = append(kept, ts)
			}
		}
		mi.flips = append(kept, now)
		if len(mi.flips) >= m.flapFlips {
			mi.suspectUntil = now.Add(m.flapCooldown)
			mi.flips = nil
			if to.routable() {
				to = NodeSuspect
			}
		}
	}
	if to.routable() && from == NodeSuspect {
		mi.flips = nil
		mi.suspectUntil = time.Time{}
	}
	if to == from {
		return
	}
	mi.state = to
	mi.since = now
}

// addMember registers a node added at runtime, starting in the given
// state (the admin API uses NodeJoining so it takes no traffic until
// probed healthy). Re-adding an existing name resets its record —
// including a drain pin.
func (m *membership) addMember(b Backend, state NodeState) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.info[b.Name] = &memberInfo{backend: b, state: state, since: m.clk.Now()}
}

// removeMember forgets a node; its probes stop at the next round.
func (m *membership) removeMember(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.info, name)
}

// pinDrain forces a node into NodeDraining and keeps it there against
// anything its probes report; only removal or re-add clears the pin.
func (m *membership) pinDrain(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	mi, ok := m.info[name]
	if !ok {
		return false
	}
	mi.pinnedDrain = true
	m.transition(mi, NodeDraining)
	return true
}

// downSince reports when the named node entered NodeDown; the zero
// time when it is absent or in any other state. The takeover path
// reads it to decide whether a dead node has been dead long enough.
func (m *membership) downSince(name string) time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	if mi, ok := m.info[name]; ok && mi.state == NodeDown {
		return mi.since
	}
	return time.Time{}
}

// state returns one node's current classification.
func (m *membership) state(name string) NodeState {
	m.mu.Lock()
	defer m.mu.Unlock()
	if mi, ok := m.info[name]; ok {
		return mi.state
	}
	return NodeDown
}

// snapshot renders every node's health, sorted by name.
func (m *membership) snapshot() []NodeHealth {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]NodeHealth, 0, len(m.info))
	//thermlint:unordered -- collecting map values for an explicit sort below
	for _, mi := range m.info {
		h := NodeHealth{
			Name:                mi.backend.Name,
			URL:                 mi.backend.URL,
			State:               mi.state,
			ConsecutiveFailures: mi.consecFails,
			LastError:           mi.lastErr,
		}
		if !mi.since.IsZero() {
			h.Since = mi.since.Format(time.RFC3339Nano)
		}
		out = append(out, h)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Name < out[k].Name })
	return out
}
