package gateway

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

const testAdminToken = "test-admin-token"

// startHerdWith is startHerd with a Config hook, for tests that need
// hedging, admin access, or a fault registry wired in.
func startHerdWith(t *testing.T, n int, mutate func(*Config)) (*Gateway, *httptest.Server, []*backendHandle) {
	t.Helper()
	handles := make([]*backendHandle, n)
	backends := make([]Backend, n)
	for i := 0; i < n; i++ {
		handles[i] = startBackend(t, fmt.Sprintf("n%d", i))
		backends[i] = Backend{Name: handles[i].name, URL: handles[i].ts.URL}
	}
	cfg := Config{Backends: backends, ProbeInterval: time.Hour}
	if mutate != nil {
		mutate(&cfg)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	g.Start()
	ts := httptest.NewServer(g)
	t.Cleanup(func() {
		ts.Close()
		g.Close()
	})
	return g, ts, handles
}

// adminDo issues one admin-API request with the given bearer token.
func adminDo(t *testing.T, method, url, token, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s %s reply: %v", method, url, err)
	}
	return resp, buf
}

func mustUnmarshal(t *testing.T, raw []byte, out any) {
	t.Helper()
	if err := json.Unmarshal(raw, out); err != nil {
		t.Fatalf("unmarshal %s: %v", raw, err)
	}
}

// TestGatewayAdminAuth: without a configured token the admin API is
// disabled outright; with one, only the exact bearer token passes.
func TestGatewayAdminAuth(t *testing.T) {
	_, tsNoToken, _ := startHerd(t, 2)
	if resp, _ := adminDo(t, http.MethodGet, tsNoToken.URL+"/v1/admin/nodes", "whatever", ""); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("admin call on tokenless gateway: HTTP %d, want 403", resp.StatusCode)
	}

	_, ts, _ := startHerdWith(t, 2, func(c *Config) { c.AdminToken = testAdminToken })
	if resp, _ := adminDo(t, http.MethodGet, ts.URL+"/v1/admin/nodes", "", ""); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("admin call without token: HTTP %d, want 401", resp.StatusCode)
	}
	if resp, _ := adminDo(t, http.MethodGet, ts.URL+"/v1/admin/nodes", "wrong-token", ""); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("admin call with wrong token: HTTP %d, want 401", resp.StatusCode)
	}
	var doc adminTopologyDoc
	resp, raw := adminDo(t, http.MethodGet, ts.URL+"/v1/admin/nodes", testAdminToken, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authorized admin list: HTTP %d: %s", resp.StatusCode, raw)
	}
	mustUnmarshal(t, raw, &doc)
	if doc.Epoch != 1 || len(doc.Nodes) != 2 {
		t.Fatalf("topology = epoch %d with %d nodes, want epoch 1 with 2", doc.Epoch, len(doc.Nodes))
	}
	for _, n := range doc.Nodes {
		if n.Breaker != string(breakerClosed) {
			t.Fatalf("node %s breaker = %q, want closed", n.Name, n.Breaker)
		}
	}
}

// TestGatewayAdminAddNode: a backend added at runtime enters as
// joining, is promoted by a probe, takes exactly the ring shard a
// static 4-node gateway would give it, and bumps the epoch.
func TestGatewayAdminAddNode(t *testing.T) {
	g, ts, _ := startHerdWith(t, 3, func(c *Config) { c.AdminToken = testAdminToken })
	joiner := startBackend(t, "n3")

	resp, raw := adminDo(t, http.MethodPost, ts.URL+"/v1/admin/nodes", testAdminToken,
		fmt.Sprintf(`{"name":"n3","url":%q}`, joiner.ts.URL))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add node: HTTP %d: %s", resp.StatusCode, raw)
	}
	if g.Epoch() != 2 {
		t.Fatalf("epoch after add = %d, want 2", g.Epoch())
	}

	// The joiner is live, so the kicked-off probe promotes it shortly.
	deadline := time.Now().Add(5 * time.Second)
	for g.members.state("n3") != NodeHealthy {
		if time.Now().After(deadline) {
			t.Fatalf("joiner never reached healthy (state %s)", g.members.state("n3"))
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Deterministic rehash: the live gateway's ring now answers
	// identically to a ring built over 4 static nodes.
	want := NewRing(g.cfg.VNodes)
	for _, n := range []string{"n0", "n1", "n2", "n3"} {
		want.Add(n)
	}
	workload := ""
	for _, name := range []string{"bitcount", "mcf", "gzip", "crc32", "fft", "dijkstra"} {
		if want.Lookup(quickSpecHash(t, name)) == "n3" {
			workload = name
			break
		}
	}
	if workload == "" {
		workload = workloadHomedOn(t, g, "n3") // fall back to the suite scan
	}
	if got := g.ring.Lookup(quickSpecHash(t, workload)); got != "n3" {
		t.Fatalf("live ring homes %s on %q, static 4-node ring says n3", workload, got)
	}
	st := submitVia(t, ts.URL, quickSpec(workload), nil)
	if _, node, _ := splitID(st.ID); node != "n3" {
		t.Fatalf("submit landed on %q, want the joiner n3", node)
	}
	waitDone(t, ts.URL, st.ID)

	// Duplicate adds are refused.
	if resp, _ := adminDo(t, http.MethodPost, ts.URL+"/v1/admin/nodes", testAdminToken,
		fmt.Sprintf(`{"name":"n3","url":%q}`, joiner.ts.URL)); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate add: HTTP %d, want 409", resp.StatusCode)
	}
}

// TestGatewayAdminJoiningTakesNoTraffic: a joiner that never probes
// healthy (dead URL) is in the ring but not in the rotation — its shard
// keeps failing over instead of eating live submits.
func TestGatewayAdminJoiningTakesNoTraffic(t *testing.T) {
	g, ts, _ := startHerdWith(t, 2, func(c *Config) { c.AdminToken = testAdminToken })
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close()

	resp, raw := adminDo(t, http.MethodPost, ts.URL+"/v1/admin/nodes", testAdminToken,
		fmt.Sprintf(`{"name":"n2","url":%q}`, dead.URL))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add node: HTTP %d: %s", resp.StatusCode, raw)
	}
	workload := workloadHomedOn(t, g, "n2")
	st := submitVia(t, ts.URL, quickSpec(workload), nil)
	if _, node, _ := splitID(st.ID); node == "n2" {
		t.Fatal("submit routed to a joiner that was never probed healthy")
	}
}

// TestGatewayAdminDrainRemoveLifecycle: drain pins the node out of the
// submit rotation while its existing jobs stay readable; remove bumps
// the epoch, shrinks the ring, and leaves a tombstone so old namespaced
// ids still route to the living process.
func TestGatewayAdminDrainRemoveLifecycle(t *testing.T) {
	g, ts, _ := startHerdWith(t, 3, func(c *Config) { c.AdminToken = testAdminToken })
	workload := workloadHomedOn(t, g, "n1")
	st := submitVia(t, ts.URL, quickSpec(workload), nil)
	waitDone(t, ts.URL, st.ID)

	resp, raw := adminDo(t, http.MethodPost, ts.URL+"/v1/admin/nodes/n1/drain", testAdminToken, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("drain: HTTP %d: %s", resp.StatusCode, raw)
	}
	if got := g.members.state("n1"); got != NodeDraining {
		t.Fatalf("state after drain = %s, want draining", got)
	}
	g.ProbeNow() // the healthy backend cannot unpin itself
	if got := g.members.state("n1"); got != NodeDraining {
		t.Fatalf("state after post-drain probe = %s, want still draining", got)
	}

	// New placements avoid the draining node; its old job stays readable.
	st2 := submitVia(t, ts.URL, quickSpec(workload), nil)
	if _, node, _ := splitID(st2.ID); node == "n1" {
		t.Fatal("submit routed to a draining node")
	}
	waitDone(t, ts.URL, st.ID)

	// The node's jobs are settled (done), so removal is permitted.
	resp, raw = adminDo(t, http.MethodDelete, ts.URL+"/v1/admin/nodes/n1", testAdminToken, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remove: HTTP %d: %s", resp.StatusCode, raw)
	}
	if g.Epoch() != 2 {
		t.Fatalf("epoch after remove = %d, want 2", g.Epoch())
	}
	if nodes := g.ringNodes(); len(nodes) != 2 {
		t.Fatalf("ring after remove = %v, want 2 nodes", nodes)
	}

	// Tombstone: the removed node's namespaced id still resolves while
	// the backend process lives.
	got := waitDone(t, ts.URL, st.ID)
	if got.ID != st.ID {
		t.Fatalf("tombstone read returned id %q, want %q", got.ID, st.ID)
	}

	// Removing an unknown node is a clean 404.
	if resp, _ := adminDo(t, http.MethodDelete, ts.URL+"/v1/admin/nodes/ghost", testAdminToken, ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("remove unknown node: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestGatewayAdminRemoveRefusesUnknownLoad: when the gateway cannot
// prove a node idle (its list endpoint is unreachable), removal is
// refused without force=1 — losing acked jobs must take an explicit
// override.
func TestGatewayAdminRemoveRefusesUnknownLoad(t *testing.T) {
	fakes := make([]*fakeBackend, 2)
	backends := make([]Backend, 2)
	for i := range fakes {
		fakes[i] = newFakeBackend(t) // no GET /v1/jobs handler
		backends[i] = Backend{Name: fmt.Sprintf("n%d", i), URL: fakes[i].ts.URL}
	}
	g, err := New(Config{Backends: backends, ProbeInterval: time.Hour, AdminToken: testAdminToken})
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	ts := httptest.NewServer(g)
	t.Cleanup(func() {
		ts.Close()
		g.Close()
	})

	resp, raw := adminDo(t, http.MethodDelete, ts.URL+"/v1/admin/nodes/n1", testAdminToken, "")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("remove with unknown load: HTTP %d: %s, want 409", resp.StatusCode, raw)
	}
	if resp, raw = adminDo(t, http.MethodDelete, ts.URL+"/v1/admin/nodes/n1?force=1", testAdminToken, ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("forced remove: HTTP %d: %s, want 200", resp.StatusCode, raw)
	}
	if g.Epoch() != 2 {
		t.Fatalf("epoch after forced remove = %d, want 2", g.Epoch())
	}
}
