package gateway

import (
	"testing"
	"time"

	"thermalherd/internal/clock"
	"thermalherd/internal/faultinject"
)

// TestBreakerStateMachine walks one node's circuit through every
// transition on a fake clock: closed under threshold, open at
// threshold, half-open after the cooldown with exactly one trial slot,
// re-open on a failed trial, closed on a successful one.
func TestBreakerStateMachine(t *testing.T) {
	fc := clock.NewFake(time.Unix(1_700_000_000, 0))
	opens := 0
	b := newBreaker(fc, nil, 3, 5*time.Second)
	b.onOpen = func() { opens++ }
	b.add("n0")

	// Closed: failures below threshold leave it passing traffic.
	for i := 1; i <= 2; i++ {
		b.failure("n0")
		if got := b.stateOf("n0"); got != breakerClosed {
			t.Fatalf("after %d failures state = %s, want closed", i, got)
		}
		if !b.allow("n0") {
			t.Fatalf("closed breaker denied traffic after %d failures", i)
		}
	}

	// A success resets the consecutive-failure count.
	b.success("n0")
	b.failure("n0")
	b.failure("n0")
	if got := b.stateOf("n0"); got != breakerClosed {
		t.Fatalf("success did not reset the failure count: state = %s", got)
	}

	// Threshold consecutive failures open the circuit.
	b.failure("n0")
	if got := b.stateOf("n0"); got != breakerOpen {
		t.Fatalf("state at threshold = %s, want open", got)
	}
	if opens != 1 {
		t.Fatalf("onOpen fired %d times, want 1", opens)
	}
	if b.allow("n0") || b.available("n0") {
		t.Fatal("open breaker passed traffic inside the cooldown")
	}

	// Cooldown elapsed: exactly one half-open trial is granted.
	fc.Advance(5 * time.Second)
	if !b.available("n0") {
		t.Fatal("breaker not available after the cooldown elapsed")
	}
	if !b.allow("n0") {
		t.Fatal("breaker denied the half-open trial")
	}
	if got := b.stateOf("n0"); got != breakerHalfOpen {
		t.Fatalf("state after trial grant = %s, want half-open", got)
	}
	if b.allow("n0") || b.available("n0") {
		t.Fatal("second trial granted while the first is in flight")
	}

	// The trial fails: the circuit re-opens and the cooldown re-arms.
	b.failure("n0")
	if got := b.stateOf("n0"); got != breakerOpen {
		t.Fatalf("state after failed trial = %s, want open", got)
	}
	if opens != 2 {
		t.Fatalf("onOpen fired %d times after the failed trial, want 2", opens)
	}
	if b.allow("n0") {
		t.Fatal("re-opened breaker passed traffic before the fresh cooldown")
	}

	// Second trial succeeds: the circuit closes fully.
	fc.Advance(5 * time.Second)
	if !b.allow("n0") {
		t.Fatal("breaker denied the second trial")
	}
	b.success("n0")
	if got := b.stateOf("n0"); got != breakerClosed {
		t.Fatalf("state after successful trial = %s, want closed", got)
	}
	if !b.allow("n0") || !b.available("n0") {
		t.Fatal("closed breaker denied traffic")
	}
}

// TestBreakerUnknownNode: nodes the breaker does not track (removed, or
// never added) pass traffic — the breaker fails open, membership is the
// authority on their existence.
func TestBreakerUnknownNode(t *testing.T) {
	b := newBreaker(clock.NewFake(time.Unix(1_700_000_000, 0)), nil, 3, time.Second)
	if !b.allow("ghost") || !b.available("ghost") {
		t.Fatal("untracked node denied traffic")
	}
	if got := b.stateOf("ghost"); got != breakerClosed {
		t.Fatalf("untracked node state = %s, want closed", got)
	}
	b.add("n0")
	b.failure("n0")
	b.failure("n0")
	b.failure("n0")
	b.remove("n0")
	if !b.allow("n0") {
		t.Fatal("removed node kept its open circuit")
	}
}

// TestBreakerFault: the gw.breaker fault point forces admission
// denials without any real failures.
func TestBreakerFault(t *testing.T) {
	faults := faultinject.New()
	if err := faults.Arm(FaultBreaker+"=error:chaos denial,count:2", 1); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	b := newBreaker(clock.NewFake(time.Unix(1_700_000_000, 0)), faults, 3, time.Second)
	b.add("n0")
	if b.allow("n0") || b.allow("n0") {
		t.Fatal("armed gw.breaker fault did not deny admission")
	}
	if !b.allow("n0") {
		t.Fatal("exhausted (count:2) fault still denying admission")
	}
}
