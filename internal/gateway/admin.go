package gateway

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"

	"thermalherd/internal/server"
)

// The admin API mutates the ring at runtime:
//
//	POST   /v1/admin/nodes              add a backend (starts joining)
//	GET    /v1/admin/nodes              topology + health + inflight
//	POST   /v1/admin/nodes/{name}/drain pin a backend draining
//	DELETE /v1/admin/nodes/{name}       remove an idle backend
//
// Every mutation happens atomically under the topology write lock and
// bumps the epoch counter, so a request routed before the change sees
// the old ring end-to-end and one routed after sees the new one —
// never a half-applied rehash. The drain → settle → delete workflow is
// how a node leaves without losing jobs: draining stops new
// placements (status reads keep routing), and DELETE refuses while
// the node still holds queued or running work.

// adminNodeRequest is the POST /v1/admin/nodes body.
type adminNodeRequest struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// adminNodeDoc is one node's row in admin replies: its membership
// health plus the gateway-tracked in-flight submit count.
type adminNodeDoc struct {
	NodeHealth
	Inflight int64 `json:"inflight"`
}

// adminTopologyDoc is the GET /v1/admin/nodes reply.
type adminTopologyDoc struct {
	Epoch uint64         `json:"epoch"`
	Nodes []adminNodeDoc `json:"nodes"`
}

// requireAdmin guards an admin handler: a gateway started without an
// admin token has the API disabled outright (403), and the bearer
// token is compared in constant time. The FaultAdmin point fires after
// authentication, before the wrapped operation.
func (g *Gateway) requireAdmin(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if g.cfg.AdminToken == "" {
			writeError(w, http.StatusForbidden, "admin API disabled (gateway started without an admin token)")
			return
		}
		const prefix = "Bearer "
		auth := r.Header.Get("Authorization")
		if !strings.HasPrefix(auth, prefix) ||
			subtle.ConstantTimeCompare([]byte(strings.TrimPrefix(auth, prefix)), []byte(g.cfg.AdminToken)) != 1 {
			writeError(w, http.StatusUnauthorized, "admin API requires a valid bearer token")
			return
		}
		if err := g.cfg.Faults.Fire(FaultAdmin); err != nil {
			writeError(w, http.StatusInternalServerError, "admin chaos: %v", err)
			return
		}
		next(w, r)
	}
}

// activeBackend resolves a name against the live set only (no
// tombstones): admin operations act on current members.
func (g *Gateway) activeBackend(name string) (Backend, bool) {
	g.topo.RLock()
	defer g.topo.RUnlock()
	b, ok := g.byName[name]
	return b, ok
}

// handleAdminAddNode adds a backend to the ring without a restart. The
// node enters membership as NodeJoining — it takes no traffic until a
// probe confirms it healthy — and an immediate probe is kicked off so
// a live joiner starts serving within one probe round-trip, not one
// probe interval. The deterministic vnode rehash means the joiner
// takes exactly the ring shard it would have owned at startup.
func (g *Gateway) handleAdminAddNode(w http.ResponseWriter, r *http.Request) {
	var req adminNodeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad node payload: %v", err)
		return
	}
	b := Backend{Name: req.Name, URL: strings.TrimRight(req.URL, "/")}
	if err := validateBackend(b); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	g.topo.Lock()
	if _, dup := g.byName[b.Name]; dup {
		g.topo.Unlock()
		writeError(w, http.StatusConflict, "backend %q already exists", b.Name)
		return
	}
	// A re-added name sheds its tombstone: the node is live again.
	delete(g.removed, b.Name)
	g.byName[b.Name] = b
	g.inflight[b.Name] = &atomic.Int64{}
	g.ring.Add(b.Name)
	g.recomputeLastLocked()
	epoch := g.epoch.Add(1)
	g.topo.Unlock()
	g.breaker.add(b.Name)
	g.members.addMember(b, NodeJoining)
	g.metrics.nodesAdded.Add(1)
	g.members.suspect(b.Name) // async: probe the joiner to healthy now
	writeJSON(w, http.StatusCreated, map[string]any{
		"epoch": epoch,
		"node":  adminNodeDoc{NodeHealth: NodeHealth{Name: b.Name, URL: b.URL, State: NodeJoining}},
	})
}

// handleAdminListNodes reports the topology: epoch plus every node's
// membership health, breaker position, and in-flight submit count.
func (g *Gateway) handleAdminListNodes(w http.ResponseWriter, r *http.Request) {
	snap := g.Backends()
	doc := adminTopologyDoc{Epoch: g.epoch.Load(), Nodes: make([]adminNodeDoc, 0, len(snap))}
	for _, h := range snap {
		doc.Nodes = append(doc.Nodes, adminNodeDoc{NodeHealth: h, Inflight: g.inflightOf(h.Name).Load()})
	}
	writeJSON(w, http.StatusOK, doc)
}

// handleAdminDrainNode pins a backend into NodeDraining: new submits
// stop routing there immediately (its ring shard fails over
// deterministically to the successor), while status reads and result
// fetches for its existing jobs keep flowing. Probes cannot unpin it;
// only removal or re-add can. With takeover armed, drain is proactive
// herding: the node's queued jobs migrate to its ring successor now,
// instead of sitting out the drain — so the node can exit as soon as
// its running jobs finish, not after its whole queue does.
func (g *Gateway) handleAdminDrainNode(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if _, ok := g.activeBackend(name); !ok {
		writeError(w, http.StatusNotFound, "no backend named %q", name)
		return
	}
	if !g.members.pinDrain(name) {
		writeError(w, http.StatusNotFound, "no backend named %q", name)
		return
	}
	g.metrics.nodesDrained.Add(1)
	doc := map[string]any{
		"epoch":    g.epoch.Load(),
		"draining": name,
		"inflight": g.inflightOf(name).Load(),
	}
	if g.cfg.TakeoverAfter > 0 {
		mctx, cancel := context.WithTimeout(r.Context(), takeoverTimeout)
		defer cancel()
		succ, err := g.migrateNode(mctx, name)
		if err != nil {
			// The pin stands either way; migration is an optimization, and
			// the drain workflow still settles without it.
			doc["migrate_error"] = err.Error()
		} else {
			doc["migrated_to"] = succ
		}
	}
	writeJSON(w, http.StatusAccepted, doc)
}

// handleAdminRemoveNode removes a backend from the ring. Unless
// ?force=1, the node must be idle: no gateway-tracked in-flight
// submits and no queued or running jobs on the backend itself — the
// drain workflow (drain, wait for its jobs to settle, then delete) is
// what guarantees zero lost acked jobs. The name survives as a
// tombstone so <id>@<node> reads minted before the removal still
// route while the backend process lives. With takeover armed, force=1
// is no longer lossy: the ring successor adopts the node's replica
// journal first, and an alias keeps its job ids resolving.
func (g *Gateway) handleAdminRemoveNode(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if _, ok := g.activeBackend(name); !ok {
		writeError(w, http.StatusNotFound, "no backend named %q", name)
		return
	}
	force := r.URL.Query().Get("force") == "1"
	if n := g.inflightOf(name).Load(); n > 0 && !force {
		writeError(w, http.StatusConflict,
			"backend %q has %d submits in flight (drain and wait, or force=1)", name, n)
		return
	}
	if !force {
		queued, running, err := g.backendLoad(r.Context(), name)
		if err != nil {
			writeError(w, http.StatusConflict,
				"backend %q load unknown (%v); drain and wait, or force=1", name, err)
			return
		}
		if queued+running > 0 {
			writeError(w, http.StatusConflict,
				"backend %q still holds %d queued + %d running jobs (drain and wait, or force=1)",
				name, queued, running)
			return
		}
	}
	var adoptedBy string
	if force && g.cfg.TakeoverAfter > 0 {
		g.topo.RLock()
		succ := g.ring.SuccessorOf(name)
		g.topo.RUnlock()
		if sb, ok := g.activeBackend(succ); ok && succ != "" {
			actx, cancel := context.WithTimeout(r.Context(), takeoverTimeout)
			defer cancel()
			if err := g.postAdopt(actx, sb, name); err == nil {
				adoptedBy = succ
			}
		}
	}
	g.topo.Lock()
	if adoptedBy != "" {
		g.aliases[name] = adoptedBy
	}
	epoch := g.ejectLocked(name)
	g.topo.Unlock()
	g.members.removeMember(name)
	g.breaker.remove(name)
	g.metrics.nodesRemoved.Add(1)
	doc := map[string]any{"epoch": epoch, "removed": name}
	if adoptedBy != "" {
		doc["adopted_by"] = adoptedBy
	}
	writeJSON(w, http.StatusOK, doc)
}

// backendLoad counts one backend's unsettled jobs via its own list
// endpoint (Total on a limit=1 page is the full match count).
func (g *Gateway) backendLoad(ctx context.Context, name string) (queued, running int, err error) {
	count := func(status string) (int, error) {
		fr, ferr := g.forward(ctx, name, http.MethodGet, "/v1/jobs?limit=1&status="+status, nil, nil)
		if ferr != nil {
			return 0, ferr
		}
		if fr.status != http.StatusOK {
			return 0, fmt.Errorf("backend %s: HTTP %d", name, fr.status)
		}
		var page server.ListResponse
		if jerr := json.Unmarshal(fr.body, &page); jerr != nil {
			return 0, fmt.Errorf("backend %s: bad list response: %v", name, jerr)
		}
		return page.Total, nil
	}
	if queued, err = count(string(server.StateQueued)); err != nil {
		return 0, 0, err
	}
	if running, err = count(string(server.StateRunning)); err != nil {
		return 0, 0, err
	}
	return queued, running, nil
}
