package gateway

import (
	"fmt"
	"testing"

	"thermalherd/internal/server"
	"thermalherd/internal/trace"
)

// suiteHashes returns the canonical spec hash of a timing job for every
// workload in the trace suite — the exact key population the gateway
// shards in production.
func suiteHashes(t *testing.T) []string {
	t.Helper()
	suite := trace.Suite()
	if len(suite) != 106 {
		t.Fatalf("trace suite has %d profiles, want 106", len(suite))
	}
	hashes := make([]string, 0, len(suite))
	seen := make(map[string]bool)
	for _, p := range suite {
		spec := server.Spec{Kind: server.KindTiming, Workload: p.Name}
		h, err := spec.CanonicalHash()
		if err != nil {
			t.Fatalf("CanonicalHash(%s): %v", p.Name, err)
		}
		if seen[h] {
			t.Fatalf("duplicate spec hash for workload %s", p.Name)
		}
		seen[h] = true
		hashes = append(hashes, h)
	}
	return hashes
}

func ringNodes(n int) []string {
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("n%d", i)
	}
	return nodes
}

// TestRingPlacementDeterministic: placement depends only on the member
// set, not on insertion order — two gateway replicas configured with
// the same backends in any order agree on every key's home.
func TestRingPlacementDeterministic(t *testing.T) {
	hashes := suiteHashes(t)
	a := NewRing(0)
	for _, n := range []string{"n0", "n1", "n2"} {
		a.Add(n)
	}
	b := NewRing(0)
	for _, n := range []string{"n2", "n0", "n1"} {
		b.Add(n)
	}
	for _, h := range hashes {
		if got, want := b.Lookup(h), a.Lookup(h); got != want {
			t.Fatalf("Lookup(%s) differs across insertion orders: %s vs %s", h, got, want)
		}
		succ := a.Successors(h, 3)
		if len(succ) != 3 {
			t.Fatalf("Successors(%s, 3) = %v, want 3 distinct nodes", h, succ)
		}
		if succ[0] != a.Lookup(h) {
			t.Fatalf("Successors(%s)[0] = %s, want home %s", h, succ[0], a.Lookup(h))
		}
		seen := map[string]bool{}
		for _, n := range succ {
			if seen[n] {
				t.Fatalf("Successors(%s) repeats node %s: %v", h, n, succ)
			}
			seen[n] = true
		}
	}
}

// TestRingRebalance: removing 1 of N backends remaps only the keys that
// backend owned (~1/N of the 106 trace-workload spec hashes), and
// re-adding it restores the original placement exactly. This is the
// property that keeps a node restart from invalidating the whole
// herd's cache locality.
func TestRingRebalance(t *testing.T) {
	hashes := suiteHashes(t)
	cases := []struct {
		n      int
		remove string
	}{
		{n: 3, remove: "n1"},
		{n: 4, remove: "n0"},
		{n: 5, remove: "n3"},
		{n: 8, remove: "n7"},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("N=%d remove=%s", tc.n, tc.remove), func(t *testing.T) {
			r := NewRing(0)
			for _, n := range ringNodes(tc.n) {
				r.Add(n)
			}
			before := make(map[string]string, len(hashes))
			owned := 0
			for _, h := range hashes {
				before[h] = r.Lookup(h)
				if before[h] == tc.remove {
					owned++
				}
			}
			if owned == 0 {
				t.Fatalf("node %s owns no suite hashes; ring badly unbalanced", tc.remove)
			}

			r.Remove(tc.remove)
			moved := 0
			for _, h := range hashes {
				after := r.Lookup(h)
				if after == tc.remove {
					t.Fatalf("hash %s still maps to removed node %s", h, tc.remove)
				}
				if after != before[h] {
					if before[h] != tc.remove {
						t.Fatalf("hash %s moved from surviving node %s to %s; removal must only remap the removed node's keys",
							h, before[h], after)
					}
					moved++
				}
			}
			if moved != owned {
				t.Fatalf("moved %d hashes, want exactly the %d the removed node owned", moved, owned)
			}
			// ~1/N with virtual-node smoothing: generously within 2.5x of
			// the uniform share (and at least one key must have moved).
			if maxMoved := 5 * len(hashes) / (2 * tc.n); moved > maxMoved {
				t.Fatalf("removal remapped %d of %d hashes; want <= %d (~1/%d of the keyspace)",
					moved, len(hashes), maxMoved, tc.n)
			}

			r.Add(tc.remove)
			for _, h := range hashes {
				if got := r.Lookup(h); got != before[h] {
					t.Fatalf("after re-add, hash %s maps to %s, want original home %s", h, got, before[h])
				}
			}
		})
	}
}

// TestRingVNodeBalance: with DefaultVNodes the per-node shard sizes of
// the suite stay within a sane factor of uniform.
func TestRingVNodeBalance(t *testing.T) {
	hashes := suiteHashes(t)
	r := NewRing(0)
	nodes := ringNodes(3)
	for _, n := range nodes {
		r.Add(n)
	}
	counts := map[string]int{}
	for _, h := range hashes {
		counts[r.Lookup(h)]++
	}
	for _, n := range nodes {
		if counts[n] == 0 {
			t.Fatalf("node %s owns no keys: %v", n, counts)
		}
		if counts[n] > 2*len(hashes)/len(nodes) {
			t.Fatalf("node %s owns %d of %d keys (>2x uniform): %v", n, counts[n], len(hashes), counts)
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	r := NewRing(4)
	if got := r.Lookup("x"); got != "" {
		t.Fatalf("empty ring Lookup = %q, want empty", got)
	}
	if succ := r.Successors("x", 2); succ != nil {
		t.Fatalf("empty ring Successors = %v, want nil", succ)
	}
	r.Add("solo")
	if got := r.Lookup("x"); got != "solo" {
		t.Fatalf("single-node ring Lookup = %q, want solo", got)
	}
	if succ := r.Successors("x", 5); len(succ) != 1 || succ[0] != "solo" {
		t.Fatalf("single-node Successors = %v, want [solo]", succ)
	}
}
