package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"
)

// takeoverTimeout bounds the adopt and migrate calls a takeover or
// drain issues against backends.
const takeoverTimeout = 10 * time.Second

// maybeTakeover is called on every failed probe. When takeover is
// armed (Config.TakeoverAfter > 0) and the node has sat in NodeDown
// past the deadline, it launches the takeover exactly once: the ring
// successor adopts the replica journal the dead node streamed to it,
// an alias reroutes the dead node's job ids, and the corpse leaves the
// ring. A takeover that fails (successor unreachable, fault injected)
// clears the single-flight slot so the next probe tick retries.
func (g *Gateway) maybeTakeover(name string) {
	if g.cfg.TakeoverAfter <= 0 {
		return
	}
	since := g.members.downSince(name)
	if since.IsZero() || g.cfg.Clock.Since(since) < g.cfg.TakeoverAfter {
		return
	}
	if _, active := g.activeBackend(name); !active {
		return
	}
	g.takeoverMu.Lock()
	if g.takingOver[name] {
		g.takeoverMu.Unlock()
		return
	}
	g.takingOver[name] = true
	g.takeoverMu.Unlock()
	g.takeoverWG.Add(1)
	//thermlint:goroutine -- bounded by takeoverTimeout HTTP deadlines; Close waits via takeoverWG
	go func() {
		defer g.takeoverWG.Done()
		if !g.runTakeover(name) {
			g.takeoverMu.Lock()
			delete(g.takingOver, name)
			g.takeoverMu.Unlock()
		}
	}()
}

// runTakeover executes one takeover of a dead node. Ordering matters:
// the successor must finish adopting before the alias is installed, so
// a status poll rerouted by the alias always finds the adopted job
// rather than a 404 on a successor that has not replayed yet.
func (g *Gateway) runTakeover(origin string) bool {
	if err := g.cfg.Faults.Fire(FaultTakeover); err != nil {
		return false
	}
	g.topo.RLock()
	succ := g.ring.SuccessorOf(origin)
	g.topo.RUnlock()
	if succ == "" {
		// Alone on the ring: nobody holds a replica to adopt. Leave the
		// node ejected-but-present so its ids resolve if it returns.
		return false
	}
	sb, ok := g.activeBackend(succ)
	if !ok {
		return false
	}
	ctx, cancel := context.WithTimeout(context.Background(), takeoverTimeout)
	defer cancel()
	if err := g.postAdopt(ctx, sb, origin); err != nil {
		return false
	}
	g.finishTakeover(origin, succ)
	g.metrics.takeovers.Add(1)
	return true
}

// finishTakeover atomically installs the alias and ejects the dead
// node from the topology, so there is no window where its job ids
// route to the corpse instead of the successor now serving them.
func (g *Gateway) finishTakeover(origin, succ string) {
	g.topo.Lock()
	g.aliases[origin] = succ
	g.ejectLocked(origin)
	g.topo.Unlock()
	g.members.removeMember(origin)
	g.breaker.remove(origin)
}

// ejectLocked removes a node from the live topology under topo (the
// caller holds it exclusively): tombstone the name, drop its ring
// shard, bump the epoch. Both the admin DELETE path and takeover share
// it so a node leaves the same way no matter who evicted it.
func (g *Gateway) ejectLocked(name string) uint64 {
	b, ok := g.byName[name]
	if !ok {
		return g.epoch.Load()
	}
	delete(g.byName, name)
	delete(g.inflight, name)
	g.removed[name] = b
	g.ring.Remove(name)
	g.recomputeLastLocked()
	return g.epoch.Add(1)
}

// postAdopt asks the successor to replay origin's replica journal and
// adopt its jobs (POST /v1/replica/{origin}/adopt).
func (g *Gateway) postAdopt(ctx context.Context, succ Backend, origin string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		succ.URL+"/v1/replica/"+url.PathEscape(origin)+"/adopt", nil)
	if err != nil {
		return err
	}
	resp, err := g.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("adopt of %s on %s: HTTP %d", origin, succ.Name, resp.StatusCode)
	}
	return nil
}

// migrateNode proactively herds a node's queued jobs to its ring
// successor (POST /v1/migrate on the node) — the drain path's half of
// failover: instead of waiting for the node to die and replaying a
// replica, the jobs move while the node is still alive to ship them.
// Returns the successor that received them.
func (g *Gateway) migrateNode(ctx context.Context, origin string) (string, error) {
	g.topo.RLock()
	succ := g.ring.SuccessorOf(origin)
	g.topo.RUnlock()
	if succ == "" {
		return "", fmt.Errorf("node %q has no ring successor to migrate to", origin)
	}
	ob, ok := g.activeBackend(origin)
	if !ok {
		return "", fmt.Errorf("no backend named %q", origin)
	}
	sb, ok := g.activeBackend(succ)
	if !ok {
		return "", fmt.Errorf("successor %q of %q is not an active backend", succ, origin)
	}
	payload, err := json.Marshal(map[string]string{"target_name": sb.Name, "target_url": sb.URL})
	if err != nil {
		return "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ob.URL+"/v1/migrate", bytes.NewReader(payload))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := g.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("migrate on %s: HTTP %d", origin, resp.StatusCode)
	}
	g.metrics.migrations.Add(1)
	return succ, nil
}

// resolveAlias follows the takeover alias chain from a job id's minted
// node to whoever serves it now: each hop folds the dead node into the
// local id ("<id>@<dead>" is the successor's local name for the job)
// and moves to the successor. Chains are short-circuited at 8 hops —
// a cycle would take a node re-added under a name it was aliased to,
// and the cap turns that misconfiguration into a 404 instead of a spin.
func (g *Gateway) resolveAlias(id, node string) (string, string) {
	g.topo.RLock()
	defer g.topo.RUnlock()
	for i := 0; i < 8; i++ {
		succ, ok := g.aliases[node]
		if !ok {
			break
		}
		id = id + "@" + node
		node = succ
	}
	return id, node
}

// aliasCount reports how many takeover aliases are installed.
func (g *Gateway) aliasCount() int {
	g.topo.RLock()
	defer g.topo.RUnlock()
	return len(g.aliases)
}
