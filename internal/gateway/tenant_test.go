package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"thermalherd/internal/server"
)

// TestGatewayTenantForwarding pins multi-tenant plumbing through the
// gateway: X-Tenant-ID travels byte-for-byte on submit and batch, the
// scatter-gather list surfaces ?tenant= filtering, and the merged
// /metrics document reconciles the per-tenant accounting identity
// fleet-wide.
func TestGatewayTenantForwarding(t *testing.T) {
	_, ts, _ := startHerd(t, 2)

	// Single submit with a tenant header.
	st := submitVia(t, ts.URL, quickSpec("mcf"), map[string]string{server.TenantHeader: "live"})
	if st.Tenant != "live" {
		t.Fatalf("submitted job tenant = %q, want live (header not forwarded)", st.Tenant)
	}

	// Batch with per-item tenants; specs spread across the ring.
	breq := server.BatchRequest{
		Jobs:    []server.Spec{},
		Tenants: []string{},
	}
	for i, wl := range []string{"crafty", "gzip", "patricia", "yacr2"} {
		var spec server.Spec
		if err := json.Unmarshal([]byte(quickSpec(wl)), &spec); err != nil {
			t.Fatal(err)
		}
		breq.Jobs = append(breq.Jobs, spec)
		tenant := "live"
		if i%2 == 1 {
			tenant = "batch"
		}
		breq.Tenants = append(breq.Tenants, tenant)
	}
	payload, _ := json.Marshal(breq)
	resp, raw := postJSON(t, ts.URL+"/v1/jobs:batch", string(payload), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch = HTTP %d: %s", resp.StatusCode, raw)
	}
	var br server.BatchResponse
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatalf("decode batch reply: %v", err)
	}
	for i, item := range br.Jobs {
		if item.Status == nil {
			t.Fatalf("batch item %d failed: %s", i, item.Error)
		}
		if item.Status.Tenant != breq.Tenants[i] {
			t.Fatalf("batch item %d tenant = %q, want %q", i, item.Status.Tenant, breq.Tenants[i])
		}
	}

	// Wait for everything to settle so list/metrics are stable.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var doc ListDoc
		getJSON(t, ts.URL+"/v1/jobs?status=done", &doc)
		if doc.Total == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs never settled: %d/5 done", doc.Total)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// ?tenant= filters across the whole herd: 3 live (1 single + 2
	// batch items), 2 batch.
	for tenant, want := range map[string]int{"live": 3, "batch": 2} {
		var doc ListDoc
		getJSON(t, fmt.Sprintf("%s/v1/jobs?tenant=%s", ts.URL, tenant), &doc)
		if doc.Partial || doc.Total != want {
			t.Fatalf("list?tenant=%s: total=%d partial=%v, want %d complete", tenant, doc.Total, doc.Partial, want)
		}
		for _, st := range doc.Jobs {
			if st.Tenant != tenant {
				t.Fatalf("list?tenant=%s returned job of tenant %q", tenant, st.Tenant)
			}
		}
	}

	// The merged metrics document sums each tenant's counters across
	// backends and the identity reconciles fleet-wide.
	var mdoc map[string]any
	getJSON(t, ts.URL+"/metrics", &mdoc)
	tenants, ok := mdoc["tenants"].(map[string]any)
	if !ok {
		t.Fatalf("merged metrics missing tenants section: %v", mdoc)
	}
	var sum float64
	for tenant, v := range tenants {
		td := v.(map[string]any)
		submitted := td["submitted"].(float64)
		terminal := td["hits"].(float64) + td["completed"].(float64) +
			td["failed"].(float64) + td["canceled"].(float64) + td["rejected"].(float64)
		if submitted != terminal {
			t.Fatalf("fleet-wide tenant %q identity broken: submitted %v != terminal %v", tenant, submitted, terminal)
		}
		sum += submitted
	}
	jobs := mdoc["jobs"].(map[string]any)
	if global := jobs["submitted"].(float64); sum != global {
		t.Fatalf("fleet-wide tenant submitted sum %v != global %v", sum, global)
	}
}
