package gateway

import (
	"encoding/json"
	"net/http"
	"sort"
	"testing"

	"thermalherd/internal/server"
)

// TestFleetMetricNamesUnion is the fleet-wide registry pin: the union
// of every //thermlint:metricnames registry (the server's backend keys
// plus the gateway's own additions) must be collision-free, and a live
// herd's aggregated /metrics response must emit exactly that union.
// Between this test and the per-package metrickeys analyzer, no metric
// key can appear, vanish, or collide anywhere in the fleet without the
// registries changing in the same commit.
func TestFleetMetricNamesUnion(t *testing.T) {
	union := make(map[string]string)
	for _, k := range server.MetricNames() {
		union[k] = "server"
	}
	for _, k := range MetricNames() {
		if owner, dup := union[k]; dup {
			t.Errorf("metric key %q registered by both %s and gateway", k, owner)
			continue
		}
		union[k] = "gateway"
	}
	if t.Failed() {
		t.Fatal("registry union has collisions; aggregation would fold distinct meanings into one key")
	}

	_, ts, _ := startHerd(t, 2)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gateway /metrics = %s", resp.Status)
	}
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}

	// Flatten with registry-aware descent: a registered key is a leaf
	// even when its value is a sub-document with dynamic keys (per-kind
	// latency, per-tenant counters, the backends snapshot array).
	registered := func(k string) bool { _, ok := union[k]; return ok }
	var emitted []string
	var flatten func(key string, v any)
	flatten = func(key string, v any) {
		if registered(key) {
			emitted = append(emitted, key)
			return
		}
		if sub, ok := v.(map[string]any); ok {
			for k, child := range sub {
				flatten(key+"."+k, child)
			}
			return
		}
		emitted = append(emitted, key)
	}
	for k, v := range doc {
		flatten(k, v)
	}
	sort.Strings(emitted)

	emittedSet := make(map[string]bool, len(emitted))
	for _, k := range emitted {
		if emittedSet[k] {
			t.Errorf("aggregated /metrics emits %q twice", k)
		}
		emittedSet[k] = true
	}
	for k, owner := range union {
		if !emittedSet[k] {
			t.Errorf("%s registry key %q is not emitted by the live herd's /metrics", owner, k)
		}
	}
	for _, k := range emitted {
		if !registered(k) {
			t.Errorf("live herd /metrics emits %q, which no registry declares", k)
		}
	}
}
