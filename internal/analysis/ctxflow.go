package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxFlow keeps the hot paths cancelable: inside any function that
// takes a context.Context, a blocking operation must be able to observe
// cancellation. Channel sends and receives must sit in a select that
// also receives ctx.Done() (or a done-channel) or has a default clause;
// time.Sleep must be a select on a timer; http requests must be built
// with NewRequestWithContext. //thermlint:blocking allows the audited
// exceptions (e.g. releasing a token on a buffered semaphore, which
// cannot block).
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "blocking operations in context-carrying functions must be able to observe ctx.Done()",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasContextParam(pass, fn) {
				continue
			}
			walkCtxFlow(pass, fn.Body)
		}
	}
	return nil
}

// hasContextParam reports whether fn takes a context.Context.
func hasContextParam(pass *Pass, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		if isContextType(pass.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// walkCtxFlow scans a statement tree for context-blind blocking
// operations. Function literals are skipped: they run on their own
// goroutine or schedule (the linter cannot see which), so their
// blocking behavior is out of scope here.
func walkCtxFlow(pass *Pass, root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			if !selectObservesCancel(pass, n) && !pass.Allowed(n.Pos(), "blocking") {
				pass.Reportf(n.Pos(), "select can block without observing cancellation (add a <-ctx.Done() case or a default clause, or annotate //thermlint:blocking -- why)")
			}
			// The comm clauses themselves are the select's business;
			// their bodies are ordinary statements again.
			for _, clause := range n.Body.List {
				for _, s := range clause.(*ast.CommClause).Body {
					walkCtxFlow(pass, s)
				}
			}
			return false
		case *ast.SendStmt:
			if !pass.Allowed(n.Pos(), "blocking") {
				pass.Reportf(n.Pos(), "channel send outside a cancellation-aware select (select on it with <-ctx.Done(), or annotate //thermlint:blocking -- why)")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !pass.Allowed(n.Pos(), "blocking") {
				pass.Reportf(n.Pos(), "channel receive outside a cancellation-aware select (select on it with <-ctx.Done(), or annotate //thermlint:blocking -- why)")
			}
		case *ast.CallExpr:
			checkCtxBlindCall(pass, n)
		}
		return true
	})
}

func checkCtxBlindCall(pass *Pass, call *ast.CallExpr) {
	switch {
	case pass.IsPkgFunc(call, "time", "Sleep"):
		if !pass.Allowed(call.Pos(), "blocking") {
			pass.Reportf(call.Pos(), "time.Sleep ignores ctx (select on ctx.Done() and a timer, or annotate //thermlint:blocking -- why)")
		}
	case pass.IsPkgFunc(call, "net/http", "NewRequest"):
		pass.Reportf(call.Pos(), "http.NewRequest drops ctx (use http.NewRequestWithContext)")
	}
}

// selectObservesCancel reports whether a select can always make
// progress under cancellation: it has a default clause, or a case
// receives from a Done()-style cancellation channel (ctx.Done(), or a
// done/completion channel of type chan struct{}).
func selectObservesCancel(pass *Pass, sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		cc := clause.(*ast.CommClause)
		if cc.Comm == nil {
			return true // default clause: never blocks
		}
		var recvSrc ast.Expr
		switch comm := cc.Comm.(type) {
		case *ast.ExprStmt:
			if u, ok := comm.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				recvSrc = u.X
			}
		case *ast.AssignStmt:
			if len(comm.Rhs) == 1 {
				if u, ok := comm.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					recvSrc = u.X
				}
			}
		}
		if recvSrc == nil {
			continue
		}
		if call, ok := ast.Unparen(recvSrc).(*ast.CallExpr); ok {
			if fn := pass.CalleeFunc(call); fn != nil && fn.Name() == "Done" {
				return true
			}
		}
		if isDoneChannel(pass.TypeOf(recvSrc)) {
			return true
		}
	}
	return false
}

// isDoneChannel matches the chan struct{} completion-signal idiom.
func isDoneChannel(t types.Type) bool {
	ch, ok := t.(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}
