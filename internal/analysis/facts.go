package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// Fact is a typed claim an analyzer exports about a package-level
// function or method — "this function observes shutdown", "this call
// settles a counter" — for importing packages to consume. Fact types
// must be JSON-round-trippable structs: the store keeps every fact as
// its JSON encoding, so the in-memory path and the on-disk cache path
// behave identically.
type Fact interface{ AFact() }

// factKey identifies one fact: the object it describes and the fact's
// concrete type. Objects are keyed by their fully-qualified name
// (types.Func.FullName covers both "pkg.F" and "(pkg.T).M"), which is
// stable across processes — the property the cache depends on.
type factKey struct {
	Obj  string `json:"obj"`
	Type string `json:"type"`
}

// factStore holds every fact exported during a run, shared across all
// packages and analyzers.
type factStore struct {
	m map[factKey]json.RawMessage
}

func newFactStore() *factStore {
	return &factStore{m: make(map[factKey]json.RawMessage)}
}

// objFactName returns the stable cross-process key for obj, or "" when
// obj is not a package-level function/method (the only objects facts
// may describe).
func objFactName(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	return fn.FullName()
}

func factTypeName(f Fact) string {
	return reflect.TypeOf(f).String()
}

func (s *factStore) export(analyzer string, obj types.Object, f Fact) {
	name := objFactName(obj)
	if name == "" {
		panic(fmt.Sprintf("thermlint: %s exported a fact for non-function object %v", analyzer, obj))
	}
	data, err := json.Marshal(f)
	if err != nil {
		panic(fmt.Sprintf("thermlint: %s fact %T not marshalable: %v", analyzer, f, err))
	}
	s.m[factKey{Obj: name, Type: factTypeName(f)}] = data
}

func (s *factStore) importInto(analyzer string, obj types.Object, ptr Fact) bool {
	name := objFactName(obj)
	if name == "" {
		return false
	}
	data, ok := s.m[factKey{Obj: name, Type: factTypeName(ptr)}]
	if !ok {
		return false
	}
	if err := json.Unmarshal(data, ptr); err != nil {
		panic(fmt.Sprintf("thermlint: %s fact %T not unmarshalable: %v", analyzer, ptr, err))
	}
	return true
}

// cachedFact is the serialized form of one fact, as stored in a cache
// entry and replayed into the store on a cache hit.
type cachedFact struct {
	Obj  string          `json:"obj"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data"`
}

// factsForPackage snapshots every fact describing an object of pkgPath
// in deterministic order; the slice a cache entry persists. Object keys
// embed the defining package's path ("pkg.F", "(pkg.T).M",
// "(*pkg.T).M"), so a substring match on the path with delimiters on
// both sides is exact.
func (s *factStore) factsForPackage(pkgPath string) []cachedFact {
	var out []cachedFact
	for k, data := range s.m {
		if !objBelongsTo(k.Obj, pkgPath) {
			continue
		}
		out = append(out, cachedFact{Obj: k.Obj, Type: k.Type, Data: data})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Obj != out[j].Obj {
			return out[i].Obj < out[j].Obj
		}
		return out[i].Type < out[j].Type
	})
	return out
}

// objBelongsTo reports whether a FullName-style object key describes an
// object defined in pkgPath: "pkgPath.Name", "(pkgPath.T).M", or
// "(*pkgPath.T).M".
func objBelongsTo(objKey, pkgPath string) bool {
	rest := objKey
	if len(rest) > 0 && rest[0] == '(' {
		rest = rest[1:]
		if len(rest) > 0 && rest[0] == '*' {
			rest = rest[1:]
		}
	}
	if len(rest) <= len(pkgPath) || rest[:len(pkgPath)] != pkgPath {
		return false
	}
	return rest[len(pkgPath)] == '.'
}

// replay loads previously cached facts back into the store, making a
// cache-hit package's exports visible to its importers exactly as a
// live analysis would have.
func (s *factStore) replay(facts []cachedFact) {
	for _, f := range facts {
		s.m[factKey{Obj: f.Obj, Type: f.Type}] = f.Data
	}
}
