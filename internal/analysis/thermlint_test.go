package analysis

import "testing"

// Each positive fixture contains violations that only this suite
// catches: deleting an analyzer (or its check) makes the corresponding
// test fail on unmatched `// want` expectations.

func TestDeterminismFixture(t *testing.T) { runFixture(t, Determinism, "determinism") }

func TestDeterminismUnmarkedPackageExempt(t *testing.T) {
	runFixture(t, Determinism, "determinism_clean")
}

func TestMetricKeysFixture(t *testing.T) { runFixture(t, MetricKeys, "metrickeys") }

func TestFaultPointsFixture(t *testing.T) { runFixture(t, FaultPoints, "faultpoints") }

func TestFaultPointsNoRegistry(t *testing.T) { runFixture(t, FaultPoints, "faultpoints_noreg") }

func TestCtxFlowFixture(t *testing.T) { runFixture(t, CtxFlow, "ctxflow") }

func TestLockScopeFixture(t *testing.T) { runFixture(t, LockScope, "lockscope") }

func TestGoLeakFixture(t *testing.T) { runFixture(t, GoLeak, "goleak") }

func TestGoLeakUnmarkedPackageExempt(t *testing.T) { runFixture(t, GoLeak, "goleak_unmarked") }

func TestAcctIDFixture(t *testing.T) { runFixture(t, AcctID, "acctid") }

func TestAcctIDMergeFixture(t *testing.T) { runFixture(t, AcctID, "acctid_merge") }

func TestClockSeamFixture(t *testing.T) { runFixture(t, ClockSeam, "clockseam") }

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text string
		name string
		ok   bool
	}{
		{"//thermlint:deterministic", "deterministic", true},
		{"//thermlint:wallclock -- reason", "wallclock", true},
		{"//thermlint:", "", false},
		{"// thermlint:wallclock", "", false},
		{"// ordinary comment", "", false},
	}
	for _, c := range cases {
		name, ok := parseDirective(c.text)
		if name != c.name || ok != c.ok {
			t.Errorf("parseDirective(%q) = %q,%v, want %q,%v", c.text, name, ok, c.name, c.ok)
		}
	}
}

func TestAllAnalyzersNamedAndDocumented(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc, or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) != 8 {
		t.Errorf("suite has %d analyzers, want 8", len(seen))
	}
}
