package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeak proves goroutine shutdown. In packages opted in with a
// package-scope //thermlint:goroutines directive, every `go` statement
// must have a provable shutdown path: the spawned body — directly, or
// transitively through the functions it calls, cross-package via
// exported facts — observes shutdown (receives from ctx.Done() or a
// done channel, ranges over a channel, or blocks in
// sync.WaitGroup.Wait) or is joined (calls sync.WaitGroup.Done so a
// waiter can collect it). Audited escapes carry
// //thermlint:goroutine -- why on the go statement.
//
// The analyzer exports a goroutineFact for every package-level function
// in every package it visits, so `go journal.FlushLoop`-style spawns of
// imported functions are provable without re-reading the callee's
// source.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "every goroutine in a //thermlint:goroutines package must observe shutdown or be joined",
	Run:  runGoLeak,
}

// goroutineFact is the exported claim about a package-level function:
// running it observes shutdown, and/or it participates in a
// WaitGroup join.
type goroutineFact struct {
	Observes bool `json:"observes,omitempty"`
	Joins    bool `json:"joins,omitempty"`
}

func (*goroutineFact) AFact() {}

// leakInfo is the per-function analysis state during the intra-package
// fixpoint.
type leakInfo struct {
	observes bool
	joins    bool
	callees  []*types.Func
}

func (li *leakInfo) bounded() bool { return li.observes || li.joins }

func runGoLeak(pass *Pass) error {
	// Pass 1: direct evidence and call edges for every package-level
	// function, then an intra-package fixpoint that also pulls in
	// facts already exported by dependency packages (the load order is
	// dependency-first, so those are all present).
	infos := make(map[*types.Func]*leakInfo)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			infos[fn] = scanLeakEvidence(pass, fd.Body)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, info := range infos {
			for _, callee := range info.callees {
				o, j := leakFactFor(pass, infos, callee)
				if (o && !info.observes) || (j && !info.joins) {
					info.observes = info.observes || o
					info.joins = info.joins || j
					changed = true
				}
			}
		}
	}
	for fn, info := range infos {
		if info.bounded() {
			pass.ExportObjectFact(fn, &goroutineFact{Observes: info.observes, Joins: info.joins})
		}
	}

	// Pass 2: prove every spawn in opted-in packages.
	if !pass.PackageMarked("goroutines") {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if pass.Allowed(g.Pos(), "goroutine") {
				return true
			}
			if !spawnBounded(pass, infos, g.Call) {
				pass.Reportf(g.Pos(), "goroutine has no provable shutdown path (observe ctx.Done()/a done channel/WaitGroup.Wait, join via WaitGroup.Done, or annotate //thermlint:goroutine -- why)")
			}
			return true
		})
	}
	return nil
}

// spawnBounded reports whether the spawned call provably terminates
// under shutdown: a function literal whose body carries (or reaches,
// through named callees) shutdown evidence, or a named function whose
// fact says so.
func spawnBounded(pass *Pass, infos map[*types.Func]*leakInfo, call *ast.CallExpr) bool {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		info := scanLeakEvidence(pass, lit.Body)
		for _, callee := range info.callees {
			o, j := leakFactFor(pass, infos, callee)
			info.observes = info.observes || o
			info.joins = info.joins || j
		}
		return info.bounded()
	}
	fn := pass.CalleeFunc(call)
	if fn == nil {
		return false // indirect spawn: nothing to prove against
	}
	o, j := leakFactFor(pass, infos, fn)
	return o || j
}

// leakFactFor resolves a callee's goroutineFact from the current
// package's fixpoint state or, cross-package, from the facts store.
func leakFactFor(pass *Pass, infos map[*types.Func]*leakInfo, fn *types.Func) (observes, joins bool) {
	if info, ok := infos[fn]; ok {
		return info.observes, info.joins
	}
	var fact goroutineFact
	if pass.ImportObjectFact(fn, &fact) {
		return fact.Observes, fact.Joins
	}
	return false, false
}

// scanLeakEvidence collects a body's direct shutdown evidence and its
// named callees. Nested function literals are skipped: evidence inside
// them runs on some other goroutine's schedule and proves nothing
// about this body.
func scanLeakEvidence(pass *Pass, body *ast.BlockStmt) *leakInfo {
	info := &leakInfo{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			if selectObservesShutdown(pass, n) {
				info.observes = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && isShutdownRecv(pass, n.X) {
				info.observes = true
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					info.observes = true
				}
			}
		case *ast.CallExpr:
			switch {
			case pass.IsMethod(n, "sync", "WaitGroup", "Wait"):
				info.observes = true
			case pass.IsMethod(n, "sync", "WaitGroup", "Done"):
				info.joins = true
			default:
				if fn := pass.CalleeFunc(n); fn != nil {
					info.callees = append(info.callees, fn)
				}
			}
		}
		return true
	})
	return info
}

// selectObservesShutdown reports whether a select has a case receiving
// from a shutdown-signal source. Unlike ctxflow's cancellation check, a
// default clause does NOT count: it keeps the select from blocking but
// proves nothing about the surrounding loop terminating.
func selectObservesShutdown(pass *Pass, sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		cc := clause.(*ast.CommClause)
		var recvSrc ast.Expr
		switch comm := cc.Comm.(type) {
		case *ast.ExprStmt:
			if u, ok := comm.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				recvSrc = u.X
			}
		case *ast.AssignStmt:
			if len(comm.Rhs) == 1 {
				if u, ok := comm.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					recvSrc = u.X
				}
			}
		}
		if recvSrc != nil && isShutdownRecv(pass, recvSrc) {
			return true
		}
	}
	return false
}

// isShutdownRecv reports whether receiving from src observes shutdown:
// src is a Done()-style call or a chan struct{} completion channel.
func isShutdownRecv(pass *Pass, src ast.Expr) bool {
	src = ast.Unparen(src)
	if call, ok := src.(*ast.CallExpr); ok {
		if fn := pass.CalleeFunc(call); fn != nil && fn.Name() == "Done" {
			return true
		}
	}
	return isDoneChannel(pass.TypeOf(src))
}
