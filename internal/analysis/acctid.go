package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// AcctID proves counter accounting identities at compile time. A
// package declares an identity over a counter owner:
//
//	//thermlint:identity metrics: submitted = cacheHits + completed + failed + canceled + rejected
//	//thermlint:identity tcField: tcSubmitted = tcHits + tcCompleted + tcFailed + tcCanceled + tcRejected
//	//thermlint:identity merge: jobs.submitted = cache.hits + jobs.completed + jobs.failed + jobs.canceled + jobs.rejected
//
// The owner names a package-level type. A struct owner puts the
// identity over its fields: an increment site is `&x.field` passed to a
// call, or `x.field.Inc()/.Add()`. A non-struct owner (an enum) puts it
// over that type's constants: a site is the constant passed as a call
// argument. The literal owner `merge` puts the identity over metric key
// strings and checks //thermlint:metricsmerge functions instead (see
// below).
//
// For field and const identities the analyzer walks every function,
// statement by statement with branch cloning: a left-side increment
// opens an obligation; each return, continue, and loop-iteration end
// requires the obligation settled by exactly one right-side increment
// on every path. Settlement may also be deferred across functions under
// an explicit discipline: right-side increments outside any obligation
// must sit in the then-branch of an `if guard()` (or after an
// `if !guard() { return/continue }`) where guard is a function marked
// //thermlint:settleonce — an exactly-once state transition such as a
// CAS — or carry //thermlint:settled -- why. Returns that intentionally
// leave an obligation open (the 202-accepted handoff to a worker) carry
// //thermlint:handoff -- why.
//
// A merge identity requires the package to mark its metrics-merging
// function //thermlint:metricsmerge and checks it preserves linearity:
// it must not special-case any identity key string and must not combine
// numeric leaves with anything but +. A structural sum of per-node
// documents then preserves every per-node identity.
var AcctID = &Analyzer{
	Name: "acctid",
	Doc:  "declared counter identities hold on every control-flow path",
	Run:  runAcctID,
}

// settleOnceFact marks a function as an exactly-once settlement guard,
// exported so importing packages can use guards cross-package.
type settleOnceFact struct {
	Guard bool `json:"guard"`
}

func (*settleOnceFact) AFact() {}

// identityDecl is one parsed //thermlint:identity directive.
type identityDecl struct {
	owner string
	lhs   string
	terms []string
	pos   token.Pos
}

// acctIdentity is a resolved field- or const-mode identity: the object
// sets that count as left- and right-side increment sites.
type acctIdentity struct {
	decl identityDecl
	lhs  map[types.Object]bool
	rhs  map[types.Object]bool
}

func runAcctID(pass *Pass) error {
	// Settlement guards: local //thermlint:settleonce functions, plus
	// the exported fact for importers.
	guards := make(map[*types.Func]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !DeclMarked(fd.Doc, "settleonce") {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				guards[fn] = true
				pass.ExportObjectFact(fn, &settleOnceFact{Guard: true})
			}
		}
	}

	for _, decl := range parseIdentityDecls(pass) {
		if decl.owner == "merge" {
			checkMergeIdentity(pass, decl)
			continue
		}
		id, ok := resolveIdentity(pass, decl)
		if !ok {
			continue // resolution errors already reported
		}
		w := &acctWalker{pass: pass, id: id, guards: guards}
		for _, file := range pass.Files {
			for _, d := range file.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					w.checkFunc(fd)
				}
			}
		}
	}
	return nil
}

// parseIdentityDecls extracts every //thermlint:identity directive in
// the package, reporting malformed ones.
func parseIdentityDecls(pass *Pass) []identityDecl {
	const prefix = "//thermlint:identity "
	var decls []identityDecl
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, prefix) {
					continue
				}
				body := strings.TrimPrefix(c.Text, prefix)
				if i := strings.Index(body, "//"); i >= 0 {
					body = body[:i] // trailing comment after the identity
				}
				body = strings.TrimSpace(body)
				owner, rest, ok := strings.Cut(body, ":")
				if !ok {
					pass.Reportf(c.Pos(), "malformed identity directive: want \"Owner: lhs = a + b\"")
					continue
				}
				lhs, sum, ok := strings.Cut(rest, "=")
				if !ok {
					pass.Reportf(c.Pos(), "malformed identity directive: missing \"=\"")
					continue
				}
				d := identityDecl{
					owner: strings.TrimSpace(owner),
					lhs:   strings.TrimSpace(lhs),
					pos:   c.Pos(),
				}
				for _, t := range strings.Split(sum, "+") {
					if t = strings.TrimSpace(t); t != "" {
						d.terms = append(d.terms, t)
					}
				}
				if d.owner == "" || d.lhs == "" || len(d.terms) == 0 {
					pass.Reportf(c.Pos(), "malformed identity directive: want \"Owner: lhs = a + b\"")
					continue
				}
				decls = append(decls, d)
			}
		}
	}
	return decls
}

// resolveIdentity maps an identity's member names to their objects:
// fields of a struct owner, or constants of an enum owner.
func resolveIdentity(pass *Pass, decl identityDecl) (*acctIdentity, bool) {
	obj := pass.Pkg.Scope().Lookup(decl.owner)
	tn, ok := obj.(*types.TypeName)
	if !ok {
		pass.Reportf(decl.pos, "identity owner %q is not a package-level type", decl.owner)
		return nil, false
	}
	id := &acctIdentity{
		decl: decl,
		lhs:  make(map[types.Object]bool),
		rhs:  make(map[types.Object]bool),
	}
	member := func(name string) types.Object {
		if st, ok := tn.Type().Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				if f := st.Field(i); f.Name() == name {
					return f
				}
			}
			pass.Reportf(decl.pos, "identity member %q is not a field of %s", name, decl.owner)
			return nil
		}
		c, ok := pass.Pkg.Scope().Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), tn.Type()) {
			pass.Reportf(decl.pos, "identity member %q is not a %s constant", name, decl.owner)
			return nil
		}
		return c
	}
	ok = true
	if m := member(decl.lhs); m != nil {
		id.lhs[m] = true
	} else {
		ok = false
	}
	for _, t := range decl.terms {
		if m := member(t); m != nil {
			id.rhs[m] = true
		} else {
			ok = false
		}
	}
	return id, ok
}

// acctState is one control-flow path's view of the identity: how many
// left-side increments await settlement, and whether the path is
// dominated by a settleonce guard.
type acctState struct {
	pending int
	guarded bool
}

func (st *acctState) clone() *acctState { c := *st; return &c }

type acctWalker struct {
	pass      *Pass
	id        *acctIdentity
	guards    map[*types.Func]bool
	loopEntry []int // pending counts at enclosing loop entries
}

func (w *acctWalker) checkFunc(fd *ast.FuncDecl) {
	st := &acctState{}
	if !w.walkStmts(fd.Body.List, st) && st.pending > 0 {
		if !w.pass.Allowed(fd.Body.Rbrace, "handoff") {
			w.pass.Reportf(fd.Body.Rbrace, "%s ends with %d unsettled %q increment(s) (settle with a right-side increment, or annotate //thermlint:handoff -- why)",
				fd.Name.Name, st.pending, w.id.decl.lhs)
		}
	}
}

// walkStmts threads st through a statement list in source order,
// reporting whether the list always terminates (return/branch/panic)
// before falling off its end.
func (w *acctWalker) walkStmts(stmts []ast.Stmt, st *acctState) bool {
	for _, stmt := range stmts {
		if w.walkStmt(stmt, st) {
			return true
		}
	}
	return false
}

func (w *acctWalker) walkStmt(stmt ast.Stmt, st *acctState) bool {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred and spawned work runs on its own schedule; its
		// settles are the spawned body's business.
		return false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.scanExpr(r, st)
		}
		if st.pending > 0 && !w.pass.Allowed(s.Pos(), "handoff") {
			w.pass.Reportf(s.Pos(), "return leaves %d unsettled %q increment(s) (settle with a right-side increment, or annotate //thermlint:handoff -- why)",
				st.pending, w.id.decl.lhs)
		}
		return true
	case *ast.BranchStmt:
		if s.Tok == token.CONTINUE && len(w.loopEntry) > 0 {
			entry := w.loopEntry[len(w.loopEntry)-1]
			if st.pending != entry && !w.pass.Allowed(s.Pos(), "handoff") {
				w.pass.Reportf(s.Pos(), "continue leaves %d unsettled %q increment(s) from this iteration (settle them, or annotate //thermlint:handoff -- why)",
					st.pending-entry, w.id.decl.lhs)
			}
		}
		return true
	case *ast.IfStmt:
		return w.walkIf(s, st)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.scanExpr(s.Tag, st)
		return w.walkClauses(s.Pos(), caseBodies(s.Body, st, w), hasDefaultCase(s.Body), st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		return w.walkClauses(s.Pos(), caseBodies(s.Body, st, w), hasDefaultCase(s.Body), st)
	case *ast.SelectStmt:
		var bodies [][]ast.Stmt
		for _, cl := range s.Body.List {
			bodies = append(bodies, cl.(*ast.CommClause).Body)
		}
		// A select executes exactly one clause; there is no fall-past
		// path, so it merges like a switch with a default.
		return w.walkClauses(s.Pos(), bodies, true, st)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.scanExpr(s.Cond, st)
		w.walkLoopBody(s.Pos(), s.Body, st)
		return false
	case *ast.RangeStmt:
		w.scanExpr(s.X, st)
		w.walkLoopBody(s.Pos(), s.Body, st)
		return false
	case *ast.ExprStmt:
		w.scanExpr(s.X, st)
		return isPanicCall(s.X)
	default:
		w.scanExpr(stmt, st)
		return false
	}
}

// walkIf handles branching and the two settleonce-guard shapes:
// `if guard() { settles }` (the branch's settles are exactly-once by
// the guard's contract) and `if !guard() { return/continue }` (the
// remainder of the function is guard-dominated).
func (w *acctWalker) walkIf(s *ast.IfStmt, st *acctState) bool {
	if s.Init != nil {
		w.walkStmt(s.Init, st)
	}
	isGuard, negated := w.guardCond(s.Cond)
	w.scanExpr(s.Cond, st)

	if isGuard && !negated && s.Else == nil {
		bodySt := st.clone()
		bodySt.guarded = true
		if !w.walkStmts(s.Body.List, bodySt) && bodySt.pending != st.pending {
			w.reportDivergence(s.Pos(), bodySt.pending, st.pending)
		}
		return false
	}
	if isGuard && negated && s.Else == nil {
		bodySt := st.clone()
		if w.walkStmts(s.Body.List, bodySt) {
			st.guarded = true // guard holds on every path past this if
			return false
		}
		// Body falls through: no domination; treated as a plain branch
		// below would double-walk, so just merge here.
		w.mergeBranches(s.Pos(), st, bodySt, st.clone())
		return false
	}

	thenSt := st.clone()
	thenTerm := w.walkStmts(s.Body.List, thenSt)
	elseSt := st.clone()
	elseTerm := false
	if s.Else != nil {
		elseTerm = w.walkStmt(s.Else, elseSt)
	}
	switch {
	case thenTerm && elseTerm:
		return true
	case thenTerm:
		*st = *elseSt
	case elseTerm:
		*st = *thenSt
	default:
		w.mergeBranches(s.Pos(), st, thenSt, elseSt)
	}
	return false
}

// caseBodies walks each case clause's expressions against st and
// returns the clause bodies.
func caseBodies(body *ast.BlockStmt, st *acctState, w *acctWalker) [][]ast.Stmt {
	var bodies [][]ast.Stmt
	for _, cl := range body.List {
		cc := cl.(*ast.CaseClause)
		for _, e := range cc.List {
			w.scanExpr(e, st)
		}
		bodies = append(bodies, cc.Body)
	}
	return bodies
}

func hasDefaultCase(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		if cl.(*ast.CaseClause).List == nil {
			return true
		}
	}
	return false
}

// walkClauses walks each clause body on a clone of st and merges the
// surviving paths, which must agree on pending settlements. exhaustive
// says there is no fall-past path (a default clause exists).
func (w *acctWalker) walkClauses(pos token.Pos, bodies [][]ast.Stmt, exhaustive bool, st *acctState) bool {
	var survivors []*acctState
	for _, body := range bodies {
		clSt := st.clone()
		if !w.walkStmts(body, clSt) {
			survivors = append(survivors, clSt)
		}
	}
	if !exhaustive {
		survivors = append(survivors, st.clone())
	}
	if len(survivors) == 0 {
		return true
	}
	merged := survivors[0]
	for _, s := range survivors[1:] {
		w.mergeBranches(pos, merged, merged.clone(), s)
	}
	*st = *merged
	return false
}

// mergeBranches folds two surviving paths into st. Disagreement on
// pending settlements is the analyzer's core finding — one path settles
// an increment the other leaks — unless annotated as a handoff.
func (w *acctWalker) mergeBranches(pos token.Pos, st, a, b *acctState) {
	if a.pending != b.pending {
		w.reportDivergence(pos, a.pending, b.pending)
	}
	st.pending = min(a.pending, b.pending)
	st.guarded = a.guarded && b.guarded
}

func (w *acctWalker) reportDivergence(pos token.Pos, a, b int) {
	if w.pass.Allowed(pos, "handoff") {
		return
	}
	w.pass.Reportf(pos, "paths disagree on unsettled %q increments (%d vs %d): one branch settles the identity, another leaks it (balance the branches, or annotate //thermlint:handoff -- why)",
		w.id.decl.lhs, max(a, b), min(a, b))
}

// walkLoopBody requires each iteration to settle what it opened: the
// pending count at the body's end must match loop entry.
func (w *acctWalker) walkLoopBody(pos token.Pos, body *ast.BlockStmt, st *acctState) {
	w.loopEntry = append(w.loopEntry, st.pending)
	bodySt := st.clone()
	if !w.walkStmts(body.List, bodySt) && bodySt.pending != st.pending {
		if !w.pass.Allowed(pos, "handoff") {
			w.pass.Reportf(pos, "loop iteration ends with %d unsettled %q increment(s) (settle within the iteration, or annotate //thermlint:handoff -- why)",
				bodySt.pending-st.pending, w.id.decl.lhs)
		}
	}
	w.loopEntry = w.loopEntry[:len(w.loopEntry)-1]
}

// guardCond reports whether expr is a (possibly negated) call to a
// //thermlint:settleonce guard, locally marked or fact-imported.
func (w *acctWalker) guardCond(expr ast.Expr) (isGuard, negated bool) {
	expr = ast.Unparen(expr)
	if u, ok := expr.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		g, _ := w.guardCond(u.X)
		return g, true
	}
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false, false
	}
	fn := w.pass.CalleeFunc(call)
	if fn == nil {
		return false, false
	}
	if w.guards[fn] {
		return true, false
	}
	var fact settleOnceFact
	return w.pass.ImportObjectFact(fn, &fact) && fact.Guard, false
}

// scanExpr finds the identity's increment sites inside one expression
// or simple statement, in source order. Function literals are skipped:
// they run on their own schedule.
func (w *acctWalker) scanExpr(n ast.Node, st *acctState) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			// &owner.field passed to an increment helper.
			if m.Op == token.AND {
				if obj := w.fieldMember(m.X); obj != nil {
					w.site(obj, m.Pos(), st)
				}
			}
		case *ast.CallExpr:
			// owner.field.Inc() / owner.field.Add(n).
			if sel, ok := ast.Unparen(m.Fun).(*ast.SelectorExpr); ok &&
				(sel.Sel.Name == "Inc" || sel.Sel.Name == "Add") {
				if obj := w.fieldMember(sel.X); obj != nil {
					w.site(obj, m.Pos(), st)
				}
			}
			// An enum-mode member constant passed as an argument.
			for _, arg := range m.Args {
				if ident, ok := ast.Unparen(arg).(*ast.Ident); ok {
					if obj := w.pass.TypesInfo.Uses[ident]; obj != nil && w.member(obj) {
						w.site(obj, ident.Pos(), st)
					}
				}
			}
		}
		return true
	})
}

// fieldMember resolves expr to an identity-member field object, or nil.
func (w *acctWalker) fieldMember(expr ast.Expr) types.Object {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if obj := w.pass.TypesInfo.Uses[sel.Sel]; obj != nil && w.member(obj) {
		return obj
	}
	return nil
}

func (w *acctWalker) member(obj types.Object) bool {
	return w.id.lhs[obj] || w.id.rhs[obj]
}

// site applies one increment site to the path state: a left-side site
// opens an obligation; a right-side site settles the open one, or —
// with none open — must be justified by a settleonce guard or a
// //thermlint:settled annotation.
func (w *acctWalker) site(obj types.Object, pos token.Pos, st *acctState) {
	if w.id.lhs[obj] {
		st.pending++
		return
	}
	if st.guarded {
		return // exactly-once by the guard's contract
	}
	if st.pending > 0 {
		st.pending--
		return
	}
	if w.pass.Allowed(pos, "settled") {
		return
	}
	w.pass.Reportf(pos, "%q incremented with no open %q obligation and no settleonce guard (guard it with an `if <settleonce fn>` transition, or annotate //thermlint:settled -- why)",
		obj.Name(), w.id.decl.lhs)
}

// isPanicCall matches a direct call to the builtin panic.
func isPanicCall(x ast.Expr) bool {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return false
	}
	ident, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && ident.Name == "panic"
}

// checkMergeIdentity verifies the merge-mode identity: the package's
// //thermlint:metricsmerge function(s) must treat every document key
// uniformly (no identity key string appears in the body) and combine
// numeric leaves linearly (only +), so a structural sum of per-node
// documents preserves each node's identity.
func checkMergeIdentity(pass *Pass, decl identityDecl) {
	keys := map[string]bool{decl.lhs: true}
	for _, t := range decl.terms {
		keys[t] = true
	}
	found := false
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !DeclMarked(fd.Doc, "metricsmerge") {
				continue
			}
			found = true
			checkMergeFunc(pass, fd, keys)
		}
	}
	if !found {
		pass.Reportf(decl.pos, "merge identity declared but no function is marked //thermlint:metricsmerge")
	}
}

func checkMergeFunc(pass *Pass, fd *ast.FuncDecl, keys map[string]bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BasicLit:
			if n.Kind != token.STRING {
				return true
			}
			if s, err := strconv.Unquote(n.Value); err == nil && keys[s] {
				pass.Reportf(n.Pos(), "metrics merge special-cases identity key %q; merges must treat all keys uniformly to preserve the accounting identity", s)
			}
		case *ast.BinaryExpr:
			switch n.Op {
			case token.SUB, token.MUL, token.QUO, token.REM:
				if t := pass.TypeOf(n.X); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsNumeric != 0 {
						pass.Reportf(n.Pos(), "non-linear %q on numeric leaves in a metrics merge; only + preserves the accounting identity under structural sum", n.Op)
					}
				}
			}
		}
		return true
	})
}
