package analysis

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath   string
	Name      string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json -deps` output the
// loader needs. DepOnly marks packages pulled in as dependencies of
// the requested patterns rather than matching them directly; Standard
// marks the standard library.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Imports    []string
	Standard   bool
	DepOnly    bool
}

// loader enumerates and lazily type-checks packages. In-module
// packages are checked at most once each and served to importers from
// the same table, so a function object observed while analyzing an
// importing package is pointer-identical to the one observed while
// analyzing its home package — the property the facts store keys on.
// Standard-library imports fall through to go/importer's source
// importer.
type loader struct {
	fset   *token.FileSet
	listed map[string]*listedPackage // module packages by import path
	order  []string                  // module packages, dependency-first
	roots  []string                  // packages matching the requested patterns
	pkgs   map[string]*Package       // lazily checked module packages
	std    types.ImporterFrom        // stdlib fallback
}

// newLoader runs `go list -json -deps` over patterns (in dir, ""
// meaning the current directory) and indexes the module's packages in
// dependency-first order. Nothing is type-checked yet.
func newLoader(dir string, patterns ...string) (*loader, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	l := &loader{
		fset:   token.NewFileSet(),
		listed: make(map[string]*listedPackage),
		pkgs:   make(map[string]*Package),
	}
	l.std = importer.ForCompiler(l.fset, "source", nil).(types.ImporterFrom)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decode go list output: %w", err)
		}
		if lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		p := lp
		l.listed[p.ImportPath] = &p
		if !p.DepOnly {
			l.roots = append(l.roots, p.ImportPath)
		}
	}
	sort.Strings(l.roots)
	l.order = topoOrder(l.listed)
	return l, nil
}

// topoOrder sorts the module packages dependency-first (a package
// follows everything it imports), breaking ties by import path so the
// order is deterministic.
func topoOrder(listed map[string]*listedPackage) []string {
	paths := make([]string, 0, len(listed))
	for p := range listed {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var order []string
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(string)
	visit = func(path string) {
		if state[path] != 0 {
			return
		}
		state[path] = 1
		lp := listed[path]
		deps := append([]string(nil), lp.Imports...)
		sort.Strings(deps)
		for _, dep := range deps {
			if _, inModule := listed[dep]; inModule {
				visit(dep)
			}
		}
		state[path] = 2
		order = append(order, path)
	}
	for _, p := range paths {
		visit(p)
	}
	return order
}

// Import implements types.Importer by serving module packages from the
// loader's own table (type-checking them on demand) and everything
// else from the source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if _, ok := l.listed[path]; ok {
		pkg, err := l.pkg(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}

// pkg returns the type-checked module package, checking it (and,
// recursively, its module dependencies) on first demand.
func (l *loader) pkg(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	lp, ok := l.listed[path]
	if !ok {
		return nil, fmt.Errorf("package %s is not part of the loaded module graph", path)
	}
	files := make([]string, len(lp.GoFiles))
	for i, f := range lp.GoFiles {
		files[i] = filepath.Join(lp.Dir, f)
	}
	pkg, err := check(l.fset, l, lp.ImportPath, lp.Dir, files)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// hash returns the package's content hash: the sha256 of its file
// names and contents, in go list order. Dependency contents are NOT
// folded in here — the cache combines this with the dependencies'
// action IDs instead (see actionID), so a one-byte change invalidates
// exactly the changed package and its reverse dependencies.
func (lp *listedPackage) hash() (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "pkg %s\n", lp.ImportPath)
	for _, f := range lp.GoFiles {
		data, err := os.ReadFile(filepath.Join(lp.Dir, f))
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "file %s %d\n", f, len(data))
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Load enumerates the packages matching patterns with `go list` (run
// in dir, "" meaning the current directory) and type-checks each from
// source, dependency-first. Test files are excluded, matching the
// linter's scope: shipped code. Standard-library imports resolve
// through go/importer's source importer; module-internal imports are
// served from the same load, so cross-package objects are canonical.
func Load(dir string, patterns ...string) ([]*Package, error) {
	l, err := newLoader(dir, patterns...)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(l.roots))
	for _, path := range l.order {
		if lp := l.listed[path]; lp.DepOnly {
			continue
		}
		pkg, err := l.pkg(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks every .go file directly inside dir as
// one package; the test-fixture loader (testdata packages are invisible
// to `go list`, which is exactly why the fixtures' deliberate
// violations never break the ordinary build).
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(files)
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	return check(fset, imp, "fixture/"+filepath.Base(dir), dir, files)
}

// check parses the named files and type-checks them as one package.
func check(fset *token.FileSet, imp types.Importer, pkgPath, dir string, filenames []string) (*Package, error) {
	var syntax []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", fn, err)
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []string
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	tpkg, err := conf.Check(pkgPath, fset, syntax, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-check %s:\n  %s", pkgPath, strings.Join(typeErrs, "\n  "))
	}
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", pkgPath, err)
	}
	return &Package{
		PkgPath:   pkgPath,
		Name:      tpkg.Name(),
		Dir:       dir,
		Fset:      fset,
		Files:     syntax,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
