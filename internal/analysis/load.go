package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath   string
	Name      string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
}

// Load enumerates the packages matching patterns with `go list` (run in
// dir, "" meaning the current directory) and type-checks each from
// source. Test files are excluded, matching the linter's scope: shipped
// code. Dependencies — including the standard library — resolve through
// go/importer's source importer, so loading works without network
// access or a populated module cache.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var listed []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decode go list output: %w", err)
		}
		if len(lp.GoFiles) > 0 {
			listed = append(listed, lp)
		}
	}
	sort.Slice(listed, func(i, k int) bool { return listed[i].ImportPath < listed[k].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	pkgs := make([]*Package, 0, len(listed))
	for _, lp := range listed {
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := check(fset, imp, lp.ImportPath, lp.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks every .go file directly inside dir as
// one package; the test-fixture loader (testdata packages are invisible
// to `go list`, which is exactly why the fixtures' deliberate
// violations never break the ordinary build).
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(files)
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	return check(fset, imp, "fixture/"+filepath.Base(dir), dir, files)
}

// check parses the named files and type-checks them as one package.
func check(fset *token.FileSet, imp types.Importer, pkgPath, dir string, filenames []string) (*Package, error) {
	var syntax []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", fn, err)
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []string
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	tpkg, err := conf.Check(pkgPath, fset, syntax, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-check %s:\n  %s", pkgPath, strings.Join(typeErrs, "\n  "))
	}
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", pkgPath, err)
	}
	return &Package{
		PkgPath:   pkgPath,
		Name:      tpkg.Name(),
		Dir:       dir,
		Fset:      fset,
		Files:     syntax,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
