package analysis

import (
	"fmt"
	"os"
	"sort"
)

// ApplyFixes applies every suggested fix carried by diags to the files
// on disk, returning how many diagnostics were fixed. Edits are applied
// per file from the end backward so earlier offsets stay valid;
// overlapping edits are skipped (first one wins) and left for a
// re-run after the surviving fixes land.
func ApplyFixes(diags []Diagnostic) (applied int, err error) {
	type edit struct {
		TextEdit
		diag int // index into diags, to count fixed diagnostics
	}
	byFile := make(map[string][]edit)
	for i, d := range diags {
		for _, e := range d.Fixes {
			byFile[e.File] = append(byFile[e.File], edit{TextEdit: e, diag: i})
		}
	}
	fixed := make(map[int]bool)
	files := make([]string, 0, len(byFile))
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, file := range files {
		edits := byFile[file]
		sort.Slice(edits, func(i, j int) bool {
			if edits[i].Start != edits[j].Start {
				return edits[i].Start < edits[j].Start
			}
			return edits[i].End < edits[j].End
		})
		data, err := os.ReadFile(file)
		if err != nil {
			return 0, fmt.Errorf("apply fixes: %w", err)
		}
		// Drop overlaps, then apply back-to-front.
		kept := edits[:0]
		lastEnd := -1
		for _, e := range edits {
			if e.Start < lastEnd || e.Start < 0 || e.End > len(data) || e.End < e.Start {
				continue
			}
			kept = append(kept, e)
			lastEnd = e.End
		}
		for i := len(kept) - 1; i >= 0; i-- {
			e := kept[i]
			data = append(data[:e.Start], append([]byte(e.New), data[e.End:]...)...)
			fixed[e.diag] = true
		}
		if err := os.WriteFile(file, data, 0o644); err != nil {
			return 0, fmt.Errorf("apply fixes: %w", err)
		}
	}
	return len(fixed), nil
}
