// Fixture: no deterministic mark, so wall-clock reads, global rand,
// and map iteration are out of the determinism analyzer's scope.
package fixture

import (
	"math/rand"
	"time"
)

func wallClock() time.Time { return time.Now() }

func globalRand() int { return rand.Intn(10) }

func mapRange(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
