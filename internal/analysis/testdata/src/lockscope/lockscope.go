// Fixture: the lockscope analyzer.
package fixture

import (
	"sync"
	"time"
)

type guarded struct {
	mu sync.Mutex
	ch chan int
}

func (g *guarded) sendUnderLock() {
	g.mu.Lock()
	g.ch <- 1 // want "channel send while holding g.mu"
	g.mu.Unlock()
}

func (g *guarded) recvUnderDeferredUnlock() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return <-g.ch // want "channel receive while holding g.mu"
}

func (g *guarded) sleepUnderLock() {
	g.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding g.mu"
	g.mu.Unlock()
}

func (g *guarded) selectUnderLock() {
	g.mu.Lock()
	defer g.mu.Unlock()
	select { // want "select while holding g.mu"
	case <-g.ch:
	default:
	}
}

func (g *guarded) waitUnderLock(wg *sync.WaitGroup) {
	g.mu.Lock()
	wg.Wait() // want "sync.WaitGroup.Wait while holding g.mu"
	g.mu.Unlock()
}

func (g *guarded) sendAfterUnlock() {
	g.mu.Lock()
	g.mu.Unlock()
	g.ch <- 1 // lock already released: fine
}

func (g *guarded) branchEarlyUnlock(b bool) {
	g.mu.Lock()
	if b {
		g.mu.Unlock()
		return
	}
	g.ch <- 1 // want "channel send while holding g.mu"
	g.mu.Unlock()
}

func (g *guarded) allowedSend() {
	g.mu.Lock()
	//thermlint:locked -- fixture: buffered channel, cannot block
	g.ch <- 1
	g.mu.Unlock()
}

func (g *guarded) condWait(c *sync.Cond) {
	g.mu.Lock()
	c.Wait() // Cond.Wait parks after releasing the mutex: exempt
	g.mu.Unlock()
}
