// Fixture: the faultpoints analyzer with a registry present.
package fixture

import "thermalherd/internal/faultinject"

// Registered fault points.
//
//thermlint:faultpoints
const (
	pointExec  = "fixture.exec"
	pointCache = "fixture.cache"
)

// pointRogue is a constant, but not from the registry block.
const pointRogue = "fixture.rogue"

func fire(r *faultinject.Registry, name string) error {
	if err := r.Fire(pointExec); err != nil {
		return err
	}
	if err := r.Fire(pointCache); err != nil {
		return err
	}
	if err := r.Fire("fixture.exec"); err != nil { // want "must be spelled as its registry constant"
		return err
	}
	if err := r.Fire(pointRogue); err != nil { // want "not in the //thermlint:faultpoints registry"
		return err
	}
	return r.Fire(name) // want "must be a string constant"
}
