// Fixture: the ctxflow analyzer over context-carrying functions.
package fixture

import (
	"context"
	"net/http"
	"time"
)

func nakedOps(ctx context.Context, ch chan int) int {
	ch <- 1     // want "channel send outside a cancellation-aware select"
	return <-ch // want "channel receive outside a cancellation-aware select"
}

func awareSelects(ctx context.Context, ch chan int) {
	select {
	case ch <- 1:
	case <-ctx.Done():
	}
	select {
	case v := <-ch:
		_ = v
	default:
	}
}

func doneChannel(ctx context.Context, ch chan int, done chan struct{}) {
	select {
	case ch <- 1:
	case <-done:
	}
}

func blindSelect(ctx context.Context, a, b chan int) {
	select { // want "select can block without observing cancellation"
	case <-a:
	case <-b:
	}
}

func sleeps(ctx context.Context) {
	time.Sleep(time.Millisecond) // want "time.Sleep ignores ctx"
	//thermlint:blocking -- fixture: audited exception
	time.Sleep(time.Millisecond)
}

func requests(ctx context.Context) error {
	_, err := http.NewRequest("GET", "http://localhost/", nil) // want "http.NewRequest drops ctx"
	if err != nil {
		return err
	}
	_, err = http.NewRequestWithContext(ctx, "GET", "http://localhost/", nil)
	return err
}

func noContext(ch chan int) {
	ch <- 1 // no ctx parameter: out of scope
}

func spawns(ctx context.Context, ch chan int) {
	go func() {
		ch <- 1 // function literal: runs on its own schedule
	}()
}
