// Package unmarked has not opted into goroutine-leak proving: the same
// leaky spawn that goleak flags in a //thermlint:goroutines package is
// out of scope here.
package unmarked

func spin() {
	for {
	}
}

func spawn() {
	go spin() // no finding: package not marked //thermlint:goroutines
}
