// Package acctidmerge exercises the merge-mode identity: a marked
// metrics merge must treat keys uniformly and combine numeric leaves
// only with +, so a structural sum of per-node documents preserves each
// node's accounting identity.
package acctidmerge

//thermlint:identity merge: jobs.submitted = jobs.completed + jobs.failed

// mergeDocs is the well-behaved merge: recursion over maps, addition on
// numeric leaves, no key special-casing.
//
//thermlint:metricsmerge
func mergeDocs(dst, src map[string]any) {
	for k, s := range src {
		switch s := s.(type) {
		case float64:
			if d, ok := dst[k].(float64); ok {
				dst[k] = d + s
			} else {
				dst[k] = s
			}
		case map[string]any:
			if d, ok := dst[k].(map[string]any); ok {
				mergeDocs(d, s)
			} else {
				dst[k] = s
			}
		default:
			dst[k] = s
		}
	}
}

//thermlint:metricsmerge
func badMerge(dst, src map[string]float64) {
	submitted := src["jobs.submitted"] // want "special-cases identity key \"jobs.submitted\""
	dst["jobs.submitted"] = submitted  // want "special-cases identity key \"jobs.submitted\""
	for k, v := range src {
		if k != "" {
			dst[k] = dst[k] * v // want "non-linear ... on numeric leaves"
		}
	}
}
