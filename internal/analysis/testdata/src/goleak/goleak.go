// Package goleak exercises the goroutine-leak prover: spawns must
// observe shutdown or be joined.
//
//thermlint:goroutines
package goleak

import (
	"context"
	"sync"
)

func work() {}

// leakyLoop never observes shutdown.
func leakyLoop() {
	for {
		work()
	}
}

// boundedLoop observes a done channel.
func boundedLoop(stop chan struct{}, ch chan int) {
	for {
		select {
		case <-stop:
			return
		case v := <-ch:
			_ = v
		}
	}
}

// drainer terminates when its channel closes.
func drainer(ch chan int) {
	for range ch {
		work()
	}
}

// viaHelper observes shutdown transitively through boundedLoop.
func viaHelper(stop chan struct{}, ch chan int) {
	work()
	boundedLoop(stop, ch)
}

func spawns(ctx context.Context, stop chan struct{}, ch chan int) {
	go leakyLoop() // want "no provable shutdown path"

	go boundedLoop(stop, ch) // proven: selects on the stop channel
	go drainer(ch)           // proven: for-range over a closable channel
	go viaHelper(stop, ch)   // proven: transitively via boundedLoop's fact

	go func() { // proven: observes ctx.Done directly
		<-ctx.Done()
	}()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // proven: joined via wg.Done
		defer wg.Done()
		work()
	}()

	done := make(chan struct{})
	go func() { // proven: blocks in wg.Wait (a collector)
		wg.Wait()
		close(done)
	}()

	go func() { // want "no provable shutdown path"
		for {
			work()
		}
	}()

	fn := leakyLoop
	go fn() // want "no provable shutdown path"

	//thermlint:goroutine -- audited: process-lifetime metrics pump
	go leakyLoop()
}
