// Package acctid exercises the accounting-identity prover in both
// owner modes: a struct owner (sites are field increments) and an enum
// owner (sites are constants passed to calls).
package acctid

//thermlint:identity counters: submitted = completed + failed
type counters struct {
	submitted counter
	completed counter
	failed    counter
	other     counter
}

type counter struct{ n uint64 }

func (c *counter) Inc() { c.n++ }

func (cs *counters) inc(c *counter) { c.Inc() }

// finish is the exactly-once settlement transition: it reports true
// for exactly one caller per obligation.
//
//thermlint:settleonce
func (cs *counters) finish() bool { return cs.n() == 0 }

func (cs *counters) n() uint64 { return cs.other.n }

func cond() bool { return true }

// paired settles its obligation on every path.
func paired(cs *counters, ok bool) {
	cs.inc(&cs.submitted)
	if ok {
		cs.inc(&cs.completed)
		return
	}
	cs.inc(&cs.failed)
}

// otherFieldFree shows non-member fields are out of scope.
func otherFieldFree(cs *counters) {
	cs.inc(&cs.other)
}

func leakyReturn(cs *counters) {
	cs.inc(&cs.submitted)
	return // want "return leaves 1 unsettled \"submitted\" increment"
}

func divergent(cs *counters) {
	cs.inc(&cs.submitted)
	if cond() { // want "paths disagree on unsettled \"submitted\" increments"
		cs.inc(&cs.completed)
	}
	cs.other.Inc()
}

func handoff(cs *counters) {
	cs.inc(&cs.submitted)
	//thermlint:handoff -- settled later by the worker's finish guard
	return
}

func leakyLoop(cs *counters) {
	for i := 0; i < 3; i++ { // want "loop iteration ends with 1 unsettled \"submitted\" increment"
		cs.inc(&cs.submitted)
	}
}

func pairedLoop(cs *counters, oks []bool) {
	for _, ok := range oks {
		cs.inc(&cs.submitted)
		if ok {
			cs.inc(&cs.completed)
			continue
		}
		cs.inc(&cs.failed)
	}
}

func unguardedSettle(cs *counters) {
	cs.failed.Inc() // want "\"failed\" incremented with no open \"submitted\" obligation"
}

func guardedSettle(cs *counters) {
	if cs.finish() {
		cs.completed.Inc()
	}
}

func negatedGuardSettle(cs *counters) {
	if !cs.finish() {
		return
	}
	cs.failed.Inc()
}

func annotatedSettle(cs *counters) {
	//thermlint:settled -- rebuilt from the journal during replay
	cs.completed.Inc()
}

//thermlint:identity evKind: evSubmit = evDone + evFail
type evKind int

const (
	evSubmit evKind = iota
	evDone
	evFail
	evOther
)

func emit(k evKind) {}

func constPaired() {
	emit(evSubmit)
	emit(evDone)
}

func constLeaky() {
	emit(evSubmit)
	emit(evOther)
	return // want "return leaves 1 unsettled \"evSubmit\" increment"
}

func constSwitch(n int) {
	emit(evSubmit)
	switch n {
	case 0:
		emit(evDone)
	case 1:
		emit(evFail)
	default:
		emit(evFail)
	}
}
