// Fixture: Fire in a package that declares no fault-point registry.
package fixture

import "thermalherd/internal/faultinject"

const pointLocal = "noreg.exec"

func fire(r *faultinject.Registry) error {
	return r.Fire(pointLocal) // want "no //thermlint:faultpoints registry"
}
