// Fixture: the metrickeys analyzer in a package that declares a
// metric-name registry.
package fixture

import "thermalherd/internal/stats"

// The metric-name registry under test.
//
//thermlint:metricnames
const (
	metricGood   = "jobs.good"
	metricOther  = "jobs.other"
	metricPrefix = "latency_ms_"
	metricDupA   = "dup.value"
	metricDupB   = "dup.value" // want "share the value"
)

// metricRogue has the right shape but sits outside the registry block.
const metricRogue = "jobs.rogue"

func histograms(kind string) {
	_ = stats.NewHistogram(metricGood, 0, 1, 10)
	_ = stats.NewHistogram(metricPrefix+kind, 0, 1, 10)
	_ = stats.NewHistogram("jobs.raw", 0, 1, 10)  // want "must be a //thermlint:metricnames registry constant"
	_ = stats.NewHistogram(metricRogue, 0, 1, 10) // want "not in the //thermlint:metricnames registry"
}

// doc builds the metrics document.
//
//thermlint:metricsdoc
func doc(n int) map[string]any {
	return map[string]any{
		metricGood: n,
		"jobs.raw": n, // want "must be a //thermlint:metricnames registry constant"
		metricOther: map[string]any{
			metricGood:  n,
			metricRogue: n, // want "not in the //thermlint:metricnames registry"
		},
	}
}

// unchecked is not marked //thermlint:metricsdoc, so its keys are free.
func unchecked(n int) map[string]any {
	return map[string]any{"free": n}
}
