// Package clockseam exercises the tree-wide timer rule: raw
// time.Timer/Ticker/After/Sleep must go through internal/clock.
package clockseam

import (
	"time"

	"thermalherd/internal/clock"
)

func sleepy() {
	time.Sleep(time.Second) // want "time.Sleep bypasses the clock seam"
}

func after(d time.Duration) <-chan time.Time {
	return time.After(d) // want "time.After bypasses the clock seam"
}

func ticking(stop chan struct{}) {
	t := time.NewTicker(time.Second) // want "time.NewTicker bypasses the clock seam"
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
	}
}

func audited() {
	//thermlint:timer -- injected wall-clock latency is the point
	time.Sleep(time.Millisecond)
}

// seamed goes through the clock interface: no findings.
func seamed(c clock.Clock, d time.Duration) <-chan time.Time {
	return c.After(d)
}

// realSeam uses the process-wide real clock: still seam-respecting.
func realSeam(d time.Duration) {
	<-clock.Real().After(d)
}
