// Package fixable is the -fix round-trip fixture: every finding in
// this package carries a suggested fix, and applying them all yields a
// package the full analyzer suite reports clean.
//
//thermlint:deterministic
package fixable

import (
	"time"

	"thermalherd/internal/clock"
)

//thermlint:metricnames
const (
	metricJobsHits = "jobs.hits"
)

func use(k string, v int) {}

// doc builds a metrics document with one key that should reuse the
// registered constant and one that needs a freshly minted constant.
//
//thermlint:metricsdoc
func doc(hits, lost int) map[string]int {
	return map[string]int{
		"jobs.hits": hits,
		"jobs.lost": lost,
	}
}

func sum(m map[string]int) {
	for k, v := range m {
		use(k, v)
	}
}

func wait(d time.Duration) {
	<-time.After(d)
}

func seam(d time.Duration) {
	<-clock.Real().After(d)
}
