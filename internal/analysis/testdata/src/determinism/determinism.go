// Fixture: the determinism analyzer in a declared-deterministic
// package.
//
//thermlint:deterministic
package fixture

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()      // want "time.Now in a deterministic package"
	_ = time.Since(start)    // want "time.Since in a deterministic package"
	return time.Until(start) // want "time.Until in a deterministic package"
}

func allowedWallClock() time.Time {
	return time.Now() //thermlint:wallclock -- fixture: audited exception
}

func globalRand() int {
	rand.Shuffle(3, func(i, j int) {}) // want "global rand.Shuffle in a deterministic package"
	return rand.Intn(10)               // want "global rand.Intn in a deterministic package"
}

func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10) // seeded instance: the sanctioned randomness
}

func mapOrderLeaks(m map[string]int) []string {
	var keys []string
	for k := range m { // want "map iteration order leaks"
		keys = append(keys, k)
	}
	return keys
}

func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func allowedUnordered(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	//thermlint:unordered -- fixture: map-to-map copy carries no order
	for k, v := range m {
		out[k] = v
	}
	return out
}
