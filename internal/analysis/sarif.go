package analysis

import (
	"encoding/json"
	"sort"
)

// sarif.go renders diagnostics as machine-readable reports: plain JSON
// for scripting, and SARIF 2.1.0 for code-scanning UIs (the CI lint job
// uploads the SARIF artifact).

// FormatJSON renders diags as an indented JSON array.
func FormatJSON(diags []Diagnostic) ([]byte, error) {
	type jsonDiag struct {
		File     string     `json:"file"`
		Line     int        `json:"line"`
		Column   int        `json:"column"`
		Analyzer string     `json:"analyzer"`
		Message  string     `json:"message"`
		Fixes    []TextEdit `json:"fixes,omitempty"`
	}
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
			Fixes:    d.Fixes,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// sarifLog is the minimal SARIF 2.1.0 document shape code-scanning
// consumers require: one run, one driver, rules + results.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// FormatSARIF renders diags as a SARIF 2.1.0 log. analyzers supplies
// the rule metadata; every analyzer appears as a rule even with zero
// findings so dashboards can show coverage.
func FormatSARIF(diags []Diagnostic, analyzers []*Analyzer) ([]byte, error) {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: d.Pos.Filename},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "thermlint", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}
