// Package analysis is thermlint: a suite of project-specific static
// analyzers that machine-check the repo's headline invariants —
// deterministic hot paths, a closed metric-name registry, registered
// fault points, context-aware blocking, and lock hygiene.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// surface (Analyzer, Pass, Reportf, testdata fixtures with `// want`
// expectations) but is reimplemented on the standard library alone:
// packages are enumerated with `go list -json` and type-checked through
// go/importer's source importer, so the linter builds and runs with no
// module dependencies beyond the Go toolchain itself.
//
// Analyzers are configured in-source through directive comments:
//
//	//thermlint:deterministic        marks a package as declared-deterministic
//	//thermlint:wallclock -- why     allows one wall-clock read (time.Now/Since/Until)
//	//thermlint:unordered -- why     allows one order-insensitive map iteration
//	//thermlint:blocking -- why      allows one context-blind blocking operation
//	//thermlint:locked -- why        allows one blocking operation under a mutex
//	//thermlint:metricnames          marks a const block as the metric-name registry
//	//thermlint:metricsdoc           marks a function whose map keys must be registered
//	//thermlint:faultpoints          marks a const block as the fault-point registry
//	//thermlint:goroutines           opts a package into goroutine-leak proving
//	//thermlint:goroutine -- why     allows one unproven goroutine spawn
//	//thermlint:timer -- why         allows one raw time.Timer/Ticker/Sleep/After
//	//thermlint:identity O: l = a+b  declares a counter accounting identity (acctid)
//	//thermlint:settleonce           marks a func as an exactly-once settlement guard
//	//thermlint:settled -- why       allows one settlement outside a guard
//	//thermlint:handoff -- why       allows one return that defers settlement
//	//thermlint:metricsmerge         marks a func as a linear metrics-doc merge
//
// Line directives (wallclock, unordered, blocking, locked, goroutine,
// timer, settled, handoff) attach to the line they trail or the line
// immediately below when they stand alone; the `-- why` justification
// is required reading for reviewers, not parsed.
//
// Since v2 the engine is whole-program: packages load dependency-first
// over `go list -json -deps`, analyzers export typed Facts about
// package-level functions that importing packages consume (see
// facts.go), and results are memoized in an on-disk cache keyed on
// package content hashes (see cache.go). Run the suite with
// `go run ./cmd/thermlint ./...`.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is the one-line invariant statement shown by -list.
	Doc string
	// Run reports the analyzer's findings through pass.Reportf.
	Run func(*Pass) error
}

// TextEdit is one byte-offset replacement inside a source file; the
// unit of a suggested fix applied by `thermlint -fix`.
type TextEdit struct {
	File  string `json:"file"`
	Start int    `json:"start"` // byte offset, inclusive
	End   int    `json:"end"`   // byte offset, exclusive
	New   string `json:"new"`
}

// Diagnostic is one finding, positioned in the analyzed source. Fixes,
// when present, are a mechanical rewrite that resolves the finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Fixes    []TextEdit
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	dirs   *directiveIndex
	report func(Diagnostic)
	facts  *factStore
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportFix records a diagnostic at pos carrying a suggested fix.
func (p *Pass) ReportFix(pos token.Pos, fixes []TextEdit, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Fixes:    fixes,
	})
}

// Offset returns the byte offset of pos inside its file, for building
// TextEdits.
func (p *Pass) Offset(pos token.Pos) int {
	return p.Fset.Position(pos).Offset
}

// ExportObjectFact associates fact with obj — a package-level function
// or method of the package under analysis — for importing packages to
// read back with ImportObjectFact. See facts.go.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	p.facts.export(p.Analyzer.Name, obj, fact)
}

// ImportObjectFact copies the fact of ptr's type previously exported
// for obj (by this analyzer, in this or any dependency package) into
// ptr, reporting whether one was found.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	return p.facts.importInto(p.Analyzer.Name, obj, ptr)
}

// Allowed reports whether a line directive named name suppresses a
// finding at pos: the directive trails the offending line or stands
// alone on the line above it.
func (p *Pass) Allowed(pos token.Pos, name string) bool {
	return p.dirs.allowedAt(p.Fset.Position(pos), name)
}

// PackageMarked reports whether any file of the package carries the
// package-scope directive name (e.g. "deterministic").
func (p *Pass) PackageMarked(name string) bool {
	return p.dirs.packageHas(name)
}

// DeclMarked reports whether a declaration's doc comment carries the
// directive name (e.g. "metricnames" on a const block, "metricsdoc" on
// a function).
func DeclMarked(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if dn, ok := parseDirective(c.Text); ok && dn == name {
			return true
		}
	}
	return false
}

// TypeOf returns the type of expr, or nil when untyped.
func (p *Pass) TypeOf(expr ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(expr)
}

// CalleeFunc resolves a call expression to the *types.Func it invokes
// (package function or method), or nil for indirect calls, conversions,
// and builtins.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	if fn, ok := p.TypesInfo.Uses[id].(*types.Func); ok {
		return fn
	}
	return nil
}

// IsPkgFunc reports whether call invokes the package-level function
// pkgPath.name (through any import alias).
func (p *Pass) IsPkgFunc(call *ast.CallExpr, pkgPath, name string) bool {
	fn := p.CalleeFunc(call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// IsMethod reports whether call invokes a method named name whose
// receiver's named type is pkgPath.typeName (value or pointer).
func (p *Pass) IsMethod(call *ast.CallExpr, pkgPath, typeName, name string) bool {
	fn := p.CalleeFunc(call)
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// directiveIndex maps //thermlint: comment lines to the code they
// govern. A directive applies to its own source line and the line
// below, which covers both trailing and standalone placements.
type directiveIndex struct {
	// perFile: filename -> line -> directive names present.
	perFile map[string]map[int]map[string]bool
	pkg     map[string]bool
}

// parseDirective extracts the name from a "//thermlint:name ..."
// comment; ok is false for every other comment.
func parseDirective(text string) (string, bool) {
	const prefix = "//thermlint:"
	if !strings.HasPrefix(text, prefix) {
		return "", false
	}
	rest := strings.TrimPrefix(text, prefix)
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	if rest == "" {
		return "", false
	}
	return rest, true
}

func buildDirectiveIndex(fset *token.FileSet, files []*ast.File) *directiveIndex {
	idx := &directiveIndex{
		perFile: make(map[string]map[int]map[string]bool),
		pkg:     make(map[string]bool),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				idx.pkg[name] = true
				pos := fset.Position(c.Slash)
				lines := idx.perFile[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					idx.perFile[pos.Filename] = lines
				}
				for _, ln := range []int{pos.Line, pos.Line + 1} {
					if lines[ln] == nil {
						lines[ln] = make(map[string]bool)
					}
					lines[ln][name] = true
				}
			}
		}
	}
	return idx
}

func (idx *directiveIndex) allowedAt(pos token.Position, name string) bool {
	return idx.perFile[pos.Filename][pos.Line][name]
}

func (idx *directiveIndex) packageHas(name string) bool { return idx.pkg[name] }

// RunAnalyzers applies each analyzer to each package and returns every
// diagnostic, sorted by position then analyzer name. Packages must be
// in dependency order when analyzers consume cross-package facts: the
// facts store is shared across the whole run, so facts exported while
// analyzing a dependency are visible to its importers.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	facts := newFactStore()
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ds, err := runOne(pkg, analyzers, facts)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	sortDiagnostics(diags)
	return diags, nil
}

// runOne applies the analyzers to a single package against a shared
// facts store and returns its diagnostics, unsorted.
func runOne(pkg *Package, analyzers []*Analyzer, facts *factStore) ([]Diagnostic, error) {
	dirs := buildDirectiveIndex(pkg.Fset, pkg.Files)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			dirs:      dirs,
			report:    func(d Diagnostic) { diags = append(diags, d) },
			facts:     facts,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, k int) bool {
		a, b := diags[i], diags[k]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// All returns the thermlint analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism, MetricKeys, FaultPoints, CtxFlow, LockScope,
		GoLeak, AcctID, ClockSeam,
	}
}
