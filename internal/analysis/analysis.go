// Package analysis is thermlint: a suite of project-specific static
// analyzers that machine-check the repo's headline invariants —
// deterministic hot paths, a closed metric-name registry, registered
// fault points, context-aware blocking, and lock hygiene.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// surface (Analyzer, Pass, Reportf, testdata fixtures with `// want`
// expectations) but is reimplemented on the standard library alone:
// packages are enumerated with `go list -json` and type-checked through
// go/importer's source importer, so the linter builds and runs with no
// module dependencies beyond the Go toolchain itself.
//
// Analyzers are configured in-source through directive comments:
//
//	//thermlint:deterministic        marks a package as declared-deterministic
//	//thermlint:wallclock -- why     allows one wall-clock read (time.Now/Since/Until)
//	//thermlint:unordered -- why     allows one order-insensitive map iteration
//	//thermlint:blocking -- why      allows one context-blind blocking operation
//	//thermlint:locked -- why        allows one blocking operation under a mutex
//	//thermlint:metricnames          marks a const block as the metric-name registry
//	//thermlint:metricsdoc           marks a function whose map keys must be registered
//	//thermlint:faultpoints          marks a const block as the fault-point registry
//
// Line directives (wallclock, unordered, blocking, locked) attach to
// the line they trail or the line immediately below when they stand
// alone; the `-- why` justification is required reading for reviewers,
// not parsed. Run the suite with `go run ./cmd/thermlint ./...`.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is the one-line invariant statement shown by -list.
	Doc string
	// Run reports the analyzer's findings through pass.Reportf.
	Run func(*Pass) error
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	dirs   *directiveIndex
	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Allowed reports whether a line directive named name suppresses a
// finding at pos: the directive trails the offending line or stands
// alone on the line above it.
func (p *Pass) Allowed(pos token.Pos, name string) bool {
	return p.dirs.allowedAt(p.Fset.Position(pos), name)
}

// PackageMarked reports whether any file of the package carries the
// package-scope directive name (e.g. "deterministic").
func (p *Pass) PackageMarked(name string) bool {
	return p.dirs.packageHas(name)
}

// DeclMarked reports whether a declaration's doc comment carries the
// directive name (e.g. "metricnames" on a const block, "metricsdoc" on
// a function).
func DeclMarked(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if dn, ok := parseDirective(c.Text); ok && dn == name {
			return true
		}
	}
	return false
}

// TypeOf returns the type of expr, or nil when untyped.
func (p *Pass) TypeOf(expr ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(expr)
}

// CalleeFunc resolves a call expression to the *types.Func it invokes
// (package function or method), or nil for indirect calls, conversions,
// and builtins.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	if fn, ok := p.TypesInfo.Uses[id].(*types.Func); ok {
		return fn
	}
	return nil
}

// IsPkgFunc reports whether call invokes the package-level function
// pkgPath.name (through any import alias).
func (p *Pass) IsPkgFunc(call *ast.CallExpr, pkgPath, name string) bool {
	fn := p.CalleeFunc(call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// IsMethod reports whether call invokes a method named name whose
// receiver's named type is pkgPath.typeName (value or pointer).
func (p *Pass) IsMethod(call *ast.CallExpr, pkgPath, typeName, name string) bool {
	fn := p.CalleeFunc(call)
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// directiveIndex maps //thermlint: comment lines to the code they
// govern. A directive applies to its own source line and the line
// below, which covers both trailing and standalone placements.
type directiveIndex struct {
	// perFile: filename -> line -> directive names present.
	perFile map[string]map[int]map[string]bool
	pkg     map[string]bool
}

// parseDirective extracts the name from a "//thermlint:name ..."
// comment; ok is false for every other comment.
func parseDirective(text string) (string, bool) {
	const prefix = "//thermlint:"
	if !strings.HasPrefix(text, prefix) {
		return "", false
	}
	rest := strings.TrimPrefix(text, prefix)
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	if rest == "" {
		return "", false
	}
	return rest, true
}

func buildDirectiveIndex(fset *token.FileSet, files []*ast.File) *directiveIndex {
	idx := &directiveIndex{
		perFile: make(map[string]map[int]map[string]bool),
		pkg:     make(map[string]bool),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				idx.pkg[name] = true
				pos := fset.Position(c.Slash)
				lines := idx.perFile[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					idx.perFile[pos.Filename] = lines
				}
				for _, ln := range []int{pos.Line, pos.Line + 1} {
					if lines[ln] == nil {
						lines[ln] = make(map[string]bool)
					}
					lines[ln][name] = true
				}
			}
		}
	}
	return idx
}

func (idx *directiveIndex) allowedAt(pos token.Position, name string) bool {
	return idx.perFile[pos.Filename][pos.Line][name]
}

func (idx *directiveIndex) packageHas(name string) bool { return idx.pkg[name] }

// RunAnalyzers applies each analyzer to each package and returns every
// diagnostic, sorted by position then analyzer name.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		dirs := buildDirectiveIndex(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				dirs:      dirs,
				report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, k int) bool {
		a, b := diags[i], diags[k]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// All returns the thermlint analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, MetricKeys, FaultPoints, CtxFlow, LockScope}
}
