package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// TestFixRoundTrip copies the fixable fixture aside, applies every
// suggested fix the suite produces, and checks the rewritten package
// comes back clean: the metrickeys substitutions (one existing
// constant, one minted), the determinism sorted-range rewrite with its
// import insertions, and the clock-seam rewrite all have to compose in
// one pass.
func TestFixRoundTrip(t *testing.T) {
	srcDir := filepath.Join("testdata", "src", "fixable")
	dir := t.TempDir()
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(srcDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("load fixable copy: %v", err)
	}
	diags, err := RunAnalyzers([]*Package{pkg}, All())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("fixable fixture produced no findings")
	}
	for _, d := range diags {
		if len(d.Fixes) == 0 {
			t.Errorf("finding without a suggested fix: %s: %s: %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	applied, err := ApplyFixes(diags)
	if err != nil {
		t.Fatalf("apply fixes: %v", err)
	}
	if applied == 0 {
		t.Fatal("no fixes applied")
	}

	pkg2, err := LoadDir(dir)
	if err != nil {
		fixed, _ := os.ReadFile(filepath.Join(dir, "fixable.go"))
		t.Fatalf("fixed package no longer loads: %v\n%s", err, fixed)
	}
	diags2, err := RunAnalyzers([]*Package{pkg2}, All())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags2) != 0 {
		fixed, _ := os.ReadFile(filepath.Join(dir, "fixable.go"))
		for _, d := range diags2 {
			t.Errorf("finding survived -fix: %s: %s: %s", d.Pos, d.Analyzer, d.Message)
		}
		t.Fatalf("fixed source:\n%s", fixed)
	}
}
