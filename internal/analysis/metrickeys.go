package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// MetricKeys closes the metric namespace: in packages that declare a
// //thermlint:metricnames const registry, every stats counter/histogram
// name and every key of the /metrics document builder must be one of
// the registered constants. A typo'd or dynamically built key would
// silently break /metrics reconciliation (the submitted ==
// hits+completed+failed+canceled+rejected identity chaosCheck asserts),
// so raw string literals at those sites are errors even when their
// value happens to match.
var MetricKeys = &Analyzer{
	Name: "metrickeys",
	Doc:  "metric names must be constants from the //thermlint:metricnames registry",
	Run:  runMetricKeys,
}

const statsPkgPath = "thermalherd/internal/stats"

func runMetricKeys(pass *Pass) error {
	registry := collectStringRegistry(pass, "metricnames")
	if registry == nil {
		return nil // package declares no metric-name registry; out of scope
	}
	fixer := newRegistryFixer(pass, registry)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			docChecked := DeclMarked(fn.Doc, "metricsdoc")
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if pass.IsPkgFunc(n, statsPkgPath, "NewHistogram") && len(n.Args) > 0 {
						checkMetricName(pass, registry, fixer, n.Args[0], "stats.NewHistogram name")
					}
				case *ast.CompositeLit:
					if docChecked {
						checkMetricsDocLit(pass, registry, fixer, n)
					}
				}
				return true
			})
		}
	}
	return nil
}

// checkMetricsDocLit validates every key of a string-keyed map literal
// inside a //thermlint:metricsdoc function.
func checkMetricsDocLit(pass *Pass, registry map[string]string, fixer *registryFixer, lit *ast.CompositeLit) {
	t := pass.TypeOf(lit)
	if t == nil {
		return
	}
	m, ok := t.Underlying().(*types.Map)
	if !ok {
		return
	}
	if basic, ok := m.Key().Underlying().(*types.Basic); !ok || basic.Kind() != types.String {
		return
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		checkMetricName(pass, registry, fixer, kv.Key, "metrics document key")
	}
}

// checkMetricName requires expr to be a named constant from the
// registry, or (for histogram name prefixes like "latency_ms_"+kind) a
// concatenation whose leftmost operand is one. Raw string literals get
// a suggested fix: substitute the registered constant for the value, or
// mint a new registry constant when none exists.
func checkMetricName(pass *Pass, registry map[string]string, fixer *registryFixer, expr ast.Expr, site string) {
	expr = ast.Unparen(expr)
	if bin, ok := expr.(*ast.BinaryExpr); ok {
		// A dynamic suffix is fine as long as the prefix is registered.
		checkMetricName(pass, registry, fixer, bin.X, site)
		return
	}
	name, val, ok := constIdent(pass, expr)
	if !ok {
		if fixes := fixer.fixLiteral(expr); fixes != nil {
			pass.ReportFix(expr.Pos(), fixes, "%s must be a //thermlint:metricnames registry constant, not %s", site, describeExpr(expr))
		} else {
			pass.Reportf(expr.Pos(), "%s must be a //thermlint:metricnames registry constant, not %s", site, describeExpr(expr))
		}
		return
	}
	if _, registered := registry[name]; !registered {
		pass.Reportf(expr.Pos(), "%s uses constant %s (%q) which is not in the //thermlint:metricnames registry", site, name, val)
	}
}

// constIdent resolves expr to a named string constant, returning its
// name and value.
func constIdent(pass *Pass, expr ast.Expr) (name, val string, ok bool) {
	var id *ast.Ident
	switch e := expr.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", "", false
	}
	obj, ok := pass.TypesInfo.Uses[id].(*types.Const)
	if !ok || obj.Val().Kind() != constant.String {
		return "", "", false
	}
	return obj.Name(), constant.StringVal(obj.Val()), true
}

func describeExpr(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.BasicLit:
		return fmt.Sprintf("the raw literal %s", e.Value)
	case *ast.Ident:
		return fmt.Sprintf("identifier %s", e.Name)
	default:
		return "a dynamic expression"
	}
}

// registryFixer builds suggested fixes for raw metric-name literals:
// substitute the registry constant that already holds the value, or
// mint one — an insertion into the registry const block plus the
// substitution.
type registryFixer struct {
	pass    *Pass
	byValue map[string]string // registry value -> const name
	insert  token.Pos         // before the registry block's closing paren
}

func newRegistryFixer(pass *Pass, registry map[string]string) *registryFixer {
	f := &registryFixer{pass: pass, byValue: make(map[string]string, len(registry))}
	for name, val := range registry {
		f.byValue[val] = name
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if ok && DeclMarked(gd.Doc, "metricnames") && gd.Rparen.IsValid() {
				f.insert = gd.Rparen
				return f
			}
		}
	}
	return f
}

// fixLiteral returns edits resolving a raw string-literal metric name,
// or nil when expr is not a plain string literal.
func (f *registryFixer) fixLiteral(expr ast.Expr) []TextEdit {
	lit, ok := expr.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return nil
	}
	val, err := strconv.Unquote(lit.Value)
	if err != nil {
		return nil
	}
	file := f.pass.Fset.Position(lit.Pos()).Filename
	if name, ok := f.byValue[val]; ok {
		return []TextEdit{{File: file, Start: f.pass.Offset(lit.Pos()), End: f.pass.Offset(lit.End()), New: name}}
	}
	if !f.insert.IsValid() {
		return nil
	}
	name := mintConstName(val)
	if name == "" {
		return nil
	}
	f.byValue[val] = name // later literals with the same value reuse it
	regFile := f.pass.Fset.Position(f.insert).Filename
	return []TextEdit{
		{File: regFile, Start: f.pass.Offset(f.insert), End: f.pass.Offset(f.insert),
			New: "\t" + name + " = " + strconv.Quote(val) + "\n"},
		{File: file, Start: f.pass.Offset(lit.Pos()), End: f.pass.Offset(lit.End()), New: name},
	}
}

// mintConstName derives a registry constant name from a dotted wire
// key: "jobs.lost" -> metricJobsLost.
func mintConstName(val string) string {
	var sb strings.Builder
	sb.WriteString("metric")
	upper := true
	for _, r := range val {
		switch {
		case r >= 'a' && r <= 'z':
			if upper {
				r -= 'a' - 'A'
				upper = false
			}
			sb.WriteRune(r)
		case r >= 'A' && r <= 'Z' || r >= '0' && r <= '9':
			sb.WriteRune(r)
			upper = false
		default:
			upper = true // separator: next letter starts a word
		}
	}
	if sb.Len() == len("metric") {
		return ""
	}
	return sb.String()
}

// collectStringRegistry gathers the string constants of every const
// block annotated with the given decl directive, reporting duplicate
// values (two registered names for one wire key is a reconciliation
// bug waiting to happen). Returns nil when the package declares no
// such block.
func collectStringRegistry(pass *Pass, directive string) map[string]string {
	var registry map[string]string
	byValue := make(map[string]string)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || !DeclMarked(gd.Doc, directive) {
				continue
			}
			if registry == nil {
				registry = make(map[string]string)
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, nameID := range vs.Names {
					obj, ok := pass.TypesInfo.Defs[nameID].(*types.Const)
					if !ok || obj.Val().Kind() != constant.String {
						pass.Reportf(nameID.Pos(), "//thermlint:%s registry entry %s is not a string constant", directive, nameID.Name)
						continue
					}
					val := constant.StringVal(obj.Val())
					registry[obj.Name()] = val
					if prev, dup := byValue[val]; dup {
						pass.Reportf(nameID.Pos(), "registry constants %s and %s share the value %q", prev, obj.Name(), val)
					}
					byValue[val] = obj.Name()
				}
			}
		}
	}
	return registry
}
