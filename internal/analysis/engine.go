package analysis

import "fmt"

// RunConfig configures a whole-program analysis run.
type RunConfig struct {
	// Dir is where `go list` runs; "" means the current directory.
	Dir string
	// Patterns are go package patterns; default "./...".
	Patterns []string
	// Analyzers to apply; default All().
	Analyzers []*Analyzer
	// CacheDir enables the on-disk analysis cache when non-empty.
	CacheDir string
}

// PkgStat records how one package was resolved during a run.
type PkgStat struct {
	PkgPath string
	Cached  bool
}

// RunResult is the outcome of a whole-program run.
type RunResult struct {
	// Diags holds every diagnostic from packages matching the
	// requested patterns, sorted by position.
	Diags []Diagnostic
	// Pkgs lists every analyzed module package (dependencies
	// included) in dependency order, with cache-hit status.
	Pkgs []PkgStat
}

// Hits returns how many packages were served from the cache.
func (r *RunResult) Hits() int {
	n := 0
	for _, p := range r.Pkgs {
		if p.Cached {
			n++
		}
	}
	return n
}

// Run is the thermlint engine: it enumerates module packages
// dependency-first, analyzes each (or replays its cached result),
// threads exported facts from dependencies to importers, and returns
// the diagnostics for the packages matching the requested patterns.
//
// Every module package reachable from the patterns is analyzed — facts
// flow from dependencies even when only their importers were asked
// for — but only packages matching the patterns contribute
// diagnostics. On a full cache hit no package is even type-checked,
// which is where the warm-lint speedup comes from.
func Run(cfg RunConfig) (*RunResult, error) {
	analyzers := cfg.Analyzers
	if len(analyzers) == 0 {
		analyzers = All()
	}
	l, err := newLoader(cfg.Dir, cfg.Patterns...)
	if err != nil {
		return nil, err
	}

	var cache *analysisCache
	var ids map[string]string
	if cfg.CacheDir != "" {
		if cache, err = openCache(cfg.CacheDir); err != nil {
			return nil, err
		}
		if ids, err = actionIDs(l, analyzers); err != nil {
			return nil, err
		}
	}

	facts := newFactStore()
	res := &RunResult{}
	for _, path := range l.order {
		lp := l.listed[path]
		if entry, ok := cache.get(ids[path]); ok && entry.PkgPath == path {
			facts.replay(entry.Facts)
			if !lp.DepOnly {
				res.Diags = append(res.Diags, entry.Diags...)
			}
			res.Pkgs = append(res.Pkgs, PkgStat{PkgPath: path, Cached: true})
			continue
		}
		pkg, err := l.pkg(path)
		if err != nil {
			return nil, err
		}
		diags, err := runOne(pkg, analyzers, facts)
		if err != nil {
			return nil, err
		}
		if cache != nil {
			entry := &cacheEntry{PkgPath: path, Diags: diags, Facts: facts.factsForPackage(path)}
			if err := cache.put(ids[path], entry); err != nil {
				return nil, fmt.Errorf("write cache entry for %s: %w", path, err)
			}
		}
		if !lp.DepOnly {
			res.Diags = append(res.Diags, diags...)
		}
		res.Pkgs = append(res.Pkgs, PkgStat{PkgPath: path})
	}
	sortDiagnostics(res.Diags)
	return res, nil
}
