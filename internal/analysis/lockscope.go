package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockScope flags mutexes held across operations that can block
// indefinitely — channel sends/receives, selects, time.Sleep,
// WaitGroup.Wait, and outbound HTTP — the class of bug the stuck-worker
// watchdog papers over at runtime. The scan is a per-function,
// source-order walk: Lock()/RLock() opens a critical section on the
// spelled receiver ("s.mu"), the matching Unlock at the same nesting
// level closes it, and a deferred Unlock extends it to the end of the
// function. Branches are scanned with a copy of the held set, so an
// early `mu.Unlock(); return` arm does not release the fall-through
// path. sync.Cond.Wait is exempt (it releases the lock itself);
// //thermlint:locked allows audited exceptions. Function literals are
// skipped: they execute on their own schedule.
var LockScope = &Analyzer{
	Name: "lockscope",
	Doc:  "no channel operations or blocking calls while holding a mutex",
	Run:  runLockScope,
}

func runLockScope(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			scanLockBlock(pass, fn.Body.List, map[string]token.Pos{})
		}
	}
	return nil
}

// scanLockBlock walks one statement list, threading the held-mutex set.
func scanLockBlock(pass *Pass, stmts []ast.Stmt, held map[string]token.Pos) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if key, locks, ok := mutexCall(pass, s.X); ok {
				if locks {
					held[key] = s.Pos()
				} else {
					delete(held, key)
				}
				continue
			}
			flagBlockingUnder(pass, s, held)
		case *ast.DeferStmt:
			// defer mu.Unlock() holds the lock for the rest of the
			// function; leave it in held. Other defers are inert here.
			if _, _, ok := mutexCall(pass, s.Call); !ok {
				flagBlockingUnder(pass, s, held)
			}
		case *ast.BlockStmt:
			scanLockBlock(pass, s.List, held)
		case *ast.IfStmt:
			flagBlockingUnder(pass, s.Cond, held)
			scanLockBlock(pass, s.Body.List, cloneHeld(held))
			if s.Else != nil {
				scanLockBlock(pass, []ast.Stmt{s.Else}, cloneHeld(held))
			}
		case *ast.ForStmt:
			scanLockBlock(pass, s.Body.List, cloneHeld(held))
		case *ast.RangeStmt:
			flagBlockingUnder(pass, s.X, held)
			scanLockBlock(pass, s.Body.List, cloneHeld(held))
		case *ast.SwitchStmt:
			flagBlockingUnder(pass, s.Tag, held)
			for _, clause := range s.Body.List {
				scanLockBlock(pass, clause.(*ast.CaseClause).Body, cloneHeld(held))
			}
		case *ast.TypeSwitchStmt:
			for _, clause := range s.Body.List {
				scanLockBlock(pass, clause.(*ast.CaseClause).Body, cloneHeld(held))
			}
		case *ast.SelectStmt:
			if len(held) > 0 && !pass.Allowed(s.Pos(), "locked") {
				key, pos := anyHeld(held)
				pass.Reportf(s.Pos(), "select while holding %s (locked at %s); a blocked case stalls every other critical section", key, pass.Fset.Position(pos))
			}
			for _, clause := range s.Body.List {
				scanLockBlock(pass, clause.(*ast.CommClause).Body, cloneHeld(held))
			}
		default:
			flagBlockingUnder(pass, stmt, held)
		}
	}
}

func cloneHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func anyHeld(held map[string]token.Pos) (string, token.Pos) {
	bestKey, bestPos := "", token.NoPos
	for k, p := range held {
		if bestKey == "" || p < bestPos {
			bestKey, bestPos = k, p
		}
	}
	return bestKey, bestPos
}

// flagBlockingUnder reports blocking operations inside a simple
// statement or expression while any mutex is held.
func flagBlockingUnder(pass *Pass, n ast.Node, held map[string]token.Pos) {
	if len(held) == 0 || n == nil {
		return
	}
	key, lockPos := anyHeld(held)
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			if !pass.Allowed(m.Pos(), "locked") {
				pass.Reportf(m.Pos(), "channel send while holding %s (locked at %s)", key, pass.Fset.Position(lockPos))
			}
		case *ast.UnaryExpr:
			if m.Op == token.ARROW && !pass.Allowed(m.Pos(), "locked") {
				pass.Reportf(m.Pos(), "channel receive while holding %s (locked at %s)", key, pass.Fset.Position(lockPos))
			}
		case *ast.CallExpr:
			if name, ok := blockingCallName(pass, m); ok && !pass.Allowed(m.Pos(), "locked") {
				pass.Reportf(m.Pos(), "%s while holding %s (locked at %s)", name, key, pass.Fset.Position(lockPos))
			}
		}
		return true
	})
}

// blockingCallName matches the blocking-call blocklist: time.Sleep,
// sync.WaitGroup.Wait, and net/http.Client.Do. sync.Cond.Wait is
// deliberately absent — it releases the mutex while parked.
func blockingCallName(pass *Pass, call *ast.CallExpr) (string, bool) {
	switch {
	case pass.IsPkgFunc(call, "time", "Sleep"):
		return "time.Sleep", true
	case pass.IsMethod(call, "sync", "WaitGroup", "Wait"):
		return "sync.WaitGroup.Wait", true
	case pass.IsMethod(call, "net/http", "Client", "Do"):
		return "http.Client.Do", true
	}
	return "", false
}

// mutexCall classifies expr as a sync mutex acquire/release:
// key identifies the receiver as spelled ("q.mu"), locks is true for
// Lock/RLock and false for Unlock/RUnlock.
func mutexCall(pass *Pass, expr ast.Expr) (key string, locks, ok bool) {
	call, isCall := ast.Unparen(expr).(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	fn, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		locks = true
	case "Unlock", "RUnlock":
		locks = false
	default:
		return "", false, false
	}
	return types.ExprString(sel.X), locks, true
}
