package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"testing"
)

// wantRe extracts the expectation pattern from a `// want "regexp"`
// comment, the same convention as x/tools' analysistest.
var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

type wantDiag struct {
	pattern *regexp.Regexp
	raw     string
	matched bool
}

// runFixture loads testdata/src/<fixture> as one package, runs the
// analyzer over it, and checks the diagnostics against the fixture's
// `// want "regexp"` comments: every diagnostic must match a want on
// its line, and every want must be claimed by exactly one diagnostic.
func runFixture(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("load fixture %s: %v", fixture, err)
	}

	wants := make(map[string][]*wantDiag) // "file:line" -> expectations
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want pattern %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Slash)
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				wants[key] = append(wants[key], &wantDiag{pattern: re, raw: m[1]})
			}
		}
	}

	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("run %s on fixture %s: %v", a.Name, fixture, err)
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		claimed := false
		for _, w := range wants[key] {
			if !w.matched && w.pattern.MatchString(d.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.raw)
			}
		}
	}
}
