package analysis

import (
	"go/ast"
	"go/printer"
	"go/types"
	"strings"
)

// ClockSeam extends the determinism rule tree-wide: every timer must go
// through the internal/clock seam so tests can drive time with a Fake.
// Any time.Timer/Ticker/After/Sleep outside internal/clock itself is a
// finding; //thermlint:timer allows the audited wall-time exceptions
// (injected fault latency, example programs).
//
// Where the package already imports internal/clock the finding carries
// a suggested fix: time.After(d) → clock.Real().After(d), and
// time.Sleep(d) → <-clock.Real().After(d).
var ClockSeam = &Analyzer{
	Name: "clockseam",
	Doc:  "raw time.Timer/Ticker/After/Sleep outside internal/clock must use the clock seam",
	Run:  runClockSeam,
}

// clockPkgPath is the one package allowed to touch raw timers: the
// seam's own implementation.
const clockPkgPath = "thermalherd/internal/clock"

// timerFuncs are the time-package entry points that arm a raw timer.
// time.Now/Since/Until stay the determinism analyzer's business: they
// read the clock but never schedule against it.
var timerFuncs = map[string]bool{
	"Sleep": true, "After": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

func runClockSeam(pass *Pass) error {
	if pass.Pkg.Path() == clockPkgPath {
		return nil
	}
	clockName := importedClockName(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.CalleeFunc(call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !timerFuncs[fn.Name()] {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			if pass.Allowed(call.Pos(), "timer") {
				return true
			}
			fixes := clockSeamFix(pass, call, fn.Name(), clockName)
			if fixes != nil {
				pass.ReportFix(call.Pos(), fixes,
					"time.%s bypasses the clock seam (use %s.Real().After, or annotate //thermlint:timer -- why)",
					fn.Name(), clockName)
			} else {
				pass.Reportf(call.Pos(),
					"time.%s bypasses the clock seam (thread a clock.Clock through, or annotate //thermlint:timer -- why)",
					fn.Name())
			}
			return true
		})
	}
	return nil
}

// importedClockName returns the local name internal/clock is imported
// under in the package, or "" when it is not imported anywhere.
func importedClockName(pass *Pass) string {
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			if strings.Trim(imp.Path.Value, `"`) != clockPkgPath {
				continue
			}
			if imp.Name != nil {
				return imp.Name.Name
			}
			return "clock"
		}
	}
	return ""
}

// clockSeamFix builds the mechanical rewrite for the two seam-friendly
// shapes — After and Sleep with a single duration argument — when the
// package already imports the clock package (so no import surgery is
// needed).
func clockSeamFix(pass *Pass, call *ast.CallExpr, fnName, clockName string) []TextEdit {
	if clockName == "" || len(call.Args) != 1 {
		return nil
	}
	arg := formatNode(pass, call.Args[0])
	if arg == "" {
		return nil
	}
	file := pass.Fset.Position(call.Pos()).Filename
	edit := TextEdit{File: file, Start: pass.Offset(call.Pos()), End: pass.Offset(call.End())}
	switch fnName {
	case "After":
		edit.New = clockName + ".Real().After(" + arg + ")"
	case "Sleep":
		edit.New = "<-" + clockName + ".Real().After(" + arg + ")"
	default:
		return nil
	}
	return []TextEdit{edit}
}

// formatNode renders an AST node back to source text.
func formatNode(pass *Pass, n ast.Node) string {
	var sb strings.Builder
	if err := printer.Fprint(&sb, pass.Fset, n); err != nil {
		return ""
	}
	return sb.String()
}
