package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// suiteVersion participates in every action ID; bump it when analyzer
// semantics change so stale cache entries self-invalidate.
const suiteVersion = "thermlint-v2"

// cacheEntry is the persisted outcome of analyzing one package: its
// diagnostics (with suggested fixes) and the facts it exported. On a
// hit the facts replay into the run's store so importers see exactly
// what a live analysis would have produced.
type cacheEntry struct {
	PkgPath string       `json:"pkg_path"`
	Diags   []Diagnostic `json:"diags"`
	Facts   []cachedFact `json:"facts"`
}

// analysisCache memoizes per-package analysis results on disk, keyed
// by action ID. A nil *analysisCache is a valid always-miss cache.
type analysisCache struct {
	dir string
}

// openCache returns a cache rooted at dir, creating it if needed.
func openCache(dir string) (*analysisCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("create analysis cache dir: %w", err)
	}
	return &analysisCache{dir: dir}, nil
}

func (c *analysisCache) path(actionID string) string {
	return filepath.Join(c.dir, actionID+".json")
}

// get loads the entry for actionID; ok is false on miss or any decode
// problem (a corrupt entry behaves as a miss and is overwritten).
func (c *analysisCache) get(actionID string) (*cacheEntry, bool) {
	if c == nil {
		return nil, false
	}
	data, err := os.ReadFile(c.path(actionID))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false
	}
	return &e, true
}

// put stores the entry under actionID via rename so concurrent lints
// never observe a torn file.
func (c *analysisCache) put(actionID string, e *cacheEntry) error {
	if c == nil {
		return nil
	}
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, "entry-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.path(actionID))
}

// actionIDs computes the cache key for every module package,
// dependency-first: sha256 over the suite version, the analyzer names,
// the package's own content hash, and the action IDs of its in-module
// imports. A one-byte source change therefore changes exactly that
// package's ID and — transitively — its reverse dependencies' IDs,
// leaving unrelated packages' entries valid.
func actionIDs(l *loader, analyzers []*Analyzer) (map[string]string, error) {
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	sort.Strings(names)
	ids := make(map[string]string, len(l.listed))
	for _, path := range l.order {
		lp := l.listed[path]
		content, err := lp.hash()
		if err != nil {
			return nil, fmt.Errorf("hash %s: %w", path, err)
		}
		h := sha256.New()
		fmt.Fprintf(h, "version %s\n", suiteVersion)
		fmt.Fprintf(h, "pkg %s\n", path)
		fmt.Fprintf(h, "analyzers %v\n", names)
		fmt.Fprintf(h, "content %s\n", content)
		deps := append([]string(nil), lp.Imports...)
		sort.Strings(deps)
		for _, dep := range deps {
			if id, inModule := ids[dep]; inModule {
				fmt.Fprintf(h, "dep %s %s\n", dep, id)
			}
		}
		ids[path] = hex.EncodeToString(h.Sum(nil))
	}
	return ids, nil
}
