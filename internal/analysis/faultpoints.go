package analysis

import (
	"go/ast"
	"go/constant"
)

// FaultPoints keeps chaos specs honest: every fault point fired through
// faultinject.Registry.Fire must be a constant registered in a
// //thermlint:faultpoints const block in the same package. A point name
// invented at a call site would be armable by -faults yet invisible to
// the registry the docs and chaos suites enumerate — or worse, a typo'd
// point would silently never fire.
var FaultPoints = &Analyzer{
	Name: "faultpoints",
	Doc:  "Registry.Fire arguments must be constants from the //thermlint:faultpoints registry",
	Run:  runFaultPoints,
}

const faultinjectPkgPath = "thermalherd/internal/faultinject"

func runFaultPoints(pass *Pass) error {
	registry := collectStringRegistry(pass, "faultpoints")
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			if !pass.IsMethod(call, faultinjectPkgPath, "Registry", "Fire") {
				return true
			}
			arg := ast.Unparen(call.Args[0])
			tv, ok := pass.TypesInfo.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(), "Fire point must be a string constant, not a dynamic expression (chaos specs cannot target what they cannot name)")
				return true
			}
			point := constant.StringVal(tv.Value)
			if registry == nil {
				pass.Reportf(arg.Pos(), "Fire(%q) in a package with no //thermlint:faultpoints registry (declare the point in a registered const block)", point)
				return true
			}
			name, _, isConst := constIdent(pass, arg)
			if !isConst {
				pass.Reportf(arg.Pos(), "Fire point %q must be spelled as its registry constant, not a raw literal", point)
				return true
			}
			if _, registered := registry[name]; !registered {
				pass.Reportf(arg.Pos(), "Fire point constant %s (%q) is not in the //thermlint:faultpoints registry", name, point)
			}
			return true
		})
	}
	return nil
}
