package analysis

import (
	"go/ast"
	"go/types"
)

// Determinism enforces the reproduction's byte-identical-replay claim:
// packages marked //thermlint:deterministic (loadgen schedule/mix
// synthesis, trace, emu, predictor, faultinject) must not read the wall
// clock, draw from the global math/rand source, or iterate a map in an
// order-sensitive way. Seeded generators (rand.New(rand.NewSource(s)))
// are the sanctioned randomness; //thermlint:wallclock and
// //thermlint:unordered allow the audited exceptions.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock reads, global math/rand, and unsorted map iteration in declared-deterministic packages",
	Run:  runDeterminism,
}

// wallClockFuncs are the time-package functions that read the wall
// clock. time.Since and time.Until are included: both call time.Now.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// globalRandFuncs are the math/rand (and math/rand/v2) package-level
// functions that consume the shared global source. Constructors (New,
// NewSource, NewZipf, NewPCG, NewChaCha8) are deliberately absent:
// seeded instances are the fix, not the bug.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	"N": true, "IntN": true, "Int32N": true, "Int64N": true,
	"Uint32N": true, "Uint64N": true, "UintN": true,
}

func runDeterminism(pass *Pass) error {
	if !pass.PackageMarked("deterministic") {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			sorts := containsSortCall(pass, fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkDeterministicCall(pass, n)
				case *ast.RangeStmt:
					checkMapRange(pass, n, sorts)
				}
				return true
			})
		}
	}
	return nil
}

func checkDeterministicCall(pass *Pass, call *ast.CallExpr) {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] && !pass.Allowed(call.Pos(), "wallclock") {
			pass.Reportf(call.Pos(), "time.%s in a deterministic package (inject a clock, or annotate //thermlint:wallclock -- why)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if globalRandFuncs[fn.Name()] {
			pass.Reportf(call.Pos(), "global %s.%s in a deterministic package (use a seeded rand.New(rand.NewSource(seed)))", fn.Pkg().Name(), fn.Name())
		}
	}
}

// checkMapRange flags iteration over a map unless the enclosing
// function also sorts (the collect-then-sort idiom) or the statement is
// annotated //thermlint:unordered.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, fnSorts bool) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	if fnSorts || pass.Allowed(rng.Pos(), "unordered") {
		return
	}
	pass.Reportf(rng.Pos(), "map iteration order leaks into a deterministic package (sort the keys, or annotate //thermlint:unordered -- why)")
}

// containsSortCall reports whether body calls into package sort or
// slices — the signal that a map range feeds a collect-then-sort
// pattern rather than leaking iteration order.
func containsSortCall(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if fn := pass.CalleeFunc(call); fn != nil && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "sort", "slices":
				found = true
			}
		}
		return !found
	})
	return found
}
