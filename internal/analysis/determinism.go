package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// Determinism enforces the reproduction's byte-identical-replay claim:
// packages marked //thermlint:deterministic (loadgen schedule/mix
// synthesis, trace, emu, predictor, faultinject) must not read the wall
// clock, draw from the global math/rand source, or iterate a map in an
// order-sensitive way. Seeded generators (rand.New(rand.NewSource(s)))
// are the sanctioned randomness; //thermlint:wallclock and
// //thermlint:unordered allow the audited exceptions.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock reads, global math/rand, and unsorted map iteration in declared-deterministic packages",
	Run:  runDeterminism,
}

// wallClockFuncs are the time-package functions that read the wall
// clock. time.Since and time.Until are included: both call time.Now.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// globalRandFuncs are the math/rand (and math/rand/v2) package-level
// functions that consume the shared global source. Constructors (New,
// NewSource, NewZipf, NewPCG, NewChaCha8) are deliberately absent:
// seeded instances are the fix, not the bug.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	"N": true, "IntN": true, "Int32N": true, "Int64N": true,
	"Uint32N": true, "Uint64N": true, "UintN": true,
}

func runDeterminism(pass *Pass) error {
	if !pass.PackageMarked("deterministic") {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			sorts := containsSortCall(pass, fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkDeterministicCall(pass, n)
				case *ast.RangeStmt:
					checkMapRange(pass, n, sorts)
				}
				return true
			})
		}
	}
	return nil
}

func checkDeterministicCall(pass *Pass, call *ast.CallExpr) {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] && !pass.Allowed(call.Pos(), "wallclock") {
			pass.Reportf(call.Pos(), "time.%s in a deterministic package (inject a clock, or annotate //thermlint:wallclock -- why)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if globalRandFuncs[fn.Name()] {
			pass.Reportf(call.Pos(), "global %s.%s in a deterministic package (use a seeded rand.New(rand.NewSource(seed)))", fn.Pkg().Name(), fn.Name())
		}
	}
}

// checkMapRange flags iteration over a map unless the enclosing
// function also sorts (the collect-then-sort idiom) or the statement is
// annotated //thermlint:unordered.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, fnSorts bool) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	if fnSorts || pass.Allowed(rng.Pos(), "unordered") {
		return
	}
	if fixes := sortedRangeFix(pass, rng, t.Underlying().(*types.Map)); fixes != nil {
		pass.ReportFix(rng.Pos(), fixes, "map iteration order leaks into a deterministic package (sort the keys, or annotate //thermlint:unordered -- why)")
		return
	}
	pass.Reportf(rng.Pos(), "map iteration order leaks into a deterministic package (sort the keys, or annotate //thermlint:unordered -- why)")
}

// sortedRangeFix rewrites `for k, v := range m` over an ordered-key map
// to iterate slices.Sorted(maps.Keys(m)), re-deriving v inside the
// body, and adds the imports the rewrite needs. Nil when the shape is
// not mechanically rewritable (non-ordered keys, non-ident loop vars,
// no parenthesized import block to extend).
func sortedRangeFix(pass *Pass, rng *ast.RangeStmt, m *types.Map) []TextEdit {
	if rng.Tok != token.DEFINE {
		return nil
	}
	if basic, ok := m.Key().Underlying().(*types.Basic); !ok ||
		basic.Info()&(types.IsOrdered|types.IsString) == 0 {
		return nil // slices.Sorted needs cmp.Ordered keys
	}
	key, ok := rng.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return nil
	}
	var value *ast.Ident
	if rng.Value != nil {
		if value, ok = rng.Value.(*ast.Ident); !ok {
			return nil
		}
	}
	mapSrc := formatNode(pass, rng.X)
	if mapSrc == "" {
		return nil
	}
	pos := pass.Fset.Position(rng.Pos())
	indent := strings.Repeat("\t", max(pos.Column-1, 0))
	header := "for _, " + key.Name + " := range slices.Sorted(maps.Keys(" + mapSrc + ")) {"
	if value != nil && value.Name != "_" {
		header += "\n" + indent + "\t" + value.Name + " := " + mapSrc + "[" + key.Name + "]"
	}
	edits := []TextEdit{{
		File:  pos.Filename,
		Start: pass.Offset(rng.Pos()),
		End:   pass.Offset(rng.Body.Lbrace) + 1,
		New:   header,
	}}
	imports := missingImportEdits(pass, rng.Pos(), "maps", "slices")
	if imports == nil {
		return nil
	}
	return append(imports, edits...)
}

// missingImportEdits returns insertions adding the named stdlib imports
// to the file containing pos, skipping ones already present. It
// requires a parenthesized import block to extend; nil (distinct from
// empty) means the file cannot be mechanically extended.
func missingImportEdits(pass *Pass, pos token.Pos, names ...string) []TextEdit {
	filename := pass.Fset.Position(pos).Filename
	for _, file := range pass.Files {
		if pass.Fset.Position(file.Pos()).Filename != filename {
			continue
		}
		have := make(map[string]bool)
		var rparen token.Pos
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.IMPORT {
				continue
			}
			if gd.Rparen.IsValid() {
				rparen = gd.Rparen
			}
			for _, spec := range gd.Specs {
				if is, ok := spec.(*ast.ImportSpec); ok {
					have[strings.Trim(is.Path.Value, `"`)] = true
				}
			}
		}
		edits := []TextEdit{}
		for _, name := range names {
			if have[name] {
				continue
			}
			if !rparen.IsValid() {
				return nil
			}
			edits = append(edits, TextEdit{
				File:  filename,
				Start: pass.Offset(rparen),
				End:   pass.Offset(rparen),
				New:   "\t" + strconv.Quote(name) + "\n",
			})
		}
		return edits
	}
	return nil
}

// containsSortCall reports whether body calls into package sort or
// slices — the signal that a map range feeds a collect-then-sort
// pattern rather than leaking iteration order.
func containsSortCall(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if fn := pass.CalleeFunc(call); fn != nil && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "sort", "slices":
				found = true
			}
		}
		return !found
	})
	return found
}
