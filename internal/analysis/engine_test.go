package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// writeCacheModule lays out a tiny module with a dependency chain
// (b imports a) and an independent package c, so invalidation can be
// observed per-package.
func writeCacheModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module cachemod\n\ngo 1.22\n",
		"a/a.go": "package a\n\nconst A = 1\n",
		"b/b.go": "package b\n\nimport \"cachemod/a\"\n\nconst B = a.A + 1\n",
		"c/c.go": "package c\n\nconst C = 3\n",
	}
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runCached(t *testing.T, dir, cacheDir string) *RunResult {
	t.Helper()
	res, err := Run(RunConfig{Dir: dir, Patterns: []string{"./..."}, CacheDir: cacheDir})
	if err != nil {
		t.Fatalf("engine run: %v", err)
	}
	return res
}

func cachedByPath(res *RunResult) map[string]bool {
	m := make(map[string]bool, len(res.Pkgs))
	for _, p := range res.Pkgs {
		m[p.PkgPath] = p.Cached
	}
	return m
}

// TestCacheWarmReloadFullHit: re-running over unchanged sources must
// serve every package from the cache.
func TestCacheWarmReloadFullHit(t *testing.T) {
	dir := writeCacheModule(t)
	cacheDir := t.TempDir()

	cold := runCached(t, dir, cacheDir)
	if got := cold.Hits(); got != 0 {
		t.Fatalf("cold run served %d packages from cache, want 0", got)
	}
	if len(cold.Pkgs) != 3 {
		t.Fatalf("cold run analyzed %d packages, want 3: %+v", len(cold.Pkgs), cold.Pkgs)
	}

	warm := runCached(t, dir, cacheDir)
	if got := warm.Hits(); got != len(warm.Pkgs) {
		t.Fatalf("warm run served %d/%d packages from cache, want all: %+v",
			got, len(warm.Pkgs), warm.Pkgs)
	}
}

// TestCacheInvalidationIsExact: a one-byte change to package a must
// invalidate a and its reverse dependency b, and nothing else.
func TestCacheInvalidationIsExact(t *testing.T) {
	dir := writeCacheModule(t)
	cacheDir := t.TempDir()
	runCached(t, dir, cacheDir)

	aFile := filepath.Join(dir, "a", "a.go")
	data, err := os.ReadFile(aFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(aFile, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	res := runCached(t, dir, cacheDir)
	got := cachedByPath(res)
	want := map[string]bool{"cachemod/a": false, "cachemod/b": false, "cachemod/c": true}
	for path, cached := range want {
		if got[path] != cached {
			t.Errorf("after editing a: %s cached=%v, want %v", path, got[path], cached)
		}
	}

	// Edit the leaf c: only c re-analyzes.
	cFile := filepath.Join(dir, "c", "c.go")
	data, err = os.ReadFile(cFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cFile, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	res = runCached(t, dir, cacheDir)
	got = cachedByPath(res)
	want = map[string]bool{"cachemod/a": true, "cachemod/b": true, "cachemod/c": false}
	for path, cached := range want {
		if got[path] != cached {
			t.Errorf("after editing c: %s cached=%v, want %v", path, got[path], cached)
		}
	}
}
