// Package asm assembles TH64 assembly text into isa.Programs. It exists
// so the benchmark kernels used by the examples and by the emulator-based
// validation tests can be written legibly rather than as encoded word
// lists.
//
// Syntax:
//
//	; comment (also # and //)
//	.base 0x1000          ; code base address (default 0x1000)
//	.data 0x8000 42       ; initialize a 64-bit memory word
//	loop:                 ; label
//	    addi r1, r1, -1
//	    ld   r2, 8(r30)   ; displacement addressing
//	    fadd f1, f2, f3   ; FP registers spelled fN
//	    bne  r1, r0, loop ; branch targets are labels or literals
//	    jal  r31, func
//	    halt
//
// Immediates are decimal or 0x-prefixed hex, optionally negative. Branch
// and jal targets given as labels are converted to signed word offsets
// relative to PC+4.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"thermalherd/internal/isa"
)

// DefaultBase is the code base address used when no .base directive
// appears.
const DefaultBase = 0x1000

// Assemble translates TH64 assembly source into a Program.
func Assemble(src string) (*isa.Program, error) {
	a := &assembler{
		prog: &isa.Program{
			Base:   DefaultBase,
			Data:   make(map[uint64]uint64),
			Labels: make(map[string]uint64),
		},
	}
	if err := a.firstPass(src); err != nil {
		return nil, err
	}
	if err := a.secondPass(); err != nil {
		return nil, err
	}
	return a.prog, nil
}

// MustAssemble is Assemble that panics on error, for known-good kernels
// embedded in tests and examples.
func MustAssemble(src string) *isa.Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

type pendingInst struct {
	line   int
	mnem   string
	fields []string
}

type assembler struct {
	prog  *isa.Program
	insts []pendingInst
}

func stripComment(line string) string {
	for _, marker := range []string{";", "#", "//"} {
		if i := strings.Index(line, marker); i >= 0 {
			line = line[:i]
		}
	}
	return strings.TrimSpace(line)
}

// firstPass collects labels, directives, and raw instructions.
func (a *assembler) firstPass(src string) error {
	baseSet := false
	for lineno, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		// Labels (possibly followed by an instruction on the same line).
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if !isIdent(label) {
				return fmt.Errorf("asm: line %d: bad label %q", lineno+1, label)
			}
			if _, dup := a.prog.Labels[label]; dup {
				return fmt.Errorf("asm: line %d: duplicate label %q", lineno+1, label)
			}
			a.prog.Labels[label] = a.prog.Base + uint64(4*len(a.insts))
			line = strings.TrimSpace(line[i+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ".") {
			fields := strings.Fields(line)
			switch fields[0] {
			case ".base":
				if len(fields) != 2 {
					return fmt.Errorf("asm: line %d: .base wants one operand", lineno+1)
				}
				if len(a.insts) > 0 || baseSet {
					return fmt.Errorf("asm: line %d: .base must appear once, before code", lineno+1)
				}
				v, err := parseUint(fields[1])
				if err != nil {
					return fmt.Errorf("asm: line %d: %v", lineno+1, err)
				}
				if v%4 != 0 {
					return fmt.Errorf("asm: line %d: .base must be 4-byte aligned", lineno+1)
				}
				a.prog.Base = v
				baseSet = true
			case ".data":
				if len(fields) != 3 {
					return fmt.Errorf("asm: line %d: .data wants address and value", lineno+1)
				}
				addr, err := parseUint(fields[1])
				if err != nil {
					return fmt.Errorf("asm: line %d: %v", lineno+1, err)
				}
				val, err := parseValue(fields[2])
				if err != nil {
					return fmt.Errorf("asm: line %d: %v", lineno+1, err)
				}
				a.prog.Data[addr] = val
			default:
				return fmt.Errorf("asm: line %d: unknown directive %s", lineno+1, fields[0])
			}
			continue
		}
		mnem, rest, _ := strings.Cut(line, " ")
		var fields []string
		for _, f := range strings.Split(rest, ",") {
			f = strings.TrimSpace(f)
			if f != "" {
				fields = append(fields, f)
			}
		}
		expanded, err := expandPseudo(lineno+1, mnem, fields)
		if err != nil {
			return err
		}
		a.insts = append(a.insts, expanded...)
	}
	return nil
}

// expandPseudo rewrites assembler pseudo-instructions into real TH64
// instructions. Every expansion has a fixed length, so label arithmetic
// in the first pass stays exact.
//
//	mv   rd, rs        -> addi rd, rs, 0
//	neg  rd, rs        -> sub  rd, r0, rs
//	ret                -> jalr r0, r31, 0
//	call label         -> jal  r31, label
//	b    label         -> beq  r0, r0, label
//	bgt  ra, rb, label -> blt  rb, ra, label
//	ble  ra, rb, label -> bge  rb, ra, label
//	li32 rd, imm32     -> lui rd, hi16 ; ori rd, rd, lo16
func expandPseudo(line int, mnem string, fields []string) ([]pendingInst, error) {
	mk := func(m string, f ...string) pendingInst {
		return pendingInst{line: line, mnem: m, fields: f}
	}
	need := func(n int) error {
		if len(fields) != n {
			return fmt.Errorf("asm: line %d: %s wants %d operands, got %d", line, mnem, n, len(fields))
		}
		return nil
	}
	switch mnem {
	case "mv":
		if err := need(2); err != nil {
			return nil, err
		}
		return []pendingInst{mk("addi", fields[0], fields[1], "0")}, nil
	case "neg":
		if err := need(2); err != nil {
			return nil, err
		}
		return []pendingInst{mk("sub", fields[0], "r0", fields[1])}, nil
	case "ret":
		if err := need(0); err != nil {
			return nil, err
		}
		return []pendingInst{mk("jalr", "r0", "r31", "0")}, nil
	case "call":
		if err := need(1); err != nil {
			return nil, err
		}
		return []pendingInst{mk("jal", "r31", fields[0])}, nil
	case "b":
		if err := need(1); err != nil {
			return nil, err
		}
		return []pendingInst{mk("beq", "r0", "r0", fields[0])}, nil
	case "bgt":
		if err := need(3); err != nil {
			return nil, err
		}
		return []pendingInst{mk("blt", fields[1], fields[0], fields[2])}, nil
	case "ble":
		if err := need(3); err != nil {
			return nil, err
		}
		return []pendingInst{mk("bge", fields[1], fields[0], fields[2])}, nil
	case "li32":
		if err := need(2); err != nil {
			return nil, err
		}
		v, err := strconv.ParseUint(fields[1], 0, 32)
		if err != nil {
			return nil, fmt.Errorf("asm: line %d: bad 32-bit literal %q", line, fields[1])
		}
		hi := fmt.Sprintf("%d", (v>>16)&0xffff)
		lo := fmt.Sprintf("%d", v&0xffff)
		return []pendingInst{
			mk("lui", fields[0], hi),
			mk("ori", fields[0], fields[0], lo),
		}, nil
	}
	return []pendingInst{{line: line, mnem: mnem, fields: fields}}, nil
}

// secondPass encodes instructions now that all label addresses are known.
func (a *assembler) secondPass() error {
	for idx, pi := range a.insts {
		pc := a.prog.Base + uint64(4*idx)
		in, err := a.encodeOne(pi, pc)
		if err != nil {
			return fmt.Errorf("asm: line %d: %v", pi.line, err)
		}
		w, err := isa.Encode(in)
		if err != nil {
			return fmt.Errorf("asm: line %d: %v", pi.line, err)
		}
		a.prog.Code = append(a.prog.Code, w)
	}
	return nil
}

func (a *assembler) encodeOne(pi pendingInst, pc uint64) (isa.Instruction, error) {
	op, ok := isa.OpcodeByName(pi.mnem)
	if !ok {
		return isa.Instruction{}, fmt.Errorf("unknown mnemonic %q", pi.mnem)
	}
	in := isa.Instruction{Op: op}
	need := func(n int) error {
		if len(pi.fields) != n {
			return fmt.Errorf("%s wants %d operands, got %d", pi.mnem, n, len(pi.fields))
		}
		return nil
	}
	var err error
	switch {
	case op == isa.OpNop || op == isa.OpHalt:
		return in, need(0)

	case op == isa.OpLui:
		if err = need(2); err != nil {
			return in, err
		}
		if in.Rd, err = parseReg(pi.fields[0], op.IsFP()); err != nil {
			return in, err
		}
		in.Imm, err = parseImm(pi.fields[1])
		return in, err

	case op.Class() == isa.ClassLoad || op.Class() == isa.ClassStore:
		if err = need(2); err != nil {
			return in, err
		}
		if in.Rd, err = parseReg(pi.fields[0], op.IsFP()); err != nil {
			return in, err
		}
		in.Imm, in.Rs1, err = parseDisp(pi.fields[1])
		return in, err

	case op.Class() == isa.ClassBranch:
		if err = need(3); err != nil {
			return in, err
		}
		if in.Rd, err = parseReg(pi.fields[0], false); err != nil {
			return in, err
		}
		if in.Rs1, err = parseReg(pi.fields[1], false); err != nil {
			return in, err
		}
		in.Imm, err = a.parseTarget(pi.fields[2], pc)
		return in, err

	case op == isa.OpJal:
		if err = need(2); err != nil {
			return in, err
		}
		if in.Rd, err = parseReg(pi.fields[0], false); err != nil {
			return in, err
		}
		in.Imm, err = a.parseTarget(pi.fields[1], pc)
		return in, err

	case op == isa.OpJalr:
		if err = need(3); err != nil {
			return in, err
		}
		if in.Rd, err = parseReg(pi.fields[0], false); err != nil {
			return in, err
		}
		if in.Rs1, err = parseReg(pi.fields[1], false); err != nil {
			return in, err
		}
		in.Imm, err = parseImm(pi.fields[2])
		return in, err

	case op == isa.OpI2F:
		if err = need(2); err != nil {
			return in, err
		}
		if in.Rd, err = parseReg(pi.fields[0], true); err != nil {
			return in, err
		}
		in.Rs1, err = parseReg(pi.fields[1], false)
		return in, err

	case op == isa.OpF2I:
		if err = need(2); err != nil {
			return in, err
		}
		if in.Rd, err = parseReg(pi.fields[0], false); err != nil {
			return in, err
		}
		in.Rs1, err = parseReg(pi.fields[1], true)
		return in, err

	case op == isa.OpFSqrt:
		if err = need(2); err != nil {
			return in, err
		}
		if in.Rd, err = parseReg(pi.fields[0], true); err != nil {
			return in, err
		}
		in.Rs1, err = parseReg(pi.fields[1], true)
		return in, err

	case op.HasImm():
		if err = need(3); err != nil {
			return in, err
		}
		if in.Rd, err = parseReg(pi.fields[0], op.IsFP()); err != nil {
			return in, err
		}
		if in.Rs1, err = parseReg(pi.fields[1], op.IsFP()); err != nil {
			return in, err
		}
		in.Imm, err = parseImm(pi.fields[2])
		return in, err

	default: // three-register format
		if err = need(3); err != nil {
			return in, err
		}
		if in.Rd, err = parseReg(pi.fields[0], op.IsFP()); err != nil {
			return in, err
		}
		if in.Rs1, err = parseReg(pi.fields[1], op.IsFP()); err != nil {
			return in, err
		}
		in.Rs2, err = parseReg(pi.fields[2], op.IsFP())
		return in, err
	}
}

// parseTarget resolves a branch/jal target, either a label or a literal
// word offset, into the signed word displacement from pc+4.
func (a *assembler) parseTarget(s string, pc uint64) (int16, error) {
	if addr, ok := a.prog.Labels[s]; ok {
		delta := int64(addr) - int64(pc+4)
		if delta%4 != 0 {
			return 0, fmt.Errorf("misaligned target %q", s)
		}
		words := delta / 4
		if words < -32768 || words > 32767 {
			return 0, fmt.Errorf("target %q out of branch range", s)
		}
		return int16(words), nil
	}
	return parseImm(s)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func parseReg(s string, fp bool) (uint8, error) {
	want := byte('r')
	if fp {
		want = 'f'
	}
	if len(s) < 2 || s[0] != want {
		return 0, fmt.Errorf("expected %c-register, got %q", want, s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumIntRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

// parseDisp parses "imm(rN)" displacement operands.
func parseDisp(s string) (int16, uint8, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("expected disp(reg), got %q", s)
	}
	imm := int16(0)
	if open > 0 {
		v, err := parseImm(s[:open])
		if err != nil {
			return 0, 0, err
		}
		imm = v
	}
	reg, err := parseReg(s[open+1:len(s)-1], false)
	if err != nil {
		return 0, 0, err
	}
	return imm, reg, nil
}

func parseImm(s string) (int16, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if v < -32768 || v > 65535 {
		return 0, fmt.Errorf("immediate %d out of 16-bit range", v)
	}
	return int16(v), nil // values 32768..65535 wrap to their bit pattern
}

func parseUint(s string) (uint64, error) {
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad address %q", s)
	}
	return v, nil
}

// parseValue parses a 64-bit data word, allowing negative decimals.
func parseValue(s string) (uint64, error) {
	if v, err := strconv.ParseUint(s, 0, 64); err == nil {
		return v, nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", s)
	}
	return uint64(v), nil
}
