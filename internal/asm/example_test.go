package asm_test

import (
	"fmt"

	"thermalherd/internal/asm"
	"thermalherd/internal/emu"
)

// Assemble a TH64 program and execute it on the functional emulator.
func ExampleAssemble() {
	prog, err := asm.Assemble(`
		addi r1, r0, 6     ; n
		addi r2, r0, 1     ; acc
	loop:
		mul  r2, r2, r1    ; acc *= n
		addi r1, r1, -1
		bne  r1, r0, loop
		halt
	`)
	if err != nil {
		fmt.Println("assemble:", err)
		return
	}
	m := emu.New(prog)
	if _, err := m.Run(1000); err != nil {
		fmt.Println("run:", err)
		return
	}
	fmt.Println("6! =", m.IntRegs[2])
	// Output: 6! = 720
}
