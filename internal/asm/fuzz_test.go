package asm

import "testing"

// FuzzAssemble checks the assembler never panics on arbitrary source
// text and that whatever it accepts stays within encoding invariants.
func FuzzAssemble(f *testing.F) {
	f.Add("addi r1, r0, 5\nhalt")
	f.Add(".base 0x2000\nloop: bne r1, r0, loop")
	f.Add(".data 0x100 -9\nld r2, 0(r1)")
	f.Add("x: y: nop ; stacked labels")
	f.Add("jal r31, nowhere")
	f.Add(".bogus\n\x00\xff")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Assemble(src)
		if err != nil {
			return
		}
		if prog.Base%4 != 0 {
			t.Fatalf("accepted misaligned base %#x", prog.Base)
		}
		for _, label := range prog.Labels {
			if label < prog.Base || label > prog.Base+uint64(4*len(prog.Code)) {
				t.Fatalf("label outside code segment: %#x", label)
			}
		}
	})
}
