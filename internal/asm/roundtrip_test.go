package asm

import (
	"math/rand"
	"strings"
	"testing"

	"thermalherd/internal/isa"
)

// TestDisassembleAssembleRoundTrip generates random instructions,
// disassembles them with isa.Instruction.String, re-assembles the text,
// and checks the encodings match — tying the assembler's grammar to the
// disassembler's output format.
func TestDisassembleAssembleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var lines []string
	var want []uint32
	for i := 0; i < 500; i++ {
		in := randomInst(rng)
		// Branch/jump offsets printed as raw numbers re-assemble as
		// literal immediates, which is exactly what we want here.
		lines = append(lines, in.String())
		want = append(want, isa.MustEncode(in))
	}
	prog, err := Assemble(strings.Join(lines, "\n"))
	if err != nil {
		t.Fatalf("reassembly failed: %v", err)
	}
	if len(prog.Code) != len(want) {
		t.Fatalf("got %d instructions, want %d", len(prog.Code), len(want))
	}
	for i := range want {
		if prog.Code[i] != want[i] {
			gotIn, _ := isa.Decode(prog.Code[i])
			wantIn, _ := isa.Decode(want[i])
			t.Fatalf("instruction %d: %q reassembled to %q", i, wantIn, gotIn)
		}
	}
}

func randomInst(rng *rand.Rand) isa.Instruction {
	for {
		op := isa.Opcode(rng.Intn(64))
		if !op.Valid() {
			continue
		}
		in := isa.Instruction{
			Op:  op,
			Rd:  uint8(rng.Intn(isa.NumIntRegs)),
			Rs1: uint8(rng.Intn(isa.NumIntRegs)),
		}
		if op.HasImm() {
			// Stay within the assembler's accepted literal range and
			// keep branch offsets arbitrary (they parse as literals).
			in.Imm = int16(rng.Intn(1 << 16))
		} else {
			in.Rs2 = uint8(rng.Intn(isa.NumIntRegs))
		}
		// Zero the fields the disassembly does not print (they would
		// not survive the text round trip).
		switch op {
		case isa.OpNop, isa.OpHalt:
			in.Rd, in.Rs1, in.Rs2, in.Imm = 0, 0, 0, 0
		case isa.OpLui, isa.OpJal:
			in.Rs1 = 0
		case isa.OpI2F, isa.OpF2I, isa.OpFSqrt:
			in.Rs2 = 0
		}
		return in
	}
}

// TestAssembledKernelsDisassembleCleanly ensures every encoding the
// assembler produces disassembles without error.
func TestAssembledKernelsDisassembleCleanly(t *testing.T) {
	src := `
		.base 0x4000
	start:
		addi r1, r0, 100
		lui  r5, 0x1234
		slli r5, r5, 16
	loop:
		ld   r2, 0(r5)
		add  r3, r3, r2
		st   r3, 8(r5)
		addi r1, r1, -1
		bne  r1, r0, loop
		jal  r31, fn
		halt
	fn:
		fadd f1, f2, f3
		jalr r0, r31, 0
	`
	prog := MustAssemble(src)
	for i, w := range prog.Code {
		in, err := isa.Decode(w)
		if err != nil {
			t.Fatalf("word %d (%#08x): %v", i, w, err)
		}
		if s := in.String(); s == "" || strings.Contains(s, "op(") {
			t.Fatalf("word %d disassembles oddly: %q", i, s)
		}
	}
}
