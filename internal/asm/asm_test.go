package asm

import (
	"strings"
	"testing"

	"thermalherd/internal/isa"
)

func TestAssembleBasicProgram(t *testing.T) {
	p, err := Assemble(`
		; a trivial counted loop
		.base 0x2000
		.data 0x8000 42
		    addi r1, r0, 3
		loop:
		    addi r1, r1, -1
		    bne  r1, r0, loop
		    halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Base != 0x2000 {
		t.Errorf("base = %#x, want 0x2000", p.Base)
	}
	if len(p.Code) != 4 {
		t.Fatalf("code words = %d, want 4", len(p.Code))
	}
	if p.Data[0x8000] != 42 {
		t.Errorf("data[0x8000] = %d, want 42", p.Data[0x8000])
	}
	if got := p.Labels["loop"]; got != 0x2004 {
		t.Errorf("label loop = %#x, want 0x2004", got)
	}
	// The bne at 0x2008 targets 0x2004: offset = (0x2004 - 0x200c)/4 = -2.
	in, err := isa.Decode(p.Code[2])
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != isa.OpBne || in.Imm != -2 {
		t.Errorf("bne decoded as %v imm=%d, want imm=-2", in.Op, in.Imm)
	}
}

func TestAssembleDisplacement(t *testing.T) {
	p := MustAssemble(`
		ld r2, 16(r30)
		st r2, -8(r5)
		fld f1, 0(r4)
	`)
	in0, _ := isa.Decode(p.Code[0])
	if in0.Op != isa.OpLd || in0.Rd != 2 || in0.Rs1 != 30 || in0.Imm != 16 {
		t.Errorf("ld decoded wrong: %+v", in0)
	}
	in1, _ := isa.Decode(p.Code[1])
	if in1.Op != isa.OpSt || in1.Imm != -8 || in1.Rs1 != 5 {
		t.Errorf("st decoded wrong: %+v", in1)
	}
	in2, _ := isa.Decode(p.Code[2])
	if in2.Op != isa.OpFLd || in2.Rd != 1 || in2.Rs1 != 4 {
		t.Errorf("fld decoded wrong: %+v", in2)
	}
}

func TestAssembleForwardLabel(t *testing.T) {
	p := MustAssemble(`
		beq r0, r0, done
		addi r1, r0, 1
		done: halt
	`)
	in, _ := isa.Decode(p.Code[0])
	// beq at base, target base+8: offset = (8-4)/4 = 1.
	if in.Imm != 1 {
		t.Errorf("forward branch imm = %d, want 1", in.Imm)
	}
}

func TestAssembleJalAndJalr(t *testing.T) {
	p := MustAssemble(`
		jal r31, fn
		halt
		fn: jalr r0, r31, 0
	`)
	in0, _ := isa.Decode(p.Code[0])
	if in0.Op != isa.OpJal || in0.Rd != 31 || in0.Imm != 1 {
		t.Errorf("jal decoded wrong: %+v", in0)
	}
	in2, _ := isa.Decode(p.Code[2])
	if in2.Op != isa.OpJalr || in2.Rs1 != 31 {
		t.Errorf("jalr decoded wrong: %+v", in2)
	}
}

func TestAssembleFPAndConversions(t *testing.T) {
	p := MustAssemble(`
		fadd f1, f2, f3
		fsqrt f4, f5
		i2f f6, r7
		f2i r8, f9
	`)
	in0, _ := isa.Decode(p.Code[0])
	if in0.Op != isa.OpFAdd || in0.Rd != 1 || in0.Rs1 != 2 || in0.Rs2 != 3 {
		t.Errorf("fadd decoded wrong: %+v", in0)
	}
	in1, _ := isa.Decode(p.Code[1])
	if in1.Op != isa.OpFSqrt || in1.Rd != 4 || in1.Rs1 != 5 {
		t.Errorf("fsqrt decoded wrong: %+v", in1)
	}
	in2, _ := isa.Decode(p.Code[2])
	if in2.Op != isa.OpI2F || in2.Rd != 6 || in2.Rs1 != 7 {
		t.Errorf("i2f decoded wrong: %+v", in2)
	}
	in3, _ := isa.Decode(p.Code[3])
	if in3.Op != isa.OpF2I || in3.Rd != 8 || in3.Rs1 != 9 {
		t.Errorf("f2i decoded wrong: %+v", in3)
	}
}

func TestAssembleCommentStyles(t *testing.T) {
	p := MustAssemble(`
		addi r1, r0, 1 ; semicolon
		addi r2, r0, 2 # hash
		addi r3, r0, 3 // slashes
	`)
	if len(p.Code) != 3 {
		t.Errorf("code words = %d, want 3", len(p.Code))
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"unknown mnemonic", "frob r1, r2, r3", "unknown mnemonic"},
		{"bad register", "add r1, r2, r99", "bad register"},
		{"fp reg for int op", "add f1, r2, r3", "expected r-register"},
		{"int reg for fp op", "fadd r1, f2, f3", "expected f-register"},
		{"wrong arity", "add r1, r2", "wants 3 operands"},
		{"undefined label", "beq r0, r0, nowhere", "bad immediate"},
		{"duplicate label", "x: nop\nx: nop", "duplicate label"},
		{"bad label", "9lives: nop", "bad label"},
		{"imm out of range", "addi r1, r0, 70000", "out of 16-bit range"},
		{"bad directive", ".bogus 1", "unknown directive"},
		{"misaligned base", ".base 0x1002\nnop", "4-byte aligned"},
		{"late base", "nop\n.base 0x2000", "before code"},
		{"bad disp", "ld r1, r2", "expected disp(reg)"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble(c.src)
			if err == nil {
				t.Fatalf("Assemble(%q) succeeded, want error containing %q", c.src, c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not contain %q", err, c.wantErr)
			}
		})
	}
}

func TestAssembleNegativeData(t *testing.T) {
	p := MustAssemble(".data 0x100 -7\nnop")
	if p.Data[0x100] != ^uint64(6) {
		t.Errorf("data = %#x, want two's complement -7", p.Data[0x100])
	}
}

func TestAssembleLabelOnlyLines(t *testing.T) {
	p := MustAssemble(`
		a:
		b: c: nop
		halt
	`)
	if p.Labels["a"] != p.Labels["b"] || p.Labels["b"] != p.Labels["c"] {
		t.Error("stacked labels should share one address")
	}
	if len(p.Code) != 2 {
		t.Errorf("code words = %d, want 2", len(p.Code))
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble with bad source did not panic")
		}
	}()
	MustAssemble("frob")
}

func TestPseudoInstructions(t *testing.T) {
	p := MustAssemble(`
		li32 r5, 0xdeadbeef
		mv   r6, r5
		neg  r7, r6
		bgt  r6, r7, over
		nop
	over:
		ble  r7, r6, done
		nop
	done:
		call fn
		b    end
		nop
	fn:	ret
	end:	halt
	`)
	// li32 expands to two instructions; all others to one.
	wantInsts := 2 + 1 + 1 + 1 + 1 + 1 + 1 + 1 + 1 + 1 + 1 + 1
	if len(p.Code) != wantInsts {
		t.Fatalf("code words = %d, want %d", len(p.Code), wantInsts)
	}
	in0, _ := isa.Decode(p.Code[0])
	in1, _ := isa.Decode(p.Code[1])
	if in0.Op != isa.OpLui || in1.Op != isa.OpOri {
		t.Errorf("li32 expanded to %v/%v", in0.Op, in1.Op)
	}
	if in0.Imm != int16(0xdead-0x10000) || uint16(in1.Imm) != 0xbeef {
		t.Errorf("li32 halves = %#x/%#x", uint16(in0.Imm), uint16(in1.Imm))
	}
	// bgt swaps operands into blt.
	var bltSeen, bgeSeen bool
	for _, w := range p.Code {
		in, _ := isa.Decode(w)
		if in.Op == isa.OpBlt {
			bltSeen = true
			if in.Rd != 7 || in.Rs1 != 6 {
				t.Errorf("bgt swap wrong: blt r%d, r%d", in.Rd, in.Rs1)
			}
		}
		if in.Op == isa.OpBge {
			bgeSeen = true
		}
	}
	if !bltSeen || !bgeSeen {
		t.Error("pseudo branches missing")
	}
}

func TestPseudoInstructionsExecute(t *testing.T) {
	// Pseudo-heavy program: compute |x| via neg + bgt, through a call.
	p := MustAssemble(`
		addi r1, r0, -9
		call abs
		mv   r10, r2
		halt
	abs:
		mv   r2, r1
		bgt  r2, r0, pos
		neg  r2, r2
	pos:	ret
	`)
	// Decode-level sanity: program assembles and all words decode.
	for i, w := range p.Code {
		if _, err := isa.Decode(w); err != nil {
			t.Fatalf("word %d: %v", i, err)
		}
	}
}

func TestPseudoErrors(t *testing.T) {
	cases := []string{
		"mv r1",                // arity
		"li32 r1, 0x1ffffffff", // out of 32-bit range
		"ret r1",               // arity
		"call",                 // arity
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}
