// Package faultinject provides a deterministic, seeded fault-injection
// registry for chaos testing the thermherdd daemon. Code under test
// names fault points and calls Fire at them; a disarmed registry (the
// common production case) answers with a single atomic load and zero
// allocations, while an armed one injects latency, errors, or panics
// according to a spec string parsed from the THERMHERD_FAULTS
// environment variable or a -faults flag.
//
// Spec grammar (clauses separated by ';', options by ','):
//
//	spec   := clause { ';' clause }
//	clause := point '=' opt { ',' opt }
//	opt    := key ':' value
//
// Option keys:
//
//	p:0.25      firing probability in (0,1]; default 1
//	count:3     maximum number of fires; default unlimited
//	delay:50ms  latency injected before the action (Go duration)
//	error:msg   Fire returns an error carrying msg
//	panic:msg   Fire panics with a PanicValue carrying msg
//
// Example:
//
//	job.exec=panic:injected,p:0.05,count:3;rescache.get=error:cache offline,p:0.5
//
// A clause needs at least one of delay, error, or panic. Firing
// decisions come from a PRNG seeded at Arm time, so equal seeds and
// call sequences reproduce the same injected faults. That reproduction
// guarantee is enforced by thermlint's determinism analyzer, to which
// this package is declared deterministic.
//
//thermlint:deterministic
package faultinject

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// PanicValue is what an armed panic action passes to panic(), so
// recovery code can distinguish injected panics from organic ones.
type PanicValue struct {
	Point string
	Msg   string
}

func (p PanicValue) String() string {
	return fmt.Sprintf("faultinject: %s: %s", p.Point, p.Msg)
}

// Fault is one armed fault point's behavior.
type Fault struct {
	// Prob is the firing probability in (0,1]; 0 parses as 1.
	Prob float64
	// Count caps total fires; 0 means unlimited.
	Count int
	// Delay is injected before the error/panic action (or alone).
	Delay time.Duration
	// Err, when non-empty, makes Fire return an error carrying it.
	Err string
	// Panic, when non-empty, makes Fire panic with a PanicValue.
	Panic string
}

// armedPoint is a Fault plus its runtime accounting.
type armedPoint struct {
	Fault
	remaining int // fires left; -1 = unlimited
	injected  uint64
}

// Registry maps named fault points to armed faults. Both the nil
// Registry and a freshly constructed one are disarmed: Fire costs one
// atomic load and allocates nothing.
type Registry struct {
	armed  atomic.Bool
	mu     sync.Mutex
	rng    *rand.Rand
	points map[string]*armedPoint
}

// New returns a disarmed registry.
func New() *Registry { return &Registry{} }

// Arm parses spec (see the package comment for the grammar), replaces
// any previously armed faults, and seeds the firing PRNG. An empty
// spec is an error; use Disarm to turn injection off.
func (r *Registry) Arm(spec string, seed int64) error {
	points := make(map[string]*armedPoint)
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, opts, ok := strings.Cut(clause, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return fmt.Errorf("faultinject: bad clause %q (want point=opt,...)", clause)
		}
		if _, dup := points[name]; dup {
			return fmt.Errorf("faultinject: duplicate fault point %q", name)
		}
		f, err := parseFault(opts)
		if err != nil {
			return fmt.Errorf("faultinject: point %q: %w", name, err)
		}
		remaining := -1
		if f.Count > 0 {
			remaining = f.Count
		}
		points[name] = &armedPoint{Fault: f, remaining: remaining}
	}
	if len(points) == 0 {
		return fmt.Errorf("faultinject: empty fault spec")
	}
	r.mu.Lock()
	r.points = points
	r.rng = rand.New(rand.NewSource(seed))
	r.mu.Unlock()
	r.armed.Store(true)
	return nil
}

// parseFault parses one clause's comma-separated options.
func parseFault(opts string) (Fault, error) {
	f := Fault{Prob: 1}
	for _, opt := range strings.Split(opts, ",") {
		opt = strings.TrimSpace(opt)
		if opt == "" {
			continue
		}
		key, val, ok := strings.Cut(opt, ":")
		if !ok {
			return f, fmt.Errorf("bad option %q (want key:value)", opt)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "p":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p <= 0 || p > 1 {
				return f, fmt.Errorf("bad probability %q (want 0 < p <= 1)", val)
			}
			f.Prob = p
		case "count":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return f, fmt.Errorf("bad count %q (want a positive integer)", val)
			}
			f.Count = n
		case "delay":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return f, fmt.Errorf("bad delay %q (want a positive Go duration)", val)
			}
			f.Delay = d
		case "error":
			if val == "" {
				return f, fmt.Errorf("empty error message")
			}
			f.Err = val
		case "panic":
			if val == "" {
				return f, fmt.Errorf("empty panic message")
			}
			f.Panic = val
		default:
			return f, fmt.Errorf("unknown option key %q (want p, count, delay, error, or panic)", key)
		}
	}
	if f.Delay == 0 && f.Err == "" && f.Panic == "" {
		return f, fmt.Errorf("no action (want at least one of delay, error, panic)")
	}
	if f.Err != "" && f.Panic != "" {
		return f, fmt.Errorf("error and panic are mutually exclusive")
	}
	return f, nil
}

// Fire triggers the named fault point. On a disarmed or nil registry,
// or a point that is not armed, it returns nil without allocating.
// When the point fires, Fire sleeps for the configured delay, then
// panics (panic action), returns an error (error action), or returns
// nil (pure latency fault).
func (r *Registry) Fire(point string) error {
	if r == nil || !r.armed.Load() {
		return nil
	}
	return r.fire(point)
}

func (r *Registry) fire(point string) error {
	r.mu.Lock()
	p, ok := r.points[point]
	if !ok || p.remaining == 0 {
		r.mu.Unlock()
		return nil
	}
	if p.Prob < 1 && r.rng.Float64() >= p.Prob {
		r.mu.Unlock()
		return nil
	}
	if p.remaining > 0 {
		p.remaining--
	}
	p.injected++
	delay, errMsg, panicMsg := p.Delay, p.Err, p.Panic
	r.mu.Unlock()
	if delay > 0 {
		//thermlint:timer -- the injected latency IS the fault being modeled
		time.Sleep(delay)
	}
	if panicMsg != "" {
		panic(PanicValue{Point: point, Msg: panicMsg})
	}
	if errMsg != "" {
		return fmt.Errorf("faultinject: %s: %s", point, errMsg)
	}
	return nil
}

// Armed reports whether any fault points are armed.
func (r *Registry) Armed() bool { return r != nil && r.armed.Load() }

// Disarm removes every armed fault; Fire returns to its zero-cost
// disarmed path.
func (r *Registry) Disarm() {
	if r == nil {
		return
	}
	r.armed.Store(false)
	r.mu.Lock()
	r.points = nil
	r.mu.Unlock()
}

// Points returns the armed point names, sorted.
func (r *Registry) Points() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.points))
	for name := range r.points {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Counts returns the per-point injected-fault counts. Armed points
// that have not fired report 0; a nil or disarmed registry reports an
// empty (non-nil) map so /metrics always carries the section.
func (r *Registry) Counts() map[string]uint64 {
	counts := map[string]uint64{}
	if r == nil {
		return counts
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	//thermlint:unordered -- copying map to map; the result carries no order
	for name, p := range r.points {
		counts[name] = p.injected
	}
	return counts
}
